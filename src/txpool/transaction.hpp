// Transactions and the client request/reply wire messages.
//
// A simulated transaction does not materialize its payload: it carries
// the payload *size* (512 bytes in all paper experiments) plus a seed
// so its hash is unique. Wire sizes, Merkle leaves and bandwidth costs
// all use the declared size, so throughput numbers are unaffected by
// the optimization.
#pragma once

#include <cstdint>
#include <vector>

#include "common/codec.hpp"
#include "common/sha256.hpp"
#include "common/types.hpp"
#include "runtime/message.hpp"

namespace predis {

struct Transaction {
  NodeId client = kNoNode;  ///< Submitting client (reply address).
  TxSeq seq = 0;            ///< Client-local sequence number.
  std::uint32_t size = 512; ///< Simulated payload size in bytes.
  SimTime submitted_at = 0; ///< Client submission time (latency anchor).
  std::uint64_t payload_seed = 0;  ///< Stands in for payload content.
  /// §IV-D second dissemination strategy: the client writes the index
  /// of the target consensus node on the transaction and full nodes
  /// forward it there. kNoNode = direct submission (strategy one).
  NodeId target_consensus = kNoNode;

  void encode(Writer& w) const {
    w.u32(client);
    w.u64(seq);
    w.u32(size);
    w.i64(submitted_at);
    w.u64(payload_seed);
    w.u32(target_consensus);
  }

  static Transaction decode(Reader& r) {
    Transaction tx;
    tx.client = r.u32();
    tx.seq = r.u64();
    tx.size = r.u32();
    tx.submitted_at = r.i64();
    tx.payload_seed = r.u64();
    tx.target_consensus = r.u32();
    return tx;
  }

  Hash32 id() const { return hash_of(*this); }

  bool operator==(const Transaction&) const = default;
};

/// Sum of the simulated payload sizes of a batch of transactions.
inline std::size_t payload_bytes(const std::vector<Transaction>& txs) {
  std::size_t total = 0;
  for (const auto& tx : txs) total += tx.size;
  return total;
}

/// Client -> consensus node: a batch of transactions.
struct ClientRequestMsg final : runtime::Message {
  std::vector<Transaction> txs;

  std::size_t wire_size() const override {
    return payload_bytes(txs) + txs.size() * 24;  // per-tx envelope
  }
  const char* name() const override { return "ClientRequest"; }
};

/// Consensus node -> client: acknowledgement that the listed sequence
/// numbers committed. Tiny.
struct ClientReplyMsg final : runtime::Message {
  std::vector<TxSeq> seqs;
  SimTime committed_at = 0;

  std::size_t wire_size() const override { return 16 + seqs.size() * 8; }
  const char* name() const override { return "ClientReply"; }
};

}  // namespace predis
