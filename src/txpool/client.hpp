// Open-loop client workload generator.
//
// Each client actor emits transactions at a configured rate toward one
// assigned consensus node (the paper's first dissemination strategy in
// §IV-D), batching submissions on a short interval so the simulated
// message count stays manageable. Client-observed latency — the paper's
// definition: "time elapsed from when a client sends a transaction ...
// to when the client receives a reply" — is recorded per transaction in
// the shared Metrics.
#pragma once

#include <map>

#include "common/metrics.hpp"
#include "common/rng.hpp"
#include "common/thread_annotations.hpp"
#include "runtime/runtime.hpp"
#include "txpool/transaction.hpp"

namespace predis {

struct ClientConfig {
  NodeId self = kNoNode;
  /// Consensus node(s) receiving our transactions. Predis clients send
  /// to one node (its bundles carry them); baseline PBFT/HotStuff
  /// clients broadcast to every replica, the standard BFT client setup.
  std::vector<NodeId> targets;
  double tx_per_second = 1000.0;    ///< Offered load of this client.
  std::uint32_t tx_size = 512;      ///< Paper default.
  SimTime batch_interval = milliseconds(5);
  SimTime start_at = 0;             ///< Begin generating at this time.
  SimTime stop_at = kSimTimeNever;  ///< Stop generating after this time.
  /// Latencies before this time are discarded (measurement warmup).
  SimTime record_from = 0;
  /// Censorship countermeasure (§III-E): a transaction unconfirmed for
  /// this long is consigned to the next consensus node in
  /// `all_consensus`. 0 disables resubmission.
  SimTime resubmit_timeout = 0;
  /// Every consensus node, for resubmission rotation.
  std::vector<NodeId> all_consensus;
  std::uint64_t seed = 1;
};

class ClientActor final : public runtime::Actor {
 public:
  ClientActor(runtime::Runtime& net, const ClientConfig& config, Metrics& metrics)
      : net_(net), cfg_(config), metrics_(metrics), rng_(config.seed) {}

  void on_start() override {
    const SimTime now = net_.now();
    if (cfg_.start_at > now) {
      PREDIS_FIRE_AND_FORGET(net_.schedule(cfg_.self, cfg_.start_at - now,
                                           [this] { schedule_batch(); }));
    } else {
      schedule_batch();
    }
    if (cfg_.resubmit_timeout > 0 && !cfg_.all_consensus.empty()) {
      schedule_resubmit_check();
    }
  }

  void on_message(NodeId /*from*/, const runtime::MsgPtr& msg) override {
    const auto* reply = dynamic_cast<const ClientReplyMsg*>(msg.get());
    if (reply == nullptr) return;
    const SimTime now = net_.now();
    for (TxSeq seq : reply->seqs) {
      auto it = pending_.find(seq);
      if (it == pending_.end()) continue;  // duplicate reply
      if (it->second.submitted_at >= cfg_.record_from) {
        metrics_.record_latency(now - it->second.submitted_at);
      }
      pending_.erase(it);
    }
  }

  NodeId id() const { return cfg_.self; }
  std::size_t unacked() const { return pending_.size(); }
  TxSeq submitted() const { return next_seq_; }
  std::uint64_t resubmissions() const { return resubmissions_; }

 private:
  void schedule_batch() {
    PREDIS_FIRE_AND_FORGET(net_.schedule(cfg_.self, cfg_.batch_interval, [this] {
      emit_batch();
      if (net_.now() < cfg_.stop_at) schedule_batch();
    }));
  }

  void emit_batch() {
    const double expected =
        cfg_.tx_per_second * to_seconds(cfg_.batch_interval) + carry_;
    auto count = static_cast<std::size_t>(expected);
    carry_ = expected - static_cast<double>(count);
    if (count == 0) return;

    auto msg = std::make_shared<ClientRequestMsg>();
    msg->txs.reserve(count);
    const SimTime now = net_.now();
    for (std::size_t i = 0; i < count; ++i) {
      Transaction tx;
      tx.client = cfg_.self;
      tx.seq = next_seq_++;
      tx.size = cfg_.tx_size;
      tx.submitted_at = now;
      tx.payload_seed = rng_.next();
      pending_.emplace(tx.seq, Pending{now, tx, 0});
      msg->txs.push_back(tx);
    }
    metrics_.record_submitted(count);
    for (NodeId target : cfg_.targets) {
      net_.send(cfg_.self, target, msg);
    }
  }

  void schedule_resubmit_check() {
    PREDIS_FIRE_AND_FORGET(
        net_.schedule(cfg_.self, cfg_.resubmit_timeout, [this] {
          resubmit_overdue();
          schedule_resubmit_check();
        }));
  }

  /// §III-E: consign transactions that stayed unconfirmed for longer
  /// than usual to another consensus node. A transaction is packed
  /// after at most f + 1 attempts, so rotation through `all_consensus`
  /// eventually hits an honest node.
  void resubmit_overdue() {
    const SimTime now = net_.now();
    std::map<NodeId, std::vector<Transaction>> per_target;
    for (auto& [seq, entry] : pending_) {
      const SimTime age = now - entry.submitted_at;
      if (age < cfg_.resubmit_timeout *
                    static_cast<SimTime>(entry.attempts + 1)) {
        continue;
      }
      if (entry.attempts + 1 >= cfg_.all_consensus.size()) continue;
      ++entry.attempts;
      const NodeId target =
          cfg_.all_consensus[(seq + entry.attempts) %
                             cfg_.all_consensus.size()];
      per_target[target].push_back(entry.tx);
    }
    for (auto& [target, txs] : per_target) {
      resubmissions_ += txs.size();
      auto msg = std::make_shared<ClientRequestMsg>();
      msg->txs = std::move(txs);
      net_.send(cfg_.self, target, std::move(msg));
    }
  }

  struct Pending {
    SimTime submitted_at = 0;
    Transaction tx;
    std::size_t attempts = 0;
  };

  runtime::Runtime& net_;
  ClientConfig cfg_;
  Metrics& metrics_;
  Rng rng_;
  TxSeq next_seq_ = 0;
  double carry_ = 0.0;
  std::uint64_t resubmissions_ = 0;
  // resubmit_overdue() iterates this and the resulting batches go on
  // the wire: keep the walk in ascending-seq order (D1).
  std::map<TxSeq, Pending> pending_;
};

}  // namespace predis
