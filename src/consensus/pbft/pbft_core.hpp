// PBFT (Castro & Liskov) state machine over opaque payloads.
//
// One slot (sequence number) at a time is in flight — the leader
// proposes slot s+1 once slot s executes, which matches the round
// model of the paper's §III-F analysis (P_i, W_i, A_i back to back).
// Three phases: PrePrepare (leader multicast, carries the payload),
// Prepare and Commit (all-to-all, digest-sized) — the O(n²) message
// pattern PBFT is known for. View change replaces a silent or
// misbehaving leader and safely re-proposes any prepared payload.
//
// The same core drives the baseline (TxBatchPayload) and P-PBFT
// (PredisPayload) engines; only the PbftApp differs.
#pragma once

#include <map>
#include <set>

#include "common/rng.hpp"
#include "common/thread_annotations.hpp"
#include "consensus/common.hpp"
#include "core/recovery.hpp"

namespace predis {
class BlockTracer;
}  // namespace predis

namespace predis::consensus::pbft {

/// High-watermark window: messages for sequence numbers further than
/// this beyond the local execution point are ignored (Castro-Liskov's
/// [h, h + L] log bound). Keeps a hostile peer spraying absurd sequence
/// numbers from growing the slot/checkpoint vote logs without bound.
inline constexpr SeqNum kSeqWindow = 4096;

/// Maximum executed slots one CatchUpBatchMsg carries. The gap a
/// catch-up request reports is attacker-controlled (have_seq can be
/// absurdly low), so servers clamp every reply to this span and the
/// requester comes back for the rest — one hostile request can never
/// make a replica serialize its whole log in one message.
inline constexpr SeqNum kMaxCatchUpSpan = 64;

/// Retry budget for one catch-up episode with no progress at all.
/// Lag signals can be forged (a garbage beyond-window Commit), so a
/// node stops probing after this many unanswered requests and re-arms
/// only on fresh evidence. Any real progress resets the budget.
inline constexpr std::size_t kMaxCatchUpAttempts = 12;

struct PrePrepareMsg final : runtime::Message {
  View view = 0;
  SeqNum seq = 0;
  PayloadPtr payload;

  std::size_t wire_size() const override {
    return 16 + 32 + kSigBytes + payload->wire_size();
  }
  const char* name() const override { return "PrePrepare"; }
};

struct PrepareMsg final : runtime::Message {
  View view = 0;
  SeqNum seq = 0;
  Hash32 digest = kZeroHash;

  std::size_t wire_size() const override { return 16 + kVoteBytes; }
  const char* name() const override { return "Prepare"; }
};

struct CommitMsg final : runtime::Message {
  View view = 0;
  SeqNum seq = 0;
  Hash32 digest = kZeroHash;

  std::size_t wire_size() const override { return 16 + kVoteBytes; }
  const char* name() const override { return "Commit"; }
};

struct ViewChangeMsg final : runtime::Message {
  View new_view = 0;
  SeqNum last_exec = 0;

  /// Prepared-but-unexecuted proposals (safety carry-over): with a
  /// pipelining window > 1 there may be several in flight.
  struct Prepared {
    View view = 0;
    SeqNum seq = 0;
    PayloadPtr payload;
    /// Prepare-certificate size backing this entry (Castro-Liskov's
    /// P-set proof: 2f + 1 signed prepares). Models certificate
    /// verification — the new leader only carries entries whose proof
    /// reaches quorum, since a Byzantine voter cannot forge one.
    std::size_t proof = 0;
  };
  std::vector<Prepared> prepared;

  std::size_t wire_size() const override {
    std::size_t size = 32 + kSigBytes + qc_bytes(2);
    for (const Prepared& p : prepared) {
      size += 48 + qc_bytes(p.proof) +
              (p.payload ? p.payload->wire_size() : 0);
    }
    return size;
  }
  const char* name() const override { return "ViewChange"; }
};

struct NewViewMsg final : runtime::Message {
  View new_view = 0;
  /// View-change votes backing this NEW-VIEW (the V-set certificate).
  /// Models certificate verification: receivers ignore a NewView whose
  /// proof is below quorum, so one hostile message cannot drag the
  /// group into an absurd view.
  std::size_t proof = 0;

  std::size_t wire_size() const override {
    return 16 + kSigBytes + qc_bytes(proof);
  }
  const char* name() const override { return "NewView"; }
};

/// Periodic checkpoint vote (Castro-Liskov): "I executed up to `seq`
/// and my state digest is `digest`". A quorum of matching votes makes
/// the checkpoint *stable*, letting logs be pruned and lagging replicas
/// adopt snapshots safely.
struct CheckpointMsg final : runtime::Message {
  SeqNum seq = 0;
  Hash32 digest = kZeroHash;

  std::size_t wire_size() const override { return 8 + kVoteBytes; }
  const char* name() const override { return "Checkpoint"; }
};

/// A lagging replica asking for a certified snapshot.
struct StateRequestMsg final : runtime::Message {
  SeqNum have_seq = 0;

  std::size_t wire_size() const override { return 16 + kSigBytes; }
  const char* name() const override { return "StateRequest"; }
};

/// Snapshot at a checkpoint boundary. The receiver adopts it only if
/// (seq, digest) matches a quorum-certified checkpoint it observed
/// locally, or the attached checkpoint certificate (`proof` signers —
/// modeled verification, as NewViewMsg::proof) reaches quorum. Either
/// way a single Byzantine sender cannot poison state: it can neither
/// mint a local cert nor forge 2f + 1 checkpoint signatures.
struct StateSnapshotMsg final : runtime::Message {
  SeqNum seq = 0;
  Hash32 digest = kZeroHash;
  Bytes blob;
  /// Checkpoint-certificate size backing (seq, digest); 0 = none
  /// attached (legacy path: receiver must hold its own cert).
  std::size_t proof = 0;

  std::size_t wire_size() const override {
    return 48 + kSigBytes + qc_bytes(proof) + blob.size();
  }
  const char* name() const override { return "StateSnapshot"; }
};

/// A lagging replica asking a peer to stream the executed slots it
/// missed, starting just above `have_seq`. Answered with either a
/// CatchUpBatchMsg (peer still retains those slots) or a certified
/// StateSnapshotMsg (gap starts below the peer's pruned log floor).
struct CatchUpRequestMsg final : runtime::Message {
  SeqNum have_seq = 0;

  std::size_t wire_size() const override { return 16 + kSigBytes; }
  const char* name() const override { return "CatchUpRequest"; }
};

/// Contiguous run of executed slots, each carried with its commit
/// certificate (`proof` signers — modeled verification). The receiver
/// executes entries in order; an entry whose certificate is below
/// quorum is a fabrication and is skipped.
struct CatchUpBatchMsg final : runtime::Message {
  struct Entry {
    SeqNum seq = 0;
    PayloadPtr payload;
    std::size_t proof = 0;
  };
  std::vector<Entry> entries;

  std::size_t wire_size() const override {
    std::size_t size = 16 + kSigBytes;
    for (const Entry& e : entries) {
      size += 16 + qc_bytes(e.proof) +
              (e.payload ? e.payload->wire_size() : 0);
    }
    return size;
  }
  const char* name() const override { return "CatchUpBatch"; }
};

/// Application hooks: what gets ordered and what happens on commit.
class PbftApp {
 public:
  virtual ~PbftApp() = default;

  /// Leader-side: produce the payload for the next slot, or nullptr if
  /// nothing is ready (the core will retry on payload_ready()).
  virtual PayloadPtr make_payload(SeqNum seq) = 0;

  /// Replica-side validation. kPending defers the Prepare vote until
  /// the app calls PbftCore::revalidate(seq).
  virtual Validity validate(SeqNum seq, const PayloadPtr& payload) = 0;

  /// Slot executed (exactly once, in seq order).
  virtual void on_commit(SeqNum seq, const PayloadPtr& payload) = 0;

  /// Digest of the application state after the last on_commit —
  /// checkpoint votes carry it. Default: no state.
  virtual Hash32 state_digest() { return kZeroHash; }

  /// Serialize the application state for state transfer (captured at
  /// checkpoint boundaries). Default: stateless.
  virtual Bytes make_snapshot() { return {}; }

  /// Fast-forward to a certified snapshot taken after slot `seq`.
  virtual void apply_snapshot(SeqNum seq, BytesView blob) {
    (void)seq;
    (void)blob;
  }
};

class PbftCore {
 public:
  PbftCore(NodeContext ctx, PbftApp& app);

  /// Arm the engine (leader tries to propose).
  void start();

  /// Feed a consensus message; returns false if the message type is not
  /// a PBFT message (caller may route it elsewhere).
  bool handle(NodeId from, const runtime::MsgPtr& msg);

  /// App signal: new data available; leader may propose, and replicas
  /// (re)arm their "expecting progress" timer.
  void payload_ready();

  /// App signal: a kPending validation may now succeed.
  void revalidate(SeqNum seq);

  /// Crash-recovery hook (runtime::Actor::on_restart forwards here): the
  /// node was down (or partitioned) and missed every message in the
  /// window. Probes peers for the slots it missed instead of resuming
  /// blind and burning view timeouts.
  void on_restart();

  View view() const { return view_; }
  bool is_leader() const { return leader_index(view_, ctx_.n()) == ctx_.index(); }
  SeqNum last_executed() const { return last_exec_; }
  std::uint64_t view_changes() const { return view_changes_; }
  SeqNum stable_checkpoint() const { return stable_checkpoint_; }
  std::uint64_t state_transfers() const { return state_transfers_; }
  /// Catch-up batches this replica executed from (recovery metric).
  std::uint64_t catch_up_batches() const { return catch_up_batches_; }
  /// Peer rotations forced by unresponsive catch-up servers.
  std::size_t sync_stalls() const { return sync_peer_.stalls(); }
  /// Log bytes/items reclaimed by stable-checkpoint pruning.
  const core::GcStats& gc_stats() const { return gc_; }

  /// Reseed the recovery jitter stream (deterministic per run; the
  /// default derives from the node id alone).
  void set_recovery_seed(std::uint64_t seed) { rng_ = Rng(seed); }

  /// Checkpoint every this-many executed slots (0 disables).
  void set_checkpoint_interval(SeqNum interval) {
    checkpoint_interval_ = interval;
  }

  /// Pipelining window: how many slots may be in flight at once.
  /// 1 (default) = the strictly serialized round model of the paper's
  /// §III-F analysis; larger values overlap proposal phases like
  /// classic watermarked PBFT.
  void set_pipeline_window(SeqNum window) {
    window_ = window == 0 ? 1 : window;
  }
  SeqNum pipeline_window() const { return window_; }

  /// Fault injection: a paused node neither votes nor proposes.
  void set_paused(bool paused) { paused_ = paused; }

  /// Attach the shared lifecycle tracer (may be null): records proposal
  /// and commit times keyed by payload digest. Baseline protocols wire
  /// this directly; P-PBFT traces through its engine instead to avoid
  /// double-counting.
  void set_tracer(BlockTracer* tracer) { tracer_ = tracer; }

 private:
  struct Slot {
    View view = 0;
    PayloadPtr payload;
    Hash32 digest = kZeroHash;
    bool preprepared = false;
    Validity validity = Validity::kPending;
    bool sent_prepare = false;
    bool sent_commit = false;
    bool executed = false;
    // Prepared certificate: the highest view in which this replica
    // collected a prepare quorum for the slot, and the payload it
    // prepared. Unlike the per-view vote flags above, this survives
    // view changes and execution — it is the evidence a ViewChangeMsg
    // carries so a new leader re-proposes the value instead of minting
    // a fresh one (pruned only at stable checkpoints).
    bool has_prepared = false;
    View prepared_view = 0;
    PayloadPtr prepared_payload;
    // Votes per digest (buffered even before the PrePrepare arrives).
    std::map<Hash32, std::set<std::size_t>> prepares;
    std::map<Hash32, std::set<std::size_t>> commits;
  };

  Slot& slot(SeqNum seq);
  void try_propose();
  void on_preprepare(std::size_t from, const PrePrepareMsg& msg);
  void on_prepare(std::size_t from, const PrepareMsg& msg);
  void on_commit_msg(std::size_t from, const CommitMsg& msg);
  void on_view_change(std::size_t from, const ViewChangeMsg& msg);
  void on_new_view(std::size_t from, const NewViewMsg& msg);
  void on_checkpoint(std::size_t from, const CheckpointMsg& msg);
  void on_state_request(std::size_t from, const StateRequestMsg& msg);
  void on_state_snapshot(std::size_t from, const StateSnapshotMsg& msg);
  void on_catch_up_request(std::size_t from, const CatchUpRequestMsg& msg);
  void on_catch_up_batch(std::size_t from, const CatchUpBatchMsg& msg);
  void maybe_checkpoint(SeqNum seq);
  void note_lag(SeqNum seq, std::size_t from);
  void begin_catch_up(std::size_t prefer);
  void catch_up_tick();
  void send_catch_up_request(bool broadcast);
  void arm_catch_up_timer();
  void finish_catch_up();
  void adopt_snapshot(const StateSnapshotMsg& msg);
  void prune_slots_below(SeqNum floor);
  void maybe_send_prepare(SeqNum seq);
  void maybe_send_commit(SeqNum seq);
  void maybe_execute(SeqNum seq);
  void enter_view(View v);
  void arm_view_timer();
  void disarm_view_timer();
  void on_view_timeout();

  NodeContext ctx_;
  PbftApp& app_;
  BlockTracer* tracer_ = nullptr;
  View view_ = 0;
  SeqNum last_exec_ = 0;
  std::map<SeqNum, Slot> slots_;
  bool paused_ = false;
  bool want_progress_ = false;     ///< Outstanding work justifies timeouts.
  SeqNum window_ = 1;              ///< Max slots in flight (watermarks).
  SeqNum next_propose_ = 1;        ///< Leader's next unproposed slot.
  runtime::TimerHandle view_timer_;
  std::uint64_t view_changes_ = 0;
  // View-change vote collection: view -> (voter index -> message).
  std::map<View, std::map<std::size_t, ViewChangeMsg>> vc_votes_
      PREDIS_MSG_DERIVED;

  // --- Checkpointing / state transfer ---------------------------------
  SeqNum checkpoint_interval_ = 16;
  SeqNum stable_checkpoint_ = 0;
  std::uint64_t state_transfers_ = 0;
  // Vote collection: seq -> digest -> voters.
  std::map<SeqNum, std::map<Hash32, std::set<std::size_t>>> ckpt_votes_
      PREDIS_MSG_DERIVED;
  // Quorum-certified checkpoints we observed: seq -> digest.
  std::map<SeqNum, Hash32> ckpt_certs_ PREDIS_MSG_DERIVED;
  // Our own snapshot at the latest checkpoint boundary we executed.
  SeqNum snapshot_seq_ = 0;
  Hash32 snapshot_digest_ = kZeroHash;
  Bytes snapshot_blob_;

  // --- Catch-up / recovery ---------------------------------------------
  core::BackoffPolicy backoff_;
  Rng rng_;
  core::StallDetector sync_peer_;
  runtime::TimerHandle catch_up_timer_;
  bool catching_up_ = false;
  std::size_t catch_up_attempt_ = 0;
  /// Highest slot peers credibly claim exists (capped by kSeqWindow).
  SeqNum lag_target_ = 0;
  std::uint64_t catch_up_batches_ = 0;
  core::GcStats gc_;
};

}  // namespace predis::consensus::pbft
