// Baseline PBFT consensus node: clients broadcast transactions to every
// replica; the leader packs full batches (the paper's "batch size")
// into its proposals. This is the system Predis is measured against in
// Fig. 4(a)/(c).
#pragma once

#include <deque>
#include <set>

#include "common/codec.hpp"
#include "common/sha256.hpp"
#include "consensus/payloads.hpp"
#include "consensus/pbft/pbft_core.hpp"

namespace predis::consensus::pbft {

struct PbftNodeConfig {
  /// Transactions per block (the paper's "batch size", default 800).
  /// Partial batches are proposed immediately when the queue is short,
  /// so low offered load still commits promptly.
  std::size_t batch_size = 800;
  /// Slots in flight at once (1 = the paper's serialized round model).
  SeqNum pipeline_window = 1;
};

class PbftNode final : public runtime::Actor, private PbftApp {
 public:
  PbftNode(NodeContext ctx, PbftNodeConfig config, CommitLedger& ledger)
      : ctx_(std::move(ctx)),
        cfg_(config),
        ledger_(ledger),
        replies_(ctx_),
        core_(ctx_, *this) {
    core_.set_pipeline_window(cfg_.pipeline_window);
  }

  void on_start() override { core_.start(); }

  void on_restart() override { core_.on_restart(); }

  void on_message(NodeId from, const runtime::MsgPtr& msg) override {
    if (const auto* req = dynamic_cast<const ClientRequestMsg*>(msg.get())) {
      enqueue(req->txs);
      return;
    }
    core_.handle(from, msg);
  }

  PbftCore& core() { return core_; }
  std::size_t queue_depth() const { return queue_.size(); }

  /// Observation hook: fired for every executed block (digest, its
  /// transactions, commit time). Used to feed per-node Ledgers.
  std::function<void(const Hash32&, const std::vector<Transaction>&,
                     SimTime)>
      on_committed_block;

 private:
  using TxKey = std::pair<NodeId, TxSeq>;

  void enqueue(const std::vector<Transaction>& txs) {
    // Backpressure: shed client load once the uplink queue is far
    // behind, so saturation is graceful (TCP push-back analogue).
    if (ctx_.net().uplink_backlog(ctx_.self()) > milliseconds(400)) return;
    if (queue_.size() >= 8000) return;
    for (const auto& tx : txs) {
      const TxKey key{tx.client, tx.seq};
      if (seen_.count(key) != 0) continue;
      seen_.insert(key);
      queue_.push_back(tx);
    }
    core_.payload_ready();
  }

  // --- PbftApp ---------------------------------------------------------

  PayloadPtr make_payload(SeqNum /*seq*/) override {
    if (queue_.empty()) return nullptr;
    const std::size_t take = std::min(queue_.size(), cfg_.batch_size);
    std::vector<Transaction> batch(queue_.begin(),
                                   queue_.begin() +
                                       static_cast<std::ptrdiff_t>(take));
    queue_.erase(queue_.begin(),
                 queue_.begin() + static_cast<std::ptrdiff_t>(take));
    return std::make_shared<TxBatchPayload>(std::move(batch));
  }

  Validity validate(SeqNum /*seq*/,
                    const PayloadPtr& payload) override {
    if (is_noop(payload)) return Validity::kValid;
    return dynamic_cast<const TxBatchPayload*>(payload.get()) != nullptr
               ? Validity::kValid
               : Validity::kInvalid;
  }

  void on_commit(SeqNum seq, const PayloadPtr& payload) override {
    if (is_noop(payload)) {
      ledger_.on_commit(ctx_.index(), seq, payload->digest(), 0,
                        ctx_.now());
      if (on_committed_block) {
        on_committed_block(payload->digest(), {}, ctx_.now());
      }
      return;
    }
    const auto& batch = dynamic_cast<const TxBatchPayload&>(*payload);
    // Drop committed txs from the local queue (they were broadcast to
    // everyone, so replicas hold duplicates of what the leader packed).
    std::set<TxKey> committed;
    for (const auto& tx : batch.txs()) committed.insert({tx.client, tx.seq});
    committed_keys_.insert(committed.begin(), committed.end());
    std::deque<Transaction> remaining;
    for (auto& tx : queue_) {
      if (committed.count({tx.client, tx.seq}) == 0) {
        remaining.push_back(tx);
      }
    }
    queue_ = std::move(remaining);

    ledger_.on_commit(ctx_.index(), seq, payload->digest(),
                      batch.txs().size(), ctx_.now());
    if (on_committed_block) {
      on_committed_block(payload->digest(), batch.txs(), ctx_.now());
    }
    replies_.reply_committed(batch.txs());
    if (!queue_.empty()) core_.payload_ready();
  }

  // --- Checkpointing (state = the set of committed tx keys) ------------
  // Snapshots let a replica that slept through whole slots fast-forward
  // *and* purge its local queue: without the purge it re-proposes
  // transactions that already committed while it was down, landing the
  // same payload at a second slot (the churn-storm double count).

  Bytes snapshot_bytes() const {
    Writer w;
    w.u32(static_cast<std::uint32_t>(committed_keys_.size()));
    for (const auto& [client, seq] : committed_keys_) {
      w.u32(client);
      w.u64(seq);
    }
    return std::move(w).take();
  }

  Hash32 state_digest() override {
    const Bytes bytes = snapshot_bytes();
    return Sha256::hash(BytesView{bytes});
  }

  Bytes make_snapshot() override { return snapshot_bytes(); }

  void apply_snapshot(SeqNum /*seq*/, BytesView blob) override {
    Reader r(blob);
    const std::uint32_t n = r.u32();
    for (std::uint32_t i = 0; i < n; ++i) {
      const NodeId client = r.u32();
      const TxSeq seq = r.u64();
      const TxKey key{client, seq};
      committed_keys_.insert(key);
      seen_.insert(key);  // do not re-queue on client rebroadcast
    }
    std::deque<Transaction> remaining;
    for (auto& tx : queue_) {
      if (committed_keys_.count({tx.client, tx.seq}) == 0) {
        remaining.push_back(tx);
      }
    }
    queue_ = std::move(remaining);
  }

  NodeContext ctx_;
  PbftNodeConfig cfg_;
  CommitLedger& ledger_;
  ReplyManager replies_;
  PbftCore core_;
  std::deque<Transaction> queue_;
  std::set<TxKey> seen_;
  std::set<TxKey> committed_keys_;
};

}  // namespace predis::consensus::pbft
