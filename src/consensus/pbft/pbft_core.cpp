#include "consensus/pbft/pbft_core.hpp"

#include <algorithm>

#include "common/block_tracer.hpp"
#include "common/log.hpp"
#include "consensus/payloads.hpp"

namespace predis::consensus::pbft {

PbftCore::PbftCore(NodeContext ctx, PbftApp& app)
    : ctx_(std::move(ctx)),
      app_(app),
      // Default recovery jitter stream: deterministic per node id, so a
      // run replays byte-identically; campaigns reseed per run via
      // set_recovery_seed().
      rng_(0x9e3779b97f4a7c15ULL ^
           (static_cast<std::uint64_t>(ctx_.self()) + 1)),
      sync_peer_(ctx_.n(), ctx_.index()) {}

void PbftCore::start() {
  if (is_leader()) try_propose();
}

PbftCore::Slot& PbftCore::slot(SeqNum seq) { return slots_[seq]; }

void PbftCore::payload_ready() {
  if (paused_) return;
  want_progress_ = true;
  if (is_leader()) {
    try_propose();
  } else {
    // A replica with work outstanding expects the leader to make
    // progress within the view timeout.
    arm_view_timer();
  }
}

void PbftCore::try_propose() {
  if (paused_ || !is_leader()) return;
  // Past the load-stop point only in-flight slots drain; cutting a new
  // payload here would strand it mid-protocol when the harness stops.
  if (ctx_.now() >= ctx_.config().propose_until) return;
  if (next_propose_ <= last_exec_) next_propose_ = last_exec_ + 1;
  // Propose every slot the pipelining window allows (window_ == 1
  // reproduces the strictly serialized round model).
  while (next_propose_ <= last_exec_ + window_) {
    const SeqNum seq = next_propose_;
    PayloadPtr payload = app_.make_payload(seq);
    if (payload == nullptr) return;

    ++next_propose_;
    want_progress_ = true;
    if (tracer_ != nullptr) {
      tracer_->record(TraceStage::kCutProposed, payload->digest(),
                      ctx_.now());
    }
    Slot& s = slot(seq);
    s.view = view_;
    s.payload = payload;
    s.digest = payload->digest();
    s.preprepared = true;
    s.validity = Validity::kValid;  // leaders trust their own payload

    auto msg = std::make_shared<PrePrepareMsg>();
    msg->view = view_;
    msg->seq = seq;
    msg->payload = payload;
    ctx_.broadcast(msg);
    arm_view_timer();
    maybe_send_prepare(seq);
  }
}

bool PbftCore::handle(NodeId from, const runtime::MsgPtr& msg) {
  const std::size_t idx = ctx_.index_of(from);
  if (const auto* m = dynamic_cast<const PrePrepareMsg*>(msg.get())) {
    if (!paused_ && idx < ctx_.n()) on_preprepare(idx, *m);
    return true;
  }
  if (const auto* m = dynamic_cast<const PrepareMsg*>(msg.get())) {
    if (!paused_ && idx < ctx_.n()) on_prepare(idx, *m);
    return true;
  }
  if (const auto* m = dynamic_cast<const CommitMsg*>(msg.get())) {
    if (!paused_ && idx < ctx_.n()) on_commit_msg(idx, *m);
    return true;
  }
  if (const auto* m = dynamic_cast<const ViewChangeMsg*>(msg.get())) {
    if (!paused_ && idx < ctx_.n()) on_view_change(idx, *m);
    return true;
  }
  if (const auto* m = dynamic_cast<const NewViewMsg*>(msg.get())) {
    if (!paused_ && idx < ctx_.n()) on_new_view(idx, *m);
    return true;
  }
  if (const auto* m = dynamic_cast<const CheckpointMsg*>(msg.get())) {
    if (!paused_ && idx < ctx_.n()) on_checkpoint(idx, *m);
    return true;
  }
  if (const auto* m = dynamic_cast<const StateRequestMsg*>(msg.get())) {
    if (!paused_ && idx < ctx_.n()) on_state_request(idx, *m);
    return true;
  }
  if (const auto* m = dynamic_cast<const StateSnapshotMsg*>(msg.get())) {
    if (!paused_ && idx < ctx_.n()) on_state_snapshot(idx, *m);
    return true;
  }
  if (const auto* m = dynamic_cast<const CatchUpRequestMsg*>(msg.get())) {
    if (!paused_ && idx < ctx_.n()) on_catch_up_request(idx, *m);
    return true;
  }
  if (const auto* m = dynamic_cast<const CatchUpBatchMsg*>(msg.get())) {
    if (!paused_ && idx < ctx_.n()) on_catch_up_batch(idx, *m);
    return true;
  }
  return false;
}

void PbftCore::on_preprepare(std::size_t from, const PrePrepareMsg& msg) {
  if (msg.view != view_) return;
  if (from != leader_index(view_, ctx_.n())) return;
  if (msg.seq <= last_exec_) return;
  if (msg.seq > last_exec_ + kSeqWindow) {
    // The leader is proposing far beyond our log window: we slept
    // through whole slots. Start catching up from the leader.
    note_lag(msg.seq, from);
    return;
  }
  if (msg.payload == nullptr) return;

  Slot& s = slot(msg.seq);
  if (s.preprepared && s.view == msg.view) return;  // duplicate
  s.view = msg.view;
  s.payload = msg.payload;
  s.digest = msg.payload->digest();
  s.preprepared = true;
  s.validity = app_.validate(msg.seq, msg.payload);
  want_progress_ = true;
  arm_view_timer();
  maybe_send_prepare(msg.seq);
}

void PbftCore::maybe_send_prepare(SeqNum seq) {
  Slot& s = slot(seq);
  if (!s.preprepared || s.sent_prepare) return;
  if (s.validity == Validity::kPending) return;
  if (s.validity == Validity::kInvalid) return;  // refuse to vote

  s.sent_prepare = true;
  auto msg = std::make_shared<PrepareMsg>();
  msg->view = s.view;
  msg->seq = seq;
  msg->digest = s.digest;
  ctx_.broadcast(msg);
  // Count own vote.
  s.prepares[s.digest].insert(ctx_.index());
  maybe_send_commit(seq);
}

void PbftCore::revalidate(SeqNum seq) {
  if (paused_) return;
  auto it = slots_.find(seq);
  if (it == slots_.end()) return;
  Slot& s = it->second;
  if (!s.preprepared || s.validity != Validity::kPending) return;
  s.validity = app_.validate(seq, s.payload);
  maybe_send_prepare(seq);
}

void PbftCore::on_prepare(std::size_t from, const PrepareMsg& msg) {
  if (msg.view != view_ || msg.seq <= last_exec_) return;
  if (msg.seq > last_exec_ + kSeqWindow) {
    note_lag(msg.seq, from);
    return;
  }
  Slot& s = slot(msg.seq);
  s.prepares[msg.digest].insert(from);
  maybe_send_commit(msg.seq);
}

void PbftCore::maybe_send_commit(SeqNum seq) {
  Slot& s = slot(seq);
  if (!s.preprepared || !s.sent_prepare || s.sent_commit) return;
  // Prepared: 2f matching prepares besides the pre-prepare — with our
  // self-counted vote this is quorum() votes for the digest.
  if (s.prepares[s.digest].size() < ctx_.quorum()) return;

  s.sent_commit = true;
  // Prepared: record the certificate. It outlives view changes and
  // execution so later ViewChangeMsgs can still attest to this value.
  s.has_prepared = true;
  s.prepared_view = s.view;
  s.prepared_payload = s.payload;
  auto msg = std::make_shared<CommitMsg>();
  msg->view = s.view;
  msg->seq = seq;
  msg->digest = s.digest;
  ctx_.broadcast(msg);
  s.commits[s.digest].insert(ctx_.index());
  maybe_execute(seq);
}

void PbftCore::on_commit_msg(std::size_t from, const CommitMsg& msg) {
  if (msg.view != view_ || msg.seq <= last_exec_) return;
  if (msg.seq > last_exec_ + kSeqWindow) {
    note_lag(msg.seq, from);
    return;
  }
  Slot& s = slot(msg.seq);
  s.commits[msg.digest].insert(from);
  maybe_execute(msg.seq);
}

void PbftCore::maybe_execute(SeqNum seq) {
  {
    Slot& s = slot(seq);
    if (s.executed || !s.preprepared) return;
    if (s.commits[s.digest].size() < ctx_.quorum()) return;
    if (seq != last_exec_ + 1) return;  // in-order execution

    s.executed = true;
    last_exec_ = seq;
    if (tracer_ != nullptr) {
      tracer_->record(TraceStage::kBlockCommitted, s.digest, ctx_.now());
    }
    app_.on_commit(seq, s.payload);
  }
  // Executed slots stay in the log until a stable checkpoint covers
  // them: their prepared certificates are what a view change re-proposes
  // to peers that have not executed this far yet, and their payloads
  // are what catch-up batches stream to lagging replicas.
  prune_slots_below(std::min(stable_checkpoint_, seq));
  maybe_checkpoint(seq);

  // With pipelining, the next slot may already have its commit quorum.
  const auto next = slots_.find(seq + 1);
  if (next != slots_.end() && next->second.preprepared &&
      next->second.commits[next->second.digest].size() >= ctx_.quorum()) {
    maybe_execute(seq + 1);
    return;
  }
  // Progress happened: reset the view timer. Quiesce it entirely when
  // nothing remains in flight; otherwise re-arm so the timeout measures
  // "no progress within T", not "pipeline non-empty for T".
  bool in_flight = false;
  for (const auto& [sq, sl] : slots_) {
    if (!sl.executed && sl.preprepared) in_flight = true;
  }
  disarm_view_timer();
  if (!in_flight) {
    want_progress_ = false;
  } else {
    arm_view_timer();
  }
  if (is_leader()) try_propose();
}

void PbftCore::maybe_checkpoint(SeqNum seq) {
  if (checkpoint_interval_ == 0 || seq % checkpoint_interval_ != 0) return;
  // Capture the snapshot at this boundary so state requests can be
  // served with exactly the certified state.
  snapshot_seq_ = seq;
  snapshot_blob_ = app_.make_snapshot();
  snapshot_digest_ = app_.state_digest();

  auto msg = std::make_shared<CheckpointMsg>();
  msg->seq = seq;
  msg->digest = snapshot_digest_;
  ctx_.broadcast(msg);
  on_checkpoint(ctx_.index(), *msg);
}

void PbftCore::on_checkpoint(std::size_t from, const CheckpointMsg& msg) {
  if (msg.seq > last_exec_ + kSeqWindow) {
    note_lag(msg.seq, from);
    return;
  }
  auto& voters = ckpt_votes_[msg.seq][msg.digest];
  voters.insert(from);
  if (voters.size() >= ctx_.quorum()) {
    ckpt_certs_[msg.seq] = msg.digest;
    if (msg.seq > stable_checkpoint_) {
      stable_checkpoint_ = msg.seq;
      // Prune vote bookkeeping and the slot log (with its prepared
      // certificates) below the stable checkpoint.
      ckpt_votes_.erase(ckpt_votes_.begin(),
                        ckpt_votes_.lower_bound(stable_checkpoint_));
      prune_slots_below(std::min(stable_checkpoint_, last_exec_));
    }
    // A certified checkpoint far ahead of our execution means we missed
    // whole slots (e.g. we were offline): catch up. Quorum-backed, so a
    // single hostile voter cannot trigger this.
    if (checkpoint_interval_ > 0 &&
        stable_checkpoint_ >= last_exec_ + 2 * checkpoint_interval_) {
      if (stable_checkpoint_ > lag_target_) lag_target_ = stable_checkpoint_;
      begin_catch_up(from);
    }
  }
}

void PbftCore::on_state_request(std::size_t from, const StateRequestMsg& msg) {
  if (snapshot_seq_ == 0 || snapshot_seq_ <= msg.have_seq) return;
  auto reply = std::make_shared<StateSnapshotMsg>();
  reply->seq = snapshot_seq_;
  reply->digest = snapshot_digest_;
  reply->blob = snapshot_blob_;
  // Attach the checkpoint certificate when we hold one, so receivers
  // that never saw the votes (down during the checkpoint) can verify.
  reply->proof = ckpt_certs_.count(snapshot_seq_) != 0 ? ctx_.quorum() : 0;
  ctx_.send_to(from, std::move(reply));
}

void PbftCore::on_state_snapshot(std::size_t from,
                                 const StateSnapshotMsg& msg) {
  if (msg.seq <= last_exec_) return;
  // Adopt only certified snapshots: either the (seq, digest) matches a
  // quorum-certified checkpoint we observed ourselves, or the message
  // carries a checkpoint certificate reaching quorum (modeled
  // verification — a Byzantine sender cannot forge 2f + 1 signatures).
  const auto cert = ckpt_certs_.find(msg.seq);
  const bool certified =
      (cert != ckpt_certs_.end() && cert->second == msg.digest) ||
      msg.proof >= ctx_.quorum();
  if (!certified) return;

  adopt_snapshot(msg);
  if (catching_up_) {
    sync_peer_.prefer(from);
    sync_peer_.on_progress();
    catch_up_attempt_ = 0;
    if (last_exec_ >= lag_target_) {
      finish_catch_up();
    } else {
      // Snapshot landed us at a checkpoint boundary; stream the
      // remaining executed slots from the same peer.
      send_catch_up_request(false);
      arm_catch_up_timer();
    }
  }
}

void PbftCore::adopt_snapshot(const StateSnapshotMsg& msg) {
  app_.apply_snapshot(msg.seq, msg.blob);
  last_exec_ = msg.seq;
  next_propose_ = last_exec_ + 1;
  ++state_transfers_;
  prune_slots_below(last_exec_);
  disarm_view_timer();
  // Resume normal operation from the adopted state.
  if (is_leader()) try_propose();
}

// --- Catch-up protocol -------------------------------------------------

void PbftCore::on_restart() {
  if (paused_) return;
  // The node was down or cut off: it may have missed arbitrarily many
  // slots (and view changes). Probe every peer once — the first useful
  // answer fixes the preferred sync peer — instead of resuming blind
  // into a full view timeout.
  finish_catch_up();
  begin_catch_up(ctx_.n());
}

void PbftCore::note_lag(SeqNum seq, std::size_t from) {
  const SeqNum capped = std::min(seq, last_exec_ + kSeqWindow);
  if (capped > lag_target_) lag_target_ = capped;
  begin_catch_up(from);
}

void PbftCore::begin_catch_up(std::size_t prefer) {
  if (prefer < ctx_.n() && prefer != ctx_.index()) sync_peer_.prefer(prefer);
  if (catching_up_) return;
  catching_up_ = true;
  catch_up_attempt_ = 0;
  // With no preferred peer (restart probe) ask everyone; otherwise ask
  // the peer whose message revealed the lag.
  send_catch_up_request(prefer >= ctx_.n());
  arm_catch_up_timer();
}

void PbftCore::send_catch_up_request(bool broadcast) {
  auto msg = std::make_shared<CatchUpRequestMsg>();
  msg->have_seq = last_exec_;
  if (broadcast) {
    ctx_.broadcast(msg);
  } else {
    ctx_.send_to(sync_peer_.peer(), std::move(msg));
  }
}

void PbftCore::arm_catch_up_timer() {
  catch_up_timer_.cancel();
  catch_up_timer_ = ctx_.after(backoff_.delay(catch_up_attempt_, rng_),
                               [this] { catch_up_tick(); });
}

void PbftCore::catch_up_tick() {
  if (paused_ || !catching_up_) return;
  if (last_exec_ >= lag_target_ && catch_up_attempt_ > 0) {
    // Caught up (or the restart probe drew no evidence of lag).
    finish_catch_up();
    return;
  }
  if (catch_up_attempt_ >= kMaxCatchUpAttempts) {
    // Nobody can serve this gap: the lag evidence was stale or forged
    // (beyond-window garbage). Stand down; fresh evidence re-arms.
    lag_target_ = last_exec_;
    finish_catch_up();
    return;
  }
  sync_peer_.on_timeout();  // rotates after repeated silence
  ++catch_up_attempt_;
  send_catch_up_request(false);
  arm_catch_up_timer();
}

void PbftCore::finish_catch_up() {
  catching_up_ = false;
  catch_up_attempt_ = 0;
  catch_up_timer_.cancel();
}

void PbftCore::on_catch_up_request(std::size_t from,
                                   const CatchUpRequestMsg& msg) {
  if (last_exec_ <= msg.have_seq) return;  // not ahead of the requester
  // Bounds-check the requested span before serving: have_seq is
  // attacker-controlled, so the reply is clamped to kMaxCatchUpSpan
  // executed slots; the requester comes back for the rest.
  const SeqNum first = msg.have_seq + 1;
  const auto begin = slots_.find(first);
  if (begin != slots_.end() && begin->second.executed) {
    auto reply = std::make_shared<CatchUpBatchMsg>();
    for (SeqNum seq = first;
         seq <= last_exec_ && reply->entries.size() < kMaxCatchUpSpan;
         ++seq) {
      const auto it = slots_.find(seq);
      if (it == slots_.end() || !it->second.executed) break;
      // Each entry carries the slot's commit certificate (modeled as
      // its signer count: we executed, so we saw a commit quorum).
      reply->entries.push_back({seq, it->second.payload, ctx_.quorum()});
    }
    if (!reply->entries.empty()) {
      ctx_.send_to(from, std::move(reply));
      return;
    }
  }
  // The gap starts below our pruned log floor: serve the certified
  // snapshot instead; the requester streams the remainder afterwards.
  if (snapshot_seq_ > msg.have_seq) {
    auto reply = std::make_shared<StateSnapshotMsg>();
    reply->seq = snapshot_seq_;
    reply->digest = snapshot_digest_;
    reply->blob = snapshot_blob_;
    reply->proof = ckpt_certs_.count(snapshot_seq_) != 0 ? ctx_.quorum() : 0;
    ctx_.send_to(from, std::move(reply));
  }
}

void PbftCore::on_catch_up_batch(std::size_t from,
                                 const CatchUpBatchMsg& msg) {
  bool progressed = false;
  for (const auto& e : msg.entries) {
    if (e.seq != last_exec_ + 1) continue;  // in-order execution only
    // Modeled commit-certificate check: an entry not backed by 2f + 1
    // commit signatures is a fabrication and must not execute.
    if (e.payload == nullptr || e.proof < ctx_.quorum()) continue;
    Slot& s = slot(e.seq);
    if (s.executed) continue;
    s.view = view_;
    s.payload = e.payload;
    s.digest = e.payload->digest();
    s.preprepared = true;
    s.validity = Validity::kValid;  // certified: a quorum validated it
    s.executed = true;
    last_exec_ = e.seq;
    if (tracer_ != nullptr) {
      tracer_->record(TraceStage::kBlockCommitted, s.digest, ctx_.now());
    }
    app_.on_commit(e.seq, s.payload);
    maybe_checkpoint(e.seq);
    progressed = true;
  }
  if (!progressed) return;
  ++catch_up_batches_;
  if (next_propose_ <= last_exec_) next_propose_ = last_exec_ + 1;
  sync_peer_.prefer(from);
  sync_peer_.on_progress();
  catch_up_attempt_ = 0;
  if (catching_up_) {
    const bool maybe_more = msg.entries.size() >= kMaxCatchUpSpan;
    if (!maybe_more && last_exec_ >= lag_target_) {
      finish_catch_up();
    } else {
      send_catch_up_request(false);
      arm_catch_up_timer();
    }
  }
  // Slots buffered while we lagged may already hold commit quorums.
  maybe_execute(last_exec_ + 1);
}

void PbftCore::prune_slots_below(SeqNum floor) {
  const auto end = slots_.upper_bound(floor);
  for (auto it = slots_.begin(); it != end; ++it) {
    const Slot& s = it->second;
    std::size_t bytes = 48;  // header, digests, vote bookkeeping
    if (s.payload != nullptr) bytes += s.payload->wire_size();
    if (s.prepared_payload != nullptr && s.prepared_payload != s.payload) {
      bytes += s.prepared_payload->wire_size();
    }
    gc_.add(bytes);
  }
  slots_.erase(slots_.begin(), end);
}

void PbftCore::arm_view_timer() {
  if (view_timer_.scheduled()) return;
  view_timer_ = ctx_.after(ctx_.config().view_timeout,
                           [this] { on_view_timeout(); });
}

void PbftCore::disarm_view_timer() { view_timer_.cancel(); }

void PbftCore::on_view_timeout() {
  if (paused_) return;
  if (!want_progress_) return;  // idle system: nothing to blame the leader for
  // Suspect the leader; vote to move to the next view.
  const View target = view_ + 1;
  auto msg = std::make_shared<ViewChangeMsg>();
  msg->new_view = target;
  msg->last_exec = last_exec_;
  // P-set: every prepared certificate above the stable checkpoint,
  // including executed-here slots — a peer (or the new leader) may not
  // have executed them, and re-proposing anything else at those
  // sequences would fork the committed history.
  for (const auto& [sq, sl] : slots_) {
    if (sq > stable_checkpoint_ && sl.has_prepared) {
      // An honest replica only records has_prepared behind a full
      // prepare quorum, so the carried proof is quorum-sized.
      msg->prepared.push_back(
          {sl.prepared_view, sq, sl.prepared_payload, ctx_.quorum()});
    }
  }
  ctx_.broadcast(msg);
  vc_votes_[target][ctx_.index()] = *msg;
  // Re-arm: if the view change stalls, try the next view.
  view_timer_ = ctx_.after(ctx_.config().view_timeout,
                           [this] { on_view_timeout(); });
  // Count own vote toward the new view.
  on_view_change(ctx_.index(), *msg);
}

void PbftCore::on_view_change(std::size_t from, const ViewChangeMsg& msg) {
  if (msg.new_view <= view_) return;
  vc_votes_[msg.new_view][from] = msg;
  if (vc_votes_[msg.new_view].size() < ctx_.quorum()) return;
  if (leader_index(msg.new_view, ctx_.n()) != ctx_.index()) return;

  // We are the new leader with a quorum of view-change votes. Copy the
  // votes first: enter_view() prunes vc_votes_ under our feet.
  const std::map<std::size_t, ViewChangeMsg> votes = vc_votes_[msg.new_view];
  enter_view(msg.new_view);
  auto nv = std::make_shared<NewViewMsg>();
  nv->new_view = view_;
  nv->proof = votes.size();
  ctx_.broadcast(nv);

  // Safety carry-over: for every in-flight slot any vote reported as
  // prepared, re-propose the highest-view payload; fill sequence gaps
  // below the highest prepared slot with null requests. Entries whose
  // prepare certificate does not reach quorum are fabrications (a
  // Byzantine voter cannot forge 2f + 1 prepare signatures) and must
  // not be re-proposed — nor be allowed absurd sequence numbers that
  // would make the gap-filling loop spin forever.
  std::map<SeqNum, std::pair<View, PayloadPtr>> carry;
  for (const auto& [idx, vote] : votes) {
    for (const auto& p : vote.prepared) {
      if (p.seq <= last_exec_ || p.payload == nullptr) continue;
      if (p.proof < ctx_.quorum()) continue;
      if (p.seq > last_exec_ + kSeqWindow) continue;
      auto [it, inserted] = carry.try_emplace(p.seq, p.view, p.payload);
      if (!inserted && p.view > it->second.first) {
        it->second = {p.view, p.payload};
      }
    }
  }
  if (!carry.empty()) {
    const SeqNum top = carry.rbegin()->first;
    for (SeqNum seq = last_exec_ + 1; seq <= top; ++seq) {
      PayloadPtr payload;
      const auto it = carry.find(seq);
      payload = it != carry.end() ? it->second.second
                                  : std::make_shared<NoopPayload>();
      Slot& s = slot(seq);
      s.view = view_;
      s.payload = payload;
      s.digest = payload->digest();
      s.preprepared = true;
      s.validity = Validity::kValid;
      auto pp = std::make_shared<PrePrepareMsg>();
      pp->view = view_;
      pp->seq = seq;
      pp->payload = payload;
      ctx_.broadcast(pp);
      arm_view_timer();
      maybe_send_prepare(seq);
    }
    next_propose_ = top + 1;
  }
  try_propose();
}

void PbftCore::on_new_view(std::size_t from, const NewViewMsg& msg) {
  if (msg.new_view <= view_) return;
  if (from != leader_index(msg.new_view, ctx_.n())) return;
  // Modeled V-set verification: a genuine NEW-VIEW is backed by a
  // quorum of view-change votes; without it one hostile message from a
  // future leader would drag the whole group into an absurd view.
  if (msg.proof < ctx_.quorum()) return;
  enter_view(msg.new_view);
}

void PbftCore::enter_view(View v) {
  if (v <= view_) return;
  view_ = v;
  ++view_changes_;
  next_propose_ = last_exec_ + 1;
  disarm_view_timer();
  // Reset vote state of every in-flight slot: votes are per-view. The
  // prepared certificate (has_prepared / prepared_payload) deliberately
  // survives — it is the safety carry-over a later view change attests.
  for (auto& [sq, sl] : slots_) {
    if (sq <= last_exec_ || sl.executed) continue;
    sl.preprepared = false;
    sl.sent_prepare = false;
    sl.sent_commit = false;
    sl.prepares.clear();
    sl.commits.clear();
  }
  vc_votes_.erase(vc_votes_.begin(), vc_votes_.upper_bound(v));
  if (want_progress_) arm_view_timer();
}

}  // namespace predis::consensus::pbft
