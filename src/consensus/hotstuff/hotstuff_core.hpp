// Chained HotStuff (Yin et al., PODC'19) over opaque payloads.
//
// One block per round; votes go to the *next* round's leader, which
// aggregates them into a quorum certificate embedded in its own
// proposal — the O(n) all-to-one pattern that gives HotStuff its
// scalability. Commit uses the three-chain rule with consecutive
// rounds; safety uses the standard locked-round voting rule. A simple
// pacemaker (round-robin leaders, timeout → NewView with the highest
// known QC) restores progress after leader failure.
//
// The same core drives baseline HotStuff (TxBatchPayload), P-HS
// (PredisPayload) and the Narwhal/Stratus comparisons (IdListPayload).
#pragma once

#include <map>
#include <set>
#include <unordered_map>

#include "common/rng.hpp"
#include "common/thread_annotations.hpp"
#include "consensus/common.hpp"
#include "core/recovery.hpp"

namespace predis {
class BlockTracer;
}  // namespace predis

namespace predis::consensus::hotstuff {

using Round = std::uint64_t;

/// Committed blocks are retained this many rounds below the commit
/// frontier so lagging replicas can stream them; anything older is
/// garbage-collected (with byte accounting in gc_stats()).
inline constexpr Round kBlockRetention = 128;

/// Maximum blocks one HsBlockBatchMsg carries. The requester's
/// have_round is attacker-controlled, so servers clamp every reply to
/// this span; a deeper gap is bridged by jump-adopting the newest
/// certified span (snapshot-like) and streaming forward from there.
inline constexpr Round kMaxBlockSpan = 64;

/// Retry budget for one catch-up episode with no progress (lag
/// evidence can be forged); any real progress resets it.
inline constexpr std::size_t kMaxCatchUpAttempts = 12;

struct QuorumCert {
  Round round = 0;               ///< Round of the certified block.
  Hash32 block_hash = kZeroHash;
  std::size_t signers = 0;       ///< For wire-size accounting only.

  std::size_t wire_size() const { return qc_bytes(signers); }
};

struct HsBlock {
  Round round = 0;
  Hash32 parent = kZeroHash;  ///< Hash of the parent block.
  QuorumCert justify;         ///< QC this block carries (for its parent).
  PayloadPtr payload;
  Hash32 hash = kZeroHash;    ///< Computed at construction.
};

using BlockPtr = std::shared_ptr<const HsBlock>;

/// Deterministic block hash binding round, parent, justify and payload.
Hash32 block_hash(Round round, const Hash32& parent, const Hash32& justify,
                  const Hash32& payload_digest);

BlockPtr make_block(Round round, const Hash32& parent, QuorumCert justify,
                    PayloadPtr payload);

struct ProposalMsg final : runtime::Message {
  BlockPtr block;

  std::size_t wire_size() const override {
    return 48 + kSigBytes + block->justify.wire_size() +
           block->payload->wire_size();
  }
  const char* name() const override { return "HsProposal"; }
};

struct VoteMsg final : runtime::Message {
  Round round = 0;
  Hash32 block_hash = kZeroHash;

  std::size_t wire_size() const override { return kVoteBytes; }
  const char* name() const override { return "HsVote"; }
};

struct NewViewMsg final : runtime::Message {
  Round round = 0;  ///< Round the sender wants to enter.
  QuorumCert high_qc;

  std::size_t wire_size() const override {
    return 16 + kSigBytes + high_qc.wire_size();
  }
  const char* name() const override { return "HsNewView"; }
};

/// A lagging replica asking a peer for the blocks it missed above its
/// commit frontier.
struct HsCatchUpRequestMsg final : runtime::Message {
  Round have_round = 0;

  std::size_t wire_size() const override { return 16 + kSigBytes; }
  const char* name() const override { return "HsCatchUpRequest"; }
};

/// Run of blocks in round order. Entries with commit_proof >= quorum
/// carry a (modeled) commit certificate and are adopted directly;
/// entries with commit_proof 0 are the server's uncommitted suffix and
/// go through the normal store/chain-rule path (their justify QCs are
/// verified like any proposal's).
struct HsBlockBatchMsg final : runtime::Message {
  struct Entry {
    BlockPtr block;
    std::size_t commit_proof = 0;
  };
  std::vector<Entry> entries;

  std::size_t wire_size() const override {
    std::size_t size = 16 + kSigBytes;
    for (const Entry& e : entries) {
      size += 48 + qc_bytes(e.commit_proof) + e.block->justify.wire_size() +
              (e.block->payload ? e.block->payload->wire_size() : 0);
    }
    return size;
  }
  const char* name() const override { return "HsBlockBatch"; }
};

class HotStuffApp {
 public:
  virtual ~HotStuffApp() = default;

  /// Leader-side payload for `round`. `ancestors` lists the payloads of
  /// uncommitted ancestor blocks, nearest first — apps use it to avoid
  /// double-ordering (tx dedup, Predis prev-cut chaining). Return
  /// nullptr when nothing needs ordering.
  virtual PayloadPtr make_payload(Round round,
                                  const std::vector<PayloadPtr>& ancestors) = 0;

  /// Replica-side check; kPending defers the vote until the app calls
  /// HotStuffCore::revalidate().
  virtual Validity validate(Round round, const PayloadPtr& payload,
                            const std::vector<PayloadPtr>& ancestors) = 0;

  /// Block committed (three-chain rule), in round order, exactly once.
  virtual void on_commit(Round round, const PayloadPtr& payload) = 0;
};

class HotStuffCore {
 public:
  HotStuffCore(NodeContext ctx, HotStuffApp& app);

  void start();
  bool handle(NodeId from, const runtime::MsgPtr& msg);

  /// App signals: data ready / pending validation may now pass.
  void payload_ready();
  void revalidate();

  /// Crash-recovery hook: the node was down (or cut off) and missed
  /// every message in the window. Probes peers for the blocks it
  /// missed instead of resuming blind into round timeouts.
  void on_restart();

  Round current_round() const { return cur_round_; }
  Round committed_round() const { return committed_round_; }
  bool is_leader() const {
    return leader_index(cur_round_, ctx_.n()) == ctx_.index();
  }
  std::uint64_t timeouts() const { return timeouts_; }
  /// Catch-up batches this replica adopted blocks from.
  std::uint64_t catch_up_batches() const { return catch_up_batches_; }
  /// Peer rotations forced by unresponsive catch-up servers.
  std::size_t sync_stalls() const { return sync_peer_.stalls(); }
  /// Block-store bytes/items reclaimed below the retention window.
  const core::GcStats& gc_stats() const { return gc_; }

  /// Reseed the recovery jitter stream (deterministic per run; the
  /// default derives from the node id alone).
  void set_recovery_seed(std::uint64_t seed) { rng_ = Rng(seed); }

  /// Fault injection: paused nodes neither vote nor propose.
  void set_paused(bool paused) { paused_ = paused; }

  /// Attach the shared lifecycle tracer (may be null): records proposal
  /// and commit times keyed by payload digest. Baseline protocols wire
  /// this directly; P-HS traces through its Predis engine instead.
  void set_tracer(BlockTracer* tracer) { tracer_ = tracer; }

 private:
  struct HashKey {
    std::size_t operator()(const Hash32& h) const {
      std::size_t v;
      static_assert(sizeof(v) <= 32);
      __builtin_memcpy(&v, h.data(), sizeof(v));
      return v;
    }
  };

  const HsBlock* get_block(const Hash32& hash) const;
  void store_block(BlockPtr block);
  void try_flush_orphans();
  void on_proposal(std::size_t from, const ProposalMsg& msg);
  void process_block(const BlockPtr& block);
  void try_vote(const BlockPtr& block);
  void send_vote(Round round, const Hash32& hash);
  void on_vote(std::size_t from, const VoteMsg& msg);
  void on_new_view(std::size_t from, const NewViewMsg& msg);
  void update_high_qc(const QuorumCert& qc);
  void advance_round(Round round);
  void try_propose();
  void commit_chain(const HsBlock& anchor);
  std::vector<PayloadPtr> ancestors_of(const Hash32& parent_hash) const;
  bool extends(const Hash32& descendant, const Hash32& ancestor) const;
  bool has_uncommitted_payload() const;
  void arm_round_timer();
  void on_round_timeout();
  void note_lag(Round round, std::size_t from);
  void begin_catch_up(std::size_t prefer);
  void catch_up_tick();
  void send_catch_up_request(bool broadcast);
  void arm_catch_up_timer();
  void finish_catch_up();
  void on_catch_up_request(std::size_t from, const HsCatchUpRequestMsg& msg);
  void on_block_batch(std::size_t from, const HsBlockBatchMsg& msg);
  void adopt_committed(const BlockPtr& block, std::size_t commit_proof);
  void prune_blocks();

  NodeContext ctx_;
  HotStuffApp& app_;
  BlockTracer* tracer_ = nullptr;

  std::unordered_map<Hash32, BlockPtr, HashKey> blocks_;
  // Deterministic round-ordered index over blocks_, so log GC walks
  // rounds in order instead of unordered-map iteration order.
  std::multimap<Round, Hash32> blocks_by_round_;
  std::multimap<Hash32, BlockPtr, std::less<>> orphans_
      PREDIS_MSG_DERIVED;  // keyed by parent
  Hash32 genesis_hash_ = kZeroHash;

  Round cur_round_ = 1;
  Round last_voted_round_ = 0;
  Round locked_round_ = 0;
  Hash32 locked_hash_ = kZeroHash;  // set to genesis at construction
  Round committed_round_ = 0;
  Hash32 committed_hash_ = kZeroHash;  // genesis
  QuorumCert high_qc_;
  Round proposed_round_ = 0;  ///< Highest round we proposed in.

  // Vote aggregation at the next leader: round -> digest -> voters.
  std::map<Round, std::map<Hash32, std::set<std::size_t>>> votes_
      PREDIS_MSG_DERIVED;
  // NewView aggregation: round -> senders.
  std::map<Round, std::set<std::size_t>> new_views_ PREDIS_MSG_DERIVED;

  // Blocks whose validation returned kPending (await revalidate()).
  std::map<Round, BlockPtr> pending_validation_;

  bool paused_ = false;
  bool want_progress_ = false;
  runtime::TimerHandle round_timer_;
  std::uint64_t timeouts_ = 0;

  // --- Catch-up / recovery ---------------------------------------------
  core::BackoffPolicy backoff_;
  Rng rng_;
  core::StallDetector sync_peer_;
  runtime::TimerHandle catch_up_timer_;
  bool catching_up_ = false;
  std::size_t catch_up_attempt_ = 0;
  /// Highest round peers credibly reached (from orphaned proposals).
  Round lag_round_ = 0;
  std::uint64_t catch_up_batches_ = 0;
  core::GcStats gc_;
};

}  // namespace predis::consensus::hotstuff
