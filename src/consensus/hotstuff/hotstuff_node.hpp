// Baseline chained-HotStuff consensus node: clients broadcast
// transactions to every replica; each round's leader packs a full batch
// into its proposal, excluding transactions already ordered by
// uncommitted ancestor blocks. This is the system P-HS is measured
// against in Fig. 4(b)/(d).
#pragma once

#include <deque>
#include <set>

#include "consensus/hotstuff/hotstuff_core.hpp"
#include "consensus/payloads.hpp"

namespace predis::consensus::hotstuff {

struct HotStuffNodeConfig {
  std::size_t batch_size = 800;  ///< Transactions per block.
};

class HotStuffNode final : public runtime::Actor, private HotStuffApp {
 public:
  HotStuffNode(NodeContext ctx, HotStuffNodeConfig config,
               CommitLedger& ledger)
      : ctx_(std::move(ctx)),
        cfg_(config),
        ledger_(ledger),
        replies_(ctx_),
        core_(ctx_, *this) {}

  void on_start() override { core_.start(); }

  void on_restart() override { core_.on_restart(); }

  void on_message(NodeId from, const runtime::MsgPtr& msg) override {
    if (const auto* req = dynamic_cast<const ClientRequestMsg*>(msg.get())) {
      enqueue(req->txs);
      return;
    }
    core_.handle(from, msg);
  }

  HotStuffCore& core() { return core_; }
  std::size_t queue_depth() const { return queue_.size(); }

  /// Observation hook: fired for every executed block.
  std::function<void(const Hash32&, const std::vector<Transaction>&,
                     SimTime)>
      on_committed_block;

 private:
  using TxKey = std::pair<NodeId, TxSeq>;

  void enqueue(const std::vector<Transaction>& txs) {
    // Backpressure: shed client load once the uplink queue is far
    // behind, so saturation is graceful (TCP push-back analogue).
    if (ctx_.net().uplink_backlog(ctx_.self()) > milliseconds(400)) return;
    if (queue_.size() >= 8000) return;
    for (const auto& tx : txs) {
      const TxKey key{tx.client, tx.seq};
      if (seen_.count(key) != 0) continue;
      seen_.insert(key);
      queue_.push_back(tx);
    }
    core_.payload_ready();
  }

  // --- HotStuffApp -----------------------------------------------------

  PayloadPtr make_payload(Round /*round*/,
                          const std::vector<PayloadPtr>& ancestors) override {
    if (queue_.empty()) return nullptr;
    // Skip transactions already ordered by in-flight ancestor blocks.
    std::set<TxKey> in_flight;
    for (const auto& payload : ancestors) {
      const auto* batch = dynamic_cast<const TxBatchPayload*>(payload.get());
      if (batch == nullptr) continue;
      for (const auto& tx : batch->txs()) {
        in_flight.insert({tx.client, tx.seq});
      }
    }
    std::vector<Transaction> batch;
    batch.reserve(std::min(queue_.size(), cfg_.batch_size));
    for (const auto& tx : queue_) {
      if (batch.size() >= cfg_.batch_size) break;
      if (in_flight.count({tx.client, tx.seq}) != 0) continue;
      batch.push_back(tx);
    }
    if (batch.empty()) return nullptr;
    return std::make_shared<TxBatchPayload>(std::move(batch));
  }

  Validity validate(Round /*round*/, const PayloadPtr& payload,
                    const std::vector<PayloadPtr>& /*ancestors*/) override {
    return dynamic_cast<const TxBatchPayload*>(payload.get()) != nullptr
               ? Validity::kValid
               : Validity::kInvalid;
  }

  void on_commit(Round round, const PayloadPtr& payload) override {
    const auto& batch = dynamic_cast<const TxBatchPayload&>(*payload);
    std::set<TxKey> committed;
    for (const auto& tx : batch.txs()) committed.insert({tx.client, tx.seq});
    std::deque<Transaction> remaining;
    for (auto& tx : queue_) {
      if (committed.count({tx.client, tx.seq}) == 0) remaining.push_back(tx);
    }
    queue_ = std::move(remaining);

    ledger_.on_commit(ctx_.index(), round, payload->digest(),
                      batch.txs().size(), ctx_.now());
    if (on_committed_block) {
      on_committed_block(payload->digest(), batch.txs(), ctx_.now());
    }
    replies_.reply_committed(batch.txs());
    if (!queue_.empty()) core_.payload_ready();
  }

  NodeContext ctx_;
  HotStuffNodeConfig cfg_;
  CommitLedger& ledger_;
  ReplyManager replies_;
  HotStuffCore core_;
  std::deque<Transaction> queue_;
  std::set<TxKey> seen_;
};

}  // namespace predis::consensus::hotstuff
