#include "consensus/hotstuff/hotstuff_core.hpp"

#include "common/block_tracer.hpp"
#include "common/codec.hpp"
#include "consensus/payloads.hpp"

namespace predis::consensus::hotstuff {

Hash32 block_hash(Round round, const Hash32& parent, const Hash32& justify,
                  const Hash32& payload_digest) {
  Writer w;
  w.u64(round);
  w.hash(parent);
  w.hash(justify);
  w.hash(payload_digest);
  return Sha256::hash(w.data());
}

BlockPtr make_block(Round round, const Hash32& parent, QuorumCert justify,
                    PayloadPtr payload) {
  auto b = std::make_shared<HsBlock>();
  b->round = round;
  b->parent = parent;
  b->justify = justify;
  b->payload = std::move(payload);
  b->hash = block_hash(round, parent, justify.block_hash,
                       b->payload->digest());
  return b;
}

namespace {
bool is_empty_payload(const PayloadPtr& p) {
  return dynamic_cast<const EmptyPayload*>(p.get()) != nullptr;
}
}  // namespace

HotStuffCore::HotStuffCore(NodeContext ctx, HotStuffApp& app)
    : ctx_(std::move(ctx)),
      app_(app),
      // Default recovery jitter stream: deterministic per node id, so a
      // run replays byte-identically; campaigns reseed per run via
      // set_recovery_seed().
      rng_(0x243f6a8885a308d3ULL ^
           (static_cast<std::uint64_t>(ctx_.self()) + 1)),
      sync_peer_(ctx_.n(), ctx_.index()) {
  // Genesis block at round 0, certified by a built-in QC.
  auto genesis = make_block(0, kZeroHash, QuorumCert{},
                            std::make_shared<EmptyPayload>());
  genesis_hash_ = genesis->hash;
  committed_hash_ = genesis_hash_;
  locked_hash_ = genesis_hash_;
  blocks_.emplace(genesis_hash_, std::move(genesis));
  high_qc_ = QuorumCert{0, genesis_hash_, ctx_.quorum()};
}

void HotStuffCore::start() { try_propose(); }

const HsBlock* HotStuffCore::get_block(const Hash32& hash) const {
  const auto it = blocks_.find(hash);
  return it == blocks_.end() ? nullptr : it->second.get();
}

bool HotStuffCore::handle(NodeId from, const runtime::MsgPtr& msg) {
  const std::size_t idx = ctx_.index_of(from);
  if (const auto* m = dynamic_cast<const ProposalMsg*>(msg.get())) {
    if (!paused_ && idx < ctx_.n()) on_proposal(idx, *m);
    return true;
  }
  if (const auto* m = dynamic_cast<const VoteMsg*>(msg.get())) {
    if (!paused_ && idx < ctx_.n()) on_vote(idx, *m);
    return true;
  }
  if (const auto* m = dynamic_cast<const NewViewMsg*>(msg.get())) {
    if (!paused_ && idx < ctx_.n()) on_new_view(idx, *m);
    return true;
  }
  if (const auto* m = dynamic_cast<const HsCatchUpRequestMsg*>(msg.get())) {
    if (!paused_ && idx < ctx_.n()) on_catch_up_request(idx, *m);
    return true;
  }
  if (const auto* m = dynamic_cast<const HsBlockBatchMsg*>(msg.get())) {
    if (!paused_ && idx < ctx_.n()) on_block_batch(idx, *m);
    return true;
  }
  return false;
}

void HotStuffCore::payload_ready() {
  if (paused_) return;
  want_progress_ = true;
  arm_round_timer();
  try_propose();
}

void HotStuffCore::on_proposal(std::size_t from, const ProposalMsg& msg) {
  const BlockPtr& block = msg.block;
  if (block == nullptr || block->payload == nullptr) return;
  if (from != leader_index(block->round, ctx_.n())) return;
  // Modeled QC verification: a genuine certificate aggregates at least
  // quorum() signatures; a forged justify would otherwise both poison
  // high_qc and trick the voting rule (justify.round > locked_round)
  // into voting for an unreachable round, killing liveness.
  if (block->justify.signers < ctx_.quorum()) return;
  if (blocks_.count(block->hash) != 0) return;

  if (blocks_.count(block->parent) == 0) {
    orphans_.emplace(block->parent, block);
    // An orphan far above our commit frontier means we missed the
    // chain in between (downtime / partition): fetch it from the
    // proposer instead of hoarding orphans forever. The slack skips
    // the normal uncommitted suffix (three-chain depth) plus a little
    // out-of-order delivery.
    if (block->round > committed_round_ + 4) {
      note_lag(block->round, from);
    }
    return;
  }
  store_block(block);
  process_block(block);
  try_flush_orphans();
}

void HotStuffCore::store_block(BlockPtr block) {
  const Hash32 hash = block->hash;
  const Round round = block->round;
  blocks_.emplace(hash, std::move(block));
  blocks_by_round_.emplace(round, hash);

  // Votes may have arrived before the block: try to form the QC now.
  const auto vit = votes_.find(round);
  if (vit != votes_.end()) {
    const auto dit = vit->second.find(hash);
    if (dit != vit->second.end() && dit->second.size() >= ctx_.quorum()) {
      update_high_qc(QuorumCert{round, hash, dit->second.size()});
      advance_round(round + 1);
      try_propose();
    }
  }
}

void HotStuffCore::try_flush_orphans() {
  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (auto it = orphans_.begin(); it != orphans_.end();) {
      if (blocks_.count(it->first) == 0) {
        ++it;
        continue;
      }
      BlockPtr block = it->second;
      it = orphans_.erase(it);
      if (blocks_.count(block->hash) == 0) {
        store_block(block);
        process_block(block);
        progressed = true;
      }
    }
  }
}

void HotStuffCore::process_block(const BlockPtr& block) {
  update_high_qc(block->justify);

  // Chain rules (chained HotStuff): b'' = justify target, b' its justify
  // target, b the one below. Lock on the 2-chain, commit on a 3-chain of
  // consecutive rounds.
  const HsBlock* b2 = get_block(block->justify.block_hash);
  if (b2 != nullptr) {
    const HsBlock* b1 = get_block(b2->justify.block_hash);
    if (b1 != nullptr) {
      if (b1->round > locked_round_) {
        locked_round_ = b1->round;
        locked_hash_ = b1->hash;
      }
      const HsBlock* b0 = get_block(b1->justify.block_hash);
      if (b0 != nullptr && b2->round == b1->round + 1 &&
          b1->round == b0->round + 1 && b0->round > committed_round_) {
        commit_chain(*b0);
      }
    }
  }

  try_vote(block);
  advance_round(block->round + 1);
}

void HotStuffCore::try_vote(const BlockPtr& block) {
  if (paused_) return;
  if (block->round <= last_voted_round_) return;
  // Safety rule: extend the locked block, or see a newer QC.
  if (!(block->justify.round > locked_round_ ||
        extends(block->hash, locked_hash_))) {
    return;
  }

  Validity validity;
  if (is_empty_payload(block->payload)) {
    validity = Validity::kValid;
  } else {
    validity = app_.validate(block->round, block->payload,
                             ancestors_of(block->parent));
  }
  if (validity == Validity::kInvalid) return;
  if (validity == Validity::kPending) {
    pending_validation_[block->round] = block;
    return;
  }

  last_voted_round_ = block->round;
  send_vote(block->round, block->hash);
}

void HotStuffCore::send_vote(Round round, const Hash32& hash) {
  // Votes go to the next leader — and to the one after it. With a
  // strict round-robin pacemaker, a single crashed node would otherwise
  // swallow exactly the QC that completes every three-chain (votes for
  // the round before its turn are addressed to it), stalling commits
  // forever at n = 4. Double-targeting is the standard hardening and
  // keeps the vote pattern O(n).
  auto vote = std::make_shared<VoteMsg>();
  vote->round = round;
  vote->block_hash = hash;
  const std::size_t first = leader_index(round + 1, ctx_.n());
  const std::size_t second = leader_index(round + 2, ctx_.n());
  for (const std::size_t target : {first, second}) {
    if (target == second && second == first) break;  // n == 1 edge case
    if (target == ctx_.index()) {
      on_vote(ctx_.index(), *vote);
    } else {
      ctx_.send_to(target, vote);
    }
  }
}

void HotStuffCore::revalidate() {
  if (paused_) return;
  while (!pending_validation_.empty()) {
    const auto it = pending_validation_.begin();
    BlockPtr block = it->second;
    if (block->round <= last_voted_round_) {
      // We already voted past this round; the chance is gone.
      pending_validation_.erase(it);
      continue;
    }
    const Validity validity = app_.validate(block->round, block->payload,
                                            ancestors_of(block->parent));
    if (validity == Validity::kPending) return;  // still waiting
    pending_validation_.erase(it);
    if (validity == Validity::kInvalid) continue;
    last_voted_round_ = block->round;
    send_vote(block->round, block->hash);
  }
}

void HotStuffCore::on_vote(std::size_t from, const VoteMsg& msg) {
  auto& voters = votes_[msg.round][msg.block_hash];
  voters.insert(from);
  if (voters.size() != ctx_.quorum()) return;
  if (blocks_.count(msg.block_hash) == 0) return;  // QC formed on arrival

  update_high_qc(QuorumCert{msg.round, msg.block_hash, voters.size()});
  advance_round(msg.round + 1);
  // advance_round may have been a no-op (we already entered this round
  // when the proposal arrived); with the QC in hand we can propose now.
  try_propose();
}

void HotStuffCore::on_new_view(std::size_t from, const NewViewMsg& msg) {
  // Only adopt a QC whose (modeled) aggregate signature verifies — one
  // forged NewView would otherwise pin high_qc at an absurd round for
  // the rest of the run.
  if (msg.high_qc.signers >= ctx_.quorum()) update_high_qc(msg.high_qc);
  auto& senders = new_views_[msg.round];
  senders.insert(from);
  if (leader_index(msg.round, ctx_.n()) == ctx_.index() &&
      senders.size() >= ctx_.quorum()) {
    advance_round(msg.round);
    try_propose();
  }
}

void HotStuffCore::update_high_qc(const QuorumCert& qc) {
  if (qc.round > high_qc_.round) {
    high_qc_ = qc;
  }
}

void HotStuffCore::advance_round(Round round) {
  if (round <= cur_round_) return;
  cur_round_ = round;
  round_timer_.cancel();
  if (want_progress_) arm_round_timer();
  try_propose();
}

void HotStuffCore::try_propose() {
  if (paused_) return;
  if (leader_index(cur_round_, ctx_.n()) != ctx_.index()) return;
  if (proposed_round_ >= cur_round_) return;

  // A leader may propose when it holds the QC of the previous round, or
  // when a quorum of NewView messages lets it re-anchor on high_qc.
  const bool fresh_qc = high_qc_.round + 1 == cur_round_;
  const auto nv = new_views_.find(cur_round_);
  const bool timeout_quorum =
      nv != new_views_.end() && nv->second.size() >= ctx_.quorum();
  if (!fresh_qc && !timeout_quorum) return;

  // Past the load-stop point cut no new payload, but keep the rounds
  // turning with empty blocks below: an in-flight payload needs two
  // more chained rounds to reach its three-chain commit, and stopping
  // cold would strand it as a cut-proposed trace entry with no commit.
  PayloadPtr payload =
      ctx_.now() < ctx_.config().propose_until
          ? app_.make_payload(cur_round_, ancestors_of(high_qc_.block_hash))
          : nullptr;
  if (payload == nullptr) {
    // Keep the pipeline moving only if an uncommitted real payload
    // needs the extra rounds to reach its three-chain commit.
    if (!has_uncommitted_payload()) return;
    payload = std::make_shared<EmptyPayload>();
  }

  proposed_round_ = cur_round_;
  if (tracer_ != nullptr && !is_empty_payload(payload)) {
    tracer_->record(TraceStage::kCutProposed, payload->digest(), ctx_.now());
  }
  BlockPtr block =
      make_block(cur_round_, high_qc_.block_hash, high_qc_, std::move(payload));
  store_block(block);

  auto msg = std::make_shared<ProposalMsg>();
  msg->block = block;
  ctx_.broadcast(msg);
  want_progress_ = true;
  arm_round_timer();
  process_block(block);
}

void HotStuffCore::commit_chain(const HsBlock& anchor) {
  // Collect the uncommitted chain anchor .. committed (exclusive).
  std::vector<const HsBlock*> chain;
  const HsBlock* cursor = &anchor;
  while (cursor != nullptr && cursor->hash != committed_hash_ &&
         cursor->round > 0) {
    chain.push_back(cursor);
    cursor = get_block(cursor->parent);
  }
  committed_round_ = anchor.round;
  committed_hash_ = anchor.hash;
  for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
    if (!is_empty_payload((*it)->payload)) {
      if (tracer_ != nullptr) {
        tracer_->record(TraceStage::kBlockCommitted,
                        (*it)->payload->digest(), ctx_.now());
      }
      app_.on_commit((*it)->round, (*it)->payload);
    }
  }
  if (!has_uncommitted_payload() && pending_validation_.empty()) {
    want_progress_ = false;
    round_timer_.cancel();
  }
  prune_blocks();
}

// --- Catch-up protocol -------------------------------------------------

void HotStuffCore::on_restart() {
  if (paused_) return;
  // The node was down or cut off: it may have missed arbitrarily many
  // rounds. Probe every peer once — the first useful answer fixes the
  // preferred sync peer — instead of resuming blind into a timeout.
  finish_catch_up();
  begin_catch_up(ctx_.n());
}

void HotStuffCore::note_lag(Round round, std::size_t from) {
  if (round > lag_round_) lag_round_ = round;
  begin_catch_up(from);
}

void HotStuffCore::begin_catch_up(std::size_t prefer) {
  if (prefer < ctx_.n() && prefer != ctx_.index()) sync_peer_.prefer(prefer);
  if (catching_up_) return;
  catching_up_ = true;
  catch_up_attempt_ = 0;
  send_catch_up_request(prefer >= ctx_.n());
  arm_catch_up_timer();
}

void HotStuffCore::send_catch_up_request(bool broadcast) {
  auto msg = std::make_shared<HsCatchUpRequestMsg>();
  msg->have_round = committed_round_;
  if (broadcast) {
    ctx_.broadcast(msg);
  } else {
    ctx_.send_to(sync_peer_.peer(), std::move(msg));
  }
}

void HotStuffCore::arm_catch_up_timer() {
  catch_up_timer_.cancel();
  catch_up_timer_ = ctx_.after(backoff_.delay(catch_up_attempt_, rng_),
                               [this] { catch_up_tick(); });
}

void HotStuffCore::catch_up_tick() {
  if (paused_ || !catching_up_) return;
  if (cur_round_ >= lag_round_ && catch_up_attempt_ > 0) {
    finish_catch_up();
    return;
  }
  if (catch_up_attempt_ >= kMaxCatchUpAttempts) {
    // Nobody can serve this gap: stale or forged lag evidence. Stand
    // down; fresh evidence re-arms.
    lag_round_ = cur_round_;
    finish_catch_up();
    return;
  }
  sync_peer_.on_timeout();  // rotates after repeated silence
  ++catch_up_attempt_;
  send_catch_up_request(false);
  arm_catch_up_timer();
}

void HotStuffCore::finish_catch_up() {
  catching_up_ = false;
  catch_up_attempt_ = 0;
  catch_up_timer_.cancel();
}

void HotStuffCore::on_catch_up_request(std::size_t from,
                                       const HsCatchUpRequestMsg& msg) {
  if (committed_round_ <= msg.have_round) return;  // not ahead
  // Committed chain segment, newest kMaxBlockSpan blocks above the
  // requester's frontier (bounds-checked: have_round is attacker-
  // controlled, so the reply never exceeds kMaxBlockSpan blocks). If
  // the gap is deeper than our retained chain, the requester
  // jump-adopts the newest certified span — snapshot semantics.
  std::vector<HsBlockBatchMsg::Entry> committed;
  const HsBlock* cursor = get_block(committed_hash_);
  while (cursor != nullptr && cursor->round > msg.have_round &&
         cursor->round > 0 && committed.size() < kMaxBlockSpan) {
    // Every committed block is backed by the three-chain a quorum
    // certified; model the commit certificate as quorum signers.
    committed.push_back({blocks_.at(cursor->hash), ctx_.quorum()});
    cursor = get_block(cursor->parent);
  }
  // Uncommitted suffix up to high_qc: lets the requester rejoin voting
  // without waiting for the next three-chain. No commit certificate —
  // the receiver runs these through the normal chain rules.
  std::vector<HsBlockBatchMsg::Entry> suffix;
  cursor = get_block(high_qc_.block_hash);
  while (cursor != nullptr && cursor->hash != committed_hash_ &&
         cursor->round > 0) {
    suffix.push_back({blocks_.at(cursor->hash), 0});
    cursor = get_block(cursor->parent);
  }
  auto reply = std::make_shared<HsBlockBatchMsg>();
  for (auto it = committed.rbegin(); it != committed.rend(); ++it) {
    reply->entries.push_back(std::move(*it));
  }
  for (auto it = suffix.rbegin(); it != suffix.rend(); ++it) {
    if (reply->entries.size() >= kMaxBlockSpan) break;
    reply->entries.push_back(std::move(*it));
  }
  if (!reply->entries.empty()) ctx_.send_to(from, std::move(reply));
}

void HotStuffCore::on_block_batch(std::size_t from,
                                  const HsBlockBatchMsg& msg) {
  bool progressed = false;
  for (const auto& e : msg.entries) {
    if (e.block == nullptr || e.block->payload == nullptr) continue;
    if (e.commit_proof >= ctx_.quorum()) {
      if (e.block->round > committed_round_) {
        adopt_committed(e.block, e.commit_proof);
        progressed = true;
      }
    } else {
      // Uncommitted suffix: same admission rules as a proposal — the
      // justify QC must verify; the chain rules derive locks/commits.
      if (e.block->justify.signers < ctx_.quorum()) continue;
      if (blocks_.count(e.block->hash) != 0) continue;
      if (blocks_.count(e.block->parent) == 0) {
        orphans_.emplace(e.block->parent, e.block);
        continue;
      }
      store_block(e.block);
      process_block(e.block);
      progressed = true;
    }
  }
  if (!progressed) return;
  ++catch_up_batches_;
  try_flush_orphans();
  sync_peer_.prefer(from);
  sync_peer_.on_progress();
  catch_up_attempt_ = 0;
  if (catching_up_) {
    if (cur_round_ >= lag_round_) {
      finish_catch_up();
    } else {
      send_catch_up_request(false);
      arm_catch_up_timer();
    }
  }
  prune_blocks();
}

void HotStuffCore::adopt_committed(const BlockPtr& block,
                                   std::size_t commit_proof) {
  if (blocks_.count(block->hash) == 0) {
    blocks_.emplace(block->hash, block);
    blocks_by_round_.emplace(block->round, block->hash);
  }
  committed_round_ = block->round;
  committed_hash_ = block->hash;
  if (block->round > locked_round_) {
    locked_round_ = block->round;
    locked_hash_ = block->hash;
  }
  if (last_voted_round_ < block->round) last_voted_round_ = block->round;
  // The commit certificate doubles as a QC on the block itself, so a
  // leader can extend the adopted frontier immediately.
  update_high_qc(QuorumCert{block->round, block->hash, commit_proof});
  if (!is_empty_payload(block->payload)) {
    if (tracer_ != nullptr) {
      tracer_->record(TraceStage::kBlockCommitted, block->payload->digest(),
                      ctx_.now());
    }
    app_.on_commit(block->round, block->payload);
  }
  advance_round(block->round + 1);
}

void HotStuffCore::prune_blocks() {
  if (committed_round_ <= kBlockRetention) return;
  const Round floor = committed_round_ - kBlockRetention;
  // Walk the round-ordered index, not blocks_ itself: GC order must be
  // deterministic, and blocks_ is an unordered map.
  for (auto it = blocks_by_round_.begin();
       it != blocks_by_round_.end() && it->first < floor;) {
    // Keep genesis (chain-rule walks bottom out there) and the commit
    // frontier itself; everything committed below the retention window
    // only existed to serve catch-up and can go.
    if (it->first == 0 || it->second == committed_hash_) {
      ++it;
      continue;
    }
    const auto bit = blocks_.find(it->second);
    if (bit != blocks_.end()) {
      const HsBlock& b = *bit->second;
      gc_.add(48 + b.justify.wire_size() +
              (b.payload != nullptr ? b.payload->wire_size() : 0));
      blocks_.erase(bit);
    }
    it = blocks_by_round_.erase(it);
  }
  for (auto it = orphans_.begin(); it != orphans_.end();) {
    if (it->second->round <= committed_round_) {
      gc_.add(48 + (it->second->payload != nullptr
                        ? it->second->payload->wire_size()
                        : 0));
      it = orphans_.erase(it);
    } else {
      ++it;
    }
  }
  votes_.erase(votes_.begin(), votes_.lower_bound(floor));
  new_views_.erase(new_views_.begin(), new_views_.lower_bound(floor));
}

std::vector<PayloadPtr> HotStuffCore::ancestors_of(
    const Hash32& parent_hash) const {
  std::vector<PayloadPtr> out;
  const HsBlock* cursor = get_block(parent_hash);
  while (cursor != nullptr && cursor->hash != committed_hash_ &&
         cursor->round > 0) {
    out.push_back(cursor->payload);
    cursor = get_block(cursor->parent);
  }
  return out;
}

bool HotStuffCore::extends(const Hash32& descendant,
                           const Hash32& ancestor) const {
  const HsBlock* cursor = get_block(descendant);
  const HsBlock* target = get_block(ancestor);
  if (target == nullptr) return false;
  while (cursor != nullptr) {
    if (cursor->hash == ancestor) return true;
    if (cursor->round <= target->round) return false;
    cursor = get_block(cursor->parent);
  }
  return false;
}

bool HotStuffCore::has_uncommitted_payload() const {
  const HsBlock* cursor = get_block(high_qc_.block_hash);
  while (cursor != nullptr && cursor->hash != committed_hash_ &&
         cursor->round > 0) {
    if (!is_empty_payload(cursor->payload)) return true;
    cursor = get_block(cursor->parent);
  }
  return false;
}

void HotStuffCore::arm_round_timer() {
  if (round_timer_.scheduled()) return;
  round_timer_ = ctx_.after(ctx_.config().view_timeout,
                            [this] { on_round_timeout(); });
}

void HotStuffCore::on_round_timeout() {
  if (paused_ || !want_progress_) return;
  ++timeouts_;
  cur_round_ += 1;
  auto msg = std::make_shared<NewViewMsg>();
  msg->round = cur_round_;
  msg->high_qc = high_qc_;
  const std::size_t leader = leader_index(cur_round_, ctx_.n());
  if (leader == ctx_.index()) {
    on_new_view(ctx_.index(), *msg);
  } else {
    ctx_.send_to(leader, std::move(msg));
    // Count ourselves toward the quorum as well.
    new_views_[cur_round_].insert(ctx_.index());
  }
  round_timer_ = ctx_.after(ctx_.config().view_timeout,
                            [this] { on_round_timeout(); });
}

}  // namespace predis::consensus::hotstuff
