#include "consensus/hotstuff/hotstuff_core.hpp"

#include "common/block_tracer.hpp"
#include "common/codec.hpp"
#include "consensus/payloads.hpp"

namespace predis::consensus::hotstuff {

Hash32 block_hash(Round round, const Hash32& parent, const Hash32& justify,
                  const Hash32& payload_digest) {
  Writer w;
  w.u64(round);
  w.hash(parent);
  w.hash(justify);
  w.hash(payload_digest);
  return Sha256::hash(w.data());
}

BlockPtr make_block(Round round, const Hash32& parent, QuorumCert justify,
                    PayloadPtr payload) {
  auto b = std::make_shared<HsBlock>();
  b->round = round;
  b->parent = parent;
  b->justify = justify;
  b->payload = std::move(payload);
  b->hash = block_hash(round, parent, justify.block_hash,
                       b->payload->digest());
  return b;
}

namespace {
bool is_empty_payload(const PayloadPtr& p) {
  return dynamic_cast<const EmptyPayload*>(p.get()) != nullptr;
}
}  // namespace

HotStuffCore::HotStuffCore(NodeContext ctx, HotStuffApp& app)
    : ctx_(std::move(ctx)), app_(app) {
  // Genesis block at round 0, certified by a built-in QC.
  auto genesis = make_block(0, kZeroHash, QuorumCert{},
                            std::make_shared<EmptyPayload>());
  genesis_hash_ = genesis->hash;
  committed_hash_ = genesis_hash_;
  locked_hash_ = genesis_hash_;
  blocks_.emplace(genesis_hash_, std::move(genesis));
  high_qc_ = QuorumCert{0, genesis_hash_, ctx_.quorum()};
}

void HotStuffCore::start() { try_propose(); }

const HsBlock* HotStuffCore::get_block(const Hash32& hash) const {
  const auto it = blocks_.find(hash);
  return it == blocks_.end() ? nullptr : it->second.get();
}

bool HotStuffCore::handle(NodeId from, const sim::MsgPtr& msg) {
  const std::size_t idx = ctx_.index_of(from);
  if (const auto* m = dynamic_cast<const ProposalMsg*>(msg.get())) {
    if (!paused_ && idx < ctx_.n()) on_proposal(idx, *m);
    return true;
  }
  if (const auto* m = dynamic_cast<const VoteMsg*>(msg.get())) {
    if (!paused_ && idx < ctx_.n()) on_vote(idx, *m);
    return true;
  }
  if (const auto* m = dynamic_cast<const NewViewMsg*>(msg.get())) {
    if (!paused_ && idx < ctx_.n()) on_new_view(idx, *m);
    return true;
  }
  return false;
}

void HotStuffCore::payload_ready() {
  if (paused_) return;
  want_progress_ = true;
  arm_round_timer();
  try_propose();
}

void HotStuffCore::on_proposal(std::size_t from, const ProposalMsg& msg) {
  const BlockPtr& block = msg.block;
  if (block == nullptr || block->payload == nullptr) return;
  if (from != leader_index(block->round, ctx_.n())) return;
  // Modeled QC verification: a genuine certificate aggregates at least
  // quorum() signatures; a forged justify would otherwise both poison
  // high_qc and trick the voting rule (justify.round > locked_round)
  // into voting for an unreachable round, killing liveness.
  if (block->justify.signers < ctx_.quorum()) return;
  if (blocks_.count(block->hash) != 0) return;

  if (blocks_.count(block->parent) == 0) {
    orphans_.emplace(block->parent, block);
    return;
  }
  store_block(block);
  process_block(block);
  try_flush_orphans();
}

void HotStuffCore::store_block(BlockPtr block) {
  const Hash32 hash = block->hash;
  const Round round = block->round;
  blocks_.emplace(hash, std::move(block));

  // Votes may have arrived before the block: try to form the QC now.
  const auto vit = votes_.find(round);
  if (vit != votes_.end()) {
    const auto dit = vit->second.find(hash);
    if (dit != vit->second.end() && dit->second.size() >= ctx_.quorum()) {
      update_high_qc(QuorumCert{round, hash, dit->second.size()});
      advance_round(round + 1);
      try_propose();
    }
  }
}

void HotStuffCore::try_flush_orphans() {
  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (auto it = orphans_.begin(); it != orphans_.end();) {
      if (blocks_.count(it->first) == 0) {
        ++it;
        continue;
      }
      BlockPtr block = it->second;
      it = orphans_.erase(it);
      if (blocks_.count(block->hash) == 0) {
        store_block(block);
        process_block(block);
        progressed = true;
      }
    }
  }
}

void HotStuffCore::process_block(const BlockPtr& block) {
  update_high_qc(block->justify);

  // Chain rules (chained HotStuff): b'' = justify target, b' its justify
  // target, b the one below. Lock on the 2-chain, commit on a 3-chain of
  // consecutive rounds.
  const HsBlock* b2 = get_block(block->justify.block_hash);
  if (b2 != nullptr) {
    const HsBlock* b1 = get_block(b2->justify.block_hash);
    if (b1 != nullptr) {
      if (b1->round > locked_round_) {
        locked_round_ = b1->round;
        locked_hash_ = b1->hash;
      }
      const HsBlock* b0 = get_block(b1->justify.block_hash);
      if (b0 != nullptr && b2->round == b1->round + 1 &&
          b1->round == b0->round + 1 && b0->round > committed_round_) {
        commit_chain(*b0);
      }
    }
  }

  try_vote(block);
  advance_round(block->round + 1);
}

void HotStuffCore::try_vote(const BlockPtr& block) {
  if (paused_) return;
  if (block->round <= last_voted_round_) return;
  // Safety rule: extend the locked block, or see a newer QC.
  if (!(block->justify.round > locked_round_ ||
        extends(block->hash, locked_hash_))) {
    return;
  }

  Validity validity;
  if (is_empty_payload(block->payload)) {
    validity = Validity::kValid;
  } else {
    validity = app_.validate(block->round, block->payload,
                             ancestors_of(block->parent));
  }
  if (validity == Validity::kInvalid) return;
  if (validity == Validity::kPending) {
    pending_validation_[block->round] = block;
    return;
  }

  last_voted_round_ = block->round;
  send_vote(block->round, block->hash);
}

void HotStuffCore::send_vote(Round round, const Hash32& hash) {
  // Votes go to the next leader — and to the one after it. With a
  // strict round-robin pacemaker, a single crashed node would otherwise
  // swallow exactly the QC that completes every three-chain (votes for
  // the round before its turn are addressed to it), stalling commits
  // forever at n = 4. Double-targeting is the standard hardening and
  // keeps the vote pattern O(n).
  auto vote = std::make_shared<VoteMsg>();
  vote->round = round;
  vote->block_hash = hash;
  const std::size_t first = leader_index(round + 1, ctx_.n());
  const std::size_t second = leader_index(round + 2, ctx_.n());
  for (const std::size_t target : {first, second}) {
    if (target == second && second == first) break;  // n == 1 edge case
    if (target == ctx_.index()) {
      on_vote(ctx_.index(), *vote);
    } else {
      ctx_.send_to(target, vote);
    }
  }
}

void HotStuffCore::revalidate() {
  if (paused_) return;
  while (!pending_validation_.empty()) {
    const auto it = pending_validation_.begin();
    BlockPtr block = it->second;
    if (block->round <= last_voted_round_) {
      // We already voted past this round; the chance is gone.
      pending_validation_.erase(it);
      continue;
    }
    const Validity validity = app_.validate(block->round, block->payload,
                                            ancestors_of(block->parent));
    if (validity == Validity::kPending) return;  // still waiting
    pending_validation_.erase(it);
    if (validity == Validity::kInvalid) continue;
    last_voted_round_ = block->round;
    send_vote(block->round, block->hash);
  }
}

void HotStuffCore::on_vote(std::size_t from, const VoteMsg& msg) {
  auto& voters = votes_[msg.round][msg.block_hash];
  voters.insert(from);
  if (voters.size() != ctx_.quorum()) return;
  if (blocks_.count(msg.block_hash) == 0) return;  // QC formed on arrival

  update_high_qc(QuorumCert{msg.round, msg.block_hash, voters.size()});
  advance_round(msg.round + 1);
  // advance_round may have been a no-op (we already entered this round
  // when the proposal arrived); with the QC in hand we can propose now.
  try_propose();
}

void HotStuffCore::on_new_view(std::size_t from, const NewViewMsg& msg) {
  // Only adopt a QC whose (modeled) aggregate signature verifies — one
  // forged NewView would otherwise pin high_qc at an absurd round for
  // the rest of the run.
  if (msg.high_qc.signers >= ctx_.quorum()) update_high_qc(msg.high_qc);
  auto& senders = new_views_[msg.round];
  senders.insert(from);
  if (leader_index(msg.round, ctx_.n()) == ctx_.index() &&
      senders.size() >= ctx_.quorum()) {
    advance_round(msg.round);
    try_propose();
  }
}

void HotStuffCore::update_high_qc(const QuorumCert& qc) {
  if (qc.round > high_qc_.round) {
    high_qc_ = qc;
  }
}

void HotStuffCore::advance_round(Round round) {
  if (round <= cur_round_) return;
  cur_round_ = round;
  round_timer_.cancel();
  if (want_progress_) arm_round_timer();
  try_propose();
}

void HotStuffCore::try_propose() {
  if (paused_) return;
  if (leader_index(cur_round_, ctx_.n()) != ctx_.index()) return;
  if (proposed_round_ >= cur_round_) return;

  // A leader may propose when it holds the QC of the previous round, or
  // when a quorum of NewView messages lets it re-anchor on high_qc.
  const bool fresh_qc = high_qc_.round + 1 == cur_round_;
  const auto nv = new_views_.find(cur_round_);
  const bool timeout_quorum =
      nv != new_views_.end() && nv->second.size() >= ctx_.quorum();
  if (!fresh_qc && !timeout_quorum) return;

  PayloadPtr payload =
      app_.make_payload(cur_round_, ancestors_of(high_qc_.block_hash));
  if (payload == nullptr) {
    // Keep the pipeline moving only if an uncommitted real payload
    // needs the extra rounds to reach its three-chain commit.
    if (!has_uncommitted_payload()) return;
    payload = std::make_shared<EmptyPayload>();
  }

  proposed_round_ = cur_round_;
  if (tracer_ != nullptr && !is_empty_payload(payload)) {
    tracer_->record(TraceStage::kCutProposed, payload->digest(), ctx_.now());
  }
  BlockPtr block =
      make_block(cur_round_, high_qc_.block_hash, high_qc_, std::move(payload));
  store_block(block);

  auto msg = std::make_shared<ProposalMsg>();
  msg->block = block;
  ctx_.broadcast(msg);
  want_progress_ = true;
  arm_round_timer();
  process_block(block);
}

void HotStuffCore::commit_chain(const HsBlock& anchor) {
  // Collect the uncommitted chain anchor .. committed (exclusive).
  std::vector<const HsBlock*> chain;
  const HsBlock* cursor = &anchor;
  while (cursor != nullptr && cursor->hash != committed_hash_ &&
         cursor->round > 0) {
    chain.push_back(cursor);
    cursor = get_block(cursor->parent);
  }
  committed_round_ = anchor.round;
  committed_hash_ = anchor.hash;
  for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
    if (!is_empty_payload((*it)->payload)) {
      if (tracer_ != nullptr) {
        tracer_->record(TraceStage::kBlockCommitted,
                        (*it)->payload->digest(), ctx_.now());
      }
      app_.on_commit((*it)->round, (*it)->payload);
    }
  }
  if (!has_uncommitted_payload() && pending_validation_.empty()) {
    want_progress_ = false;
    round_timer_.cancel();
  }
}

std::vector<PayloadPtr> HotStuffCore::ancestors_of(
    const Hash32& parent_hash) const {
  std::vector<PayloadPtr> out;
  const HsBlock* cursor = get_block(parent_hash);
  while (cursor != nullptr && cursor->hash != committed_hash_ &&
         cursor->round > 0) {
    out.push_back(cursor->payload);
    cursor = get_block(cursor->parent);
  }
  return out;
}

bool HotStuffCore::extends(const Hash32& descendant,
                           const Hash32& ancestor) const {
  const HsBlock* cursor = get_block(descendant);
  const HsBlock* target = get_block(ancestor);
  if (target == nullptr) return false;
  while (cursor != nullptr) {
    if (cursor->hash == ancestor) return true;
    if (cursor->round <= target->round) return false;
    cursor = get_block(cursor->parent);
  }
  return false;
}

bool HotStuffCore::has_uncommitted_payload() const {
  const HsBlock* cursor = get_block(high_qc_.block_hash);
  while (cursor != nullptr && cursor->hash != committed_hash_ &&
         cursor->round > 0) {
    if (!is_empty_payload(cursor->payload)) return true;
    cursor = get_block(cursor->parent);
  }
  return false;
}

void HotStuffCore::arm_round_timer() {
  if (round_timer_.scheduled()) return;
  round_timer_ = ctx_.after(ctx_.config().view_timeout,
                            [this] { on_round_timeout(); });
}

void HotStuffCore::on_round_timeout() {
  if (paused_ || !want_progress_) return;
  ++timeouts_;
  cur_round_ += 1;
  auto msg = std::make_shared<NewViewMsg>();
  msg->round = cur_round_;
  msg->high_qc = high_qc_;
  const std::size_t leader = leader_index(cur_round_, ctx_.n());
  if (leader == ctx_.index()) {
    on_new_view(ctx_.index(), *msg);
  } else {
    ctx_.send_to(leader, std::move(msg));
    // Count ourselves toward the quorum as well.
    new_views_[cur_round_].insert(ctx_.index());
  }
  round_timer_ = ctx_.after(ctx_.config().view_timeout,
                            [this] { on_round_timeout(); });
}

}  // namespace predis::consensus::hotstuff
