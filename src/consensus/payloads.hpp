// Concrete consensus payloads shared by more than one engine.
#pragma once

#include "bundle/predis_block.hpp"
#include "consensus/common.hpp"

namespace predis::consensus {

/// Baseline payload: a batch (block) of raw transactions. The leader
/// ships the full batch in its proposal — the bandwidth bottleneck the
/// paper's baselines exhibit.
class TxBatchPayload final : public Payload {
 public:
  explicit TxBatchPayload(std::vector<Transaction> txs)
      : txs_(std::move(txs)) {
    std::vector<Hash32> leaves;
    leaves.reserve(txs_.size());
    for (const auto& tx : txs_) leaves.push_back(tx.id());
    digest_ = leaves.empty() ? kZeroHash : MerkleTree::root_of(leaves);
  }

  const std::vector<Transaction>& txs() const { return txs_; }

  std::size_t wire_size() const override {
    return 48 + payload_bytes(txs_) + txs_.size() * 8;
  }
  Hash32 digest() const override { return digest_; }
  const char* kind() const override { return "tx-batch"; }

 private:
  std::vector<Transaction> txs_;
  Hash32 digest_;
};

/// Predis payload: the O(n_c)-sized block of §III-B.
class PredisPayload final : public Payload {
 public:
  explicit PredisPayload(PredisBlock block) : block_(std::move(block)) {
    digest_ = block_.hash();
  }

  const PredisBlock& block() const { return block_; }

  std::size_t wire_size() const override { return block_.wire_size(); }
  Hash32 digest() const override { return digest_; }
  const char* kind() const override { return "predis-block"; }

 private:
  PredisBlock block_;
  Hash32 digest_;
};

/// Pipeline filler: chained HotStuff leaders must propose every round;
/// when the app has nothing to order they propose this.
class EmptyPayload final : public Payload {
 public:
  EmptyPayload() = default;
  std::size_t wire_size() const override { return 8; }
  Hash32 digest() const override { return kZeroHash; }
  const char* kind() const override { return "empty"; }
};

/// PBFT null request: fills sequence-number gaps during a view change
/// when later slots were prepared but an intermediate one was not.
/// Executing it is a no-op for every app.
class NoopPayload final : public Payload {
 public:
  NoopPayload() = default;
  std::size_t wire_size() const override { return 8; }
  Hash32 digest() const override {
    return Sha256::hash(as_bytes(std::string("pbft-noop")));
  }
  const char* kind() const override { return "noop"; }
};

inline bool is_noop(const PayloadPtr& p) {
  return dynamic_cast<const NoopPayload*>(p.get()) != nullptr;
}

}  // namespace predis::consensus
