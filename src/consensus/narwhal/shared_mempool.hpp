// Narwhal-style and Stratus-style shared-mempool comparators (Fig. 5).
//
// Both decouple transaction dissemination from consensus like Predis,
// but guarantee data availability with explicit certificates:
//   * Narwhal-style: a microblock becomes proposable once its producer
//     collects n_c − f signed acks (reliable broadcast) and the
//     certificate is distributed;
//   * Stratus-style: provably-available broadcast needs only f + 1 acks.
// Proposals carry (id + certificate) per microblock, so proposal size
// grows linearly with the number of microblocks — the contrast to the
// O(n_c) Predis block the paper calls out (2.5 KB vs 30 KB at 50 k tx).
//
// Consensus is chained HotStuff, as in the original systems' eval.
#pragma once

#include <deque>
#include <map>
#include <set>

#include "common/rng.hpp"
#include "consensus/hotstuff/hotstuff_core.hpp"
#include "consensus/payloads.hpp"
#include "core/recovery.hpp"

namespace predis::consensus::narwhal {

struct Microblock {
  NodeId producer = kNoNode;  ///< Index of the producer in the group.
  std::uint64_t index = 0;    ///< Producer-local sequence.
  std::vector<Transaction> txs;

  Hash32 id() const {
    Writer w;
    w.u32(producer);
    w.u64(index);
    std::vector<Hash32> leaves;
    leaves.reserve(txs.size());
    for (const auto& tx : txs) leaves.push_back(tx.id());
    w.hash(leaves.empty() ? kZeroHash : MerkleTree::root_of(leaves));
    return Sha256::hash(w.data());
  }

  std::size_t wire_size() const {
    return 16 + kSigBytes + payload_bytes(txs) + txs.size() * 8;
  }
};

struct MicroblockRef {
  NodeId producer = kNoNode;
  std::uint64_t index = 0;
  Hash32 id = kZeroHash;

  auto key() const { return std::pair{producer, index}; }
};

struct MicroblockMsg final : runtime::Message {
  Microblock mb;
  std::size_t wire_size() const override { return mb.wire_size(); }
  const char* name() const override { return "Microblock"; }
};

/// Receiver -> producer: signed availability ack.
struct MbAckMsg final : runtime::Message {
  MicroblockRef ref;
  std::size_t wire_size() const override { return kVoteBytes; }
  const char* name() const override { return "MbAck"; }
};

/// Producer -> all: certificate of availability (quorum of acks).
struct MbCertMsg final : runtime::Message {
  MicroblockRef ref;
  std::size_t signers = 0;
  std::size_t wire_size() const override { return 16 + qc_bytes(signers); }
  const char* name() const override { return "MbCert"; }
};

/// Fetch for microblocks referenced by a proposal but not held locally.
struct MbFetchMsg final : runtime::Message {
  std::vector<MicroblockRef> refs;
  std::size_t wire_size() const override { return 16 + refs.size() * 44; }
  const char* name() const override { return "MbFetch"; }
};

struct MbBatchMsg final : runtime::Message {
  std::vector<Microblock> mbs;
  std::size_t wire_size() const override {
    std::size_t size = 16;
    for (const auto& mb : mbs) size += mb.wire_size();
    return size;
  }
  const char* name() const override { return "MbBatch"; }
};

/// Proposal payload: certified microblock ids + their certificates.
/// Size grows linearly with the id count (the paper's 30 KB proposals).
class IdListPayload final : public Payload {
 public:
  IdListPayload(std::vector<MicroblockRef> refs, std::size_t cert_signers)
      : refs_(std::move(refs)), cert_signers_(cert_signers) {
    Writer w;
    for (const auto& ref : refs_) w.hash(ref.id);
    digest_ = Sha256::hash(w.data());
  }

  const std::vector<MicroblockRef>& refs() const { return refs_; }

  std::size_t wire_size() const override {
    return 48 + refs_.size() * (44 + qc_bytes(cert_signers_));
  }
  Hash32 digest() const override { return digest_; }
  const char* kind() const override { return "id-list"; }

 private:
  std::vector<MicroblockRef> refs_;
  std::size_t cert_signers_;
  Hash32 digest_;
};

struct SharedMempoolConfig {
  std::size_t microblock_size = 50;  ///< Max txs per microblock (paper).
  SimTime pack_interval = milliseconds(25);
  /// Acks needed for a certificate: n_c − f (Narwhal) or f + 1 (Stratus).
  std::size_t ack_quorum = 3;
  std::size_t id_cap = 1000;  ///< Max ids per proposal (paper default).
  SimTime fetch_retry = milliseconds(150);
  std::uint64_t seed = 1;
  /// Committed microblock bodies kept around (newest first) to serve
  /// catch-up fetches from lagging replicas; older bodies are
  /// garbage-collected with byte accounting.
  std::size_t pool_retention = 512;
};

/// One consensus node running the certified shared mempool + HotStuff.
class SharedMempoolNode final : public runtime::Actor,
                                private hotstuff::HotStuffApp {
 public:
  SharedMempoolNode(NodeContext ctx, SharedMempoolConfig config,
                    CommitLedger& ledger);

  void on_start() override;
  void on_restart() override;
  void on_message(NodeId from, const runtime::MsgPtr& msg) override;

  hotstuff::HotStuffCore& core() { return core_; }

  /// Committed-microblock bytes/items reclaimed from the pool.
  const core::GcStats& gc_stats() const { return gc_; }

  /// Attach the shared lifecycle tracer (may be null): microblock
  /// production + availability certification feed the bundle stages,
  /// the embedded HotStuff core the proposal/commit stages.
  void set_tracer(BlockTracer* tracer) {
    tracer_ = tracer;
    core_.set_tracer(tracer);
  }

  /// Observation hook: fired for every executed block.
  std::function<void(const Hash32&, const std::vector<Transaction>&,
                     SimTime)>
      on_committed_block;

 private:
  using Key = std::pair<NodeId, std::uint64_t>;

  void enqueue(const std::vector<Transaction>& txs);
  void pack_microblock();
  void schedule_packing();
  bool handle_mempool(NodeId from, const runtime::MsgPtr& msg);
  void certify(const MicroblockRef& ref, std::size_t signers);

  // --- HotStuffApp -----------------------------------------------------
  PayloadPtr make_payload(hotstuff::Round round,
                          const std::vector<PayloadPtr>& ancestors) override;
  Validity validate(hotstuff::Round round, const PayloadPtr& payload,
                    const std::vector<PayloadPtr>& ancestors) override;
  void on_commit(hotstuff::Round round, const PayloadPtr& payload) override;

  NodeContext ctx_;
  SharedMempoolConfig cfg_;
  CommitLedger& ledger_;
  ReplyManager replies_;
  hotstuff::HotStuffCore core_;
  Rng rng_;
  BlockTracer* tracer_ = nullptr;

  std::deque<Transaction> tx_queue_;
  std::uint64_t own_index_ = 0;

  std::map<Key, Microblock> pool_;
  std::map<Key, std::set<std::size_t>> acks_;  ///< producer-side ack sets
  std::set<Key> certified_;
  std::deque<MicroblockRef> proposable_;  ///< certified, FIFO
  std::set<Key> committed_;
  std::map<Key, MicroblockRef> fetching_;
  runtime::TimerHandle fetch_timer_;

  // Fetch pacing: capped jittered exponential backoff (replaces the
  // old fixed-interval retry) plus stall-driven peer rotation, so a
  // post-heal herd of fetchers desynchronizes instead of re-colliding.
  core::BackoffPolicy fetch_backoff_;
  core::StallDetector fetch_peer_;
  std::size_t fetch_attempt_ = 0;

  // Commit order of microblock keys, for pool GC.
  std::deque<Key> committed_order_;
  core::GcStats gc_;

  void retry_fetches();
};

}  // namespace predis::consensus::narwhal
