#include "consensus/narwhal/shared_mempool.hpp"

#include <algorithm>

#include "common/block_tracer.hpp"
#include "common/thread_annotations.hpp"

namespace predis::consensus::narwhal {

SharedMempoolNode::SharedMempoolNode(NodeContext ctx,
                                     SharedMempoolConfig config,
                                     CommitLedger& ledger)
    : ctx_(std::move(ctx)),
      cfg_(config),
      ledger_(ledger),
      replies_(ctx_),
      core_(ctx_, *this),
      rng_(config.seed ^ (0x51f15eedULL * (ctx_.index() + 1))),
      fetch_peer_(ctx_.n(), ctx_.index()) {
  // Fetch pacing starts near the base RTT and doubles toward the old
  // fixed interval's neighborhood; jitter spreads simultaneous
  // retriers (the post-heal pull storm) across the window.
  fetch_backoff_.base = milliseconds(25);
  fetch_backoff_.cap = std::max<SimTime>(cfg_.fetch_retry, milliseconds(400));
}

void SharedMempoolNode::on_start() {
  schedule_packing();
  core_.start();
}

void SharedMempoolNode::on_restart() {
  // Consensus-side catch-up (missed blocks) …
  core_.on_restart();
  // … and mempool-side resync: re-offer own microblocks whose original
  // broadcast (or its acks) may have been lost while down, and kick the
  // fetch loop for any bodies still outstanding.
  for (const auto& [key, mb] : pool_) {
    if (key.first != ctx_.index()) continue;
    if (certified_.count(key) != 0) continue;
    auto msg = std::make_shared<MicroblockMsg>();
    msg->mb = mb;
    ctx_.broadcast(msg);
  }
  // A pre-outage retry timer still armed at the old backoff cadence
  // would keep scheduled() true and block the fast first retry the
  // reset of fetch_attempt_ is meant to buy; drop it.
  fetch_timer_.cancel();
  fetch_attempt_ = 0;
  if (!fetching_.empty() && !fetch_timer_.scheduled()) retry_fetches();
}

void SharedMempoolNode::schedule_packing() {
  // Self-rearming tick: each firing schedules the next, so there is no
  // handle to keep — the chain dies with the node.
  PREDIS_FIRE_AND_FORGET(ctx_.after(cfg_.pack_interval, [this] {
    pack_microblock();
    schedule_packing();
  }));
}

void SharedMempoolNode::enqueue(const std::vector<Transaction>& txs) {
  // Backpressure: shed client load once the uplink queue is far behind.
  if (ctx_.net().uplink_backlog(ctx_.self()) > milliseconds(400)) return;
  if (tx_queue_.size() >= 4000) return;
  tx_queue_.insert(tx_queue_.end(), txs.begin(), txs.end());
  while (tx_queue_.size() >= cfg_.microblock_size) pack_microblock();
}

void SharedMempoolNode::pack_microblock() {
  if (tx_queue_.empty()) return;  // no empty microblocks
  const std::size_t take =
      std::min(tx_queue_.size(), cfg_.microblock_size);

  Microblock mb;
  mb.producer = static_cast<NodeId>(ctx_.index());
  mb.index = own_index_++;
  mb.txs.assign(tx_queue_.begin(),
                tx_queue_.begin() + static_cast<std::ptrdiff_t>(take));
  tx_queue_.erase(tx_queue_.begin(),
                  tx_queue_.begin() + static_cast<std::ptrdiff_t>(take));

  pool_.emplace(Key{mb.producer, mb.index}, mb);
  acks_[Key{mb.producer, mb.index}].insert(ctx_.index());  // self-ack
  if (tracer_ != nullptr) {
    tracer_->record(TraceStage::kBundleProduced, mb.id(), ctx_.now());
  }

  auto msg = std::make_shared<MicroblockMsg>();
  msg->mb = std::move(mb);
  ctx_.broadcast(msg);
}

void SharedMempoolNode::on_message(NodeId from, const runtime::MsgPtr& msg) {
  if (const auto* req = dynamic_cast<const ClientRequestMsg*>(msg.get())) {
    enqueue(req->txs);
    return;
  }
  if (handle_mempool(from, msg)) return;
  core_.handle(from, msg);
}

bool SharedMempoolNode::handle_mempool(NodeId from, const runtime::MsgPtr& msg) {
  if (const auto* m = dynamic_cast<const MicroblockMsg*>(msg.get())) {
    // A microblock broadcast is only acceptable from its own producer
    // (it models a producer-signed message): anything else is an
    // impersonation attempt that could park a substituted body under
    // the victim's (producer, index) key.
    if (m->mb.producer >= ctx_.n() ||
        m->mb.producer != ctx_.index_of(from)) {
      return true;
    }
    const Key key{m->mb.producer, m->mb.index};
    if (pool_.count(key) == 0) {
      pool_.emplace(key, m->mb);
      fetching_.erase(key);
      // Availability ack back to the producer (RBC / PAB reply).
      auto ack = std::make_shared<MbAckMsg>();
      ack->ref = {m->mb.producer, m->mb.index, m->mb.id()};
      ctx_.send_to(m->mb.producer, std::move(ack));
      core_.revalidate();
    }
    return true;
  }
  if (const auto* m = dynamic_cast<const MbAckMsg*>(msg.get())) {
    const std::size_t idx = ctx_.index_of(from);
    if (idx >= ctx_.n()) return true;
    if (m->ref.producer != ctx_.index()) return true;
    // Only count acks for microblocks we actually produced, and only
    // when the acked id matches our content — a fabricated ack for a
    // never-produced index must not grow the ack table.
    const auto own = pool_.find(m->ref.key());
    if (own == pool_.end() || own->second.id() != m->ref.id) return true;
    auto& set = acks_[m->ref.key()];
    set.insert(idx);
    if (set.size() == cfg_.ack_quorum &&
        certified_.count(m->ref.key()) == 0) {
      certify(m->ref, set.size());
      auto cert = std::make_shared<MbCertMsg>();
      cert->ref = m->ref;
      cert->signers = set.size();
      ctx_.broadcast(cert);
    }
    return true;
  }
  if (const auto* m = dynamic_cast<const MbCertMsg*>(msg.get())) {
    // Modeled aggregate-signature verification: a genuine certificate
    // carries at least ack_quorum signers over a producer inside the
    // group; anything else is a forgery and certifies nothing.
    if (m->ref.producer >= ctx_.n() || m->signers < cfg_.ack_quorum) {
      return true;
    }
    if (certified_.count(m->ref.key()) == 0) {
      certify(m->ref, m->signers);
    }
    return true;
  }
  if (const auto* m = dynamic_cast<const MbFetchMsg*>(msg.get())) {
    auto reply = std::make_shared<MbBatchMsg>();
    for (const auto& ref : m->refs) {
      const auto it = pool_.find(ref.key());
      if (it != pool_.end()) reply->mbs.push_back(it->second);
    }
    if (!reply->mbs.empty()) ctx_.send_node(from, std::move(reply));
    return true;
  }
  if (const auto* m = dynamic_cast<const MbBatchMsg*>(msg.get())) {
    bool progressed = false;
    for (const auto& mb : m->mbs) {
      const Key key{mb.producer, mb.index};
      // Fetched bodies come from arbitrary peers, so accept one only
      // if we asked for it AND its content hashes to the certified id
      // we asked for — otherwise a hostile responder could substitute
      // transactions under a certified reference.
      const auto want = fetching_.find(key);
      if (want == fetching_.end() || mb.id() != want->second.id) continue;
      if (pool_.count(key) == 0) {
        pool_.emplace(key, mb);
        fetching_.erase(key);
        progressed = true;
      }
    }
    if (progressed) {
      // The responder is serving us: keep asking it, reset the backoff.
      const std::size_t idx = ctx_.index_of(from);
      if (idx < ctx_.n()) fetch_peer_.prefer(idx);
      fetch_peer_.on_progress();
      fetch_attempt_ = 0;
    }
    core_.revalidate();
    return true;
  }
  return false;
}

void SharedMempoolNode::certify(const MicroblockRef& ref,
                                std::size_t /*signers*/) {
  if (tracer_ != nullptr && certified_.count(ref.key()) == 0) {
    tracer_->record(TraceStage::kBundleStoredQuorum, ref.id, ctx_.now());
  }
  certified_.insert(ref.key());
  if (committed_.count(ref.key()) == 0) {
    proposable_.push_back(ref);
    core_.payload_ready();
  }
}

PayloadPtr SharedMempoolNode::make_payload(
    hotstuff::Round /*round*/, const std::vector<PayloadPtr>& ancestors) {
  if (proposable_.empty()) return nullptr;

  std::set<Key> in_flight;
  for (const auto& payload : ancestors) {
    const auto* ids = dynamic_cast<const IdListPayload*>(payload.get());
    if (ids == nullptr) continue;
    for (const auto& ref : ids->refs()) in_flight.insert(ref.key());
  }

  std::vector<MicroblockRef> picked;
  std::deque<MicroblockRef> keep;
  while (!proposable_.empty() && picked.size() < cfg_.id_cap) {
    MicroblockRef ref = proposable_.front();
    proposable_.pop_front();
    if (committed_.count(ref.key()) != 0) continue;
    if (in_flight.count(ref.key()) != 0) {
      keep.push_back(ref);
      continue;
    }
    picked.push_back(ref);
  }
  // Anything skipped (in flight) or not picked stays queued.
  for (auto it = keep.rbegin(); it != keep.rend(); ++it) {
    proposable_.push_front(*it);
  }
  if (picked.empty()) return nullptr;
  return std::make_shared<IdListPayload>(std::move(picked), cfg_.ack_quorum);
}

Validity SharedMempoolNode::validate(
    hotstuff::Round /*round*/, const PayloadPtr& payload,
    const std::vector<PayloadPtr>& /*ancestors*/) {
  const auto* ids = dynamic_cast<const IdListPayload*>(payload.get());
  if (ids == nullptr) return Validity::kInvalid;

  // The certificate proves availability; we only fetch the bodies we
  // lack before voting (Narwhal workers sync the same way).
  std::vector<MicroblockRef> missing;
  for (const auto& ref : ids->refs()) {
    if (pool_.count(ref.key()) == 0 && fetching_.count(ref.key()) == 0) {
      missing.push_back(ref);
    }
  }
  bool pending = false;
  for (const auto& ref : ids->refs()) {
    if (pool_.count(ref.key()) == 0) pending = true;
  }
  if (!missing.empty()) {
    for (const auto& ref : missing) fetching_.emplace(ref.key(), ref);
    std::map<NodeId, std::vector<MicroblockRef>> by_producer;
    for (const auto& ref : missing) by_producer[ref.producer].push_back(ref);
    for (auto& [producer, refs] : by_producer) {
      auto fetch = std::make_shared<MbFetchMsg>();
      fetch->refs = std::move(refs);
      if (producer < ctx_.n()) ctx_.send_to(producer, std::move(fetch));
    }
    if (!fetch_timer_.scheduled()) {
      fetch_timer_ = ctx_.after(fetch_backoff_.delay(fetch_attempt_, rng_),
                                [this] { retry_fetches(); });
    }
  }
  return pending ? Validity::kPending : Validity::kValid;
}

void SharedMempoolNode::retry_fetches() {
  // The producer may have crashed; a certified microblock is held by at
  // least ack_quorum nodes, so re-request outstanding bodies — rotating
  // away from a peer that keeps timing out — until they arrive. Pacing
  // is capped jittered exponential backoff, not a fixed interval.
  std::vector<MicroblockRef> still_missing;
  for (const auto& [key, ref] : fetching_) {
    if (pool_.count(key) == 0) still_missing.push_back(ref);
  }
  fetching_.clear();
  if (still_missing.empty()) {
    fetch_attempt_ = 0;
    return;
  }
  for (const auto& ref : still_missing) fetching_.emplace(ref.key(), ref);

  fetch_peer_.on_timeout();
  ++fetch_attempt_;
  auto fetch = std::make_shared<MbFetchMsg>();
  fetch->refs = std::move(still_missing);
  ctx_.send_to(fetch_peer_.peer(), std::move(fetch));
  fetch_timer_ = ctx_.after(fetch_backoff_.delay(fetch_attempt_, rng_),
                            [this] { retry_fetches(); });
}

void SharedMempoolNode::on_commit(hotstuff::Round round,
                                  const PayloadPtr& payload) {
  const auto& ids = dynamic_cast<const IdListPayload&>(*payload);
  std::vector<Transaction> txs;
  for (const auto& ref : ids.refs()) {
    if (committed_.insert(ref.key()).second) {
      committed_order_.push_back(ref.key());
    }
    const auto it = pool_.find(ref.key());
    if (it == pool_.end()) continue;  // certified elsewhere; body lagging
    txs.insert(txs.end(), it->second.txs.begin(), it->second.txs.end());
  }
  // Pool GC: committed bodies stay briefly to serve catch-up fetches
  // from lagging replicas, then are reclaimed (byte-accounted).
  while (committed_order_.size() > cfg_.pool_retention) {
    const Key old = committed_order_.front();
    committed_order_.pop_front();
    const auto it = pool_.find(old);
    if (it != pool_.end()) {
      gc_.add(it->second.wire_size());
      pool_.erase(it);
    }
    acks_.erase(old);
  }
  ledger_.on_commit(ctx_.index(), round, payload->digest(), txs.size(),
                    ctx_.now());
  if (on_committed_block) {
    on_committed_block(payload->digest(), txs, ctx_.now());
  }
  replies_.reply_committed(txs);
}

}  // namespace predis::consensus::narwhal
