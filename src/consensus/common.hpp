// Shared consensus scaffolding: the opaque payload abstraction that lets
// one PBFT/HotStuff state machine drive either raw transaction batches
// (baselines) or Predis blocks / microblock-id lists (the paper's
// systems), plus node context helpers, the cross-node commit ledger used
// for both metrics and safety checking, and client reply batching.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <vector>

#include "common/metrics.hpp"
#include "common/thread_annotations.hpp"
#include "common/sha256.hpp"
#include "common/types.hpp"
#include "runtime/runtime.hpp"
#include "txpool/transaction.hpp"

namespace predis::consensus {

/// What a consensus slot decides on. Implementations: TxBatchPayload
/// (baseline PBFT/HotStuff), PredisPayload (P-PBFT/P-HS), IdListPayload
/// (Narwhal/Stratus-style).
class Payload {
 public:
  virtual ~Payload() = default;
  /// Bytes this payload adds to a proposal on the wire.
  virtual std::size_t wire_size() const = 0;
  /// Binding digest of the payload content.
  virtual Hash32 digest() const = 0;
  virtual const char* kind() const = 0;
};

using PayloadPtr = std::shared_ptr<const Payload>;

/// Replica-side payload check outcome. kPending means "cannot decide
/// yet" (e.g. referenced bundles still in flight); the app later calls
/// the core's revalidate hook.
enum class Validity { kValid, kInvalid, kPending };

/// Static configuration of one consensus group.
struct ConsensusConfig {
  std::vector<NodeId> nodes;  ///< Network ids of the n_c consensus nodes.
  std::size_t f = 1;          ///< Tolerated Byzantine faults.
  SimTime view_timeout = milliseconds(2000);
  /// Leaders cut no *new* payloads at or after this time; in-flight
  /// proposals still run to commit. Experiment drivers set this to the
  /// load-stop time so the drain window closes every trace entry — a
  /// proposal cut in the final instant of a run used to be frozen
  /// mid-flight by the harness stop, leaving a cut-proposed trace entry
  /// with no commit forever (the 66-entries / 65-commits mismatch).
  SimTime propose_until = kSimTimeNever;
};

/// Convenience wrapper every consensus engine holds: identity, peers,
/// messaging and timers. Engines talk only to the Runtime seam — which
/// backend carries the traffic (discrete-event simulator or real
/// threads) is the harness's choice.
class NodeContext {
 public:
  NodeContext(runtime::Runtime& rt, NodeId self, ConsensusConfig config)
      : net_(&rt), self_(self), cfg_(std::move(config)) {
    for (std::size_t i = 0; i < cfg_.nodes.size(); ++i) {
      if (cfg_.nodes[i] == self) index_ = i;
    }
  }

  runtime::Runtime& net() const { return *net_; }
  NodeId self() const { return self_; }
  std::size_t index() const { return index_; }
  std::size_t n() const { return cfg_.nodes.size(); }
  std::size_t f() const { return cfg_.f; }
  /// Quorum size n - f (= 2f + 1 when n = 3f + 1).
  std::size_t quorum() const { return n() - cfg_.f; }
  const ConsensusConfig& config() const { return cfg_; }

  NodeId node(std::size_t idx) const { return cfg_.nodes[idx]; }

  /// Index of a consensus node id inside the group; n() if not a member.
  std::size_t index_of(NodeId id) const {
    for (std::size_t i = 0; i < cfg_.nodes.size(); ++i) {
      if (cfg_.nodes[i] == id) return i;
    }
    return cfg_.nodes.size();
  }

  SimTime now() const { return net_->now(); }

  void send_to(std::size_t idx, runtime::MsgPtr msg) const {
    net_->send(self_, cfg_.nodes[idx], std::move(msg));
  }

  void send_node(NodeId id, runtime::MsgPtr msg) const {
    net_->send(self_, id, std::move(msg));
  }

  /// Send to every other consensus node.
  void broadcast(const runtime::MsgPtr& msg) const {
    net_->multicast(self_, cfg_.nodes, msg);
  }

  /// Timer owned by this node: the backend serializes the callback
  /// with the node's message handling.
  runtime::TimerHandle after(SimTime delay, std::function<void()> fn) const {
    return net_->schedule(self_, delay, std::move(fn));
  }

 private:
  runtime::Runtime* net_;
  NodeId self_;
  std::size_t index_ = 0;
  ConsensusConfig cfg_;
};

/// Size constants for simulated signatures/certificates on the wire.
inline constexpr std::size_t kSigBytes = 64;
inline constexpr std::size_t kVoteBytes = 32 + kSigBytes + 16;
/// A quorum certificate of q signatures over a 32-byte digest.
inline constexpr std::size_t qc_bytes(std::size_t q) {
  return 32 + 8 + q * (kSigBytes + 4);
}

/// Experiment-wide commit record shared by all consensus nodes of one
/// simulated cluster. Serves two purposes: (a) metrics — the first
/// commit of each slot feeds throughput; (b) safety checking — any two
/// nodes committing different digests for the same slot is flagged.
class CommitLedger {
 public:
  explicit CommitLedger(Metrics& metrics) : metrics_(&metrics) {}

  /// Optional per-commit observer: fired for *every* node's commit of
  /// every slot (not just the first), with the committing node's index.
  /// The swarm harness hooks its invariant checker here, which is how
  /// all four engines (PBFT, HotStuff, Predis, Narwhal) feed the safety
  /// invariants without protocol-specific wiring.
  using Observer = std::function<void(std::size_t node_index,
                                      std::uint64_t slot,
                                      const Hash32& digest,
                                      std::size_t tx_count, SimTime when)>;
  void set_observer(Observer observer) {
    std::lock_guard<std::mutex> lock(m_);
    observer_ = std::move(observer);
  }

  void on_commit(std::size_t node_index, std::uint64_t slot,
                 const Hash32& digest, std::size_t tx_count, SimTime when) {
    // One ledger is shared by every consensus node of a cluster; on
    // the threaded backend those nodes commit from different workers.
    std::lock_guard<std::mutex> lock(m_);
    if (observer_) observer_(node_index, slot, digest, tx_count, when);
    auto [it, inserted] = slots_.try_emplace(slot, Entry{digest, when, 1});
    if (inserted) {
      // Dedupe by (height, hash): a replica that restarted mid-run can
      // re-propose transactions that already committed while it was
      // down (its queue never saw their commit), landing the same
      // payload at a *different* slot. Those transactions reached
      // clients once; counting them again inflated churn-storm
      // throughput past the clean run (the 1.125x PBFT cell).
      const bool repeat = !counted_payloads_.insert(digest).second;
      if (repeat) ++duplicate_payloads_;
      metrics_->record_commit(when, repeat ? 0 : tx_count);
    } else {
      ++it->second.commit_count;
      if (it->second.digest != digest) conflicting_ = true;
    }
    (void)node_index;
  }

  bool consistent() const {
    std::lock_guard<std::mutex> lock(m_);
    return !conflicting_;
  }
  std::size_t committed_slots() const {
    std::lock_guard<std::mutex> lock(m_);
    return slots_.size();
  }
  /// Payloads committed at more than one slot (re-proposals after
  /// restart); their transactions are counted only once.
  std::size_t duplicate_payloads() const {
    std::lock_guard<std::mutex> lock(m_);
    return duplicate_payloads_;
  }
  Metrics& metrics() { return *metrics_; }

 private:
  struct Entry {
    Hash32 digest;
    SimTime first_commit;
    std::size_t commit_count;
  };
  Metrics* metrics_;
  mutable std::mutex m_;
  Observer observer_ PREDIS_GUARDED_BY(m_);
  std::map<std::uint64_t, Entry> slots_ PREDIS_GUARDED_BY(m_);
  std::set<Hash32> counted_payloads_ PREDIS_GUARDED_BY(m_);
  std::size_t duplicate_payloads_ PREDIS_GUARDED_BY(m_) = 0;
  bool conflicting_ PREDIS_GUARDED_BY(m_) = false;
};

/// Batches committed-transaction acknowledgements into one ClientReplyMsg
/// per client per commit, sent by exactly one designated replica (chosen
/// by client id) so the simulated reply traffic matches one logical
/// reply per transaction.
class ReplyManager {
 public:
  ReplyManager(NodeContext& ctx) : ctx_(&ctx) {}

  void reply_committed(const std::vector<Transaction>& txs) {
    std::map<NodeId, std::vector<TxSeq>> by_client;
    for (const auto& tx : txs) {
      if (tx.client == kNoNode) continue;
      if (tx.client % ctx_->n() != ctx_->index()) continue;  // not ours
      by_client[tx.client].push_back(tx.seq);
    }
    const SimTime now = ctx_->now();
    for (auto& [client, seqs] : by_client) {
      auto msg = std::make_shared<ClientReplyMsg>();
      msg->seqs = std::move(seqs);
      msg->committed_at = now;
      ctx_->send_node(client, std::move(msg));
    }
  }

 private:
  NodeContext* ctx_;
};

/// Round-robin leader for view/round `v`.
inline std::size_t leader_index(View v, std::size_t n) {
  return static_cast<std::size_t>(v % n);
}

}  // namespace predis::consensus
