// The Predis data-production engine (§III): continuous bundle packing
// and multicast, mempool maintenance, conflict/ban handling, missing-
// bundle fetch, Predis-block construction/validation, and deferred
// commit execution. P-PBFT and P-HS embed one engine each and adapt it
// to their consensus core through thin PbftApp/HotStuffApp shims.
#pragma once

#include <deque>
#include <functional>
#include <optional>
#include <set>

#include "bundle/predis_block.hpp"
#include "common/metrics.hpp"
#include "common/rng.hpp"
#include "consensus/common.hpp"
#include "consensus/payloads.hpp"
#include "consensus/predis/messages.hpp"
#include "core/recovery.hpp"

namespace predis {
class BlockTracer;
}  // namespace predis

namespace predis::consensus::predis {

/// Byzantine behaviours used in the Fig. 6 experiment.
enum class FaultMode {
  kNone,
  /// Case 1: neither produces bundles nor votes.
  kSilent,
  /// Case 2: refuses to vote; sends each bundle to a random subset of
  /// n_c - f - 1 peers, so quorum votes stall until fetches resolve.
  kPartialDissemination,
};

/// Cap on the missing-bundle span requested per incoming bundle. The
/// gap size is attacker-controlled (a Byzantine producer can sign a
/// header at any height), so fetch-ref construction must stay O(cap),
/// not O(claimed height). See tests/consensus/test_predis.cpp.
inline constexpr BundleHeight kMaxFetchSpan = 256;

struct PredisConfig {
  std::size_t bundle_size = 50;  ///< Max transactions per bundle (paper).
  SimTime bundle_interval = milliseconds(25);  ///< Continuous production.
  SimTime fetch_retry = milliseconds(150);     ///< Missing-bundle re-request.
  /// Bundle-body GC horizon below the confirmed watermark. Consensus
  /// nodes that also feed a full-node distribution layer keep more
  /// history so lagging relayers can still pull (0 = keep everything).
  BundleHeight gc_retention = 64;
  /// Ablation knob: override the `f` used by the cutting rule
  /// (SIZE_MAX = use the consensus group's f). f_cut = 0 waits for every
  /// node ("slowest"), f_cut = n-1 cuts at the leader's own knowledge
  /// ("optimistic", forces fetches).
  std::size_t cut_f_override = static_cast<std::size_t>(-1);
  /// Shed client transactions once the uplink queue extends this far
  /// into the future (graceful saturation).
  SimTime backpressure = milliseconds(150);
  /// §III-E: how long an equivocating producer stays banned before it
  /// may rejoin with a new genesis bundle. 0 = banned forever.
  SimTime ban_duration = 0;
  /// Also shed when this many transactions already await bundling, so
  /// client-observed latency stays bounded at saturation.
  std::size_t max_tx_queue = 4000;
  FaultMode fault = FaultMode::kNone;
  std::uint64_t seed = 1;
};

class PredisEngine {
 public:
  /// `keys` = public keys of all n_c producers (chain order);
  /// `own_key` must be this node's keypair.
  PredisEngine(NodeContext& ctx, PredisConfig config,
               std::vector<PublicKey> keys, KeyPair own_key);

  // --- Wiring ----------------------------------------------------------

  /// Called by the embedding node when any Predis-layer message arrives.
  /// Returns false if the message belongs to someone else.
  bool handle(NodeId from, const runtime::MsgPtr& msg);

  /// Start the continuous bundle-production loop.
  void start();

  /// Rejoin resync (crash-recovery): probe peers for their mempool tip
  /// lists, pull the bundle backlog we slept through, re-announce our
  /// own chain tip, and restart any stalled fetch retry loop. Called by
  /// the embedding node's on_restart before consensus resumes producing.
  void on_restart();

  /// Client transactions enter the local bundle queue here.
  void enqueue(const std::vector<Transaction>& txs);

  /// Attach the shared block-lifecycle tracer (may be null). The engine
  /// records tx enqueue, bundle production, bundle stores, cut
  /// proposals, commits and ban/rejoin events into it.
  void set_tracer(BlockTracer* tracer) { tracer_ = tracer; }

  /// Byzantine test hook (swarm harness): produce two *conflicting*
  /// bundles at the next height — same parent, different transaction
  /// roots — and send each to a disjoint half of the peers. Honest
  /// nodes that see both detect the §III-A conflict, ban this producer
  /// and gossip the signed evidence; the engine keeps building on the
  /// first bundle, so its later output is rejected everywhere.
  void inject_equivocation();

  /// Fired whenever the mempool gained bundles (new bundle or fetch
  /// response) — consensus shims hook payload_ready / revalidate here.
  std::function<void()> on_mempool_grew;

  /// Optional dissemination override: Multi-Zone taps produced bundles
  /// here (to erasure-code toward relayers) *in addition to* the default
  /// consensus-peer multicast.
  std::function<void(const Bundle&)> on_bundle_produced;

  /// Fired for every bundle stored in the mempool — own productions and
  /// bundles received from peers. Multi-Zone consensus nodes stripe
  /// every stored bundle toward their subscribers (§IV-D: "when a
  /// consensus node receives a new bundle, it encodes that bundle...").
  std::function<void(const Bundle&)> on_bundle_stored;

  /// Optional hook invoked when a block's transactions execute.
  std::function<void(const PredisBlock&, const std::vector<Transaction>&)>
      on_block_executed;

  /// Fired the moment this node first handles a block proposal — when
  /// the leader builds one, and when a replica validates one. Test
  /// harnesses use the earliest sighting across nodes as the block's
  /// birth time (decision timestamps lag arbitrarily under faults).
  std::function<void(const PredisBlock&)> on_block_proposal;

  // --- Consensus-side API ----------------------------------------------

  /// Leader: build the next Predis block on top of `prev_heights`.
  /// Returns nullptr when the cut would confirm nothing new.
  PayloadPtr build_payload(BlockHeight height, View view,
                           const Hash32& parent_hash,
                           const std::vector<BundleHeight>& prev_heights);

  /// Replica: §III-B checks. kPending triggers missing-bundle fetches.
  Validity validate_payload(const PayloadPtr& payload,
                            const std::vector<BundleHeight>& expected_prev);

  /// A block was decided: execute now if possible, else defer until the
  /// referenced bundles arrive. Slot key orders deferred executions.
  void commit_block(std::uint64_t slot, const PayloadPtr& payload);

  /// Cut of the newest committed block (prev_heights for the next one).
  const std::vector<BundleHeight>& last_cut() const { return last_cut_; }

  /// State-transfer support: jump the engine to a certified cut without
  /// executing the skipped blocks (their transactions were delivered to
  /// clients by the nodes that stayed up). Deferred commits at or below
  /// `upto_slot` are dropped.
  void fast_forward(const std::vector<BundleHeight>& cut,
                    std::uint64_t upto_slot);

  const Mempool& mempool() const { return mempool_; }
  Mempool& mempool() { return mempool_; }
  const PredisConfig& config() const { return cfg_; }

  /// Bundle bodies reclaimed by mempool GC, summed over all chains.
  core::GcStats gc_stats() const {
    core::GcStats gc;
    for (std::size_t i = 0; i < mempool_.chain_count(); ++i) {
      gc.bytes += mempool_.chain(i).gc_bytes();
      gc.items += mempool_.chain(i).gc_items();
    }
    return gc;
  }

  /// Stall-detector escalations of the missing-bundle fetch loop.
  std::size_t fetch_stalls() const { return fetch_peer_.stalls(); }

  /// Number of transactions waiting to be packed into bundles.
  std::size_t queue_depth() const { return tx_queue_.size(); }

  /// Callback used by commit execution to deliver replies + metrics.
  std::function<void(std::uint64_t slot, const PredisBlock&,
                     const std::vector<Transaction>&)>
      on_execute;

 private:
  void produce_bundle();
  void schedule_production();
  /// Ban + (if ban_duration > 0) schedule the rejoin grant.
  void apply_ban(NodeId producer);
  void disseminate(const Bundle& bundle);
  void add_bundle(NodeId from, const Bundle& bundle,
                  bool signature_verified = false);
  void request_missing(const std::vector<MissingBundleRef>& refs,
                       NodeId block_sender);
  void retry_fetches();
  void flush_deferred();

  NodeContext& ctx_;
  PredisConfig cfg_;
  Mempool mempool_;
  KeyPair own_key_;
  Rng rng_;

  std::deque<Transaction> tx_queue_;
  // Enqueue time of each waiting transaction (parallel to tx_queue_);
  // feeds the tracer's tx-enqueued stage.
  std::deque<SimTime> tx_enqueue_times_;
  BundleHeight own_height_ = 0;
  Hash32 own_parent_hash_ = kZeroHash;

  BlockTracer* tracer_ = nullptr;

  // Producers whose rejoin grant is already scheduled. Guards apply_ban
  // against re-arming the timer for every duplicate ConflictMsg: a
  // stale timer firing after the producer already rejoined would wipe
  // its fresh post-rejoin chain (and for our own index, reset the
  // production head into self-equivocation).
  std::set<NodeId> pending_rejoins_;

  std::vector<BundleHeight> last_cut_;

  // Outstanding fetches: refs we asked for and have not yet received.
  std::set<std::pair<NodeId, BundleHeight>> outstanding_fetches_;
  runtime::TimerHandle fetch_timer_;

  // Fetch pacing: capped jittered exponential backoff replaces the old
  // fixed fetch_retry interval, and a stall detector rotates the target
  // peer deterministically instead of picking one at random — so a
  // withholding producer is routed around and a post-heal fetcher herd
  // desynchronizes.
  core::BackoffPolicy fetch_backoff_;
  core::StallDetector fetch_peer_;
  std::size_t fetch_attempt_ = 0;

  // Committed blocks whose bundles have not all arrived yet.
  std::map<std::uint64_t, PayloadPtr> deferred_commits_;
};

}  // namespace predis::consensus::predis
