#include "consensus/predis/predis_engine.hpp"

#include <algorithm>
#include <memory>

#include "common/block_tracer.hpp"
#include "common/log.hpp"
#include "common/thread_annotations.hpp"
#include "common/rng.hpp"

namespace predis::consensus::predis {

PredisEngine::PredisEngine(NodeContext& ctx, PredisConfig config,
                           std::vector<PublicKey> keys, KeyPair own_key)
    : ctx_(ctx),
      cfg_(config),
      mempool_(ctx.n(), std::move(keys)),
      own_key_(std::move(own_key)),
      rng_(config.seed ^ (0x9e3779b9ULL * (ctx.index() + 1))),
      last_cut_(ctx.n(), 0),
      fetch_peer_(ctx.n(), ctx.index()) {
  mempool_.set_gc_retention(cfg_.gc_retention);
  // Backoff starts well under the old fixed interval (fast first retry)
  // and caps at or above it, so a single drop recovers sooner while a
  // persistent withholder is probed at a bounded, jittered cadence.
  fetch_backoff_.base = milliseconds(25);
  fetch_backoff_.cap = std::max<SimTime>(cfg_.fetch_retry, milliseconds(400));
  // Every conflict the mempool detects — including those found while
  // re-validating buffered out-of-order bundles, where add_bundle's
  // evidence out-param is not on the stack — must arm the rejoin timer
  // and spread the signed evidence to every honest node.
  mempool_.on_conflict = [this](NodeId producer,
                                const ConflictEvidence& ev) {
    apply_ban(producer);
    auto msg = std::make_shared<ConflictMsg>();
    msg->evidence = ev;
    ctx_.broadcast(msg);
  };
}

void PredisEngine::start() {
  if (cfg_.fault == FaultMode::kSilent) return;
  schedule_production();
}

void PredisEngine::on_restart() {
  if (cfg_.fault == FaultMode::kSilent) return;
  // Reset the fetch ladder: whatever cadence we were on before the
  // outage is stale, and the first post-heal retry should be fast. A
  // pre-outage retry timer may still be armed at the old (slow) backoff
  // delay; left alone it keeps scheduled() true below and blocks the
  // fresh fast retry, so the first post-heal fetch would wait out the
  // pre-crash cadence.
  fetch_timer_.cancel();
  fetch_attempt_ = 0;
  fetch_peer_.on_progress();

  // Resync mempool tips before producing (§III-D rejoin): ask every
  // peer where its chains stand so the bundle backlog we slept through
  // is pulled proactively instead of waiting for the next proposal's
  // missing-bundle refs.
  ctx_.broadcast(std::make_shared<TipsProbeMsg>());

  // Re-announce our own chain tip. Bundles we produced right before
  // (or during) the outage never reached anyone; re-sending the newest
  // one makes peers notice the gap and fetch the suffix, which unblocks
  // the cutting rule for our chain.
  const Bundle* own = mempool_.chain(ctx_.index()).latest();
  if (own != nullptr && !mempool_.is_banned(static_cast<NodeId>(ctx_.index()))) {
    disseminate(*own);
  }

  // Kick the retry loop if fetches were in flight when we went down.
  if (!outstanding_fetches_.empty() && !fetch_timer_.scheduled()) {
    fetch_timer_ = ctx_.after(fetch_backoff_.delay(fetch_attempt_, rng_),
                              [this] { retry_fetches(); });
  }
}

void PredisEngine::schedule_production() {
  // Self-rearming tick: each firing schedules the next; no handle kept.
  PREDIS_FIRE_AND_FORGET(ctx_.after(cfg_.bundle_interval, [this] {
    produce_bundle();
    schedule_production();
  }));
}

void PredisEngine::enqueue(const std::vector<Transaction>& txs) {
  if (cfg_.fault == FaultMode::kSilent) return;
  // Backpressure: when the uplink is already far behind, shed incoming
  // client load (the simulated analogue of TCP push-back) so the node
  // saturates gracefully instead of queueing unboundedly.
  if (ctx_.net().uplink_backlog(ctx_.self()) > cfg_.backpressure) return;
  if (tx_queue_.size() >= cfg_.max_tx_queue) return;
  tx_queue_.insert(tx_queue_.end(), txs.begin(), txs.end());
  tx_enqueue_times_.insert(tx_enqueue_times_.end(), txs.size(), ctx_.now());
  // Pack eagerly once a full bundle's worth is waiting.
  while (tx_queue_.size() >= cfg_.bundle_size) produce_bundle();
}

void PredisEngine::produce_bundle() {
  const std::size_t take = std::min(tx_queue_.size(), cfg_.bundle_size);
  std::vector<Transaction> txs(tx_queue_.begin(),
                               tx_queue_.begin() +
                                   static_cast<std::ptrdiff_t>(take));
  tx_queue_.erase(tx_queue_.begin(),
                  tx_queue_.begin() + static_cast<std::ptrdiff_t>(take));
  const SimTime oldest_enqueue =
      take > 0 ? tx_enqueue_times_.front() : kSimTimeNever;
  tx_enqueue_times_.erase(
      tx_enqueue_times_.begin(),
      tx_enqueue_times_.begin() + static_cast<std::ptrdiff_t>(take));

  // Continuous production: empty bundles still carry fresh tip lists,
  // which is what keeps the cutting rule advancing (§III-D liveness).
  std::vector<BundleHeight> tips = mempool_.tip_list();
  tips[ctx_.index()] = own_height_ + 1;

  Bundle bundle = make_bundle(static_cast<NodeId>(ctx_.index()),
                              own_height_ + 1, own_parent_hash_,
                              std::move(tips), std::move(txs), own_key_);
  own_height_ += 1;
  own_parent_hash_ = bundle.header.hash();

  const AddBundleResult result = mempool_.add(bundle);
  if (result != AddBundleResult::kAdded) {
    log_warn("own bundle rejected: ", to_string(result));
    return;
  }
  if (tracer_ != nullptr) {
    const Hash32 bh = bundle.header.hash();
    if (take > 0) tracer_->record(TraceStage::kTxEnqueued, bh, oldest_enqueue);
    tracer_->record(TraceStage::kBundleProduced, bh, ctx_.now());
    tracer_->record_store(bh, ctx_.now(),
                          static_cast<NodeId>(ctx_.index()));
  }
  disseminate(bundle);
  if (on_bundle_produced) on_bundle_produced(bundle);
  if (on_bundle_stored) on_bundle_stored(bundle);
  if (on_mempool_grew) on_mempool_grew();
}

void PredisEngine::inject_equivocation() {
  if (mempool_.is_banned(static_cast<NodeId>(ctx_.index()))) return;

  std::vector<BundleHeight> tips = mempool_.tip_list();
  tips[ctx_.index()] = own_height_ + 1;

  // Two bundles at the same height with the same parent but different
  // contents: an empty one and one carrying a synthetic marker
  // transaction, so the transaction roots (and hence headers) differ.
  Transaction marker;
  marker.client = kNoNode;
  marker.seq = rng_.next();
  marker.size = 8;
  marker.payload_seed = rng_.next();

  const Bundle first = make_bundle(static_cast<NodeId>(ctx_.index()),
                                   own_height_ + 1, own_parent_hash_, tips,
                                   {}, own_key_);
  const Bundle second = make_bundle(static_cast<NodeId>(ctx_.index()),
                                    own_height_ + 1, own_parent_hash_,
                                    std::move(tips), {marker}, own_key_);
  own_height_ += 1;
  own_parent_hash_ = first.header.hash();
  mempool_.add(first);

  std::vector<NodeId> peers;
  for (std::size_t i = 0; i < ctx_.n(); ++i) {
    if (i != ctx_.index()) peers.push_back(ctx_.node(i));
  }
  rng_.shuffle(peers);
  auto msg_a = std::make_shared<BundleMsg>();
  msg_a->bundle = first;
  auto msg_b = std::make_shared<BundleMsg>();
  msg_b->bundle = second;
  for (std::size_t i = 0; i < peers.size(); ++i) {
    ctx_.send_node(peers[i], i < peers.size() / 2 ? msg_a : msg_b);
  }
  if (on_mempool_grew) on_mempool_grew();
}

void PredisEngine::disseminate(const Bundle& bundle) {
  auto msg = std::make_shared<BundleMsg>();
  msg->bundle = bundle;

  if (cfg_.fault == FaultMode::kPartialDissemination) {
    // Case 2 of Fig. 6: send to a random subset of n_c - f - 1 peers.
    std::vector<NodeId> peers;
    for (std::size_t i = 0; i < ctx_.n(); ++i) {
      if (i != ctx_.index()) peers.push_back(ctx_.node(i));
    }
    rng_.shuffle(peers);
    const std::size_t keep = ctx_.n() - ctx_.f() - 1;
    peers.resize(std::min(peers.size(), keep));
    for (NodeId peer : peers) ctx_.send_node(peer, msg);
    return;
  }
  ctx_.broadcast(msg);
}

bool PredisEngine::handle(NodeId from, const runtime::MsgPtr& msg) {
  if (const auto* m = dynamic_cast<const BundleMsg*>(msg.get())) {
    add_bundle(from, m->bundle);
    return true;
  }
  if (const auto* m = dynamic_cast<const BundleFetchMsg*>(msg.get())) {
    auto reply = std::make_shared<BundleBatchMsg>();
    for (const auto& ref : m->refs) {
      if (ref.chain >= mempool_.chain_count()) continue;
      const Bundle* b = mempool_.chain(ref.chain).get(ref.height);
      if (b != nullptr) reply->bundles.push_back(*b);
    }
    if (!reply->bundles.empty()) ctx_.send_node(from, std::move(reply));
    return true;
  }
  if (const auto* m = dynamic_cast<const BundleBatchMsg*>(msg.get())) {
    // Quorum-boundary batch: verify every signature in the reply with
    // one registry lock, then insert the survivors with the per-bundle
    // check already discharged. Out-of-range producers are dropped
    // here (the mempool would reject them as kInvalid anyway).
    std::vector<HeaderSigCheck> checks;
    std::vector<std::size_t> index;
    checks.reserve(m->bundles.size());
    index.reserve(m->bundles.size());
    for (std::size_t i = 0; i < m->bundles.size(); ++i) {
      const NodeId producer = m->bundles[i].header.producer;
      if (producer >= mempool_.chain_count()) continue;
      checks.push_back(
          {&m->bundles[i].header, &mempool_.producer_key(producer)});
      index.push_back(i);
    }
    const std::unique_ptr<bool[]> ok(new bool[checks.size() + 1]);
    verify_bundle_signatures(checks, ok.get());
    for (std::size_t j = 0; j < checks.size(); ++j) {
      if (ok[j]) {
        add_bundle(from, m->bundles[index[j]], /*signature_verified=*/true);
      }
    }
    return true;
  }
  if (dynamic_cast<const TipsProbeMsg*>(msg.get()) != nullptr) {
    auto reply = std::make_shared<TipsReplyMsg>();
    reply->tips = mempool_.tip_list();
    ctx_.send_node(from, std::move(reply));
    return true;
  }
  if (const auto* m = dynamic_cast<const TipsReplyMsg*>(msg.get())) {
    // Backlog pull: fetch the span between our contiguous height and the
    // responder's tip on every chain, capped per chain so a forged reply
    // claiming absurd heights costs O(kMaxFetchSpan), not O(claim).
    std::vector<MissingBundleRef> refs;
    for (std::size_t i = 0;
         i < m->tips.size() && i < mempool_.chain_count(); ++i) {
      if (i == ctx_.index()) continue;  // only we extend our own chain
      const BundleHeight from_h = mempool_.chain(i).contiguous_height() + 1;
      const BundleHeight to_h =
          std::min(m->tips[i], from_h + kMaxFetchSpan - 1);
      for (BundleHeight h = from_h; h <= to_h; ++h) {
        refs.push_back({static_cast<NodeId>(i), h});
      }
    }
    if (!refs.empty()) request_missing(refs, from);
    return true;
  }
  if (const auto* m = dynamic_cast<const ConflictMsg*>(msg.get())) {
    const auto& ev = m->evidence;
    // Believe the evidence only if both headers are properly signed by
    // the same producer and genuinely conflict — forged evidence must
    // not let an attacker ban honest producers. Mirroring the mempool's
    // two detection shapes, a fork is proven by two different headers
    // at the same height, or by a child whose parent hash contradicts
    // the signed bundle one height below it (the producer must have
    // signed a different parent at that height).
    const bool same_height_fork = ev.first.height == ev.second.height &&
                                  !(ev.first == ev.second);
    const bool parent_fork = ev.second.height == ev.first.height + 1 &&
                             ev.second.parent_hash != ev.first.hash();
    if (ev.first.producer == ev.second.producer &&
        ev.first.producer < ctx_.n() && (same_height_fork || parent_fork)) {
      // Both headers share a producer, so both MACs resolve through
      // one registry lock.
      const PublicKey& key = mempool_.producer_key(ev.first.producer);
      const std::vector<HeaderSigCheck> checks = {{&ev.first, &key},
                                                  {&ev.second, &key}};
      bool ok[2] = {false, false};
      if (verify_bundle_signatures(checks, ok) == 2) {
        apply_ban(ev.first.producer);
      }
    }
    return true;
  }
  return false;
}

void PredisEngine::apply_ban(NodeId producer) {
  mempool_.ban(producer);
  if (tracer_ != nullptr) {
    tracer_->record_ban(static_cast<NodeId>(ctx_.index()), producer,
                        ctx_.now());
  }
  if (cfg_.ban_duration <= 0) return;
  // One rejoin grant per ban. Duplicate ConflictMsgs for the same
  // offence (every honest node broadcasts one) must not arm extra
  // timers: a stale timer firing after the producer already rejoined
  // would call allow_rejoin again, wiping the fresh post-rejoin chain
  // suffix and — when the producer is this node — resetting
  // own_height_/own_parent_hash_ so the next bundle equivocates against
  // our own earlier production.
  if (!pending_rejoins_.insert(producer).second) return;
  // The pending_rejoins_ guard above is the cancellation discipline:
  // exactly one grant timer per ban, erased when it fires.
  PREDIS_FIRE_AND_FORGET(ctx_.after(cfg_.ban_duration, [this, producer] {
    pending_rejoins_.erase(producer);
    mempool_.allow_rejoin(producer);
    if (tracer_ != nullptr) {
      tracer_->record_unban(static_cast<NodeId>(ctx_.index()), producer,
                            ctx_.now());
    }
    if (producer == ctx_.index()) {
      // We served our sentence: restart our chain with a new genesis
      // bundle at the confirmed height.
      own_height_ = mempool_.confirmed()[producer];
      own_parent_hash_ = kZeroHash;
    }
  }));
}

void PredisEngine::add_bundle(NodeId from, const Bundle& bundle,
                              bool signature_verified) {
  const AddBundleResult result =
      mempool_.add(bundle, nullptr, signature_verified);
  switch (result) {
    case AddBundleResult::kAdded: {
      if (outstanding_fetches_.erase({bundle.header.producer,
                                      bundle.header.height}) > 0) {
        // A fetch was answered: current peer is serving us, restart the
        // backoff ladder from the fast end.
        fetch_peer_.on_progress();
        fetch_attempt_ = 0;
      }
      if (tracer_ != nullptr) {
        tracer_->record_store(bundle.header.hash(), ctx_.now(),
                              static_cast<NodeId>(ctx_.index()));
      }
      if (on_bundle_stored) on_bundle_stored(bundle);
      if (on_mempool_grew) on_mempool_grew();
      flush_deferred();
      break;
    }
    case AddBundleResult::kMissingParent: {
      // Rule 1: ask the producer for the gap (contiguous+1 .. height-1).
      // The gap size comes from a message-carried height a Byzantine
      // producer can sign at any absurd value, so the span is capped:
      // a window above the contiguous height is fetched now and the
      // rest follows incrementally as the chain actually extends.
      std::vector<MissingBundleRef> refs;
      const BundleHeight from_h =
          mempool_.chain(bundle.header.producer).contiguous_height() + 1;
      const BundleHeight to_h =
          std::min(bundle.header.height,
                   from_h + kMaxFetchSpan);
      for (BundleHeight h = from_h; h < to_h; ++h) {
        refs.push_back({bundle.header.producer, h});
      }
      if (!refs.empty()) {
        request_missing(refs, ctx_.node(bundle.header.producer));
      }
      break;
    }
    case AddBundleResult::kConflict:
      // The mempool's on_conflict hook (wired in the constructor)
      // already armed the rejoin timer and broadcast the signed
      // evidence — doing it here too would double-broadcast.
      break;
    default:
      break;
  }
  (void)from;
}

PayloadPtr PredisEngine::build_payload(
    BlockHeight height, View view, const Hash32& parent_hash,
    const std::vector<BundleHeight>& prev_heights) {
  const std::size_t cut_f =
      cfg_.cut_f_override == static_cast<std::size_t>(-1)
          ? ctx_.f()
          : std::min(cfg_.cut_f_override, ctx_.n() - 1);
  PredisBlock block = build_predis_block(
      mempool_, static_cast<NodeId>(ctx_.index()), cut_f, height, view,
      parent_hash, prev_heights, own_key_);
  if (block.header_hashes.empty()) return nullptr;  // nothing new to confirm
  if (tracer_ != nullptr) {
    tracer_->record(TraceStage::kCutProposed, block.hash(), ctx_.now());
  }
  if (on_block_proposal) on_block_proposal(block);
  return std::make_shared<PredisPayload>(std::move(block));
}

Validity PredisEngine::validate_payload(
    const PayloadPtr& payload,
    const std::vector<BundleHeight>& expected_prev) {
  const auto* pp = dynamic_cast<const PredisPayload*>(payload.get());
  if (pp == nullptr) return Validity::kInvalid;
  const PredisBlock& block = pp->block();
  if (tracer_ != nullptr) {
    tracer_->record(TraceStage::kCutProposed, block.hash(), ctx_.now());
  }
  if (on_block_proposal) on_block_proposal(block);
  if (block.prev_heights != expected_prev) return Validity::kInvalid;
  if (block.leader >= ctx_.n()) return Validity::kInvalid;

  std::vector<MissingBundleRef> missing;
  const BlockVerifyResult result = verify_predis_block(
      mempool_, block, KeyPair::from_seed(ctx_.node(block.leader)).public_key(),
      &missing);
  switch (result) {
    case BlockVerifyResult::kOk:
      return Validity::kValid;
    case BlockVerifyResult::kMissingBundles:
      request_missing(missing, ctx_.node(block.leader));
      return Validity::kPending;
    default:
      log_debug("predis block rejected: ", to_string(result));
      return Validity::kInvalid;
  }
}

void PredisEngine::request_missing(const std::vector<MissingBundleRef>& refs,
                                   NodeId /*block_sender*/) {
  std::map<NodeId, std::vector<MissingBundleRef>> by_producer;
  for (const auto& ref : refs) {
    if (outstanding_fetches_.count({ref.chain, ref.height}) != 0) continue;
    outstanding_fetches_.insert({ref.chain, ref.height});
    by_producer[ref.chain].push_back(ref);
  }
  // First attempt goes to the bundle producer itself (§III-D).
  for (auto& [chain, chain_refs] : by_producer) {
    auto msg = std::make_shared<BundleFetchMsg>();
    msg->refs = std::move(chain_refs);
    ctx_.send_node(ctx_.node(chain), std::move(msg));
  }
  if (!outstanding_fetches_.empty() && !fetch_timer_.scheduled()) {
    fetch_timer_ = ctx_.after(fetch_backoff_.delay(fetch_attempt_, rng_),
                              [this] { retry_fetches(); });
  }
}

void PredisEngine::retry_fetches() {
  // Drop satisfied refs, re-request the rest from *other available
  // nodes* (§III-D) — the producer may be withholding. The stall
  // detector walks a deterministic peer ladder instead of rolling a
  // random target, and the jittered backoff spreads re-requests from
  // nodes that healed at the same instant.
  std::vector<MissingBundleRef> still_missing;
  for (const auto& [chain, height] : outstanding_fetches_) {
    if (!mempool_.chain(chain).has(height)) {
      still_missing.push_back({chain, height});
    }
  }
  outstanding_fetches_.clear();
  if (still_missing.empty()) {
    fetch_attempt_ = 0;
    fetch_peer_.on_progress();
    return;
  }

  for (const auto& ref : still_missing) {
    outstanding_fetches_.insert({ref.chain, ref.height});
  }
  fetch_peer_.on_timeout();
  fetch_attempt_ += 1;
  auto msg = std::make_shared<BundleFetchMsg>();
  msg->refs = std::move(still_missing);
  ctx_.send_to(fetch_peer_.peer(), std::move(msg));

  fetch_timer_ = ctx_.after(fetch_backoff_.delay(fetch_attempt_, rng_),
                            [this] { retry_fetches(); });
}

void PredisEngine::commit_block(std::uint64_t slot,
                                const PayloadPtr& payload) {
  deferred_commits_.emplace(slot, payload);
  flush_deferred();
}

void PredisEngine::fast_forward(const std::vector<BundleHeight>& cut,
                                std::uint64_t upto_slot) {
  mempool_.confirm(cut);
  for (std::size_t i = 0; i < last_cut_.size() && i < cut.size(); ++i) {
    last_cut_[i] = std::max(last_cut_[i], cut[i]);
  }
  deferred_commits_.erase(deferred_commits_.begin(),
                          deferred_commits_.upper_bound(upto_slot));
  flush_deferred();
}

void PredisEngine::flush_deferred() {
  while (!deferred_commits_.empty()) {
    const auto it = deferred_commits_.begin();
    // Hold the payload past the erase below: once the consensus core
    // GC's its slot log, this map entry may be the last owner, and
    // `block` must outlive the execution callbacks.
    const PayloadPtr payload = it->second;
    const auto* pp = dynamic_cast<const PredisPayload*>(payload.get());
    if (pp == nullptr) {
      deferred_commits_.erase(it);
      continue;
    }
    const PredisBlock& block = pp->block();

    // All referenced bundles must be present to execute.
    std::vector<MissingBundleRef> missing;
    for (std::size_t i = 0; i < block.cut_heights.size(); ++i) {
      for (BundleHeight h = block.prev_heights[i] + 1;
           h <= block.cut_heights[i]; ++h) {
        if (!mempool_.chain(i).has(h)) missing.push_back({(NodeId)i, h});
      }
    }
    if (!missing.empty()) {
      request_missing(missing, ctx_.node(block.leader));
      return;  // retry when bundles arrive
    }

    const std::vector<Transaction> txs =
        extract_transactions(mempool_, block);
    mempool_.confirm(block.cut_heights);
    for (std::size_t i = 0; i < last_cut_.size(); ++i) {
      last_cut_[i] = std::max(last_cut_[i], block.cut_heights[i]);
    }
    const std::uint64_t slot = it->first;
    deferred_commits_.erase(it);
    if (tracer_ != nullptr) {
      tracer_->record(TraceStage::kBlockCommitted, block.hash(), ctx_.now());
    }
    if (on_execute) on_execute(slot, block, txs);
    if (on_block_executed) on_block_executed(block, txs);
  }
}

}  // namespace predis::consensus::predis
