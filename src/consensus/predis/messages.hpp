// Wire messages of the Predis data-production layer.
#pragma once

#include "bundle/predis_block.hpp"
#include "consensus/common.hpp"
#include "runtime/message.hpp"

namespace predis::consensus::predis {

/// Producer -> consensus peers: one freshly packed bundle.
struct BundleMsg final : runtime::Message {
  Bundle bundle;

  std::size_t wire_size() const override { return bundle.wire_size(); }
  const char* name() const override { return "Bundle"; }
};

/// Request for bundles we are missing (after a Predis block referenced
/// them, §III-D case 2).
struct BundleFetchMsg final : runtime::Message {
  std::vector<MissingBundleRef> refs;

  std::size_t wire_size() const override { return 16 + refs.size() * 12; }
  const char* name() const override { return "BundleFetch"; }
};

/// Response to a fetch: the requested bundles we hold.
struct BundleBatchMsg final : runtime::Message {
  std::vector<Bundle> bundles;

  std::size_t wire_size() const override {
    std::size_t size = 16;
    for (const auto& b : bundles) size += b.wire_size();
    return size;
  }
  const char* name() const override { return "BundleBatch"; }
};

/// Rejoin resync probe: a restarted node asks peers for their mempool
/// tip lists so it can pull the bundle backlog it slept through instead
/// of waiting for the next block proposal to reveal the gaps.
struct TipsProbeMsg final : runtime::Message {
  std::size_t wire_size() const override { return 16 + kSigBytes; }
  const char* name() const override { return "TipsProbe"; }
};

/// Reply to a TipsProbeMsg: the responder's contiguous tip heights.
struct TipsReplyMsg final : runtime::Message {
  std::vector<BundleHeight> tips;

  std::size_t wire_size() const override {
    return 16 + kSigBytes + tips.size() * 8;
  }
  const char* name() const override { return "TipsReply"; }
};

/// Gossip of equivocation evidence: two conflicting signed headers from
/// one producer. Receivers verify and ban the producer (§III-A).
struct ConflictMsg final : runtime::Message {
  ConflictEvidence evidence;

  std::size_t wire_size() const override {
    return evidence.first.wire_size() + evidence.second.wire_size();
  }
  const char* name() const override { return "Conflict"; }
};

}  // namespace predis::consensus::predis
