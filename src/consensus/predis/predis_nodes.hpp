// P-PBFT and P-HS: the paper's Predis data production mounted on the
// PBFT and chained-HotStuff cores. Clients send transactions to *one*
// consensus node each; every node packs its own bundles; the leader's
// proposal is the O(n_c)-sized Predis block.
#pragma once

#include "consensus/hotstuff/hotstuff_core.hpp"
#include "consensus/pbft/pbft_core.hpp"
#include "consensus/predis/predis_engine.hpp"

namespace predis::consensus::predis {

/// Predis riding PBFT (P-PBFT, Fig. 4(a)/(c)).
class PredisPbftNode final : public runtime::Actor, private pbft::PbftApp {
 public:
  PredisPbftNode(NodeContext ctx, PredisConfig config,
                 std::vector<PublicKey> keys, KeyPair own_key,
                 CommitLedger& ledger)
      : ctx_(std::move(ctx)),
        ledger_(ledger),
        replies_(ctx_),
        engine_(ctx_, config, std::move(keys), std::move(own_key)),
        core_(ctx_, *this),
        committed_cut_(ctx_.n(), 0) {
    engine_.on_mempool_grew = [this] {
      core_.payload_ready();
      core_.revalidate(core_.last_executed() + 1);
    };
    engine_.on_execute = [this](std::uint64_t slot, const PredisBlock& block,
                                const std::vector<Transaction>& txs) {
      (void)slot;
      if (on_committed_block) {
        on_committed_block(block.hash(), txs, ctx_.now());
      }
      replies_.reply_committed(txs);
    };
    if (config.fault != FaultMode::kNone) core_.set_paused(true);
  }

  void on_start() override {
    engine_.start();
    core_.start();
  }

  void on_restart() override {
    // Mempool tips resync first, so by the time the consensus core's
    // catch-up lands on a Predis block the bundle backlog is already
    // being pulled (deferred commits then flush instead of stalling).
    engine_.on_restart();
    core_.on_restart();
  }

  void on_message(NodeId from, const runtime::MsgPtr& msg) override {
    if (const auto* req = dynamic_cast<const ClientRequestMsg*>(msg.get())) {
      engine_.enqueue(req->txs);
      return;
    }
    if (engine_.handle(from, msg)) return;
    core_.handle(from, msg);
  }

  pbft::PbftCore& core() { return core_; }
  PredisEngine& engine() { return engine_; }

  /// Observation hook: fired for every executed block.
  std::function<void(const Hash32&, const std::vector<Transaction>&,
                     SimTime)>
      on_committed_block;

 private:
  // --- PbftApp ---------------------------------------------------------

  PayloadPtr make_payload(SeqNum seq) override {
    return engine_.build_payload(seq, core_.view(), last_block_hash_,
                                 committed_cut_);
  }

  Validity validate(SeqNum /*seq*/, const PayloadPtr& payload) override {
    if (is_noop(payload)) return Validity::kValid;
    const auto* pp = dynamic_cast<const PredisPayload*>(payload.get());
    if (pp == nullptr) return Validity::kInvalid;
    const auto& prev = pp->block().prev_heights;
    if (prev.size() != committed_cut_.size()) return Validity::kInvalid;
    // The proposal may chain on a commit we have not locally processed
    // yet; wait rather than reject.
    bool ahead = false;
    for (std::size_t i = 0; i < prev.size(); ++i) {
      if (prev[i] < committed_cut_[i]) return Validity::kInvalid;
      if (prev[i] > committed_cut_[i]) ahead = true;
    }
    if (ahead) return Validity::kPending;
    return engine_.validate_payload(payload, committed_cut_);
  }

  void on_commit(SeqNum seq, const PayloadPtr& payload) override {
    if (is_noop(payload)) {
      ledger_.on_commit(ctx_.index(), seq, payload->digest(), 0,
                        ctx_.now());
      if (on_committed_block) {
        on_committed_block(payload->digest(), {}, ctx_.now());
      }
      core_.revalidate(seq + 1);
      return;
    }
    const auto& pp = dynamic_cast<const PredisPayload&>(*payload);
    for (std::size_t i = 0; i < committed_cut_.size(); ++i) {
      committed_cut_[i] =
          std::max(committed_cut_[i], pp.block().cut_heights[i]);
    }
    last_block_hash_ = pp.block().hash();
    ledger_.on_commit(ctx_.index(), seq, payload->digest(),
                      pp.block().tx_count(engine_.mempool()), ctx_.now());
    engine_.commit_block(seq, payload);
    core_.revalidate(seq + 1);
  }

  // --- Checkpointing (state = the committed cut + chain head) ----------

  Hash32 state_digest() override {
    Writer w;
    w.vec_u64(committed_cut_);
    w.hash(last_block_hash_);
    return Sha256::hash(w.data());
  }

  Bytes make_snapshot() override {
    Writer w;
    w.vec_u64(committed_cut_);
    w.hash(last_block_hash_);
    return std::move(w).take();
  }

  void apply_snapshot(SeqNum seq, BytesView blob) override {
    Reader r(blob);
    const std::vector<BundleHeight> cut = r.vec_u64();
    const Hash32 head = r.hash();
    for (std::size_t i = 0; i < committed_cut_.size() && i < cut.size();
         ++i) {
      committed_cut_[i] = std::max(committed_cut_[i], cut[i]);
    }
    last_block_hash_ = head;
    engine_.fast_forward(committed_cut_, seq);
  }

  NodeContext ctx_;
  CommitLedger& ledger_;
  ReplyManager replies_;
  PredisEngine engine_;
  pbft::PbftCore core_;
  std::vector<BundleHeight> committed_cut_;
  Hash32 last_block_hash_ = kZeroHash;
};

/// Predis riding chained HotStuff (P-HS, Fig. 4(b)/(d), Fig. 5).
class PredisHotStuffNode final : public runtime::Actor,
                                 private hotstuff::HotStuffApp {
 public:
  PredisHotStuffNode(NodeContext ctx, PredisConfig config,
                     std::vector<PublicKey> keys, KeyPair own_key,
                     CommitLedger& ledger)
      : ctx_(std::move(ctx)),
        ledger_(ledger),
        replies_(ctx_),
        engine_(ctx_, config, std::move(keys), std::move(own_key)),
        core_(ctx_, *this),
        committed_cut_(ctx_.n(), 0) {
    engine_.on_mempool_grew = [this] {
      core_.payload_ready();
      core_.revalidate();
    };
    engine_.on_execute = [this](std::uint64_t /*slot*/,
                                const PredisBlock& block,
                                const std::vector<Transaction>& txs) {
      if (on_committed_block) {
        on_committed_block(block.hash(), txs, ctx_.now());
      }
      replies_.reply_committed(txs);
    };
    if (config.fault != FaultMode::kNone) core_.set_paused(true);
  }

  void on_start() override {
    engine_.start();
    core_.start();
  }

  void on_restart() override {
    engine_.on_restart();  // tips resync before consensus resumes
    core_.on_restart();
  }

  void on_message(NodeId from, const runtime::MsgPtr& msg) override {
    if (const auto* req = dynamic_cast<const ClientRequestMsg*>(msg.get())) {
      engine_.enqueue(req->txs);
      return;
    }
    if (engine_.handle(from, msg)) return;
    core_.handle(from, msg);
  }

  hotstuff::HotStuffCore& core() { return core_; }
  PredisEngine& engine() { return engine_; }

  /// Observation hook: fired for every executed block.
  std::function<void(const Hash32&, const std::vector<Transaction>&,
                     SimTime)>
      on_committed_block;

 private:
  /// The cut this proposal must chain on: the nearest Predis ancestor's
  /// cut, or the last committed cut when the whole chain is committed.
  std::vector<BundleHeight> expected_prev(
      const std::vector<PayloadPtr>& ancestors) const {
    for (const auto& payload : ancestors) {
      const auto* pp = dynamic_cast<const PredisPayload*>(payload.get());
      if (pp != nullptr) return pp->block().cut_heights;
    }
    return committed_cut_;
  }

  // --- HotStuffApp -----------------------------------------------------

  PayloadPtr make_payload(hotstuff::Round round,
                          const std::vector<PayloadPtr>& ancestors) override {
    return engine_.build_payload(round, round, last_block_hash_,
                                 expected_prev(ancestors));
  }

  Validity validate(hotstuff::Round /*round*/, const PayloadPtr& payload,
                    const std::vector<PayloadPtr>& ancestors) override {
    return engine_.validate_payload(payload, expected_prev(ancestors));
  }

  void on_commit(hotstuff::Round round, const PayloadPtr& payload) override {
    const auto& pp = dynamic_cast<const PredisPayload&>(*payload);
    for (std::size_t i = 0; i < committed_cut_.size(); ++i) {
      committed_cut_[i] =
          std::max(committed_cut_[i], pp.block().cut_heights[i]);
    }
    last_block_hash_ = pp.block().hash();
    ledger_.on_commit(ctx_.index(), round, payload->digest(),
                      pp.block().tx_count(engine_.mempool()), ctx_.now());
    engine_.commit_block(round, payload);
  }

  NodeContext ctx_;
  CommitLedger& ledger_;
  ReplyManager replies_;
  PredisEngine engine_;
  hotstuff::HotStuffCore core_;
  std::vector<BundleHeight> committed_cut_;
  Hash32 last_block_hash_ = kZeroHash;
};

}  // namespace predis::consensus::predis
