// Cancellable timer handle shared by every Runtime backend.
//
// The liveness flag is an atomic so a consensus core running on one
// worker thread can cancel a timer that the threaded backend's timer
// wheel is about to fire on another; on the discrete-event backend the
// atomic is uncontended and costs nothing.
#pragma once

#include <atomic>
#include <memory>

namespace predis::runtime {

/// Handle for a scheduled callback; allows cancellation (e.g. when a
/// consensus timer is reset on progress).
class TimerHandle {
 public:
  TimerHandle() = default;

  /// Backend-internal: wraps the shared liveness flag of one event.
  explicit TimerHandle(std::shared_ptr<std::atomic<bool>> alive)
      : alive_(std::move(alive)) {}

  /// Prevent the callback from running if it has not fired yet.
  void cancel() {
    if (alive_) alive_->store(false, std::memory_order_relaxed);
  }

  bool scheduled() const {
    return alive_ && alive_->load(std::memory_order_relaxed);
  }

 private:
  std::shared_ptr<std::atomic<bool>> alive_;
};

}  // namespace predis::runtime
