// predis-lint: allow-file(D2): the wall-clock mode of this backend is
// the one place outside benchmarks where real time is the product —
// every other module still gets its time exclusively through
// Runtime::now().
#include "runtime/thread_runtime.hpp"

#include <algorithm>
#include <stdexcept>

namespace predis::runtime {

namespace {
std::chrono::nanoseconds to_chrono(SimTime t) {
  return std::chrono::nanoseconds(t);
}
}  // namespace

ThreadRuntime::ThreadRuntime(ThreadRuntimeConfig config)
    : cfg_(std::move(config)),
      links_(cfg_.latency),
      epoch_(std::chrono::steady_clock::now()) {
  if (cfg_.clock == ClockMode::kWall) {
    const std::size_t n = cfg_.workers == 0 ? 1 : cfg_.workers;
    workers_.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      workers_.emplace_back([this] { worker_loop(); });
    }
    timer_thread_ = std::thread([this] { timer_loop(); });
  }
}

ThreadRuntime::~ThreadRuntime() {
  {
    std::lock_guard<std::mutex> lk(ready_m_);
    stopping_ = true;
  }
  {
    std::lock_guard<std::mutex> lk(timer_m_);
    // stopping_ is read under ready_m_ by workers and under timer_m_
    // here purely as a wakeup; the flag itself is only written once.
  }
  ready_cv_.notify_all();
  timer_cv_.notify_all();
  for (auto& w : workers_) w.join();
  if (timer_thread_.joinable()) timer_thread_.join();
}

NodeId ThreadRuntime::add_node(const NodeConfig& config) {
  const NodeId id = links_.add_node(config);
  if (cfg_.clock == ClockMode::kWall) {
    auto mb = std::make_unique<Mailbox>();
    mb->config = config;
    mailboxes_.push_back(std::move(mb));
  }
  return id;
}

void ThreadRuntime::attach(NodeId id, Actor* actor) {
  links_.attach(id, actor);
  if (cfg_.clock == ClockMode::kWall) {
    std::lock_guard<std::mutex> lk(mailboxes_.at(id)->m);
    mailboxes_[id]->actor = actor;
  }
}

std::size_t ThreadRuntime::node_count() const { return links_.node_count(); }

std::uint32_t ThreadRuntime::region_of(NodeId id) const {
  return links_.region_of(id);
}

SimTime ThreadRuntime::now() const {
  if (cfg_.clock == ClockMode::kLogical) return logical_now_;
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

TimerHandle ThreadRuntime::push_logical(SimTime at, std::function<void()> fn) {
  auto alive = std::make_shared<std::atomic<bool>>(true);
  logical_q_.push(SimEvent{at, logical_seq_++, std::move(fn), alive});
  return TimerHandle{std::move(alive)};
}

TimerHandle ThreadRuntime::schedule(NodeId owner, SimTime delay,
                                    std::function<void()> fn) {
  if (delay < 0) {
    throw std::invalid_argument("ThreadRuntime::schedule: negative delay");
  }
  if (cfg_.clock == ClockMode::kLogical) {
    return push_logical(logical_now_ + delay, std::move(fn));
  }
  auto alive = std::make_shared<std::atomic<bool>>(true);
  {
    std::lock_guard<std::mutex> lk(timer_m_);
    timer_q_.push(
        TimerEvent{now() + delay, timer_seq_++, owner, std::move(fn), alive});
  }
  timer_cv_.notify_one();
  return TimerHandle{std::move(alive)};
}

void ThreadRuntime::send(NodeId from, NodeId to, MsgPtr msg) {
  if (cfg_.clock == ClockMode::kLogical) {
    // Same fluid model, same event ordering as sim::Network::send.
    const auto plan = links_.plan_send(from, to, *msg, logical_now_);
    if (!plan.deliver) return;
    push_logical(plan.at,
                 [this, from, to, msg = std::move(msg), size = plan.size]() {
                   Actor* actor = links_.complete_delivery(from, to, size,
                                                           logical_now_, *msg);
                   if (actor != nullptr) actor->on_message(from, msg);
                 });
    return;
  }

  if (from >= mailboxes_.size() || to >= mailboxes_.size()) {
    throw std::out_of_range("ThreadRuntime::send: unknown node");
  }
  const std::size_t size = msg->wire_size() + kTransportOverhead;
  {
    Mailbox& src = *mailboxes_[from];
    std::lock_guard<std::mutex> lk(src.m);
    if (src.down) {
      ++src.stats.messages_dropped;
      return;
    }
    src.stats.bytes_sent += size;
    ++src.stats.messages_sent;
  }
  {
    std::lock_guard<std::mutex> lk(hooks_m_);
    if (drop_filter_ && drop_filter_(from, to, *msg)) return;
  }
  Item item;
  item.from = from;
  item.msg = std::move(msg);
  item.size = size;
  enqueue_item(to, std::move(item));
}

void ThreadRuntime::multicast(NodeId from, const std::vector<NodeId>& to,
                              const MsgPtr& msg) {
  for (NodeId dest : to) {
    if (dest == from) continue;
    send(from, dest, msg);
  }
}

void ThreadRuntime::enqueue_item(NodeId to, Item item) {
  Mailbox& dst = *mailboxes_.at(to);
  bool need_ready = false;
  {
    std::lock_guard<std::mutex> lk(dst.m);
    if (item.msg != nullptr && dst.down) return;
    dst.q.push_back(std::move(item));
    if (!dst.active) {
      dst.active = true;
      need_ready = true;
    }
  }
  if (need_ready) {
    {
      std::lock_guard<std::mutex> lk(ready_m_);
      ready_.push_back(to);
    }
    ready_cv_.notify_one();
  }
}

void ThreadRuntime::start() {
  // Fire on_start in id order on the calling thread, with the worker
  // gate still closed: traffic generated here piles up in mailboxes
  // and the run begins atomically when the gate opens below (the
  // release of ready_m_ is what publishes all on_start writes to the
  // workers).
  for (NodeId id = 0; id < links_.node_count(); ++id) {
    Actor* actor = links_.actor(id);
    if (actor != nullptr && !is_down(id)) actor->on_start();
  }
  if (cfg_.clock == ClockMode::kWall) {
    {
      std::lock_guard<std::mutex> lk(ready_m_);
      running_ = true;
    }
    ready_cv_.notify_all();
    timer_cv_.notify_all();
  }
}

void ThreadRuntime::run_until(SimTime limit) {
  if (cfg_.clock == ClockMode::kLogical) {
    while (!logical_q_.empty() && logical_q_.top().time <= limit) {
      SimEvent ev = logical_q_.top();
      logical_q_.pop();
      logical_now_ = ev.time;
      if (ev.alive->exchange(false, std::memory_order_relaxed)) {
        ev.fn();
      }
    }
    if (logical_now_ < limit) logical_now_ = limit;
    return;
  }

  draining_.store(false, std::memory_order_relaxed);
  std::this_thread::sleep_until(epoch_ + to_chrono(limit));
  // Deadline passed: stop firing timers (heartbeats would otherwise
  // re-arm forever) and wait for in-flight message cascades to die
  // out, so the caller can read shared run state without racing.
  draining_.store(true, std::memory_order_relaxed);
  const auto give_up =
      std::chrono::steady_clock::now() + to_chrono(cfg_.drain_grace);
  while (!quiescent() && std::chrono::steady_clock::now() < give_up) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

bool ThreadRuntime::quiescent() {
  for (auto& mb : mailboxes_) {
    std::lock_guard<std::mutex> lk(mb->m);
    if (mb->active || !mb->q.empty()) return false;
  }
  std::lock_guard<std::mutex> lk(ready_m_);
  return ready_.empty();
}

void ThreadRuntime::worker_loop() {
  for (;;) {
    NodeId idx = kNoNode;
    {
      std::unique_lock<std::mutex> lk(ready_m_);
      ready_cv_.wait(
          lk, [this] { return stopping_ || (running_ && !ready_.empty()); });
      if (stopping_) return;
      idx = ready_.front();
      ready_.pop_front();
    }
    drain_mailbox(idx);
  }
}

void ThreadRuntime::drain_mailbox(NodeId id) {
  Mailbox& mb = *mailboxes_[id];
  for (;;) {
    std::deque<Item> batch;
    {
      std::lock_guard<std::mutex> lk(mb.m);
      if (mb.q.empty()) {
        mb.active = false;
        return;
      }
      batch.swap(mb.q);
    }
    for (Item& item : batch) dispatch(mb, item);
  }
}

void ThreadRuntime::dispatch(Mailbox& mb, Item& item) {
  if (item.msg == nullptr) {
    // Timer task routed through the owner's mailbox: consume the
    // liveness flag exactly once (a cancel() racing this exchange
    // either wins — flag already false — or loses cleanly).
    if (item.alive != nullptr &&
        !item.alive->exchange(false, std::memory_order_relaxed)) {
      return;
    }
    item.task();
    return;
  }
  Actor* actor = nullptr;
  {
    std::lock_guard<std::mutex> lk(mb.m);
    if (mb.down || mb.actor == nullptr) return;
    mb.stats.bytes_received += item.size;
    ++mb.stats.messages_received;
    actor = mb.actor;
  }
  actor->on_message(item.from, item.msg);
}

void ThreadRuntime::timer_loop() {
  std::unique_lock<std::mutex> lk(timer_m_);
  for (;;) {
    if (stopping_read()) return;
    if (timer_q_.empty()) {
      timer_cv_.wait(lk);
      continue;
    }
    const auto deadline = epoch_ + to_chrono(timer_q_.top().deadline);
    if (std::chrono::steady_clock::now() < deadline) {
      timer_cv_.wait_until(lk, deadline);
      continue;
    }
    TimerEvent ev = timer_q_.top();
    timer_q_.pop();
    lk.unlock();
    if (!draining_.load(std::memory_order_relaxed)) {
      if (ev.owner == kNoNode) {
        // Harness callback: runs on the wheel thread; consume the flag.
        if (ev.alive->exchange(false, std::memory_order_relaxed)) ev.fn();
      } else {
        Item item;
        item.task = std::move(ev.fn);
        item.alive = std::move(ev.alive);
        enqueue_item(ev.owner, std::move(item));
      }
    }
    lk.lock();
  }
}

bool ThreadRuntime::stopping_read() {
  // stopping_ is written once under ready_m_; reading it under that
  // mutex keeps the timer loop race-free without an extra atomic.
  std::lock_guard<std::mutex> lk(ready_m_);
  return stopping_;
}

void ThreadRuntime::set_node_down(NodeId id, bool down) {
  if (cfg_.clock == ClockMode::kLogical) {
    Actor* restarted = links_.set_node_down(id, down);
    if (restarted != nullptr) restarted->on_restart();
    return;
  }
  Mailbox& mb = *mailboxes_.at(id);
  bool restarting = false;
  Actor* actor = nullptr;
  {
    std::lock_guard<std::mutex> lk(mb.m);
    restarting = mb.down && !down;
    mb.down = down;
    if (down) {
      // Drop only queued *messages*: traffic that arrived before the
      // outage must not be processed after it. Queued timer tasks stay
      // — each is a link of a self-rearming tick chain (production,
      // packing, heartbeats) that dispatch() runs regardless of down
      // state; clearing one here used to sever the chain for the rest
      // of the run, so a node that went down with a tick in its
      // mailbox never produced again after restart.
      mb.q.erase(std::remove_if(mb.q.begin(), mb.q.end(),
                                [](const Item& item) {
                                  return item.msg != nullptr;
                                }),
                 mb.q.end());
    }
    actor = mb.actor;
  }
  if (restarting && actor != nullptr) {
    // Serialize the restart hook with the node's other callbacks.
    Item item;
    item.task = [actor] { actor->on_restart(); };
    item.alive = std::make_shared<std::atomic<bool>>(true);
    enqueue_item(id, std::move(item));
  }
}

void ThreadRuntime::notify_reconnect(NodeId id) {
  if (cfg_.clock == ClockMode::kLogical) {
    Actor* actor = links_.reconnect_target(id);
    if (actor != nullptr) actor->on_restart();
    return;
  }
  Mailbox& mb = *mailboxes_.at(id);
  Actor* actor = nullptr;
  {
    std::lock_guard<std::mutex> lk(mb.m);
    actor = mb.down ? nullptr : mb.actor;
  }
  if (actor != nullptr) {
    Item item;
    item.task = [actor] { actor->on_restart(); };
    item.alive = std::make_shared<std::atomic<bool>>(true);
    enqueue_item(id, std::move(item));
  }
}

bool ThreadRuntime::is_down(NodeId id) const {
  if (cfg_.clock == ClockMode::kLogical) return links_.is_down(id);
  Mailbox& mb = *mailboxes_.at(id);
  std::lock_guard<std::mutex> lk(mb.m);
  return mb.down;
}

void ThreadRuntime::set_drop_filter(DropFilter filter) {
  if (cfg_.clock == ClockMode::kLogical) {
    links_.set_drop_filter(std::move(filter));
    return;
  }
  std::lock_guard<std::mutex> lk(hooks_m_);
  drop_filter_ = std::move(filter);
}

void ThreadRuntime::set_extra_delay(DelayFn fn) {
  if (cfg_.clock == ClockMode::kLogical) {
    links_.set_extra_delay(std::move(fn));
  }
  // Wall mode has no modeled propagation delay to add to.
}

void ThreadRuntime::set_tracer(TraceHasher* tracer) {
  if (cfg_.clock == ClockMode::kLogical) {
    links_.set_tracer(tracer);
  }
  // Wall mode has no deterministic delivery order to fold.
}

TrafficStats ThreadRuntime::stats(NodeId id) const {
  if (cfg_.clock == ClockMode::kLogical) return links_.stats(id);
  Mailbox& mb = *mailboxes_.at(id);
  std::lock_guard<std::mutex> lk(mb.m);
  return mb.stats;
}

SimTime ThreadRuntime::uplink_backlog(NodeId id) const {
  if (cfg_.clock == ClockMode::kLogical) {
    return links_.uplink_backlog(id, logical_now_);
  }
  return 0;  // No bandwidth model: real queues are the backpressure.
}

std::uint64_t ThreadRuntime::total_bytes_sent() const {
  if (cfg_.clock == ClockMode::kLogical) return links_.total_bytes_sent();
  std::uint64_t total = 0;
  for (const auto& mb : mailboxes_) {
    std::lock_guard<std::mutex> lk(mb->m);
    total += mb->stats.bytes_sent;
  }
  return total;
}

}  // namespace predis::runtime
