// Trace digest: a running SHA-256 chain over a backend's delivery
// sequence. Two runs with the same seed must produce byte-identical
// event sequences on a deterministic backend, so equal digests are the
// checkable witness of deterministic replay (and unequal digests
// pinpoint divergence). The threaded backend in wall-clock mode has no
// deterministic delivery order, so tracers are only meaningful on
// SimRuntime and ThreadRuntime's logical-clock mode.
#pragma once

#include "common/bytes.hpp"
#include "common/codec.hpp"
#include "common/types.hpp"

namespace predis::runtime {

class TraceHasher {
 public:
  /// Fold one delivered message into the digest chain.
  void record_delivery(SimTime when, NodeId from, NodeId to,
                       std::size_t size, const char* name) {
    Writer w;
    w.hash(digest_);
    w.i64(when);
    w.u32(from);
    w.u32(to);
    w.u64(size);
    w.raw(as_bytes(name));
    digest_ = Sha256::hash(w.data());
    ++events_;
  }

  const Hash32& digest() const { return digest_; }
  std::uint64_t events() const { return events_; }

 private:
  Hash32 digest_ = kZeroHash;
  std::uint64_t events_ = 0;
};

}  // namespace predis::runtime
