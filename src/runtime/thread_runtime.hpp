// ThreadRuntime: the Runtime backend that runs actors on real cores.
//
// predis-lint: allow-file(D2): the wall-clock backend is the one place
// real time legitimately enters the tree — now() in kWall mode *is*
// steady_clock, and the timer wheel sleeps against real deadlines.
// Protocol code still sees only Runtime::now()/schedule().
//
// Architecture (modeled on the alarm/io-service + acceptor/receiver
// split of production node software):
//
//   * one inbound MPSC mailbox per node (mutex + deque). Any thread
//     may append; exactly one worker drains a mailbox at a time, so a
//     node's callbacks are serialized without per-actor locks.
//   * a worker pool pulling ready mailboxes from a shared run queue.
//   * a timer wheel thread: a deadline min-heap; fired timers owned by
//     a node are routed through that node's mailbox (same serialization
//     domain as its messages), ownerless harness timers run on the
//     wheel thread.
//
// Two clock modes:
//
//   * kWall — now() is wall-clock nanoseconds since construction.
//     Messages deliver as fast as cores allow (no bandwidth/latency
//     model, uplink_backlog() == 0, tracers ignored); this is the mode
//     that produces hardware-limited throughput numbers.
//   * kLogical — a deterministic discrete-event loop over the same
//     mailbox-dispatch code, driven by the shared LinkModel, executed
//     by a single worker. Produces byte-identical delivery traces,
//     commit ledgers and metrics to SimRuntime (enforced by
//     tests/runtime; see docs/runtime.md, "sim as oracle").
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "common/thread_annotations.hpp"
#include "common/types.hpp"
#include "runtime/link_model.hpp"
#include "runtime/runtime.hpp"

namespace predis::runtime {

enum class ClockMode {
  kLogical,  ///< Deterministic virtual time, single-threaded execution.
  kWall,     ///< Real time, worker pool + timer wheel.
};

struct ThreadRuntimeConfig {
  ClockMode clock = ClockMode::kWall;
  /// Worker threads draining mailboxes (wall mode; logical mode always
  /// executes on the single driving thread).
  std::size_t workers = 4;
  /// Region latency matrix. Logical mode models it exactly like the
  /// simulator; wall mode ignores it (real queues are the delay).
  LatencyMatrix latency = LatencyMatrix::uniform(1, 0);
  /// Wall mode: how long run_until() waits for in-flight work to
  /// quiesce after the deadline before returning anyway.
  SimTime drain_grace = milliseconds(2000);
};

class ThreadRuntime final : public Runtime {
 public:
  explicit ThreadRuntime(ThreadRuntimeConfig config);
  ~ThreadRuntime() override;

  ThreadRuntime(const ThreadRuntime&) = delete;
  ThreadRuntime& operator=(const ThreadRuntime&) = delete;

  NodeId add_node(const NodeConfig& config) override;
  void attach(NodeId id, Actor* actor) override;
  std::size_t node_count() const override;
  std::uint32_t region_of(NodeId id) const override;

  SimTime now() const override;
  TimerHandle schedule(NodeId owner, SimTime delay,
                       std::function<void()> fn) override;

  void send(NodeId from, NodeId to, MsgPtr msg) override;
  void multicast(NodeId from, const std::vector<NodeId>& to,
                 const MsgPtr& msg) override;

  void start() override;
  void run_until(SimTime limit) override;

  void set_node_down(NodeId id, bool down) override;
  void notify_reconnect(NodeId id) override;
  bool is_down(NodeId id) const override;

  void set_drop_filter(DropFilter filter) override;
  void set_extra_delay(DelayFn fn) override;
  void set_tracer(TraceHasher* tracer) override;

  TrafficStats stats(NodeId id) const override;
  SimTime uplink_backlog(NodeId id) const override;
  std::uint64_t total_bytes_sent() const override;

  ClockMode clock_mode() const { return cfg_.clock; }
  std::size_t worker_count() const { return workers_.size(); }

 private:
  // --- Wall mode ------------------------------------------------------

  /// One mailbox entry: either a delivered message or a timer task
  /// routed to its owner node.
  struct Item {
    NodeId from = kNoNode;
    MsgPtr msg;            ///< Null for timer tasks.
    std::size_t size = 0;  ///< Wire size incl. overhead (messages).
    std::function<void()> task;
    std::shared_ptr<std::atomic<bool>> alive;  ///< Timer tasks only.
  };

  /// Per-node inbound MPSC queue plus the node state its callbacks may
  /// not race on. `active` means the mailbox is in the run queue or
  /// currently owned by a worker — the single-consumer guarantee.
  struct Mailbox {
    std::mutex m;
    std::deque<Item> q PREDIS_GUARDED_BY(m);
    bool active PREDIS_GUARDED_BY(m) = false;
    bool down PREDIS_GUARDED_BY(m) = false;
    Actor* actor PREDIS_GUARDED_BY(m) = nullptr;
    NodeConfig config;  ///< Frozen at add_node(), read-only afterwards.
    TrafficStats stats PREDIS_GUARDED_BY(m);
  };

  struct TimerEvent {
    SimTime deadline;  ///< Nanoseconds since epoch_.
    std::uint64_t seq;
    NodeId owner;
    std::function<void()> fn;
    std::shared_ptr<std::atomic<bool>> alive;
  };
  struct TimerLater {
    bool operator()(const TimerEvent& a, const TimerEvent& b) const {
      if (a.deadline != b.deadline) return a.deadline > b.deadline;
      return a.seq > b.seq;
    }
  };

  void worker_loop();
  void timer_loop();
  bool stopping_read();
  void drain_mailbox(NodeId id);
  void dispatch(Mailbox& mb, Item& item);
  void enqueue_item(NodeId to, Item item);
  bool quiescent();

  // --- Logical mode ---------------------------------------------------

  struct SimEvent {
    SimTime time;
    std::uint64_t seq;
    std::function<void()> fn;
    std::shared_ptr<std::atomic<bool>> alive;
  };
  struct SimLater {
    bool operator()(const SimEvent& a, const SimEvent& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  TimerHandle push_logical(SimTime at, std::function<void()> fn);

  ThreadRuntimeConfig cfg_;

  // Shared node table + fluid model. Wall mode uses it only for node
  // registration/config snapshots at add_node time; all mutable state
  // it would race on lives in the mailboxes instead.
  LinkModel links_;

  // Logical mode state (driving thread only).
  SimTime logical_now_ = 0;
  std::uint64_t logical_seq_ = 0;
  std::priority_queue<SimEvent, std::vector<SimEvent>, SimLater> logical_q_;

  // Wall mode state.
  std::chrono::steady_clock::time_point epoch_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  mutable std::mutex ready_m_;
  std::condition_variable ready_cv_;
  std::deque<NodeId> ready_ PREDIS_GUARDED_BY(ready_m_);
  bool running_ PREDIS_GUARDED_BY(ready_m_) = false;
  bool stopping_ PREDIS_GUARDED_BY(ready_m_) = false;
  std::atomic<bool> draining_{false};

  std::mutex timer_m_;
  std::condition_variable timer_cv_;
  std::priority_queue<TimerEvent, std::vector<TimerEvent>, TimerLater>
      timer_q_ PREDIS_GUARDED_BY(timer_m_);
  std::uint64_t timer_seq_ PREDIS_GUARDED_BY(timer_m_) = 0;

  std::mutex hooks_m_;
  DropFilter drop_filter_ PREDIS_GUARDED_BY(hooks_m_);

  std::vector<std::thread> workers_;
  std::thread timer_thread_;
};

}  // namespace predis::runtime
