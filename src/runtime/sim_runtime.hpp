// SimRuntime: the deterministic discrete-event backend, packaged as a
// self-contained Runtime. Bundles the Simulator's event queue with the
// simulated network so harness code (core/experiment, core/swarm,
// tools) can construct a backend without naming sim::Network or the
// Simulator directly — predis-lint rule D6 reserves those spellings
// for src/sim/ and src/runtime/.
#pragma once

#include "runtime/runtime.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"

namespace predis::runtime {

class SimRuntime {
 public:
  explicit SimRuntime(LatencyMatrix latency)
      : net_(sim_, std::move(latency)) {}

  /// The backend interface actors and harnesses talk to.
  Runtime& runtime() { return net_; }

  /// Escape hatches for sim-level instrumentation (event counts,
  /// drain-to-empty runs). Deterministic-backend callers only.
  sim::Simulator& simulator() { return sim_; }
  sim::Network& network() { return net_; }

 private:
  sim::Simulator sim_;
  sim::Network net_;
};

}  // namespace predis::runtime
