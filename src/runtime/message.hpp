// Base type for every wire message exchanged between nodes, regardless
// of which Runtime backend carries it.
//
// A backend only needs a message's *size* (to model or account for
// bandwidth) and a debug name; protocol modules derive their own
// message structs and downcast on receipt. Messages are immutable once
// sent: the threaded backend shares one object across worker threads.
#pragma once

#include <cstddef>
#include <memory>

namespace predis::runtime {

class Message {
 public:
  virtual ~Message() = default;

  /// Size of this message on the wire, in bytes, *excluding* the fixed
  /// per-message transport overhead the backend adds.
  virtual std::size_t wire_size() const = 0;

  /// Short name for tracing ("PrePrepare", "Bundle", ...).
  virtual const char* name() const = 0;
};

/// Messages are immutable and shared between receivers of a multicast,
/// so a broadcast of a 2 MB bundle does not copy the payload N times.
using MsgPtr = std::shared_ptr<const Message>;

}  // namespace predis::runtime
