// The Runtime seam: everything a node actor may ask of its execution
// environment, behind one abstract interface.
//
// Actors — consensus engines, Multi-Zone full nodes, gossip nodes,
// clients — use exactly four capabilities:
//
//   1. the clock:            now()
//   2. timers:               schedule(owner, delay, fn) / TimerHandle
//   3. messaging:            send() / multicast(), serialized per-node
//                            on the sender's uplink
//   4. lifecycle hooks:      node up/down/restart/reconnect
//
// Two backends implement the interface:
//
//   * sim::Network (wrapped by SimRuntime) — the deterministic
//     discrete-event simulator. Bit-identical to the pre-seam
//     simulator: swarm digests and invariants are unchanged.
//   * ThreadRuntime — per-node inbound MPSC queues, a timer wheel and
//     a worker pool; wall-clock mode gives hardware-limited numbers,
//     logical-clock mode reproduces the simulator byte-for-byte
//     (tests/runtime enforces this, see docs/runtime.md).
//
// Protocol code outside src/sim/ and src/runtime/ must name only this
// interface, never sim::Network or the Simulator — predis-lint rule D6
// enforces that statically.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/types.hpp"
#include "runtime/message.hpp"
#include "runtime/timer.hpp"
#include "runtime/trace.hpp"

namespace predis::runtime {

/// Propagation latency between regions. Symmetric construction helper
/// provided, but the matrix itself may be asymmetric.
class LatencyMatrix {
 public:
  /// Uniform latency between all (distinct and equal) region pairs.
  static LatencyMatrix uniform(std::size_t regions, SimTime latency) {
    std::vector<std::vector<SimTime>> m(
        regions, std::vector<SimTime>(regions, latency));
    return LatencyMatrix(std::move(m));
  }

  /// Explicit matrix, row = from-region, column = to-region.
  explicit LatencyMatrix(std::vector<std::vector<SimTime>> m)
      : m_(std::move(m)) {}

  SimTime at(std::uint32_t from, std::uint32_t to) const {
    return m_[from][to];
  }
  std::size_t regions() const { return m_.size(); }

 private:
  std::vector<std::vector<SimTime>> m_;
};

struct NodeConfig {
  std::uint32_t region = 0;
  /// Uplink bandwidth, bytes per second.
  double up_bw = 12.5e6;  // 100 Mbps
  /// Downlink bandwidth, bytes per second.
  double down_bw = 12.5e6;
};

/// Interface implemented by every node (consensus node, full node,
/// relayer, client). A backend guarantees that one node's callbacks —
/// on_start, on_message, on_restart and owned timers — never run
/// concurrently with each other.
class Actor {
 public:
  virtual ~Actor() = default;

  /// Called once when the run starts (after all wiring is done).
  virtual void on_start() {}

  /// Called when a message addressed to this node is fully delivered.
  virtual void on_message(NodeId from, const MsgPtr& msg) = 0;

  /// Called when the node comes back up after a crash window
  /// (set_node_down(id, false) on a node that was down). The node's
  /// in-memory state survived — what it missed is every message sent
  /// while it was down — so implementations trigger their catch-up
  /// path here: resync mempool tips, request a state snapshot,
  /// re-subscribe to relayers. Default: resume blind (pre-recovery
  /// behaviour).
  virtual void on_restart() {}
};

/// Per-node traffic counters.
struct TrafficStats {
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_received = 0;
  std::uint64_t messages_dropped = 0;
};

class Runtime {
 public:
  /// Fixed transport overhead added to every message's wire size
  /// (headers, framing, signature envelope).
  static constexpr std::size_t kTransportOverhead = 64;

  virtual ~Runtime() = default;

  // --- Topology --------------------------------------------------------

  /// Register a node; returns its dense id.
  virtual NodeId add_node(const NodeConfig& config) = 0;

  /// Attach the actor that receives this node's messages. The actor
  /// must outlive the run.
  virtual void attach(NodeId id, Actor* actor) = 0;

  virtual std::size_t node_count() const = 0;
  virtual std::uint32_t region_of(NodeId id) const = 0;

  // --- Clock and timers ------------------------------------------------

  /// Current time in nanoseconds: virtual on deterministic backends,
  /// wall-clock-since-start on ThreadRuntime's wall mode.
  virtual SimTime now() const = 0;

  /// Schedule `fn` after `delay` (>= 0) on behalf of node `owner`.
  /// The backend serializes the callback with the owner's message
  /// handling (same mailbox); pass kNoNode for harness callbacks with
  /// no owning actor.
  virtual TimerHandle schedule(NodeId owner, SimTime delay,
                               std::function<void()> fn) = 0;

  /// Harness convenience: an ownerless timer.
  TimerHandle schedule_after(SimTime delay, std::function<void()> fn) {
    return schedule(kNoNode, delay, std::move(fn));
  }

  // --- Messaging -------------------------------------------------------

  /// Queue a message for delivery. Serializes on the sender's uplink.
  virtual void send(NodeId from, NodeId to, MsgPtr msg) = 0;

  /// Unicast to each destination in turn (uplink serialized per copy —
  /// multicast of a large payload to k peers costs k transmissions,
  /// matching the paper's model).
  virtual void multicast(NodeId from, const std::vector<NodeId>& to,
                         const MsgPtr& msg) = 0;

  // --- Run control -----------------------------------------------------

  /// Start all attached actors (calls on_start in id order).
  virtual void start() = 0;

  /// Run (or let run) until `limit` nanoseconds of backend time, then
  /// drain in-flight work. After this returns, the caller may read
  /// shared experiment state without racing the backend.
  virtual void run_until(SimTime limit) = 0;

  // --- Node lifecycle / fault injection --------------------------------

  /// A crashed node sends and receives nothing. Bringing a down node
  /// back up fires its actor's on_restart() hook (after the flag
  /// flips, so the hook can send messages).
  virtual void set_node_down(NodeId id, bool down) = 0;

  /// Fire a node's on_restart() hook without a down/up cycle — used
  /// when a healed partition reconnects a node that never crashed but
  /// missed every message for the cut window.
  virtual void notify_reconnect(NodeId id) = 0;
  virtual bool is_down(NodeId id) const = 0;

  /// Optional filter consulted for every send; return true to drop.
  using DropFilter =
      std::function<bool(NodeId from, NodeId to, const Message&)>;
  virtual void set_drop_filter(DropFilter filter) = 0;

  /// Optional extra one-way delay injected per (from, to) pair.
  using DelayFn = std::function<SimTime(NodeId from, NodeId to)>;
  virtual void set_extra_delay(DelayFn fn) = 0;

  /// Optional trace hasher folding every completed delivery into a
  /// running digest (deterministic backends only). Must outlive the
  /// run.
  virtual void set_tracer(TraceHasher* tracer) = 0;

  // --- Accounting ------------------------------------------------------

  virtual TrafficStats stats(NodeId id) const = 0;

  /// How far ahead of the clock this node's uplink queue extends — the
  /// simulated analogue of a full TCP send buffer. Protocol engines
  /// use it for backpressure (shed client load instead of queueing
  /// unboundedly). Backends without a bandwidth model return 0.
  virtual SimTime uplink_backlog(NodeId id) const = 0;

  /// Total bytes put on the wire by all nodes.
  virtual std::uint64_t total_bytes_sent() const = 0;
};

}  // namespace predis::runtime
