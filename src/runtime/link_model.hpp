// The cut-through fluid transfer model shared by both deterministic
// backends (sim::Network and ThreadRuntime's logical-clock mode), so
// the two compute byte-identical delivery timestamps from the same
// send sequence.
//
// For a message of S bytes from A to B,
//   first byte leaves A at  t0 = max(now, A.uplink_busy)
//   last  byte leaves A at  t1 = t0 + S / A.up_bw
//   first byte reaches B at t0 + lat(A,B)
//   delivery completes at   max(t1 + lat, max(t0 + lat, B.downlink_busy)
//                                          + S / B.down_bw)
// With symmetric idle links this yields the intuitive
// S/bw + latency (no double serialization); concurrent inbound flows
// queue at the receiver's downlink; concurrent outbound flows queue at
// the sender's uplink — which is exactly the model in the paper's
// throughput analysis (§III-F: uploading bandwidth x_i, delay ls).
//
// The model also owns the per-node bookkeeping every backend needs:
// actor attachment, regions, down flags, traffic counters, the fault
// hooks (drop filter / extra delay) and the delivery tracer. It is not
// thread-safe — callers in a threaded backend serialize access.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "common/types.hpp"
#include "runtime/runtime.hpp"

namespace predis::runtime {

class LinkModel {
 public:
  explicit LinkModel(LatencyMatrix latency) : latency_(std::move(latency)) {}

  NodeId add_node(const NodeConfig& config) {
    if (config.region >= latency_.regions()) {
      throw std::invalid_argument("LinkModel::add_node: unknown region");
    }
    if (config.up_bw <= 0 || config.down_bw <= 0) {
      throw std::invalid_argument("LinkModel::add_node: non-positive bandwidth");
    }
    nodes_.push_back(Node{config, nullptr, false, 0, 0, {}});
    return static_cast<NodeId>(nodes_.size() - 1);
  }

  void attach(NodeId id, Actor* actor) { nodes_.at(id).actor = actor; }
  Actor* actor(NodeId id) const { return nodes_.at(id).actor; }

  std::size_t node_count() const { return nodes_.size(); }
  std::uint32_t region_of(NodeId id) const { return nodes_[id].config.region; }
  const NodeConfig& config_of(NodeId id) const { return nodes_[id].config; }

  /// Outcome of planning one send at time `now`.
  struct Planned {
    bool deliver = false;  ///< False: sender down / receiver down / dropped.
    SimTime at = 0;        ///< Delivery completion time.
    std::size_t size = 0;  ///< Wire size incl. transport overhead.
  };

  /// Run the sender-side half of a transfer: fault checks, uplink
  /// serialization and byte accounting. Mirrors the historical
  /// sim::Network::send exactly — order of checks included — so traces
  /// stay byte-identical.
  Planned plan_send(NodeId from, NodeId to, const Message& msg, SimTime now) {
    if (from >= nodes_.size() || to >= nodes_.size()) {
      throw std::out_of_range("LinkModel::plan_send: unknown node");
    }
    Node& src = nodes_[from];
    Node& dst = nodes_[to];
    if (src.down) {
      ++src.stats.messages_dropped;
      return {};
    }

    const std::size_t size = msg.wire_size() + Runtime::kTransportOverhead;

    if (dst.down || (drop_filter_ && drop_filter_(from, to, msg))) {
      ++src.stats.messages_dropped;
      return {};
    }

    // Sender uplink serialization (FIFO).
    const SimTime t0 = std::max(now, src.uplink_busy);
    const auto tx_time = static_cast<SimTime>(
        std::llround(static_cast<double>(size) / src.config.up_bw * 1e9));
    const SimTime t1 = t0 + tx_time;
    src.uplink_busy = t1;
    src.stats.bytes_sent += size;
    ++src.stats.messages_sent;

    SimTime lat = latency_.at(src.config.region, dst.config.region);
    if (extra_delay_) lat += extra_delay_(from, to);

    // Receiver downlink: cut-through — cannot complete before the last
    // byte arrives, and queues behind other inbound flows.
    const auto rx_time = static_cast<SimTime>(
        std::llround(static_cast<double>(size) / dst.config.down_bw * 1e9));
    const SimTime first_byte_at = t0 + lat;
    const SimTime rx_start = std::max(first_byte_at, dst.downlink_busy);
    const SimTime deliver = std::max(t1 + lat, rx_start + rx_time);
    dst.downlink_busy = deliver;
    return {true, deliver, size};
  }

  /// Run the receiver-side half when the transfer completes: liveness
  /// check, byte accounting and the trace digest. Returns the actor to
  /// invoke, or nullptr if the receiver went down (or was never
  /// attached) in the meantime.
  Actor* complete_delivery(NodeId from, NodeId to, std::size_t size,
                           SimTime when, const Message& msg) {
    Node& dst = nodes_[to];
    if (dst.down || dst.actor == nullptr) return nullptr;
    dst.stats.bytes_received += size;
    ++dst.stats.messages_received;
    if (tracer_ != nullptr) {
      tracer_->record_delivery(when, from, to, size, msg.name());
    }
    return dst.actor;
  }

  // --- Node lifecycle ---------------------------------------------------

  /// Flip the down flag; returns the actor whose on_restart() hook the
  /// backend must fire (down -> up transition), else nullptr.
  Actor* set_node_down(NodeId id, bool down) {
    Node& node = nodes_.at(id);
    const bool restarting = node.down && !down;
    node.down = down;
    return restarting ? node.actor : nullptr;
  }

  /// Actor to fire on_restart() on for a healed-but-never-crashed node.
  Actor* reconnect_target(NodeId id) const {
    const Node& node = nodes_.at(id);
    return node.down ? nullptr : node.actor;
  }

  bool is_down(NodeId id) const { return nodes_[id].down; }

  // --- Fault hooks ------------------------------------------------------

  void set_drop_filter(Runtime::DropFilter filter) {
    drop_filter_ = std::move(filter);
  }
  void set_extra_delay(Runtime::DelayFn fn) { extra_delay_ = std::move(fn); }
  void set_tracer(TraceHasher* tracer) { tracer_ = tracer; }

  // --- Accounting -------------------------------------------------------

  const TrafficStats& stats(NodeId id) const { return nodes_[id].stats; }

  SimTime uplink_backlog(NodeId id, SimTime now) const {
    return nodes_[id].uplink_busy > now ? nodes_[id].uplink_busy - now : 0;
  }

  std::uint64_t total_bytes_sent() const {
    std::uint64_t total = 0;
    for (const auto& node : nodes_) total += node.stats.bytes_sent;
    return total;
  }

 private:
  struct Node {
    NodeConfig config;
    Actor* actor = nullptr;
    bool down = false;
    SimTime uplink_busy = 0;
    SimTime downlink_busy = 0;
    TrafficStats stats;
  };

  LatencyMatrix latency_;
  std::vector<Node> nodes_;
  Runtime::DropFilter drop_filter_;
  Runtime::DelayFn extra_delay_;
  TraceHasher* tracer_ = nullptr;
};

}  // namespace predis::runtime
