// Canned network environments matching the paper's evaluation setup
// (§V): Alibaba ECS instances with 100 Mbps links, either spread across
// four Chinese regions (WAN) or emulated with a uniform 25 ms latency
// (LAN with traffic control). Backend-agnostic: the same matrices and
// node shapes configure SimRuntime and ThreadRuntime.
#pragma once

#include "runtime/runtime.hpp"

namespace predis::runtime {

/// 100 Mbps in bytes/second.
inline constexpr double kBandwidth100Mbps = 100e6 / 8.0;

/// Paper WAN regions, in matrix order.
enum class Region : std::uint32_t {
  kUlanqab = 0,   // CN-north
  kShanghai = 1,  // CN-east
  kChengdu = 2,   // CN-southwest
  kShenzhen = 3,  // CN-south
};

inline constexpr std::size_t kWanRegions = 4;

/// One-way propagation latencies between the four regions. Values are
/// representative public inter-region RTT/2 figures for these Alibaba
/// regions; intra-region is ~1 ms.
inline LatencyMatrix wan_latency() {
  const SimTime ms = milliseconds(1);
  std::vector<std::vector<SimTime>> m = {
      //            Ulanqab   Shanghai  Chengdu   Shenzhen
      /*Ulanqab*/ {1 * ms, 15 * ms, 25 * ms, 25 * ms},
      /*Shanghai*/ {15 * ms, 1 * ms, 20 * ms, 15 * ms},
      /*Chengdu*/ {25 * ms, 20 * ms, 1 * ms, 18 * ms},
      /*Shenzhen*/ {25 * ms, 15 * ms, 18 * ms, 1 * ms},
  };
  return LatencyMatrix(std::move(m));
}

/// The paper's LAN setup: tc-emulated 25 ms latency, 100 Mbps per node.
inline LatencyMatrix lan_latency() {
  return LatencyMatrix::uniform(1, milliseconds(25));
}

/// Node config with 100 Mbps symmetric links in the given region.
inline NodeConfig node_100mbps(std::uint32_t region) {
  NodeConfig cfg;
  cfg.region = region;
  cfg.up_bw = kBandwidth100Mbps;
  cfg.down_bw = kBandwidth100Mbps;
  return cfg;
}

}  // namespace predis::runtime
