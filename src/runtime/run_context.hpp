// RunContext: the one place experiment harnesses accept cross-cutting
// run plumbing. Before the Runtime seam, every experiment config
// (ClusterConfig, ThroughputConfig, PropagationConfig) re-declared its
// own optional tracer pointer and ad-hoc hook fields; new knobs had to
// be added to each. They now all embed one RunContext.
#pragma once

#include <functional>
#include <vector>

#include "common/block_tracer.hpp"
#include "common/types.hpp"
#include "runtime/runtime.hpp"

namespace predis::runtime {

struct RunContext {
  /// Optional block-lifecycle tracer shared by every node of the run
  /// (stage latencies, anomaly detection). Deterministic backends
  /// only: protocol tracers are not synchronized, so wall-clock
  /// ThreadRuntime runs must leave this null.
  BlockTracer* tracer = nullptr;

  /// Optional delivery-trace hasher installed on the backend
  /// (Runtime::set_tracer) — the byte-identity witness used by swarm
  /// replay and the backend-equivalence tests.
  TraceHasher* trace = nullptr;

  /// Run on this externally-owned backend instead of the harness's
  /// internal SimRuntime. The caller configures the backend (clock
  /// mode, workers, latency matrix) and keeps it alive for the run;
  /// the harness still wires nodes, faults and clients through it.
  Runtime* backend = nullptr;

  /// Fired after all nodes are registered and attached but before
  /// start(): (runtime, consensus node ids, other node ids). Used by
  /// adversarial harnesses to inject hostile actors into the topology.
  std::function<void(Runtime&, const std::vector<NodeId>&,
                     const std::vector<NodeId>&)>
      on_network_ready;
};

}  // namespace predis::runtime
