// End-to-end stripe codec: the real-bytes path behind Multi-Zone's
// simulated stripe streams.
//
// A bundle is serialized with the deterministic codec, Reed-Solomon
// encoded into n stripes (any k reconstruct), and each stripe ships
// with a Merkle proof against the *stripe root* that the producer
// commits to in the bundle header (the "Merkle Stripe hash" of Fig. 1).
// Receivers verify each stripe against the signed header before
// spending memory on it, decode once k verified stripes are present,
// and obtain the exact original bundle.
//
// Hot-path design: encode_into() reuses an Encoded value as a scratch
// arena — serialized payload, shard buffers, leaf hashes, and proof
// sibling vectors all keep their capacity across bundles, so a steady
// stream of same-sized bundles encodes with zero per-stripe heap
// allocations. encode() is the allocate-fresh wrapper.
#pragma once

#include <optional>

#include "bundle/bundle.hpp"
#include "erasure/reed_solomon.hpp"

namespace predis::erasure {

/// One verifiable stripe of an encoded bundle.
struct Stripe {
  std::uint32_t index = 0;     ///< 0 .. n-1.
  Bytes data;                  ///< RS shard bytes.
  MerkleProof proof;           ///< Inclusion proof against stripe_root.

  /// Bytes on the wire: shard + proof hashes + framing.
  std::size_t wire_size() const {
    return data.size() + proof.siblings.size() * 32 + 16;
  }
};

/// Encoder/decoder for one (k, n) configuration.
class StripeCodec {
 public:
  /// k = n_c − f data shards, n = n_c total stripes.
  StripeCodec(std::size_t data_shards, std::size_t total_shards)
      : rs_(data_shards, total_shards) {}

  /// Result of encode — and, when passed back into encode_into, the
  /// reusable scratch arena for the next bundle.
  struct Encoded {
    std::vector<Stripe> stripes;
    Hash32 stripe_root = kZeroHash;

    // Scratch reused across encode_into calls (exposed only so the
    // arena survives in the caller's Encoded between bundles).
    Bytes payload_scratch;
    std::vector<Hash32> leaf_scratch;
  };

  /// Serialize the bundle (header + transactions) and cut it into n
  /// verifiable stripes. Returns the stripes and the stripe root the
  /// producer must commit to in header.stripe_root before signing.
  Encoded encode(const Bundle& bundle) const;

  /// Same, writing into `out` and reusing every buffer it already
  /// holds. Steady state (same bundle shape) performs no per-stripe
  /// allocations.
  void encode_into(const Bundle& bundle, Encoded& out) const;

  /// Check one stripe against a committed stripe root. Cheap: one
  /// SHA-256 of the shard plus a log(n)-length Merkle walk.
  static bool verify(const Stripe& stripe, const Hash32& stripe_root);

  /// Reconstruct the bundle from >= k verified stripes (missing =
  /// nullopt). Throws std::invalid_argument on insufficient stripes and
  /// CodecError on corrupted payload bytes.
  Bundle decode(const std::vector<std::optional<Stripe>>& stripes) const;

  /// Non-throwing decode for in-loop callers (swarm harness, relayers):
  /// same semantics as decode() but failures — bad indices, too few
  /// stripes, corrupt payload, malformed bundle bytes — come back as a
  /// CodecFailure value instead of an exception.
  [[nodiscard]] Expected<Bundle> try_decode(
      const std::vector<std::optional<Stripe>>& stripes) const;

  /// Span-of-views variant: shard bytes indexed by stripe index (entry
  /// i is stripe i's data or nullopt). No copies of shard bytes.
  [[nodiscard]] Expected<Bundle> try_decode(
      std::span<const std::optional<BytesView>> shards) const;

  std::size_t data_shards() const { return rs_.data_shards(); }
  std::size_t total_shards() const { return rs_.total_shards(); }

  /// Deterministic serialization used by encode/decode (exposed for
  /// tests and alternative transports).
  static Bytes serialize_bundle(const Bundle& bundle);
  static Bundle deserialize_bundle(BytesView bytes);

 private:
  ReedSolomon rs_;
};

}  // namespace predis::erasure
