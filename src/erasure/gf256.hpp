// Arithmetic over GF(2^8) with the AES/Backblaze-compatible reducing
// polynomial x^8 + x^4 + x^3 + x^2 + 1 (0x11D), plus a small dense
// matrix type used to build and invert Reed-Solomon coding matrices,
// plus the fused row kernels the erasure hot path is built on.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace predis::erasure {

/// Field element.
using GF = std::uint8_t;

/// Table-driven GF(2^8) operations. Tables are built once, lazily.
class GF256 {
 public:
  static GF add(GF a, GF b) { return a ^ b; }
  static GF sub(GF a, GF b) { return a ^ b; }
  static GF mul(GF a, GF b);
  static GF div(GF a, GF b);  // throws on b == 0
  static GF inv(GF a);        // throws on a == 0
  static GF exp(int power);   // generator^power (power may exceed 255)
  static GF log(GF a);        // throws on a == 0

  /// Fused row kernel: dst[i] ^= coeff * src[i] for i in [0, len).
  ///
  /// This is THE erasure hot path: one call per (coding-matrix row,
  /// shard) pair replaces len element-wise mul() lookups. Backed by
  /// per-coefficient split low/high-nibble product tables; dispatches
  /// to an SSSE3 pshufb implementation (16 bytes per step) when the
  /// build and the CPU both support it, and to the unrolled scalar
  /// kernel otherwise. dst and src must not overlap unless dst == src.
  static void mul_row_add(std::uint8_t* dst, const std::uint8_t* src,
                          GF coeff, std::size_t len);

  /// Portable scalar kernel (same nibble tables, 8 bytes per unrolled
  /// step). Exposed so tests can pin both paths against the element-wise
  /// reference independently of what mul_row_add dispatches to.
  static void mul_row_add_portable(std::uint8_t* dst,
                                   const std::uint8_t* src, GF coeff,
                                   std::size_t len);

  /// True when mul_row_add dispatches to the SIMD path on this machine.
  static bool simd_enabled();

 private:
  struct Tables {
    std::array<GF, 512> exp;
    std::array<int, 256> log;
    Tables();
  };
  static const Tables& tables();

  /// Split product tables: for every coefficient c,
  ///   lo[c][x] = c * x          (x = low nibble of the source byte)
  ///   hi[c][x] = c * (x << 4)   (x = high nibble)
  /// so c * b == lo[c][b & 0xf] ^ hi[c][b >> 4]. Each 16-entry half is
  /// 16-byte aligned: it is the pshufb shuffle operand of the SSSE3
  /// kernel and the two-cache-line working set of the scalar one.
  struct NibbleTables {
    alignas(16) std::uint8_t lo[256][16];
    alignas(16) std::uint8_t hi[256][16];
    NibbleTables();
  };
  static const NibbleTables& nibble_tables();
};

/// Dense matrix over GF(2^8). Row-major.
class Matrix {
 public:
  Matrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0) {}

  static Matrix identity(std::size_t n);

  /// Extended Vandermonde matrix: element (r, c) = r^c. Any k rows of
  /// the rows x k matrix are linearly independent (distinct evaluation
  /// points), which is the property Reed-Solomon needs.
  static Matrix vandermonde(std::size_t rows, std::size_t cols);

  GF& at(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  GF at(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }

  /// Contiguous row r (cols() coefficients) — the codec streams these
  /// over shard buffers with GF256::mul_row_add.
  const GF* row(std::size_t r) const { return data_.data() + r * cols_; }

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  Matrix multiply(const Matrix& rhs) const;

  /// Rows [first, first + count).
  Matrix sub_rows(std::size_t first, std::size_t count) const;

  /// Matrix made of the listed rows, in order.
  Matrix select_rows(const std::vector<std::size_t>& rows) const;

  /// Gauss-Jordan inverse; throws std::domain_error if singular.
  Matrix inverted() const;

  bool operator==(const Matrix& rhs) const = default;

 private:
  std::size_t rows_;
  std::size_t cols_;
  std::vector<GF> data_;
};

}  // namespace predis::erasure
