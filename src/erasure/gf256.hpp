// Arithmetic over GF(2^8) with the AES/Backblaze-compatible reducing
// polynomial x^8 + x^4 + x^3 + x^2 + 1 (0x11D), plus a small dense
// matrix type used to build and invert Reed-Solomon coding matrices.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace predis::erasure {

/// Field element.
using GF = std::uint8_t;

/// Table-driven GF(2^8) operations. Tables are built once, lazily.
class GF256 {
 public:
  static GF add(GF a, GF b) { return a ^ b; }
  static GF sub(GF a, GF b) { return a ^ b; }
  static GF mul(GF a, GF b);
  static GF div(GF a, GF b);  // throws on b == 0
  static GF inv(GF a);        // throws on a == 0
  static GF exp(int power);   // generator^power (power may exceed 255)
  static GF log(GF a);        // throws on a == 0

 private:
  struct Tables {
    std::array<GF, 512> exp;
    std::array<int, 256> log;
    Tables();
  };
  static const Tables& tables();
};

/// Dense matrix over GF(2^8). Row-major.
class Matrix {
 public:
  Matrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0) {}

  static Matrix identity(std::size_t n);

  /// Extended Vandermonde matrix: element (r, c) = r^c. Any k rows of
  /// the rows x k matrix are linearly independent (distinct evaluation
  /// points), which is the property Reed-Solomon needs.
  static Matrix vandermonde(std::size_t rows, std::size_t cols);

  GF& at(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  GF at(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  Matrix multiply(const Matrix& rhs) const;

  /// Rows [first, first + count).
  Matrix sub_rows(std::size_t first, std::size_t count) const;

  /// Matrix made of the listed rows, in order.
  Matrix select_rows(const std::vector<std::size_t>& rows) const;

  /// Gauss-Jordan inverse; throws std::domain_error if singular.
  Matrix inverted() const;

  bool operator==(const Matrix& rhs) const = default;

 private:
  std::size_t rows_;
  std::size_t cols_;
  std::vector<GF> data_;
};

}  // namespace predis::erasure
