// Non-throwing result type for the erasure codec's in-loop callers
// (swarm harness invariant checks, relayer decode paths): a minimal
// expected<T, CodecFailure> — std::expected is C++23 and this codebase
// is C++20. The throwing decode()/deserialize() entry points are thin
// wrappers that translate a CodecFailure back into the exception the
// original API contract promised (see throw_failure below).
#pragma once

#include <stdexcept>
#include <string>
#include <utility>
#include <variant>

#include "common/codec.hpp"

namespace predis::erasure {

enum class CodecErrorCode {
  kWrongShardCount,    ///< Input has != n shard slots.
  kShardSizeMismatch,  ///< Present shards have unequal sizes.
  kNotEnoughShards,    ///< Fewer than k shards present.
  kSingularMatrix,     ///< Decode submatrix not invertible.
  kCorruptPayload,     ///< Recovered length prefix is malformed.
  kBadStripeIndex,     ///< Stripe index >= n.
  kMalformedBundle,    ///< Payload decoded but bundle deserialization failed.
};

inline const char* to_string(CodecErrorCode code) {
  switch (code) {
    case CodecErrorCode::kWrongShardCount: return "wrong shard count";
    case CodecErrorCode::kShardSizeMismatch: return "shard size mismatch";
    case CodecErrorCode::kNotEnoughShards: return "not enough shards";
    case CodecErrorCode::kSingularMatrix: return "singular decode matrix";
    case CodecErrorCode::kCorruptPayload: return "corrupt payload";
    case CodecErrorCode::kBadStripeIndex: return "bad stripe index";
    case CodecErrorCode::kMalformedBundle: return "malformed bundle";
  }
  return "?";
}

struct CodecFailure {
  CodecErrorCode code = CodecErrorCode::kCorruptPayload;
  std::string message;
};

/// Re-raise a failure as the exception the throwing API contract uses:
/// argument-shaped problems (counts, sizes, indices) are
/// std::invalid_argument, algebra failures std::domain_error, and
/// corrupted byte content CodecError.
[[noreturn]] inline void throw_failure(const CodecFailure& failure) {
  switch (failure.code) {
    case CodecErrorCode::kCorruptPayload:
    case CodecErrorCode::kMalformedBundle:
      throw CodecError(failure.message);
    case CodecErrorCode::kSingularMatrix:
      throw std::domain_error(failure.message);
    default:
      throw std::invalid_argument(failure.message);
  }
}

/// Holds either a T or the CodecFailure explaining why there is none.
template <typename T>
class Expected {
 public:
  Expected(T value)  // NOLINT(google-explicit-constructor)
      : state_(std::in_place_index<0>, std::move(value)) {}
  Expected(CodecFailure failure)  // NOLINT(google-explicit-constructor)
      : state_(std::in_place_index<1>, std::move(failure)) {}

  bool ok() const { return state_.index() == 0; }
  explicit operator bool() const { return ok(); }

  T& value() & { return std::get<0>(state_); }
  const T& value() const& { return std::get<0>(state_); }
  T&& value() && { return std::get<0>(std::move(state_)); }

  const CodecFailure& error() const { return std::get<1>(state_); }

  /// value() or throw the failure via throw_failure (wrapper helper).
  T&& value_or_throw() && {
    if (!ok()) throw_failure(error());
    return std::get<0>(std::move(state_));
  }

 private:
  std::variant<T, CodecFailure> state_;
};

}  // namespace predis::erasure
