// Systematic Reed-Solomon erasure coding over GF(2^8).
//
// Multi-Zone encodes every bundle into n_c stripes such that any
// n_c − f of them reconstruct the bundle (§IV-D of the paper). This
// module provides exactly that: a (k = data shards, n = total shards)
// code where the first k output shards are the data itself (systematic)
// and the remaining n − k are parity.
//
// Construction follows the Backblaze JavaReedSolomon approach the paper
// used: take an n × k Vandermonde matrix, normalize its top k × k block
// to the identity (multiplying by the block's inverse preserves the
// any-k-rows-invertible property), and use the result as the coding
// matrix.
//
// The byte path streams coding-matrix rows over contiguous shard
// buffers with GF256::mul_row_add — one kernel call per (row, shard)
// pair instead of one table lookup per byte. encode_into/try_decode
// form the allocation-free, non-throwing core; encode/decode are
// convenience wrappers that keep the original API contract.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "common/bytes.hpp"
#include "erasure/codec_result.hpp"
#include "erasure/gf256.hpp"

namespace predis::erasure {

class ReedSolomon {
 public:
  /// k data shards, n total shards; requires 0 < k <= n <= 256.
  ReedSolomon(std::size_t data_shards, std::size_t total_shards);

  std::size_t data_shards() const { return k_; }
  std::size_t total_shards() const { return n_; }
  std::size_t parity_shards() const { return n_ - k_; }

  /// Size of each shard for a payload of `payload_size` bytes:
  /// ceil((4 + payload_size) / k) — 4-byte length prefix included.
  std::size_t shard_size(std::size_t payload_size) const {
    return (4 + payload_size + k_ - 1) / k_;
  }

  /// Split `payload` into n shards (each of equal size). The payload is
  /// length-prefixed and zero-padded so decode can recover the exact
  /// original bytes. Shard size is ceil((4 + |payload|) / k).
  std::vector<Bytes> encode(BytesView payload) const;

  /// Zero-copy encode: write the n shards into caller-provided buffers.
  /// Each of the n views must be exactly shard_size(payload.size())
  /// bytes; throws std::invalid_argument otherwise. The prefix+payload
  /// bytes land directly in the first k buffers (no staging copy) and
  /// parity is accumulated into the rest via the row kernels.
  void encode_into(BytesView payload,
                   std::span<const MutBytesView> shards) const;

  /// Reconstruct the payload from any subset of >= k shards (missing
  /// shards are nullopt). All present shards must have equal size.
  /// Throws std::invalid_argument if fewer than k shards are present or
  /// sizes are inconsistent; throws CodecError if the recovered prefix
  /// is malformed (e.g. corrupted shards).
  Bytes decode(const std::vector<std::optional<Bytes>>& shards) const;

  /// Non-throwing decode for in-loop callers: same semantics as
  /// decode() but failures come back as a CodecFailure value.
  [[nodiscard]] Expected<Bytes> try_decode(
      std::span<const std::optional<BytesView>> shards) const;
  [[nodiscard]] Expected<Bytes> try_decode(
      const std::vector<std::optional<Bytes>>& shards) const;

  /// Recompute all n shards from any >= k present shards (used by
  /// relayers that must forward stripes they did not receive directly).
  std::vector<Bytes> reconstruct_all(
      const std::vector<std::optional<Bytes>>& shards) const;

  const Matrix& coding_matrix() const { return coding_; }

 private:
  /// Pick the first k present shards, validating count and sizes.
  /// On success fills `present` (k indices) and `size` (common size).
  std::optional<CodecFailure> select_present(
      std::span<const std::optional<BytesView>> shards,
      std::vector<std::size_t>& present, std::size_t& size) const;

  /// Recover the concatenated k data shards (prefix + payload + pad)
  /// into `prefixed`, which is resized to k * shard size.
  std::optional<CodecFailure> recover_prefixed(
      std::span<const std::optional<BytesView>> shards,
      Bytes& prefixed) const;

  std::size_t k_;
  std::size_t n_;
  Matrix coding_;  // n x k, top k x k == identity
};

}  // namespace predis::erasure
