// Systematic Reed-Solomon erasure coding over GF(2^8).
//
// Multi-Zone encodes every bundle into n_c stripes such that any
// n_c − f of them reconstruct the bundle (§IV-D of the paper). This
// module provides exactly that: a (k = data shards, n = total shards)
// code where the first k output shards are the data itself (systematic)
// and the remaining n − k are parity.
//
// Construction follows the Backblaze JavaReedSolomon approach the paper
// used: take an n × k Vandermonde matrix, normalize its top k × k block
// to the identity (multiplying by the block's inverse preserves the
// any-k-rows-invertible property), and use the result as the coding
// matrix.
#pragma once

#include <optional>
#include <vector>

#include "common/bytes.hpp"
#include "erasure/gf256.hpp"

namespace predis::erasure {

class ReedSolomon {
 public:
  /// k data shards, n total shards; requires 0 < k <= n <= 256.
  ReedSolomon(std::size_t data_shards, std::size_t total_shards);

  std::size_t data_shards() const { return k_; }
  std::size_t total_shards() const { return n_; }
  std::size_t parity_shards() const { return n_ - k_; }

  /// Split `payload` into n shards (each of equal size). The payload is
  /// length-prefixed and zero-padded so decode can recover the exact
  /// original bytes. Shard size is ceil((4 + |payload|) / k).
  std::vector<Bytes> encode(BytesView payload) const;

  /// Reconstruct the payload from any subset of >= k shards (missing
  /// shards are nullopt). All present shards must have equal size.
  /// Throws std::invalid_argument if fewer than k shards are present or
  /// sizes are inconsistent; throws CodecError if the recovered prefix
  /// is malformed (e.g. corrupted shards).
  Bytes decode(const std::vector<std::optional<Bytes>>& shards) const;

  /// Recompute all n shards from any >= k present shards (used by
  /// relayers that must forward stripes they did not receive directly).
  std::vector<Bytes> reconstruct_all(
      const std::vector<std::optional<Bytes>>& shards) const;

  const Matrix& coding_matrix() const { return coding_; }

 private:
  /// Recover the k data shards from any >= k present shards.
  std::vector<Bytes> recover_data(
      const std::vector<std::optional<Bytes>>& shards) const;

  std::size_t k_;
  std::size_t n_;
  Matrix coding_;  // n x k, top k x k == identity
};

}  // namespace predis::erasure
