#include "erasure/reed_solomon.hpp"

#include <cstring>
#include <stdexcept>

#include "common/codec.hpp"

namespace predis::erasure {

ReedSolomon::ReedSolomon(std::size_t data_shards, std::size_t total_shards)
    : k_(data_shards), n_(total_shards), coding_(1, 1) {
  if (k_ == 0 || k_ > n_ || n_ > 256) {
    throw std::invalid_argument("ReedSolomon: invalid (k, n)");
  }
  const Matrix vm = Matrix::vandermonde(n_, k_);
  const Matrix top = vm.sub_rows(0, k_);
  coding_ = vm.multiply(top.inverted());
}

std::vector<Bytes> ReedSolomon::encode(BytesView payload) const {
  // 4-byte little-endian length prefix, then payload, then zero padding.
  const std::size_t total = 4 + payload.size();
  const std::size_t shard_size = (total + k_ - 1) / k_;

  std::vector<Bytes> shards(n_, Bytes(shard_size, 0));
  Bytes prefixed(shard_size * k_, 0);
  prefixed[0] = static_cast<std::uint8_t>(payload.size());
  prefixed[1] = static_cast<std::uint8_t>(payload.size() >> 8);
  prefixed[2] = static_cast<std::uint8_t>(payload.size() >> 16);
  prefixed[3] = static_cast<std::uint8_t>(payload.size() >> 24);
  if (!payload.empty()) {
    std::memcpy(prefixed.data() + 4, payload.data(), payload.size());
  }

  // Data shards (systematic part) are plain slices.
  for (std::size_t i = 0; i < k_; ++i) {
    std::memcpy(shards[i].data(), prefixed.data() + i * shard_size,
                shard_size);
  }
  // Parity shards = coding rows k..n-1 times the data shards.
  for (std::size_t r = k_; r < n_; ++r) {
    Bytes& out = shards[r];
    for (std::size_t c = 0; c < k_; ++c) {
      const GF factor = coding_.at(r, c);
      if (factor == 0) continue;
      const Bytes& in = shards[c];
      for (std::size_t b = 0; b < shard_size; ++b) {
        out[b] ^= GF256::mul(factor, in[b]);
      }
    }
  }
  return shards;
}

std::vector<Bytes> ReedSolomon::recover_data(
    const std::vector<std::optional<Bytes>>& shards) const {
  if (shards.size() != n_) {
    throw std::invalid_argument("ReedSolomon::decode: wrong shard count");
  }
  std::vector<std::size_t> present;
  std::size_t shard_size = 0;
  for (std::size_t i = 0; i < n_; ++i) {
    if (!shards[i].has_value()) continue;
    if (present.empty()) {
      shard_size = shards[i]->size();
    } else if (shards[i]->size() != shard_size) {
      throw std::invalid_argument("ReedSolomon::decode: shard size mismatch");
    }
    present.push_back(i);
    if (present.size() == k_) break;
  }
  if (present.size() < k_) {
    throw std::invalid_argument("ReedSolomon::decode: not enough shards");
  }

  // Fast path: all k data shards available.
  bool systematic = true;
  for (std::size_t i = 0; i < k_; ++i) {
    if (present[i] != i) {
      systematic = false;
      break;
    }
  }

  std::vector<Bytes> data(k_);
  if (systematic) {
    for (std::size_t i = 0; i < k_; ++i) data[i] = *shards[i];
    return data;
  }

  const Matrix decode_matrix = coding_.select_rows(present).inverted();
  for (std::size_t r = 0; r < k_; ++r) {
    data[r] = Bytes(shard_size, 0);
    for (std::size_t c = 0; c < k_; ++c) {
      const GF factor = decode_matrix.at(r, c);
      if (factor == 0) continue;
      const Bytes& in = *shards[present[c]];
      for (std::size_t b = 0; b < shard_size; ++b) {
        data[r][b] ^= GF256::mul(factor, in[b]);
      }
    }
  }
  return data;
}

Bytes ReedSolomon::decode(
    const std::vector<std::optional<Bytes>>& shards) const {
  const std::vector<Bytes> data = recover_data(shards);
  const std::size_t shard_size = data[0].size();

  Bytes prefixed;
  prefixed.reserve(shard_size * k_);
  for (const Bytes& shard : data) {
    prefixed.insert(prefixed.end(), shard.begin(), shard.end());
  }
  if (prefixed.size() < 4) {
    throw CodecError("ReedSolomon::decode: truncated prefix");
  }
  const std::size_t len = static_cast<std::size_t>(prefixed[0]) |
                          (static_cast<std::size_t>(prefixed[1]) << 8) |
                          (static_cast<std::size_t>(prefixed[2]) << 16) |
                          (static_cast<std::size_t>(prefixed[3]) << 24);
  if (4 + len > prefixed.size()) {
    throw CodecError("ReedSolomon::decode: corrupt length prefix");
  }
  return Bytes(prefixed.begin() + 4,
               prefixed.begin() + 4 + static_cast<std::ptrdiff_t>(len));
}

std::vector<Bytes> ReedSolomon::reconstruct_all(
    const std::vector<std::optional<Bytes>>& shards) const {
  const std::vector<Bytes> data = recover_data(shards);
  const std::size_t shard_size = data[0].size();

  std::vector<Bytes> out(n_);
  for (std::size_t i = 0; i < k_; ++i) out[i] = data[i];
  for (std::size_t r = k_; r < n_; ++r) {
    if (r < shards.size() && shards[r].has_value()) {
      out[r] = *shards[r];
      continue;
    }
    out[r] = Bytes(shard_size, 0);
    for (std::size_t c = 0; c < k_; ++c) {
      const GF factor = coding_.at(r, c);
      if (factor == 0) continue;
      for (std::size_t b = 0; b < shard_size; ++b) {
        out[r][b] ^= GF256::mul(factor, data[c][b]);
      }
    }
  }
  return out;
}

}  // namespace predis::erasure
