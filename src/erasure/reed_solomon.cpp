#include "erasure/reed_solomon.hpp"

#include <array>
#include <cstring>
#include <stdexcept>

#include "common/codec.hpp"

namespace predis::erasure {

namespace {

/// Bridge vector<optional<Bytes>> (owning API) to the span-of-views
/// core without copying shard bytes.
std::vector<std::optional<BytesView>> as_views(
    const std::vector<std::optional<Bytes>>& shards) {
  std::vector<std::optional<BytesView>> views(shards.size());
  for (std::size_t i = 0; i < shards.size(); ++i) {
    if (shards[i].has_value()) views[i] = BytesView(*shards[i]);
  }
  return views;
}

}  // namespace

ReedSolomon::ReedSolomon(std::size_t data_shards, std::size_t total_shards)
    : k_(data_shards), n_(total_shards), coding_(1, 1) {
  if (k_ == 0 || k_ > n_ || n_ > 256) {
    throw std::invalid_argument("ReedSolomon: invalid (k, n)");
  }
  const Matrix vm = Matrix::vandermonde(n_, k_);
  const Matrix top = vm.sub_rows(0, k_);
  coding_ = vm.multiply(top.inverted());
}

void ReedSolomon::encode_into(BytesView payload,
                              std::span<const MutBytesView> shards) const {
  const std::size_t size = shard_size(payload.size());
  if (shards.size() != n_) {
    throw std::invalid_argument("ReedSolomon::encode_into: wrong shard count");
  }
  for (const MutBytesView& shard : shards) {
    if (shard.size() != size) {
      throw std::invalid_argument(
          "ReedSolomon::encode_into: wrong shard size");
    }
  }

  // Write the 4-byte little-endian length prefix, payload, and zero
  // padding straight into the k data shards — no staging buffer.
  const std::array<std::uint8_t, 4> prefix = {
      static_cast<std::uint8_t>(payload.size()),
      static_cast<std::uint8_t>(payload.size() >> 8),
      static_cast<std::uint8_t>(payload.size() >> 16),
      static_cast<std::uint8_t>(payload.size() >> 24),
  };
  const std::uint8_t* src = payload.data();
  std::size_t remaining = payload.size();
  std::size_t prefix_left = prefix.size();
  for (std::size_t i = 0; i < k_; ++i) {
    std::uint8_t* out = shards[i].data();
    std::size_t space = size;
    if (prefix_left > 0) {
      const std::size_t take = prefix_left < space ? prefix_left : space;
      std::memcpy(out, prefix.data() + (prefix.size() - prefix_left), take);
      out += take;
      space -= take;
      prefix_left -= take;
    }
    const std::size_t take = remaining < space ? remaining : space;
    if (take > 0) {
      std::memcpy(out, src, take);
      src += take;
      out += take;
      space -= take;
      remaining -= take;
    }
    if (space > 0) std::memset(out, 0, space);
  }

  // Parity shards = coding rows k..n-1 times the data shards, one
  // fused row-kernel call per (row, data shard) pair.
  for (std::size_t r = k_; r < n_; ++r) {
    std::uint8_t* out = shards[r].data();
    std::memset(out, 0, size);
    const GF* row = coding_.row(r);
    for (std::size_t c = 0; c < k_; ++c) {
      GF256::mul_row_add(out, shards[c].data(), row[c], size);
    }
  }
}

std::vector<Bytes> ReedSolomon::encode(BytesView payload) const {
  const std::size_t size = shard_size(payload.size());
  std::vector<Bytes> shards(n_, Bytes(size));
  std::vector<MutBytesView> views(n_);
  for (std::size_t i = 0; i < n_; ++i) views[i] = MutBytesView(shards[i]);
  encode_into(payload, views);
  return shards;
}

std::optional<CodecFailure> ReedSolomon::select_present(
    std::span<const std::optional<BytesView>> shards,
    std::vector<std::size_t>& present, std::size_t& size) const {
  if (shards.size() != n_) {
    return CodecFailure{CodecErrorCode::kWrongShardCount,
                        "ReedSolomon::decode: wrong shard count"};
  }
  present.clear();
  size = 0;
  for (std::size_t i = 0; i < n_; ++i) {
    if (!shards[i].has_value()) continue;
    if (present.empty()) {
      size = shards[i]->size();
    } else if (shards[i]->size() != size) {
      return CodecFailure{CodecErrorCode::kShardSizeMismatch,
                          "ReedSolomon::decode: shard size mismatch"};
    }
    present.push_back(i);
    if (present.size() == k_) break;
  }
  if (present.size() < k_) {
    return CodecFailure{CodecErrorCode::kNotEnoughShards,
                        "ReedSolomon::decode: not enough shards"};
  }
  return std::nullopt;
}

std::optional<CodecFailure> ReedSolomon::recover_prefixed(
    std::span<const std::optional<BytesView>> shards, Bytes& prefixed) const {
  std::vector<std::size_t> present;
  std::size_t size = 0;
  if (auto failure = select_present(shards, present, size)) return failure;

  prefixed.clear();
  prefixed.resize(size * k_);

  // Fast path: all k data shards available — pure memcpy.
  bool systematic = true;
  for (std::size_t i = 0; i < k_; ++i) {
    if (present[i] != i) {
      systematic = false;
      break;
    }
  }
  if (systematic) {
    for (std::size_t i = 0; i < k_; ++i) {
      std::memcpy(prefixed.data() + i * size, shards[i]->data(), size);
    }
    return std::nullopt;
  }

  Matrix decode_matrix(1, 1);
  try {
    decode_matrix = coding_.select_rows(present).inverted();
  } catch (const std::domain_error& err) {
    return CodecFailure{CodecErrorCode::kSingularMatrix, err.what()};
  }
  for (std::size_t r = 0; r < k_; ++r) {
    std::uint8_t* out = prefixed.data() + r * size;
    const GF* row = decode_matrix.row(r);
    for (std::size_t c = 0; c < k_; ++c) {
      GF256::mul_row_add(out, shards[present[c]]->data(), row[c], size);
    }
  }
  return std::nullopt;
}

Expected<Bytes> ReedSolomon::try_decode(
    std::span<const std::optional<BytesView>> shards) const {
  Bytes prefixed;
  if (auto failure = recover_prefixed(shards, prefixed)) {
    return std::move(*failure);
  }
  if (prefixed.size() < 4) {
    return CodecFailure{CodecErrorCode::kCorruptPayload,
                        "ReedSolomon::decode: truncated prefix"};
  }
  const std::size_t len = static_cast<std::size_t>(prefixed[0]) |
                          (static_cast<std::size_t>(prefixed[1]) << 8) |
                          (static_cast<std::size_t>(prefixed[2]) << 16) |
                          (static_cast<std::size_t>(prefixed[3]) << 24);
  if (4 + len > prefixed.size()) {
    return CodecFailure{CodecErrorCode::kCorruptPayload,
                        "ReedSolomon::decode: corrupt length prefix"};
  }
  // Slide the payload to the front and trim in place — no second buffer.
  std::memmove(prefixed.data(), prefixed.data() + 4, len);
  prefixed.resize(len);
  return prefixed;
}

Expected<Bytes> ReedSolomon::try_decode(
    const std::vector<std::optional<Bytes>>& shards) const {
  return try_decode(as_views(shards));
}

Bytes ReedSolomon::decode(
    const std::vector<std::optional<Bytes>>& shards) const {
  return try_decode(shards).value_or_throw();
}

std::vector<Bytes> ReedSolomon::reconstruct_all(
    const std::vector<std::optional<Bytes>>& shards) const {
  const std::vector<std::optional<BytesView>> views = as_views(shards);
  std::vector<std::size_t> present;
  std::size_t size = 0;
  if (auto failure = select_present(views, present, size)) {
    throw_failure(*failure);
  }

  // Recover the k data shards first (identity copy when systematic).
  std::vector<Bytes> out(n_);
  bool systematic = true;
  for (std::size_t i = 0; i < k_; ++i) {
    if (present[i] != i) {
      systematic = false;
      break;
    }
  }
  if (systematic) {
    for (std::size_t i = 0; i < k_; ++i) out[i] = *shards[i];
  } else {
    Matrix decode_matrix(1, 1);
    try {
      decode_matrix = coding_.select_rows(present).inverted();
    } catch (const std::domain_error& err) {
      throw_failure(
          CodecFailure{CodecErrorCode::kSingularMatrix, err.what()});
    }
    for (std::size_t r = 0; r < k_; ++r) {
      out[r] = Bytes(size, 0);
      const GF* row = decode_matrix.row(r);
      for (std::size_t c = 0; c < k_; ++c) {
        GF256::mul_row_add(out[r].data(), views[present[c]]->data(), row[c],
                           size);
      }
    }
  }

  // Re-derive missing parity; keep parity shards that were present.
  for (std::size_t r = k_; r < n_; ++r) {
    if (r < shards.size() && shards[r].has_value()) {
      out[r] = *shards[r];
      continue;
    }
    out[r] = Bytes(size, 0);
    const GF* row = coding_.row(r);
    for (std::size_t c = 0; c < k_; ++c) {
      GF256::mul_row_add(out[r].data(), out[c].data(), row[c], size);
    }
  }
  return out;
}

}  // namespace predis::erasure
