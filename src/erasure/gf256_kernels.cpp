// Row kernels for GF(2^8): the byte-path that Reed-Solomon encode and
// decode stream coding-matrix rows through. The scalar kernel reads the
// per-coefficient split-nibble tables eight bytes per unrolled step;
// when the build enables SSSE3 (see src/erasure/CMakeLists.txt) and the
// CPU reports support at runtime, dispatch switches to the pshufb
// kernel in gf256_ssse3.cpp.
#include "erasure/gf256.hpp"

namespace predis::erasure {

namespace detail {
#if defined(PREDIS_HAVE_SSSE3)
bool ssse3_supported();
void mul_row_add_ssse3(std::uint8_t* dst, const std::uint8_t* src,
                       const std::uint8_t* lo, const std::uint8_t* hi,
                       std::size_t len);
#endif
}  // namespace detail

GF256::NibbleTables::NibbleTables() {
  for (int c = 0; c < 256; ++c) {
    for (int x = 0; x < 16; ++x) {
      lo[c][x] = GF256::mul(static_cast<GF>(c), static_cast<GF>(x));
      hi[c][x] = GF256::mul(static_cast<GF>(c), static_cast<GF>(x << 4));
    }
  }
}

const GF256::NibbleTables& GF256::nibble_tables() {
  static const NibbleTables t;
  return t;
}

bool GF256::simd_enabled() {
#if defined(PREDIS_HAVE_SSSE3)
  return detail::ssse3_supported();
#else
  return false;
#endif
}

void GF256::mul_row_add_portable(std::uint8_t* dst, const std::uint8_t* src,
                                 GF coeff, std::size_t len) {
  const NibbleTables& t = nibble_tables();
  const std::uint8_t* lo = t.lo[coeff];
  const std::uint8_t* hi = t.hi[coeff];
  std::size_t i = 0;
  for (; i + 8 <= len; i += 8) {
    dst[i + 0] ^= lo[src[i + 0] & 0x0f] ^ hi[src[i + 0] >> 4];
    dst[i + 1] ^= lo[src[i + 1] & 0x0f] ^ hi[src[i + 1] >> 4];
    dst[i + 2] ^= lo[src[i + 2] & 0x0f] ^ hi[src[i + 2] >> 4];
    dst[i + 3] ^= lo[src[i + 3] & 0x0f] ^ hi[src[i + 3] >> 4];
    dst[i + 4] ^= lo[src[i + 4] & 0x0f] ^ hi[src[i + 4] >> 4];
    dst[i + 5] ^= lo[src[i + 5] & 0x0f] ^ hi[src[i + 5] >> 4];
    dst[i + 6] ^= lo[src[i + 6] & 0x0f] ^ hi[src[i + 6] >> 4];
    dst[i + 7] ^= lo[src[i + 7] & 0x0f] ^ hi[src[i + 7] >> 4];
  }
  for (; i < len; ++i) {
    dst[i] ^= lo[src[i] & 0x0f] ^ hi[src[i] >> 4];
  }
}

void GF256::mul_row_add(std::uint8_t* dst, const std::uint8_t* src, GF coeff,
                        std::size_t len) {
  if (coeff == 0 || len == 0) return;
  if (coeff == 1) {
    // Plain XOR; the compiler vectorizes this with baseline SSE2.
    for (std::size_t i = 0; i < len; ++i) dst[i] ^= src[i];
    return;
  }
#if defined(PREDIS_HAVE_SSSE3)
  static const bool use_simd = detail::ssse3_supported();
  if (use_simd) {
    const NibbleTables& t = nibble_tables();
    detail::mul_row_add_ssse3(dst, src, t.lo[coeff], t.hi[coeff], len);
    return;
  }
#endif
  mul_row_add_portable(dst, src, coeff, len);
}

}  // namespace predis::erasure
