// SSSE3 pshufb kernel for GF(2^8) row multiply-accumulate.
//
// The classic split-table trick (ISA-L / klauspost lineage): load the
// coefficient's 16-entry low- and high-nibble product tables into two
// xmm registers, then each 16-byte block of the source costs two
// pshufb table lookups and three XORs. This translation unit is the
// only one compiled with -mssse3 (set in src/erasure/CMakeLists.txt
// after a compile check), so the rest of the library never emits SSSE3
// instructions; callers gate on ssse3_supported() at runtime.
#include <cstddef>
#include <cstdint>

#if defined(__SSSE3__)
#include <tmmintrin.h>
#endif

namespace predis::erasure::detail {

bool ssse3_supported() {
#if defined(__SSSE3__) && (defined(__GNUC__) || defined(__clang__))
  return __builtin_cpu_supports("ssse3");
#else
  return false;
#endif
}

void mul_row_add_ssse3(std::uint8_t* dst, const std::uint8_t* src,
                       const std::uint8_t* lo, const std::uint8_t* hi,
                       std::size_t len) {
#if defined(__SSSE3__)
  const __m128i vlo = _mm_load_si128(reinterpret_cast<const __m128i*>(lo));
  const __m128i vhi = _mm_load_si128(reinterpret_cast<const __m128i*>(hi));
  const __m128i mask = _mm_set1_epi8(0x0f);
  std::size_t i = 0;
  for (; i + 32 <= len; i += 32) {
    const __m128i s0 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    const __m128i s1 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i + 16));
    const __m128i d0 = _mm_loadu_si128(reinterpret_cast<__m128i*>(dst + i));
    const __m128i d1 =
        _mm_loadu_si128(reinterpret_cast<__m128i*>(dst + i + 16));
    const __m128i p0 = _mm_xor_si128(
        _mm_shuffle_epi8(vlo, _mm_and_si128(s0, mask)),
        _mm_shuffle_epi8(vhi, _mm_and_si128(_mm_srli_epi64(s0, 4), mask)));
    const __m128i p1 = _mm_xor_si128(
        _mm_shuffle_epi8(vlo, _mm_and_si128(s1, mask)),
        _mm_shuffle_epi8(vhi, _mm_and_si128(_mm_srli_epi64(s1, 4), mask)));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i),
                     _mm_xor_si128(d0, p0));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i + 16),
                     _mm_xor_si128(d1, p1));
  }
  for (; i + 16 <= len; i += 16) {
    const __m128i s =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    const __m128i d = _mm_loadu_si128(reinterpret_cast<__m128i*>(dst + i));
    const __m128i p = _mm_xor_si128(
        _mm_shuffle_epi8(vlo, _mm_and_si128(s, mask)),
        _mm_shuffle_epi8(vhi, _mm_and_si128(_mm_srli_epi64(s, 4), mask)));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i),
                     _mm_xor_si128(d, p));
  }
  for (; i < len; ++i) {
    dst[i] ^= lo[src[i] & 0x0f] ^ hi[src[i] >> 4];
  }
#else
  (void)dst;
  (void)src;
  (void)lo;
  (void)hi;
  (void)len;
#endif
}

}  // namespace predis::erasure::detail
