#include "erasure/gf256.hpp"

#include <stdexcept>

namespace predis::erasure {

GF256::Tables::Tables() {
  // Generator 2 over polynomial 0x11D.
  int x = 1;
  for (int i = 0; i < 255; ++i) {
    exp[static_cast<std::size_t>(i)] = static_cast<GF>(x);
    log[static_cast<std::size_t>(x)] = i;
    x <<= 1;
    if (x & 0x100) x ^= 0x11D;
  }
  for (int i = 255; i < 512; ++i) {
    exp[static_cast<std::size_t>(i)] = exp[static_cast<std::size_t>(i - 255)];
  }
  log[0] = -1;
}

const GF256::Tables& GF256::tables() {
  static const Tables t;
  return t;
}

GF GF256::mul(GF a, GF b) {
  if (a == 0 || b == 0) return 0;
  const auto& t = tables();
  return t.exp[static_cast<std::size_t>(t.log[a] + t.log[b])];
}

GF GF256::div(GF a, GF b) {
  if (b == 0) throw std::domain_error("GF256: division by zero");
  if (a == 0) return 0;
  const auto& t = tables();
  return t.exp[static_cast<std::size_t>(t.log[a] - t.log[b] + 255)];
}

GF GF256::inv(GF a) {
  if (a == 0) throw std::domain_error("GF256: inverse of zero");
  const auto& t = tables();
  return t.exp[static_cast<std::size_t>(255 - t.log[a])];
}

GF GF256::exp(int power) {
  const auto& t = tables();
  power %= 255;
  if (power < 0) power += 255;
  return t.exp[static_cast<std::size_t>(power)];
}

GF GF256::log(GF a) {
  if (a == 0) throw std::domain_error("GF256: log of zero");
  return static_cast<GF>(tables().log[a]);
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m.at(i, i) = 1;
  return m;
}

Matrix Matrix::vandermonde(std::size_t rows, std::size_t cols) {
  Matrix m(rows, cols);
  for (std::size_t r = 0; r < rows; ++r) {
    GF value = 1;
    for (std::size_t c = 0; c < cols; ++c) {
      m.at(r, c) = value;
      value = GF256::mul(value, static_cast<GF>(r));
    }
  }
  return m;
}

Matrix Matrix::multiply(const Matrix& rhs) const {
  if (cols_ != rhs.rows_) {
    throw std::invalid_argument("Matrix::multiply: dimension mismatch");
  }
  Matrix out(rows_, rhs.cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const GF a = at(r, k);
      if (a == 0) continue;
      for (std::size_t c = 0; c < rhs.cols_; ++c) {
        out.at(r, c) ^= GF256::mul(a, rhs.at(k, c));
      }
    }
  }
  return out;
}

Matrix Matrix::sub_rows(std::size_t first, std::size_t count) const {
  if (first + count > rows_) {
    throw std::out_of_range("Matrix::sub_rows: out of range");
  }
  Matrix out(count, cols_);
  for (std::size_t r = 0; r < count; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) {
      out.at(r, c) = at(first + r, c);
    }
  }
  return out;
}

Matrix Matrix::select_rows(const std::vector<std::size_t>& rows) const {
  Matrix out(rows.size(), cols_);
  for (std::size_t r = 0; r < rows.size(); ++r) {
    if (rows[r] >= rows_) {
      throw std::out_of_range("Matrix::select_rows: out of range");
    }
    for (std::size_t c = 0; c < cols_; ++c) {
      out.at(r, c) = at(rows[r], c);
    }
  }
  return out;
}

Matrix Matrix::inverted() const {
  if (rows_ != cols_) {
    throw std::invalid_argument("Matrix::inverted: not square");
  }
  const std::size_t n = rows_;
  Matrix work = *this;
  Matrix inv = identity(n);

  for (std::size_t col = 0; col < n; ++col) {
    // Find pivot.
    std::size_t pivot = col;
    while (pivot < n && work.at(pivot, col) == 0) ++pivot;
    if (pivot == n) throw std::domain_error("Matrix::inverted: singular");
    if (pivot != col) {
      for (std::size_t c = 0; c < n; ++c) {
        std::swap(work.at(pivot, c), work.at(col, c));
        std::swap(inv.at(pivot, c), inv.at(col, c));
      }
    }
    // Scale pivot row to 1.
    const GF scale = GF256::inv(work.at(col, col));
    for (std::size_t c = 0; c < n; ++c) {
      work.at(col, c) = GF256::mul(work.at(col, c), scale);
      inv.at(col, c) = GF256::mul(inv.at(col, c), scale);
    }
    // Eliminate other rows.
    for (std::size_t r = 0; r < n; ++r) {
      if (r == col) continue;
      const GF factor = work.at(r, col);
      if (factor == 0) continue;
      for (std::size_t c = 0; c < n; ++c) {
        work.at(r, c) ^= GF256::mul(factor, work.at(col, c));
        inv.at(r, c) ^= GF256::mul(factor, inv.at(col, c));
      }
    }
  }
  return inv;
}

}  // namespace predis::erasure
