#include "erasure/stripe_codec.hpp"

#include <array>
#include <span>
#include <stdexcept>

namespace predis::erasure {

Bytes StripeCodec::serialize_bundle(const Bundle& bundle) {
  Writer w;
  bundle.header.encode(w);
  w.vec(bundle.txs);
  return std::move(w).take();
}

Bundle StripeCodec::deserialize_bundle(BytesView bytes) {
  Reader r(bytes);
  Bundle b;
  b.header = BundleHeader::decode(r);
  b.txs = r.vec<Transaction>();
  if (!r.done()) {
    throw CodecError("StripeCodec: trailing bytes after bundle");
  }
  return b;
}

void StripeCodec::encode_into(const Bundle& bundle, Encoded& out) const {
  const std::size_t n = rs_.total_shards();

  // Serialize into the reusable payload buffer (Writer adopts and
  // returns it, keeping its capacity).
  Writer w(std::move(out.payload_scratch));
  bundle.header.encode(w);
  w.vec(bundle.txs);
  out.payload_scratch = std::move(w).take();

  // Cut into shards, writing directly into the retained stripe data
  // buffers. resize() keeps existing Bytes elements (and their heap
  // blocks) when the count is unchanged.
  const std::size_t size = rs_.shard_size(out.payload_scratch.size());
  out.stripes.resize(n);
  std::array<MutBytesView, 256> views;  // n <= 256 by construction
  for (std::size_t i = 0; i < n; ++i) {
    out.stripes[i].index = static_cast<std::uint32_t>(i);
    out.stripes[i].data.resize(size);
    views[i] = MutBytesView(out.stripes[i].data);
  }
  rs_.encode_into(out.payload_scratch,
                  std::span<const MutBytesView>(views.data(), n));

  // Merkle tree over the shard hashes — the producer signs its root.
  out.leaf_scratch.clear();
  out.leaf_scratch.reserve(n);
  for (const Stripe& stripe : out.stripes) {
    out.leaf_scratch.push_back(Sha256::hash(stripe.data));
  }
  const MerkleTree tree(out.leaf_scratch);
  out.stripe_root = tree.root();
  for (std::size_t i = 0; i < n; ++i) {
    tree.prove_into(i, out.stripes[i].proof);
  }
}

StripeCodec::Encoded StripeCodec::encode(const Bundle& bundle) const {
  Encoded out;
  encode_into(bundle, out);
  return out;
}

bool StripeCodec::verify(const Stripe& stripe, const Hash32& stripe_root) {
  if (stripe.proof.leaf_index != stripe.index) return false;
  return MerkleTree::verify(stripe_root, Sha256::hash(stripe.data),
                            stripe.proof);
}

Expected<Bundle> StripeCodec::try_decode(
    const std::vector<std::optional<Stripe>>& stripes) const {
  std::vector<std::optional<BytesView>> shards(rs_.total_shards());
  for (const auto& stripe : stripes) {
    if (!stripe.has_value()) continue;
    if (stripe->index >= shards.size()) {
      return CodecFailure{CodecErrorCode::kBadStripeIndex,
                          "StripeCodec::decode: bad stripe index"};
    }
    shards[stripe->index] = BytesView(stripe->data);
  }
  return try_decode(std::span<const std::optional<BytesView>>(shards));
}

Expected<Bundle> StripeCodec::try_decode(
    std::span<const std::optional<BytesView>> shards) const {
  Expected<Bytes> payload = rs_.try_decode(shards);
  if (!payload.ok()) return payload.error();
  try {
    return deserialize_bundle(payload.value());
  } catch (const std::exception& err) {
    // Reader underruns, trailing bytes, any decode-side validation: the
    // stripes reassembled but the payload is not a bundle.
    return CodecFailure{CodecErrorCode::kMalformedBundle, err.what()};
  }
}

Bundle StripeCodec::decode(
    const std::vector<std::optional<Stripe>>& stripes) const {
  return try_decode(stripes).value_or_throw();
}

}  // namespace predis::erasure
