#include "erasure/stripe_codec.hpp"

#include <stdexcept>

namespace predis::erasure {

Bytes StripeCodec::serialize_bundle(const Bundle& bundle) {
  Writer w;
  bundle.header.encode(w);
  w.vec(bundle.txs);
  return std::move(w).take();
}

Bundle StripeCodec::deserialize_bundle(BytesView bytes) {
  Reader r(bytes);
  Bundle b;
  b.header = BundleHeader::decode(r);
  b.txs = r.vec<Transaction>();
  if (!r.done()) {
    throw CodecError("StripeCodec: trailing bytes after bundle");
  }
  return b;
}

StripeCodec::Encoded StripeCodec::encode(const Bundle& bundle) const {
  const Bytes payload = serialize_bundle(bundle);
  std::vector<Bytes> shards = rs_.encode(payload);

  // Merkle tree over the shard hashes — the producer signs its root.
  std::vector<Hash32> leaves;
  leaves.reserve(shards.size());
  for (const Bytes& shard : shards) {
    leaves.push_back(Sha256::hash(shard));
  }
  const MerkleTree tree(leaves);

  Encoded out;
  out.stripe_root = tree.root();
  out.stripes.reserve(shards.size());
  for (std::size_t i = 0; i < shards.size(); ++i) {
    Stripe stripe;
    stripe.index = static_cast<std::uint32_t>(i);
    stripe.data = std::move(shards[i]);
    stripe.proof = tree.prove(i);
    out.stripes.push_back(std::move(stripe));
  }
  return out;
}

bool StripeCodec::verify(const Stripe& stripe, const Hash32& stripe_root) {
  if (stripe.proof.leaf_index != stripe.index) return false;
  return MerkleTree::verify(stripe_root, Sha256::hash(stripe.data),
                            stripe.proof);
}

Bundle StripeCodec::decode(
    const std::vector<std::optional<Stripe>>& stripes) const {
  std::vector<std::optional<Bytes>> shards(rs_.total_shards());
  for (const auto& stripe : stripes) {
    if (!stripe.has_value()) continue;
    if (stripe->index >= shards.size()) {
      throw std::invalid_argument("StripeCodec::decode: bad stripe index");
    }
    shards[stripe->index] = stripe->data;
  }
  return deserialize_bundle(rs_.decode(shards));
}

}  // namespace predis::erasure
