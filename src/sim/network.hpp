// Simulated network: the discrete-event Runtime backend.
//
// Per-node uplink/downlink bandwidth with FIFO serialization, a region
// propagation-latency matrix, fault injection and byte accounting —
// the cut-through fluid transfer model itself lives in
// runtime/link_model.hpp, shared with ThreadRuntime's logical-clock
// mode so both deterministic backends compute byte-identical delivery
// timestamps. Network implements the full runtime::Runtime interface;
// protocol actors only ever see that interface (predis-lint rule D6).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/types.hpp"
#include "runtime/link_model.hpp"
#include "runtime/runtime.hpp"
#include "sim/message.hpp"
#include "sim/simulator.hpp"
#include "sim/trace.hpp"

namespace predis::sim {

// Backend-agnostic vocabulary re-exported under the historical sim
// spellings (the types moved to runtime/ with the Runtime seam).
using Actor = runtime::Actor;
using LatencyMatrix = runtime::LatencyMatrix;
using NodeConfig = runtime::NodeConfig;
using TrafficStats = runtime::TrafficStats;

class Network final : public runtime::Runtime {
 public:
  Network(Simulator& simulator, LatencyMatrix latency)
      : sim_(simulator), links_(std::move(latency)) {}

  NodeId add_node(const NodeConfig& config) override {
    return links_.add_node(config);
  }
  void attach(NodeId id, Actor* actor) override { links_.attach(id, actor); }

  std::size_t node_count() const override { return links_.node_count(); }
  std::uint32_t region_of(NodeId id) const override {
    return links_.region_of(id);
  }

  SimTime now() const override { return sim_.now(); }

  /// Owner is irrelevant on the single-threaded backend: every
  /// callback already serializes through the one event queue.
  TimerHandle schedule(NodeId /*owner*/, SimTime delay,
                       std::function<void()> fn) override {
    return sim_.schedule_after(delay, std::move(fn));
  }

  void send(NodeId from, NodeId to, MsgPtr msg) override;
  void multicast(NodeId from, const std::vector<NodeId>& to,
                 const MsgPtr& msg) override;

  /// Start all attached actors (calls on_start in id order).
  void start() override;

  /// Drive the event queue up to `limit` (inclusive), like
  /// Simulator::run_until.
  void run_until(SimTime limit) override { sim_.run_until(limit); }

  // --- Fault injection -----------------------------------------------

  void set_node_down(NodeId id, bool down) override;
  void notify_reconnect(NodeId id) override;
  bool is_down(NodeId id) const override { return links_.is_down(id); }

  void set_drop_filter(DropFilter filter) override {
    links_.set_drop_filter(std::move(filter));
  }
  void set_extra_delay(DelayFn fn) override {
    links_.set_extra_delay(std::move(fn));
  }
  void set_tracer(TraceHasher* tracer) override { links_.set_tracer(tracer); }

  // --- Accounting ------------------------------------------------------

  TrafficStats stats(NodeId id) const override { return links_.stats(id); }

  SimTime uplink_backlog(NodeId id) const override {
    return links_.uplink_backlog(id, sim_.now());
  }
  std::uint64_t total_bytes_sent() const override {
    return links_.total_bytes_sent();
  }

  Simulator& simulator() { return sim_; }

 private:
  Simulator& sim_;
  runtime::LinkModel links_;
};

}  // namespace predis::sim
