// Simulated network: per-node uplink/downlink bandwidth with FIFO
// serialization, a region propagation-latency matrix, fault injection
// and byte accounting.
//
// Transfer model (cut-through fluid): for a message of S bytes from A
// to B,
//   first byte leaves A at  t0 = max(now, A.uplink_busy)
//   last  byte leaves A at  t1 = t0 + S / A.up_bw
//   first byte reaches B at t0 + lat(A,B)
//   delivery completes at   max(t1 + lat, max(t0 + lat, B.downlink_busy)
//                                          + S / B.down_bw)
// With symmetric idle links this yields the intuitive
// S/bw + latency (no double serialization); concurrent inbound flows
// queue at the receiver's downlink; concurrent outbound flows queue at
// the sender's uplink — which is exactly the model in the paper's
// throughput analysis (§III-F: uploading bandwidth x_i, delay ls).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/types.hpp"
#include "sim/message.hpp"
#include "sim/simulator.hpp"
#include "sim/trace.hpp"

namespace predis::sim {

/// Propagation latency between regions. Symmetric construction helper
/// provided, but the matrix itself may be asymmetric.
class LatencyMatrix {
 public:
  /// Uniform latency between all (distinct and equal) region pairs.
  static LatencyMatrix uniform(std::size_t regions, SimTime latency);

  /// Explicit matrix, row = from-region, column = to-region.
  explicit LatencyMatrix(std::vector<std::vector<SimTime>> m)
      : m_(std::move(m)) {}

  SimTime at(std::uint32_t from, std::uint32_t to) const {
    return m_[from][to];
  }
  std::size_t regions() const { return m_.size(); }

 private:
  std::vector<std::vector<SimTime>> m_;
};

struct NodeConfig {
  std::uint32_t region = 0;
  /// Uplink bandwidth, bytes per second.
  double up_bw = 12.5e6;  // 100 Mbps
  /// Downlink bandwidth, bytes per second.
  double down_bw = 12.5e6;
};

/// Interface implemented by every simulated node (consensus node, full
/// node, relayer, client).
class Actor {
 public:
  virtual ~Actor() = default;

  /// Called once when the simulation starts (after all wiring is done).
  virtual void on_start() {}

  /// Called when a message addressed to this node is fully delivered.
  virtual void on_message(NodeId from, const MsgPtr& msg) = 0;

  /// Called when the node comes back up after a crash window
  /// (set_node_down(id, false) on a node that was down). The node's
  /// in-memory state survived — what it missed is every message sent
  /// while it was down — so implementations trigger their catch-up
  /// path here: resync mempool tips, request a state snapshot,
  /// re-subscribe to relayers. Default: resume blind (pre-recovery
  /// behaviour).
  virtual void on_restart() {}
};

/// Per-node traffic counters.
struct TrafficStats {
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_received = 0;
  std::uint64_t messages_dropped = 0;
};

class Network {
 public:
  /// Fixed transport overhead added to every message's wire size
  /// (headers, framing, signature envelope).
  static constexpr std::size_t kTransportOverhead = 64;

  Network(Simulator& simulator, LatencyMatrix latency);

  /// Register a node; returns its dense id.
  NodeId add_node(const NodeConfig& config);

  /// Attach the actor that receives this node's messages. The actor
  /// must outlive the simulation run.
  void attach(NodeId id, Actor* actor);

  std::size_t node_count() const { return nodes_.size(); }
  std::uint32_t region_of(NodeId id) const { return nodes_[id].config.region; }

  /// Queue a message for delivery. Serializes on the sender's uplink.
  void send(NodeId from, NodeId to, MsgPtr msg);

  /// Unicast to each destination in turn (uplink serialized per copy —
  /// multicast of a large payload to k peers costs k transmissions,
  /// matching the paper's model).
  void multicast(NodeId from, const std::vector<NodeId>& to, const MsgPtr& msg);

  /// Start all attached actors (calls on_start in id order).
  void start();

  // --- Fault injection -----------------------------------------------

  /// A crashed node sends and receives nothing. Bringing a down node
  /// back up fires its actor's on_restart() hook (after the flag
  /// flips, so the hook can send messages).
  void set_node_down(NodeId id, bool down);

  /// Fire a node's on_restart() hook without a down/up cycle — used
  /// when a healed partition reconnects a node that never crashed but
  /// missed every message for the cut window.
  void notify_reconnect(NodeId id);
  bool is_down(NodeId id) const { return nodes_[id].down; }

  /// Optional filter consulted for every send; return true to drop.
  using DropFilter = std::function<bool(NodeId from, NodeId to, const Message&)>;
  void set_drop_filter(DropFilter filter) { drop_filter_ = std::move(filter); }

  /// Optional extra one-way delay injected per (from, to) pair.
  using DelayFn = std::function<SimTime(NodeId from, NodeId to)>;
  void set_extra_delay(DelayFn fn) { extra_delay_ = std::move(fn); }

  /// Optional trace hasher folding every completed delivery into a
  /// running digest (see sim/trace.hpp). Must outlive the run.
  void set_tracer(TraceHasher* tracer) { tracer_ = tracer; }

  // --- Accounting ------------------------------------------------------

  const TrafficStats& stats(NodeId id) const { return nodes_[id].stats; }

  /// How far ahead of real time this node's uplink queue extends —
  /// the simulated analogue of a full TCP send buffer. Protocol
  /// engines use it for backpressure (shed client load instead of
  /// queueing unboundedly).
  SimTime uplink_backlog(NodeId id) const {
    const SimTime now = sim_.now();
    return nodes_[id].uplink_busy > now ? nodes_[id].uplink_busy - now : 0;
  }
  /// Total bytes put on the wire by all nodes.
  std::uint64_t total_bytes_sent() const;

  Simulator& simulator() { return sim_; }

 private:
  struct Node {
    NodeConfig config;
    Actor* actor = nullptr;
    bool down = false;
    SimTime uplink_busy = 0;
    SimTime downlink_busy = 0;
    TrafficStats stats;
  };

  Simulator& sim_;
  LatencyMatrix latency_;
  std::vector<Node> nodes_;
  DropFilter drop_filter_;
  DelayFn extra_delay_;
  TraceHasher* tracer_ = nullptr;
};

}  // namespace predis::sim
