// Seed-driven fault schedules for swarm testing.
//
// A FaultScheduler derives, from a single RNG seed, a deterministic
// plan of timed fault events over a run — node crash/restart, pairwise
// and zone-level partitions that heal after a window, extra-delay
// jitter, probabilistic message drops, and Byzantine producer
// equivocation (delegated to the embedding harness via a hook) — and
// drives them through the Runtime's fault-injection surface
// (set_node_down, DropFilter, DelayFn). Every random choice comes from
// the scheduler's own Rng and every action is scheduled through the
// runtime's timer seam, so two runs with the same seed on a
// deterministic backend replay the exact same fault sequence. (The
// scheduler itself is not thread-safe: swarm campaigns run it on
// deterministic backends only.)
#pragma once

#include <functional>
#include <set>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "runtime/runtime.hpp"
#include "sim/message.hpp"

namespace predis::sim {

enum class FaultKind {
  kCrash,          ///< Node down, restarts after the window.
  kPairPartition,  ///< Both directions between two nodes cut.
  kZonePartition,  ///< One region (or random half) cut from the rest.
  kJitter,         ///< Random extra delay on every target link.
  kDrops,          ///< Each target-to-target message dropped with prob p.
  kEquivocate,     ///< Byzantine producer equivocation (via hook).
  kThrottle,       ///< Performance adversary: outbound delay < timeout.
  kWithhold,       ///< Data-plane messages swallowed outbound (by name).
  kGarbage,        ///< Hostile message injection (via hook).
  kChurnStorm,     ///< Repeated down/up cycles, staggered over a set.
  /// Recovery-testable partition: a *minority* group (size <= f) is cut
  /// bidirectionally from the rest, then heals on schedule. Unlike
  /// kZonePartition (which may cut half the cluster and stall quorum),
  /// the majority keeps committing, so the cut nodes fall measurably
  /// behind and must catch up after the heal.
  kPartition,
};

/// Number of FaultKind values; to_string() and the plan builder are
/// checked against this (see test_faults), so a new kind cannot ship
/// without a printable name.
inline constexpr std::size_t kFaultKindCount = 11;

const char* to_string(FaultKind kind);

struct FaultEvent {
  SimTime at = 0;      ///< Injection time.
  SimTime window = 0;  ///< Duration until heal/restart (0 = permanent).
  FaultKind kind = FaultKind::kCrash;
  NodeId a = kNoNode;  ///< Crashed node / pair member / equivocator.
  NodeId b = kNoNode;  ///< Second pair member.
  std::vector<NodeId> side;  ///< Zone partition: nodes cut from the rest.
  double p = 0.0;            ///< Drop probability.
  SimTime jitter = 0;        ///< Max extra one-way delay.
};

struct FaultPlanConfig {
  std::uint64_t seed = 1;
  /// Faults are injected inside [start, horizon); every windowed fault
  /// heals by horizon + max_window, leaving the tail of the run clean
  /// so liveness-after-heal is checkable.
  SimTime start = seconds(1);
  SimTime horizon = seconds(5);
  std::size_t events = 6;  ///< Fault events composed per run.
  /// Crash-concurrency cap: at most this many targets down at once
  /// (keep <= f so a quorum of correct nodes always exists).
  std::size_t max_crashed = 1;
  SimTime min_window = milliseconds(200);
  SimTime max_window = milliseconds(1200);
  double max_drop_prob = 0.25;
  SimTime max_jitter = milliseconds(100);
  /// Per-kind enables; disabled kinds are never drawn.
  bool crashes = true;
  bool pair_partitions = true;
  bool zone_partitions = true;
  bool jitter = true;
  bool drops = true;
  bool equivocation = false;
  /// At most this many distinct equivocators (keep <= f).
  std::size_t max_equivocators = 1;

  // --- Adversarial kinds (all default-off so existing seed-derived
  // --- plans are unchanged; enable per attack campaign). -------------
  bool throttle = false;
  bool withhold = false;
  bool garbage = false;
  bool churn_storms = false;
  /// Minority-group partitions with scheduled heal (kPartition).
  bool partitions = false;
  /// Nodes on the cut side of a kPartition (keep <= f so the majority
  /// retains quorum and keeps committing while the minority lags).
  std::size_t max_partition_nodes = 1;
  /// Extra one-way delay a throttled node adds to every outbound
  /// message. Must stay under the consensus view timeout: the node is a
  /// performance adversary, not a crashed one.
  SimTime throttle_delay = milliseconds(600);
  std::size_t max_throttled = 1;
  /// At most this many distinct withholders (keep <= f: a withholder
  /// contributes no data, like a silent producer).
  std::size_t max_withholders = 1;
  std::size_t max_garbage = 1;
  /// Down/up cycles each churned node goes through per storm event.
  std::size_t churn_cycles = 3;
  /// Nodes per storm. Cycles are staggered so at most one churned node
  /// is down at any instant (quorums of correct nodes survive).
  std::size_t max_churn_nodes = 1;
  /// Message names a withholder swallows (votes, acks and subscriptions
  /// still flow, so the attacker looks live while starving data).
  std::vector<std::string> withhold_names = {
      "Bundle", "BundleBatch", "BundlePush", "Stripe",
      "PredisBlock", "Microblock", "MbBatch", "FullBlock"};
  /// When < targets.size(), adversarial kinds (throttle / withhold /
  /// garbage / equivocate) always strike targets[pin_node] instead of a
  /// random target — campaigns use this to hit the initial leader.
  std::size_t pin_node = static_cast<std::size_t>(-1);
};

class FaultScheduler {
 public:
  /// `targets` are the nodes faults apply to (the consensus group);
  /// traffic to or from non-targets (clients) is never disturbed.
  FaultScheduler(runtime::Runtime& net, std::vector<NodeId> targets,
                 FaultPlanConfig config);

  /// Install the drop filter / delay hook on the runtime and schedule
  /// every planned event. Call before Runtime::start().
  void arm();

  const std::vector<FaultEvent>& plan() const { return plan_; }

  /// Earliest time by which every windowed fault has healed.
  SimTime healed_by() const { return healed_by_; }

  /// Events whose injection time has passed (after a run: all of them).
  std::size_t faults_injected() const { return injected_; }

  /// One line per planned event, for repro logs.
  std::string describe() const;

  /// Equivocation delegate: the harness flips the node's producer into
  /// emitting conflicting bundles. Unset = equivocation events no-op.
  std::function<void(NodeId)> on_equivocate;

  /// Garbage delegate: the harness injects hostile protocol messages as
  /// if sent by the node, spread over the window. Unset = no-op.
  std::function<void(NodeId, SimTime)> on_garbage;

  /// Withhold delegate: fired when a node starts withholding, so the
  /// harness can excuse it from data-availability invariants.
  std::function<void(NodeId)> on_withhold;

 private:
  void build_plan();
  void apply(const FaultEvent& event);
  bool should_drop(NodeId from, NodeId to, const Message& msg);
  SimTime extra_delay(NodeId from, NodeId to);
  bool is_target(NodeId id) const;

  runtime::Runtime& net_;
  std::vector<NodeId> targets_;
  FaultPlanConfig cfg_;
  Rng rng_;       ///< Plan construction (exhausted before the run).
  Rng drop_rng_;  ///< Runtime per-message drop/jitter decisions.

  std::vector<FaultEvent> plan_;
  SimTime healed_by_ = 0;
  std::size_t injected_ = 0;

  // Active-fault state consulted by the installed hooks.
  struct ActiveCut {
    std::set<NodeId> side;
    SimTime until = 0;
  };
  struct ActivePair {
    NodeId a = kNoNode;
    NodeId b = kNoNode;
    SimTime until = 0;
  };
  struct ActiveThrottle {
    NodeId node = kNoNode;
    SimTime delay = 0;
    SimTime until = 0;
  };
  struct ActiveWithhold {
    NodeId node = kNoNode;
    SimTime until = 0;
  };
  std::vector<ActiveCut> cuts_;
  std::vector<ActivePair> pairs_;
  std::vector<ActiveThrottle> throttles_;
  std::vector<ActiveWithhold> withholds_;
  std::set<std::string> withhold_names_;
  double drop_p_ = 0.0;
  SimTime drop_until_ = 0;
  SimTime jitter_max_ = 0;
  SimTime jitter_until_ = 0;
};

}  // namespace predis::sim
