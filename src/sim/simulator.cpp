#include "sim/simulator.hpp"

#include <stdexcept>

namespace predis::sim {

TimerHandle Simulator::schedule_at(SimTime t, std::function<void()> fn) {
  if (t < now_) {
    throw std::invalid_argument("Simulator::schedule_at: time in the past");
  }
  auto alive = std::make_shared<std::atomic<bool>>(true);
  queue_.push(Event{t, next_seq_++, std::move(fn), alive});
  return TimerHandle{std::move(alive)};
}

TimerHandle Simulator::schedule_after(SimTime delay, std::function<void()> fn) {
  if (delay < 0) {
    throw std::invalid_argument("Simulator::schedule_after: negative delay");
  }
  return schedule_at(now_ + delay, std::move(fn));
}

std::size_t Simulator::run_until(SimTime limit) {
  std::size_t n = 0;
  while (!queue_.empty() && queue_.top().time <= limit) {
    Event ev = queue_.top();
    queue_.pop();
    now_ = ev.time;
    if (ev.alive->exchange(false, std::memory_order_relaxed)) {
      ev.fn();
      ++n;
      ++executed_;
    }
  }
  if (now_ < limit) now_ = limit;
  return n;
}

std::size_t Simulator::run() {
  std::size_t n = 0;
  while (!queue_.empty()) {
    Event ev = queue_.top();
    queue_.pop();
    now_ = ev.time;
    if (ev.alive->exchange(false, std::memory_order_relaxed)) {
      ev.fn();
      ++n;
      ++executed_;
    }
  }
  return n;
}

}  // namespace predis::sim
