#include "sim/network.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/log.hpp"

namespace predis::sim {

LatencyMatrix LatencyMatrix::uniform(std::size_t regions, SimTime latency) {
  std::vector<std::vector<SimTime>> m(regions,
                                      std::vector<SimTime>(regions, latency));
  return LatencyMatrix(std::move(m));
}

Network::Network(Simulator& simulator, LatencyMatrix latency)
    : sim_(simulator), latency_(std::move(latency)) {}

NodeId Network::add_node(const NodeConfig& config) {
  if (config.region >= latency_.regions()) {
    throw std::invalid_argument("Network::add_node: unknown region");
  }
  if (config.up_bw <= 0 || config.down_bw <= 0) {
    throw std::invalid_argument("Network::add_node: non-positive bandwidth");
  }
  nodes_.push_back(Node{config, nullptr, false, 0, 0, {}});
  return static_cast<NodeId>(nodes_.size() - 1);
}

void Network::attach(NodeId id, Actor* actor) { nodes_.at(id).actor = actor; }

void Network::start() {
  for (auto& node : nodes_) {
    if (node.actor != nullptr && !node.down) node.actor->on_start();
  }
}

void Network::send(NodeId from, NodeId to, MsgPtr msg) {
  if (from >= nodes_.size() || to >= nodes_.size()) {
    throw std::out_of_range("Network::send: unknown node");
  }
  Node& src = nodes_[from];
  Node& dst = nodes_[to];
  if (src.down) {
    ++src.stats.messages_dropped;
    return;
  }

  const std::size_t size = msg->wire_size() + kTransportOverhead;

  if (dst.down || (drop_filter_ && drop_filter_(from, to, *msg))) {
    ++src.stats.messages_dropped;
    return;
  }

  const SimTime now = sim_.now();

  // Sender uplink serialization (FIFO).
  const SimTime t0 = std::max(now, src.uplink_busy);
  const auto tx_time = static_cast<SimTime>(
      std::llround(static_cast<double>(size) / src.config.up_bw * 1e9));
  const SimTime t1 = t0 + tx_time;
  src.uplink_busy = t1;
  src.stats.bytes_sent += size;
  ++src.stats.messages_sent;

  SimTime lat = latency_.at(src.config.region, dst.config.region);
  if (extra_delay_) lat += extra_delay_(from, to);

  // Receiver downlink: cut-through — cannot complete before the last
  // byte arrives, and queues behind other inbound flows.
  const auto rx_time = static_cast<SimTime>(
      std::llround(static_cast<double>(size) / dst.config.down_bw * 1e9));
  const SimTime first_byte_at = t0 + lat;
  const SimTime rx_start = std::max(first_byte_at, dst.downlink_busy);
  const SimTime deliver = std::max(t1 + lat, rx_start + rx_time);
  dst.downlink_busy = deliver;

  sim_.schedule_at(deliver, [this, from, to, msg = std::move(msg), size]() {
    Node& dst2 = nodes_[to];
    if (dst2.down || dst2.actor == nullptr) return;
    dst2.stats.bytes_received += size;
    ++dst2.stats.messages_received;
    if (tracer_ != nullptr) {
      tracer_->record_delivery(sim_.now(), from, to, size, msg->name());
    }
    dst2.actor->on_message(from, msg);
  });
}

void Network::multicast(NodeId from, const std::vector<NodeId>& to,
                        const MsgPtr& msg) {
  for (NodeId dest : to) {
    if (dest == from) continue;
    send(from, dest, msg);
  }
}

void Network::set_node_down(NodeId id, bool down) {
  Node& node = nodes_.at(id);
  const bool restarting = node.down && !down;
  node.down = down;
  if (restarting && node.actor != nullptr) node.actor->on_restart();
}

void Network::notify_reconnect(NodeId id) {
  Node& node = nodes_.at(id);
  if (!node.down && node.actor != nullptr) node.actor->on_restart();
}

std::uint64_t Network::total_bytes_sent() const {
  std::uint64_t total = 0;
  for (const auto& node : nodes_) total += node.stats.bytes_sent;
  return total;
}

}  // namespace predis::sim
