#include "sim/network.hpp"

#include "common/log.hpp"

namespace predis::sim {

void Network::start() {
  for (NodeId id = 0; id < links_.node_count(); ++id) {
    Actor* actor = links_.actor(id);
    if (actor != nullptr && !links_.is_down(id)) actor->on_start();
  }
}

void Network::send(NodeId from, NodeId to, MsgPtr msg) {
  const auto plan = links_.plan_send(from, to, *msg, sim_.now());
  if (!plan.deliver) return;
  sim_.schedule_at(
      plan.at, [this, from, to, msg = std::move(msg), size = plan.size]() {
        Actor* actor =
            links_.complete_delivery(from, to, size, sim_.now(), *msg);
        if (actor != nullptr) actor->on_message(from, msg);
      });
}

void Network::multicast(NodeId from, const std::vector<NodeId>& to,
                        const MsgPtr& msg) {
  for (NodeId dest : to) {
    if (dest == from) continue;
    send(from, dest, msg);
  }
}

void Network::set_node_down(NodeId id, bool down) {
  Actor* restarted = links_.set_node_down(id, down);
  if (restarted != nullptr) restarted->on_restart();
}

void Network::notify_reconnect(NodeId id) {
  Actor* actor = links_.reconnect_target(id);
  if (actor != nullptr) actor->on_restart();
}

}  // namespace predis::sim
