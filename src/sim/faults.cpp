#include "sim/faults.hpp"

#include <algorithm>
#include <map>
#include <sstream>

namespace predis::sim {

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kCrash:
      return "crash";
    case FaultKind::kPairPartition:
      return "pair-partition";
    case FaultKind::kZonePartition:
      return "zone-partition";
    case FaultKind::kJitter:
      return "jitter";
    case FaultKind::kDrops:
      return "drops";
    case FaultKind::kEquivocate:
      return "equivocate";
    case FaultKind::kThrottle:
      return "throttle";
    case FaultKind::kWithhold:
      return "withhold";
    case FaultKind::kGarbage:
      return "garbage";
    case FaultKind::kChurnStorm:
      return "churn-storm";
    case FaultKind::kPartition:
      return "partition";
  }
  return "?";
}

// A kind missing from the switch above fails -Wswitch (-Werror in CI);
// a kind added without bumping the count fails here.
static_assert(static_cast<std::size_t>(FaultKind::kPartition) + 1 ==
                  kFaultKindCount,
              "kFaultKindCount out of sync with FaultKind");

FaultScheduler::FaultScheduler(runtime::Runtime& net, std::vector<NodeId> targets,
                               FaultPlanConfig config)
    : net_(net),
      targets_(std::move(targets)),
      cfg_(config),
      rng_(config.seed ^ 0xfa1175c0de0001ULL),
      drop_rng_(config.seed * 0x9e3779b97f4a7c15ULL + 1) {
  withhold_names_.insert(cfg_.withhold_names.begin(),
                         cfg_.withhold_names.end());
  build_plan();
}

bool FaultScheduler::is_target(NodeId id) const {
  return std::find(targets_.begin(), targets_.end(), id) != targets_.end();
}

void FaultScheduler::build_plan() {
  if (targets_.empty() || cfg_.horizon <= cfg_.start) return;

  std::vector<FaultKind> kinds;
  if (cfg_.crashes) kinds.push_back(FaultKind::kCrash);
  if (cfg_.pair_partitions && targets_.size() >= 2) {
    kinds.push_back(FaultKind::kPairPartition);
  }
  if (cfg_.zone_partitions && targets_.size() >= 2) {
    kinds.push_back(FaultKind::kZonePartition);
  }
  if (cfg_.jitter) kinds.push_back(FaultKind::kJitter);
  if (cfg_.drops) kinds.push_back(FaultKind::kDrops);
  if (cfg_.equivocation) kinds.push_back(FaultKind::kEquivocate);
  if (cfg_.throttle) kinds.push_back(FaultKind::kThrottle);
  if (cfg_.withhold) kinds.push_back(FaultKind::kWithhold);
  if (cfg_.garbage) kinds.push_back(FaultKind::kGarbage);
  if (cfg_.churn_storms) kinds.push_back(FaultKind::kChurnStorm);
  if (cfg_.partitions && targets_.size() >= 2) {
    kinds.push_back(FaultKind::kPartition);
  }
  if (kinds.empty()) return;

  const auto is_adversarial = [](FaultKind k) {
    return k == FaultKind::kEquivocate || k == FaultKind::kThrottle ||
           k == FaultKind::kWithhold || k == FaultKind::kGarbage;
  };

  // Per-node planned downtime intervals, for the crash-concurrency cap.
  std::vector<std::pair<SimTime, SimTime>> crash_windows;
  std::set<NodeId> crashed_nodes;
  std::set<NodeId> equivocators;
  std::set<NodeId> throttled;
  std::set<NodeId> withholders;
  std::set<NodeId> injectors;

  const auto window_range =
      static_cast<std::uint64_t>(cfg_.max_window - cfg_.min_window + 1);

  for (std::size_t e = 0; e < cfg_.events; ++e) {
    FaultEvent ev;
    ev.at = cfg_.start + static_cast<SimTime>(rng_.next_below(
                             static_cast<std::uint64_t>(cfg_.horizon -
                                                        cfg_.start)));
    ev.window = cfg_.min_window +
                static_cast<SimTime>(rng_.next_below(window_range));
    ev.kind = kinds[rng_.next_below(kinds.size())];
    ev.a = targets_[rng_.next_below(targets_.size())];
    if (cfg_.pin_node < targets_.size() && is_adversarial(ev.kind)) {
      ev.a = targets_[cfg_.pin_node];
    }

    switch (ev.kind) {
      case FaultKind::kCrash: {
        std::size_t overlapping = 0;
        for (const auto& [from, to] : crash_windows) {
          if (ev.at < to && from < ev.at + ev.window) ++overlapping;
        }
        // Cap concurrent downtime (and repeated crashes of one node,
        // whose restart timers would interleave confusingly): demote
        // the event to jitter instead of dropping it, so every seed
        // still schedules exactly cfg_.events faults.
        if (overlapping >= cfg_.max_crashed ||
            crashed_nodes.count(ev.a) != 0) {
          ev.kind = FaultKind::kJitter;
          ev.jitter = 1 + static_cast<SimTime>(rng_.next_below(
                              static_cast<std::uint64_t>(cfg_.max_jitter)));
          break;
        }
        crash_windows.emplace_back(ev.at, ev.at + ev.window);
        crashed_nodes.insert(ev.a);
        break;
      }
      case FaultKind::kPairPartition: {
        ev.b = targets_[rng_.next_below(targets_.size())];
        while (ev.b == ev.a) {
          ev.b = targets_[(std::find(targets_.begin(), targets_.end(), ev.b) -
                           targets_.begin() + 1) %
                          targets_.size()];
        }
        break;
      }
      case FaultKind::kZonePartition: {
        // Cut one region off when the targets span several; otherwise a
        // random half (LAN clusters live in a single region).
        std::map<std::uint32_t, std::vector<NodeId>> by_region;
        for (NodeId id : targets_) by_region[net_.region_of(id)].push_back(id);
        if (by_region.size() >= 2) {
          auto it = by_region.begin();
          std::advance(it, rng_.next_below(by_region.size()));
          ev.side = it->second;
        } else {
          std::vector<NodeId> shuffled = targets_;
          rng_.shuffle(shuffled);
          shuffled.resize(std::max<std::size_t>(1, shuffled.size() / 2));
          std::sort(shuffled.begin(), shuffled.end());
          ev.side = std::move(shuffled);
        }
        break;
      }
      case FaultKind::kJitter: {
        ev.jitter = 1 + static_cast<SimTime>(rng_.next_below(
                            static_cast<std::uint64_t>(cfg_.max_jitter)));
        break;
      }
      case FaultKind::kDrops: {
        ev.p = rng_.next_double() * cfg_.max_drop_prob;
        break;
      }
      case FaultKind::kEquivocate: {
        if (equivocators.size() >= cfg_.max_equivocators &&
            equivocators.count(ev.a) == 0) {
          // Keep the Byzantine population <= f: demote to drops.
          ev.kind = FaultKind::kDrops;
          ev.p = rng_.next_double() * cfg_.max_drop_prob;
          break;
        }
        equivocators.insert(ev.a);
        ev.window = 0;  // equivocation does not heal
        break;
      }
      case FaultKind::kThrottle: {
        if (throttled.size() >= cfg_.max_throttled &&
            throttled.count(ev.a) == 0) {
          ev.kind = FaultKind::kJitter;
          ev.jitter = 1 + static_cast<SimTime>(rng_.next_below(
                              static_cast<std::uint64_t>(cfg_.max_jitter)));
          break;
        }
        throttled.insert(ev.a);
        ev.jitter = cfg_.throttle_delay;
        break;
      }
      case FaultKind::kWithhold: {
        if (withholders.size() >= cfg_.max_withholders &&
            withholders.count(ev.a) == 0) {
          // Keep the withholding population <= f: demote to drops.
          ev.kind = FaultKind::kDrops;
          ev.p = rng_.next_double() * cfg_.max_drop_prob;
          break;
        }
        withholders.insert(ev.a);
        break;
      }
      case FaultKind::kGarbage: {
        if (injectors.size() >= cfg_.max_garbage &&
            injectors.count(ev.a) == 0) {
          ev.kind = FaultKind::kDrops;
          ev.p = rng_.next_double() * cfg_.max_drop_prob;
          break;
        }
        injectors.insert(ev.a);
        break;
      }
      case FaultKind::kChurnStorm: {
        // A storm cycles a small shuffled subset; the nodes take their
        // down/up cycles back to back, so at most one storm member is
        // down at any instant and quorums of correct nodes survive.
        std::vector<NodeId> shuffled = targets_;
        rng_.shuffle(shuffled);
        shuffled.resize(std::min<std::size_t>(
            std::max<std::size_t>(1, cfg_.max_churn_nodes),
            shuffled.size()));
        std::sort(shuffled.begin(), shuffled.end());
        ev.side = std::move(shuffled);
        break;
      }
      case FaultKind::kPartition: {
        // Cut a shuffled minority (<= max_partition_nodes, never the
        // whole group) so the rest keeps quorum; the cut heals at
        // at + window and the minority must catch up.
        std::vector<NodeId> shuffled = targets_;
        rng_.shuffle(shuffled);
        const std::size_t cut = std::min(
            {std::max<std::size_t>(1, cfg_.max_partition_nodes),
             targets_.size() - 1});
        shuffled.resize(cut);
        std::sort(shuffled.begin(), shuffled.end());
        ev.side = std::move(shuffled);
        break;
      }
    }
    plan_.push_back(std::move(ev));
  }

  std::stable_sort(plan_.begin(), plan_.end(),
                   [](const FaultEvent& x, const FaultEvent& y) {
                     return x.at < y.at;
                   });
  for (const FaultEvent& ev : plan_) {
    healed_by_ = std::max(healed_by_, ev.at + ev.window);
  }
}

void FaultScheduler::arm() {
  net_.set_drop_filter([this](NodeId from, NodeId to, const Message& msg) {
    return should_drop(from, to, msg);
  });
  net_.set_extra_delay(
      [this](NodeId from, NodeId to) { return extra_delay(from, to); });
  for (std::size_t i = 0; i < plan_.size(); ++i) {
    // arm() runs before start(), i.e. at time 0, so the relative delay
    // equals the absolute plan time on every backend.
    net_.schedule_after(plan_[i].at - net_.now(),
                        [this, i] { apply(plan_[i]); });
  }
}

void FaultScheduler::apply(const FaultEvent& ev) {
  ++injected_;
  const SimTime now = net_.now();
  const SimTime until = ev.at + ev.window;
  switch (ev.kind) {
    case FaultKind::kCrash: {
      net_.set_node_down(ev.a, true);
      net_.schedule_after(until - now, [this, node = ev.a] {
        net_.set_node_down(node, false);
      });
      break;
    }
    case FaultKind::kPairPartition: {
      pairs_.push_back({ev.a, ev.b, until});
      break;
    }
    case FaultKind::kZonePartition: {
      cuts_.push_back(
          {std::set<NodeId>(ev.side.begin(), ev.side.end()), until});
      break;
    }
    case FaultKind::kJitter: {
      jitter_max_ = now < jitter_until_ ? std::max(jitter_max_, ev.jitter)
                                        : ev.jitter;
      jitter_until_ = std::max(jitter_until_, until);
      break;
    }
    case FaultKind::kDrops: {
      drop_p_ = now < drop_until_ ? std::max(drop_p_, ev.p) : ev.p;
      drop_until_ = std::max(drop_until_, until);
      break;
    }
    case FaultKind::kEquivocate: {
      if (on_equivocate) on_equivocate(ev.a);
      break;
    }
    case FaultKind::kThrottle: {
      throttles_.push_back({ev.a, ev.jitter, until});
      break;
    }
    case FaultKind::kWithhold: {
      withholds_.push_back({ev.a, until});
      if (on_withhold) on_withhold(ev.a);
      break;
    }
    case FaultKind::kGarbage: {
      if (on_garbage) on_garbage(ev.a, ev.window);
      break;
    }
    case FaultKind::kChurnStorm: {
      const std::size_t cycles = std::max<std::size_t>(1, cfg_.churn_cycles);
      const std::size_t slots = ev.side.size() * cycles;
      const SimTime slot =
          std::max<SimTime>(1, ev.window / static_cast<SimTime>(slots));
      for (std::size_t k = 0; k < ev.side.size(); ++k) {
        for (std::size_t c = 0; c < cycles; ++c) {
          const SimTime down_at =
              ev.at + static_cast<SimTime>(k * cycles + c) * slot;
          const SimTime up_at = down_at + slot / 2;
          net_.schedule_after(down_at - ev.at, [this, node = ev.side[k]] {
            net_.set_node_down(node, true);
          });
          net_.schedule_after(up_at - ev.at, [this, node = ev.side[k]] {
            net_.set_node_down(node, false);
          });
        }
      }
      break;
    }
    case FaultKind::kPartition: {
      cuts_.push_back(
          {std::set<NodeId>(ev.side.begin(), ev.side.end()), until});
      // The cut side missed every message for the window; poke its
      // recovery path at heal time (crash restarts get the same hook
      // from set_node_down).
      net_.schedule_after(until - now, [this, side = ev.side] {
        for (NodeId node : side) net_.notify_reconnect(node);
      });
      break;
    }
  }
}

bool FaultScheduler::should_drop(NodeId from, NodeId to,
                                 const Message& msg) {
  if (!is_target(from) || !is_target(to)) return false;
  const SimTime now = net_.now();
  for (const ActiveWithhold& w : withholds_) {
    if (now >= w.until || from != w.node) continue;
    if (withhold_names_.count(msg.name()) != 0) return true;
  }
  for (const ActivePair& pair : pairs_) {
    if (now >= pair.until) continue;
    if ((from == pair.a && to == pair.b) || (from == pair.b && to == pair.a)) {
      return true;
    }
  }
  for (const ActiveCut& cut : cuts_) {
    if (now >= cut.until) continue;
    if ((cut.side.count(from) != 0) != (cut.side.count(to) != 0)) return true;
  }
  if (now < drop_until_ && drop_p_ > 0.0) return drop_rng_.chance(drop_p_);
  return false;
}

SimTime FaultScheduler::extra_delay(NodeId from, NodeId to) {
  if (!is_target(from) || !is_target(to)) return 0;
  const SimTime now = net_.now();
  SimTime delay = 0;
  for (const ActiveThrottle& t : throttles_) {
    if (now < t.until && from == t.node) delay = std::max(delay, t.delay);
  }
  if (jitter_max_ > 0 && now < jitter_until_) {
    delay += static_cast<SimTime>(
        drop_rng_.next_below(static_cast<std::uint64_t>(jitter_max_) + 1));
  }
  return delay;
}

std::string FaultScheduler::describe() const {
  std::ostringstream oss;
  for (const FaultEvent& ev : plan_) {
    oss << "  t=" << to_seconds(ev.at) << "s " << to_string(ev.kind);
    switch (ev.kind) {
      case FaultKind::kCrash:
      case FaultKind::kEquivocate:
      case FaultKind::kWithhold:
      case FaultKind::kGarbage:
        oss << " node " << ev.a;
        break;
      case FaultKind::kThrottle:
        oss << " node " << ev.a << " +" << to_milliseconds(ev.jitter)
            << "ms";
        break;
      case FaultKind::kPairPartition:
        oss << " " << ev.a << "<->" << ev.b;
        break;
      case FaultKind::kZonePartition:
      case FaultKind::kChurnStorm:
      case FaultKind::kPartition: {
        oss << " {";
        for (std::size_t i = 0; i < ev.side.size(); ++i) {
          oss << (i != 0 ? "," : "") << ev.side[i];
        }
        oss << "}";
        break;
      }
      case FaultKind::kJitter:
        oss << " <=" << to_milliseconds(ev.jitter) << "ms";
        break;
      case FaultKind::kDrops:
        oss << " p=" << ev.p;
        break;
    }
    if (ev.window > 0) oss << " for " << to_seconds(ev.window) << "s";
    oss << "\n";
  }
  return oss.str();
}

}  // namespace predis::sim
