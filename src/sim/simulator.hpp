// Deterministic discrete-event scheduler.
//
// Events fire in (time, insertion-sequence) order, so two runs with the
// same seed produce byte-identical traces. All simulated components —
// the network, actors' timers, workload generators — schedule through
// this single queue.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "common/types.hpp"
#include "runtime/timer.hpp"

namespace predis::sim {

/// Timer handles are shared across backends (runtime/timer.hpp); the
/// simulator hands out the same cancellable handle ThreadRuntime does.
using TimerHandle = runtime::TimerHandle;

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime now() const { return now_; }

  /// Schedule `fn` to run at absolute simulated time `t` (>= now).
  TimerHandle schedule_at(SimTime t, std::function<void()> fn);

  /// Schedule `fn` after a relative delay (>= 0).
  TimerHandle schedule_after(SimTime delay, std::function<void()> fn);

  /// Run until the queue drains or `limit` is reached, whichever first.
  /// Returns the number of events executed.
  std::size_t run_until(SimTime limit);

  /// Run until the queue drains completely.
  std::size_t run();

  /// Total events executed so far.
  std::uint64_t events_executed() const { return executed_; }

  bool empty() const { return queue_.empty(); }

 private:
  struct Event {
    SimTime time;
    std::uint64_t seq;
    std::function<void()> fn;
    std::shared_ptr<std::atomic<bool>> alive;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace predis::sim
