// Historical home of the canned paper environments; the definitions
// moved to runtime/environments.hpp (they configure any backend, not
// just the simulator) and are aliased here for sim-layer spellings.
#pragma once

#include "runtime/environments.hpp"
#include "sim/network.hpp"

namespace predis::sim {

using runtime::kBandwidth100Mbps;
using runtime::kWanRegions;
using runtime::Region;
using runtime::lan_latency;
using runtime::node_100mbps;
using runtime::wan_latency;

}  // namespace predis::sim
