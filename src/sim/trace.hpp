// Historical home of the delivery-trace hasher; the type moved to
// runtime/trace.hpp with the Runtime seam (both backends fold
// deliveries into the same digest chain) and is aliased here for
// sim-layer spellings.
#pragma once

#include "runtime/trace.hpp"

namespace predis::sim {

using TraceHasher = runtime::TraceHasher;

}  // namespace predis::sim
