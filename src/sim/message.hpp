// Historical home of the wire-message base type. The type itself moved
// to runtime/message.hpp when the Runtime seam was extracted — every
// backend shares it — and is aliased here so sim-layer code and tests
// keep their sim::Message / sim::MsgPtr spellings.
#pragma once

#include "runtime/message.hpp"

namespace predis::sim {

using Message = runtime::Message;
using MsgPtr = runtime::MsgPtr;

}  // namespace predis::sim
