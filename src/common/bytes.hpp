// Byte-buffer alias plus hex helpers used throughout serialization,
// hashing and debugging output.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace predis {

using Bytes = std::vector<std::uint8_t>;
using BytesView = std::span<const std::uint8_t>;
using MutBytesView = std::span<std::uint8_t>;

/// Render a byte span as lowercase hex ("deadbeef").
std::string to_hex(BytesView data);

/// Parse lowercase/uppercase hex into bytes. Throws std::invalid_argument
/// on odd length or non-hex characters.
Bytes from_hex(const std::string& hex);

/// View over the raw bytes of a string (no copy). Accepts anything
/// convertible to string_view, including C strings and std::string.
inline BytesView as_bytes(std::string_view s) {
  return {reinterpret_cast<const std::uint8_t*>(s.data()), s.size()};
}

}  // namespace predis
