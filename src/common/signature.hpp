// Simulated digital signatures.
//
// SUBSTITUTION (documented in DESIGN.md): real deployments sign bundles
// and blocks with Ed25519. Inside this reproduction all parties live in
// one simulated process, so we use a deterministic keyed construction
// over SHA-256 with *the same wire sizes* as Ed25519 (32-byte public
// key, 64-byte signature) — the sizes are what affect bandwidth and
// therefore throughput shape. Unforgeability holds against the threat
// model we simulate: a Byzantine actor in the simulation never learns
// another node's secret, and `verify` recomputes the MAC from the
// *signer registry*, so fabricating a signature for someone else's key
// fails.
#pragma once

#include <array>
#include <cstdint>
#include <optional>

#include "common/bytes.hpp"
#include "common/sha256.hpp"

namespace predis {

using PublicKey = std::array<std::uint8_t, 32>;
using Signature = std::array<std::uint8_t, 64>;

/// A signing identity. Construct deterministically from a seed so that
/// simulations are reproducible.
class KeyPair {
 public:
  /// Derive a keypair from a 64-bit seed (e.g. the node id).
  static KeyPair from_seed(std::uint64_t seed);

  const PublicKey& public_key() const { return public_key_; }

  /// Sign a message. Deterministic.
  Signature sign(BytesView message) const;

 private:
  KeyPair() = default;
  std::array<std::uint8_t, 32> secret_{};
  PublicKey public_key_{};
};

/// Verify `signature` over `message` for the holder of `public_key`.
///
/// Implementation detail: the public key is itself derived from the
/// secret via SHA-256, and verification re-derives the expected MAC from
/// the public key's preimage registry. For the simulated threat model
/// this gives the required property — only the holder of the secret
/// (i.e. the KeyPair constructed with the right seed) produces
/// signatures that verify.
bool verify(const PublicKey& public_key, BytesView message,
            const Signature& signature);

/// One item of a verification batch. Pointers must outlive the
/// verify_batch call; `message` views caller-owned bytes.
struct SigCheck {
  const PublicKey* key = nullptr;
  BytesView message;
  const Signature* signature = nullptr;
};

/// Verify a run of signatures that arrive together — bundle batches at
/// quorum boundaries, conflict-evidence pairs. Takes the key-registry
/// lock once for the whole batch instead of once per signature, which
/// is where the per-item overhead of verify() lives. Fills ok[i] for
/// every item and returns how many verified.
std::size_t verify_batch(const SigCheck* items, std::size_t count, bool* ok);

}  // namespace predis
