// Cross-cutting experiment metrics: committed-transaction throughput,
// client-observed latency, block production, and aggregate bytes
// sent/received are recorded here by protocol engines and experiment
// drivers and read by the bench harness. (Per-node bandwidth lives in
// sim::Network::stats(node); experiments fold it into these aggregate
// byte counters.)
#pragma once

#include <cstdint>
#include <vector>

#include "common/stats.hpp"
#include "common/types.hpp"

namespace predis {

class Metrics {
 public:
  /// A block/batch committed at `when` carrying `tx_count` transactions.
  void record_commit(SimTime when, std::size_t tx_count) {
    commits_.push_back({when, tx_count});
    committed_txs_ += tx_count;
  }

  /// One transaction's client-observed latency (submit -> first reply).
  void record_latency(SimTime latency) {
    latencies_.add(to_milliseconds(latency));
  }

  /// Count a transaction submitted by a client (offered load).
  void record_submitted(std::size_t n = 1) { submitted_txs_ += n; }

  /// Aggregate wire bytes (all nodes; dissemination + consensus).
  void record_bytes_sent(std::uint64_t n) { bytes_sent_ += n; }
  void record_bytes_received(std::uint64_t n) { bytes_received_ += n; }

  std::uint64_t committed_txs() const { return committed_txs_; }
  std::uint64_t submitted_txs() const { return submitted_txs_; }
  std::uint64_t bytes_sent() const { return bytes_sent_; }
  std::uint64_t bytes_received() const { return bytes_received_; }

  /// Committed transactions per second inside [from, to].
  double throughput_tps(SimTime from, SimTime to) const {
    if (to <= from) return 0.0;
    std::uint64_t n = 0;
    for (const auto& c : commits_) {
      if (c.when >= from && c.when <= to) n += c.tx_count;
    }
    return static_cast<double>(n) / to_seconds(to - from);
  }

  /// Latency distribution in milliseconds.
  const Percentiles& latencies() const { return latencies_; }
  Percentiles& latencies() { return latencies_; }

  /// Number of distinct commit events (blocks).
  std::size_t commit_events() const { return commits_.size(); }

 private:
  struct Commit {
    SimTime when;
    std::size_t tx_count;
  };
  std::vector<Commit> commits_;
  Percentiles latencies_;
  std::uint64_t committed_txs_ = 0;
  std::uint64_t submitted_txs_ = 0;
  std::uint64_t bytes_sent_ = 0;
  std::uint64_t bytes_received_ = 0;
};

}  // namespace predis
