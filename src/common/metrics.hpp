// Cross-cutting experiment metrics: committed-transaction throughput,
// client-observed latency, block production, and aggregate bytes
// sent/received are recorded here by protocol engines and experiment
// drivers and read by the bench harness. (Per-node bandwidth lives in
// Runtime::stats(node); experiments fold it into these aggregate byte
// counters.)
//
// One Metrics object is shared by every node of a run. On the threaded
// Runtime backend those nodes record from different workers, so every
// method takes the internal lock; on the discrete-event backend the
// lock is uncontended and free in practice.
#pragma once

#include <cstdint>
#include <mutex>
#include <vector>

#include "common/stats.hpp"
#include "common/thread_annotations.hpp"
#include "common/types.hpp"

namespace predis {

class Metrics {
 public:
  /// A block/batch committed at `when` carrying `tx_count` transactions.
  void record_commit(SimTime when, std::size_t tx_count) {
    std::lock_guard<std::mutex> lock(m_);
    commits_.push_back({when, tx_count});
    committed_txs_ += tx_count;
  }

  /// One transaction's client-observed latency (submit -> first reply).
  void record_latency(SimTime latency) {
    std::lock_guard<std::mutex> lock(m_);
    latencies_.add(to_milliseconds(latency));
  }

  /// Count a transaction submitted by a client (offered load).
  void record_submitted(std::size_t n = 1) {
    std::lock_guard<std::mutex> lock(m_);
    submitted_txs_ += n;
  }

  /// Aggregate wire bytes (all nodes; dissemination + consensus).
  void record_bytes_sent(std::uint64_t n) {
    std::lock_guard<std::mutex> lock(m_);
    bytes_sent_ += n;
  }
  void record_bytes_received(std::uint64_t n) {
    std::lock_guard<std::mutex> lock(m_);
    bytes_received_ += n;
  }

  std::uint64_t committed_txs() const {
    std::lock_guard<std::mutex> lock(m_);
    return committed_txs_;
  }
  std::uint64_t submitted_txs() const {
    std::lock_guard<std::mutex> lock(m_);
    return submitted_txs_;
  }
  std::uint64_t bytes_sent() const {
    std::lock_guard<std::mutex> lock(m_);
    return bytes_sent_;
  }
  std::uint64_t bytes_received() const {
    std::lock_guard<std::mutex> lock(m_);
    return bytes_received_;
  }

  /// Committed transactions per second inside [from, to].
  double throughput_tps(SimTime from, SimTime to) const {
    if (to <= from) return 0.0;
    std::lock_guard<std::mutex> lock(m_);
    std::uint64_t n = 0;
    for (const auto& c : commits_) {
      if (c.when >= from && c.when <= to) n += c.tx_count;
    }
    return static_cast<double>(n) / to_seconds(to - from);
  }

  /// Latency distribution in milliseconds, as a snapshot copy. The old
  /// accessor returned a reference that escaped the lock, so a reader
  /// overlapping a recording worker raced the sample vector's growth;
  /// copying under the lock makes mid-run reads safe.
  Percentiles latencies() const {
    std::lock_guard<std::mutex> lock(m_);
    return latencies_;
  }

  /// Number of distinct commit events (blocks).
  std::size_t commit_events() const {
    std::lock_guard<std::mutex> lock(m_);
    return commits_.size();
  }

 private:
  struct Commit {
    SimTime when;
    std::size_t tx_count;
  };
  mutable std::mutex m_;
  std::vector<Commit> commits_ PREDIS_GUARDED_BY(m_);
  Percentiles latencies_ PREDIS_GUARDED_BY(m_);
  std::uint64_t committed_txs_ PREDIS_GUARDED_BY(m_) = 0;
  std::uint64_t submitted_txs_ PREDIS_GUARDED_BY(m_) = 0;
  std::uint64_t bytes_sent_ PREDIS_GUARDED_BY(m_) = 0;
  std::uint64_t bytes_received_ PREDIS_GUARDED_BY(m_) = 0;
};

}  // namespace predis
