// From-scratch SHA-256 (FIPS 180-4). Used as the collision-resistant hash
// D of the paper (§III-C): bundle hashes, Merkle trees, block hashes and
// the simulated signature scheme are all built on it.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

#include "common/bytes.hpp"

namespace predis {

/// 32-byte digest.
using Hash32 = std::array<std::uint8_t, 32>;

/// Incremental SHA-256 context. Feed data with update(), finish with
/// digest(). A context can hash arbitrarily large inputs in chunks.
class Sha256 {
 public:
  Sha256();

  /// Absorb more input.
  void update(BytesView data);

  /// Finalize and return the digest. The context must not be reused
  /// afterwards (construct a fresh one instead).
  Hash32 digest();

  /// One-shot convenience.
  static Hash32 hash(BytesView data);

 private:
  std::array<std::uint32_t, 8> state_;
  std::array<std::uint8_t, 64> buffer_;
  std::uint64_t bit_length_ = 0;
  std::size_t buffer_len_ = 0;
};

/// Hash the concatenation of two digests — the Merkle-tree inner-node rule.
Hash32 hash_pair(const Hash32& left, const Hash32& right);

/// Batched inner-node rule: out[i] = SHA-256(pairs[2i] || pairs[2i+1]).
/// `pairs` holds 2*pair_count contiguous digests. Routed through the
/// multi-buffer kernel when one is active (see sha256_kernels.hpp), so
/// hashing a whole Merkle level costs far less than pair_count calls
/// to hash_pair. `out` may alias the front of `pairs` (out[i] is
/// written only after pair i is read) — the in-place level halving the
/// Merkle builder uses.
void hash_pairs(const Hash32* pairs, std::size_t pair_count, Hash32* out);

/// All-zero digest, used as "null hash" (genesis parents etc.).
inline constexpr Hash32 kZeroHash{};

/// Short printable prefix of a hash for logs ("a1b2c3d4").
std::string short_hex(const Hash32& h);

/// Full hex of a hash.
std::string to_hex(const Hash32& h);

}  // namespace predis
