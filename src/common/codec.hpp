// Binary serialization: a little-endian Writer/Reader pair used for every
// wire message and hashable structure in the framework.
//
// The format is deliberately simple and deterministic (no varints): fixed
// little-endian integers, length-prefixed containers. Determinism matters
// because structure hashes (bundle hashes, block hashes) are computed over
// the encoded form.
#pragma once

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/sha256.hpp"

namespace predis {

/// Thrown by Reader when the input is truncated or malformed.
class CodecError : public std::runtime_error {
 public:
  explicit CodecError(const std::string& what) : std::runtime_error(what) {}
};

/// Appends values to a byte buffer.
class Writer {
 public:
  Writer() = default;

  /// Adopt an existing buffer, clearing its contents but keeping its
  /// capacity — lets hot paths reuse one allocation across encodes:
  ///   Writer w(std::move(scratch)); ...; scratch = std::move(w).take();
  explicit Writer(Bytes&& buf) : buf_(std::move(buf)) { buf_.clear(); }

  void u8(std::uint8_t v) { buf_.push_back(v); }

  void u16(std::uint16_t v) { write_le(v); }
  void u32(std::uint32_t v) { write_le(v); }
  void u64(std::uint64_t v) { write_le(v); }
  void i64(std::int64_t v) { write_le(static_cast<std::uint64_t>(v)); }

  void boolean(bool v) { u8(v ? 1 : 0); }

  void bytes(BytesView data) {
    u32(static_cast<std::uint32_t>(data.size()));
    raw(data);
  }

  void str(const std::string& s) { bytes(as_bytes(s)); }

  void hash(const Hash32& h) { raw(BytesView{h.data(), h.size()}); }

  /// Append without a length prefix.
  void raw(BytesView data) { buf_.insert(buf_.end(), data.begin(), data.end()); }

  /// Serialize a vector of encodable items: each item provides
  /// encode(Writer&).
  template <typename T>
  void vec(const std::vector<T>& items) {
    u32(static_cast<std::uint32_t>(items.size()));
    for (const auto& item : items) item.encode(*this);
  }

  /// Serialize a vector of u64 (common case: tip lists, height lists).
  void vec_u64(const std::vector<std::uint64_t>& items) {
    u32(static_cast<std::uint32_t>(items.size()));
    for (auto v : items) u64(v);
  }

  /// Serialize a vector of hashes.
  void vec_hash(const std::vector<Hash32>& items) {
    u32(static_cast<std::uint32_t>(items.size()));
    for (const auto& h : items) hash(h);
  }

  const Bytes& data() const& { return buf_; }
  Bytes take() && { return std::move(buf_); }
  std::size_t size() const { return buf_.size(); }

 private:
  template <typename T>
  void write_le(T v) {
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }

  Bytes buf_;
};

/// Reads values back out of a byte span; throws CodecError on underrun.
class Reader {
 public:
  explicit Reader(BytesView data) : data_(data) {}

  std::uint8_t u8() { return read_le<std::uint8_t>(); }
  std::uint16_t u16() { return read_le<std::uint16_t>(); }
  std::uint32_t u32() { return read_le<std::uint32_t>(); }
  std::uint64_t u64() { return read_le<std::uint64_t>(); }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }

  bool boolean() { return u8() != 0; }

  Bytes bytes() {
    const std::uint32_t len = u32();
    check(len);
    Bytes out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
              data_.begin() + static_cast<std::ptrdiff_t>(pos_ + len));
    pos_ += len;
    return out;
  }

  std::string str() {
    Bytes b = bytes();
    return std::string(b.begin(), b.end());
  }

  Hash32 hash() {
    check(32);
    Hash32 h;
    std::memcpy(h.data(), data_.data() + pos_, 32);
    pos_ += 32;
    return h;
  }

  /// Decode a vector of items with a static T::decode(Reader&) factory.
  template <typename T>
  std::vector<T> vec() {
    const std::uint32_t n = u32();
    std::vector<T> out;
    out.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) out.push_back(T::decode(*this));
    return out;
  }

  std::vector<std::uint64_t> vec_u64() {
    const std::uint32_t n = u32();
    std::vector<std::uint64_t> out;
    out.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) out.push_back(u64());
    return out;
  }

  std::vector<Hash32> vec_hash() {
    const std::uint32_t n = u32();
    std::vector<Hash32> out;
    out.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) out.push_back(hash());
    return out;
  }

  bool done() const { return pos_ == data_.size(); }
  std::size_t remaining() const { return data_.size() - pos_; }

 private:
  template <typename T>
  T read_le() {
    check(sizeof(T));
    T v = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      v = static_cast<T>(v | (static_cast<std::uint64_t>(data_[pos_ + i])
                              << (8 * i)));
    }
    pos_ += sizeof(T);
    return v;
  }

  void check(std::size_t need) const {
    if (pos_ + need > data_.size()) {
      throw CodecError("Reader: truncated input");
    }
  }

  BytesView data_;
  std::size_t pos_ = 0;
};

/// Hash an encodable structure: SHA-256 over its deterministic encoding.
template <typename T>
Hash32 hash_of(const T& value) {
  Writer w;
  value.encode(w);
  return Sha256::hash(w.data());
}

}  // namespace predis
