// Merkle tree over leaf hashes, with inclusion proofs.
//
// Predis uses Merkle roots in two places (Fig. 1 of the paper):
//  * the bundle header carries a Merkle root over the bundle's
//    transactions and a "Merkle stripe hash" over its erasure-coded
//    stripes, so receivers can verify individual stripes;
//  * the Predis block carries a Merkle root over all transactions the
//    candidate block maps to.
//
// Odd layers duplicate the last node (Bitcoin-style) so any leaf count
// >= 1 is supported.
#pragma once

#include <cstddef>
#include <vector>

#include "common/sha256.hpp"

namespace predis {

/// Inclusion proof: sibling hashes from leaf to root plus the leaf index
/// (the index encodes left/right orientation at every level).
struct MerkleProof {
  std::size_t leaf_index = 0;
  std::vector<Hash32> siblings;
};

/// Immutable Merkle tree built from a list of leaf hashes.
class MerkleTree {
 public:
  /// Builds the full tree; leaves must be non-empty.
  explicit MerkleTree(std::vector<Hash32> leaves);

  const Hash32& root() const { return levels_.back().front(); }
  std::size_t leaf_count() const { return levels_.front().size(); }

  /// Proof for the leaf at `index` (must be < leaf_count()).
  MerkleProof prove(std::size_t index) const;

  /// Same, writing into a caller-owned proof whose siblings capacity is
  /// reused — the stripe codec's per-stripe-allocation-free path.
  void prove_into(std::size_t index, MerkleProof& out) const;

  /// Convenience: root over leaves without keeping the tree.
  static Hash32 root_of(const std::vector<Hash32>& leaves);

  /// Verify that `leaf` is included under `root` via `proof`.
  static bool verify(const Hash32& root, const Hash32& leaf,
                     const MerkleProof& proof);

 private:
  // levels_[0] = leaves, levels_.back() = {root}.
  std::vector<std::vector<Hash32>> levels_;
};

}  // namespace predis
