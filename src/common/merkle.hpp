// Merkle tree over leaf hashes, with inclusion proofs.
//
// Predis uses Merkle roots in two places (Fig. 1 of the paper):
//  * the bundle header carries a Merkle root over the bundle's
//    transactions and a "Merkle stripe hash" over its erasure-coded
//    stripes, so receivers can verify individual stripes;
//  * the Predis block carries a Merkle root over all transactions the
//    candidate block maps to.
//
// Odd layers duplicate the last node (Bitcoin-style) so any leaf count
// >= 1 is supported.
//
// Storage is one flat node arena (all levels concatenated, each level
// padded to an even width so the duplicate node is materialized) and
// every level is hashed through the batched pair kernel
// (hash_pairs()), which rides the multi-buffer SHA-256 kernel when
// one is active — one allocation and one kernel dispatch per level
// instead of a vector and a hash_pair call per node.
#pragma once

#include <cstddef>
#include <vector>

#include "common/sha256.hpp"

namespace predis {

/// Inclusion proof: sibling hashes from leaf to root plus the leaf index
/// (the index encodes left/right orientation at every level).
struct MerkleProof {
  std::size_t leaf_index = 0;
  std::vector<Hash32> siblings;
};

/// Immutable Merkle tree built from a list of leaf hashes.
class MerkleTree {
 public:
  /// Builds the full tree; leaves must be non-empty.
  explicit MerkleTree(std::vector<Hash32> leaves);

  const Hash32& root() const { return nodes_.back(); }
  std::size_t leaf_count() const { return leaf_count_; }

  /// Proof for the leaf at `index` (must be < leaf_count()).
  MerkleProof prove(std::size_t index) const;

  /// Same, writing into a caller-owned proof whose siblings capacity is
  /// reused — the stripe codec's per-stripe-allocation-free path.
  void prove_into(std::size_t index, MerkleProof& out) const;

  /// Convenience: root over leaves without keeping the tree. Runs the
  /// batched levels in place inside a reused thread-local scratch
  /// buffer, so the steady state allocates nothing.
  static Hash32 root_of(const std::vector<Hash32>& leaves);

  /// Verify that `leaf` is included under `root` via `proof`.
  static bool verify(const Hash32& root, const Hash32& leaf,
                     const MerkleProof& proof);

 private:
  // All levels back to back, leaves first, root last. Odd levels are
  // stored with their duplicated last node so sibling lookup never
  // branches and the pair batch always covers the full level.
  std::vector<Hash32> nodes_;
  // offset_[l] = index of level l's first node in nodes_; offset_
  // has one entry per level.
  std::vector<std::size_t> offset_;
  std::size_t leaf_count_ = 0;
};

}  // namespace predis
