#include "common/rng.hpp"

#include <cmath>
#include <stdexcept>

namespace predis {

namespace {
// splitmix64, used only to expand the seed into xoshiro state.
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  if (bound == 0) throw std::invalid_argument("Rng::next_below: bound == 0");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    const std::uint64_t r = next();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::next_range(std::int64_t lo, std::int64_t hi) {
  if (lo > hi) throw std::invalid_argument("Rng::next_range: lo > hi");
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(span == 0 ? next() : next_below(span));
}

double Rng::next_double() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Rng::chance(double p) { return next_double() < p; }

double Rng::next_exponential(double mean) {
  double u = next_double();
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

std::vector<std::size_t> Rng::sample_indices(std::size_t n, std::size_t k) {
  if (k > n) throw std::invalid_argument("Rng::sample_indices: k > n");
  std::vector<std::size_t> all(n);
  for (std::size_t i = 0; i < n; ++i) all[i] = i;
  // Partial Fisher-Yates: first k positions become the sample.
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t j = i + static_cast<std::size_t>(next_below(n - i));
    std::swap(all[i], all[j]);
  }
  all.resize(k);
  return all;
}

}  // namespace predis
