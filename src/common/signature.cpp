#include "common/signature.hpp"

#include "common/thread_annotations.hpp"

#include <cstring>
#include <map>
#include <mutex>
#include <vector>

namespace predis {

namespace {

// Registry mapping public keys to their secrets. `verify` consults it to
// recompute the expected MAC; a simulated adversary that never held the
// secret cannot produce a verifying signature for someone else's key.
struct KeyRegistry {
  std::mutex mu;
  std::map<PublicKey, std::array<std::uint8_t, 32>> secrets
      PREDIS_GUARDED_BY(mu);

  static KeyRegistry& instance() {
    static KeyRegistry reg;
    return reg;
  }
};

Signature mac(const std::array<std::uint8_t, 32>& secret, BytesView message) {
  Sha256 first;
  first.update(BytesView{secret.data(), secret.size()});
  first.update(message);
  const Hash32 h1 = first.digest();

  Sha256 second;
  second.update(BytesView{h1.data(), h1.size()});
  second.update(BytesView{secret.data(), secret.size()});
  const Hash32 h2 = second.digest();

  Signature sig;
  std::memcpy(sig.data(), h1.data(), 32);
  std::memcpy(sig.data() + 32, h2.data(), 32);
  return sig;
}

}  // namespace

KeyPair KeyPair::from_seed(std::uint64_t seed) {
  KeyPair kp;
  // secret = SHA256("predis-key" || seed_le)
  Sha256 ctx;
  const char tag[] = "predis-key";
  ctx.update(as_bytes(std::string(tag)));
  std::uint8_t seed_le[8];
  for (int i = 0; i < 8; ++i) {
    seed_le[i] = static_cast<std::uint8_t>(seed >> (8 * i));
  }
  ctx.update(BytesView{seed_le, 8});
  const Hash32 secret = ctx.digest();
  std::memcpy(kp.secret_.data(), secret.data(), 32);

  const Hash32 pub = Sha256::hash(BytesView{secret.data(), secret.size()});
  std::memcpy(kp.public_key_.data(), pub.data(), 32);

  auto& reg = KeyRegistry::instance();
  std::lock_guard<std::mutex> lock(reg.mu);
  reg.secrets[kp.public_key_] = kp.secret_;
  return kp;
}

Signature KeyPair::sign(BytesView message) const {
  return mac(secret_, message);
}

bool verify(const PublicKey& public_key, BytesView message,
            const Signature& signature) {
  std::array<std::uint8_t, 32> secret;
  {
    auto& reg = KeyRegistry::instance();
    std::lock_guard<std::mutex> lock(reg.mu);
    const auto it = reg.secrets.find(public_key);
    if (it == reg.secrets.end()) return false;
    secret = it->second;
  }
  return mac(secret, message) == signature;
}

std::size_t verify_batch(const SigCheck* items, std::size_t count,
                         bool* ok) {
  // Resolve every secret under one lock, then recompute the MACs
  // outside it so concurrent verifiers aren't serialized on the
  // registry mutex for the hashing work.
  std::vector<std::optional<std::array<std::uint8_t, 32>>> secrets(count);
  {
    auto& reg = KeyRegistry::instance();
    std::lock_guard<std::mutex> lock(reg.mu);
    for (std::size_t i = 0; i < count; ++i) {
      const auto it = reg.secrets.find(*items[i].key);
      if (it != reg.secrets.end()) secrets[i] = it->second;
    }
  }
  std::size_t passed = 0;
  for (std::size_t i = 0; i < count; ++i) {
    ok[i] = secrets[i].has_value() &&
            mac(*secrets[i], items[i].message) == *items[i].signature;
    if (ok[i]) ++passed;
  }
  return passed;
}

}  // namespace predis
