// SHA-NI SHA-256 kernel: the only translation unit compiled with
// -msha -msse4.1 (see src/common/CMakeLists.txt), selected at runtime
// via __builtin_cpu_supports. The x86 SHA extensions evaluate four
// rounds per sha256rnds2 pair and fold the message schedule into
// sha256msg1/sha256msg2, which is where the single-stream speedup
// comes from.
//
// Register layout follows the standard packing for these
// instructions: the eight state words live in two xmm registers as
// ABEF / CDGH, converted from and back to the linear ABCD EFGH layout
// at entry and exit.
#if defined(PREDIS_HAVE_SHA_NI)

#include <immintrin.h>

#include <cstddef>
#include <cstdint>
#include <cstring>

#include "common/sha256.hpp"

namespace predis::sha256_kernels::detail {

namespace {

alignas(16) constexpr std::uint32_t kRound[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

inline __m128i k4(int i) {
  return _mm_load_si128(reinterpret_cast<const __m128i*>(&kRound[i]));
}

}  // namespace

bool sha_ni_supported() {
  return __builtin_cpu_supports("sha") && __builtin_cpu_supports("sse4.1");
}

void compress_sha_ni(std::uint32_t* state, const std::uint8_t* data,
                     std::size_t blocks) {
  // Big-endian word loads: byte shuffle mask for _mm_shuffle_epi8.
  const __m128i kShuf =
      _mm_set_epi64x(0x0c0d0e0f08090a0bULL, 0x0405060700010203ULL);

  __m128i tmp =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(&state[0]));
  __m128i state1 =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(&state[4]));
  tmp = _mm_shuffle_epi32(tmp, 0xB1);        // CDAB
  state1 = _mm_shuffle_epi32(state1, 0x1B);  // EFGH
  __m128i state0 = _mm_alignr_epi8(tmp, state1, 8);  // ABEF
  state1 = _mm_blend_epi16(state1, tmp, 0xF0);       // CDGH

  while (blocks-- > 0) {
    const __m128i abef_save = state0;
    const __m128i cdgh_save = state1;
    __m128i msg, sched;

    __m128i msg0 = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 0)), kShuf);
    __m128i msg1 = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 16)), kShuf);
    __m128i msg2 = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 32)), kShuf);
    __m128i msg3 = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 48)), kShuf);

    // Rounds 0-3, 4-7, 8-11: schedule words come straight from the
    // message; msg1 folding starts as soon as two words exist.
    msg = _mm_add_epi32(msg0, k4(0));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    state0 =
        _mm_sha256rnds2_epu32(state0, state1, _mm_shuffle_epi32(msg, 0x0E));

    msg = _mm_add_epi32(msg1, k4(4));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    state0 =
        _mm_sha256rnds2_epu32(state0, state1, _mm_shuffle_epi32(msg, 0x0E));
    msg0 = _mm_sha256msg1_epu32(msg0, msg1);

    msg = _mm_add_epi32(msg2, k4(8));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    state0 =
        _mm_sha256rnds2_epu32(state0, state1, _mm_shuffle_epi32(msg, 0x0E));
    msg1 = _mm_sha256msg1_epu32(msg1, msg2);

// Four rounds with full schedule expansion: mc carries W[i..i+3], mn
// accumulates W[i+4..i+7], mp (holding W[i-4..i-1]) both feeds the
// alignr shift and starts its own msg1 fold for the round after next.
#define PREDIS_SHA_STEP(mc, mn, mp, i)                                       \
  msg = _mm_add_epi32(mc, k4(i));                                            \
  state1 = _mm_sha256rnds2_epu32(state1, state0, msg);                       \
  sched = _mm_alignr_epi8(mc, mp, 4);                                        \
  mn = _mm_add_epi32(mn, sched);                                             \
  mn = _mm_sha256msg2_epu32(mn, mc);                                         \
  state0 =                                                                   \
      _mm_sha256rnds2_epu32(state0, state1, _mm_shuffle_epi32(msg, 0x0E));   \
  mp = _mm_sha256msg1_epu32(mp, mc)

// Same, for the last schedule expansions where no further msg1 fold
// is needed.
#define PREDIS_SHA_STEP_TAIL(mc, mn, mp, i)                                  \
  msg = _mm_add_epi32(mc, k4(i));                                            \
  state1 = _mm_sha256rnds2_epu32(state1, state0, msg);                       \
  sched = _mm_alignr_epi8(mc, mp, 4);                                        \
  mn = _mm_add_epi32(mn, sched);                                             \
  mn = _mm_sha256msg2_epu32(mn, mc);                                         \
  state0 =                                                                   \
      _mm_sha256rnds2_epu32(state0, state1, _mm_shuffle_epi32(msg, 0x0E))

    PREDIS_SHA_STEP(msg3, msg0, msg2, 12);
    PREDIS_SHA_STEP(msg0, msg1, msg3, 16);
    PREDIS_SHA_STEP(msg1, msg2, msg0, 20);
    PREDIS_SHA_STEP(msg2, msg3, msg1, 24);
    PREDIS_SHA_STEP(msg3, msg0, msg2, 28);
    PREDIS_SHA_STEP(msg0, msg1, msg3, 32);
    PREDIS_SHA_STEP(msg1, msg2, msg0, 36);
    PREDIS_SHA_STEP(msg2, msg3, msg1, 40);
    PREDIS_SHA_STEP(msg3, msg0, msg2, 44);
    // Round 48 still folds msg1 (msg3's partials feed W60-63 at round
    // 56); only the last two expansions have no downstream consumer.
    PREDIS_SHA_STEP(msg0, msg1, msg3, 48);
    PREDIS_SHA_STEP_TAIL(msg1, msg2, msg0, 52);
    PREDIS_SHA_STEP_TAIL(msg2, msg3, msg1, 56);

#undef PREDIS_SHA_STEP
#undef PREDIS_SHA_STEP_TAIL

    // Rounds 60-63: schedule complete.
    msg = _mm_add_epi32(msg3, k4(60));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    state0 =
        _mm_sha256rnds2_epu32(state0, state1, _mm_shuffle_epi32(msg, 0x0E));

    state0 = _mm_add_epi32(state0, abef_save);
    state1 = _mm_add_epi32(state1, cdgh_save);
    data += 64;
  }

  tmp = _mm_shuffle_epi32(state0, 0x1B);     // FEBA
  state1 = _mm_shuffle_epi32(state1, 0xB1);  // DCHG
  state0 = _mm_blend_epi16(tmp, state1, 0xF0);  // DCBA
  state1 = _mm_alignr_epi8(state1, tmp, 8);     // HGFE
  _mm_storeu_si128(reinterpret_cast<__m128i*>(&state[0]), state0);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(&state[4]), state1);
}

void hash_pairs_sha_ni(const std::uint8_t* msgs, std::size_t count,
                       Hash32* out) {
  // Message block + the constant padding block (0x80, zeros, bit
  // length 512) back to back, so each pair is one two-block compress
  // without repacking state in between.
  alignas(16) std::uint8_t buf[128];
  std::memset(buf + 64, 0, 64);
  buf[64] = 0x80;
  buf[126] = 0x02;

  constexpr std::uint32_t kInit[8] = {0x6a09e667, 0xbb67ae85, 0x3c6ef372,
                                      0xa54ff53a, 0x510e527f, 0x9b05688c,
                                      0x1f83d9ab, 0x5be0cd19};
  for (std::size_t i = 0; i < count; ++i) {
    std::uint32_t st[8];
    std::memcpy(st, kInit, sizeof(st));
    std::memcpy(buf, msgs + i * 64, 64);
    compress_sha_ni(st, buf, 2);
    for (int j = 0; j < 8; ++j) {
      out[i][j * 4 + 0] = static_cast<std::uint8_t>(st[j] >> 24);
      out[i][j * 4 + 1] = static_cast<std::uint8_t>(st[j] >> 16);
      out[i][j * 4 + 2] = static_cast<std::uint8_t>(st[j] >> 8);
      out[i][j * 4 + 3] = static_cast<std::uint8_t>(st[j]);
    }
  }
}

}  // namespace predis::sha256_kernels::detail

#endif  // PREDIS_HAVE_SHA_NI
