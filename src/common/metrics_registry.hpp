// Structured per-node metrics: named counters, gauges and HDR-style
// latency histograms with p50/p95/p99, registered by name so experiment
// drivers and tools can export every metric a run produced without
// knowing in advance which modules recorded what.
//
// Histograms bucket values log-linearly (HDR layout: 32 sub-buckets per
// octave, <= ~1.6 % relative error) so recording stays O(1) and
// bounded-memory at any sample volume; the scalar summary side reuses
// the stats.hpp accumulator, and the unit tests validate the bucketed
// percentiles against the exact stats.hpp Percentiles machinery.
//
// Everything iterates in name order and exports deterministically, so a
// registry digest is a seed-reproducibility check (swarm harness).
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "common/sha256.hpp"
#include "common/stats.hpp"

namespace predis {

class Counter {
 public:
  void inc(std::uint64_t n = 1) { value_ += n; }
  std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

class Gauge {
 public:
  void set(double v) { value_ = v; }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

/// Log-linear latency histogram over milliseconds. Values are bucketed
/// at microsecond granularity: exact below 32 us, then 32 sub-buckets
/// per power of two, like HDR histograms. The bucket index range is
/// explicitly capped (values past ~2^44 us collapse into a terminal
/// overflow bucket) and the histogram additionally keeps the k largest
/// raw samples exactly, so a handful of extreme-tail stragglers are
/// reported at full precision instead of hiding behind a bucketed p99.
class LatencyHistogram {
 public:
  /// Exact top-k samples retained alongside the buckets.
  static constexpr std::size_t kTopK = 8;

  void record(double ms);

  std::size_t count() const { return summary_.count(); }
  double mean() const { return summary_.mean(); }
  double min() const { return summary_.min(); }
  double max() const { return summary_.max(); }

  /// p in [0, 100]: nearest-rank over the bucket counts, reported at
  /// the bucket midpoint and clamped to the observed [min, max]. The
  /// extreme tail (ranks inside the retained top-k) is answered from
  /// the exact samples, so p100 == max() exactly.
  double percentile(double p) const;

  /// The largest recorded samples, descending, at most kTopK of them.
  const std::vector<double>& top() const { return top_; }

  /// Deterministic content feed for registry digests.
  void encode(class Writer& w) const;

 private:
  static std::size_t bucket_of(std::uint64_t us);
  static std::uint64_t bucket_mid_us(std::size_t bucket);

  Summary summary_;
  std::map<std::size_t, std::uint64_t> buckets_;  ///< bucket -> count
  std::vector<double> top_;                       ///< Descending, <= kTopK.
};

/// Name-addressed metric store. Lookups create on first use; references
/// stay valid for the registry's lifetime (node-local hot paths cache
/// them).
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name) { return counters_[name]; }
  Gauge& gauge(const std::string& name) { return gauges_[name]; }
  LatencyHistogram& histogram(const std::string& name) {
    return histograms_[name];
  }

  const std::map<std::string, Counter>& counters() const { return counters_; }
  const std::map<std::string, Gauge>& gauges() const { return gauges_; }
  const std::map<std::string, LatencyHistogram>& histograms() const {
    return histograms_;
  }

  /// Machine-readable export: counters/gauges as scalars, histograms as
  /// {count, mean, min, max, p50, p95, p99} objects. Key order is name
  /// order, so equal registries serialize byte-identically.
  std::string to_json() const;

  /// SHA-256 over the deterministic binary encoding of every metric.
  Hash32 digest() const;

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, LatencyHistogram> histograms_;
};

}  // namespace predis
