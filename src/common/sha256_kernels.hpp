// Runtime-dispatched SHA-256 compression kernels.
//
// Mirrors the GF(2^8) SSSE3 seam in src/erasure: each vector kernel
// lives in its own translation unit compiled with only that kernel's
// -m flags (so no other code can emit those instructions), CMake gates
// each TU behind a compiler check + option, and the dispatcher picks
// the best kernel the CPU reports at runtime. Every kernel is
// bit-exact with the portable one — tests enforce this, and CI runs
// the hash/Merkle test labels once per forced kernel.
//
// Three kernels:
//  * portable — the from-scratch FIPS 180-4 rounds (always built);
//  * sha_ni   — single-stream SHA-NI (x86 SHA extensions), ~5-10x;
//  * avx2     — 8-way multi-buffer for batches of independent 64-byte
//               messages (Merkle inner levels); single-stream calls
//               fall back to portable under this kernel.
//
// Selection: best available (sha_ni > avx2 > portable), overridable
// with the PREDIS_SHA256_FORCE_KERNEL environment variable
// ("portable" | "sha_ni" | "avx2"; unavailable names fall back to
// portable so forced CI legs pass on any machine) or force() below.
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/sha256.hpp"

namespace predis::sha256_kernels {

enum class Kernel { kPortable = 0, kShaNi = 1, kAvx2 = 2 };

/// Single-stream compression: folds `blocks` consecutive 64-byte
/// message blocks into `state` (8 words, host order).
using CompressFn = void (*)(std::uint32_t* state, const std::uint8_t* data,
                            std::size_t blocks);

/// Batch hash of independent 64-byte messages: out[i] = SHA-256 of the
/// 64 bytes at msgs + 64*i. This is the Merkle inner-node shape (two
/// concatenated digests), where the multi-buffer kernel earns its keep.
/// `out` may alias the front of `msgs` (out[i] is written only after
/// message i is read), which is what the in-place level-halving Merkle
/// builder relies on.
using PairBatchFn = void (*)(const std::uint8_t* msgs, std::size_t count,
                             Hash32* out);

/// Human-readable kernel name ("portable", "sha_ni", "avx2").
const char* name(Kernel k);

/// Whether `k` was compiled in AND the CPU supports it at runtime.
bool available(Kernel k);

/// The kernel current dispatch resolves to. Resolved once on first
/// use (environment override, then best available).
Kernel active();

/// Force a kernel (tests / benches). Returns false and leaves the
/// active kernel unchanged when `k` is unavailable.
bool force(Kernel k);

/// Resolved entry points for the active kernel.
CompressFn compress();
PairBatchFn hash_pairs();

/// Entry points for an explicit kernel — cross-kernel bit-exactness
/// tests and benchmark sweeps. Unavailable kernels resolve to the
/// portable functions.
CompressFn compress(Kernel k);
PairBatchFn hash_pairs(Kernel k);

namespace detail {
/// The portable kernels, always present (remainder path for the
/// multi-buffer kernel, fallback for everything else).
void compress_portable(std::uint32_t* state, const std::uint8_t* data,
                       std::size_t blocks);
void hash_pairs_portable(const std::uint8_t* msgs, std::size_t count,
                         Hash32* out);
}  // namespace detail

}  // namespace predis::sha256_kernels
