// Streaming statistics used by the metrics layer and benches:
// a simple accumulating summary plus exact-percentile sample sets.
#pragma once

#include <algorithm>
#include <cstddef>
#include <vector>

namespace predis {

/// Online mean/min/max/count accumulator.
class Summary {
 public:
  void add(double v) {
    if (count_ == 0 || v < min_) min_ = v;
    if (count_ == 0 || v > max_) max_ = v;
    sum_ += v;
    ++count_;
  }

  std::size_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const { return count_ ? sum_ / static_cast<double>(count_) : 0.0; }
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }

 private:
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  std::size_t count_ = 0;
};

/// Stores every sample; computes exact percentiles on demand. Fine for
/// the sample volumes our simulations produce (≤ millions).
class Percentiles {
 public:
  void add(double v) { samples_.push_back(v); }

  std::size_t count() const { return samples_.size(); }

  double mean() const {
    if (samples_.empty()) return 0.0;
    double s = 0.0;
    for (double v : samples_) s += v;
    return s / static_cast<double>(samples_.size());
  }

  /// p in [0, 100]. Nearest-rank on a sorted copy.
  double percentile(double p) const {
    if (samples_.empty()) return 0.0;
    std::vector<double> sorted = samples_;
    std::sort(sorted.begin(), sorted.end());
    const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
  }

  double median() const { return percentile(50.0); }

  const std::vector<double>& samples() const { return samples_; }

 private:
  std::vector<double> samples_;
};

}  // namespace predis
