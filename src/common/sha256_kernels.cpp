// Portable SHA-256 kernels and the runtime dispatcher. The vector
// kernels live in sha256_sha_ni.cpp / sha256_avx2.cpp (each the only
// TU built with its -m flags); this file owns selection: compiled-in
// check, __builtin_cpu_supports probe, PREDIS_SHA256_FORCE_KERNEL
// override, and the resolved function-pointer tables.
#include "common/sha256_kernels.hpp"

#include <cstdlib>
#include <cstring>

namespace predis::sha256_kernels {

namespace detail {
#if defined(PREDIS_HAVE_SHA_NI)
bool sha_ni_supported();
void compress_sha_ni(std::uint32_t* state, const std::uint8_t* data,
                     std::size_t blocks);
void hash_pairs_sha_ni(const std::uint8_t* msgs, std::size_t count,
                       Hash32* out);
#endif
#if defined(PREDIS_HAVE_AVX2)
bool avx2_supported();
void hash_pairs_avx2(const std::uint8_t* msgs, std::size_t count,
                     Hash32* out);
#endif
}  // namespace detail

namespace {

constexpr std::uint32_t kInit[8] = {0x6a09e667, 0xbb67ae85, 0x3c6ef372,
                                    0xa54ff53a, 0x510e527f, 0x9b05688c,
                                    0x1f83d9ab, 0x5be0cd19};

constexpr std::uint32_t kRound[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

constexpr std::uint32_t rotr32(std::uint32_t x, int n) {
  return (x >> n) | (x << (32 - n));
}

// The constant second block of every 64-byte message: 0x80 terminator,
// zeros, then the 64-bit big-endian bit length (512 = 0x0200).
struct PadBlock {
  std::uint8_t b[64];
  PadBlock() {
    std::memset(b, 0, sizeof(b));
    b[0] = 0x80;
    b[62] = 0x02;
  }
};
const PadBlock kPadBlock;

void store_be32(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v >> 24);
  p[1] = static_cast<std::uint8_t>(v >> 16);
  p[2] = static_cast<std::uint8_t>(v >> 8);
  p[3] = static_cast<std::uint8_t>(v);
}

}  // namespace

namespace detail {

void compress_portable(std::uint32_t* state, const std::uint8_t* data,
                       std::size_t blocks) {
  while (blocks-- > 0) {
    std::uint32_t w[64];
    for (int i = 0; i < 16; ++i) {
      w[i] = (static_cast<std::uint32_t>(data[i * 4]) << 24) |
             (static_cast<std::uint32_t>(data[i * 4 + 1]) << 16) |
             (static_cast<std::uint32_t>(data[i * 4 + 2]) << 8) |
             static_cast<std::uint32_t>(data[i * 4 + 3]);
    }
    for (int i = 16; i < 64; ++i) {
      const std::uint32_t s0 =
          rotr32(w[i - 15], 7) ^ rotr32(w[i - 15], 18) ^ (w[i - 15] >> 3);
      const std::uint32_t s1 =
          rotr32(w[i - 2], 17) ^ rotr32(w[i - 2], 19) ^ (w[i - 2] >> 10);
      w[i] = w[i - 16] + s0 + w[i - 7] + s1;
    }

    std::uint32_t a = state[0], b = state[1], c = state[2], d = state[3];
    std::uint32_t e = state[4], f = state[5], g = state[6], h = state[7];
    for (int i = 0; i < 64; ++i) {
      const std::uint32_t s1 = rotr32(e, 6) ^ rotr32(e, 11) ^ rotr32(e, 25);
      const std::uint32_t ch = (e & f) ^ (~e & g);
      const std::uint32_t temp1 = h + s1 + ch + kRound[i] + w[i];
      const std::uint32_t s0 = rotr32(a, 2) ^ rotr32(a, 13) ^ rotr32(a, 22);
      const std::uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
      const std::uint32_t temp2 = s0 + maj;
      h = g;
      g = f;
      f = e;
      e = d + temp1;
      d = c;
      c = b;
      b = a;
      a = temp1 + temp2;
    }
    state[0] += a;
    state[1] += b;
    state[2] += c;
    state[3] += d;
    state[4] += e;
    state[5] += f;
    state[6] += g;
    state[7] += h;
    data += 64;
  }
}

void hash_pairs_portable(const std::uint8_t* msgs, std::size_t count,
                         Hash32* out) {
  for (std::size_t i = 0; i < count; ++i) {
    std::uint32_t st[8];
    std::memcpy(st, kInit, sizeof(st));
    compress_portable(st, msgs + i * 64, 1);
    compress_portable(st, kPadBlock.b, 1);
    for (int j = 0; j < 8; ++j) store_be32(out[i].data() + j * 4, st[j]);
  }
}

}  // namespace detail

namespace {

struct KernelFns {
  CompressFn compress;
  PairBatchFn hash_pairs;
};

KernelFns fns_for(Kernel k) {
  switch (k) {
#if defined(PREDIS_HAVE_SHA_NI)
    case Kernel::kShaNi:
      if (detail::sha_ni_supported()) {
        return {&detail::compress_sha_ni, &detail::hash_pairs_sha_ni};
      }
      break;
#endif
#if defined(PREDIS_HAVE_AVX2)
    case Kernel::kAvx2:
      // No single-stream AVX2 kernel: multi-buffer parallelism needs
      // independent messages, so compress() stays portable here.
      if (detail::avx2_supported()) {
        return {&detail::compress_portable, &detail::hash_pairs_avx2};
      }
      break;
#endif
    default:
      break;
  }
  return {&detail::compress_portable, &detail::hash_pairs_portable};
}

Kernel parse_name(const char* s) {
  if (std::strcmp(s, "sha_ni") == 0) return Kernel::kShaNi;
  if (std::strcmp(s, "avx2") == 0) return Kernel::kAvx2;
  return Kernel::kPortable;
}

Kernel resolve_default() {
  if (const char* env = std::getenv("PREDIS_SHA256_FORCE_KERNEL")) {
    const Kernel forced = parse_name(env);
    return available(forced) ? forced : Kernel::kPortable;
  }
  if (available(Kernel::kShaNi)) return Kernel::kShaNi;
  if (available(Kernel::kAvx2)) return Kernel::kAvx2;
  return Kernel::kPortable;
}

struct Dispatch {
  Kernel kernel;
  KernelFns fns;
  Dispatch() : kernel(resolve_default()), fns(fns_for(kernel)) {}
};

Dispatch& dispatch() {
  static Dispatch d;
  return d;
}

}  // namespace

const char* name(Kernel k) {
  switch (k) {
    case Kernel::kShaNi:
      return "sha_ni";
    case Kernel::kAvx2:
      return "avx2";
    default:
      return "portable";
  }
}

bool available(Kernel k) {
  switch (k) {
    case Kernel::kPortable:
      return true;
    case Kernel::kShaNi:
#if defined(PREDIS_HAVE_SHA_NI)
      return detail::sha_ni_supported();
#else
      return false;
#endif
    case Kernel::kAvx2:
#if defined(PREDIS_HAVE_AVX2)
      return detail::avx2_supported();
#else
      return false;
#endif
  }
  return false;
}

Kernel active() { return dispatch().kernel; }

bool force(Kernel k) {
  if (!available(k)) return false;
  Dispatch& d = dispatch();
  d.kernel = k;
  d.fns = fns_for(k);
  return true;
}

CompressFn compress() { return dispatch().fns.compress; }
PairBatchFn hash_pairs() { return dispatch().fns.hash_pairs; }

CompressFn compress(Kernel k) { return fns_for(k).compress; }
PairBatchFn hash_pairs(Kernel k) { return fns_for(k).hash_pairs; }

}  // namespace predis::sha256_kernels
