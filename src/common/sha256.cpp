#include "common/sha256.hpp"

#include <algorithm>
#include <cstring>

#include "common/sha256_kernels.hpp"

// The compression rounds themselves live in sha256_kernels.cpp (and
// the SHA-NI / AVX2 translation units it dispatches to); this file
// keeps the streaming context — buffering, padding, finalization —
// which is kernel-independent.

namespace predis {

Sha256::Sha256()
    : state_{0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
             0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19} {}

void Sha256::update(BytesView data) {
  const sha256_kernels::CompressFn compress = sha256_kernels::compress();
  bit_length_ += static_cast<std::uint64_t>(data.size()) * 8;
  std::size_t offset = 0;

  if (buffer_len_ > 0) {
    const std::size_t take = std::min(data.size(), 64 - buffer_len_);
    std::memcpy(buffer_.data() + buffer_len_, data.data(), take);
    buffer_len_ += take;
    offset = take;
    if (buffer_len_ == 64) {
      compress(state_.data(), buffer_.data(), 1);
      buffer_len_ = 0;
    }
  }

  // Whole blocks go to the kernel in one call so a multi-block run is
  // a single dispatch, not a per-block loop here.
  const std::size_t whole = (data.size() - offset) / 64;
  if (whole > 0) {
    compress(state_.data(), data.data() + offset, whole);
    offset += whole * 64;
  }

  if (offset < data.size()) {
    std::memcpy(buffer_.data(), data.data() + offset, data.size() - offset);
    buffer_len_ = data.size() - offset;
  }
}

Hash32 Sha256::digest() {
  // Append 0x80, pad with zeros, append 64-bit big-endian bit length.
  std::uint8_t pad[72] = {0x80};
  const std::size_t rem = buffer_len_;
  const std::size_t pad_len = (rem < 56) ? (56 - rem) : (120 - rem);
  std::uint8_t len_bytes[8];
  for (int i = 0; i < 8; ++i) {
    len_bytes[i] = static_cast<std::uint8_t>(bit_length_ >> (56 - 8 * i));
  }
  update(BytesView{pad, pad_len});
  update(BytesView{len_bytes, 8});

  Hash32 out;
  for (int i = 0; i < 8; ++i) {
    out[i * 4] = static_cast<std::uint8_t>(state_[i] >> 24);
    out[i * 4 + 1] = static_cast<std::uint8_t>(state_[i] >> 16);
    out[i * 4 + 2] = static_cast<std::uint8_t>(state_[i] >> 8);
    out[i * 4 + 3] = static_cast<std::uint8_t>(state_[i]);
  }
  return out;
}

Hash32 Sha256::hash(BytesView data) {
  Sha256 ctx;
  ctx.update(data);
  return ctx.digest();
}

Hash32 hash_pair(const Hash32& left, const Hash32& right) {
  std::uint8_t msg[64];
  std::memcpy(msg, left.data(), 32);
  std::memcpy(msg + 32, right.data(), 32);
  Hash32 out;
  sha256_kernels::hash_pairs()(msg, 1, &out);
  return out;
}

void hash_pairs(const Hash32* pairs, std::size_t pair_count, Hash32* out) {
  static_assert(sizeof(Hash32) == 32, "Hash32 must be packed");
  sha256_kernels::hash_pairs()(
      reinterpret_cast<const std::uint8_t*>(pairs), pair_count, out);
}

std::string short_hex(const Hash32& h) {
  return to_hex(BytesView{h.data(), 4});
}

std::string to_hex(const Hash32& h) {
  return to_hex(BytesView{h.data(), h.size()});
}

}  // namespace predis
