// Minimal leveled logger. Simulations at scale generate enormous event
// volumes, so logging defaults to Warn; tests/benches flip levels locally.
#pragma once

#include <sstream>
#include <string>

namespace predis {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Global log threshold (not thread-safe by design: set it once at start).
LogLevel log_level();
void set_log_level(LogLevel level);

/// Emit one line to stderr if `level` passes the threshold.
void log_line(LogLevel level, const std::string& message);

namespace detail {
template <typename... Args>
std::string concat(Args&&... args) {
  std::ostringstream oss;
  (oss << ... << args);
  return oss.str();
}
}  // namespace detail

template <typename... Args>
void log_trace(Args&&... args) {
  if (log_level() <= LogLevel::kTrace)
    log_line(LogLevel::kTrace, detail::concat(std::forward<Args>(args)...));
}
template <typename... Args>
void log_debug(Args&&... args) {
  if (log_level() <= LogLevel::kDebug)
    log_line(LogLevel::kDebug, detail::concat(std::forward<Args>(args)...));
}
template <typename... Args>
void log_info(Args&&... args) {
  if (log_level() <= LogLevel::kInfo)
    log_line(LogLevel::kInfo, detail::concat(std::forward<Args>(args)...));
}
template <typename... Args>
void log_warn(Args&&... args) {
  if (log_level() <= LogLevel::kWarn)
    log_line(LogLevel::kWarn, detail::concat(std::forward<Args>(args)...));
}
template <typename... Args>
void log_error(Args&&... args) {
  if (log_level() <= LogLevel::kError)
    log_line(LogLevel::kError, detail::concat(std::forward<Args>(args)...));
}

}  // namespace predis
