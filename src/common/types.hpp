// Core value types shared by every module in the framework.
//
// All identifiers are strong-ish typedefs (plain integral aliases kept
// deliberately simple for serialization); simulated time is integral
// nanoseconds so the discrete-event scheduler is exact and deterministic.
#pragma once

#include <cstdint>
#include <limits>

namespace predis {

/// Identifier of a node (consensus node, relayer, ordinary full node or
/// client) inside one simulated network. Dense, assigned at construction.
using NodeId = std::uint32_t;

/// Sentinel for "no node".
inline constexpr NodeId kNoNode = std::numeric_limits<NodeId>::max();

/// Height of a bundle within one producer's bundle chain (1-based; 0 means
/// "nothing received yet" in tip lists).
using BundleHeight = std::uint64_t;

/// Height of a block in the ledger.
using BlockHeight = std::uint64_t;

/// Consensus view / round number.
using View = std::uint64_t;

/// Monotonically increasing sequence number (PBFT) or HotStuff round.
using SeqNum = std::uint64_t;

/// Client-assigned transaction sequence, unique per client.
using TxSeq = std::uint64_t;

/// Simulated time in nanoseconds since simulation start.
using SimTime = std::int64_t;

inline constexpr SimTime kSimTimeNever = std::numeric_limits<SimTime>::max();

/// Convenience constructors for simulated durations.
constexpr SimTime nanoseconds(std::int64_t v) { return v; }
constexpr SimTime microseconds(std::int64_t v) { return v * 1'000; }
constexpr SimTime milliseconds(std::int64_t v) { return v * 1'000'000; }
constexpr SimTime seconds(std::int64_t v) { return v * 1'000'000'000; }

/// Convert simulated time to floating-point seconds (for reporting only).
constexpr double to_seconds(SimTime t) { return static_cast<double>(t) / 1e9; }
constexpr double to_milliseconds(SimTime t) {
  return static_cast<double>(t) / 1e6;
}

}  // namespace predis
