// Static-analysis annotations consumed by predis-lint (tools/lint).
//
// The macros expand to nothing for the compiler; predis-lint's parser
// records them in the per-file-pair symbol table and the flow rules
// (D7 lock discipline, D8 timer lifecycle, D9 message taint) enforce
// the discipline they declare. See docs/static_analysis.md.
#pragma once

/// D7: the annotated field may only be touched while the named mutex is
/// held. Place after the declarator name:
///
///   std::deque<Item> q PREDIS_GUARDED_BY(m);
///   bool running_ PREDIS_GUARDED_BY(ready_m_) = false;
///
/// predis-lint flags any read or write of the field from a scope that
/// does not hold the mutex (lock_guard / scoped_lock / unique_lock /
/// manual lock(), with unlock()/relock tracking), and folds every
/// nested acquisition into a global lock-order graph that must stay
/// acyclic.
#define PREDIS_GUARDED_BY(mu)

/// D9: the annotated container/field stores data copied out of network
/// messages. Reads of it are treated as tainted in *every* function of
/// the file pair — not just message handlers — so a hostile value
/// laundered through member state still has to pass a kMax* clamp or
/// bounds check before it may index a container, size an allocation or
/// bound a loop:
///
///   std::map<Hash32, PendingBlock> pending_blocks_ PREDIS_MSG_DERIVED;
///
/// predis-lint demands this annotation whenever a handler stores an
/// unsanitized message-derived value into a member.
#define PREDIS_MSG_DERIVED

/// D8: explicitly discard a Runtime::schedule()/after() timer handle.
/// Use for self-re-arming tick chains whose callbacks carry their own
/// liveness guard; everything else must store the handle and cancel it
/// on teardown/restart:
///
///   PREDIS_FIRE_AND_FORGET(net_.schedule(self_, delay, [this] { ... }));
#define PREDIS_FIRE_AND_FORGET(...) static_cast<void>(__VA_ARGS__)
