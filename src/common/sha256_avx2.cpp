// AVX2 multi-buffer SHA-256 kernel: the only translation unit
// compiled with -mavx2 (see src/common/CMakeLists.txt). Unlike
// SHA-NI, AVX2 has no hash instructions — the win is width: eight
// independent 64-byte messages ride the eight 32-bit lanes of a ymm
// register through the same scalar round formulas, one message per
// lane. That is exactly the Merkle level shape (many independent
// digest pairs), so only the pair-batch entry point exists here;
// single-stream hashing under a forced avx2 kernel stays portable.
#if defined(PREDIS_HAVE_AVX2)

#include <immintrin.h>

#include <cstddef>
#include <cstdint>

#include "common/sha256.hpp"

namespace predis::sha256_kernels::detail {

void hash_pairs_portable(const std::uint8_t* msgs, std::size_t count,
                         Hash32* out);

namespace {

constexpr std::uint32_t kInit[8] = {0x6a09e667, 0xbb67ae85, 0x3c6ef372,
                                    0xa54ff53a, 0x510e527f, 0x9b05688c,
                                    0x1f83d9ab, 0x5be0cd19};

constexpr std::uint32_t kRound[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

inline __m256i rotr(__m256i x, int n) {
  return _mm256_or_si256(_mm256_srli_epi32(x, n),
                         _mm256_slli_epi32(x, 32 - n));
}

inline std::uint32_t be32(const std::uint8_t* p) {
  return (static_cast<std::uint32_t>(p[0]) << 24) |
         (static_cast<std::uint32_t>(p[1]) << 16) |
         (static_cast<std::uint32_t>(p[2]) << 8) |
         static_cast<std::uint32_t>(p[3]);
}

/// One 64-round compression over eight lanes. `w` holds the first 16
/// schedule words per lane and is expanded in place as a ring buffer;
/// `s` is the running state, updated with the feed-forward add.
void rounds8(__m256i s[8], __m256i w[16]) {
  __m256i a = s[0], b = s[1], c = s[2], d = s[3];
  __m256i e = s[4], f = s[5], g = s[6], h = s[7];

  for (int i = 0; i < 64; ++i) {
    const int j = i & 15;
    if (i >= 16) {
      const __m256i w15 = w[(j + 1) & 15];
      const __m256i w2 = w[(j + 14) & 15];
      const __m256i s0 = _mm256_xor_si256(
          _mm256_xor_si256(rotr(w15, 7), rotr(w15, 18)),
          _mm256_srli_epi32(w15, 3));
      const __m256i s1 = _mm256_xor_si256(
          _mm256_xor_si256(rotr(w2, 17), rotr(w2, 19)),
          _mm256_srli_epi32(w2, 10));
      w[j] = _mm256_add_epi32(
          _mm256_add_epi32(w[j], s0),
          _mm256_add_epi32(w[(j + 9) & 15], s1));
    }
    const __m256i big_s1 = _mm256_xor_si256(
        _mm256_xor_si256(rotr(e, 6), rotr(e, 11)), rotr(e, 25));
    const __m256i ch = _mm256_xor_si256(_mm256_and_si256(e, f),
                                        _mm256_andnot_si256(e, g));
    const __m256i t1 = _mm256_add_epi32(
        _mm256_add_epi32(_mm256_add_epi32(h, big_s1), ch),
        _mm256_add_epi32(_mm256_set1_epi32(
                             static_cast<int>(kRound[i])),
                         w[j]));
    const __m256i big_s0 = _mm256_xor_si256(
        _mm256_xor_si256(rotr(a, 2), rotr(a, 13)), rotr(a, 22));
    // maj(a,b,c) == (a & b) | (c & (a | b))
    const __m256i maj = _mm256_or_si256(
        _mm256_and_si256(a, b),
        _mm256_and_si256(c, _mm256_or_si256(a, b)));
    const __m256i t2 = _mm256_add_epi32(big_s0, maj);
    h = g;
    g = f;
    f = e;
    e = _mm256_add_epi32(d, t1);
    d = c;
    c = b;
    b = a;
    a = _mm256_add_epi32(t1, t2);
  }

  s[0] = _mm256_add_epi32(s[0], a);
  s[1] = _mm256_add_epi32(s[1], b);
  s[2] = _mm256_add_epi32(s[2], c);
  s[3] = _mm256_add_epi32(s[3], d);
  s[4] = _mm256_add_epi32(s[4], e);
  s[5] = _mm256_add_epi32(s[5], f);
  s[6] = _mm256_add_epi32(s[6], g);
  s[7] = _mm256_add_epi32(s[7], h);
}

}  // namespace

bool avx2_supported() { return __builtin_cpu_supports("avx2"); }

void hash_pairs_avx2(const std::uint8_t* msgs, std::size_t count,
                     Hash32* out) {
  std::size_t i = 0;
  for (; i + 8 <= count; i += 8) {
    const std::uint8_t* base = msgs + i * 64;

    __m256i s[8];
    for (int j = 0; j < 8; ++j) {
      s[j] = _mm256_set1_epi32(static_cast<int>(kInit[j]));
    }

    // Transpose: word t of messages 0..7 into the lanes of w[t].
    __m256i w[16];
    for (int t = 0; t < 16; ++t) {
      w[t] = _mm256_set_epi32(static_cast<int>(be32(base + 7 * 64 + 4 * t)),
                              static_cast<int>(be32(base + 6 * 64 + 4 * t)),
                              static_cast<int>(be32(base + 5 * 64 + 4 * t)),
                              static_cast<int>(be32(base + 4 * 64 + 4 * t)),
                              static_cast<int>(be32(base + 3 * 64 + 4 * t)),
                              static_cast<int>(be32(base + 2 * 64 + 4 * t)),
                              static_cast<int>(be32(base + 1 * 64 + 4 * t)),
                              static_cast<int>(be32(base + 0 * 64 + 4 * t)));
    }
    rounds8(s, w);

    // Second block: the padding constants, identical in every lane
    // (0x80 terminator then bit length 512).
    w[0] = _mm256_set1_epi32(static_cast<int>(0x80000000u));
    for (int t = 1; t < 15; ++t) w[t] = _mm256_setzero_si256();
    w[15] = _mm256_set1_epi32(512);
    rounds8(s, w);

    // Lane l of s[j] is word j of digest l; write big-endian. These
    // stores happen only after all eight messages were read, so `out`
    // aliasing the front of `msgs` (the in-place Merkle halving) is
    // safe.
    alignas(32) std::uint32_t lanes[8][8];
    for (int j = 0; j < 8; ++j) {
      _mm256_store_si256(reinterpret_cast<__m256i*>(lanes[j]), s[j]);
    }
    for (int l = 0; l < 8; ++l) {
      for (int j = 0; j < 8; ++j) {
        const std::uint32_t v = lanes[j][l];
        out[i + l][j * 4 + 0] = static_cast<std::uint8_t>(v >> 24);
        out[i + l][j * 4 + 1] = static_cast<std::uint8_t>(v >> 16);
        out[i + l][j * 4 + 2] = static_cast<std::uint8_t>(v >> 8);
        out[i + l][j * 4 + 3] = static_cast<std::uint8_t>(v);
      }
    }
  }
  if (i < count) hash_pairs_portable(msgs + i * 64, count - i, out + i);
}

}  // namespace predis::sha256_kernels::detail

#endif  // PREDIS_HAVE_AVX2
