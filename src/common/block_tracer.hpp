// Causal block-lifecycle tracer: one shared instance per simulation
// timestamps every stage a transaction's bytes pass through on the way
// from a txpool to a reconstructed block at a full node —
//
//   tx enqueue -> bundle produced -> bundle stored at quorum
//      -> cut proposed -> block committed
//      -> stripes sent -> bundle decoded -> block reconstructed
//
// keyed by bundle/block hash. The first observation per (key, stage)
// wins (the simulation-global birth time of that stage); fan-out stages
// (decode, reconstruction) additionally keep one first-observation per
// node, so distribution latency is a distribution over full nodes, not
// a single point. Ban/unban and repair-pull events feed the anomaly
// detectors: stalled blocks, re-ban storms and pull spirals — the
// observable signatures of the ban-rejoin and gossip-stall bugs this
// layer was built to expose.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/sha256.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"

namespace predis {

class MetricsRegistry;

enum class TraceStage : std::uint8_t {
  kTxEnqueued = 0,       ///< Oldest client tx packed into the bundle.
  kBundleProduced,       ///< Producer signed + multicast the bundle.
  kBundleStoredQuorum,   ///< Stored by a quorum of consensus nodes.
  kCutProposed,          ///< Leader cut a block referencing it.
  kBlockCommitted,       ///< Consensus decided the block (first node).
  kStripesSent,          ///< Erasure stripes left a consensus node.
  kBundleDecoded,        ///< A full node recovered the bundle.
  kBlockReconstructed,   ///< A full node holds block + every bundle.
};
inline constexpr std::size_t kTraceStageCount = 8;

const char* to_string(TraceStage stage);

/// Hash key for trace entries identified by a small integer (gossip
/// block ids, star-topology block heights).
Hash32 trace_key(std::uint64_t id);

struct TraceAnomaly {
  enum class Kind {
    kStalledBlock,      ///< Committed but never reconstructed anywhere.
    kRebanStorm,        ///< One observer banned one producer repeatedly.
    kPullSpiral,        ///< One node pulled one block past the threshold.
    kUnclosedProposal,  ///< Cut proposed but never committed.
  };
  Kind kind = Kind::kStalledBlock;
  Hash32 key = kZeroHash;     ///< Block hash (stall / spiral).
  NodeId node = kNoNode;      ///< Observing node (storm / spiral).
  NodeId producer = kNoNode;  ///< Banned producer (storm).
  std::size_t count = 0;      ///< Ban count / pull attempts.

  std::string describe() const;
};

/// One named stage interval's latency distribution (milliseconds).
/// Percentiles are exact (computed from every sample); max_ms/top_ms
/// expose the extreme tail directly so a handful of multi-second
/// stragglers can never hide behind a healthy-looking p99.
struct TraceStageStats {
  std::string name;
  std::size_t count = 0;
  double mean_ms = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  double p999_ms = 0.0;
  double max_ms = 0.0;
  std::vector<double> top_ms;  ///< Largest samples, descending (<= 5).
};

/// One interval sample with its identity: which block/bundle, which
/// observing node (kNoNode for key-level intervals), and the bounding
/// trace timestamps. Returned by BlockTracer::top_samples so tail
/// outliers can be attributed, not just counted.
struct TraceIntervalSample {
  Hash32 key = kZeroHash;
  NodeId node = kNoNode;
  SimTime from = 0;
  SimTime to = 0;
  double ms = 0.0;
};

class BlockTracer {
 public:
  /// `store_quorum`: distinct storing nodes that flip a bundle to
  /// kBundleStoredQuorum (0 disables quorum tracking).
  explicit BlockTracer(std::size_t store_quorum = 0)
      : store_quorum_(store_quorum) {}

  /// Record one stage observation. Keeps the earliest time per
  /// (key, stage); for kBundleDecoded / kBlockReconstructed also the
  /// earliest per (key, stage, node) when `node` is given.
  void record(TraceStage stage, const Hash32& key, SimTime when,
              NodeId node = kNoNode);

  /// A consensus node stored the bundle; the `store_quorum`-th distinct
  /// node sets kBundleStoredQuorum at its store time.
  void record_store(const Hash32& bundle, SimTime when, NodeId node);

  void record_ban(NodeId observer, NodeId producer, SimTime when);
  void record_unban(NodeId observer, NodeId producer, SimTime when);
  void record_pull(const Hash32& block, NodeId node, SimTime when);

  // --- Queries ----------------------------------------------------------

  /// Earliest time the stage was observed for `key`; kSimTimeNever if
  /// never observed.
  SimTime first(TraceStage stage, const Hash32& key) const;
  bool has(TraceStage stage, const Hash32& key) const {
    return first(stage, key) != kSimTimeNever;
  }
  std::size_t ban_count(NodeId observer, NodeId producer) const;
  std::size_t pull_count(const Hash32& block, NodeId node) const;
  std::size_t entry_count() const { return entries_.size(); }

  /// Stage-ordering invariant: among the stages observed for `key`,
  /// production stages (enqueue <= produced <= {quorum, stripes,
  /// decode}) and block stages (proposed <= committed <= reconstructed)
  /// must be causally ordered.
  bool causally_ordered(const Hash32& key) const;

  // --- Aggregation ------------------------------------------------------

  /// Named interval samples derived from the trace, in milliseconds:
  ///   tx_wait            enqueue -> bundle produced
  ///   bundle_quorum      produced -> stored at quorum
  ///   stripes_sent       produced -> stripes sent
  ///   pre_distribution   produced -> decoded (one sample per node)
  ///   production         cut proposed -> committed
  ///   distribution       committed -> reconstructed (per node)
  ///   end_to_end         cut proposed -> reconstructed (per node)
  std::map<std::string, Percentiles> stage_samples() const;

  /// stage_samples() reduced to count/mean/p50/p95/p99/p999/max rows
  /// (plus the top-k raw samples per stage).
  std::vector<TraceStageStats> stage_breakdown() const;

  /// The `k` largest samples of one named interval, descending by
  /// duration, each attributed to its (key, node, timestamps).
  std::vector<TraceIntervalSample> top_samples(const std::string& stage,
                                               std::size_t k) const;

  /// Keys that reached stage `have` but never reached stage `missing` —
  /// e.g. proposed-but-never-committed entries.
  std::vector<Hash32> keys_missing(TraceStage have, TraceStage missing) const;

  /// Fold every interval sample into `registry` histograms named
  /// "stage.<interval>".
  void fold_into(MetricsRegistry& registry) const;

  struct AnomalyConfig {
    /// A committed block is stalled if unreconstructed this long after
    /// commit (only when the trace saw any reconstruction at all, or
    /// expect_reconstruction was forced).
    SimTime stall_after = seconds(3);
    std::size_t reban_threshold = 3;
    std::size_t pull_spiral_threshold = 12;
  };

  /// Force stalled-block detection even if no block ever reconstructed
  /// (by default a trace with no distribution layer is exempt).
  void expect_reconstruction(bool expect) { expect_reconstruction_ = expect; }

  std::vector<TraceAnomaly> anomalies(SimTime now,
                                      const AnomalyConfig& cfg) const;
  std::vector<TraceAnomaly> anomalies(SimTime now) const {
    return anomalies(now, AnomalyConfig{});
  }

  /// SHA-256 over the full deterministic trace content (timestamps,
  /// per-node observations, ban and pull events).
  Hash32 digest() const;

 private:
  struct Entry {
    std::array<SimTime, kTraceStageCount> first;
    std::map<NodeId, SimTime> stores;         ///< Distinct storing nodes.
    std::map<NodeId, SimTime> decoded;        ///< Per-node first decode.
    std::map<NodeId, SimTime> reconstructed;  ///< Per-node first rebuild.
    Entry() { first.fill(kSimTimeNever); }
  };

  Entry& entry(const Hash32& key) { return entries_[key]; }

  /// Visit every derived interval as (name, key, node, from, to); the
  /// single source of truth behind stage_samples() and top_samples().
  template <typename Fn>
  void for_each_interval(Fn&& fn) const;

  std::size_t store_quorum_;
  bool expect_reconstruction_ = false;
  std::map<Hash32, Entry> entries_;
  std::map<std::pair<NodeId, NodeId>, std::vector<SimTime>> bans_;
  std::map<std::pair<NodeId, NodeId>, std::size_t> unbans_;
  std::map<std::pair<Hash32, NodeId>, std::size_t> pulls_;
};

}  // namespace predis
