#include "common/merkle.hpp"

#include <stdexcept>

namespace predis {

MerkleTree::MerkleTree(std::vector<Hash32> leaves) {
  if (leaves.empty()) {
    throw std::invalid_argument("MerkleTree: empty leaf set");
  }
  levels_.push_back(std::move(leaves));
  while (levels_.back().size() > 1) {
    const auto& prev = levels_.back();
    std::vector<Hash32> next;
    next.reserve((prev.size() + 1) / 2);
    for (std::size_t i = 0; i < prev.size(); i += 2) {
      const Hash32& left = prev[i];
      const Hash32& right = (i + 1 < prev.size()) ? prev[i + 1] : prev[i];
      next.push_back(hash_pair(left, right));
    }
    levels_.push_back(std::move(next));
  }
}

MerkleProof MerkleTree::prove(std::size_t index) const {
  MerkleProof proof;
  prove_into(index, proof);
  return proof;
}

void MerkleTree::prove_into(std::size_t index, MerkleProof& out) const {
  if (index >= leaf_count()) {
    throw std::out_of_range("MerkleTree::prove: index out of range");
  }
  out.leaf_index = index;
  out.siblings.clear();
  std::size_t i = index;
  for (std::size_t level = 0; level + 1 < levels_.size(); ++level) {
    const auto& nodes = levels_[level];
    const std::size_t sibling = (i % 2 == 0) ? i + 1 : i - 1;
    out.siblings.push_back(sibling < nodes.size() ? nodes[sibling]
                                                  : nodes[i]);
    i /= 2;
  }
}

Hash32 MerkleTree::root_of(const std::vector<Hash32>& leaves) {
  return MerkleTree(leaves).root();
}

bool MerkleTree::verify(const Hash32& root, const Hash32& leaf,
                        const MerkleProof& proof) {
  Hash32 acc = leaf;
  std::size_t i = proof.leaf_index;
  for (const Hash32& sibling : proof.siblings) {
    acc = (i % 2 == 0) ? hash_pair(acc, sibling) : hash_pair(sibling, acc);
    i /= 2;
  }
  return acc == root;
}

}  // namespace predis
