#include "common/merkle.hpp"

#include <stdexcept>

namespace predis {

namespace {

/// Level width after materializing the Bitcoin-style duplicate (only
/// levels above width 1 are padded; the root level stays single).
constexpr std::size_t padded(std::size_t width) {
  return width > 1 && width % 2 != 0 ? width + 1 : width;
}

}  // namespace

MerkleTree::MerkleTree(std::vector<Hash32> leaves) {
  if (leaves.empty()) {
    throw std::invalid_argument("MerkleTree: empty leaf set");
  }
  leaf_count_ = leaves.size();

  // Size the whole arena up front: one allocation for every level.
  std::size_t total = 0;
  for (std::size_t w = leaf_count_;; w = padded(w) / 2) {
    offset_.push_back(total);
    total += padded(w);
    if (w == 1) break;
  }
  nodes_.resize(total);
  std::copy(leaves.begin(), leaves.end(), nodes_.begin());

  std::size_t w = leaf_count_;
  for (std::size_t level = 0; w > 1; ++level) {
    const std::size_t base = offset_[level];
    if (w % 2 != 0) nodes_[base + w] = nodes_[base + w - 1];
    const std::size_t next_w = padded(w) / 2;
    hash_pairs(&nodes_[base], next_w, &nodes_[offset_[level + 1]]);
    w = next_w;
  }
}

MerkleProof MerkleTree::prove(std::size_t index) const {
  MerkleProof proof;
  prove_into(index, proof);
  return proof;
}

void MerkleTree::prove_into(std::size_t index, MerkleProof& out) const {
  if (index >= leaf_count()) {
    throw std::out_of_range("MerkleTree::prove: index out of range");
  }
  out.leaf_index = index;
  out.siblings.clear();
  std::size_t i = index;
  for (std::size_t level = 0; level + 1 < offset_.size(); ++level) {
    // The duplicate node is materialized, so the sibling slot always
    // exists inside the padded level.
    out.siblings.push_back(nodes_[offset_[level] + (i ^ 1)]);
    i /= 2;
  }
}

Hash32 MerkleTree::root_of(const std::vector<Hash32>& leaves) {
  if (leaves.empty()) {
    throw std::invalid_argument("MerkleTree: empty leaf set");
  }
  if (leaves.size() == 1) return leaves.front();
  // In-place level halving inside a reused scratch buffer: out[i] of
  // the pair batch lands at or before pair i, which hash_pairs()
  // explicitly permits.
  thread_local std::vector<Hash32> scratch;
  scratch.resize(padded(leaves.size()));
  std::copy(leaves.begin(), leaves.end(), scratch.begin());
  std::size_t w = leaves.size();
  while (w > 1) {
    if (w % 2 != 0) scratch[w] = scratch[w - 1];
    const std::size_t next_w = padded(w) / 2;
    hash_pairs(scratch.data(), next_w, scratch.data());
    w = next_w;
  }
  return scratch.front();
}

bool MerkleTree::verify(const Hash32& root, const Hash32& leaf,
                        const MerkleProof& proof) {
  Hash32 acc = leaf;
  std::size_t i = proof.leaf_index;
  for (const Hash32& sibling : proof.siblings) {
    acc = (i % 2 == 0) ? hash_pair(acc, sibling) : hash_pair(sibling, acc);
    i /= 2;
  }
  return acc == root;
}

}  // namespace predis
