// Deterministic pseudo-random number generation (xoshiro256**), so every
// simulation run is exactly reproducible from its seed.
#pragma once

#include <cstdint>
#include <vector>

namespace predis {

/// xoshiro256** by Blackman & Vigna — fast, high-quality, tiny state.
class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  /// Uniform 64-bit value.
  std::uint64_t next();

  /// Uniform in [0, bound) — bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform in [lo, hi] inclusive.
  std::int64_t next_range(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double next_double();

  /// Bernoulli trial.
  bool chance(double p);

  /// Exponentially distributed value with the given mean (for Poisson
  /// arrival processes in workload generators).
  double next_exponential(double mean);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(next_below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Pick k distinct indices in [0, n).
  std::vector<std::size_t> sample_indices(std::size_t n, std::size_t k);

 private:
  std::uint64_t s_[4];
};

}  // namespace predis
