#include "common/metrics_registry.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>
#include <functional>

#include "common/codec.hpp"

namespace predis {

namespace {

// 32 sub-buckets per octave: values below 2^5 us are exact, above that
// the bucket width is value/32, bounding relative error at ~1.6 %.
constexpr std::uint64_t kSub = 32;
constexpr int kSubBits = 5;

// Terminal octave: values at or past 2^(kMaxShift + kSubBits + 1) us
// collapse into one overflow bucket instead of growing the index
// without bound. At kMaxShift = 39 the cap sits near 2^45 us (~10
// simulated hours) — far beyond any latency a run can produce, so the
// cap is a range guarantee, not a precision loss.
constexpr int kMaxShift = 39;

}  // namespace

std::size_t LatencyHistogram::bucket_of(std::uint64_t us) {
  if (us < kSub) return static_cast<std::size_t>(us);
  const int msb = std::bit_width(us) - 1;  // >= kSubBits
  const int shift = std::min(msb - kSubBits, kMaxShift);
  const std::uint64_t sub =
      std::min<std::uint64_t>(us >> shift, 2 * kSub - 1);  // [kSub, 2*kSub)
  return (static_cast<std::size_t>(shift) + 1) * kSub +
         static_cast<std::size_t>(sub - kSub);
}

std::uint64_t LatencyHistogram::bucket_mid_us(std::size_t bucket) {
  if (bucket < kSub) return bucket;
  const std::size_t shift = bucket / kSub - 1;
  const std::uint64_t sub = kSub + bucket % kSub;
  const std::uint64_t lo = sub << shift;
  return lo + (static_cast<std::uint64_t>(1) << shift) / 2;
}

void LatencyHistogram::record(double ms) {
  if (ms < 0.0 || !std::isfinite(ms)) ms = 0.0;
  summary_.add(ms);
  const auto us = static_cast<std::uint64_t>(std::llround(ms * 1000.0));
  ++buckets_[bucket_of(us)];
  // Keep the k largest raw samples exactly (descending insertion sort;
  // k is tiny so this is O(k) per record in the worst case).
  if (top_.size() < kTopK || ms > top_.back()) {
    const auto pos =
        std::upper_bound(top_.begin(), top_.end(), ms, std::greater<double>());
    top_.insert(pos, ms);
    if (top_.size() > kTopK) top_.pop_back();
  }
}

double LatencyHistogram::percentile(double p) const {
  if (summary_.count() == 0) return 0.0;
  const auto total = static_cast<double>(summary_.count());
  const auto target = static_cast<std::uint64_t>(
      std::ceil(std::max(1.0, p / 100.0 * total)));
  // Ranks that land inside the retained top-k are answered exactly:
  // the target-th smallest sample is top_[count - target] (descending
  // order), so p100 is max() with no bucket rounding at all.
  const std::uint64_t from_top = summary_.count() - target;
  if (from_top < top_.size()) return top_[static_cast<std::size_t>(from_top)];
  std::uint64_t seen = 0;
  for (const auto& [bucket, n] : buckets_) {
    seen += n;
    if (seen >= target) {
      const double ms = static_cast<double>(bucket_mid_us(bucket)) / 1000.0;
      return std::min(summary_.max(), std::max(summary_.min(), ms));
    }
  }
  return summary_.max();
}

void LatencyHistogram::encode(Writer& w) const {
  w.u64(summary_.count());
  w.u64(static_cast<std::uint64_t>(std::llround(summary_.sum() * 1000.0)));
  w.u32(static_cast<std::uint32_t>(buckets_.size()));
  for (const auto& [bucket, n] : buckets_) {
    w.u64(bucket);
    w.u64(n);
  }
  w.u32(static_cast<std::uint32_t>(top_.size()));
  for (double v : top_) {
    w.i64(std::llround(v * 1000.0));
  }
}

std::string MetricsRegistry::to_json() const {
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    char tmp[160];
    std::snprintf(tmp, sizeof(tmp), "%s\"%s\": %llu", first ? "" : ", ",
                  name.c_str(),
                  static_cast<unsigned long long>(c.value()));
    out += tmp;
    first = false;
  }
  out += "},\n  \"gauges\": {";
  first = true;
  for (const auto& [name, g] : gauges_) {
    char tmp[160];
    std::snprintf(tmp, sizeof(tmp), "%s\"%s\": %.3f", first ? "" : ", ",
                  name.c_str(), g.value());
    out += tmp;
    first = false;
  }
  out += "},\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    char tmp[448];
    std::snprintf(tmp, sizeof(tmp),
                  "%s\n    \"%s\": {\"count\": %zu, \"mean_ms\": %.3f, "
                  "\"min_ms\": %.3f, \"max_ms\": %.3f, \"p50_ms\": %.3f, "
                  "\"p95_ms\": %.3f, \"p99_ms\": %.3f, \"p999_ms\": %.3f, "
                  "\"top_ms\": [",
                  first ? "" : ",", name.c_str(), h.count(), h.mean(),
                  h.min(), h.max(), h.percentile(50), h.percentile(95),
                  h.percentile(99), h.percentile(99.9));
    out += tmp;
    bool tf = true;
    for (double v : h.top()) {
      std::snprintf(tmp, sizeof(tmp), "%s%.3f", tf ? "" : ", ", v);
      out += tmp;
      tf = false;
    }
    out += "]}";
    first = false;
  }
  out += "\n  }\n}\n";
  return out;
}

Hash32 MetricsRegistry::digest() const {
  Writer w;
  w.u32(static_cast<std::uint32_t>(counters_.size()));
  for (const auto& [name, c] : counters_) {
    w.str(name);
    w.u64(c.value());
  }
  w.u32(static_cast<std::uint32_t>(gauges_.size()));
  for (const auto& [name, g] : gauges_) {
    w.str(name);
    w.i64(static_cast<std::int64_t>(std::llround(g.value() * 1e6)));
  }
  w.u32(static_cast<std::uint32_t>(histograms_.size()));
  for (const auto& [name, h] : histograms_) {
    w.str(name);
    h.encode(w);
  }
  return Sha256::hash(BytesView{w.data()});
}

}  // namespace predis
