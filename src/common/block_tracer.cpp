#include "common/block_tracer.hpp"

#include <algorithm>
#include <functional>

#include "common/codec.hpp"
#include "common/metrics_registry.hpp"

namespace predis {

const char* to_string(TraceStage stage) {
  switch (stage) {
    case TraceStage::kTxEnqueued:
      return "tx-enqueued";
    case TraceStage::kBundleProduced:
      return "bundle-produced";
    case TraceStage::kBundleStoredQuorum:
      return "bundle-stored-quorum";
    case TraceStage::kCutProposed:
      return "cut-proposed";
    case TraceStage::kBlockCommitted:
      return "block-committed";
    case TraceStage::kStripesSent:
      return "stripes-sent";
    case TraceStage::kBundleDecoded:
      return "bundle-decoded";
    case TraceStage::kBlockReconstructed:
      return "block-reconstructed";
  }
  return "?";
}

Hash32 trace_key(std::uint64_t id) {
  Writer w;
  w.u64(id);
  return Sha256::hash(BytesView{w.data()});
}

std::string TraceAnomaly::describe() const {
  char tmp[160];
  switch (kind) {
    case Kind::kStalledBlock:
      std::snprintf(tmp, sizeof(tmp),
                    "stalled block %s: committed, never reconstructed",
                    short_hex(key).c_str());
      break;
    case Kind::kRebanStorm:
      std::snprintf(tmp, sizeof(tmp),
                    "re-ban storm: node %u banned producer %u %zu times",
                    node, producer, count);
      break;
    case Kind::kPullSpiral:
      std::snprintf(tmp, sizeof(tmp),
                    "pull spiral: node %u pulled block %s %zu times", node,
                    short_hex(key).c_str(), count);
      break;
    case Kind::kUnclosedProposal:
      std::snprintf(tmp, sizeof(tmp),
                    "unclosed proposal %s: cut proposed, never committed",
                    short_hex(key).c_str());
      break;
  }
  return tmp;
}

void BlockTracer::record(TraceStage stage, const Hash32& key, SimTime when,
                         NodeId node) {
  Entry& e = entry(key);
  auto& slot = e.first[static_cast<std::size_t>(stage)];
  slot = std::min(slot, when);
  if (node == kNoNode) return;
  if (stage == TraceStage::kBundleDecoded) {
    e.decoded.emplace(node, when);
  } else if (stage == TraceStage::kBlockReconstructed) {
    e.reconstructed.emplace(node, when);
  }
}

void BlockTracer::record_store(const Hash32& bundle, SimTime when,
                               NodeId node) {
  if (store_quorum_ == 0) return;
  Entry& e = entry(bundle);
  if (!e.stores.emplace(node, when).second) return;
  if (e.stores.size() == store_quorum_) {
    record(TraceStage::kBundleStoredQuorum, bundle, when);
  }
}

void BlockTracer::record_ban(NodeId observer, NodeId producer, SimTime when) {
  bans_[{observer, producer}].push_back(when);
}

void BlockTracer::record_unban(NodeId observer, NodeId producer,
                               SimTime /*when*/) {
  ++unbans_[{observer, producer}];
}

void BlockTracer::record_pull(const Hash32& block, NodeId node,
                              SimTime /*when*/) {
  ++pulls_[{block, node}];
}

SimTime BlockTracer::first(TraceStage stage, const Hash32& key) const {
  const auto it = entries_.find(key);
  if (it == entries_.end()) return kSimTimeNever;
  return it->second.first[static_cast<std::size_t>(stage)];
}

std::size_t BlockTracer::ban_count(NodeId observer, NodeId producer) const {
  const auto it = bans_.find({observer, producer});
  return it == bans_.end() ? 0 : it->second.size();
}

std::size_t BlockTracer::pull_count(const Hash32& block, NodeId node) const {
  const auto it = pulls_.find({block, node});
  return it == pulls_.end() ? 0 : it->second;
}

bool BlockTracer::causally_ordered(const Hash32& key) const {
  const auto it = entries_.find(key);
  if (it == entries_.end()) return true;
  const auto& f = it->second.first;
  const auto at = [&f](TraceStage s) {
    return f[static_cast<std::size_t>(s)];
  };
  const auto ordered = [&at](TraceStage a, TraceStage b) {
    return at(a) == kSimTimeNever || at(b) == kSimTimeNever ||
           at(a) <= at(b);
  };
  return ordered(TraceStage::kTxEnqueued, TraceStage::kBundleProduced) &&
         ordered(TraceStage::kBundleProduced,
                 TraceStage::kBundleStoredQuorum) &&
         ordered(TraceStage::kBundleProduced, TraceStage::kStripesSent) &&
         ordered(TraceStage::kBundleProduced, TraceStage::kBundleDecoded) &&
         ordered(TraceStage::kCutProposed, TraceStage::kBlockCommitted) &&
         ordered(TraceStage::kBlockCommitted,
                 TraceStage::kBlockReconstructed);
}

template <typename Fn>
void BlockTracer::for_each_interval(Fn&& fn) const {
  const auto interval = [&fn](const char* name, const Hash32& key,
                              NodeId node, SimTime from, SimTime to) {
    if (from == kSimTimeNever || to == kSimTimeNever || to < from) return;
    fn(name, key, node, from, to);
  };
  for (const auto& [key, e] : entries_) {
    const auto at = [&e](TraceStage s) {
      return e.first[static_cast<std::size_t>(s)];
    };
    interval("tx_wait", key, kNoNode, at(TraceStage::kTxEnqueued),
             at(TraceStage::kBundleProduced));
    interval("bundle_quorum", key, kNoNode, at(TraceStage::kBundleProduced),
             at(TraceStage::kBundleStoredQuorum));
    interval("stripes_sent", key, kNoNode, at(TraceStage::kBundleProduced),
             at(TraceStage::kStripesSent));
    for (const auto& [node, when] : e.decoded) {
      interval("pre_distribution", key, node,
               at(TraceStage::kBundleProduced), when);
    }
    interval("production", key, kNoNode, at(TraceStage::kCutProposed),
             at(TraceStage::kBlockCommitted));
    for (const auto& [node, when] : e.reconstructed) {
      interval("distribution", key, node, at(TraceStage::kBlockCommitted),
               when);
      interval("end_to_end", key, node, at(TraceStage::kCutProposed), when);
    }
  }
}

std::map<std::string, Percentiles> BlockTracer::stage_samples() const {
  std::map<std::string, Percentiles> out;
  for_each_interval([&out](const char* name, const Hash32&, NodeId,
                           SimTime from, SimTime to) {
    out[name].add(to_milliseconds(to - from));
  });
  return out;
}

std::vector<TraceStageStats> BlockTracer::stage_breakdown() const {
  std::vector<TraceStageStats> out;
  for (const auto& [name, samples] : stage_samples()) {
    TraceStageStats row;
    row.name = name;
    row.count = samples.count();
    row.mean_ms = samples.mean();
    row.p50_ms = samples.percentile(50);
    row.p95_ms = samples.percentile(95);
    row.p99_ms = samples.percentile(99);
    row.p999_ms = samples.percentile(99.9);
    std::vector<double> sorted = samples.samples();
    std::sort(sorted.begin(), sorted.end(), std::greater<double>());
    row.max_ms = sorted.empty() ? 0.0 : sorted.front();
    const std::size_t k = std::min<std::size_t>(sorted.size(), 5);
    row.top_ms.assign(sorted.begin(), sorted.begin() + k);
    out.push_back(std::move(row));
  }
  return out;
}

std::vector<TraceIntervalSample> BlockTracer::top_samples(
    const std::string& stage, std::size_t k) const {
  std::vector<TraceIntervalSample> all;
  for_each_interval([&](const char* name, const Hash32& key, NodeId node,
                        SimTime from, SimTime to) {
    if (stage != name) return;
    TraceIntervalSample s;
    s.key = key;
    s.node = node;
    s.from = from;
    s.to = to;
    s.ms = to_milliseconds(to - from);
    all.push_back(s);
  });
  std::stable_sort(all.begin(), all.end(),
                   [](const TraceIntervalSample& a,
                      const TraceIntervalSample& b) { return a.ms > b.ms; });
  if (all.size() > k) all.resize(k);
  return all;
}

std::vector<Hash32> BlockTracer::keys_missing(TraceStage have,
                                              TraceStage missing) const {
  std::vector<Hash32> out;
  for (const auto& [key, e] : entries_) {
    if (e.first[static_cast<std::size_t>(have)] == kSimTimeNever) continue;
    if (e.first[static_cast<std::size_t>(missing)] != kSimTimeNever) continue;
    out.push_back(key);
  }
  return out;
}

void BlockTracer::fold_into(MetricsRegistry& registry) const {
  for (const auto& [name, samples] : stage_samples()) {
    LatencyHistogram& h = registry.histogram("stage." + name);
    for (double v : samples.samples()) h.record(v);
  }
  registry.counter("trace.entries").inc(entries_.size());
  std::size_t total_bans = 0;
  for (const auto& [key, times] : bans_) {
    (void)key;
    total_bans += times.size();
  }
  registry.counter("trace.bans").inc(total_bans);
  std::size_t total_pulls = 0;
  for (const auto& [key, n] : pulls_) {
    (void)key;
    total_pulls += n;
  }
  registry.counter("trace.pulls").inc(total_pulls);
}

std::vector<TraceAnomaly> BlockTracer::anomalies(
    SimTime now, const AnomalyConfig& cfg) const {
  std::vector<TraceAnomaly> out;

  // Stalled blocks: committed long ago, reconstructed nowhere. Only
  // meaningful when the run had a distribution layer at all.
  bool any_reconstruction = expect_reconstruction_;
  for (const auto& [key, e] : entries_) {
    (void)key;
    if (!e.reconstructed.empty()) {
      any_reconstruction = true;
      break;
    }
  }
  if (any_reconstruction) {
    for (const auto& [key, e] : entries_) {
      const SimTime committed =
          e.first[static_cast<std::size_t>(TraceStage::kBlockCommitted)];
      if (committed == kSimTimeNever || !e.reconstructed.empty()) continue;
      if (now - committed < cfg.stall_after) continue;
      TraceAnomaly a;
      a.kind = TraceAnomaly::Kind::kStalledBlock;
      a.key = key;
      out.push_back(a);
    }
  }

  // Unclosed proposals: a cut was proposed but consensus never decided
  // it. This is the blind spot the stalled-block detector had — it only
  // looked downstream of commit, so a proposal whose commit recording
  // was lost (or that genuinely never committed) went unflagged.
  for (const auto& [key, e] : entries_) {
    const SimTime proposed =
        e.first[static_cast<std::size_t>(TraceStage::kCutProposed)];
    const SimTime committed =
        e.first[static_cast<std::size_t>(TraceStage::kBlockCommitted)];
    if (proposed == kSimTimeNever || committed != kSimTimeNever) continue;
    if (now - proposed < cfg.stall_after) continue;
    TraceAnomaly a;
    a.kind = TraceAnomaly::Kind::kUnclosedProposal;
    a.key = key;
    out.push_back(a);
  }

  for (const auto& [pair, times] : bans_) {
    if (times.size() < cfg.reban_threshold) continue;
    TraceAnomaly a;
    a.kind = TraceAnomaly::Kind::kRebanStorm;
    a.node = pair.first;
    a.producer = pair.second;
    a.count = times.size();
    out.push_back(a);
  }

  for (const auto& [pair, n] : pulls_) {
    if (n < cfg.pull_spiral_threshold) continue;
    TraceAnomaly a;
    a.kind = TraceAnomaly::Kind::kPullSpiral;
    a.key = pair.first;
    a.node = pair.second;
    a.count = n;
    out.push_back(a);
  }
  return out;
}

Hash32 BlockTracer::digest() const {
  Writer w;
  w.u32(static_cast<std::uint32_t>(entries_.size()));
  for (const auto& [key, e] : entries_) {
    w.hash(key);
    for (SimTime t : e.first) w.i64(t);
    w.u32(static_cast<std::uint32_t>(e.stores.size()));
    for (const auto& [node, t] : e.stores) {
      w.u32(node);
      w.i64(t);
    }
    w.u32(static_cast<std::uint32_t>(e.decoded.size()));
    for (const auto& [node, t] : e.decoded) {
      w.u32(node);
      w.i64(t);
    }
    w.u32(static_cast<std::uint32_t>(e.reconstructed.size()));
    for (const auto& [node, t] : e.reconstructed) {
      w.u32(node);
      w.i64(t);
    }
  }
  w.u32(static_cast<std::uint32_t>(bans_.size()));
  for (const auto& [pair, times] : bans_) {
    w.u32(pair.first);
    w.u32(pair.second);
    w.u32(static_cast<std::uint32_t>(times.size()));
    for (SimTime t : times) w.i64(t);
  }
  w.u32(static_cast<std::uint32_t>(pulls_.size()));
  for (const auto& [pair, n] : pulls_) {
    w.hash(pair.first);
    w.u32(pair.second);
    w.u64(n);
  }
  return Sha256::hash(BytesView{w.data()});
}

}  // namespace predis
