// Fault-schedule swarm harness: run one seeded cluster simulation under
// a deterministic fault plan (sim/faults.hpp) with every safety
// invariant armed (core/invariants.hpp), and report violations plus a
// trace digest that makes same-seed runs verifiably byte-identical.
//
// One seed fully determines the run: the client workload, the fault
// plan (crashes, partitions, jitter, drops, equivocation) and every
// protocol-level random choice. A violating seed is therefore a
// one-line repro: `swarm --protocol <p> --seed-base <s> --seeds 1`.
#pragma once

#include <string>
#include <vector>

#include "core/adversary.hpp"
#include "core/experiment.hpp"
#include "core/invariants.hpp"
#include "sim/faults.hpp"

namespace predis::core {

struct SwarmCaseConfig {
  Protocol protocol = Protocol::kPredisPbft;
  std::size_t n_consensus = 4;
  std::size_t f = 1;
  bool wan = true;

  double offered_load_tps = 2'000.0;
  std::size_t n_clients = 4;
  std::uint32_t tx_size = 512;
  SimTime duration = seconds(8);

  /// Master seed: drives workload, protocol randomness and fault plan.
  std::uint64_t seed = 1;

  /// Fault-plan shape; `seed` and (for equivocation) `max_equivocators`
  /// are overridden per case. Equivocation only fires for Predis-family
  /// protocols (the hook needs a bundle producer to corrupt).
  sim::FaultPlanConfig faults;

  /// When not kNone, the fault plan is reshaped into a single-attack
  /// adversary campaign (configure_attack): baseline fault kinds are
  /// disabled, the attack is pinned onto the initial leader, and the
  /// hostile-injector / withholding hooks are wired. `faults.events`
  /// still controls how many strikes the plan schedules.
  AttackKind attack = AttackKind::kNone;

  InvariantConfig invariants;

  /// Log the fault plan even when the run is clean.
  bool verbose = false;
};

struct SwarmCaseResult {
  std::uint64_t seed = 0;
  bool ok = true;
  std::vector<Violation> violations;
  std::string report;        ///< InvariantChecker::report().
  std::string fault_plan;    ///< FaultScheduler::describe().

  Hash32 trace_digest = kZeroHash;  ///< Running hash of every delivery.
  std::uint64_t trace_events = 0;
  /// Digest over the folded metrics registry + block-lifecycle tracer.
  /// Same seed must yield the same digest (observability determinism).
  Hash32 metrics_digest = kZeroHash;

  std::uint64_t commits_checked = 0;
  std::size_t reconstructions_checked = 0;
  std::size_t faults_injected = 0;
  std::size_t committed_slots = 0;

  double throughput_tps = 0.0;  ///< Whole-run committed tx/s.
  /// Degradation metrics (compared against a clean AttackKind::kNone run
  /// of the same seed by tools/adversary_report).
  std::uint64_t committed_txs = 0;
  /// p99 of the proposal->commit interval from the block tracer, the
  /// consensus-layer end-to-end latency (0 when nothing committed).
  double production_p99_ms = 0.0;
  /// Hostile messages injected by the garbage campaign (0 otherwise).
  std::size_t hostile_msgs = 0;
  /// Committed tx/s after every windowed fault healed (0 when the fault
  /// plan extends to the end of the run). Informational: a short
  /// post-heal window may legitimately be empty while views re-sync.
  double post_heal_tps = 0.0;
  SimTime healed_by = 0;

  // --- Recovery metrics (crash/partition campaigns) --------------------
  /// Catch-up batches executed by consensus cores, summed over nodes.
  std::uint64_t catch_up_batches = 0;
  /// Certified state snapshots adopted (PBFT-family state transfer).
  std::size_t state_transfers = 0;
  /// Stall-detector escalations: catch-up/fetch loops that rotated to a
  /// different peer after repeated timeouts.
  std::size_t sync_stalls = 0;
  /// Log bytes/items garbage-collected below stable checkpoints
  /// (consensus slot logs, block stores, mempool bundle bodies).
  std::uint64_t gc_bytes = 0;
  std::uint64_t gc_items = 0;
  /// Payloads committed at more than one slot (restart re-proposals);
  /// their transactions are counted once (see CommitLedger).
  std::size_t duplicate_payloads = 0;
  /// Worst-case catch-up time: the latest first-commit across nodes
  /// after every windowed fault healed, relative to the heal instant
  /// (ms). 0 when the plan is empty or nothing committed post-heal.
  double catch_up_ms = 0.0;
};

/// Run one fault-injected cluster simulation and check every invariant.
SwarmCaseResult run_swarm_case(const SwarmCaseConfig& config);

}  // namespace predis::core
