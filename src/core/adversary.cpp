#include "core/adversary.hpp"

#include <memory>

#include "bundle/bundle.hpp"
#include "common/codec.hpp"
#include "common/sha256.hpp"
#include "consensus/hotstuff/hotstuff_core.hpp"
#include "consensus/narwhal/shared_mempool.hpp"
#include "consensus/payloads.hpp"
#include "consensus/pbft/pbft_core.hpp"
#include "consensus/predis/messages.hpp"
#include "multizone/messages.hpp"

namespace predis::core {

using namespace predis::consensus;

const char* to_string(AttackKind kind) {
  switch (kind) {
    case AttackKind::kNone:
      return "none";
    case AttackKind::kEquivocate:
      return "equivocate";
    case AttackKind::kWithhold:
      return "withhold";
    case AttackKind::kThrottle:
      return "throttle";
    case AttackKind::kGarbage:
      return "garbage";
    case AttackKind::kChurnStorm:
      return "churn-storm";
  }
  return "?";
}

std::optional<AttackKind> attack_from_flag(const std::string& flag) {
  for (std::size_t i = 0; i < kAttackKindCount; ++i) {
    const auto kind = static_cast<AttackKind>(i);
    if (flag == to_string(kind)) return kind;
  }
  if (flag == "churn") return AttackKind::kChurnStorm;
  return std::nullopt;
}

void configure_attack(sim::FaultPlanConfig& plan, AttackKind attack,
                      std::size_t events) {
  plan.crashes = false;
  plan.pair_partitions = false;
  plan.zone_partitions = false;
  plan.jitter = false;
  plan.drops = false;
  plan.equivocation = false;
  plan.throttle = false;
  plan.withhold = false;
  plan.garbage = false;
  plan.churn_storms = false;
  plan.events = events;
  plan.pin_node = static_cast<std::size_t>(-1);
  switch (attack) {
    case AttackKind::kNone:
      plan.events = 0;
      break;
    case AttackKind::kEquivocate:
      plan.equivocation = true;
      plan.pin_node = 0;
      break;
    case AttackKind::kWithhold:
      plan.withhold = true;
      plan.pin_node = 0;
      break;
    case AttackKind::kThrottle:
      plan.throttle = true;
      plan.pin_node = 0;
      break;
    case AttackKind::kGarbage:
      plan.garbage = true;
      plan.pin_node = 0;
      break;
    case AttackKind::kChurnStorm:
      plan.churn_storms = true;
      break;
  }
}

namespace {

/// Deterministic junk digest derived from a nonce.
Hash32 junk_hash(std::uint64_t nonce) {
  Writer w;
  w.u64(0xbadc0de5ULL);
  w.u64(nonce);
  return Sha256::hash(BytesView{w.data()});
}

Transaction junk_tx(std::uint64_t nonce) {
  Transaction tx;
  tx.client = kNoNode;
  tx.seq = nonce;
  tx.size = 64;
  tx.payload_seed = 0xbad00000ULL + nonce;
  return tx;
}

/// A bundle nobody signed: its signature verifies against no registered
/// key, exactly like attacker-fabricated bytes on a real wire.
Bundle unsigned_bundle(NodeId claimed_producer, BundleHeight height,
                       std::size_t n, std::uint64_t nonce) {
  Bundle b;
  b.header.producer = claimed_producer;
  b.header.height = height;
  b.header.parent_hash = junk_hash(nonce);
  b.header.tip_list.assign(n, height);
  b.txs = {junk_tx(nonce)};
  b.header.tx_root = Bundle::tx_root_of(b.txs);
  return b;
}

/// Absurd-but-in-range sequence/round base, far above anything a run
/// legitimately reaches yet far from integer overflow.
constexpr std::uint64_t kAbsurd = 1ULL << 40;

}  // namespace

HostileInjector::HostileInjector(runtime::Runtime& net, Protocol protocol,
                                 std::vector<NodeId> group)
    : net_(&net), protocol_(protocol), group_(std::move(group)) {}

std::size_t HostileInjector::index_of(NodeId id) const {
  for (std::size_t i = 0; i < group_.size(); ++i) {
    if (group_[i] == id) return i;
  }
  return group_.size();
}

void HostileInjector::shoot(NodeId from, NodeId to, runtime::MsgPtr msg) {
  net_->send(from, to, std::move(msg));
  ++injected_;
}

std::size_t HostileInjector::burst(NodeId attacker) {
  const std::size_t self = index_of(attacker);
  if (self == group_.size() || group_.size() < 2) return 0;
  const std::size_t before = injected_;
  const std::uint64_t nonce = ++nonce_;
  const std::size_t n = group_.size();
  // Deterministic victim rotation, never the attacker itself.
  auto victim = [&](std::uint64_t k) {
    std::size_t v = static_cast<std::size_t>((nonce + k) % n);
    if (v == self) v = (v + 1) % n;
    return v;
  };

  const bool predis_family = protocol_ == Protocol::kPredisPbft ||
                             protocol_ == Protocol::kPredisHotStuff;
  const bool pbft_family =
      protocol_ == Protocol::kPbft || protocol_ == Protocol::kPredisPbft;
  const bool hs_family = !pbft_family;  // HotStuff-cored engines.

  if (predis_family) {
    // Signed bundle at an absurd height: a Byzantine producer really
    // can sign any header it likes — receivers buffer it as
    // missing-parent and must not let the fetch machinery explode.
    {
      auto msg = std::make_shared<predis::BundleMsg>();
      msg->bundle = make_bundle(
          attacker, kAbsurd + nonce, junk_hash(nonce),
          std::vector<BundleHeight>(n, kAbsurd + nonce), {junk_tx(nonce)},
          KeyPair::from_seed(attacker));
      shoot(attacker, group_[victim(0)], std::move(msg));
    }
    // Fetch for a chain id that does not exist.
    {
      auto msg = std::make_shared<predis::BundleFetchMsg>();
      msg->refs.push_back(
          MissingBundleRef{static_cast<NodeId>(0xbad0bad0u), kAbsurd});
      msg->refs.push_back(MissingBundleRef{attacker, kAbsurd + nonce});
      shoot(attacker, group_[victim(1)], std::move(msg));
    }
    // Unsolicited batch of bundles nobody signed.
    {
      auto msg = std::make_shared<predis::BundleBatchMsg>();
      msg->bundles.push_back(
          unsigned_bundle(group_[victim(2)], 1 + nonce, n, nonce));
      shoot(attacker, group_[victim(2)], std::move(msg));
    }
    // Fabricated equivocation evidence against an honest producer: the
    // headers are unsigned, so verification must fail and nobody bans.
    {
      auto msg = std::make_shared<predis::ConflictMsg>();
      const NodeId framed = group_[victim(3)];
      msg->evidence.first =
          unsigned_bundle(framed, 1, n, nonce).header;
      msg->evidence.second =
          unsigned_bundle(framed, 1, n, nonce + 1).header;
      shoot(attacker, group_[victim(0)], std::move(msg));
    }
  }

  if (pbft_family) {
    // Votes for a slot far beyond any watermark.
    {
      auto msg = std::make_shared<pbft::PrepareMsg>();
      msg->view = 0;
      msg->seq = kAbsurd + nonce;
      msg->digest = junk_hash(nonce);
      shoot(attacker, group_[victim(0)], std::move(msg));
    }
    {
      auto msg = std::make_shared<pbft::CommitMsg>();
      msg->view = 0;
      msg->seq = kAbsurd + nonce;
      msg->digest = junk_hash(nonce + 1);
      shoot(attacker, group_[victim(1)], std::move(msg));
    }
    // Checkpoint claim for state nobody reached.
    {
      auto msg = std::make_shared<pbft::CheckpointMsg>();
      msg->seq = kAbsurd + nonce;
      msg->digest = junk_hash(nonce + 2);
      shoot(attacker, group_[victim(2)], std::move(msg));
    }
    // View change into a far-future view, carrying a "prepared" entry
    // with no prepare certificate behind it (proof = 0 — an attacker
    // cannot forge a quorum's worth of prepare signatures).
    {
      auto msg = std::make_shared<pbft::ViewChangeMsg>();
      msg->new_view = kAbsurd + nonce;
      msg->last_exec = kAbsurd;
      pbft::ViewChangeMsg::Prepared junk;
      junk.view = kAbsurd;
      junk.seq = kAbsurd + nonce;
      junk.payload = std::make_shared<TxBatchPayload>(
          std::vector<Transaction>{junk_tx(nonce)});
      msg->prepared.push_back(std::move(junk));
      shoot(attacker, group_[victim(3)], std::move(msg));
    }
    // Uncertified snapshot: must be rejected against checkpoint certs.
    {
      auto msg = std::make_shared<pbft::StateSnapshotMsg>();
      msg->seq = kAbsurd + nonce;
      msg->digest = junk_hash(nonce + 3);
      msg->blob = Bytes{0xba, 0xdb, 0x10, 0xb5};
      shoot(attacker, group_[victim(0)], std::move(msg));
    }
  }

  if (hs_family) {
    // NewView carrying a QC whose aggregate signature does not verify
    // (modeled: signers below quorum). If accepted it would poison
    // high_qc with an unreachable round forever.
    {
      auto msg = std::make_shared<hotstuff::NewViewMsg>();
      msg->round = kAbsurd + nonce;
      msg->high_qc =
          hotstuff::QuorumCert{kAbsurd + nonce, junk_hash(nonce), 0};
      shoot(attacker, group_[victim(0)], std::move(msg));
    }
    // Vote for a block hash nobody proposed, in a far-future round.
    {
      auto msg = std::make_shared<hotstuff::VoteMsg>();
      msg->round = kAbsurd + nonce;
      msg->block_hash = junk_hash(nonce + 1);
      shoot(attacker, group_[victim(1)], std::move(msg));
    }
    // Proposal for a round the attacker legitimately leads (round
    // chosen so leader_index(round, n) == attacker), justified by a
    // forged QC — the QC check, not the leader check, must refuse it.
    if (protocol_ == Protocol::kHotStuff) {
      const hotstuff::Round round = (kAbsurd + nonce) * n + self;
      auto msg = std::make_shared<hotstuff::ProposalMsg>();
      msg->block = hotstuff::make_block(
          round, junk_hash(nonce),
          hotstuff::QuorumCert{round - 1, junk_hash(nonce), 0},
          std::make_shared<TxBatchPayload>(
              std::vector<Transaction>{junk_tx(nonce)}));
      shoot(attacker, group_[victim(2)], std::move(msg));
    }
  }

  if (protocol_ == Protocol::kNarwhal || protocol_ == Protocol::kStratus) {
    // Impersonation: a microblock claiming another producer's chain.
    {
      auto msg = std::make_shared<narwhal::MicroblockMsg>();
      msg->mb.producer = static_cast<NodeId>(victim(0));
      msg->mb.index = nonce;
      msg->mb.txs = {junk_tx(nonce)};
      shoot(attacker, group_[victim(1)], std::move(msg));
    }
    // Producer index outside the group entirely.
    {
      auto msg = std::make_shared<narwhal::MicroblockMsg>();
      msg->mb.producer = static_cast<NodeId>(0xbad0bad0u);
      msg->mb.index = kAbsurd + nonce;
      msg->mb.txs = {junk_tx(nonce + 1)};
      shoot(attacker, group_[victim(2)], std::move(msg));
    }
    // Availability certificate with no acks behind it (signers = 0: a
    // forged aggregate signature verifies for nobody).
    {
      auto msg = std::make_shared<narwhal::MbCertMsg>();
      msg->ref = narwhal::MicroblockRef{static_cast<NodeId>(victim(0)),
                                        kAbsurd + nonce, junk_hash(nonce)};
      msg->signers = 0;
      shoot(attacker, group_[victim(3)], std::move(msg));
    }
    // Certificate naming a producer outside the group.
    {
      auto msg = std::make_shared<narwhal::MbCertMsg>();
      msg->ref = narwhal::MicroblockRef{static_cast<NodeId>(0xbad0bad0u),
                                        nonce, junk_hash(nonce + 2)};
      msg->signers = 0;
      shoot(attacker, group_[victim(0)], std::move(msg));
    }
    // Ack for a microblock the victim never produced.
    {
      auto msg = std::make_shared<narwhal::MbAckMsg>();
      msg->ref = narwhal::MicroblockRef{static_cast<NodeId>(victim(1)),
                                        kAbsurd + nonce, junk_hash(nonce)};
      shoot(attacker, group_[victim(1)], std::move(msg));
    }
    // Unsolicited batch: a microblock whose content does not hash to
    // any id the receiver asked for (transaction substitution).
    {
      auto msg = std::make_shared<narwhal::MbBatchMsg>();
      narwhal::Microblock sub;
      sub.producer = static_cast<NodeId>(victim(2));
      sub.index = 0;
      sub.txs = {junk_tx(nonce + 3)};
      msg->mbs.push_back(std::move(sub));
      shoot(attacker, group_[victim(2)], std::move(msg));
    }
    // Fetch for refs that cannot exist.
    {
      auto msg = std::make_shared<narwhal::MbFetchMsg>();
      msg->refs.push_back(narwhal::MicroblockRef{
          static_cast<NodeId>(0xbad0bad0u), kAbsurd, junk_hash(nonce)});
      shoot(attacker, group_[victim(3)], std::move(msg));
    }
  }

  return injected_ - before;
}

std::size_t hostile_gossip_burst(runtime::Runtime& net, NodeId attacker,
                                 const std::vector<NodeId>& peers,
                                 std::size_t n_consensus,
                                 std::uint64_t nonce) {
  std::size_t sent = 0;
  auto shoot = [&](NodeId to, runtime::MsgPtr msg) {
    if (to == attacker) return;
    net.send(attacker, to, std::move(msg));
    ++sent;
  };
  if (peers.empty()) return 0;
  auto peer = [&](std::uint64_t k) {
    return peers[static_cast<std::size_t>((nonce + k) % peers.size())];
  };

  // Stripe with an absurd stripe index and an unsigned header: index
  // bounds and header signature must both be checked before use.
  {
    auto msg = std::make_shared<multizone::StripeMsg>();
    msg->header = unsigned_bundle(static_cast<NodeId>(0xbad0bad0u),
                                  kAbsurd + nonce, n_consensus, nonce)
                      .header;
    msg->index = static_cast<multizone::StripeIndex>(1'000'000 + nonce);
    msg->body_bytes = 64;
    msg->proof_bytes = 32;
    shoot(peer(0), std::move(msg));
  }
  // Referral to a child node id that does not exist: following it
  // blindly would address a nonexistent network node.
  {
    auto msg = std::make_shared<multizone::RejectSubscribeMsg>();
    msg->stripes = {0};
    msg->children = {static_cast<NodeId>(0xbad5eedu),
                     static_cast<NodeId>(0xbad5eeeu)};
    shoot(peer(1), std::move(msg));
  }
  // Pushed bundle that verifies against nothing.
  {
    auto msg = std::make_shared<multizone::BundlePushMsg>();
    msg->bundles.push_back(
        unsigned_bundle(static_cast<NodeId>(nonce % n_consensus),
                        kAbsurd + nonce, n_consensus, nonce));
    shoot(peer(2), std::move(msg));
  }
  // Lying digest: claims absurd heights on every chain, and a second
  // one whose chain count does not match the cluster at all.
  {
    auto msg = std::make_shared<multizone::DigestMsg>();
    msg->heights.assign(n_consensus, kAbsurd + nonce);
    shoot(peer(3), std::move(msg));
  }
  {
    auto msg = std::make_shared<multizone::DigestMsg>();
    msg->heights.assign(n_consensus + 7, kAbsurd);
    shoot(peer(4), std::move(msg));
  }
  // Subscription to stripe streams that do not exist.
  {
    auto msg = std::make_shared<multizone::SubscribeMsg>();
    msg->stripes = {static_cast<multizone::StripeIndex>(7'000'000 + nonce),
                    static_cast<multizone::StripeIndex>(0xffffffffu)};
    shoot(peer(5), std::move(msg));
  }
  // Pull for bundle refs on chains that do not exist.
  {
    auto msg = std::make_shared<multizone::BundlePullMsg>();
    msg->refs.push_back(
        MissingBundleRef{static_cast<NodeId>(0xbad0bad0u), kAbsurd});
    shoot(peer(6), std::move(msg));
  }
  // Relayer advertisement for absurd stripe streams (about itself, so
  // the identity is genuine — the stripe set is the lie).
  {
    auto msg = std::make_shared<multizone::RelayerAliveMsg>();
    msg->relayer = attacker;
    msg->relayed = {static_cast<multizone::StripeIndex>(9'000'000 + nonce)};
    msg->join_time = 0;
    shoot(peer(0), std::move(msg));
  }
  return sent;
}

}  // namespace predis::core
