#include "core/experiment.hpp"

#include <memory>
#include <stdexcept>
#include <vector>

#include "common/sha256.hpp"
#include "consensus/hotstuff/hotstuff_node.hpp"
#include "core/ledger.hpp"
#include "consensus/narwhal/shared_mempool.hpp"
#include "consensus/pbft/pbft_node.hpp"
#include "consensus/predis/predis_nodes.hpp"
#include "runtime/environments.hpp"
#include "runtime/sim_runtime.hpp"
#include "txpool/client.hpp"

namespace predis::core {

using namespace predis::consensus;

const char* to_string(Protocol p) {
  switch (p) {
    case Protocol::kPbft:
      return "PBFT";
    case Protocol::kHotStuff:
      return "HotStuff";
    case Protocol::kPredisPbft:
      return "P-PBFT";
    case Protocol::kPredisHotStuff:
      return "P-HS";
    case Protocol::kNarwhal:
      return "Narwhal";
    case Protocol::kStratus:
      return "Stratus";
  }
  return "?";
}

namespace {

bool is_predis_style(Protocol p) {
  return p == Protocol::kPredisPbft || p == Protocol::kPredisHotStuff ||
         p == Protocol::kNarwhal || p == Protocol::kStratus;
}

}  // namespace

ClusterResult run_cluster(const ClusterConfig& cfg) {
  // Default backend: the deterministic discrete-event simulator. A
  // caller may swap in any other Runtime (e.g. ThreadRuntime) through
  // cfg.ctx.backend; the assembly below only speaks the Runtime seam.
  runtime::SimRuntime sim_backend(cfg.wan ? runtime::wan_latency()
                                          : runtime::lan_latency());
  runtime::Runtime& net =
      cfg.ctx.backend != nullptr ? *cfg.ctx.backend : sim_backend.runtime();
  if (cfg.ctx.trace != nullptr) net.set_tracer(cfg.ctx.trace);
  const std::size_t regions = cfg.wan ? runtime::kWanRegions : 1;

  // --- Consensus nodes -------------------------------------------------
  std::vector<NodeId> consensus_ids;
  for (std::size_t i = 0; i < cfg.n_consensus; ++i) {
    consensus_ids.push_back(net.add_node(
        runtime::node_100mbps(static_cast<std::uint32_t>(i % regions))));
  }

  ConsensusConfig ccfg;
  ccfg.nodes = consensus_ids;
  ccfg.f = cfg.f;
  ccfg.view_timeout = cfg.view_timeout;
  ccfg.propose_until = cfg.duration;

  // Producer keys are derived from network node ids (one convention
  // shared by every engine and verifier).
  std::vector<PublicKey> keys;
  for (NodeId id : consensus_ids) {
    keys.push_back(KeyPair::from_seed(id).public_key());
  }

  Metrics metrics;
  CommitLedger ledger(metrics);
  // One hash-chained ledger per consensus node (§II: full nodes keep
  // the history of the ledger); checked for prefix consistency below.
  std::vector<Ledger> ledgers(cfg.n_consensus);

  std::vector<std::unique_ptr<runtime::Actor>> actors;
  for (std::size_t i = 0; i < cfg.n_consensus; ++i) {
    NodeContext ctx(net, consensus_ids[i], ccfg);
    const bool faulty = i + cfg.n_faulty >= cfg.n_consensus &&
                        cfg.fault_mode != predis::FaultMode::kNone;
    auto record = [&ledgers, i](const Hash32& digest,
                                const std::vector<Transaction>& txs,
                                SimTime when) {
      ledgers[i].append_block(digest, txs, when);
    };

    switch (cfg.protocol) {
      case Protocol::kPbft: {
        pbft::PbftNodeConfig ncfg;
        ncfg.batch_size = cfg.batch_size;
        ncfg.pipeline_window = cfg.pbft_pipeline_window;
        auto node = std::make_unique<pbft::PbftNode>(ctx, ncfg, ledger);
        node->on_committed_block = record;
        node->core().set_tracer(cfg.ctx.tracer);
        actors.push_back(std::move(node));
        break;
      }
      case Protocol::kHotStuff: {
        hotstuff::HotStuffNodeConfig ncfg;
        ncfg.batch_size = cfg.batch_size;
        auto node =
            std::make_unique<hotstuff::HotStuffNode>(ctx, ncfg, ledger);
        node->on_committed_block = record;
        node->core().set_tracer(cfg.ctx.tracer);
        actors.push_back(std::move(node));
        break;
      }
      case Protocol::kPredisPbft:
      case Protocol::kPredisHotStuff: {
        predis::PredisConfig pcfg;
        pcfg.bundle_size = cfg.bundle_size;
        pcfg.bundle_interval = cfg.bundle_interval;
        pcfg.seed = cfg.seed;
        pcfg.cut_f_override = cfg.cut_f_override;
        pcfg.fault = faulty ? cfg.fault_mode : predis::FaultMode::kNone;
        KeyPair own = KeyPair::from_seed(consensus_ids[i]);
        if (cfg.protocol == Protocol::kPredisPbft) {
          auto node = std::make_unique<predis::PredisPbftNode>(
              ctx, pcfg, keys, own, ledger);
          node->on_committed_block = record;
          // The engine traces the full bundle + block lifecycle; the
          // core stays untraced to avoid double-counting proposals.
          node->engine().set_tracer(cfg.ctx.tracer);
          actors.push_back(std::move(node));
        } else {
          auto node = std::make_unique<predis::PredisHotStuffNode>(
              ctx, pcfg, keys, own, ledger);
          node->on_committed_block = record;
          node->engine().set_tracer(cfg.ctx.tracer);
          actors.push_back(std::move(node));
        }
        break;
      }
      case Protocol::kNarwhal:
      case Protocol::kStratus: {
        narwhal::SharedMempoolConfig ncfg;
        ncfg.microblock_size = cfg.bundle_size;
        ncfg.pack_interval = cfg.bundle_interval;
        ncfg.id_cap = cfg.microblock_id_cap;
        ncfg.seed = cfg.seed;
        ncfg.ack_quorum = cfg.protocol == Protocol::kNarwhal
                              ? cfg.n_consensus - cfg.f  // RBC
                              : cfg.f + 1;               // PAB
        auto node = std::make_unique<narwhal::SharedMempoolNode>(
            ctx, ncfg, ledger);
        node->on_committed_block = record;
        node->set_tracer(cfg.ctx.tracer);
        actors.push_back(std::move(node));
        break;
      }
    }
    net.attach(consensus_ids[i], actors.back().get());
  }

  // --- Clients ----------------------------------------------------------
  const double per_client = cfg.offered_load_tps /
                            static_cast<double>(cfg.n_clients);
  std::vector<std::unique_ptr<ClientActor>> clients;
  for (std::size_t c = 0; c < cfg.n_clients; ++c) {
    runtime::NodeConfig ncfg;
    ncfg.region = static_cast<std::uint32_t>(c % regions);
    // Clients are not the system under test: give them fat pipes so the
    // consensus layer is the bottleneck, as in the paper's testbed
    // (many client instances).
    ncfg.up_bw = 10 * runtime::kBandwidth100Mbps;
    ncfg.down_bw = 10 * runtime::kBandwidth100Mbps;
    const NodeId id = net.add_node(ncfg);

    ClientConfig ccfg2;
    ccfg2.self = id;
    if (is_predis_style(cfg.protocol)) {
      ccfg2.targets = {consensus_ids[c % cfg.n_consensus]};
    } else {
      ccfg2.targets = consensus_ids;  // broadcast, standard BFT client
    }
    ccfg2.tx_per_second = per_client;
    ccfg2.tx_size = cfg.tx_size;
    ccfg2.stop_at = cfg.duration;
    ccfg2.record_from = cfg.warmup;
    ccfg2.seed = cfg.seed * 1000 + c;
    clients.push_back(std::make_unique<ClientActor>(net, ccfg2, metrics));
    net.attach(id, clients.back().get());
  }

  // --- Run --------------------------------------------------------------
  std::vector<NodeId> client_ids;
  for (const auto& c : clients) client_ids.push_back(c->id());
  if (cfg.ctx.on_network_ready) {
    cfg.ctx.on_network_ready(net, consensus_ids, client_ids);
  }
  net.start();
  net.run_until(cfg.duration + cfg.drain);

  // --- Collect ------------------------------------------------------------
  ClusterResult result;
  result.throughput_tps = metrics.throughput_tps(cfg.warmup, cfg.duration);
  result.avg_latency_ms = metrics.latencies().mean();
  result.p50_latency_ms = metrics.latencies().percentile(50);
  result.p99_latency_ms = metrics.latencies().percentile(99);
  result.committed_txs = metrics.committed_txs();
  result.submitted_txs = metrics.submitted_txs();
  result.commit_events = metrics.commit_events();
  result.consistent = ledger.consistent();

  result.ledger_blocks_min = ledgers.empty() ? 0 : ledgers[0].size();
  for (const Ledger& l : ledgers) {
    result.ledgers_consistent =
        result.ledgers_consistent && l.verify_chain() &&
        l.prefix_consistent_with(ledgers[0]);
    result.ledger_blocks_min =
        std::min<std::uint64_t>(result.ledger_blocks_min, l.size());
    result.ledger_blocks_max =
        std::max<std::uint64_t>(result.ledger_blocks_max, l.size());
  }

  double up_bytes = 0;
  for (NodeId id : consensus_ids) {
    up_bytes += static_cast<double>(net.stats(id).bytes_sent);
  }
  result.consensus_uplink_mbps =
      up_bytes / static_cast<double>(cfg.n_consensus) * 8.0 / 1e6 /
      to_seconds(cfg.duration);
  result.leader_proposal_bytes = net.stats(consensus_ids[0]).bytes_sent;
  if (cfg.ctx.tracer != nullptr) {
    result.stage_latency = cfg.ctx.tracer->stage_breakdown();
  }
  {
    Writer w;
    for (const Ledger& l : ledgers) {
      w.u64(l.size());
      w.hash(l.head_hash());
    }
    w.u64(metrics.committed_txs());
    result.commit_digest = to_hex(Sha256::hash(w.data()));
  }
  return result;
}

}  // namespace predis::core
