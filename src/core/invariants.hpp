// Cross-protocol safety invariants for fault-schedule swarm testing.
//
// The checker is a passive registry of invariant assertions fed by run
// events; it never aborts, it accumulates Violations so a swarm runner
// can report the first offending seed with full context. Invariants:
//
//   agreement        no two correct nodes commit different digests at
//                    the same consensus slot (all four engines, via the
//                    CommitLedger observer);
//   prefix           each correct node's committed (slot, digest) log
//                    is consistent with every other's on the slots both
//                    committed (finalize());
//   chain-link       consecutive executed Predis blocks hash-chain:
//                    a block whose prev_heights equal the previously
//                    executed block's cut must carry its parent hash
//                    (enable only for serialized P-PBFT, where the
//                    proposer always builds on the last committed
//                    block);
//   cut-monotone     executed Predis cuts never regress, per node;
//   reconstruction   every bundle confirmed by a committed Predis
//                    block decodes bit-exactly from n_c − f of its n_c
//                    erasure stripes (§IV-D availability), checked once
//                    per (chain, height) with a deterministic erasure
//                    pattern derived from the bundle hash;
//   ban-list         once a node has banned a producer, no committed
//                    block first *proposed* after a grace window —
//                    measured from the later of the ban and the end of
//                    the fault plan — advances that producer's chain
//                    (§III-E), unless a rejoin was granted. Keyed on
//                    the block's birth time (earliest correct node to
//                    build or validate it) because the rule constrains
//                    proposers and voters at proposal time: a pre-ban
//                    proposal can legitimately commit arbitrarily late
//                    when partitions and pacemaker resync stall the
//                    pipeline, while a block born after the quiesced
//                    network converged on the ban must never commit.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "bundle/predis_block.hpp"
#include "common/types.hpp"

namespace predis::core {

struct Violation {
  std::string invariant;
  std::string detail;
  std::uint64_t slot = 0;
  SimTime when = 0;
};

struct InvariantConfig {
  std::size_t n_nodes = 4;
  std::size_t f = 1;
  /// In-flight blocks may still advance a freshly banned chain; after
  /// this grace the ban must be respected by every later decision. Must
  /// exceed the view timeout: a stalled pre-ban proposal can only
  /// commit after the pacemaker recovers.
  SimTime ban_grace = seconds(3);
  /// Earliest time the network is fault-free again (the fault plan's
  /// healed_by). Partitions stall decisions arbitrarily long, so the
  /// ban-list clock only starts once the network has quiesced.
  SimTime quiet_after = 0;
  /// Cap on erasure-coding round-trips per run (they cost real CPU).
  std::size_t max_reconstruction_checks = 256;
  /// Enable the chain-link invariant (serialized P-PBFT only; chained
  /// HotStuff proposers legitimately build on uncommitted ancestors).
  bool check_chain_link = false;
  bool check_reconstruction = true;
};

class InvariantChecker {
 public:
  explicit InvariantChecker(InvariantConfig config);

  /// Exclude a node's events from correctness checks (it is configured
  /// Byzantine; its commits and observations prove nothing).
  void set_byzantine(std::size_t node, bool byzantine);

  // --- Event feeds -----------------------------------------------------

  /// Every engine's every commit (wired through CommitLedger).
  void on_commit(std::size_t node, std::uint64_t slot, const Hash32& digest,
                 SimTime when);

  /// A Predis block executed on `node` whose mempool is `pool` (wired
  /// through PredisEngine::on_block_executed).
  void on_predis_executed(std::size_t node, const PredisBlock& block,
                          const Mempool& pool, SimTime when);

  /// `node` first handled a block proposal — built it as leader or
  /// validated it as replica (wired through
  /// PredisEngine::on_block_proposal). The earliest sighting across
  /// correct nodes is the block's birth time for the ban-list check.
  void on_predis_proposed(std::size_t node, const PredisBlock& block,
                          SimTime when);

  /// Node `observer` banned / granted rejoin to `producer` (wired
  /// through Mempool::on_ban / on_unban).
  void on_ban(std::size_t observer, NodeId producer, SimTime when);
  void on_unban(std::size_t observer, NodeId producer);

  // --- Final sweep -----------------------------------------------------

  /// Cross-node prefix consistency over the recorded per-node logs.
  /// Call once after the run.
  void finalize();

  // --- Results ---------------------------------------------------------

  bool ok() const { return violations_.empty(); }
  const std::vector<Violation>& violations() const { return violations_; }
  std::string report() const;

  std::uint64_t commits_checked() const { return commits_; }
  std::size_t reconstructions_checked() const {
    return reconstruction_checks_;
  }

 private:
  void add(const char* invariant, std::uint64_t slot, SimTime when,
           std::string detail);
  void check_reconstruction(const Bundle& bundle, std::uint64_t slot,
                            SimTime when);

  InvariantConfig cfg_;
  std::vector<bool> byzantine_;

  // agreement / prefix
  std::map<std::uint64_t, std::pair<Hash32, std::size_t>> slot_digests_;
  std::vector<std::map<std::uint64_t, Hash32>> per_node_;
  /// Per-node slot decision times: deferred execution can run long
  /// after the decision, and the ban-list invariant is about what a
  /// node *decides* after banning, not when the bundles finally arrive.
  std::vector<std::map<std::uint64_t, SimTime>> decided_at_;
  std::uint64_t commits_ = 0;

  // predis-specific
  std::vector<std::vector<BundleHeight>> last_cut_;
  std::vector<Hash32> last_block_hash_;
  std::vector<bool> has_executed_;
  std::vector<std::map<NodeId, SimTime>> ban_time_;
  /// Earliest time any correct node handled each proposal (by block
  /// hash): the ban-list clock for a block starts when it was born,
  /// not when a stalled pacemaker finally commits it.
  std::map<Hash32, SimTime> first_proposed_;
  std::set<std::pair<NodeId, BundleHeight>> reconstructed_;
  std::size_t reconstruction_checks_ = 0;

  std::vector<Violation> violations_;
};

}  // namespace predis::core
