#include "core/ledger.hpp"

#include <stdexcept>

namespace predis::core {

void Ledger::append(LedgerEntry entry) {
  const Hash32 expected_parent = head_hash();
  const BlockHeight expected_height = entries_.size() + 1;
  if (entry.height != expected_height) {
    throw std::logic_error("Ledger::append: non-consecutive height");
  }
  if (entry.parent != expected_parent) {
    throw std::logic_error("Ledger::append: parent hash mismatch");
  }
  total_txs_ += entry.tx_count;
  entries_.push_back(std::move(entry));
}

const LedgerEntry& Ledger::append_block(const Hash32& payload_digest,
                                        const std::vector<Transaction>& txs,
                                        SimTime committed_at) {
  LedgerEntry entry;
  entry.height = entries_.size() + 1;
  entry.parent = head_hash();
  entry.payload_digest = payload_digest;
  if (!txs.empty()) {
    std::vector<Hash32> leaves;
    leaves.reserve(txs.size());
    for (const auto& tx : txs) leaves.push_back(tx.id());
    entry.tx_root = MerkleTree::root_of(leaves);
  }
  entry.tx_count = txs.size();
  entry.committed_at = committed_at;
  append(entry);
  return entries_.back();
}

const LedgerEntry* Ledger::at(BlockHeight height) const {
  if (height == 0 || height > entries_.size()) return nullptr;
  return &entries_[height - 1];
}

bool Ledger::verify_chain() const {
  Hash32 parent = kZeroHash;
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    const LedgerEntry& e = entries_[i];
    if (e.height != i + 1 || e.parent != parent) return false;
    parent = e.record_hash();
  }
  return true;
}

bool Ledger::prefix_consistent_with(const Ledger& other) const {
  // Compare record hashes: they bind every decision field but not the
  // local commit timestamp, which legitimately differs across nodes.
  const std::size_t common = std::min(entries_.size(), other.entries_.size());
  for (std::size_t i = 0; i < common; ++i) {
    if (entries_[i].record_hash() != other.entries_[i].record_hash()) {
      return false;
    }
  }
  return true;
}

Bytes Ledger::export_range(BlockHeight from, BlockHeight to) const {
  if (from == 0 || to > entries_.size() || from > to) {
    throw std::out_of_range("Ledger::export_range: bad range");
  }
  Writer w;
  w.u32(static_cast<std::uint32_t>(to - from + 1));
  for (BlockHeight h = from; h <= to; ++h) {
    entries_[h - 1].encode(w);
  }
  return std::move(w).take();
}

std::size_t Ledger::import_range(BytesView bytes) {
  Reader r(bytes);
  const std::uint32_t count = r.u32();
  std::size_t adopted = 0;
  for (std::uint32_t i = 0; i < count; ++i) {
    LedgerEntry entry = LedgerEntry::decode(r);
    if (entry.height <= entries_.size()) {
      if (entries_[entry.height - 1].record_hash() != entry.record_hash()) {
        throw std::logic_error("Ledger::import_range: divergent history");
      }
      continue;
    }
    append(std::move(entry));
    ++adopted;
  }
  return adopted;
}

}  // namespace predis::core
