// Byzantine adversary actors for the swarm campaign.
//
// Each AttackKind is one attacker archetype from the graceful-
// degradation study: equivocating producers, data withholders, slow
// (performance-adversarial) leaders that stay just under the view
// timeout, hostile garbage injectors and churn storms. configure_attack
// maps a kind onto the seed-deterministic fault scheduler
// (sim/faults.hpp), so an attack campaign is exactly as reproducible as
// a crash/partition swarm run.
//
// The HostileInjector speaks every protocol's wire dialect and obeys
// the forgeability rule: it only sends messages a real network attacker
// could produce — values signed with the attacker's OWN key, absurd
// indices/heights/rounds, certificates whose (modeled) aggregate
// signature does not verify, impersonation attempts — never another
// node's valid signature. Handlers must survive all of it; the D4 lint
// rule and the regression tests in tests/core/test_adversary.cpp pin
// the boundary checks the injector exercises.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "runtime/runtime.hpp"
#include "sim/faults.hpp"

namespace predis::core {

enum class AttackKind {
  kNone,        ///< Clean baseline run.
  kEquivocate,  ///< Conflicting bundles from one producer.
  kWithhold,    ///< Data-plane messages swallowed (votes still flow).
  kThrottle,    ///< Slow leader: outbound delay just under timeout.
  kGarbage,     ///< Hostile protocol messages (HostileInjector).
  kChurnStorm,  ///< Repeated down/up cycles on a node set.
};

/// Number of AttackKind values; to_string() is tested against it so a
/// new attack cannot ship without a printable name.
inline constexpr std::size_t kAttackKindCount = 6;

const char* to_string(AttackKind kind);

/// Parse a campaign flag ("throttle", "withhold", ...); nullopt on junk.
std::optional<AttackKind> attack_from_flag(const std::string& flag);

/// Shape `plan` into a single-attack campaign: disable every baseline
/// fault kind, enable exactly `attack`, and pin node-targeted attacks
/// onto targets[0] — the initial PBFT/HotStuff leader, which is the
/// adversarial placement Raptr-style analyses care about. kChurnStorm
/// keeps random membership (a storm is not leader-specific); kNone
/// yields an empty plan (clean baseline with identical scheduling).
void configure_attack(sim::FaultPlanConfig& plan, AttackKind attack,
                      std::size_t events);

/// Protocol-aware hostile-message injector. One instance per run; every
/// burst() derives its junk values from a deterministic nonce so runs
/// replay byte-for-byte. `group` is the consensus group (network ids);
/// `attacker` must be a member — the injector sends with the attacker's
/// identity and signs with the attacker's own key where a signature is
/// part of the message.
class HostileInjector {
 public:
  HostileInjector(runtime::Runtime& net, Protocol protocol,
                  std::vector<NodeId> group);

  /// Emit one burst of hostile consensus-layer messages from `attacker`
  /// to the rest of the group. Returns messages sent this burst.
  std::size_t burst(NodeId attacker);

  std::size_t injected() const { return injected_; }

 private:
  std::size_t index_of(NodeId id) const;
  void shoot(NodeId from, NodeId to, runtime::MsgPtr msg);

  runtime::Runtime* net_;
  Protocol protocol_;
  std::vector<NodeId> group_;
  std::uint64_t nonce_ = 0;
  std::size_t injected_ = 0;
};

/// Multi-Zone gossip dialect: one burst of hostile distribution-layer
/// messages (tampered stripes with absurd indices, referral loops to
/// nonexistent children, unverifiable bundle pushes, lying digests,
/// junk subscriptions) from full-node `attacker` to `peers`.
/// `n_consensus` bounds the legitimate stripe-index space the garbage
/// deliberately leaves. Returns messages sent.
std::size_t hostile_gossip_burst(runtime::Runtime& net, NodeId attacker,
                                 const std::vector<NodeId>& peers,
                                 std::size_t n_consensus,
                                 std::uint64_t nonce);

}  // namespace predis::core
