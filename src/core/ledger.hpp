// Ledger: the hash-chained block history every full node maintains
// (§II: "a full node ... maintains the history of the ledger").
//
// Stores one record per committed block — height, parent link, payload
// digest, transaction count and the transaction ids' Merkle root — and
// verifies the chain linkage on every append. Cheap enough to run on
// every simulated node; the cross-node equality check (same digest at
// every height) is the strongest end-to-end safety assertion the tests
// have.
#pragma once

#include <optional>
#include <vector>

#include "common/merkle.hpp"
#include "common/sha256.hpp"
#include "common/types.hpp"
#include "txpool/transaction.hpp"

namespace predis::core {

struct LedgerEntry {
  BlockHeight height = 0;       ///< 1-based position in this ledger.
  Hash32 parent = kZeroHash;    ///< record_hash of the previous entry.
  Hash32 payload_digest = kZeroHash;  ///< Consensus payload digest.
  Hash32 tx_root = kZeroHash;   ///< Merkle root over transaction ids.
  std::size_t tx_count = 0;
  SimTime committed_at = 0;

  /// Hash binding this entry and, transitively, the whole prefix.
  Hash32 record_hash() const {
    Writer w;
    w.u64(height);
    w.hash(parent);
    w.hash(payload_digest);
    w.hash(tx_root);
    w.u64(tx_count);
    return Sha256::hash(w.data());
  }

  void encode(Writer& w) const {
    w.u64(height);
    w.hash(parent);
    w.hash(payload_digest);
    w.hash(tx_root);
    w.u64(tx_count);
    w.i64(committed_at);
  }
  static LedgerEntry decode(Reader& r) {
    LedgerEntry e;
    e.height = r.u64();
    e.parent = r.hash();
    e.payload_digest = r.hash();
    e.tx_root = r.hash();
    e.tx_count = r.u64();
    e.committed_at = r.i64();
    return e;
  }

  bool operator==(const LedgerEntry&) const = default;
};

class Ledger {
 public:
  /// Append the next block. Throws std::logic_error if the entry does
  /// not chain onto the current head (wrong height or parent).
  void append(LedgerEntry entry);

  /// Convenience: build + append an entry from a commit event.
  const LedgerEntry& append_block(const Hash32& payload_digest,
                                  const std::vector<Transaction>& txs,
                                  SimTime committed_at);

  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  /// Entry at 1-based height; nullptr when out of range.
  const LedgerEntry* at(BlockHeight height) const;
  const LedgerEntry* head() const {
    return entries_.empty() ? nullptr : &entries_.back();
  }

  /// Hash of the newest record (the "state digest" for checkpoints).
  Hash32 head_hash() const {
    return entries_.empty() ? kZeroHash : entries_.back().record_hash();
  }

  std::uint64_t total_txs() const { return total_txs_; }

  /// Re-verify every parent link and height; true iff intact.
  bool verify_chain() const;

  /// True if `other` decided the same block at every height both hold
  /// (prefix consistency — the ledgers may have different lengths).
  bool prefix_consistent_with(const Ledger& other) const;

  /// Serialize entries [from, to] for state transfer.
  Bytes export_range(BlockHeight from, BlockHeight to) const;

  /// Append a serialized range produced by export_range; entries that
  /// precede our head are checked for equality, later ones appended.
  /// Returns the number of new entries adopted. Throws on divergence.
  std::size_t import_range(BytesView bytes);

 private:
  std::vector<LedgerEntry> entries_;
  std::uint64_t total_txs_ = 0;
};

}  // namespace predis::core
