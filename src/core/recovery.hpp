// Cross-protocol crash-recovery and state-sync primitives.
//
// Every protocol dialect (PBFT, HotStuff, Predis, Narwhal/Stratus) and
// the Multi-Zone distribution layer shares the same recovery shape:
//   * periodic ledger checkpoints (height + block hash + ban-list
//     digest) that become *stable* at 2f + 1 matching votes;
//   * a peer catch-up loop that requests missing blocks/bundles in
//     bounded spans from rotating peers, paced by a capped jittered
//     exponential backoff, with a stall detector that escalates to a
//     different peer after repeated timeouts against the same one;
//   * log garbage-collection below the last stable checkpoint, with
//     byte accounting so recovery campaigns can report reclaimed space.
//
// Everything here is header-only and deterministic: all jitter comes
// from a caller-owned seeded Rng, so two runs with the same seed replay
// the exact same retry cadence. Lower layers (consensus, multizone)
// include this header without linking predis_core.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "common/codec.hpp"
#include "common/rng.hpp"
#include "common/sha256.hpp"
#include "common/types.hpp"

namespace predis::core {

// ---------------------------------------------------------------------
// Backoff
// ---------------------------------------------------------------------

/// Capped jittered exponential backoff: attempt k waits
/// min(cap, base * 2^k), randomized down by up to `jitter` of itself.
/// Jittered retries desynchronize the recovery traffic of nodes that
/// healed at the same instant (partition heal, churn restart), which is
/// what keeps the post-heal pull storm off the p99 tail.
struct BackoffPolicy {
  SimTime base = milliseconds(25);
  SimTime cap = milliseconds(400);
  /// Fraction of the computed delay that is randomized (0 = fixed).
  double jitter = 0.5;

  SimTime delay(std::size_t attempt, Rng& rng) const {
    SimTime d = base;
    for (std::size_t i = 0; i < attempt && d < cap; ++i) d *= 2;
    if (d > cap) d = cap;
    if (jitter <= 0.0 || d <= 1) return d;
    const auto spread = static_cast<std::uint64_t>(
        static_cast<double>(d) * (jitter < 1.0 ? jitter : 1.0));
    if (spread == 0) return d;
    return d - static_cast<SimTime>(rng.next_below(spread + 1));
  }
};

// ---------------------------------------------------------------------
// Peer rotation + stall detection
// ---------------------------------------------------------------------

/// Picks the peer a catch-up request goes to. Requests start at a
/// preferred peer (the block producer, the digest sender, the current
/// leader); after `stall_after` consecutive timeouts against the same
/// peer the detector escalates to the next peer in a deterministic
/// ladder that skips `self`.
class StallDetector {
 public:
  StallDetector(std::size_t n, std::size_t self, std::size_t stall_after = 2)
      : n_(n), self_(self), stall_after_(stall_after < 1 ? 1 : stall_after) {}

  /// Aim the next request burst at `peer` (e.g. the original sender).
  void prefer(std::size_t peer) {
    if (peer < n_ && peer != self_) {
      current_ = peer;
      timeouts_ = 0;
    }
  }

  /// The peer the next request should go to.
  std::size_t peer() const { return current_ < n_ ? current_ : next_from(0); }

  /// A request timed out. Returns true when the detector escalated to a
  /// different peer (the previous one is considered stalled).
  bool on_timeout() {
    ++timeouts_;
    if (timeouts_ < stall_after_) return false;
    timeouts_ = 0;
    current_ = next_from(peer() + 1);
    ++stalls_;
    return true;
  }

  /// Progress was made; the current peer is serving us fine.
  void on_progress() { timeouts_ = 0; }

  std::size_t stalls() const { return stalls_; }

 private:
  std::size_t next_from(std::size_t start) const {
    if (n_ <= 1) return self_;
    std::size_t p = start % n_;
    if (p == self_) p = (p + 1) % n_;
    return p;
  }

  std::size_t n_;
  std::size_t self_;
  std::size_t stall_after_;
  std::size_t current_ = static_cast<std::size_t>(-1);
  std::size_t timeouts_ = 0;
  std::size_t stalls_ = 0;
};

// ---------------------------------------------------------------------
// Checkpoints
// ---------------------------------------------------------------------

/// One ledger checkpoint: how far execution got, the hash of the block
/// that got it there, and the digest of the ban list at that point (a
/// rejoining node must adopt bans it slept through, or it keeps
/// accepting bundles from a producer everyone else evicted).
struct CheckpointRecord {
  std::uint64_t height = 0;
  Hash32 block_hash = kZeroHash;
  Hash32 ban_digest = kZeroHash;

  Hash32 digest() const {
    Writer w;
    w.u64(height);
    w.hash(block_hash);
    w.hash(ban_digest);
    return Sha256::hash(BytesView{w.data()});
  }

  static Hash32 ban_list_digest(const std::set<NodeId>& banned) {
    Writer w;
    w.u64(banned.size());
    for (NodeId id : banned) w.u32(id);
    return Sha256::hash(BytesView{w.data()});
  }
};

/// Collects checkpoint votes per (height, digest); a checkpoint becomes
/// stable once `quorum` distinct voters agree (2f + 1 of 3f + 1). Keeps
/// only votes at or above the last stable height, so a hostile voter
/// spraying heights cannot grow the map without bound (callers should
/// additionally window heights, as PBFT's kSeqWindow does).
class CheckpointQuorum {
 public:
  explicit CheckpointQuorum(std::size_t quorum) : quorum_(quorum) {}

  /// Record a vote; returns true when this vote made a *new* highest
  /// checkpoint stable.
  bool vote(std::size_t voter, const CheckpointRecord& record) {
    auto& voters = votes_[record.height][record.digest()];
    voters.insert(voter);
    if (voters.size() < quorum_ || record.height <= stable_.height) {
      return false;
    }
    stable_ = record;
    votes_.erase(votes_.begin(), votes_.lower_bound(stable_.height));
    return true;
  }

  const CheckpointRecord& stable() const { return stable_; }
  bool has_stable() const { return stable_.height > 0; }

 private:
  std::size_t quorum_;
  CheckpointRecord stable_;
  // height -> record digest -> voters.
  std::map<std::uint64_t, std::map<Hash32, std::set<std::size_t>>> votes_;
};

// ---------------------------------------------------------------------
// Garbage-collection accounting
// ---------------------------------------------------------------------

/// Bytes and items reclaimed by pruning logs below a stable checkpoint.
/// Recovery campaigns sum these across nodes into BENCH_recovery.json.
struct GcStats {
  std::uint64_t bytes = 0;
  std::uint64_t items = 0;

  void add(std::uint64_t item_bytes) {
    bytes += item_bytes;
    ++items;
  }
  void merge(const GcStats& other) {
    bytes += other.bytes;
    items += other.items;
  }
};

}  // namespace predis::core
