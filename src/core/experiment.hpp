// Public experiment API: assemble a simulated permissioned-blockchain
// cluster for any of the six protocols the paper evaluates, drive it
// with an open-loop client workload, and report throughput / latency /
// bandwidth — the quantities behind Figs. 4-6.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/block_tracer.hpp"
#include "common/types.hpp"
#include "consensus/predis/predis_engine.hpp"
#include "runtime/run_context.hpp"

namespace predis::core {

enum class Protocol {
  kPbft,            ///< Baseline PBFT (batch proposals).
  kHotStuff,        ///< Baseline chained HotStuff (batch proposals).
  kPredisPbft,      ///< P-PBFT (paper §III).
  kPredisHotStuff,  ///< P-HS.
  kNarwhal,         ///< Narwhal-style certified shared mempool.
  kStratus,         ///< Stratus-style PAB shared mempool.
};

const char* to_string(Protocol p);

struct ClusterConfig {
  Protocol protocol = Protocol::kPredisPbft;
  std::size_t n_consensus = 4;
  std::size_t f = 1;
  /// WAN: four paper regions; LAN: uniform 25 ms / 100 Mbps.
  bool wan = true;

  double offered_load_tps = 10'000.0;  ///< Aggregate client load.
  std::size_t n_clients = 8;
  std::uint32_t tx_size = 512;  ///< Paper: 512-byte transactions.

  std::size_t batch_size = 800;   ///< Baseline block size (txs).
  std::size_t bundle_size = 50;   ///< Predis bundle / SOTA microblock txs.
  SimTime bundle_interval = milliseconds(25);
  /// Cutting-rule ablation (see PredisConfig::cut_f_override).
  std::size_t cut_f_override = static_cast<std::size_t>(-1);
  /// Baseline-PBFT pipelining ablation (slots in flight; 1 = paper's
  /// serialized model).
  SeqNum pbft_pipeline_window = 1;
  std::size_t microblock_id_cap = 1000;  ///< Narwhal/Stratus proposal cap.

  SimTime view_timeout = milliseconds(2000);
  SimTime duration = seconds(15);
  SimTime warmup = seconds(5);
  /// Post-duration drain: leaders stop cutting payloads at `duration`
  /// and the run continues this much longer so every in-flight
  /// proposal reaches commit (HotStuff needs two extra chained rounds;
  /// a WAN round is ~150-400 ms). Keeps the block trace closed: every
  /// cut-proposed entry ends with a commit.
  SimTime drain = milliseconds(1500);
  std::uint64_t seed = 1;

  /// Fig. 6 fault injection: the *last* `n_faulty` consensus nodes run
  /// the configured Byzantine behaviour.
  std::size_t n_faulty = 0;
  consensus::predis::FaultMode fault_mode =
      consensus::predis::FaultMode::kNone;

  /// Cross-cutting run plumbing shared by every experiment config:
  /// optional block tracer (ctx.tracer fills `stage_latency` and is
  /// left populated for anomaly scans), delivery-trace hasher, backend
  /// override (run on an external Runtime instead of the internal
  /// simulator) and the pre-start topology hook.
  runtime::RunContext ctx;
};

struct ClusterResult {
  double throughput_tps = 0.0;   ///< Committed tx/s in [warmup, end].
  double avg_latency_ms = 0.0;   ///< Client-observed, post-warmup.
  double p50_latency_ms = 0.0;
  double p99_latency_ms = 0.0;
  std::uint64_t committed_txs = 0;
  std::uint64_t submitted_txs = 0;
  std::size_t commit_events = 0;  ///< Blocks/batches decided.
  bool consistent = true;         ///< No two nodes decided differently.
  /// Per-node hash-chained ledgers agreed on every common height.
  bool ledgers_consistent = true;
  std::uint64_t ledger_blocks_min = 0;  ///< Slowest node's chain length.
  std::uint64_t ledger_blocks_max = 0;
  double consensus_uplink_mbps = 0.0;  ///< Mean consensus-node uplink use.
  std::uint64_t leader_proposal_bytes = 0;  ///< Proposal traffic (node 0).
  /// Filled when config.ctx.tracer was set: per-stage latency breakdowns.
  std::vector<TraceStageStats> stage_latency;
  /// SHA-256 over every node's final hash-chained ledger (lengths +
  /// head hashes) and the committed-tx count. Two backends that decided
  /// the same blocks in the same order agree on this string; the
  /// backend-equivalence tests compare it across Runtime
  /// implementations.
  std::string commit_digest;
};

/// Run one cluster simulation to completion and report.
ClusterResult run_cluster(const ClusterConfig& config);

}  // namespace predis::core
