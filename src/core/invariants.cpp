#include "core/invariants.hpp"

#include <algorithm>
#include <sstream>

#include "erasure/stripe_codec.hpp"

namespace predis::core {

InvariantChecker::InvariantChecker(InvariantConfig config)
    : cfg_(config),
      byzantine_(cfg_.n_nodes, false),
      per_node_(cfg_.n_nodes),
      decided_at_(cfg_.n_nodes),
      last_cut_(cfg_.n_nodes, std::vector<BundleHeight>(cfg_.n_nodes, 0)),
      last_block_hash_(cfg_.n_nodes, kZeroHash),
      has_executed_(cfg_.n_nodes, false),
      ban_time_(cfg_.n_nodes) {}

void InvariantChecker::set_byzantine(std::size_t node, bool byzantine) {
  if (node < byzantine_.size()) byzantine_[node] = byzantine;
}

void InvariantChecker::add(const char* invariant, std::uint64_t slot,
                           SimTime when, std::string detail) {
  violations_.push_back(Violation{invariant, std::move(detail), slot, when});
}

void InvariantChecker::on_commit(std::size_t node, std::uint64_t slot,
                                 const Hash32& digest, SimTime when) {
  if (node >= cfg_.n_nodes || byzantine_[node]) return;
  ++commits_;

  const auto [it, inserted] =
      slot_digests_.try_emplace(slot, std::pair{digest, node});
  if (!inserted && it->second.first != digest) {
    std::ostringstream oss;
    oss << "node " << node << " committed a different digest at slot "
        << slot << " than node " << it->second.second;
    add("agreement", slot, when, oss.str());
  }

  decided_at_[node].try_emplace(slot, when);
  const auto [own, fresh] = per_node_[node].try_emplace(slot, digest);
  if (!fresh && own->second != digest) {
    std::ostringstream oss;
    oss << "node " << node << " re-committed slot " << slot
        << " with a different digest";
    add("agreement", slot, when, oss.str());
  }
}

void InvariantChecker::on_predis_executed(std::size_t node,
                                          const PredisBlock& block,
                                          const Mempool& pool, SimTime when) {
  if (node >= cfg_.n_nodes || byzantine_[node]) return;
  const std::size_t chains = block.cut_heights.size();

  // cut-monotone: the cut never regresses, per chain, and covers prev.
  for (std::size_t i = 0; i < chains && i < last_cut_[node].size(); ++i) {
    if (block.cut_heights[i] < block.prev_heights[i] ||
        block.cut_heights[i] < last_cut_[node][i]) {
      std::ostringstream oss;
      oss << "node " << node << " executed a block whose cut for chain "
          << i << " regressed (" << block.cut_heights[i] << " < max("
          << block.prev_heights[i] << ", " << last_cut_[node][i] << "))";
      add("cut-monotone", block.height, when, oss.str());
    }
  }

  // chain-link: consecutive executed blocks hash-chain (serialized
  // P-PBFT only — a proposal whose prev equals the last executed cut
  // was built on the last executed block).
  if (cfg_.check_chain_link && has_executed_[node] &&
      block.prev_heights == last_cut_[node] &&
      block.parent_hash != last_block_hash_[node]) {
    std::ostringstream oss;
    oss << "node " << node << " executed block at slot " << block.height
        << " whose parent hash does not chain onto the previous block";
    add("chain-link", block.height, when, oss.str());
  }

  // ban-list: a committed block born more than ban_grace after this
  // node banned a producer must not advance that producer's chain
  // (rejoins clear the record). Keyed on the block's birth — the
  // earliest any correct node built or validated the proposal — because
  // §III-E constrains proposers and voters at proposal time; a pre-ban
  // proposal may commit arbitrarily late once partitions and pacemaker
  // resync have stalled the pipeline. Fall back to the earliest
  // decision when no sighting was recorded.
  SimTime born = when;
  for (const auto& log : decided_at_) {
    const auto it = log.find(block.height);
    if (it != log.end() && it->second < born) born = it->second;
  }
  const auto seen = first_proposed_.find(block.hash());
  if (seen != first_proposed_.end()) born = std::min(born, seen->second);
  for (std::size_t i = 0; i < chains; ++i) {
    if (block.cut_heights[i] <= block.prev_heights[i]) continue;
    const auto banned = ban_time_[node].find(static_cast<NodeId>(i));
    if (banned != ban_time_[node].end() &&
        born > std::max(banned->second, cfg_.quiet_after) + cfg_.ban_grace) {
      std::ostringstream oss;
      oss << "node " << node << " committed a block advancing chain " << i
          << ", proposed " << to_seconds(born - banned->second)
          << "s after the ban";
      add("ban-list", block.height, when, oss.str());
    }
  }

  // reconstruction: every newly confirmed bundle decodes from
  // n_c − f of its n_c stripes. Checked once per (chain, height)
  // across all nodes; the executing node's mempool holds the bundles.
  if (cfg_.check_reconstruction) {
    for (std::size_t i = 0; i < chains; ++i) {
      for (BundleHeight h = block.prev_heights[i] + 1;
           h <= block.cut_heights[i]; ++h) {
        if (reconstruction_checks_ >= cfg_.max_reconstruction_checks) break;
        if (!reconstructed_.insert({static_cast<NodeId>(i), h}).second) {
          continue;
        }
        const Bundle* bundle = pool.chain(i).get(h);
        if (bundle != nullptr) {
          check_reconstruction(*bundle, block.height, when);
        }
      }
    }
  }

  for (std::size_t i = 0; i < chains && i < last_cut_[node].size(); ++i) {
    last_cut_[node][i] = std::max(last_cut_[node][i], block.cut_heights[i]);
  }
  last_block_hash_[node] = block.hash();
  has_executed_[node] = true;
}

void InvariantChecker::check_reconstruction(const Bundle& bundle,
                                            std::uint64_t slot,
                                            SimTime when) {
  ++reconstruction_checks_;
  const std::size_t n = cfg_.n_nodes;
  const std::size_t k = n - cfg_.f;
  erasure::StripeCodec codec(k, n);

  auto fail = [&](const char* what) {
    std::ostringstream oss;
    oss << "bundle (chain " << bundle.header.producer << ", height "
        << bundle.header.height << "): " << what;
    add("reconstruction", slot, when, oss.str());
  };

  const auto encoded = codec.encode(bundle);
  std::vector<std::optional<erasure::Stripe>> received;
  received.reserve(n);
  for (const auto& stripe : encoded.stripes) {
    if (!erasure::StripeCodec::verify(stripe, encoded.stripe_root)) {
      fail("stripe fails verification against its own root");
      return;
    }
    received.emplace_back(stripe);
  }
  // Deterministic erasure pattern: drop f stripes chosen from the
  // bundle's header hash, so reruns of a seed re-check identically.
  const Hash32 h = bundle.header.hash();
  for (std::size_t e = 0; e < cfg_.f; ++e) {
    std::size_t idx = h[e % h.size()] % n;
    while (!received[idx].has_value()) idx = (idx + 1) % n;
    received[idx].reset();
  }
  const erasure::Expected<Bundle> decoded = codec.try_decode(received);
  if (!decoded.ok()) {
    fail(decoded.error().message.c_str());
    return;
  }
  if (!(decoded.value() == bundle)) {
    fail("decoded bundle differs from the original");
  }
}

void InvariantChecker::on_predis_proposed(std::size_t node,
                                          const PredisBlock& block,
                                          SimTime when) {
  if (node >= cfg_.n_nodes || byzantine_[node]) return;
  const auto [it, inserted] = first_proposed_.try_emplace(block.hash(), when);
  if (!inserted && when < it->second) it->second = when;
}

void InvariantChecker::on_ban(std::size_t observer, NodeId producer,
                              SimTime when) {
  if (observer >= cfg_.n_nodes || byzantine_[observer]) return;
  ban_time_[observer].try_emplace(producer, when);
}

void InvariantChecker::on_unban(std::size_t observer, NodeId producer) {
  if (observer >= cfg_.n_nodes) return;
  ban_time_[observer].erase(producer);
}

void InvariantChecker::finalize() {
  // prefix: every pair of correct nodes agrees on every slot both
  // committed. The streaming agreement check already compares against
  // the first committer; this sweep pins down the offending pair when
  // logs diverged in ways streaming attribution obscured.
  for (std::size_t a = 0; a < per_node_.size(); ++a) {
    if (byzantine_[a]) continue;
    for (std::size_t b = a + 1; b < per_node_.size(); ++b) {
      if (byzantine_[b]) continue;
      const auto& la = per_node_[a];
      const auto& lb = per_node_[b];
      for (const auto& [slot, digest] : la) {
        const auto it = lb.find(slot);
        if (it != lb.end() && it->second != digest) {
          std::ostringstream oss;
          oss << "nodes " << a << " and " << b
              << " committed different digests at slot " << slot;
          add("prefix", slot, 0, oss.str());
        }
      }
    }
  }
}

std::string InvariantChecker::report() const {
  std::ostringstream oss;
  if (violations_.empty()) {
    oss << "all invariants hold (" << commits_ << " commits, "
        << reconstruction_checks_ << " reconstruction checks)";
    return oss.str();
  }
  oss << violations_.size() << " violation(s):\n";
  for (const Violation& v : violations_) {
    oss << "  [" << v.invariant << "] slot " << v.slot << " t="
        << to_seconds(v.when) << "s: " << v.detail << "\n";
  }
  return oss.str();
}

}  // namespace predis::core
