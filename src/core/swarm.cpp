#include "core/swarm.hpp"

#include "common/thread_annotations.hpp"

#include <algorithm>
#include <memory>
#include <vector>

#include "common/codec.hpp"
#include "core/recovery.hpp"
#include "common/metrics_registry.hpp"
#include "consensus/hotstuff/hotstuff_node.hpp"
#include "consensus/narwhal/shared_mempool.hpp"
#include "consensus/pbft/pbft_node.hpp"
#include "consensus/predis/predis_nodes.hpp"
#include "runtime/environments.hpp"
#include "runtime/sim_runtime.hpp"
#include "txpool/client.hpp"

namespace predis::core {

using namespace predis::consensus;

namespace {

bool has_predis_engine(Protocol p) {
  return p == Protocol::kPredisPbft || p == Protocol::kPredisHotStuff;
}

}  // namespace

SwarmCaseResult run_swarm_case(const SwarmCaseConfig& cfg) {
  runtime::SimRuntime backend(cfg.wan ? runtime::wan_latency()
                                      : runtime::lan_latency());
  runtime::Runtime& net = backend.runtime();
  const std::size_t regions = cfg.wan ? runtime::kWanRegions : 1;

  runtime::TraceHasher tracer;
  net.set_tracer(&tracer);

  // Block-lifecycle tracer shared by every consensus node: its folded
  // metrics digest must be reproducible for a given seed, which the
  // swarm tool's --verify-determinism sweep asserts.
  BlockTracer block_tracer;

  // --- Consensus nodes -------------------------------------------------
  std::vector<NodeId> consensus_ids;
  for (std::size_t i = 0; i < cfg.n_consensus; ++i) {
    consensus_ids.push_back(net.add_node(
        runtime::node_100mbps(static_cast<std::uint32_t>(i % regions))));
  }

  ConsensusConfig ccfg;
  ccfg.nodes = consensus_ids;
  ccfg.f = cfg.f;

  std::vector<PublicKey> keys;
  for (NodeId id : consensus_ids) {
    keys.push_back(KeyPair::from_seed(id).public_key());
  }

  Metrics metrics;
  CommitLedger ledger(metrics);

  // --- Fault schedule --------------------------------------------------
  sim::FaultPlanConfig fplan = cfg.faults;
  fplan.seed = cfg.seed;
  if (cfg.attack != AttackKind::kNone) {
    configure_attack(fplan, cfg.attack, cfg.faults.events);
  }
  fplan.max_crashed = std::min(fplan.max_crashed, cfg.f);
  fplan.max_equivocators = std::min(fplan.max_equivocators, cfg.f);
  fplan.max_withholders = std::min(fplan.max_withholders, cfg.f);
  fplan.max_garbage = std::min(fplan.max_garbage, cfg.f);
  // Equivocation needs a bundle producer to corrupt.
  fplan.equivocation =
      fplan.equivocation && has_predis_engine(cfg.protocol);
  sim::FaultScheduler faults(net, consensus_ids, fplan);

  InvariantConfig icfg = cfg.invariants;
  icfg.n_nodes = cfg.n_consensus;
  icfg.f = cfg.f;
  icfg.quiet_after = faults.healed_by();
  // Serialized P-PBFT proposers always build on the last committed
  // block, so consecutive executed blocks must hash-chain there.
  if (cfg.protocol == Protocol::kPredisPbft) icfg.check_chain_link = true;
  InvariantChecker inv(icfg);

  // Per-node first commit at-or-after the heal instant: the recovery
  // campaign's time-to-catch-up is the slowest node's gap to it.
  const SimTime healed_at = faults.healed_by();
  std::vector<SimTime> first_commit_after_heal(cfg.n_consensus, 0);
  ledger.set_observer([&inv, &first_commit_after_heal, healed_at](
                          std::size_t node_index, std::uint64_t slot,
                          const Hash32& digest, std::size_t /*tx_count*/,
                          SimTime when) {
    inv.on_commit(node_index, slot, digest, when);
    if (healed_at > 0 && when >= healed_at &&
        node_index < first_commit_after_heal.size() &&
        first_commit_after_heal[node_index] == 0) {
      first_commit_after_heal[node_index] = when;
    }
  });

  std::vector<std::unique_ptr<runtime::Actor>> actors;
  std::vector<predis::PredisEngine*> engines(cfg.n_consensus, nullptr);
  // Typed core handles kept alongside the type-erased actors so the
  // collect block can read recovery counters (catch-up batches, stall
  // escalations, GC accounting) without reflection.
  std::vector<pbft::PbftCore*> pbft_cores(cfg.n_consensus, nullptr);
  std::vector<hotstuff::HotStuffCore*> hs_cores(cfg.n_consensus, nullptr);
  std::vector<narwhal::SharedMempoolNode*> pools(cfg.n_consensus, nullptr);
  for (std::size_t i = 0; i < cfg.n_consensus; ++i) {
    NodeContext ctx(net, consensus_ids[i], ccfg);
    switch (cfg.protocol) {
      case Protocol::kPbft: {
        pbft::PbftNodeConfig ncfg;
        auto node = std::make_unique<pbft::PbftNode>(ctx, ncfg, ledger);
        node->core().set_tracer(&block_tracer);
        node->core().set_recovery_seed(cfg.seed ^ ((i + 1) * 0x9e3779b9ULL));
        pbft_cores[i] = &node->core();
        actors.push_back(std::move(node));
        break;
      }
      case Protocol::kHotStuff: {
        hotstuff::HotStuffNodeConfig ncfg;
        auto node =
            std::make_unique<hotstuff::HotStuffNode>(ctx, ncfg, ledger);
        node->core().set_tracer(&block_tracer);
        node->core().set_recovery_seed(cfg.seed ^ ((i + 1) * 0x9e3779b9ULL));
        hs_cores[i] = &node->core();
        actors.push_back(std::move(node));
        break;
      }
      case Protocol::kPredisPbft:
      case Protocol::kPredisHotStuff: {
        predis::PredisConfig pcfg;
        pcfg.seed = cfg.seed;
        KeyPair own = KeyPair::from_seed(consensus_ids[i]);
        if (cfg.protocol == Protocol::kPredisPbft) {
          auto node = std::make_unique<predis::PredisPbftNode>(
              ctx, pcfg, keys, own, ledger);
          engines[i] = &node->engine();
          engines[i]->set_tracer(&block_tracer);
          node->core().set_recovery_seed(cfg.seed ^
                                         ((i + 1) * 0x9e3779b9ULL));
          pbft_cores[i] = &node->core();
          actors.push_back(std::move(node));
        } else {
          auto node = std::make_unique<predis::PredisHotStuffNode>(
              ctx, pcfg, keys, own, ledger);
          engines[i] = &node->engine();
          engines[i]->set_tracer(&block_tracer);
          node->core().set_recovery_seed(cfg.seed ^
                                         ((i + 1) * 0x9e3779b9ULL));
          hs_cores[i] = &node->core();
          actors.push_back(std::move(node));
        }
        break;
      }
      case Protocol::kNarwhal:
      case Protocol::kStratus: {
        narwhal::SharedMempoolConfig ncfg;
        ncfg.seed = cfg.seed;
        ncfg.ack_quorum = cfg.protocol == Protocol::kNarwhal
                              ? cfg.n_consensus - cfg.f
                              : cfg.f + 1;
        auto node =
            std::make_unique<narwhal::SharedMempoolNode>(ctx, ncfg, ledger);
        node->set_tracer(&block_tracer);
        node->core().set_recovery_seed(cfg.seed ^ ((i + 1) * 0x9e3779b9ULL));
        pools[i] = node.get();
        hs_cores[i] = &node->core();
        actors.push_back(std::move(node));
        break;
      }
    }
    net.attach(consensus_ids[i], actors.back().get());

    if (engines[i] != nullptr) {
      predis::PredisEngine* engine = engines[i];
      engine->on_block_executed =
          [&inv, &net, engine, i](const PredisBlock& block,
                                  const std::vector<Transaction>&) {
            inv.on_predis_executed(i, block, engine->mempool(), net.now());
          };
      engine->on_block_proposal = [&inv, &net, i](
                                      const PredisBlock& block) {
        inv.on_predis_proposed(i, block, net.now());
      };
      engine->mempool().on_ban = [&inv, &net, i](NodeId producer) {
        inv.on_ban(i, producer, net.now());
      };
      engine->mempool().on_unban = [&inv, i](NodeId producer) {
        inv.on_unban(i, producer);
      };
    }
  }

  faults.on_equivocate = [&](NodeId id) {
    for (std::size_t i = 0; i < consensus_ids.size(); ++i) {
      if (consensus_ids[i] != id) continue;
      inv.set_byzantine(i, true);
      if (engines[i] != nullptr) engines[i]->inject_equivocation();
    }
  };
  // Hostile-injector and withholding hooks. The injector sends garbage
  // *as* the attacker (its signature, its uplink); invariants excuse
  // the node because signed junk at absurd heights can legitimately get
  // it banned. A withholder looks like a silent producer to everyone
  // else, so it too is excused from producer-side invariants.
  HostileInjector injector(net, cfg.protocol, consensus_ids);
  auto excuse = [&](NodeId id) {
    for (std::size_t i = 0; i < consensus_ids.size(); ++i) {
      if (consensus_ids[i] == id) inv.set_byzantine(i, true);
    }
  };
  faults.on_garbage = [&](NodeId id, SimTime window) {
    excuse(id);
    // Spread a handful of bursts over the fault window.
    constexpr std::size_t kBursts = 4;
    for (std::size_t b = 0; b < kBursts; ++b) {
      PREDIS_FIRE_AND_FORGET(net.schedule_after(
          window * static_cast<SimTime>(b) / static_cast<SimTime>(kBursts),
          [&injector, id] { injector.burst(id); }));
    }
  };
  faults.on_withhold = excuse;
  faults.arm();

  // --- Clients ---------------------------------------------------------
  const double per_client =
      cfg.offered_load_tps / static_cast<double>(cfg.n_clients);
  std::vector<std::unique_ptr<ClientActor>> clients;
  for (std::size_t c = 0; c < cfg.n_clients; ++c) {
    runtime::NodeConfig ncfg;
    ncfg.region = static_cast<std::uint32_t>(c % regions);
    ncfg.up_bw = 10 * runtime::kBandwidth100Mbps;
    ncfg.down_bw = 10 * runtime::kBandwidth100Mbps;
    const NodeId id = net.add_node(ncfg);

    ClientConfig ccfg2;
    ccfg2.self = id;
    if (cfg.protocol == Protocol::kPbft ||
        cfg.protocol == Protocol::kHotStuff) {
      ccfg2.targets = consensus_ids;
    } else {
      ccfg2.targets = {consensus_ids[c % cfg.n_consensus]};
    }
    ccfg2.tx_per_second = per_client;
    ccfg2.tx_size = cfg.tx_size;
    ccfg2.stop_at = cfg.duration;
    ccfg2.record_from = 0;
    ccfg2.seed = cfg.seed * 1000 + c;
    clients.push_back(std::make_unique<ClientActor>(net, ccfg2, metrics));
    net.attach(id, clients.back().get());
  }

  // --- Run -------------------------------------------------------------
  net.start();
  net.run_until(cfg.duration + milliseconds(500));
  inv.finalize();

  // --- Collect ---------------------------------------------------------
  SwarmCaseResult result;
  result.seed = cfg.seed;
  result.ok = inv.ok();
  result.violations = inv.violations();
  result.report = inv.report();
  result.fault_plan = faults.describe();
  result.trace_digest = tracer.digest();
  result.trace_events = tracer.events();
  result.committed_txs = metrics.committed_txs();
  result.hostile_msgs = injector.injected();
  {
    const auto samples = block_tracer.stage_samples();
    const auto it = samples.find("production");
    if (it != samples.end() && it->second.count() > 0) {
      result.production_p99_ms = it->second.percentile(99.0);
    }
  }
  {
    MetricsRegistry registry;
    block_tracer.fold_into(registry);
    Writer w;
    w.hash(registry.digest());
    w.hash(block_tracer.digest());
    // Fold the degradation metrics in as well: a nondeterministic
    // commit count or latency tail must flip the digest even if the
    // trace content itself happened to collide.
    w.u64(result.committed_txs);
    w.u64(static_cast<std::uint64_t>(result.production_p99_ms * 1000.0));
    result.metrics_digest = Sha256::hash(BytesView{w.data()});
  }
  result.commits_checked = inv.commits_checked();
  result.reconstructions_checked = inv.reconstructions_checked();
  result.faults_injected = faults.faults_injected();
  result.committed_slots = ledger.committed_slots();
  result.throughput_tps = metrics.throughput_tps(0, cfg.duration);
  result.healed_by = faults.healed_by();
  if (result.healed_by > 0 && result.healed_by < cfg.duration) {
    result.post_heal_tps =
        metrics.throughput_tps(result.healed_by, cfg.duration);
  }

  // Recovery counters, summed across nodes. GC stats come from every
  // layer that prunes below a checkpoint: consensus slot/block logs and
  // (for Predis) the mempool bundle chains.
  for (std::size_t i = 0; i < cfg.n_consensus; ++i) {
    GcStats gc;
    if (pbft_cores[i] != nullptr) {
      result.catch_up_batches += pbft_cores[i]->catch_up_batches();
      result.state_transfers +=
          static_cast<std::size_t>(pbft_cores[i]->state_transfers());
      result.sync_stalls += pbft_cores[i]->sync_stalls();
      gc.merge(pbft_cores[i]->gc_stats());
    }
    if (hs_cores[i] != nullptr) {
      result.catch_up_batches += hs_cores[i]->catch_up_batches();
      result.sync_stalls += hs_cores[i]->sync_stalls();
      gc.merge(hs_cores[i]->gc_stats());
    }
    if (pools[i] != nullptr) gc.merge(pools[i]->gc_stats());
    if (engines[i] != nullptr) {
      result.sync_stalls += engines[i]->fetch_stalls();
      gc.merge(engines[i]->gc_stats());
    }
    result.gc_bytes += gc.bytes;
    result.gc_items += gc.items;
  }
  result.duplicate_payloads = ledger.duplicate_payloads();
  if (result.healed_by > 0 && result.healed_by < cfg.duration) {
    SimTime latest = 0;
    for (const SimTime t : first_commit_after_heal) {
      latest = std::max(latest, t);
    }
    if (latest > 0) {
      result.catch_up_ms = to_milliseconds(latest - result.healed_by);
    }
  }
  return result;
}

}  // namespace predis::core
