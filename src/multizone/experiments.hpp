// Runners for the Multi-Zone experiments:
//  * run_distribution_cluster — Fig. 7: consensus-layer throughput under
//    distribution load (star vs Multi-Zone) as full nodes scale;
//  * run_propagation — Fig. 8: block propagation latency of star,
//    random(FEG) and Multi-Zone topologies vs block size.
#pragma once

#include <functional>
#include <map>
#include <vector>

#include "common/block_tracer.hpp"
#include "common/types.hpp"
#include "runtime/run_context.hpp"

namespace predis::multizone {

enum class Topology { kStar, kRandom, kMultiZone };

const char* to_string(Topology t);

// ---------------------------------------------------------------------
// Fig. 7 — throughput of the consensus layer under distribution load.
// ---------------------------------------------------------------------

struct ThroughputConfig {
  /// kStar or kMultiZone (random is throughput-unbounded by tunable
  /// connection count, which is why the paper compares only these two).
  Topology topology = Topology::kMultiZone;
  std::size_t n_consensus = 4;
  std::size_t f = 1;
  std::size_t n_full = 24;
  std::size_t n_zones = 3;
  double offered_load_tps = 26'000.0;  ///< Paper's fixed generation rate.
  std::size_t n_clients = 8;
  std::size_t bundle_size = 50;
  SimTime duration = seconds(12);
  SimTime warmup = seconds(5);
  /// Post-duration drain: proposals stop at `duration`, the run keeps
  /// going this much longer so in-flight blocks commit and full nodes
  /// finish reconstructing them (closing every trace entry).
  SimTime drain = milliseconds(1500);
  std::uint64_t seed = 1;
  /// Ship real erasure-coded stripe bytes (see
  /// MultiZoneConfig::real_stripe_payloads). Multi-Zone topology only.
  bool real_stripe_payloads = false;
  /// Cross-cutting run plumbing (tracer, backend override, pre-start
  /// topology hook). ctx.on_network_ready fires once the whole topology
  /// is built, immediately before the network starts — adversary
  /// campaigns attach fault schedules and hostile injectors there
  /// (runtime, consensus node ids, full node ids). Anything captured
  /// must outlive the run; the runner blocks until it completes.
  runtime::RunContext ctx;
};

struct ThroughputResult {
  double throughput_tps = 0.0;
  double avg_latency_ms = 0.0;
  bool consistent = true;
  double consensus_uplink_mbps = 0.0;
  /// Aggregate wire bytes over consensus nodes (Metrics byte counters).
  std::uint64_t consensus_bytes_sent = 0;
  std::uint64_t consensus_bytes_received = 0;
  /// Fraction of announced blocks fully reconstructed by full nodes.
  double full_node_coverage = 0.0;
  std::size_t relayers_seen = 0;  ///< Relayers active at the end.
  std::uint64_t view_changes = 0;       ///< Summed over consensus nodes.
  std::uint64_t last_executed_min = 0;  ///< Slowest node's executed slot.
  std::uint64_t last_executed_max = 0;
  /// Filled when config.ctx.tracer was set: per-stage breakdowns.
  std::vector<TraceStageStats> stage_latency;
};

ThroughputResult run_distribution_cluster(const ThroughputConfig& config);

// ---------------------------------------------------------------------
// Fig. 8 — block propagation latency.
// ---------------------------------------------------------------------

struct PropagationConfig {
  Topology topology = Topology::kMultiZone;
  std::size_t n_consensus = 8;  ///< Paper: 8 consensus, 100 full nodes.
  std::size_t f = 2;
  std::size_t n_full = 100;
  std::size_t n_zones = 3;      ///< Multi-Zone only (3 or 12 in paper).
  std::size_t peers = 8;        ///< Random topology connections.
  std::size_t fanout = 4;       ///< FEG push fanout.
  std::size_t max_subscribers = 24;  ///< Fairness cap (paper).
  std::size_t block_bytes = 1 << 20;
  /// Granularity of Multi-Zone pre-distribution. The paper uses
  /// 50-tx (25.6 KB) bundles; larger synthetic bundles keep the event
  /// count tractable at 40 MB blocks without changing byte flow.
  std::size_t bundle_bytes = 128 << 10;
  std::size_t n_blocks = 4;     ///< Blocks averaged over.
  SimTime setup_time = seconds(4);  ///< Topology convergence time.
  std::uint64_t seed = 1;
  /// Cross-cutting run plumbing (tracer, backend override, hook).
  runtime::RunContext ctx;
};

struct PropagationResult {
  /// Average time (ms from block production) for the block to reach a
  /// given fraction of full nodes.
  std::map<double, double> latency_ms_at_fraction;
  double full_coverage_fraction = 0.0;  ///< Nodes reached on average.
  /// Filled when config.ctx.tracer was set: per-stage breakdowns.
  std::vector<TraceStageStats> stage_latency;
};

PropagationResult run_propagation(const PropagationConfig& config);

}  // namespace predis::multizone
