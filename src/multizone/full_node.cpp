#include "multizone/full_node.hpp"

#include <algorithm>

#include "common/log.hpp"
#include "common/thread_annotations.hpp"

namespace predis::multizone {

namespace {

/// Most bundles a digest-gap pull walks per chain per digest message:
/// heights in a DigestMsg are peer-controlled, so the backlog walk is
/// clamped and the next digest round picks up the remainder.
constexpr BundleHeight kMaxDigestSpan = 16;

/// Most bundles a block announcement may confirm per chain. Announced
/// cut/prev heights are sender-controlled bytes: without this cap a
/// single forged PredisBlockMsg with cut_heights near 2^40 pins the
/// node in a multi-billion-step gap walk on every pull cycle. Honest
/// cuts advance by the handful of bundles produced per block interval,
/// so the bound is generous.
constexpr BundleHeight kMaxBlockSpan = 1024;

}  // namespace

MultiZoneFullNode::MultiZoneFullNode(runtime::Runtime& net, NodeId self,
                                     MultiZoneConfig config,
                                     ZoneDirectory& directory,
                                     std::uint64_t seed)
    : net_(net),
      self_(self),
      cfg_(config),
      dir_(directory),
      rng_(seed ^ (0xd1ce5bedULL * (self + 1))),
      providers_(config.n_consensus, kNoNode),
      pending_(config.n_consensus, kNoNode),
      subscribers_(config.n_consensus),
      last_stripe_at_(config.n_consensus, 0),
      provider_since_(config.n_consensus, 0),
      chains_(config.n_consensus),
      contiguous_(config.n_consensus, 0),
      codec_(config.n_consensus - config.f, config.n_consensus) {
  zone_ = dir_.zone_of(self_);
  join_time_ = dir_.join_time(self_);
  // Repair-pull pacing: same base grace as before (stripes of a fresh
  // cut are usually still in flight), but jittered and capped instead
  // of a lock-step power-of-two ladder.
  pull_backoff_.base = cfg_.pull_timeout;
  pull_backoff_.cap = cfg_.pull_timeout * 8;
  // Fan-out pacing quantum: flat (base == cap), jitter from the shared
  // BackoffPolicy — each successive child send is spaced by one
  // jittered quantum instead of the whole set landing on the uplink
  // queue in one deterministic burst.
  fanout_pacing_.base = milliseconds(1);
  fanout_pacing_.cap = milliseconds(1);
}

void MultiZoneFullNode::paced_fanout(const std::vector<NodeId>& children,
                                     runtime::MsgPtr msg) {
  // The first child keeps the zero-delay critical path; later children
  // are staggered with the same jittered-BackoffPolicy pacing the
  // digest pulls use, so set-iteration order no longer fixes which
  // child always drains the uplink queue last (the distribution-stage
  // p99 tail left over from the backoff-unification pass).
  SimTime at = 0;
  for (NodeId child : children) {
    if (at == 0) {
      net_.send(self_, child, msg);
    } else {
      PREDIS_FIRE_AND_FORGET(net_.schedule(self_, at, [this, child, msg] {
        if (left_) return;
        net_.send(self_, child, msg);
      }));
    }
    at += fanout_pacing_.delay(0, rng_);
  }
}

void MultiZoneFullNode::on_start() {
  // Join at the registered time: nodes enter the network one after
  // another (§IV-C derives join order from on-chain registration), so
  // Algorithm 1 sees the relayers that earlier members established.
  PREDIS_FIRE_AND_FORGET(net_.schedule(
      self_, std::max<SimTime>(0, join_time_ - now()),
      [this] { bootstrap(); }));

  // The tick chains below re-arm themselves and every callback starts
  // with an `if (left_) return;` liveness guard, so no handles are kept.
  PREDIS_FIRE_AND_FORGET(net_.schedule(self_, cfg_.relayer_alive_interval,
                                       [this] { tick_relayer_alive(); }));
  PREDIS_FIRE_AND_FORGET(net_.schedule(
      self_,
      cfg_.relayer_check_interval +
          static_cast<SimTime>(rng_.next_below(
              static_cast<std::uint64_t>(cfg_.relayer_check_interval))),
      [this] { tick_relayer_check(); }));
  PREDIS_FIRE_AND_FORGET(net_.schedule(self_, cfg_.heartbeat_interval,
                                       [this] { tick_heartbeat(); }));
  PREDIS_FIRE_AND_FORGET(net_.schedule(self_, cfg_.digest_interval,
                                       [this] { tick_digest(); }));
}

void MultiZoneFullNode::on_restart() {
  if (left_) return;
  // Refresh every stripe subscription: a provider that timed out our
  // heartbeats during the outage has silently dropped us from its
  // streams. Re-sending Subscribe to the current provider is idempotent
  // (it just re-registers us); stripes with no provider walk the
  // resubscribe ladder again.
  for (StripeIndex s = 0; s < cfg_.n_consensus; ++s) {
    if (providers_[s] != kNoNode) {
      send_subscribe(providers_[s], {s});
    } else if (pending_[s] == kNoNode) {
      resubscribe(s);
    }
  }
  // Pull the bundle backlog now: ask the cross-zone backup partner and
  // a couple of zone neighbours for their digests instead of waiting up
  // to a full digest_interval for the next periodic one.
  auto probe = std::make_shared<DigestRequestMsg>();
  if (backup_peer_ != kNoNode) net_.send(self_, backup_peer_, probe);
  const auto& members = dir_.members(zone_);
  std::size_t sent = 0;
  for (std::size_t i = 0; i < members.size() && sent < 2; ++i) {
    const NodeId peer = members[(self_ + 1 + i) % members.size()];
    if (peer == self_) continue;
    net_.send(self_, peer, probe);
    ++sent;
  }
}

void MultiZoneFullNode::bootstrap() {
  const std::vector<NodeId> earlier = dir_.earlier_members(self_);
  if (earlier.empty()) {
    // First node of the zone: subscribe every stripe directly to the
    // consensus nodes (node A in Fig. 3(a)).
    std::vector<StripeIndex> all;
    for (StripeIndex s = 0; s < cfg_.n_consensus; ++s) all.push_back(s);
    subscribe_to_consensus(all);
    return;
  }
  // Ask the most recently joined member for the current relayer set.
  net_.send(self_, earlier.back(), std::make_shared<GetRelayersMsg>());
}

void MultiZoneFullNode::run_algorithm1(
    const std::vector<RelayerInfo>& relayers) {
  // S_p starts as every stripe with no provider yet.
  std::set<StripeIndex> sp;
  for (StripeIndex s = 0; s < cfg_.n_consensus; ++s) {
    if (providers_[s] == kNoNode && pending_[s] == kNoNode) sp.insert(s);
  }

  for (const auto& relayer : relayers) {
    if (sp.empty()) break;
    if (relayer.id == self_) continue;
    known_relayers_[relayer.id] =
        RelayerState{{relayer.relayed.begin(), relayer.relayed.end()},
                     relayer.join_time, now()};
    // Subscribe for at most half of each relayer's stripes (line 5),
    // but always at least one so single-stripe relayers are usable.
    const std::size_t cap = std::max<std::size_t>(1, relayer.relayed.size() / 2);
    std::vector<StripeIndex> take;
    for (StripeIndex s : relayer.relayed) {
      if (take.size() >= cap) break;
      if (sp.count(s) != 0) {
        take.push_back(s);
        sp.erase(s);
      }
    }
    if (!take.empty()) send_subscribe(relayer.id, take);
  }

  // Leftover stripes go straight to the consensus nodes; acceptance
  // makes this node a relayer (lines 9-17).
  if (!sp.empty()) {
    subscribe_to_consensus({sp.begin(), sp.end()});
  }
}

void MultiZoneFullNode::send_subscribe(NodeId target,
                                       std::vector<StripeIndex> stripes) {
  for (StripeIndex s : stripes) pending_[s] = target;
  auto msg = std::make_shared<SubscribeMsg>();
  msg->stripes = std::move(stripes);
  net_.send(self_, target, std::move(msg));
}

void MultiZoneFullNode::subscribe_to_consensus(
    const std::vector<StripeIndex>& stripes) {
  const auto& consensus = dir_.consensus_nodes();
  // Stripe i is served by consensus node i (§IV-D).
  for (StripeIndex s : stripes) {
    if (s >= consensus.size()) continue;
    send_subscribe(consensus[s], {s});
  }
}

void MultiZoneFullNode::resubscribe(StripeIndex stripe) {
  providers_[stripe] = kNoNode;
  pending_[stripe] = kNoNode;
  // Provider ladder: (1) a relayer advertising this stripe; (2) any
  // known zone relayer — relayers receive every stripe stream, so they
  // can serve even streams they are not consensus-direct for; (3) a
  // random zone member (its reject will refer us onward); (4) the
  // consensus node that originates the stripe.
  for (const auto& [id, state] : known_relayers_) {
    if (id != self_ && state.relayed.count(stripe) != 0) {
      send_subscribe(id, {stripe});
      return;
    }
  }
  if (!known_relayers_.empty()) {
    auto it = known_relayers_.begin();
    std::advance(it, static_cast<std::ptrdiff_t>(
                         rng_.next_below(known_relayers_.size())));
    if (it->first != self_) {
      send_subscribe(it->first, {stripe});
      return;
    }
  }
  const auto& members = dir_.members(zone_);
  if (members.size() > 1 && rng_.chance(0.5)) {
    NodeId peer = self_;
    while (peer == self_) {
      peer = members[rng_.next_below(members.size())];
    }
    send_subscribe(peer, {stripe});
    return;
  }
  subscribe_to_consensus({stripe});
}

void MultiZoneFullNode::announce_relayer() {
  auto msg = std::make_shared<RelayerAliveMsg>();
  msg->relayer = self_;
  msg->relayed.assign(direct_.begin(), direct_.end());
  msg->join_time = join_time_;
  zone_multicast(msg);
}

void MultiZoneFullNode::zone_multicast(const runtime::MsgPtr& msg) {
  for (NodeId member : dir_.members(zone_)) {
    if (member != self_) net_.send(self_, member, msg);
  }
}

std::size_t MultiZoneFullNode::subscriber_count() const {
  std::set<NodeId> unique;
  for (const auto& set : subscribers_) {
    unique.insert(set.begin(), set.end());
  }
  return unique.size();
}

std::size_t MultiZoneFullNode::known_active_relayers() const {
  std::size_t count = is_relayer() ? 1 : 0;
  const SimTime horizon = 3 * cfg_.relayer_alive_interval;
  for (const auto& [id, state] : known_relayers_) {
    if (!state.relayed.empty() &&
        (state.last_seen == 0 || now() - state.last_seen <= horizon)) {
      ++count;
    }
  }
  return count;
}

void MultiZoneFullNode::on_message(NodeId from, const runtime::MsgPtr& msg) {
  if (left_) return;
  last_heard_[from] = now();

  if (const auto* m = dynamic_cast<const ClientRequestMsg*>(msg.get())) {
    forward_client_txs(*m);
    return;
  }
  if (const auto* m = dynamic_cast<const StripeMsg*>(msg.get())) {
    on_stripe(from, *m);
  } else if (const auto* m = dynamic_cast<const PredisBlockMsg*>(msg.get())) {
    on_predis_block(from, *m);
  } else if (const auto* m = dynamic_cast<const SubscribeMsg*>(msg.get())) {
    on_subscribe(from, *m);
  } else if (const auto* m =
                 dynamic_cast<const AcceptSubscribeMsg*>(msg.get())) {
    on_accept(from, *m);
  } else if (const auto* m =
                 dynamic_cast<const RejectSubscribeMsg*>(msg.get())) {
    on_reject(from, *m);
  } else if (const auto* m = dynamic_cast<const UnsubscribeMsg*>(msg.get())) {
    on_unsubscribe(from, *m);
  } else if (const auto* m =
                 dynamic_cast<const RelayerAliveMsg*>(msg.get())) {
    on_relayer_alive(from, *m);
  } else if (dynamic_cast<const GetRelayersMsg*>(msg.get()) != nullptr) {
    auto reply = std::make_shared<RelayersMsg>();
    if (is_relayer()) {
      reply->relayers.push_back(
          RelayerInfo{self_, {direct_.begin(), direct_.end()}, join_time_});
    }
    for (const auto& [id, state] : known_relayers_) {
      if (state.relayed.empty()) continue;
      reply->relayers.push_back(RelayerInfo{
          id, {state.relayed.begin(), state.relayed.end()}, state.join_time});
    }
    net_.send(self_, from, std::move(reply));
  } else if (const auto* m = dynamic_cast<const RelayersMsg*>(msg.get())) {
    run_algorithm1(m->relayers);
  } else if (dynamic_cast<const LeaveMsg*>(msg.get()) != nullptr) {
    on_leave(from);
  } else if (dynamic_cast<const DigestRequestMsg*>(msg.get()) != nullptr) {
    // Rejoin probe: answer with our digest immediately so the restarted
    // peer's backlog pull starts without waiting for the digest tick.
    auto digest = std::make_shared<DigestMsg>();
    digest->heights = contiguous_;
    net_.send(self_, from, std::move(digest));
  } else if (const auto* m = dynamic_cast<const DigestMsg*>(msg.get())) {
    on_digest(from, *m);
  } else if (const auto* m = dynamic_cast<const BundlePullMsg*>(msg.get())) {
    on_pull(from, *m);
  } else if (const auto* m = dynamic_cast<const BundlePushMsg*>(msg.get())) {
    on_push(from, *m);
  } else if (const auto* m = dynamic_cast<const BundleMissMsg*>(msg.get())) {
    on_pull_miss(from, *m);
  } else if (const auto* m = dynamic_cast<const HeartbeatMsg*>(msg.get())) {
    // Echo pings (only pings! echoing echoes would loop forever) so the
    // pinging subscriber's liveness view of us refreshes even when no
    // data is flowing.
    if (!m->reply) {
      auto echo = std::make_shared<HeartbeatMsg>();
      echo->reply = true;
      net_.send(self_, from, std::move(echo));
    }
  }
}

void MultiZoneFullNode::on_subscribe(NodeId from, const SubscribeMsg& msg) {
  std::vector<StripeIndex> accepted;
  std::vector<StripeIndex> rejected;
  const bool full = subscriber_count() >= cfg_.max_subscribers;
  for (StripeIndex s : msg.stripes) {
    if (s >= cfg_.n_consensus) continue;
    const bool can_serve = providers_[s] != kNoNode || pending_[s] != kNoNode;
    if (!full && can_serve) {
      accepted.push_back(s);
      subscribers_[s].insert(from);
    } else {
      rejected.push_back(s);
    }
  }
  if (!accepted.empty()) {
    auto ok = std::make_shared<AcceptSubscribeMsg>();
    ok->stripes = std::move(accepted);
    ok->from_consensus = false;
    net_.send(self_, from, std::move(ok));
  }
  if (!rejected.empty()) {
    auto no = std::make_shared<RejectSubscribeMsg>();
    no->stripes = std::move(rejected);
    no->children = subscriber_union();
    net_.send(self_, from, std::move(no));
  }
}

void MultiZoneFullNode::on_accept(NodeId from,
                                  const AcceptSubscribeMsg& msg) {
  const bool was_relayer = is_relayer();
  for (StripeIndex s : msg.stripes) {
    if (s >= cfg_.n_consensus) continue;
    if (pending_[s] == from) pending_[s] = kNoNode;
    if (providers_[s] != kNoNode && providers_[s] != from) {
      // Replacing an existing provider: tell the old one.
      auto un = std::make_shared<UnsubscribeMsg>();
      un->stripes = {s};
      net_.send(self_, providers_[s], std::move(un));
      direct_.erase(s);
    }
    providers_[s] = from;
    provider_since_[s] = now();
    if (msg.from_consensus) direct_.insert(s);
  }
  if (!was_relayer && is_relayer()) {
    announce_relayer();  // lines 16-18 of Algorithm 1
  }
}

void MultiZoneFullNode::on_reject(NodeId from,
                                  const RejectSubscribeMsg& msg) {
  for (StripeIndex s : msg.stripes) {
    if (s >= cfg_.n_consensus) continue;
    if (providers_[s] == from) {
      // Late reject = eviction by an overloaded provider.
      direct_.erase(s);
      resubscribe(s);
      continue;
    }
    if (pending_[s] != from) continue;
    pending_[s] = kNoNode;
    // Retry with a referred child, another relayer, or consensus. The
    // referral ids arrive off the wire; only follow ones the directory
    // knows (a hostile reject could name arbitrary node ids).
    for (NodeId child : msg.children) {
      if (child != self_ && dir_.has_node(child)) {
        send_subscribe(child, {s});
        break;
      }
    }
    if (pending_[s] == kNoNode && providers_[s] == kNoNode) {
      resubscribe(s);
    }
  }
}

void MultiZoneFullNode::on_unsubscribe(NodeId from,
                                       const UnsubscribeMsg& msg) {
  for (StripeIndex s : msg.stripes) {
    if (s < cfg_.n_consensus) subscribers_[s].erase(from);
  }
}

void MultiZoneFullNode::on_relayer_alive(NodeId /*from*/,
                                         const RelayerAliveMsg& msg) {
  if (msg.relayer == self_) return;
  // The relayer id arrives off the wire and later becomes a subscribe
  // target; ignore announcements about nodes the directory never
  // registered.
  if (!dir_.has_node(msg.relayer)) return;
  // The stripe list arrives off the wire: drop out-of-range indices
  // before they reach providers_ / direct_ (or get cached in
  // known_relayers_ and replayed later by on_leave).
  std::set<StripeIndex> relayed;
  for (StripeIndex s : msg.relayed) {
    if (s < cfg_.n_consensus) relayed.insert(s);
  }
  auto& state = known_relayers_[msg.relayer];
  state.relayed = relayed;
  state.join_time = msg.join_time;
  state.last_seen = now();

  if (relayed.empty()) {
    // The sender demoted itself (lines 4-5 of Algorithm 2); replace it
    // wherever it was our provider.
    for (StripeIndex s = 0; s < cfg_.n_consensus; ++s) {
      if (providers_[s] == msg.relayer) resubscribe(s);
    }
    known_relayers_.erase(msg.relayer);
    return;
  }

  if (is_relayer()) {
    // Redundancy trimming (lines 7-13): when two relayers both receive
    // a stripe straight from consensus, the earlier-joined one hands
    // the overlap to the later one — and anyone defers to a relayer
    // that serves exactly one stripe (the |P_m| = 1 clause). Keep at
    // least one consensus-direct stripe, preferring self % n_c so the
    // surviving direct stripes spread across consensus nodes instead of
    // piling onto one.
    std::vector<StripeIndex> overlap;
    for (StripeIndex s : relayed) {
      if (direct_.count(s) != 0) overlap.push_back(s);
    }
    if (!overlap.empty() &&
        (join_time_ <= msg.join_time || relayed.size() == 1)) {
      const auto preferred =
          static_cast<StripeIndex>(self_ % cfg_.n_consensus);
      // Give up the preferred stripe last.
      std::stable_partition(overlap.begin(), overlap.end(),
                            [preferred](StripeIndex s) {
                              return s != preferred;
                            });
      bool changed = false;
      for (StripeIndex s : overlap) {
        if (direct_.size() <= 1) break;
        // Move stripe s: unsubscribe its consensus origin, take it
        // from the later relayer instead.
        auto un = std::make_shared<UnsubscribeMsg>();
        un->stripes = {s};
        net_.send(self_, providers_[s], std::move(un));
        direct_.erase(s);
        providers_[s] = kNoNode;
        send_subscribe(msg.relayer, {s});
        changed = true;
      }
      if (changed) announce_relayer();
    }
  }

  // Lines 14-18: if our provider of a stripe stopped relaying it, move
  // the subscription to this relayer.
  for (StripeIndex s : relayed) {
    const NodeId provider = providers_[s];
    if (provider == kNoNode || provider == msg.relayer) continue;
    const auto it = known_relayers_.find(provider);
    if (it != known_relayers_.end() && it->second.relayed.count(s) == 0 &&
        direct_.count(s) == 0) {
      auto un = std::make_shared<UnsubscribeMsg>();
      un->stripes = {s};
      net_.send(self_, provider, std::move(un));
      providers_[s] = kNoNode;
      send_subscribe(msg.relayer, {s});
    }
  }
}

void MultiZoneFullNode::on_stripe(NodeId /*from*/, const StripeMsg& msg) {
  if (msg.index >= cfg_.n_consensus) return;

  // Real-bytes mode: reject stripes that fail Merkle verification
  // against the committed stripe root before counting or forwarding
  // them (§IV-D: verify, then spend memory). Headers whose producer
  // never committed a root (stripe_root == 0) skip the Merkle check —
  // the index consistency check still applies.
  if (msg.payload) {
    const bool index_ok = msg.payload->index == msg.index;
    const bool merkle_ok =
        msg.header.stripe_root == kZeroHash ||
        erasure::StripeCodec::verify(*msg.payload, msg.header.stripe_root);
    if (!index_ok || !merkle_ok) {
      ++stripe_verify_failures_;
      return;
    }
  }

  last_stripe_at_[msg.index] = now();
  last_any_stripe_ = now();
  const Hash32 hash = msg.header.hash();
  auto& state = stripes_[hash];
  if (state.have.empty()) state.header = msg.header;
  if (!state.have.insert(msg.index).second) return;  // duplicate
  if (msg.payload) {
    if (state.bodies.empty()) state.bodies.resize(cfg_.n_consensus);
    state.bodies[msg.index] = msg.payload;
  }

  // Store-and-forward along the per-stripe multicast tree. The payload
  // shared_ptr rides along unchanged — no byte copies per hop.
  if (!subscribers_[msg.index].empty()) {
    auto copy = std::make_shared<StripeMsg>(msg);
    paced_fanout({subscribers_[msg.index].begin(),
                  subscribers_[msg.index].end()},
                 std::move(copy));
  }

  if (!state.decoded && state.have.size() >= k()) {
    if (!state.bodies.empty()) {
      if (!try_byte_decode(state)) return;  // wait for more stripes
    }
    state.decoded = true;
    store_bundle_record(state.header);
  }
}

bool MultiZoneFullNode::try_byte_decode(StripeState& state) {
  // Decode from the verified stripe bytes we hold. Views only — the
  // shard buffers stay inside the shared stripes.
  std::vector<std::optional<BytesView>> shards(cfg_.n_consensus);
  std::size_t present = 0;
  for (std::size_t i = 0; i < state.bodies.size(); ++i) {
    if (!state.bodies[i]) continue;
    shards[i] = BytesView(state.bodies[i]->data);
    ++present;
  }
  if (present < k()) return false;
  erasure::Expected<Bundle> decoded = codec_.try_decode(shards);
  if (!decoded.ok()) {
    ++decode_failures_;
    return false;
  }
  ++byte_decoded_count_;
  // Publish so block reconstruction (and pulls served by zone peers)
  // can materialize the bundle exactly as in oracle mode.
  dir_.publish_bundle(std::move(decoded).value());
  return true;
}

void MultiZoneFullNode::store_bundle_record(const BundleHeader& header) {
  if (header.producer >= chains_.size()) return;
  auto& chain = chains_[header.producer];
  if (!chain.emplace(header.height, header.hash()).second) return;
  ++decoded_count_;
  while (chain.count(contiguous_[header.producer] + 1) != 0) {
    ++contiguous_[header.producer];
  }
  if (tracer_ != nullptr) {
    tracer_->record(TraceStage::kBundleDecoded, header.hash(), now(), self_);
  }
  if (on_bundle_decoded) on_bundle_decoded(header, now());
  try_reconstruct_blocks();
}

void MultiZoneFullNode::on_predis_block(NodeId from,
                                        const PredisBlockMsg& msg) {
  const Hash32 hash = msg.block.hash();
  if (!seen_blocks_.insert(hash).second) return;

  // Admission check: drop structurally-hostile announcements before
  // they are forwarded or enter pending_blocks_. Everything the block
  // claims about chain spans is unauthenticated at this point (the
  // signature is only checked consensus-side), so mismatched vectors,
  // regressing cuts, unknown chains and absurd per-chain spans are all
  // rejected here rather than laundered into the repair walks below.
  const PredisBlock& blk = msg.block;
  if (blk.cut_heights.size() != blk.prev_heights.size() ||
      blk.cut_heights.size() > chains_.size()) {
    return;
  }
  for (std::size_t i = 0; i < blk.cut_heights.size(); ++i) {
    if (blk.cut_heights[i] < blk.prev_heights[i]) return;
    if (blk.cut_heights[i] - blk.prev_heights[i] > kMaxBlockSpan) return;
  }

  // Forward to our subscribers (relayer -> ordinary flow, §IV-D).
  const std::vector<NodeId> children = subscriber_union();
  if (!children.empty()) {
    paced_fanout(children, std::make_shared<PredisBlockMsg>(msg));
  }

  pending_blocks_.emplace(hash, PendingBlock{msg.block, from, 0});
  try_reconstruct_blocks();
  schedule_pull(hash);
}

void MultiZoneFullNode::send_pull(const Hash32& block_hash) {
  const auto it = pending_blocks_.find(block_hash);
  if (it == pending_blocks_.end()) return;  // completed meanwhile
  std::vector<MissingBundleRef> refs;
  const PredisBlock& b = it->second.block;
  for (std::size_t i = 0; i < b.cut_heights.size(); ++i) {
    // Admission (on_predis_block) already bounded the span; the clamp
    // repeats the invariant locally so the walk is safe on its own.
    for (BundleHeight h = b.prev_heights[i] + 1;
         h <= std::min(b.cut_heights[i], b.prev_heights[i] + kMaxBlockSpan);
         ++h) {
      if (chains_[i].count(h) == 0) {
        refs.push_back({static_cast<NodeId>(i), h});
      }
    }
  }
  if (refs.empty()) {
    try_reconstruct_blocks();
    return;
  }
  // Pull-target ladder: keep the consensus layer out of the repair
  // path (its uplink is the system bottleneck) — random zone members
  // first, then the cross-zone backup partner (§IV-F), and only then
  // the block sender itself.
  NodeId target = it->second.sender;
  const std::size_t attempt = it->second.pull_attempts;
  const auto& members = dir_.members(zone_);
  if (attempt % 3 == 0 && members.size() > 1) {
    do {
      target = members[rng_.next_below(members.size())];
    } while (target == self_);
  } else if (attempt % 3 == 1 && backup_peer_ != kNoNode) {
    target = backup_peer_;
  }
  ++it->second.pull_attempts;
  if (tracer_ != nullptr) tracer_->record_pull(block_hash, self_, now());
  auto pull = std::make_shared<BundlePullMsg>();
  pull->block = block_hash;
  pull->refs = std::move(refs);
  net_.send(self_, target, std::move(pull));
}

void MultiZoneFullNode::schedule_pull(const Hash32& block_hash) {
  // Keep pulling the gaps until the block reconstructs. The backoff
  // exponent grows per ladder *cycle* (every target tried once), not
  // per attempt: doubling the wait is meant to stop us hammering one
  // peer, and rotating to a fresh target deserves a fresh timeout.
  // Pre-fix the exponent grew per attempt, so a node that needed the
  // whole ladder slept 0.7 + 1.4 + 2.8 s of dead air — the ~4.4 s
  // distribution stragglers the tracer attributed to 3-pull blocks.
  const auto it0 = pending_blocks_.find(block_hash);
  if (it0 == pending_blocks_.end()) return;
  const std::size_t cycle = it0->second.pull_attempts / 3;
  // First probe goes out after a quarter timeout (same pacing as the
  // miss-retry path): a node still short of bundles a few RTTs after
  // the block announcement is overwhelmingly missing them for good
  // (dropped stripe, pruned relayer), and waiting out a full timeout
  // before the first pull put the entire repair tail beyond 500 ms.
  // Later cycles keep the full exponential schedule.
  const SimTime quarter = std::max<SimTime>(milliseconds(25),
                                            cfg_.pull_timeout / 4);
  const SimTime delay =
      cycle == 0 && it0->second.pull_attempts == 0
          ? quarter - static_cast<SimTime>(rng_.next_below(
                          static_cast<std::uint64_t>(quarter) / 2 + 1))
          : pull_backoff_.delay(cycle, rng_);
  PREDIS_FIRE_AND_FORGET(net_.schedule(self_, delay, [this, block_hash] {
    if (left_) return;
    if (pending_blocks_.find(block_hash) == pending_blocks_.end()) return;
    send_pull(block_hash);
    schedule_pull(block_hash);
  }));
}

void MultiZoneFullNode::on_pull_miss(NodeId /*from*/,
                                     const BundleMissMsg& msg) {
  const auto it = pending_blocks_.find(msg.block);
  if (it == pending_blocks_.end()) return;
  // The target had nothing for us. Rotate to the next ladder target
  // after one short flat delay — the exponential schedule stays armed
  // as the lost-message fallback, but a definitive "don't have it" is
  // not congestion and must not cost a full backoff rung.
  const SimTime base = std::max<SimTime>(milliseconds(25),
                                         cfg_.pull_timeout / 4);
  const SimTime retry =
      base - static_cast<SimTime>(rng_.next_below(
                 static_cast<std::uint64_t>(base) / 2 + 1));
  const Hash32 block_hash = msg.block;
  PREDIS_FIRE_AND_FORGET(net_.schedule(self_, retry, [this, block_hash] {
    if (left_) return;
    send_pull(block_hash);
  }));
}

void MultiZoneFullNode::try_reconstruct_blocks() {
  for (auto it = pending_blocks_.begin(); it != pending_blocks_.end();) {
    const PredisBlock& block = it->second.block;
    bool complete = true;
    for (std::size_t i = 0; complete && i < block.cut_heights.size(); ++i) {
      for (BundleHeight h = block.prev_heights[i] + 1;
           h <= std::min(block.cut_heights[i],
                         block.prev_heights[i] + kMaxBlockSpan);
           ++h) {
        if (chains_[i].count(h) == 0) {
          complete = false;
          break;
        }
      }
    }
    if (!complete) {
      ++it;
      continue;
    }
    ++completed_count_;
    if (tracer_ != nullptr) {
      tracer_->record(TraceStage::kBlockReconstructed, block.hash(), now(),
                      self_);
    }
    if (on_block_complete) on_block_complete(block, now());
    it = pending_blocks_.erase(it);
  }
}

void MultiZoneFullNode::on_leave(NodeId from) {
  // §IV-E: a relayer's leave tells the receiver to become a relayer in
  // its stead; an ordinary node's leave just triggers resubscription.
  const auto it = known_relayers_.find(from);
  const bool was_relayer = it != known_relayers_.end() &&
                           !it->second.relayed.empty();
  std::vector<StripeIndex> lost;
  for (StripeIndex s = 0; s < cfg_.n_consensus; ++s) {
    if (providers_[s] == from) {
      providers_[s] = kNoNode;
      lost.push_back(s);
    }
  }
  if (was_relayer) {
    const auto stripes = it->second.relayed;
    known_relayers_.erase(it);
    subscribe_to_consensus({stripes.begin(), stripes.end()});
    for (StripeIndex s : lost) {
      if (stripes.count(s) == 0) resubscribe(s);
    }
  } else {
    for (StripeIndex s : lost) resubscribe(s);
  }
}

void MultiZoneFullNode::leave() {
  left_ = true;
  if (is_relayer()) {
    // Send leave to the earliest-joined subscriber.
    NodeId heir = kNoNode;
    SimTime best = kSimTimeNever;
    for (NodeId child : subscriber_union()) {
      SimTime t = kSimTimeNever;
      try {
        t = dir_.join_time(child);
      } catch (...) {
        continue;  // consensus nodes are not in the zone registry
      }
      if (t < best) {
        best = t;
        heir = child;
      }
    }
    if (heir != kNoNode) {
      net_.send(self_, heir, std::make_shared<LeaveMsg>());
    }
  } else {
    for (NodeId child : subscriber_union()) {
      net_.send(self_, child, std::make_shared<LeaveMsg>());
    }
  }
}

void MultiZoneFullNode::on_digest(NodeId from, const DigestMsg& msg) {
  // Pull whatever the sender has that we lack (§IV-F backup sync).
  std::vector<MissingBundleRef> refs;
  for (std::size_t i = 0; i < msg.heights.size() && i < chains_.size();
       ++i) {
    const BundleHeight upto =
        std::min(msg.heights[i], contiguous_[i] + kMaxDigestSpan);
    for (BundleHeight h = contiguous_[i] + 1; h <= upto; ++h) {
      if (chains_[i].count(h) == 0) {
        refs.push_back({static_cast<NodeId>(i), h});
      }
    }
  }
  if (!refs.empty()) {
    auto pull = std::make_shared<BundlePullMsg>();
    pull->refs = std::move(refs);
    net_.send(self_, from, std::move(pull));
  }
}

void MultiZoneFullNode::on_pull(NodeId from, const BundlePullMsg& msg) {
  auto push = std::make_shared<BundlePushMsg>();
  std::uint32_t missing = 0;
  for (const auto& ref : msg.refs) {
    if (ref.chain >= chains_.size()) {
      ++missing;
      continue;
    }
    const auto it = chains_[ref.chain].find(ref.height);
    const Bundle* bundle =
        it == chains_[ref.chain].end() ? nullptr : dir_.bundle(it->second);
    if (bundle != nullptr) {
      push->bundles.push_back(*bundle);
    } else {
      ++missing;
    }
  }
  if (!push->bundles.empty()) net_.send(self_, from, std::move(push));
  // Tell a block-repair puller what we could not serve so it rotates
  // targets now instead of waiting out its backoff.
  if (missing > 0 && msg.block != kZeroHash) {
    auto miss = std::make_shared<BundleMissMsg>();
    miss->block = msg.block;
    miss->missing = missing;
    net_.send(self_, from, std::move(miss));
  }
}

void MultiZoneFullNode::on_push(NodeId /*from*/, const BundlePushMsg& msg) {
  for (const auto& bundle : msg.bundles) {
    // Accept a pushed bundle only when it matches the published record
    // for its header hash (models verifying the producer signature +
    // body root). A fabricated push must not poison chains_ — a bogus
    // (producer, height) entry would freeze contiguous_ and block
    // reconstruction forever.
    if (dir_.bundle(bundle.header.hash()) == nullptr) {
      ++push_verify_failures_;
      continue;
    }
    store_bundle_record(bundle.header);
  }
}

void MultiZoneFullNode::tick_relayer_alive() {
  if (left_) return;
  if (is_relayer()) announce_relayer();
  PREDIS_FIRE_AND_FORGET(net_.schedule(self_, cfg_.relayer_alive_interval,
                                       [this] { tick_relayer_alive(); }));
}

void MultiZoneFullNode::tick_relayer_check() {
  if (left_) return;
  // Convergence aid for Algorithm 2: a relayer whose single direct
  // stripe duplicates an earlier relayer's moves to a stripe no zone
  // relayer covers, so each consensus node ends up with exactly one
  // direct subscriber per zone.
  if (is_relayer() && direct_.size() == 1) {
    const StripeIndex mine = *direct_.begin();
    bool duplicated = false;
    std::set<StripeIndex> covered = direct_;
    for (const auto& [id, state] : known_relayers_) {
      covered.insert(state.relayed.begin(), state.relayed.end());
      if (state.relayed.count(mine) != 0 &&
          (state.join_time < join_time_ ||
           (state.join_time == join_time_ && id < self_))) {
        duplicated = true;
      }
    }
    if (duplicated && covered.size() < cfg_.n_consensus) {
      StripeIndex uncovered = 0;
      for (StripeIndex s = 0; s < cfg_.n_consensus; ++s) {
        if (covered.count(s) == 0) {
          uncovered = s;
          break;
        }
      }
      auto un = std::make_shared<UnsubscribeMsg>();
      un->stripes = {mine};
      net_.send(self_, providers_[mine], std::move(un));
      direct_.erase(mine);
      providers_[mine] = kNoNode;
      subscribe_to_consensus({uncovered});
      resubscribe(mine);
      announce_relayer();
    }
  }
  // Redundant-relayer demotion (§IV-E / Algorithm 2 lines 21-23): when
  // the zone already has more than n_c relayers and every stripe we
  // serve direct is also served direct by an earlier relayer, step down
  // to an ordinary node, re-subscribing through those relayers.
  if (is_relayer() && known_active_relayers() > cfg_.n_consensus) {
    // Only the latest-joined active relayer may step down in any check
    // period — serialized demotion avoids the cascade where a whole
    // zone demotes at once and stripes lose their providers.
    bool latest = true;
    bool redundant = true;
    for (const auto& [id, state] : known_relayers_) {
      if (state.relayed.empty()) continue;
      if (state.join_time > join_time_ ||
          (state.join_time == join_time_ && id > self_)) {
        latest = false;
        break;
      }
    }
    for (StripeIndex s : direct_) {
      bool covered_elsewhere = false;
      for (const auto& [id, state] : known_relayers_) {
        if (state.relayed.empty() || state.relayed.count(s) == 0) continue;
        if (state.join_time < join_time_ ||
            (state.join_time == join_time_ && id < self_)) {
          covered_elsewhere = true;
          break;
        }
      }
      if (!covered_elsewhere) {
        redundant = false;
        break;
      }
    }
    if (latest && redundant) {
      const std::set<StripeIndex> giving_up = direct_;
      for (StripeIndex s : giving_up) {
        auto un = std::make_shared<UnsubscribeMsg>();
        un->stripes = {s};
        net_.send(self_, providers_[s], std::move(un));
        direct_.erase(s);
        providers_[s] = kNoNode;
        resubscribe(s);
      }
      // Announce the demotion (empty stripe set, lines 22-23).
      announce_relayer();
    }
  }
  // §IV-E: if the zone has fewer than n_c live relayers, volunteer.
  if (!is_relayer() && known_active_relayers() < cfg_.n_consensus) {
    std::set<StripeIndex> covered;
    for (const auto& [id, state] : known_relayers_) {
      covered.insert(state.relayed.begin(), state.relayed.end());
    }
    std::vector<StripeIndex> want;
    for (StripeIndex s = 0; s < cfg_.n_consensus; ++s) {
      if (covered.count(s) == 0) want.push_back(s);
    }
    if (want.empty()) {
      // All stripes covered; take over the one with the fewest backers.
      want.push_back(static_cast<StripeIndex>(
          rng_.next_below(cfg_.n_consensus)));
    }
    subscribe_to_consensus(want);
  }
  PREDIS_FIRE_AND_FORGET(net_.schedule(self_, cfg_.relayer_check_interval,
                                       [this] { tick_relayer_check(); }));
}

void MultiZoneFullNode::tick_heartbeat() {
  if (left_) return;
  std::set<NodeId> peers;
  for (NodeId provider : providers_) {
    if (provider != kNoNode) peers.insert(provider);
  }
  auto hb = std::make_shared<HeartbeatMsg>();
  for (NodeId peer : peers) net_.send(self_, peer, hb);

  // Detect dead providers.
  const SimTime deadline = now() - cfg_.heartbeat_timeout;
  for (StripeIndex s = 0; s < cfg_.n_consensus; ++s) {
    const NodeId provider = providers_[s];
    if (provider == kNoNode) continue;
    const auto it = last_heard_.find(provider);
    if (it != last_heard_.end() && it->second < deadline) {
      direct_.erase(s);
      resubscribe(s);
    }
  }
  // Re-request stripes whose subscription never completed.
  for (StripeIndex s = 0; s < cfg_.n_consensus; ++s) {
    if (providers_[s] == kNoNode && pending_[s] == kNoNode) {
      resubscribe(s);
    }
  }
  // Stream-stall detection: subscription chains can form cycles in
  // which every provider is alive but no stripe data flows. If other
  // streams are active while one has been silent since well after we
  // attached to its provider, re-attach elsewhere (the resubscribe
  // ladder randomizes, eventually breaking the cycle).
  const SimTime stall = 3 * cfg_.heartbeat_interval;
  if (last_any_stripe_ != 0 && now() - last_any_stripe_ < stall) {
    for (StripeIndex s = 0; s < cfg_.n_consensus; ++s) {
      if (providers_[s] == kNoNode || direct_.count(s) != 0) continue;
      const SimTime fresh =
          std::max(last_stripe_at_[s], provider_since_[s]);
      if (now() - fresh > stall) {
        resubscribe(s);
      }
    }
  }
  PREDIS_FIRE_AND_FORGET(net_.schedule(self_, cfg_.heartbeat_interval,
                                       [this] { tick_heartbeat(); }));
}

void MultiZoneFullNode::tick_digest() {
  if (left_) return;
  // Backup connection (§IV-F): a stable partner in the neighbouring
  // zone. Re-evaluated each tick so nodes that join later still get a
  // partner.
  if (dir_.zone_count() > 1) {
    const std::uint32_t next_zone =
        (zone_ + 1) % static_cast<std::uint32_t>(dir_.zone_count());
    const auto& members = dir_.members(next_zone);
    if (!members.empty()) {
      backup_peer_ = members[self_ % members.size()];
    }
  }
  if (backup_peer_ != kNoNode) {
    auto digest = std::make_shared<DigestMsg>();
    digest->heights = contiguous_;
    net_.send(self_, backup_peer_, std::move(digest));
  }
  PREDIS_FIRE_AND_FORGET(net_.schedule(self_, cfg_.digest_interval,
                                       [this] { tick_digest(); }));
}

void MultiZoneFullNode::forward_client_txs(const ClientRequestMsg& msg) {
  // §IV-D second dissemination strategy: a client hands its transaction
  // to any full node; the transaction names its target consensus node
  // and the full node forwards it there (default: hash of the client).
  const auto& consensus = dir_.consensus_nodes();
  if (consensus.empty()) return;
  std::map<NodeId, std::vector<Transaction>> per_target;
  for (const Transaction& tx : msg.txs) {
    const std::size_t idx = tx.target_consensus != kNoNode
                                ? tx.target_consensus % consensus.size()
                                : tx.client % consensus.size();
    per_target[consensus[idx]].push_back(tx);
  }
  for (auto& [target, txs] : per_target) {
    auto fwd = std::make_shared<ClientRequestMsg>();
    fwd->txs = std::move(txs);
    net_.send(self_, target, std::move(fwd));
  }
}

std::vector<NodeId> MultiZoneFullNode::subscriber_union() const {
  std::set<NodeId> unique;
  for (const auto& set : subscribers_) unique.insert(set.begin(), set.end());
  return {unique.begin(), unique.end()};
}

}  // namespace predis::multizone
