// §IV-B robustness analysis, as runnable math.
//
// The paper models malicious delay/omission in the network layer with
// a node failure probability:  p_c = (f/N)·p_b + (1 − f/N)·p_h ≈ f/N
// (Eq. 3, with p_b = 1 and p_h ≈ the ~3%/year server failure rate),
// and sizes the relayer set per zone so that the probability of *all*
// relayers failing stays below a threshold:  (f/N)^{n_zr} ≤ p_r
// (Eq. 4). With the paper's choice n_zr = n_c, a node receives data
// from at least one relayer with probability > 99.98% once n_c ≥ 4.
#pragma once

#include <cmath>
#include <cstddef>
#include <optional>

namespace predis::multizone {

/// Eq. 3: general node failure probability. `p_b` defaults to 1
/// (malicious nodes always "fail" to deliver); `p_h` to the annual
/// server failure rate from the paper's citation.
inline double node_failure_probability(std::size_t f, std::size_t total,
                                        double p_b = 1.0,
                                        double p_h = 0.03) {
  if (total == 0) return 0.0;
  const double malicious = static_cast<double>(f) /
                           static_cast<double>(total);
  return malicious * p_b + (1.0 - malicious) * p_h;
}

/// Probability that every one of `n_zr` independent relayers fails.
inline double all_relayers_fail_probability(double p_c,
                                             std::size_t n_zr) {
  return std::pow(p_c, static_cast<double>(n_zr));
}

/// Eq. 4: smallest relayer count per zone such that
/// p_c^{n_zr} <= p_r. Returns at least 1, or nullopt when no finite
/// relayer count can satisfy the bound (every relayer surely fails, or
/// the target probability is not achievable).
inline std::optional<std::size_t> min_relayers_per_zone(double p_c,
                                                        double p_r) {
  if (p_c <= 0.0) return 1;
  if (p_c >= 1.0) return std::nullopt;
  if (p_r <= 0.0) return std::nullopt;
  if (p_r >= 1.0) return 1;
  const double n = std::log(p_r) / std::log(p_c);
  const auto up = static_cast<std::size_t>(std::ceil(n));
  return up == 0 ? std::size_t{1} : up;
}

/// The paper's headline number: with n_zr = n_c relayers, the chance a
/// node can reach at least one live relayer.
inline double relayer_availability(std::size_t f, std::size_t total,
                                    std::size_t n_zr) {
  return 1.0 -
         all_relayers_fail_probability(node_failure_probability(f, total),
                                       n_zr);
}

}  // namespace predis::multizone
