#include "multizone/experiments.hpp"

#include <algorithm>
#include <limits>
#include <memory>
#include <mutex>

#include "common/metrics.hpp"
#include "common/thread_annotations.hpp"
#include "multizone/consensus_distributor.hpp"
#include "multizone/full_node.hpp"
#include "multizone/random_gossip.hpp"
#include "runtime/environments.hpp"
#include "runtime/sim_runtime.hpp"
#include "txpool/client.hpp"

namespace predis::multizone {

using namespace predis::consensus;

const char* to_string(Topology t) {
  switch (t) {
    case Topology::kStar:
      return "star";
    case Topology::kRandom:
      return "random";
    case Topology::kMultiZone:
      return "multi-zone";
  }
  return "?";
}

// =====================================================================
// Fig. 7 — consensus throughput under distribution load
// =====================================================================

ThroughputResult run_distribution_cluster(const ThroughputConfig& cfg) {
  runtime::SimRuntime sim_backend((runtime::lan_latency()));
  runtime::Runtime& net =
      cfg.ctx.backend != nullptr ? *cfg.ctx.backend : sim_backend.runtime();
  if (cfg.ctx.trace != nullptr) net.set_tracer(cfg.ctx.trace);

  // Consensus nodes.
  std::vector<NodeId> consensus_ids;
  for (std::size_t i = 0; i < cfg.n_consensus; ++i) {
    consensus_ids.push_back(net.add_node(runtime::node_100mbps(0)));
  }

  // Clients start once the join churn has settled (the paper's testbed
  // likewise measures an established topology); computed up front so
  // the consensus config can stop proposals at load-stop time.
  const SimTime setup = cfg.topology == Topology::kMultiZone
                            ? static_cast<SimTime>(cfg.n_full) *
                                      milliseconds(120) +
                                  milliseconds(1500)
                            : 0;

  ConsensusConfig ccfg;
  ccfg.nodes = consensus_ids;
  ccfg.f = cfg.f;
  ccfg.propose_until = setup + cfg.duration;

  std::vector<PublicKey> keys;
  for (NodeId id : consensus_ids) {
    keys.push_back(KeyPair::from_seed(id).public_key());
  }

  Metrics metrics;
  CommitLedger ledger(metrics);
  ZoneDirectory dir(std::max<std::size_t>(1, cfg.n_zones));
  dir.set_consensus_nodes(consensus_ids);

  MultiZoneConfig mzcfg;
  mzcfg.n_consensus = cfg.n_consensus;
  mzcfg.f = cfg.f;
  mzcfg.n_zones = cfg.n_zones;
  // Keep the in-zone stripe distribution a *tree*, not a star on each
  // relayer: a provider relaying every bundle's stripe can serve only a
  // few children before its 100 Mbps uplink saturates, so cap fan-out
  // and let subscription referrals deepen the tree (SplitStream-style).
  mzcfg.max_subscribers = 4;
  mzcfg.real_stripe_payloads = cfg.real_stripe_payloads;

  const DistributionMode mode = cfg.topology == Topology::kStar
                                    ? DistributionMode::kStar
                                    : DistributionMode::kMultiZone;

  std::vector<std::unique_ptr<MultiZoneConsensusNode>> consensus;
  for (std::size_t i = 0; i < cfg.n_consensus; ++i) {
    NodeContext ctx(net, consensus_ids[i], ccfg);
    predis::PredisConfig pcfg;
    pcfg.bundle_size = cfg.bundle_size;
    pcfg.seed = cfg.seed;
    // Serve distribution-layer pulls long after commit: full nodes may
    // lag seconds behind the consensus layer.
    pcfg.gc_retention = 4096;
    consensus.push_back(std::make_unique<MultiZoneConsensusNode>(
        ctx, pcfg, keys, KeyPair::from_seed(consensus_ids[i]), ledger,
        mzcfg, dir, mode));
    consensus.back()->set_tracer(cfg.ctx.tracer);
    net.attach(consensus_ids[i], consensus.back().get());
  }

  // Full nodes.
  std::vector<NodeId> full_ids;
  for (std::size_t i = 0; i < cfg.n_full; ++i) {
    full_ids.push_back(net.add_node(runtime::node_100mbps(0)));
  }

  // Capture maps are written from actor callbacks; on the threaded
  // backend those fire on different workers, so guard them.
  std::mutex capture_m;
  std::map<std::uint64_t, SimTime> announced_at;   // block height -> time
  std::map<std::uint64_t, std::size_t> completions;  // height -> count

  std::vector<std::unique_ptr<runtime::Actor>> full_nodes;
  std::vector<MultiZoneFullNode*> mz_nodes;
  if (cfg.topology == Topology::kStar) {
    // Round-robin assignment of full nodes to consensus nodes.
    std::vector<std::vector<NodeId>> children(cfg.n_consensus);
    for (std::size_t i = 0; i < full_ids.size(); ++i) {
      children[i % cfg.n_consensus].push_back(full_ids[i]);
    }
    for (std::size_t i = 0; i < cfg.n_consensus; ++i) {
      consensus[i]->set_star_children(std::move(children[i]));
    }
    for (NodeId id : full_ids) {
      auto node = std::make_unique<StarFullNode>(net);
      node->set_tracer(cfg.ctx.tracer, id);
      node->on_block = [&completions, &capture_m](std::uint64_t id,
                                                  SimTime) {
        std::lock_guard<std::mutex> lock(capture_m);
        ++completions[id];
      };
      net.attach(id, node.get());
      full_nodes.push_back(std::move(node));
    }
  } else {
    for (std::size_t i = 0; i < full_ids.size(); ++i) {
      dir.register_node(full_ids[i],
                        static_cast<std::uint32_t>(i % cfg.n_zones),
                        static_cast<SimTime>(i) * milliseconds(120));
    }
    for (NodeId id : full_ids) {
      auto node = std::make_unique<MultiZoneFullNode>(net, id, mzcfg, dir,
                                                      cfg.seed);
      node->set_tracer(cfg.ctx.tracer);
      node->on_block_complete = [&completions, &capture_m](
                                    const PredisBlock& b, SimTime) {
        std::lock_guard<std::mutex> lock(capture_m);
        ++completions[b.height];
      };
      mz_nodes.push_back(node.get());
      net.attach(id, node.get());
      full_nodes.push_back(std::move(node));
    }
  }

  // Record announced blocks (once per committed block, at node 0).
  consensus[0]->on_block_distributed =
      [&announced_at, &capture_m, &net](const PredisBlock& block) {
        std::lock_guard<std::mutex> lock(capture_m);
        announced_at.emplace(block.height, net.now());
      };

  const double per_client =
      cfg.offered_load_tps / static_cast<double>(cfg.n_clients);
  std::vector<std::unique_ptr<ClientActor>> clients;
  for (std::size_t c = 0; c < cfg.n_clients; ++c) {
    runtime::NodeConfig ncfg;
    ncfg.region = 0;
    ncfg.up_bw = 10 * runtime::kBandwidth100Mbps;
    ncfg.down_bw = 10 * runtime::kBandwidth100Mbps;
    const NodeId id = net.add_node(ncfg);
    ClientConfig ccfg2;
    ccfg2.self = id;
    ccfg2.targets = {consensus_ids[c % cfg.n_consensus]};
    ccfg2.tx_per_second = per_client;
    ccfg2.start_at = setup;
    ccfg2.stop_at = setup + cfg.duration;
    ccfg2.record_from = setup + cfg.warmup;
    ccfg2.seed = cfg.seed * 7919 + c;
    clients.push_back(std::make_unique<ClientActor>(net, ccfg2, metrics));
    net.attach(id, clients.back().get());
  }

  if (cfg.ctx.on_network_ready) {
    cfg.ctx.on_network_ready(net, consensus_ids, full_ids);
  }
  net.start();
  net.run_until(setup + cfg.duration + cfg.drain);

  ThroughputResult result;
  result.throughput_tps =
      metrics.throughput_tps(setup + cfg.warmup, setup + cfg.duration);
  result.avg_latency_ms = metrics.latencies().mean();
  result.consistent = ledger.consistent();
  double up = 0;
  for (NodeId id : consensus_ids) {
    const runtime::TrafficStats stats = net.stats(id);
    metrics.record_bytes_sent(stats.bytes_sent);
    metrics.record_bytes_received(stats.bytes_received);
    up += static_cast<double>(stats.bytes_sent);
  }
  result.consensus_bytes_sent = metrics.bytes_sent();
  result.consensus_bytes_received = metrics.bytes_received();
  result.consensus_uplink_mbps = up / static_cast<double>(cfg.n_consensus) *
                                 8.0 / 1e6 / to_seconds(cfg.duration);
  // Coverage over blocks announced early enough to have had time to
  // propagate (exclude the trailing 3 simulated seconds).
  if (!full_ids.empty()) {
    const SimTime cutoff = net.now() - seconds(3);
    double sum = 0.0;
    std::size_t counted = 0;
    for (const auto& [height, when] : announced_at) {
      if (when > cutoff) continue;
      const auto it = completions.find(height);
      sum += it == completions.end()
                 ? 0.0
                 : static_cast<double>(it->second) /
                       static_cast<double>(full_ids.size());
      ++counted;
    }
    if (counted > 0) {
      result.full_node_coverage = sum / static_cast<double>(counted);
    }
  }
  for (MultiZoneFullNode* node : mz_nodes) {
    if (node->is_relayer()) ++result.relayers_seen;
  }
  result.last_executed_min = std::numeric_limits<std::uint64_t>::max();
  for (auto& node : consensus) {
    auto& core = node->inner().core();
    result.view_changes += core.view_changes();
    result.last_executed_min =
        std::min(result.last_executed_min, core.last_executed());
    result.last_executed_max =
        std::max(result.last_executed_max, core.last_executed());
  }
  if (cfg.ctx.tracer != nullptr) {
    result.stage_latency = cfg.ctx.tracer->stage_breakdown();
  }
  return result;
}

// =====================================================================
// Fig. 8 — block propagation latency
// =====================================================================

namespace {

/// Synthetic stripe source for the propagation experiment: stands in
/// for consensus node `index`, accepting stripe subscriptions and
/// sending its stripe of every produced bundle.
class SyntheticProducer final : public runtime::Actor {
 public:
  SyntheticProducer(runtime::Runtime& net, NodeId self, StripeIndex index,
                    std::size_t k, std::size_t max_subscribers)
      : net_(net), self_(self), index_(index), k_(k),
        max_subscribers_(max_subscribers) {}

  void on_message(NodeId from, const runtime::MsgPtr& msg) override {
    if (const auto* m = dynamic_cast<const SubscribeMsg*>(msg.get())) {
      std::vector<StripeIndex> accepted, rejected;
      for (StripeIndex s : m->stripes) {
        if (s == index_ && subscribers_.size() < max_subscribers_) {
          subscribers_.insert(from);
          accepted.push_back(s);
        } else {
          rejected.push_back(s);
        }
      }
      if (!accepted.empty()) {
        auto ok = std::make_shared<AcceptSubscribeMsg>();
        ok->stripes = std::move(accepted);
        ok->from_consensus = true;
        net_.send(self_, from, std::move(ok));
      }
      if (!rejected.empty()) {
        auto no = std::make_shared<RejectSubscribeMsg>();
        no->stripes = std::move(rejected);
        no->children.assign(subscribers_.begin(), subscribers_.end());
        net_.send(self_, from, std::move(no));
      }
      return;
    }
    if (const auto* m = dynamic_cast<const UnsubscribeMsg*>(msg.get())) {
      for (StripeIndex s : m->stripes) {
        if (s == index_) subscribers_.erase(from);
      }
      return;
    }
    if (const auto* m = dynamic_cast<const BundlePullMsg*>(msg.get())) {
      if (serve_pull) serve_pull(from, *m);
      return;
    }
    if (const auto* m = dynamic_cast<const HeartbeatMsg*>(msg.get())) {
      if (!m->reply) {
        auto echo = std::make_shared<HeartbeatMsg>();
        echo->reply = true;
        net_.send(self_, from, std::move(echo));
      }
      return;
    }
  }

  void send_stripe(const BundleHeader& header, std::size_t bundle_bytes) {
    auto msg = std::make_shared<StripeMsg>();
    msg->header = header;
    msg->index = index_;
    msg->body_bytes = (bundle_bytes + k_ - 1) / k_;
    msg->proof_bytes = 96;
    for (NodeId sub : subscribers_) net_.send(self_, sub, msg);
  }

  void send_block(const PredisBlock& block) {
    auto msg = std::make_shared<PredisBlockMsg>();
    msg->block = block;
    for (NodeId sub : subscribers_) net_.send(self_, sub, msg);
  }

  std::function<void(NodeId, const BundlePullMsg&)> serve_pull;

 private:
  runtime::Runtime& net_;
  NodeId self_;
  StripeIndex index_;
  std::size_t k_;
  std::size_t max_subscribers_;
  std::set<NodeId> subscribers_;
};

/// Star producer for Fig. 8: pushes complete blocks to its children.
class StarProducer final : public runtime::Actor {
 public:
  explicit StarProducer(runtime::Runtime& net, NodeId self)
      : net_(net), self_(self) {}
  void on_message(NodeId, const runtime::MsgPtr&) override {}
  void push_block(std::uint64_t id, std::size_t bytes) {
    auto msg = std::make_shared<FullBlockMsg>();
    msg->block_id = id;
    msg->body_bytes = bytes;
    for (NodeId child : children) net_.send(self_, child, msg);
  }
  std::vector<NodeId> children;

 private:
  runtime::Runtime& net_;
  NodeId self_;
};

}  // namespace

PropagationResult run_propagation(const PropagationConfig& cfg) {
  runtime::SimRuntime sim_backend((runtime::lan_latency()));
  runtime::Runtime& net =
      cfg.ctx.backend != nullptr ? *cfg.ctx.backend : sim_backend.runtime();
  if (cfg.ctx.trace != nullptr) net.set_tracer(cfg.ctx.trace);
  Rng rng(cfg.seed);

  std::vector<NodeId> producer_ids;
  for (std::size_t i = 0; i < cfg.n_consensus; ++i) {
    producer_ids.push_back(net.add_node(runtime::node_100mbps(0)));
  }
  std::vector<NodeId> full_ids;
  for (std::size_t i = 0; i < cfg.n_full; ++i) {
    full_ids.push_back(net.add_node(runtime::node_100mbps(0)));
  }

  // Block production schedule: one shared cadence for every topology
  // (apples-to-apples, like the paper's fixed block stream), long
  // enough for the slowest topology — star at large blocks — to drain
  // one block before the next.
  const double link_bps = runtime::kBandwidth100Mbps;
  const double worst_star_seconds =
      static_cast<double>(cfg.block_bytes) / link_bps *
      std::ceil(static_cast<double>(cfg.n_full) /
                static_cast<double>(cfg.n_consensus));
  const SimTime block_interval =
      std::max(seconds(1), static_cast<SimTime>(worst_star_seconds * 1.5e9));

  // Staggered joins (120 ms apart) plus relayer-topology convergence
  // must finish before the first block is measured.
  const SimTime setup =
      std::max(cfg.setup_time, static_cast<SimTime>(cfg.n_full) *
                                       milliseconds(120) +
                                   seconds(3));

  // arrivals[b] = completion times at full nodes for block b; written
  // from actor callbacks (worker threads on the threaded backend).
  std::mutex capture_m;
  std::vector<std::vector<SimTime>> arrivals(cfg.n_blocks);
  std::vector<SimTime> produced_at(cfg.n_blocks, 0);

  std::vector<std::unique_ptr<runtime::Actor>> actors;
  ZoneDirectory dir(std::max<std::size_t>(1, cfg.n_zones));
  dir.set_consensus_nodes(producer_ids);

  if (cfg.topology == Topology::kStar) {
    std::vector<StarProducer*> producers;
    for (std::size_t i = 0; i < cfg.n_consensus; ++i) {
      auto p = std::make_unique<StarProducer>(net, producer_ids[i]);
      producers.push_back(p.get());
      net.attach(producer_ids[i], p.get());
      actors.push_back(std::move(p));
    }
    for (std::size_t i = 0; i < full_ids.size(); ++i) {
      producers[i % cfg.n_consensus]->children.push_back(full_ids[i]);
      auto node = std::make_unique<StarFullNode>(net);
      node->set_tracer(cfg.ctx.tracer, full_ids[i]);
      node->on_block = [&arrivals, &capture_m](std::uint64_t id,
                                               SimTime when) {
        std::lock_guard<std::mutex> lock(capture_m);
        if (id < arrivals.size()) arrivals[id].push_back(when);
      };
      net.attach(full_ids[i], node.get());
      actors.push_back(std::move(node));
    }
    for (std::size_t b = 0; b < cfg.n_blocks; ++b) {
      const SimTime at =
          setup + static_cast<SimTime>(b) * block_interval;
      produced_at[b] = at;
      // Scheduling happens before the run starts (now() == 0), so the
      // relative delay equals the absolute production time.
      PREDIS_FIRE_AND_FORGET(net.schedule_after(
          at, [producers, b, &cfg, &net] {
            if (cfg.ctx.tracer != nullptr) {
              cfg.ctx.tracer->record(TraceStage::kBlockCommitted,
                                     trace_key(b), net.now());
            }
            for (StarProducer* p : producers) {
              p->push_block(b, cfg.block_bytes);
            }
          }));
    }
  } else if (cfg.topology == Topology::kRandom) {
    // One random graph over consensus + full nodes.
    std::vector<NodeId> everyone = producer_ids;
    everyone.insert(everyone.end(), full_ids.begin(), full_ids.end());
    std::map<NodeId, std::set<NodeId>> adj;
    for (NodeId id : everyone) {
      while (adj[id].size() < cfg.peers) {
        const NodeId peer = everyone[rng.next_below(everyone.size())];
        if (peer == id) continue;
        adj[id].insert(peer);
        adj[peer].insert(id);
      }
    }
    GossipConfig gcfg;
    gcfg.fanout = cfg.fanout;
    auto sources = std::make_shared<std::vector<RandomGossipNode*>>();
    for (NodeId id : everyone) {
      auto node = std::make_unique<RandomGossipNode>(net, id, gcfg, cfg.seed);
      node->set_tracer(cfg.ctx.tracer);
      node->set_peers({adj[id].begin(), adj[id].end()});
      const bool is_producer =
          std::find(producer_ids.begin(), producer_ids.end(), id) !=
          producer_ids.end();
      if (is_producer) {
        sources->push_back(node.get());
      } else {
        node->on_block = [&arrivals, &capture_m](std::uint64_t id2,
                                                 SimTime when) {
          std::lock_guard<std::mutex> lock(capture_m);
          if (id2 < arrivals.size()) arrivals[id2].push_back(when);
        };
      }
      net.attach(id, node.get());
      actors.push_back(std::move(node));
    }
    for (std::size_t b = 0; b < cfg.n_blocks; ++b) {
      const SimTime at =
          setup + static_cast<SimTime>(b) * block_interval;
      produced_at[b] = at;
      PREDIS_FIRE_AND_FORGET(net.schedule_after(at, [sources, b, &cfg] {
        for (RandomGossipNode* s : *sources) s->inject(b, cfg.block_bytes);
      }));
    }
  } else {
    // --- Multi-Zone ----------------------------------------------------
    MultiZoneConfig mzcfg;
    mzcfg.n_consensus = cfg.n_consensus;
    mzcfg.f = cfg.f;
    mzcfg.n_zones = cfg.n_zones;
    mzcfg.max_subscribers = cfg.max_subscribers;

    const std::size_t k = cfg.n_consensus - cfg.f;
    auto producers = std::make_shared<std::vector<SyntheticProducer*>>();
    for (std::size_t i = 0; i < cfg.n_consensus; ++i) {
      auto p = std::make_unique<SyntheticProducer>(
          net, producer_ids[i], static_cast<StripeIndex>(i), k,
          mzcfg.effective_consensus_cap());
      producers->push_back(p.get());
      net.attach(producer_ids[i], p.get());
      actors.push_back(std::move(p));
    }
    for (std::size_t i = 0; i < full_ids.size(); ++i) {
      dir.register_node(full_ids[i],
                        static_cast<std::uint32_t>(i % cfg.n_zones),
                        static_cast<SimTime>(i) * milliseconds(120));
    }
    for (NodeId id : full_ids) {
      auto node =
          std::make_unique<MultiZoneFullNode>(net, id, mzcfg, dir, cfg.seed);
      node->set_tracer(cfg.ctx.tracer);
      node->on_block_complete = [&arrivals, &capture_m](
                                    const PredisBlock& block,
                                    SimTime when) {
        std::lock_guard<std::mutex> lock(capture_m);
        if (block.height < arrivals.size()) {
          arrivals[block.height].push_back(when);
        }
      };
      net.attach(id, node.get());
      actors.push_back(std::move(node));
    }

    // Driver: pre-distributes bundles for each block uniformly over the
    // interval preceding it (Predis's continuous production), then cuts
    // and announces the Predis block.
    struct DriverState {
      std::vector<BundleHeight> heights;
      std::vector<Hash32> parents;
      std::vector<BundleHeight> last_cut;
      std::map<std::pair<std::size_t, BundleHeight>, BundleHeader> headers;
      KeyPair key = KeyPair::from_seed(0xD15E);
      Rng rng{42};
    };
    auto state = std::make_shared<DriverState>();
    state->heights.assign(cfg.n_consensus, 0);
    state->parents.assign(cfg.n_consensus, kZeroHash);
    state->last_cut.assign(cfg.n_consensus, 0);

    const std::size_t bundles_per_block =
        std::max<std::size_t>(1, cfg.block_bytes / cfg.bundle_bytes);
    const std::size_t txs_per_bundle =
        std::max<std::size_t>(1, cfg.bundle_bytes / 512);

    auto produce_bundle = [state, producers, &dir, &cfg, &net,
                           txs_per_bundle](std::size_t chain) {
      std::vector<Transaction> txs(txs_per_bundle);
      for (auto& tx : txs) {
        tx.client = kNoNode;
        tx.size = 512;
        tx.payload_seed = state->rng.next();
      }
      Bundle bundle = make_bundle(
          static_cast<NodeId>(chain), state->heights[chain] + 1,
          state->parents[chain],
          std::vector<BundleHeight>(cfg.n_consensus, 0), std::move(txs),
          state->key);
      state->heights[chain] += 1;
      state->parents[chain] = bundle.header.hash();
      state->headers[{chain, state->heights[chain]}] = bundle.header;
      dir.publish_bundle(bundle);
      const std::size_t bytes = bundle.wire_size();
      if (cfg.ctx.tracer != nullptr) {
        cfg.ctx.tracer->record(TraceStage::kBundleProduced,
                               bundle.header.hash(), net.now());
        cfg.ctx.tracer->record(TraceStage::kStripesSent,
                               bundle.header.hash(), net.now());
      }
      // Every consensus node sends its stripe of this bundle (§IV-D).
      for (SyntheticProducer* p : *producers) {
        p->send_stripe(bundle.header, bytes);
      }
    };

    for (std::size_t b = 0; b < cfg.n_blocks; ++b) {
      const SimTime block_at =
          setup + static_cast<SimTime>(b + 1) * block_interval;
      produced_at[b] = block_at;
      // Bundles spread across the preceding interval.
      const SimTime window_start = block_at - block_interval;
      for (std::size_t j = 0; j < bundles_per_block; ++j) {
        const SimTime at =
            window_start + static_cast<SimTime>(
                               (static_cast<double>(j) + 0.5) /
                               static_cast<double>(bundles_per_block) *
                               static_cast<double>(block_interval));
        const std::size_t chain = j % cfg.n_consensus;
        PREDIS_FIRE_AND_FORGET(net.schedule_after(
            at, [produce_bundle, chain] { produce_bundle(chain); }));
      }
      // Cut + announce the Predis block.
      PREDIS_FIRE_AND_FORGET(net.schedule_after(
          block_at, [state, producers, b, &cfg, &net] {
        PredisBlock block;
        block.height = b;
        block.leader = 0;
        block.prev_heights = state->last_cut;
        block.cut_heights = state->heights;
        for (std::size_t i = 0; i < cfg.n_consensus; ++i) {
          if (block.cut_heights[i] > block.prev_heights[i]) {
            block.header_hashes.push_back(
                state->headers.at({i, block.cut_heights[i]}).hash());
          }
        }
        state->last_cut = state->heights;
        block.signature = state->key.sign(BytesView{block.signing_bytes()});
        if (cfg.ctx.tracer != nullptr) {
          // Full nodes key reconstruction by the real block hash.
          cfg.ctx.tracer->record(TraceStage::kBlockCommitted, block.hash(),
                                 net.now());
        }
        for (SyntheticProducer* p : *producers) p->send_block(block);
      }));
    }

    // Pull service: producers answer BundlePull from the directory.
    for (std::size_t i = 0; i < producers->size(); ++i) {
      SyntheticProducer* p = (*producers)[i];
      const NodeId pid = producer_ids[i];
      p->serve_pull = [state, &dir, &net, pid](NodeId from,
                                               const BundlePullMsg& msg) {
        auto push = std::make_shared<BundlePushMsg>();
        std::uint32_t missing = 0;
        for (const auto& ref : msg.refs) {
          const auto it = state->headers.find({ref.chain, ref.height});
          const Bundle* b = it == state->headers.end()
                                ? nullptr
                                : dir.bundle(it->second.hash());
          if (b != nullptr) {
            push->bundles.push_back(*b);
          } else {
            ++missing;
          }
        }
        if (!push->bundles.empty()) net.send(pid, from, std::move(push));
        if (missing > 0 && msg.block != kZeroHash) {
          auto miss = std::make_shared<BundleMissMsg>();
          miss->block = msg.block;
          miss->missing = missing;
          net.send(pid, from, std::move(miss));
        }
      };
    }
  }

  const SimTime end_time = setup +
                           static_cast<SimTime>(cfg.n_blocks + 2) *
                               block_interval +
                           seconds(5);
  net.start();
  net.run_until(end_time);

  // Aggregate: time for each block to reach X% of full nodes.
  PropagationResult result;
  const std::vector<double> fractions = {0.10, 0.25, 0.50, 0.75,
                                         0.90, 0.95, 1.00};
  double coverage = 0.0;
  for (double frac : fractions) {
    double sum = 0.0;
    std::size_t counted = 0;
    for (std::size_t b = 0; b < cfg.n_blocks; ++b) {
      auto times = arrivals[b];
      std::sort(times.begin(), times.end());
      const std::size_t need = static_cast<std::size_t>(
          std::ceil(frac * static_cast<double>(cfg.n_full)));
      if (need == 0 || times.size() < need) continue;
      sum += to_milliseconds(times[need - 1] - produced_at[b]);
      ++counted;
    }
    if (counted > 0) {
      result.latency_ms_at_fraction[frac] =
          sum / static_cast<double>(counted);
    }
  }
  for (std::size_t b = 0; b < cfg.n_blocks; ++b) {
    coverage += static_cast<double>(arrivals[b].size()) /
                static_cast<double>(cfg.n_full);
  }
  result.full_coverage_fraction =
      coverage / static_cast<double>(cfg.n_blocks);
  if (cfg.ctx.tracer != nullptr) {
    result.stage_latency = cfg.ctx.tracer->stage_breakdown();
  }
  return result;
}

}  // namespace predis::multizone
