// Consensus-node distribution adapters for the two topologies the paper
// compares in Fig. 7: Multi-Zone (stripes + Predis blocks to relayer
// subscribers) and star (complete blocks pushed to assigned full
// nodes). Both wrap a P-PBFT node, so the consensus layer is identical
// and only the distribution work on the uplink differs.
#pragma once

#include <cmath>
#include <map>
#include <optional>
#include <set>

#include "common/block_tracer.hpp"
#include "consensus/predis/predis_nodes.hpp"
#include "multizone/directory.hpp"
#include "multizone/messages.hpp"

namespace predis::multizone {

enum class DistributionMode { kMultiZone, kStar };

class MultiZoneConsensusNode final : public runtime::Actor {
 public:
  MultiZoneConsensusNode(consensus::NodeContext ctx,
                         consensus::predis::PredisConfig pcfg,
                         std::vector<PublicKey> keys, KeyPair own_key,
                         consensus::CommitLedger& ledger,
                         MultiZoneConfig mz_config, ZoneDirectory& directory,
                         DistributionMode mode)
      : ctx_(std::move(ctx)),
        inner_(ctx_, std::move(pcfg), std::move(keys), std::move(own_key),
               ledger),
        cfg_(mz_config),
        dir_(directory),
        mode_(mode) {
    inner_.engine().on_bundle_stored = [this](const Bundle& bundle) {
      dir_.publish_bundle(bundle);
      if (mode_ == DistributionMode::kMultiZone) send_stripes(bundle);
    };
    inner_.engine().on_block_executed =
        [this](const PredisBlock& block, const std::vector<Transaction>& txs) {
          distribute_block(block, txs);
        };
  }

  void on_start() override { inner_.on_start(); }

  /// Star mode: the full nodes this consensus node serves directly.
  void set_star_children(std::vector<NodeId> children) {
    star_children_ = std::move(children);
  }

  std::size_t subscriber_count() const { return subscribers_.size(); }
  consensus::predis::PredisPbftNode& inner() { return inner_; }

  /// Attach the shared lifecycle tracer (may be null): the inner Predis
  /// engine records production/commit stages; this node adds the
  /// stripes-sent stage (and star-mode block announcements keyed by
  /// height, matching StarFullNode's block ids).
  void set_tracer(BlockTracer* tracer) {
    tracer_ = tracer;
    inner_.engine().set_tracer(tracer);
  }

  /// Fired after each committed block has been pushed to the
  /// distribution layer (experiment bookkeeping).
  std::function<void(const PredisBlock&)> on_block_distributed;

  void on_message(NodeId from, const runtime::MsgPtr& msg) override {
    if (subscribers_.count(from) != 0) last_heard_[from] = ctx_.now();
    if (const auto* m = dynamic_cast<const SubscribeMsg*>(msg.get())) {
      on_subscribe(from, *m);
      return;
    }
    if (const auto* m = dynamic_cast<const UnsubscribeMsg*>(msg.get())) {
      for (StripeIndex s : m->stripes) {
        if (s == my_stripe()) subscribers_.erase(from);
      }
      return;
    }
    if (const auto* m = dynamic_cast<const HeartbeatMsg*>(msg.get())) {
      if (!m->reply) {
        auto echo = std::make_shared<HeartbeatMsg>();
        echo->reply = true;
        ctx_.send_node(from, std::move(echo));
      }
      return;
    }
    if (const auto* m = dynamic_cast<const BundlePullMsg*>(msg.get())) {
      serve_pull(from, *m);
      return;
    }
    inner_.on_message(from, msg);
  }

 private:
  StripeIndex my_stripe() const {
    return static_cast<StripeIndex>(ctx_.index());
  }

  void on_subscribe(NodeId from, const SubscribeMsg& msg) {
    prune_stale_subscribers();
    // A consensus node only originates its own stripe index (§IV-D) and
    // serves only a handful of relayers — roughly one per zone; everyone
    // else is referred to those relayers (Fig. 3).
    std::vector<StripeIndex> accepted;
    std::vector<StripeIndex> rejected;
    for (StripeIndex s : msg.stripes) {
      if (s == my_stripe() &&
          (subscribers_.count(from) != 0 ||
           subscribers_.size() < cfg_.effective_consensus_cap())) {
        subscribers_.insert(from);
        last_heard_[from] = ctx_.now();
        accepted.push_back(s);
      } else {
        rejected.push_back(s);
      }
    }
    if (!accepted.empty()) {
      auto ok = std::make_shared<AcceptSubscribeMsg>();
      ok->stripes = std::move(accepted);
      ok->from_consensus = true;
      ctx_.send_node(from, std::move(ok));
    }
    if (!rejected.empty()) {
      auto no = std::make_shared<RejectSubscribeMsg>();
      no->stripes = std::move(rejected);
      no->children.assign(subscribers_.begin(), subscribers_.end());
      ctx_.send_node(from, std::move(no));
    }
  }

  void send_stripes(const Bundle& bundle) {
    if (subscribers_.empty()) return;
    const std::size_t k = ctx_.n() - ctx_.f();
    auto msg = std::make_shared<StripeMsg>();
    msg->header = bundle.header;
    msg->index = my_stripe();
    msg->body_bytes = (bundle.wire_size() + k - 1) / k;
    msg->proof_bytes =
        32 * static_cast<std::size_t>(
                 std::ceil(std::log2(std::max<std::size_t>(2, ctx_.n()))));
    if (cfg_.real_stripe_payloads) {
      // Encode the whole bundle (deterministic serialization, so every
      // consensus node derives identical shards) into the reusable
      // arena and attach our own stripe. One copy per bundle: the
      // shared_ptr is what relayers forward down the tree.
      if (!codec_.has_value()) codec_.emplace(k, ctx_.n());
      codec_->encode_into(bundle, encode_scratch_);
      const erasure::Stripe& own = encode_scratch_.stripes[msg->index];
      msg->payload = std::make_shared<const erasure::Stripe>(own);
      msg->body_bytes = own.data.size();
      msg->proof_bytes = own.proof.siblings.size() * 32;
    }
    if (tracer_ != nullptr) {
      tracer_->record(TraceStage::kStripesSent, bundle.header.hash(),
                      ctx_.now());
    }
    for (NodeId sub : subscribers_) ctx_.send_node(sub, msg);
  }

  void distribute_block(const PredisBlock& block,
                        const std::vector<Transaction>& txs) {
    if (mode_ == DistributionMode::kMultiZone) {
      auto msg = std::make_shared<PredisBlockMsg>();
      msg->block = block;
      for (NodeId sub : subscribers_) ctx_.send_node(sub, msg);
    } else {
      auto msg = std::make_shared<FullBlockMsg>();
      msg->block_id = block.height;
      msg->body_bytes = payload_bytes(txs) + txs.size() * 8;
      if (tracer_ != nullptr) {
        // Star full nodes only ever see the height-keyed FullBlockMsg,
        // so their trace entries key by height too.
        tracer_->record(TraceStage::kBlockCommitted,
                        trace_key(block.height), ctx_.now());
      }
      for (NodeId child : star_children_) ctx_.send_node(child, msg);
    }
    if (on_block_distributed) on_block_distributed(block);
  }

  void serve_pull(NodeId from, const BundlePullMsg& msg) {
    auto push = std::make_shared<BundlePushMsg>();
    std::uint32_t missing = 0;
    const Mempool& pool = inner_.engine().mempool();
    for (const auto& ref : msg.refs) {
      const Bundle* b = ref.chain < pool.chain_count()
                            ? pool.chain(ref.chain).get(ref.height)
                            : nullptr;
      if (b != nullptr) {
        push->bundles.push_back(*b);
      } else {
        ++missing;
      }
    }
    if (!push->bundles.empty()) ctx_.send_node(from, std::move(push));
    if (missing > 0 && msg.block != kZeroHash) {
      auto miss = std::make_shared<BundleMissMsg>();
      miss->block = msg.block;
      miss->missing = missing;
      ctx_.send_node(from, std::move(miss));
    }
  }

  void prune_stale_subscribers() {
    // Subscribers heartbeat every heartbeat_interval; one that went
    // silent has crashed or unsubscribed uncleanly. Free its slot.
    const SimTime deadline = ctx_.now() - 2 * cfg_.heartbeat_timeout;
    for (auto it = subscribers_.begin(); it != subscribers_.end();) {
      const auto heard = last_heard_.find(*it);
      if (heard != last_heard_.end() && heard->second < deadline) {
        it = subscribers_.erase(it);
      } else {
        ++it;
      }
    }
  }

  consensus::NodeContext ctx_;
  consensus::predis::PredisPbftNode inner_;
  BlockTracer* tracer_ = nullptr;
  MultiZoneConfig cfg_;
  ZoneDirectory& dir_;
  DistributionMode mode_;
  std::set<NodeId> subscribers_;
  std::map<NodeId, SimTime> last_heard_;
  std::vector<NodeId> star_children_;
  // Real-payload mode only: lazily built codec + encode arena.
  std::optional<erasure::StripeCodec> codec_;
  erasure::StripeCodec::Encoded encode_scratch_;
};

/// Star-topology full node: passively receives complete blocks.
class StarFullNode final : public runtime::Actor {
 public:
  std::function<void(std::uint64_t block_id, SimTime when)> on_block;

  /// Attach the shared lifecycle tracer (may be null); `self` is this
  /// node's network id, recorded with each block arrival.
  void set_tracer(BlockTracer* tracer, NodeId self) {
    tracer_ = tracer;
    self_ = self;
  }

  void on_message(NodeId /*from*/, const runtime::MsgPtr& msg) override {
    const auto* m = dynamic_cast<const FullBlockMsg*>(msg.get());
    if (m == nullptr) return;
    if (!seen_.insert(m->block_id).second) return;
    if (tracer_ != nullptr) {
      tracer_->record(TraceStage::kBlockReconstructed,
                      trace_key(m->block_id), when_(), self_);
    }
    if (on_block) on_block(m->block_id, when_());
  }

  explicit StarFullNode(runtime::Runtime& net) : net_(net) {}

 private:
  SimTime when_() const { return net_.now(); }
  runtime::Runtime& net_;
  NodeId self_ = kNoNode;
  std::set<std::uint64_t> seen_;
  BlockTracer* tracer_ = nullptr;
};

}  // namespace predis::multizone
