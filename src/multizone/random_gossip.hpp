// Random-topology baseline with FEG-style gossip (Fig. 8): every node
// keeps a fixed set of random peers (8, the common Bitcoin/Ethereum
// setting); on first receipt of a block it pushes the full block to
// `fanout` peers and a tiny digest to the rest; digest receivers that
// are still missing the block pull it after a short grace period —
// the push/digest/pull structure of Fair-and-Efficient Gossip.
#pragma once

#include <functional>
#include <map>
#include <set>
#include <vector>

#include "common/block_tracer.hpp"
#include "common/rng.hpp"
#include "common/thread_annotations.hpp"
#include "core/recovery.hpp"
#include "multizone/messages.hpp"
#include "runtime/runtime.hpp"

namespace predis::multizone {

struct GossipConfig {
  std::size_t fanout = 4;  ///< Full-block pushes per hop (paper setting).
  SimTime pull_delay = milliseconds(100);  ///< Digest -> pull grace.
};

class RandomGossipNode final : public runtime::Actor {
 public:
  RandomGossipNode(runtime::Runtime& net, NodeId self, GossipConfig config,
                   std::uint64_t seed)
      : net_(net), self_(self), cfg_(config),
        rng_(seed ^ (self * 2654435761ULL)) {
    // Jittered capped backoff for the digest->pull retry loop: the old
    // fixed pull_delay cadence made every node that missed the same
    // block re-pull in lock-step, which is exactly the distribution-
    // stage p99 tail the trace report shows.
    pull_backoff_.base = cfg_.pull_delay;
    pull_backoff_.cap = cfg_.pull_delay * 8;
  }

  void set_peers(std::vector<NodeId> peers) { peers_ = std::move(peers); }
  const std::vector<NodeId>& peers() const { return peers_; }

  /// Attach the shared lifecycle tracer (may be null): records first
  /// block receipt per node and every repair pull.
  void set_tracer(BlockTracer* tracer) { tracer_ = tracer; }

  std::function<void(std::uint64_t block_id, SimTime when)> on_block;

  /// Source-side entry: this node produced/holds the block natively
  /// (consensus nodes in the random topology) and starts the gossip.
  void inject(std::uint64_t block_id, std::size_t body_bytes) {
    have_[block_id] = body_bytes;
    if (!seen_.insert(block_id).second) return;
    if (tracer_ != nullptr) {
      tracer_->record(TraceStage::kBlockCommitted, trace_key(block_id),
                      net_.now());
    }
    FullBlockMsg msg;
    msg.block_id = block_id;
    msg.body_bytes = body_bytes;
    relay(msg, self_);
  }

  void on_message(NodeId from, const runtime::MsgPtr& msg) override {
    if (const auto* m = dynamic_cast<const FullBlockMsg*>(msg.get())) {
      have_[m->block_id] = m->body_bytes;
      knows_[m->block_id].insert(from);
      if (!seen_.insert(m->block_id).second) return;
      if (tracer_ != nullptr) {
        tracer_->record(TraceStage::kBlockReconstructed,
                        trace_key(m->block_id), net_.now(),
                        self_);
      }
      if (on_block) on_block(m->block_id, net_.now());
      relay(*m, from);
      return;
    }
    if (const auto* m = dynamic_cast<const BlockDigestMsg*>(msg.get())) {
      knows_[m->block_id].insert(from);
      if (seen_.count(m->block_id) != 0) return;
      // One pull loop per missing block: retry against a rotating set
      // of targets until the block arrives. A single pull aimed only at
      // the original digest sender stalls permanently when that sender
      // crashes or its reply is lost.
      if (!pulling_.insert(m->block_id).second) return;
      schedule_pull(m->block_id, from, 0);
      return;
    }
    if (const auto* m = dynamic_cast<const BlockPullMsg*>(msg.get())) {
      const auto it = have_.find(m->block_id);
      if (it == have_.end()) return;
      auto full = std::make_shared<FullBlockMsg>();
      full->block_id = it->first;
      full->body_bytes = it->second;
      net_.send(self_, from, std::move(full));
      return;
    }
  }

 private:
  /// Pull `id` after pull_delay, rotating targets each attempt: the
  /// original digest sender first, then everyone known to have the
  /// block, then the remaining peers (a pull to a peer lacking the
  /// block is a harmless no-op). Re-arms itself until the block lands.
  void schedule_pull(std::uint64_t id, NodeId first_target,
                     std::size_t attempt) {
    PREDIS_FIRE_AND_FORGET(net_.schedule(
        self_, pull_backoff_.delay(attempt, rng_),
        [this, id, first_target, attempt] {
          if (seen_.count(id) != 0) {
            pulling_.erase(id);
            return;
          }
          std::vector<NodeId> targets{first_target};
          for (NodeId peer : knows_[id]) {
            if (peer != first_target) targets.push_back(peer);
          }
          for (NodeId peer : peers_) {
            if (peer != first_target && knows_[id].count(peer) == 0) {
              targets.push_back(peer);
            }
          }
          const NodeId target = targets[attempt % targets.size()];
          if (tracer_ != nullptr) {
            tracer_->record_pull(trace_key(id), self_,
                                 net_.now());
          }
          auto pull = std::make_shared<BlockPullMsg>();
          pull->block_id = id;
          net_.send(self_, target, std::move(pull));
          schedule_pull(id, first_target, attempt + 1);
        }));
  }

  void relay(const FullBlockMsg& msg, NodeId from) {
    // Candidates: peers not yet known to have the block.
    std::vector<NodeId> candidates;
    for (NodeId peer : peers_) {
      if (peer == from) continue;
      if (knows_[msg.block_id].count(peer) != 0) continue;
      candidates.push_back(peer);
    }
    rng_.shuffle(candidates);

    auto full = std::make_shared<FullBlockMsg>(msg);
    auto digest = std::make_shared<BlockDigestMsg>();
    digest->block_id = msg.block_id;

    for (std::size_t i = 0; i < candidates.size(); ++i) {
      if (i < cfg_.fanout) {
        net_.send(self_, candidates[i], full);
      } else {
        net_.send(self_, candidates[i], digest);
      }
      knows_[msg.block_id].insert(candidates[i]);  // optimistic
    }
  }

  runtime::Runtime& net_;
  NodeId self_;
  GossipConfig cfg_;
  Rng rng_;
  core::BackoffPolicy pull_backoff_;
  std::vector<NodeId> peers_;
  std::set<std::uint64_t> seen_;
  std::map<std::uint64_t, std::size_t> have_;  ///< id -> body bytes
  std::map<std::uint64_t, std::set<NodeId>> knows_;
  std::set<std::uint64_t> pulling_;  ///< Blocks with an active pull loop.
  BlockTracer* tracer_ = nullptr;
};

}  // namespace predis::multizone
