// Random-topology baseline with FEG-style gossip (Fig. 8): every node
// keeps a fixed set of random peers (8, the common Bitcoin/Ethereum
// setting); on first receipt of a block it pushes the full block to
// `fanout` peers and a tiny digest to the rest; digest receivers that
// are still missing the block pull it after a short grace period —
// the push/digest/pull structure of Fair-and-Efficient Gossip.
#pragma once

#include <functional>
#include <map>
#include <set>
#include <vector>

#include "common/rng.hpp"
#include "multizone/messages.hpp"
#include "sim/network.hpp"

namespace predis::multizone {

struct GossipConfig {
  std::size_t fanout = 4;  ///< Full-block pushes per hop (paper setting).
  SimTime pull_delay = milliseconds(100);  ///< Digest -> pull grace.
};

class RandomGossipNode final : public sim::Actor {
 public:
  RandomGossipNode(sim::Network& net, NodeId self, GossipConfig config,
                   std::uint64_t seed)
      : net_(net), self_(self), cfg_(config), rng_(seed ^ (self * 2654435761ULL)) {}

  void set_peers(std::vector<NodeId> peers) { peers_ = std::move(peers); }
  const std::vector<NodeId>& peers() const { return peers_; }

  std::function<void(std::uint64_t block_id, SimTime when)> on_block;

  /// Source-side entry: this node produced/holds the block natively
  /// (consensus nodes in the random topology) and starts the gossip.
  void inject(std::uint64_t block_id, std::size_t body_bytes) {
    have_[block_id] = body_bytes;
    if (!seen_.insert(block_id).second) return;
    FullBlockMsg msg;
    msg.block_id = block_id;
    msg.body_bytes = body_bytes;
    relay(msg, self_);
  }

  void on_message(NodeId from, const sim::MsgPtr& msg) override {
    if (const auto* m = dynamic_cast<const FullBlockMsg*>(msg.get())) {
      have_[m->block_id] = m->body_bytes;
      knows_[m->block_id].insert(from);
      if (!seen_.insert(m->block_id).second) return;
      if (on_block) on_block(m->block_id, net_.simulator().now());
      relay(*m, from);
      return;
    }
    if (const auto* m = dynamic_cast<const BlockDigestMsg*>(msg.get())) {
      knows_[m->block_id].insert(from);
      if (seen_.count(m->block_id) != 0) return;
      const std::uint64_t id = m->block_id;
      const NodeId sender = from;
      net_.simulator().schedule_after(cfg_.pull_delay, [this, id, sender] {
        if (seen_.count(id) != 0) return;
        auto pull = std::make_shared<BlockPullMsg>();
        pull->block_id = id;
        net_.send(self_, sender, std::move(pull));
      });
      return;
    }
    if (const auto* m = dynamic_cast<const BlockPullMsg*>(msg.get())) {
      const auto it = have_.find(m->block_id);
      if (it == have_.end()) return;
      auto full = std::make_shared<FullBlockMsg>();
      full->block_id = it->first;
      full->body_bytes = it->second;
      net_.send(self_, from, std::move(full));
      return;
    }
  }

 private:
  void relay(const FullBlockMsg& msg, NodeId from) {
    // Candidates: peers not yet known to have the block.
    std::vector<NodeId> candidates;
    for (NodeId peer : peers_) {
      if (peer == from) continue;
      if (knows_[msg.block_id].count(peer) != 0) continue;
      candidates.push_back(peer);
    }
    rng_.shuffle(candidates);

    auto full = std::make_shared<FullBlockMsg>(msg);
    auto digest = std::make_shared<BlockDigestMsg>();
    digest->block_id = msg.block_id;

    for (std::size_t i = 0; i < candidates.size(); ++i) {
      if (i < cfg_.fanout) {
        net_.send(self_, candidates[i], full);
      } else {
        net_.send(self_, candidates[i], digest);
      }
      knows_[msg.block_id].insert(candidates[i]);  // optimistic
    }
  }

  sim::Network& net_;
  NodeId self_;
  GossipConfig cfg_;
  Rng rng_;
  std::vector<NodeId> peers_;
  std::set<std::uint64_t> seen_;
  std::map<std::uint64_t, std::size_t> have_;  ///< id -> body bytes
  std::map<std::uint64_t, std::set<NodeId>> knows_;
};

}  // namespace predis::multizone
