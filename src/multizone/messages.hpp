// Wire messages of the Multi-Zone distribution layer (§IV).
#pragma once

#include <memory>
#include <vector>

#include "bundle/predis_block.hpp"
#include "erasure/stripe_codec.hpp"
#include "runtime/message.hpp"

namespace predis::multizone {

/// Stripe stream identifier: stripe i of every bundle originates at
/// consensus node i (§IV-D).
using StripeIndex = std::uint32_t;

/// One erasure-coded stripe of one bundle, carrying the bundle header
/// and a Merkle proof against header.stripe_root so receivers can
/// detect tampering. By default the stripe body is simulated by size
/// (the in-process BundleDirectory materializes decoded bundles); with
/// MultiZoneConfig::real_stripe_payloads the consensus distributor
/// attaches the actual erasure-coded stripe and receivers verify and
/// Reed-Solomon-decode the real bytes. The payload is shared (not
/// copied) as relayers forward the message down the multicast tree;
/// wire accounting still charges body_bytes + proof_bytes per hop.
struct StripeMsg final : runtime::Message {
  BundleHeader header;       ///< Which bundle this stripe belongs to.
  StripeIndex index = 0;     ///< Which of the n_c stripes.
  std::size_t body_bytes = 0;  ///< ceil(bundle bytes / (n_c - f)).
  std::size_t proof_bytes = 0; ///< Merkle proof size (log2 n_c hashes).
  std::shared_ptr<const erasure::Stripe> payload;  ///< Real bytes (opt).

  std::size_t wire_size() const override {
    return header.wire_size() + 8 + body_bytes + proof_bytes;
  }
  const char* name() const override { return "Stripe"; }
};

/// New block announcement flowing consensus -> relayers -> ordinary
/// nodes; tiny (the Predis property).
struct PredisBlockMsg final : runtime::Message {
  PredisBlock block;

  std::size_t wire_size() const override { return block.wire_size(); }
  const char* name() const override { return "PredisBlock"; }
};

/// Complete block for the star / random baselines (they ship full
/// content on every block, §V-B).
struct FullBlockMsg final : runtime::Message {
  std::uint64_t block_id = 0;
  std::size_t body_bytes = 0;

  std::size_t wire_size() const override { return 48 + body_bytes; }
  const char* name() const override { return "FullBlock"; }
};

/// Subscribe for the given stripe streams (Algorithm 1).
struct SubscribeMsg final : runtime::Message {
  std::vector<StripeIndex> stripes;

  std::size_t wire_size() const override { return 16 + stripes.size() * 4; }
  const char* name() const override { return "Subscribe"; }
};

struct AcceptSubscribeMsg final : runtime::Message {
  std::vector<StripeIndex> stripes;
  bool from_consensus = false;  ///< Sender is a consensus node.

  std::size_t wire_size() const override { return 17 + stripes.size() * 4; }
  const char* name() const override { return "AcceptSubscribe"; }
};

/// Decline + referral to children that still have capacity.
struct RejectSubscribeMsg final : runtime::Message {
  std::vector<StripeIndex> stripes;
  std::vector<NodeId> children;

  std::size_t wire_size() const override {
    return 16 + stripes.size() * 4 + children.size() * 4;
  }
  const char* name() const override { return "RejectSubscribe"; }
};

struct UnsubscribeMsg final : runtime::Message {
  std::vector<StripeIndex> stripes;

  std::size_t wire_size() const override { return 16 + stripes.size() * 4; }
  const char* name() const override { return "Unsubscribe"; }
};

/// Periodic relayer advertisement (Algorithm 2): identity, the stripes
/// it relays (empty set = demotion to ordinary node), and its join time
/// so overlapping relayers can break ties.
struct RelayerAliveMsg final : runtime::Message {
  NodeId relayer = kNoNode;
  std::vector<StripeIndex> relayed;
  SimTime join_time = 0;

  std::size_t wire_size() const override { return 24 + relayed.size() * 4; }
  const char* name() const override { return "RelayerAlive"; }
};

/// Bootstrap: ask an existing zone member for the current relayer set
/// (the "getRelayer" message of §IV-C).
struct GetRelayersMsg final : runtime::Message {
  std::size_t wire_size() const override { return 8; }
  const char* name() const override { return "GetRelayers"; }
};

struct RelayerInfo {
  NodeId id = kNoNode;
  std::vector<StripeIndex> relayed;
  SimTime join_time = 0;
};

struct RelayersMsg final : runtime::Message {
  std::vector<RelayerInfo> relayers;

  std::size_t wire_size() const override {
    std::size_t size = 16;
    for (const auto& r : relayers) size += 16 + r.relayed.size() * 4;
    return size;
  }
  const char* name() const override { return "Relayers"; }
};

/// FEG/random-topology baseline: block-id digest and pull.
struct BlockDigestMsg final : runtime::Message {
  std::uint64_t block_id = 0;
  std::size_t wire_size() const override { return 40; }
  const char* name() const override { return "BlockDigest"; }
};

struct BlockPullMsg final : runtime::Message {
  std::uint64_t block_id = 0;
  std::size_t wire_size() const override { return 40; }
  const char* name() const override { return "BlockPull"; }
};

/// Graceful departure (§IV-E).
struct LeaveMsg final : runtime::Message {
  std::size_t wire_size() const override { return 8; }
  const char* name() const override { return "Leave"; }
};

struct HeartbeatMsg final : runtime::Message {
  /// Echoes carry reply = true and MUST NOT be echoed again, or every
  /// ping would spawn an unbounded ping-pong loop.
  bool reply = false;
  std::size_t wire_size() const override { return 9; }
  const char* name() const override { return "Heartbeat"; }
};

/// Backup-connection digest (§IV-F): bundle heights we hold, so
/// neighbours in other zones can detect what we miss.
struct DigestMsg final : runtime::Message {
  std::vector<BundleHeight> heights;  ///< Contiguous height per chain.

  std::size_t wire_size() const override { return 16 + heights.size() * 8; }
  const char* name() const override { return "Digest"; }
};

/// Rejoin probe: a restarted full node asks a peer to send its DigestMsg
/// immediately instead of waiting for the next periodic digest tick, so
/// the stripe backlog pull starts the moment the node is back.
struct DigestRequestMsg final : runtime::Message {
  std::size_t wire_size() const override { return 9; }
  const char* name() const override { return "DigestRequest"; }
};

/// Pull request for bundles we are missing (digest gap or slow stripes).
/// `block` names the pending block a repair pull serves (kZeroHash for
/// digest-sync pulls); a server that cannot serve every ref echoes it
/// back in a BundleMissMsg so the puller can rotate to another target
/// immediately instead of sleeping out its retry backoff.
struct BundlePullMsg final : runtime::Message {
  Hash32 block = kZeroHash;
  std::vector<MissingBundleRef> refs;

  std::size_t wire_size() const override {
    return 16 + 32 + refs.size() * 12;
  }
  const char* name() const override { return "BundlePull"; }
};

/// Negative pull response: the server lacked `missing` of the pulled
/// refs. Tiny, and only sent for block-repair pulls (block != zero).
/// Without it an unlucky pull target was indistinguishable from a lost
/// message, and each wasted ladder rung cost a full exponential-backoff
/// delay — the ~4.4 s distribution-tail stragglers.
struct BundleMissMsg final : runtime::Message {
  Hash32 block = kZeroHash;
  std::uint32_t missing = 0;

  std::size_t wire_size() const override { return 16 + 32 + 4; }
  const char* name() const override { return "BundleMiss"; }
};

/// Pull response: full bundles.
struct BundlePushMsg final : runtime::Message {
  std::vector<Bundle> bundles;

  std::size_t wire_size() const override {
    std::size_t size = 16;
    for (const auto& b : bundles) size += b.wire_size();
    return size;
  }
  const char* name() const override { return "BundlePush"; }
};

}  // namespace predis::multizone
