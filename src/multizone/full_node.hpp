// Multi-Zone full node: the actor implementing §IV — Algorithm 1
// (subscribe / become a relayer on join), Algorithm 2 (relayerAlive
// processing and redundancy trimming), stripe reception/forwarding,
// bundle decoding, Predis-block forwarding and block reconstruction,
// relayer-count maintenance, heartbeats, graceful leave, and
// cross-zone digest backup (§IV-F).
#pragma once

#include <functional>
#include <map>
#include <set>
#include <unordered_map>
#include <vector>

#include "common/block_tracer.hpp"
#include "common/rng.hpp"
#include "common/thread_annotations.hpp"
#include "core/recovery.hpp"
#include "multizone/directory.hpp"
#include "multizone/messages.hpp"
#include "runtime/runtime.hpp"
#include "txpool/transaction.hpp"

namespace predis::multizone {

class MultiZoneFullNode : public runtime::Actor {
 public:
  MultiZoneFullNode(runtime::Runtime& net, NodeId self, MultiZoneConfig config,
                    ZoneDirectory& directory, std::uint64_t seed = 1);

  void on_start() override;
  /// Crash-recovery (§IV-E rejoin): refresh every stripe subscription —
  /// providers may have dropped us on heartbeat timeout during the
  /// outage — and probe for peers' digests so the bundle backlog pull
  /// starts immediately instead of at the next digest tick.
  void on_restart() override;
  void on_message(NodeId from, const runtime::MsgPtr& msg) override;

  /// Fired when this node can rebuild a freshly announced block (it has
  /// the Predis block and every referenced bundle).
  std::function<void(const PredisBlock&, SimTime)> on_block_complete;

  /// Fired when a bundle is first decoded/stored at this node.
  std::function<void(const BundleHeader&, SimTime)> on_bundle_decoded;

  /// Attach the shared lifecycle tracer (may be null): records bundle
  /// decode, block reconstruction and every repair pull at this node.
  void set_tracer(BlockTracer* tracer) { tracer_ = tracer; }

  /// Graceful departure per §IV-E; the caller marks the network node
  /// down afterwards.
  void leave();

  // --- Introspection (tests / experiments) -----------------------------

  bool is_relayer() const { return !direct_.empty(); }
  const std::set<StripeIndex>& direct_stripes() const { return direct_; }
  NodeId provider_of(StripeIndex s) const { return providers_[s]; }
  std::size_t subscriber_count() const;
  std::size_t decoded_bundles() const { return decoded_count_; }
  std::size_t completed_blocks() const { return completed_count_; }
  /// Bundles recovered by actually Reed-Solomon-decoding stripe bytes
  /// (real_stripe_payloads mode; always <= decoded_bundles()).
  std::size_t byte_decoded_bundles() const { return byte_decoded_count_; }
  std::size_t decode_failures() const { return decode_failures_; }
  std::size_t stripe_verify_failures() const {
    return stripe_verify_failures_;
  }
  /// BundlePush bundles rejected because they match no published record.
  std::size_t push_verify_failures() const { return push_verify_failures_; }
  BundleHeight contiguous_height(std::size_t chain) const {
    return contiguous_[chain];
  }
  /// Relayers this node currently believes are active in its zone.
  std::size_t known_active_relayers() const;

 private:
  struct StripeState {
    BundleHeader header;
    std::set<StripeIndex> have;
    bool decoded = false;
    /// Real stripe bytes, indexed by stripe index (real_stripe_payloads
    /// mode only; empty otherwise).
    std::vector<std::shared_ptr<const erasure::Stripe>> bodies;
  };
  struct RelayerState {
    std::set<StripeIndex> relayed;
    SimTime join_time = 0;
    SimTime last_seen = 0;
  };
  struct HashKey {
    std::size_t operator()(const Hash32& h) const {
      std::size_t v;
      __builtin_memcpy(&v, h.data(), sizeof(v));
      return v;
    }
  };

  std::size_t k() const { return cfg_.n_consensus - cfg_.f; }
  SimTime now() const { return net_.now(); }

  // Join / subscription management.
  void bootstrap();
  void run_algorithm1(const std::vector<RelayerInfo>& relayers);
  void send_subscribe(NodeId target, std::vector<StripeIndex> stripes);
  void subscribe_to_consensus(const std::vector<StripeIndex>& stripes);
  void resubscribe(StripeIndex stripe);
  void announce_relayer();

  // Message handlers.
  void on_subscribe(NodeId from, const SubscribeMsg& msg);
  void on_accept(NodeId from, const AcceptSubscribeMsg& msg);
  void on_reject(NodeId from, const RejectSubscribeMsg& msg);
  void on_unsubscribe(NodeId from, const UnsubscribeMsg& msg);
  void on_relayer_alive(NodeId from, const RelayerAliveMsg& msg);
  void on_stripe(NodeId from, const StripeMsg& msg);
  void on_predis_block(NodeId from, const PredisBlockMsg& msg);
  void on_leave(NodeId from);
  void on_digest(NodeId from, const DigestMsg& msg);
  void forward_client_txs(const ClientRequestMsg& msg);
  void on_pull(NodeId from, const BundlePullMsg& msg);
  void on_push(NodeId from, const BundlePushMsg& msg);
  void on_pull_miss(NodeId from, const BundleMissMsg& msg);

  // Data plane.
  [[nodiscard]] bool try_byte_decode(StripeState& state);
  void store_bundle_record(const BundleHeader& header);
  void try_reconstruct_blocks();
  /// Send one repair pull for the block's missing bundles at the
  /// current ladder rung (advances the rung).
  void send_pull(const Hash32& block_hash);
  /// Arm the recurring exponential pull schedule for a pending block.
  void schedule_pull(const Hash32& block_hash);

  // Periodic duties.
  void tick_relayer_alive();
  void tick_relayer_check();
  void tick_heartbeat();
  void tick_digest();

  void zone_multicast(const runtime::MsgPtr& msg);
  /// Relayer fan-out with jittered per-child pacing (see .cpp).
  void paced_fanout(const std::vector<NodeId>& children,
                    runtime::MsgPtr msg);
  std::vector<NodeId> subscriber_union() const;

  runtime::Runtime& net_;
  NodeId self_;
  MultiZoneConfig cfg_;
  ZoneDirectory& dir_;
  BlockTracer* tracer_ = nullptr;
  Rng rng_;
  // Jittered capped backoff for repair pulls (replaces the old fixed
  // power-of-two ladder): randomized delays desynchronize the pull
  // herd after a partition heals, which trims the distribution p99.
  core::BackoffPolicy pull_backoff_;
  /// Flat jittered quantum spacing successive fan-out sends.
  core::BackoffPolicy fanout_pacing_;
  std::uint32_t zone_ = 0;
  SimTime join_time_ = 0;
  bool left_ = false;

  // Subscription state.
  std::vector<NodeId> providers_;            ///< Per stripe index.
  std::vector<NodeId> pending_;              ///< Outstanding subscribe.
  std::vector<std::set<NodeId>> subscribers_;  ///< Per stripe index.
  std::set<StripeIndex> direct_;  ///< Stripes received from consensus.
  std::map<NodeId, RelayerState> known_relayers_ PREDIS_MSG_DERIVED;
  std::map<NodeId, SimTime> last_heard_;

  // Data plane state.
  std::vector<SimTime> last_stripe_at_;   ///< Per stripe index.
  std::vector<SimTime> provider_since_;   ///< When current provider set.
  SimTime last_any_stripe_ = 0;
  std::unordered_map<Hash32, StripeState, HashKey> stripes_
      PREDIS_MSG_DERIVED;
  std::vector<std::map<BundleHeight, Hash32>> chains_;
  std::vector<BundleHeight> contiguous_;
  std::size_t decoded_count_ = 0;
  std::size_t completed_count_ = 0;
  std::size_t byte_decoded_count_ = 0;
  std::size_t decode_failures_ = 0;
  std::size_t push_verify_failures_ = 0;
  std::size_t stripe_verify_failures_ = 0;
  erasure::StripeCodec codec_;  ///< (k, n_c) codec for real payloads.

  struct PendingBlock {
    PredisBlock block;
    NodeId sender = kNoNode;
    std::size_t pull_attempts = 0;
  };
  // Iterated by try_reconstruct_blocks(), which emits completion
  // callbacks and trace records: keep the order key-sorted (D1).
  std::map<Hash32, PendingBlock> pending_blocks_ PREDIS_MSG_DERIVED;
  std::set<Hash32> seen_blocks_ PREDIS_MSG_DERIVED;

  NodeId backup_peer_ = kNoNode;  ///< Neighbour-zone digest partner.
};

}  // namespace predis::multizone
