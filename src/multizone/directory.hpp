// Experiment-wide Multi-Zone bookkeeping.
//
// SUBSTITUTION (documented in DESIGN.md): in the paper, a joining node
// registers through an on-chain transaction, and join order is derived
// from the position of registration transactions in the ledger
// (§IV-C). Inside one simulated process we keep that registry here:
// zone membership, join order, and the consensus-node list. Data still
// flows only through simulated messages.
//
// The directory also acts as the stripe "decode oracle": producers
// publish each bundle by header hash, and a node that has gathered
// n_c − f stripes of that bundle materializes it from here — the real
// Reed-Solomon algebra is implemented and tested in src/erasure; the
// network layer simulates stripe *bytes* (sizes) only.
//
// Registration and the member/consensus lists are fixed before the run
// starts; only the bundle store mutates while traffic flows, so it
// alone takes a lock (full nodes publish/decode from different workers
// on the threaded Runtime backend).
#pragma once

#include <algorithm>
#include <map>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "bundle/bundle.hpp"
#include "common/thread_annotations.hpp"
#include "common/types.hpp"

namespace predis::multizone {

class ZoneDirectory {
 public:
  explicit ZoneDirectory(std::size_t n_zones) : zones_(n_zones) {}

  std::size_t zone_count() const { return zones_.size(); }

  void set_consensus_nodes(std::vector<NodeId> ids) {
    consensus_ = std::move(ids);
  }
  const std::vector<NodeId>& consensus_nodes() const { return consensus_; }

  /// Register a full node; join order is registration order.
  void register_node(NodeId id, std::uint32_t zone, SimTime join_time) {
    zones_[zone].push_back(id);
    info_[id] = {zone, join_time};
  }

  const std::vector<NodeId>& members(std::uint32_t zone) const {
    return zones_[zone];
  }

  std::uint32_t zone_of(NodeId id) const { return info_.at(id).zone; }
  SimTime join_time(NodeId id) const { return info_.at(id).join_time; }

  /// Membership test for message-carried node ids (referral children,
  /// relayed relayer ids, ...). Anything off the wire must pass this
  /// before it is used as a send target — Network::send on an
  /// unregistered id is fatal.
  bool has_node(NodeId id) const { return info_.count(id) != 0; }

  /// Zone members registered strictly before `id` (its bootstrap peers).
  std::vector<NodeId> earlier_members(NodeId id) const {
    const auto& zone = zones_[zone_of(id)];
    std::vector<NodeId> out;
    for (NodeId member : zone) {
      if (member == id) break;
      out.push_back(member);
    }
    return out;
  }

  // --- Bundle decode oracle ---------------------------------------------

  void publish_bundle(const Bundle& bundle) {
    std::lock_guard<std::mutex> lock(store_m_);
    store_.emplace(bundle.header.hash(), bundle);
  }

  /// Pointer into the store: unordered_map nodes are stable, so the
  /// pointer stays valid across later inserts; the brief lock only
  /// orders the lookup against concurrent publishes.
  const Bundle* bundle(const Hash32& header_hash) const {
    std::lock_guard<std::mutex> lock(store_m_);
    const auto it = store_.find(header_hash);
    return it == store_.end() ? nullptr : &it->second;
  }

 private:
  struct Info {
    std::uint32_t zone = 0;
    SimTime join_time = 0;
  };
  struct HashKey {
    std::size_t operator()(const Hash32& h) const {
      std::size_t v;
      __builtin_memcpy(&v, h.data(), sizeof(v));
      return v;
    }
  };

  std::vector<std::vector<NodeId>> zones_;
  std::map<NodeId, Info> info_;
  std::vector<NodeId> consensus_;
  mutable std::mutex store_m_;
  std::unordered_map<Hash32, Bundle, HashKey> store_ PREDIS_GUARDED_BY(store_m_);
};

struct MultiZoneConfig {
  std::size_t n_consensus = 4;  ///< n_c == number of stripes.
  std::size_t f = 1;            ///< Decode threshold k = n_c - f.
  std::size_t n_zones = 3;
  std::size_t max_subscribers = 24;  ///< Paper's Fig. 8 fairness cap.
  /// Cap on direct subscribers per consensus node. Multi-Zone's whole
  /// point is that consensus nodes serve roughly one relayer per zone;
  /// rejected subscribers are referred to existing relayers (Fig. 3).
  /// 0 = auto: n_zones + 2.
  std::size_t consensus_max_subscribers = 0;

  std::size_t effective_consensus_cap() const {
    if (consensus_max_subscribers != 0) return consensus_max_subscribers;
    // One relayer per zone is the design point (§IV-D); +1 slot of
    // headroom lets a replacement subscribe before its predecessor
    // unsubscribes. More than this saturates the consensus uplink with
    // stripe streams at high load.
    return n_zones + 1;
  }
  SimTime relayer_alive_interval = milliseconds(500);
  SimTime relayer_check_interval = milliseconds(1200);
  SimTime heartbeat_interval = milliseconds(500);
  SimTime heartbeat_timeout = milliseconds(1600);
  SimTime digest_interval = milliseconds(1000);
  /// Missing-bundle pull delay after a block announcement. Stripes of
  /// just-cut bundles are typically still in flight down the multicast
  /// tree (one 25 ms hop per level), so pulling too eagerly creates a
  /// bandwidth spiral of full-bundle pushes.
  SimTime pull_timeout = milliseconds(700);
  /// Ship real erasure-coded stripe bytes through StripeMsg::payload:
  /// consensus nodes StripeCodec-encode each bundle, full nodes verify
  /// stripes against header.stripe_root and Reed-Solomon-decode instead
  /// of using the directory's decode oracle. Off by default — wire
  /// sizes and event traces stay identical either way; this switches
  /// who does the byte-level work.
  bool real_stripe_payloads = false;
};

}  // namespace predis::multizone
