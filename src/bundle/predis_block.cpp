#include "bundle/predis_block.hpp"

#include <stdexcept>

namespace predis {

const char* to_string(BlockVerifyResult r) {
  switch (r) {
    case BlockVerifyResult::kOk:
      return "ok";
    case BlockVerifyResult::kBadStructure:
      return "bad-structure";
    case BlockVerifyResult::kBannedProducer:
      return "banned-producer";
    case BlockVerifyResult::kConflict:
      return "conflict";
    case BlockVerifyResult::kMissingBundles:
      return "missing-bundles";
    case BlockVerifyResult::kBadSignature:
      return "bad-signature";
    case BlockVerifyResult::kBadTxRoot:
      return "bad-tx-root";
  }
  return "?";
}

Bytes PredisBlock::signing_bytes() const {
  Writer w;
  w.u64(height);
  w.hash(parent_hash);
  w.u32(leader);
  w.u64(view);
  w.vec_u64(prev_heights);
  w.vec_u64(cut_heights);
  w.vec_hash(header_hashes);
  w.hash(tx_root);
  return std::move(w).take();
}

void PredisBlock::encode(Writer& w) const {
  w.raw(BytesView{signing_bytes()});
  w.raw(BytesView{signature.data(), signature.size()});
}

PredisBlock PredisBlock::decode(Reader& r) {
  PredisBlock b;
  b.height = r.u64();
  b.parent_hash = r.hash();
  b.leader = r.u32();
  b.view = r.u64();
  b.prev_heights = r.vec_u64();
  b.cut_heights = r.vec_u64();
  b.header_hashes = r.vec_hash();
  b.tx_root = r.hash();
  for (auto& byte : b.signature) byte = r.u8();
  return b;
}

std::size_t PredisBlock::wire_size() const {
  std::size_t size = 8 + 32 + 4 + 8 + 32 + 64;
  size += 4 + prev_heights.size() * 8;
  size += 4 + cut_heights.size() * 8;
  size += 4 + header_hashes.size() * 32;
  return size;
}

std::size_t PredisBlock::tx_count(const Mempool& mempool) const {
  std::size_t count = 0;
  for (std::size_t i = 0; i < cut_heights.size(); ++i) {
    for (BundleHeight h = prev_heights[i] + 1; h <= cut_heights[i]; ++h) {
      const Bundle* b = mempool.chain(i).get(h);
      if (b != nullptr) count += b->txs.size();
    }
  }
  return count;
}

PredisBlock build_predis_block(const Mempool& mempool, NodeId leader,
                               std::size_t f, BlockHeight height, View view,
                               const Hash32& parent_hash,
                               const std::vector<BundleHeight>& prev_heights,
                               const KeyPair& leader_key) {
  const std::size_t n = mempool.chain_count();
  if (prev_heights.size() != n) {
    throw std::invalid_argument("build_predis_block: bad prev_heights");
  }

  PredisBlock block;
  block.height = height;
  block.parent_hash = parent_hash;
  block.leader = leader;
  block.view = view;
  block.prev_heights = prev_heights;
  block.cut_heights = compute_cut(mempool, leader, f);

  // The cut can never regress below what the chain already confirmed.
  for (std::size_t i = 0; i < n; ++i) {
    block.cut_heights[i] = std::max(block.cut_heights[i], prev_heights[i]);
  }

  for (std::size_t i = 0; i < n; ++i) {
    if (block.cut_heights[i] > block.prev_heights[i]) {
      const Bundle* tip = mempool.chain(i).get(block.cut_heights[i]);
      if (tip == nullptr) {
        throw std::logic_error("build_predis_block: cut beyond local chain");
      }
      block.header_hashes.push_back(tip->header.hash());
    }
  }

  block.tx_root =
      compute_block_tx_root(mempool, block.prev_heights, block.cut_heights);
  block.signature = leader_key.sign(BytesView{block.signing_bytes()});
  return block;
}

BlockVerifyResult verify_predis_block(const Mempool& mempool,
                                      const PredisBlock& block,
                                      const PublicKey& leader_key,
                                      std::vector<MissingBundleRef>* missing) {
  const std::size_t n = mempool.chain_count();
  if (block.prev_heights.size() != n || block.cut_heights.size() != n) {
    return BlockVerifyResult::kBadStructure;
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (block.cut_heights[i] < block.prev_heights[i]) {
      return BlockVerifyResult::kBadStructure;
    }
  }

  // One header hash per advanced chain, in chain order.
  std::size_t advanced = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (block.cut_heights[i] != block.prev_heights[i]) ++advanced;
  }
  if (advanced != block.header_hashes.size()) {
    return BlockVerifyResult::kBadStructure;
  }

  if (!verify(leader_key, BytesView{block.signing_bytes()},
              block.signature)) {
    return BlockVerifyResult::kBadSignature;
  }

  // Check 2: no banned producers among the advanced chains.
  for (std::size_t i = 0; i < n; ++i) {
    if (block.cut_heights[i] != block.prev_heights[i] &&
        mempool.is_banned(static_cast<NodeId>(i))) {
      return BlockVerifyResult::kBannedProducer;
    }
  }

  // Check 3: we must hold every referenced bundle; collect gaps.
  bool any_missing = false;
  for (std::size_t i = 0; i < n; ++i) {
    for (BundleHeight h = block.prev_heights[i] + 1;
         h <= block.cut_heights[i]; ++h) {
      if (!mempool.chain(i).has(h)) {
        any_missing = true;
        if (missing != nullptr) {
          missing->push_back({static_cast<NodeId>(i), h});
        }
      }
    }
  }
  if (any_missing) return BlockVerifyResult::kMissingBundles;

  // Check 2 (conflict part): our bundle at the cut must hash to the
  // value in the block — otherwise the leader or the producer
  // equivocated (Theorem 3.1 pins the whole prefix).
  std::size_t header_index = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (block.cut_heights[i] == block.prev_heights[i]) continue;
    const Hash32& expected = block.header_hashes[header_index++];
    const Bundle* local = mempool.chain(i).get(block.cut_heights[i]);
    if (local == nullptr || local->header.hash() != expected) {
      return BlockVerifyResult::kConflict;
    }
  }

  // Check 4: recompute the Merkle root.
  if (compute_block_tx_root(mempool, block.prev_heights,
                            block.cut_heights) != block.tx_root) {
    return BlockVerifyResult::kBadTxRoot;
  }
  return BlockVerifyResult::kOk;
}

std::vector<Transaction> extract_transactions(const Mempool& mempool,
                                              const PredisBlock& block) {
  std::vector<Transaction> txs;
  for (std::size_t i = 0; i < block.cut_heights.size(); ++i) {
    for (BundleHeight h = block.prev_heights[i] + 1;
         h <= block.cut_heights[i]; ++h) {
      const Bundle* b = mempool.chain(i).get(h);
      if (b == nullptr) {
        throw std::logic_error("extract_transactions: missing bundle");
      }
      txs.insert(txs.end(), b->txs.begin(), b->txs.end());
    }
  }
  return txs;
}

Hash32 compute_block_tx_root(const Mempool& mempool,
                             const std::vector<BundleHeight>& prev_heights,
                             const std::vector<BundleHeight>& cut_heights) {
  std::vector<Hash32> leaves;
  for (std::size_t i = 0; i < cut_heights.size(); ++i) {
    for (BundleHeight h = prev_heights[i] + 1; h <= cut_heights[i]; ++h) {
      const Bundle* b = mempool.chain(i).get(h);
      if (b == nullptr) {
        throw std::logic_error("compute_block_tx_root: missing bundle");
      }
      for (const auto& tx : b->txs) leaves.push_back(tx.id());
    }
  }
  if (leaves.empty()) return kZeroHash;
  return MerkleTree::root_of(leaves);
}

}  // namespace predis
