// The Predis block (§III-B): a proposal that carries *no transactions*,
// only metadata — per-chain cut heights, the bundle header at each cut,
// and a Merkle root over every transaction the block maps to. Its size
// is O(n_c) regardless of how many transactions it confirms, which is
// the paper's headline bandwidth property.
#pragma once

#include <optional>
#include <vector>

#include "bundle/mempool.hpp"

namespace predis {

struct PredisBlock {
  BlockHeight height = 0;
  Hash32 parent_hash = kZeroHash;
  NodeId leader = kNoNode;
  View view = 0;
  /// Confirmed height per chain *before* this block (the parent block's
  /// cut); the block confirms bundles in (prev_heights[i], cut_heights[i]].
  std::vector<BundleHeight> prev_heights;
  std::vector<BundleHeight> cut_heights;
  /// Hash of the bundle header at the cut height, for every chain whose
  /// cut advanced (in chain order). By Theorems 3.1/3.2 this single
  /// header hash authenticates the whole newly-confirmed prefix of that
  /// chain — and keeps the block at ~32 bytes per chain, the paper's
  /// "no more than 2.5 KB at n_c = 80" property.
  std::vector<Hash32> header_hashes;
  /// Merkle root over the ids of all transactions the block maps to.
  Hash32 tx_root = kZeroHash;
  Signature signature{};

  Bytes signing_bytes() const;
  Hash32 hash() const { return Sha256::hash(BytesView{signing_bytes()}); }

  void encode(Writer& w) const;
  static PredisBlock decode(Reader& r);

  /// Wire size — O(n_c), independent of transaction volume.
  std::size_t wire_size() const;

  /// Total transactions confirmed by this block, given the mempool that
  /// holds the referenced bundles.
  std::size_t tx_count(const Mempool& mempool) const;

  bool operator==(const PredisBlock&) const = default;
};

/// Outcome of verify_predis_block (§III-B receiver checks).
enum class BlockVerifyResult {
  kOk,
  kBadStructure,    ///< Sizes/heights inconsistent.
  kBannedProducer,  ///< References a chain we have banned (check 2).
  kConflict,        ///< Header at cut differs from our chain (check 2).
  kMissingBundles,  ///< We lack referenced bundles (check 3).
  kBadSignature,    ///< Leader signature invalid (check 3).
  kBadTxRoot,       ///< Recomputed Merkle root mismatch (check 4).
};

const char* to_string(BlockVerifyResult r);

struct MissingBundleRef {
  NodeId chain = kNoNode;
  BundleHeight height = 0;
  bool operator==(const MissingBundleRef&) const = default;
};

/// Build a Predis block from the local mempool using the cutting rule.
/// `prev_heights` is the cut of the parent block (what is already
/// confirmed). Chains owned by banned producers are never advanced.
PredisBlock build_predis_block(const Mempool& mempool, NodeId leader,
                               std::size_t f, BlockHeight height, View view,
                               const Hash32& parent_hash,
                               const std::vector<BundleHeight>& prev_heights,
                               const KeyPair& leader_key);

/// Receiver-side validation per §III-B. On kMissingBundles, `missing`
/// (if non-null) lists the bundles to fetch.
BlockVerifyResult verify_predis_block(
    const Mempool& mempool, const PredisBlock& block,
    const PublicKey& leader_key,
    std::vector<MissingBundleRef>* missing = nullptr);

/// Collect the block's transactions in canonical order (chain-major,
/// then height, then intra-bundle order). Precondition: the mempool
/// holds every referenced bundle (verify returned kOk).
std::vector<Transaction> extract_transactions(const Mempool& mempool,
                                              const PredisBlock& block);

/// Merkle root over the ids of the transactions in canonical order.
Hash32 compute_block_tx_root(const Mempool& mempool,
                             const std::vector<BundleHeight>& prev_heights,
                             const std::vector<BundleHeight>& cut_heights);

}  // namespace predis
