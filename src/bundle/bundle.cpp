#include "bundle/bundle.hpp"

namespace predis {

Bytes BundleHeader::signing_bytes() const {
  Writer w;
  w.u32(producer);
  w.u64(height);
  w.hash(parent_hash);
  w.vec_u64(tip_list);
  w.hash(tx_root);
  w.hash(stripe_root);
  return std::move(w).take();
}

void BundleHeader::encode(Writer& w) const {
  w.u32(producer);
  w.u64(height);
  w.hash(parent_hash);
  w.vec_u64(tip_list);
  w.hash(tx_root);
  w.hash(stripe_root);
  w.raw(BytesView{signature.data(), signature.size()});
}

BundleHeader BundleHeader::decode(Reader& r) {
  BundleHeader h;
  h.producer = r.u32();
  h.height = r.u64();
  h.parent_hash = r.hash();
  h.tip_list = r.vec_u64();
  h.tx_root = r.hash();
  h.stripe_root = r.hash();
  for (auto& byte : h.signature) byte = r.u8();
  return h;
}

Hash32 Bundle::tx_root_of(const std::vector<Transaction>& txs) {
  if (txs.empty()) return kZeroHash;
  std::vector<Hash32> leaves;
  leaves.reserve(txs.size());
  for (const auto& tx : txs) leaves.push_back(tx.id());
  return MerkleTree::root_of(leaves);
}

Bundle make_bundle(NodeId producer, BundleHeight height,
                   const Hash32& parent_hash,
                   std::vector<BundleHeight> tip_list,
                   std::vector<Transaction> txs, const KeyPair& key) {
  Bundle b;
  b.header.producer = producer;
  b.header.height = height;
  b.header.parent_hash = parent_hash;
  b.header.tip_list = std::move(tip_list);
  b.header.tx_root = Bundle::tx_root_of(txs);
  b.txs = std::move(txs);
  b.header.signature = key.sign(BytesView{b.header.signing_bytes()});
  return b;
}

bool verify_bundle_signature(const BundleHeader& header,
                             const PublicKey& producer_key) {
  return verify(producer_key, BytesView{header.signing_bytes()},
                header.signature);
}

std::size_t verify_bundle_signatures(const std::vector<HeaderSigCheck>& checks,
                                     bool* ok) {
  // The signing bytes must stay alive across the verify_batch call, so
  // materialize them per header first.
  std::vector<Bytes> bytes;
  bytes.reserve(checks.size());
  std::vector<SigCheck> items;
  items.reserve(checks.size());
  for (const HeaderSigCheck& c : checks) {
    bytes.push_back(c.header->signing_bytes());
    items.push_back({c.key, BytesView{bytes.back()}, &c.header->signature});
  }
  return verify_batch(items.data(), items.size(), ok);
}

}  // namespace predis
