// The Predis mempool: n_c parallel bundle chains plus validity rules,
// conflict detection, the ban list, and tip bookkeeping (§III-A).
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "bundle/bundle.hpp"

namespace predis {

/// Two signed bundles from the same producer sharing a parent but with
/// different headers — the proof that gets a producer banned.
struct ConflictEvidence {
  BundleHeader first;
  BundleHeader second;
};

/// Outcome of Mempool::add.
enum class AddBundleResult {
  kAdded,          ///< Valid; stored.
  kDuplicate,      ///< Already have this exact bundle.
  kMissingParent,  ///< Buffered; caller should request the parent.
  kConflict,       ///< Conflicts with a stored bundle; producer banned.
  kBannedProducer, ///< Producer is on the ban list; rejected.
  kStaleTips,      ///< Tip list not >= parent's tip list (rule 3).
  kBadSignature,   ///< Signature check failed.
  kBadTxRoot,      ///< Merkle root does not match the transactions.
  kInvalid,        ///< Malformed (wrong chain id, height 0, ...).
};

const char* to_string(AddBundleResult r);

/// Per-producer chain of validated bundles.
class BundleChain {
 public:
  /// Highest height h such that every bundle 1..h is present.
  BundleHeight contiguous_height() const { return contiguous_; }

  const Bundle* get(BundleHeight h) const;
  const Bundle* latest() const;  ///< Bundle at contiguous_height(), if any.

  /// Discard every bundle above `h` (rejoin cleanup).
  void erase_above(BundleHeight h);

  bool has(BundleHeight h) const { return bundles_.count(h) != 0; }
  std::size_t size() const { return bundles_.size(); }

  /// Wire bytes / bundle count reclaimed by GC (prune_below) so far.
  std::uint64_t gc_bytes() const { return gc_bytes_; }
  std::uint64_t gc_items() const { return gc_items_; }

 private:
  friend class Mempool;
  void insert(Bundle b);
  void prune_below(BundleHeight h);

  std::map<BundleHeight, Bundle> bundles_;
  BundleHeight contiguous_ = 0;
  BundleHeight pruned_below_ = 0;  ///< Heights < this have been GC'd.
  std::uint64_t gc_bytes_ = 0;
  std::uint64_t gc_items_ = 0;
};

class Mempool {
 public:
  /// `n_chains` = number of consensus nodes; `keys[i]` is producer i's
  /// public key (used to verify bundle signatures).
  Mempool(std::size_t n_chains, std::vector<PublicKey> producer_keys);

  std::size_t chain_count() const { return chains_.size(); }

  /// Validate a bundle against rules 1-4 of §III-A and store it.
  /// On kConflict, `evidence` (if non-null) receives the conflicting
  /// pair and the producer is added to the ban list.
  /// `signature_verified` skips the per-bundle signature check for
  /// callers that already ran the batch verifier over the whole
  /// incoming run (BundleBatch replies) — never pass true for a
  /// signature that was not actually checked.
  AddBundleResult add(const Bundle& bundle,
                      ConflictEvidence* evidence = nullptr,
                      bool signature_verified = false);

  const BundleChain& chain(std::size_t i) const { return chains_[i]; }

  /// Registered public key of producer i.
  const PublicKey& producer_key(std::size_t i) const { return keys_[i]; }

  /// This node's own tip list: contiguous height of every chain.
  std::vector<BundleHeight> tip_list() const;

  /// Tip-list matrix: row j = the tip list reported by producer j's
  /// latest contiguous bundle (all zeros if chain j is empty). The
  /// leader overrides its own row with its actual tip list when cutting.
  std::vector<std::vector<BundleHeight>> tip_matrix() const;

  // --- Confirmation / garbage collection ------------------------------

  /// Heights confirmed by committed blocks, one per chain.
  const std::vector<BundleHeight>& confirmed() const { return confirmed_; }

  /// Advance confirmed heights (monotone). Bundles more than
  /// gc_retention() below the confirmed watermark are garbage-collected.
  void confirm(const std::vector<BundleHeight>& heights);

  /// How many heights below the confirmed watermark are kept to serve
  /// fetch requests from lagging peers. 0 disables GC entirely.
  void set_gc_retention(BundleHeight keep) { gc_retention_ = keep; }
  BundleHeight gc_retention() const { return gc_retention_; }

  // --- Ban list --------------------------------------------------------

  void ban(NodeId producer);
  void unban(NodeId producer);

  /// Observation hooks fired when a producer enters / leaves the ban
  /// list (first insertion / removal only). Used by the invariant
  /// checker; engines leave them unset.
  std::function<void(NodeId)> on_ban;
  std::function<void(NodeId)> on_unban;

  /// Fired with the signed conflicting pair every time equivocation is
  /// detected — including while re-validating buffered out-of-order
  /// bundles, where no caller is on the stack to receive the `evidence`
  /// out-parameter. Engines subscribe here to broadcast ConflictMsg, so
  /// evidence found at retry reaches the other honest nodes too.
  std::function<void(NodeId, const ConflictEvidence&)> on_conflict;

  /// §III-E forking attack: after a ban period, a producer may rejoin
  /// by proposing a *new genesis bundle*. This unbans it, discards its
  /// unconfirmed (possibly forked) suffix, and arms a one-shot
  /// exception letting its next bundle chain from the null parent at
  /// height confirmed+1.
  void allow_rejoin(NodeId producer);
  /// True while the producer's rejoin-genesis slot is armed.
  bool rejoin_pending(NodeId producer) const {
    return rejoin_base_.count(producer) != 0;
  }
  bool is_banned(NodeId producer) const { return banned_.count(producer) != 0; }
  const std::set<NodeId>& ban_list() const { return banned_; }

  // --- Out-of-order buffer ---------------------------------------------

  /// Bundles waiting for a missing parent, oldest first, for one chain.
  /// add() automatically retries buffered children when their parent
  /// arrives.
  std::size_t pending_count(std::size_t chain) const;

 private:
  AddBundleResult validate_and_insert(const Bundle& bundle,
                                      ConflictEvidence* evidence,
                                      bool signature_verified);
  void retry_pending(std::size_t chain_index);

  std::vector<BundleChain> chains_;
  std::vector<PublicKey> keys_;
  std::vector<BundleHeight> confirmed_;
  BundleHeight gc_retention_ = 64;
  std::set<NodeId> banned_;
  // Armed rejoin slots: producer -> height its new genesis chains from.
  std::map<NodeId, BundleHeight> rejoin_base_;
  // Buffered out-of-order bundles per chain, keyed by height.
  std::vector<std::map<BundleHeight, Bundle>> pending_;
};

/// The leader's cutting rule (§III-B): for every chain, the cut height
/// is the height the fastest n_c − f nodes (including the leader) have
/// reached, clamped to what the leader itself holds and floored at the
/// already-confirmed height. Banned producers' chains are never cut
/// above their confirmed height.
///
/// `f` = tolerated faults. Returns one height per chain.
std::vector<BundleHeight> compute_cut(const Mempool& mempool, NodeId leader,
                                      std::size_t f);

}  // namespace predis
