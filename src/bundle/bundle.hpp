// Bundles and bundle headers — the unit of Predis's pre-distribution
// (Fig. 1 of the paper).
//
// Every consensus node continuously packs client transactions into
// bundles. A bundle header carries:
//   * the parent (previous) bundle hash, chaining bundles per producer;
//   * a tip list: the height of the latest bundle the producer has
//     received on every chain — this piggybacked acknowledgement is
//     what replaces Narwhal/Stratus certificates;
//   * a Merkle root over the bundle's transactions;
//   * a Merkle root over the bundle's erasure-coded stripes (used by
//     Multi-Zone receivers to verify individual stripes);
//   * the producer's signature.
#pragma once

#include <cstdint>
#include <vector>

#include "common/codec.hpp"
#include "common/merkle.hpp"
#include "common/signature.hpp"
#include "common/types.hpp"
#include "txpool/transaction.hpp"

namespace predis {

struct BundleHeader {
  NodeId producer = kNoNode;
  BundleHeight height = 0;  ///< 1-based within the producer's chain.
  Hash32 parent_hash = kZeroHash;
  std::vector<BundleHeight> tip_list;  ///< One entry per consensus node.
  Hash32 tx_root = kZeroHash;
  Hash32 stripe_root = kZeroHash;  ///< Zero when stripes are not used.
  Signature signature{};

  /// Deterministic encoding of the signed portion (everything except
  /// the signature itself).
  Bytes signing_bytes() const;

  /// Header hash = SHA-256 of the signed portion. Identifies the bundle:
  /// by Theorem 3.1, equal header hashes imply equal bundles.
  Hash32 hash() const { return Sha256::hash(BytesView{signing_bytes()}); }

  void encode(Writer& w) const;
  static BundleHeader decode(Reader& r);

  /// Bytes this header occupies on the wire.
  std::size_t wire_size() const {
    return 4 + 8 + 32 + 4 + tip_list.size() * 8 + 32 + 32 + 64;
  }

  bool operator==(const BundleHeader&) const = default;
};

struct Bundle {
  BundleHeader header;
  std::vector<Transaction> txs;

  /// Merkle root over transaction ids (what header.tx_root must equal).
  static Hash32 tx_root_of(const std::vector<Transaction>& txs);

  /// Full wire size: header + simulated transaction payloads.
  std::size_t wire_size() const {
    return header.wire_size() + payload_bytes(txs) + txs.size() * 8;
  }

  bool operator==(const Bundle&) const = default;
};

/// Build and sign a bundle. `tip_list` must already include the
/// producer's own chain at `height` (a producer has trivially "received"
/// its own bundle).
Bundle make_bundle(NodeId producer, BundleHeight height,
                   const Hash32& parent_hash,
                   std::vector<BundleHeight> tip_list,
                   std::vector<Transaction> txs, const KeyPair& key);

/// Signature check against the producer's registered public key.
bool verify_bundle_signature(const BundleHeader& header,
                             const PublicKey& producer_key);

/// Batch form for headers that arrive together (BundleBatch replies,
/// conflict-evidence pairs): one key-registry lock for the whole run
/// (see verify_batch in common/signature.hpp). checks[i] pairs each
/// header with its producer's key; fills ok[i] and returns how many
/// verified. ok must hold checks.size() entries.
struct HeaderSigCheck {
  const BundleHeader* header = nullptr;
  const PublicKey* key = nullptr;
};
std::size_t verify_bundle_signatures(const std::vector<HeaderSigCheck>& checks,
                                     bool* ok);

}  // namespace predis
