#include "bundle/mempool.hpp"

#include <algorithm>
#include <stdexcept>

namespace predis {

const char* to_string(AddBundleResult r) {
  switch (r) {
    case AddBundleResult::kAdded:
      return "added";
    case AddBundleResult::kDuplicate:
      return "duplicate";
    case AddBundleResult::kMissingParent:
      return "missing-parent";
    case AddBundleResult::kConflict:
      return "conflict";
    case AddBundleResult::kBannedProducer:
      return "banned-producer";
    case AddBundleResult::kStaleTips:
      return "stale-tips";
    case AddBundleResult::kBadSignature:
      return "bad-signature";
    case AddBundleResult::kBadTxRoot:
      return "bad-tx-root";
    case AddBundleResult::kInvalid:
      return "invalid";
  }
  return "?";
}

const Bundle* BundleChain::get(BundleHeight h) const {
  const auto it = bundles_.find(h);
  return it == bundles_.end() ? nullptr : &it->second;
}

const Bundle* BundleChain::latest() const { return get(contiguous_); }

void BundleChain::insert(Bundle b) {
  const BundleHeight h = b.header.height;
  bundles_.emplace(h, std::move(b));
  while (bundles_.count(contiguous_ + 1) != 0) ++contiguous_;
}

void BundleChain::erase_above(BundleHeight h) {
  while (!bundles_.empty() && bundles_.rbegin()->first > h) {
    bundles_.erase(std::prev(bundles_.end()));
  }
  contiguous_ = std::min(contiguous_, h);
}

void BundleChain::prune_below(BundleHeight h) {
  while (!bundles_.empty() && bundles_.begin()->first < h) {
    gc_bytes_ += bundles_.begin()->second.wire_size();
    gc_items_ += 1;
    bundles_.erase(bundles_.begin());
  }
  pruned_below_ = std::max(pruned_below_, h);
}

Mempool::Mempool(std::size_t n_chains, std::vector<PublicKey> producer_keys)
    : chains_(n_chains),
      keys_(std::move(producer_keys)),
      confirmed_(n_chains, 0),
      pending_(n_chains) {
  if (keys_.size() != n_chains) {
    throw std::invalid_argument("Mempool: one key per chain required");
  }
}

AddBundleResult Mempool::add(const Bundle& bundle,
                             ConflictEvidence* evidence,
                             bool signature_verified) {
  const AddBundleResult result =
      validate_and_insert(bundle, evidence, signature_verified);
  if (result == AddBundleResult::kAdded) {
    retry_pending(bundle.header.producer);
  }
  return result;
}

AddBundleResult Mempool::validate_and_insert(const Bundle& bundle,
                                             ConflictEvidence* evidence,
                                             bool signature_verified) {
  const BundleHeader& h = bundle.header;
  if (h.producer >= chains_.size() || h.height == 0 ||
      h.tip_list.size() != chains_.size()) {
    return AddBundleResult::kInvalid;
  }
  if (is_banned(h.producer)) return AddBundleResult::kBannedProducer;

  BundleChain& chain = chains_[h.producer];
  if (const Bundle* existing = chain.get(h.height)) {
    if (existing->header == h) return AddBundleResult::kDuplicate;
    // Same height, different header. If they share a parent this is the
    // canonical conflict of §III-A; a mismatched parent is equally
    // damning evidence of equivocation on this chain.
    ConflictEvidence ev;
    ev.first = existing->header;
    ev.second = h;
    if (evidence != nullptr) *evidence = ev;
    ban(h.producer);
    if (on_conflict) on_conflict(h.producer, ev);
    return AddBundleResult::kConflict;
  }

  // Rule: signature must verify (producers cannot be impersonated).
  if (!signature_verified && !verify_bundle_signature(h, keys_[h.producer])) {
    return AddBundleResult::kBadSignature;
  }

  // Rule 2: transactions valid — here, the Merkle root must match.
  if (Bundle::tx_root_of(bundle.txs) != h.tx_root) {
    return AddBundleResult::kBadTxRoot;
  }

  // Rule 1: parent must be present and valid (height 1 has the null
  // parent; an armed rejoin slot lets a new genesis chain from the
  // confirmed height). Out-of-order bundles are buffered for retry.
  const Bundle* parent = nullptr;
  const auto rejoin = rejoin_base_.find(h.producer);
  const bool rejoin_genesis = rejoin != rejoin_base_.end() &&
                              h.height == rejoin->second + 1 &&
                              h.parent_hash == kZeroHash;
  if (rejoin_genesis) {
    // Accepted parent-free; the slot is consumed below on insert.
  } else if (h.height == 1) {
    if (h.parent_hash != kZeroHash) return AddBundleResult::kInvalid;
  } else {
    parent = chain.get(h.height - 1);
    if (parent == nullptr) {
      if (h.height <= confirmed_[h.producer]) {
        // Below the confirmed watermark the prefix was already
        // validated and GC'd; accept without the parent link.
      } else {
        pending_[h.producer].emplace(h.height, bundle);
        return AddBundleResult::kMissingParent;
      }
    } else if (parent->header.hash() != h.parent_hash) {
      ConflictEvidence ev;
      ev.first = parent->header;
      ev.second = h;
      if (evidence != nullptr) *evidence = ev;
      ban(h.producer);
      if (on_conflict) on_conflict(h.producer, ev);
      return AddBundleResult::kConflict;
    }
  }

  // Rule 3: tip list must be componentwise >= the parent's tip list.
  if (parent != nullptr) {
    for (std::size_t i = 0; i < h.tip_list.size(); ++i) {
      if (h.tip_list[i] < parent->header.tip_list[i]) {
        return AddBundleResult::kStaleTips;
      }
    }
  }

  chain.insert(bundle);
  if (rejoin_genesis) rejoin_base_.erase(h.producer);
  return AddBundleResult::kAdded;
}

void Mempool::retry_pending(std::size_t chain_index) {
  auto& waiting = pending_[chain_index];
  BundleChain& chain = chains_[chain_index];
  while (!waiting.empty()) {
    const BundleHeight next = chain.contiguous_height() + 1;
    const auto it = waiting.find(next);
    if (it == waiting.end()) break;
    Bundle b = std::move(it->second);
    waiting.erase(it);
    // Buffered bundles passed the signature check before they were
    // parked (buffering happens after the rule checks), so the retry
    // skips the recomputation.
    if (validate_and_insert(b, nullptr, /*signature_verified=*/true) !=
        AddBundleResult::kAdded) {
      break;
    }
  }
  // Drop buffered entries that can never apply (below contiguous).
  while (!waiting.empty() &&
         waiting.begin()->first <= chain.contiguous_height()) {
    waiting.erase(waiting.begin());
  }
}

std::vector<BundleHeight> Mempool::tip_list() const {
  std::vector<BundleHeight> tips(chains_.size(), 0);
  for (std::size_t i = 0; i < chains_.size(); ++i) {
    tips[i] = chains_[i].contiguous_height();
  }
  return tips;
}

std::vector<std::vector<BundleHeight>> Mempool::tip_matrix() const {
  std::vector<std::vector<BundleHeight>> matrix;
  matrix.reserve(chains_.size());
  for (const auto& chain : chains_) {
    const Bundle* latest = chain.latest();
    if (latest == nullptr) {
      matrix.emplace_back(chains_.size(), 0);
    } else {
      matrix.push_back(latest->header.tip_list);
    }
  }
  return matrix;
}

void Mempool::confirm(const std::vector<BundleHeight>& heights) {
  if (heights.size() != chains_.size()) {
    throw std::invalid_argument("Mempool::confirm: wrong size");
  }
  for (std::size_t i = 0; i < chains_.size(); ++i) {
    confirmed_[i] = std::max(confirmed_[i], heights[i]);
    if (gc_retention_ > 0 && confirmed_[i] > gc_retention_) {
      chains_[i].prune_below(confirmed_[i] - gc_retention_);
    }
  }
}

void Mempool::ban(NodeId producer) {
  if (banned_.insert(producer).second && on_ban) on_ban(producer);
}

void Mempool::unban(NodeId producer) {
  if (banned_.erase(producer) != 0 && on_unban) on_unban(producer);
}

void Mempool::allow_rejoin(NodeId producer) {
  if (producer >= chains_.size()) return;
  unban(producer);
  chains_[producer].erase_above(confirmed_[producer]);
  pending_[producer].clear();
  rejoin_base_[producer] = confirmed_[producer];
}

std::size_t Mempool::pending_count(std::size_t chain) const {
  return pending_[chain].size();
}

std::vector<BundleHeight> compute_cut(const Mempool& mempool, NodeId leader,
                                      std::size_t f) {
  const std::size_t n = mempool.chain_count();
  const auto matrix = mempool.tip_matrix();
  const auto own = mempool.tip_list();
  const auto& confirmed = mempool.confirmed();

  std::vector<BundleHeight> cut(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    if (mempool.is_banned(static_cast<NodeId>(i))) {
      cut[i] = confirmed[i];
      continue;
    }
    // Reported height of chain i per node j; the leader's row is its
    // actual local knowledge.
    std::vector<BundleHeight> reported(n, 0);
    for (std::size_t j = 0; j < n; ++j) {
      reported[j] = (j == leader) ? own[i] : matrix[j][i];
    }
    std::sort(reported.begin(), reported.end(),
              std::greater<BundleHeight>());
    // Height reached by the fastest n - f nodes.
    const BundleHeight quorum_height = reported[n - f - 1];
    // Leader can only include bundles it actually holds.
    cut[i] = std::max(confirmed[i], std::min(quorum_height, own[i]));
  }
  return cut;
}

}  // namespace predis
