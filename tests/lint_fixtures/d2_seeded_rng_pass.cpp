// Fixture: D2 must stay quiet — randomness drawn from the seeded Rng
// and time read from the simulator clock are the sanctioned sources.
#include <cstdint>

struct Rng {
  std::uint64_t next();
};
struct SimClock {
  std::int64_t now() const;
};

std::int64_t jitter(Rng& rng, const SimClock& sim) {
  return sim.now() + static_cast<std::int64_t>(rng.next() % 7);
}
