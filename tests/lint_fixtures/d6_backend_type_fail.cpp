// Fixture: D6 must fire twice — naming the Simulator and sim::Network
// outside sim//runtime/ bypasses the Runtime seam, so the scenario can
// never run on another backend.
namespace predis::sim {
class Simulator;  // <- D6
class Network;
}  // namespace predis::sim

void assemble(predis::sim::Network& net);  // <- D6 (sim::Network)
