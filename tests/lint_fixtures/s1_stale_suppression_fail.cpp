// Fixture: S1 must report both suppressions below as stale — the code
// they annotate no longer violates the named rules, so the pragmas
// just hide future regressions.
// predis-lint: allow-file(D5)
#include <cstdint>

// predis-lint: allow(D2)
inline std::uint64_t identity(std::uint64_t x) { return x; }
