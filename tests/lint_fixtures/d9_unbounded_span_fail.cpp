// Fixture: the D9 span sink must fire twice — both loops walk a
// position taken from the message ("serve everything above have_seq")
// with no kMax* span clamp in the loop condition, so one hostile
// request drives an unbounded log walk.
#include <cstdint>
#include <vector>

using NodeId = std::uint32_t;
using SeqNum = std::uint64_t;

struct CatchUpMsg {
  SeqNum have_seq = 0;
  SeqNum want_seq = 0;
};

class Log {
 public:
  void on_catch_up(NodeId from, const CatchUpMsg& msg) {
    (void)from;
    std::vector<SeqNum> reply;
    for (SeqNum seq = msg.have_seq + 1; seq <= last_exec_; ++seq) {
      reply.push_back(seq);  // <- D9 (unclamped span walk)
    }
    SeqNum cursor = msg.want_seq;
    while (cursor > last_exec_) {  // <- D9 (unclamped msg-derived walk)
      --cursor;
    }
  }

 private:
  SeqNum last_exec_ = 0;
};
