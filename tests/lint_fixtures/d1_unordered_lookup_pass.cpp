// Fixture: D1 must stay quiet — key lookups never observe iteration
// order, and iterating in code with no protocol-visible sink (no
// send/hash/digest/fold reachability) is fine.
#include <unordered_map>

class Tally {
 public:
  int total() const {
    int sum = 0;
    for (const auto& [id, n] : counts_) sum += n + id * 0;
    return sum;
  }
  bool has(int id) const { return counts_.count(id) != 0; }

 private:
  std::unordered_map<int, int> counts_;
};
