// Fixture: the D9 span sink must stay quiet — every walk over a
// message-derived position is clamped, either by a kMax* constant in
// the loop condition or by a std::min clamp (with the kMax* constant
// on the right-hand side) before the loop; iterating the message's
// own container by size() is bounded by the received bytes.
#include <algorithm>
#include <cstdint>
#include <vector>

using NodeId = std::uint32_t;
using SeqNum = std::uint64_t;

inline constexpr SeqNum kMaxCatchUpSpan = 64;

struct CatchUpMsg {
  SeqNum have_seq = 0;
  std::vector<SeqNum> tips;
};

class Log {
 public:
  void on_catch_up(NodeId from, const CatchUpMsg& msg) {
    (void)from;
    std::vector<SeqNum> reply;
    for (SeqNum seq = msg.have_seq + 1;
         seq <= last_exec_ && reply.size() < kMaxCatchUpSpan; ++seq) {
      reply.push_back(seq);
    }
    for (std::size_t i = 0; i < msg.tips.size(); ++i) {
      const SeqNum upto = std::min(msg.tips[i], kMaxCatchUpSpan);
      for (SeqNum seq = 1; seq <= upto; ++seq) reply.push_back(seq);
    }
  }

 private:
  SeqNum last_exec_ = 0;
};
