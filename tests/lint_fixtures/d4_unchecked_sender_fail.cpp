// Fixture: D4 must fire twice — the handler subscripts per-node
// vectors with the raw sender id and with a message-carried lane index
// without bounds/ban-checking either first.
#include <cstdint>
#include <vector>

using NodeId = std::uint32_t;

struct CreditMsg {
  std::vector<std::uint32_t> lanes;
  std::uint64_t amount = 0;
};

class Router {
 public:
  void on_credit(NodeId from, const CreditMsg& msg) {
    credits_[from] += msg.amount;  // <- D4 (unchecked sender)
    for (std::uint32_t lane : msg.lanes) {
      lane_load_[lane] += 1;  // <- D4 (unchecked message index)
    }
  }

 private:
  std::vector<std::uint64_t> credits_;
  std::vector<std::uint64_t> lane_load_;
};
