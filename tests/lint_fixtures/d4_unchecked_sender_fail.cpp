// Fixture: one D4 and one D9 — the handler subscripts a per-node
// vector with the raw sender id (D4), and the taint walker catches the
// message-carried lane index flowing into a second subscript (D9).
#include <cstdint>
#include <vector>

using NodeId = std::uint32_t;

struct CreditMsg {
  std::vector<std::uint32_t> lanes;
  std::uint64_t amount = 0;
};

class Router {
 public:
  void on_credit(NodeId from, const CreditMsg& msg) {
    credits_[from] += msg.amount;  // <- D4 (unchecked sender)
    for (std::uint32_t lane : msg.lanes) {
      lane_load_[lane] += 1;  // <- D9 (unchecked message index)
    }
  }

 private:
  std::vector<std::uint64_t> credits_;
  std::vector<std::uint64_t> lane_load_;
};
