// Fixture: D4 must stay quiet — the sender and every message-carried
// index are bounds-checked before they touch per-node state.
#include <cstdint>
#include <vector>

using NodeId = std::uint32_t;

struct CreditMsg {
  std::vector<std::uint32_t> lanes;
  std::uint64_t amount = 0;
};

class Router {
 public:
  void on_credit(NodeId from, const CreditMsg& msg) {
    if (from >= credits_.size()) return;
    credits_[from] += msg.amount;
    for (std::uint32_t lane : msg.lanes) {
      if (lane >= lane_load_.size()) continue;
      lane_load_[lane] += 1;
    }
  }

 private:
  std::vector<std::uint64_t> credits_;
  std::vector<std::uint64_t> lane_load_;
};
