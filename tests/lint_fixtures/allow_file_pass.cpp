// Fixture: the file allowlist pragma must suppress every D2 finding in
// the file, wherever it occurs.
// predis-lint: allow-file(D2)
#include <chrono>
#include <cstdlib>

long noisy() {
  const auto t = std::chrono::steady_clock::now();
  return t.time_since_epoch().count() + std::rand();
}
