// Fixture: D7 must fire twice — `credits_` is read without the lock in
// peek(), and `last_spent_` is written after spend() manually released
// the mutex. The locked paths must stay quiet.
#include <mutex>

#define PREDIS_GUARDED_BY(mu)

class Wallet {
 public:
  void deposit(int n) {
    std::lock_guard<std::mutex> lock(m_);
    credits_ += n;  // ok: lock held
  }

  int peek() const {
    return credits_;  // <- D7 (no lock)
  }

  void spend(int n) {
    m_.lock();
    credits_ -= n;
    m_.unlock();
    last_spent_ = n;  // <- D7 (lock already released)
  }

 private:
  mutable std::mutex m_;
  int credits_ PREDIS_GUARDED_BY(m_) = 0;
  int last_spent_ PREDIS_GUARDED_BY(m_) = 0;
};
