// Fixture: D1 must fire — iterating an unordered_map in a function
// that emits messages makes the wire byte order depend on hash-table
// iteration order.
#include <unordered_map>

struct Net {
  void send(int to, int payload);
};

class CreditHub {
 public:
  void flush() {
    for (const auto& [id, credit] : credits_) {  // <- D1
      net_.send(id, credit);
    }
  }

 private:
  Net net_;
  std::unordered_map<int, int> credits_;
};
