// Fixture: D9 must fire four times — message taint flows through a
// local copy into an allocation size, a vector subscript and a loop
// bound, and a message field is stored into an unannotated member.
#include <cstdint>
#include <vector>

using NodeId = std::uint32_t;

struct SyncMsg {
  std::uint64_t upto = 0;
  std::uint32_t shard = 0;
};

class Repair {
 public:
  void on_sync(NodeId from, const SyncMsg& msg) {
    (void)from;
    const std::uint64_t upto = msg.upto;
    slots_.resize(upto);  // <- D9 (tainted allocation size)
    const std::uint32_t lane = msg.shard;
    lanes_[lane] = 1;  // <- D9 (tainted subscript)
    for (std::uint64_t h = low_ + 1; h <= upto; ++h) {  // <- D9 (loop bound)
      serve(h);
    }
    highest_ = msg.upto;  // <- D9 (stored into unannotated member)
  }

 private:
  void serve(std::uint64_t h);

  std::vector<int> slots_;
  std::vector<int> lanes_;
  std::uint64_t low_ = 0;
  std::uint64_t highest_ = 0;
};
