// Fixture: D5 must fire — reinterpret_cast outside the approved
// low-level TUs (gf256*, sha256*, bytes*).
#include <cstdint>

const std::uint8_t* view(const char* s) {
  return reinterpret_cast<const std::uint8_t*>(s);  // <- D5
}
