// Fixture: D5 must stay quiet — this file's basename starts with
// "bytes", one of the approved low-level TUs where byte-level casts
// are fenced in.
#include <cstdint>

const std::uint8_t* view(const char* s) {
  return reinterpret_cast<const std::uint8_t*>(s);
}
