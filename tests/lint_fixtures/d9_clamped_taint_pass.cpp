// Fixture: D9 must stay quiet — every message-derived value is
// sanitized before reaching a sink: a dominating bounds check covers
// the subscript, a std::min against a kMax* constant bounds the loop,
// a modulo reduces the stored value, and the mirrored raw field lands
// in a member that is explicitly annotated message-derived.
#include <algorithm>
#include <cstdint>
#include <vector>

#define PREDIS_MSG_DERIVED

using NodeId = std::uint32_t;

inline constexpr std::uint64_t kMaxSyncSpan = 128;

struct SyncMsg {
  std::uint64_t upto = 0;
  std::uint32_t shard = 0;
};

class Repair {
 public:
  void on_sync(NodeId from, const SyncMsg& msg) {
    (void)from;
    if (msg.shard >= lanes_.size()) return;
    const std::uint32_t lane = msg.shard;
    lanes_[lane] = 1;
    const std::uint64_t upto = std::min(msg.upto, low_ + kMaxSyncSpan);
    for (std::uint64_t h = low_ + 1; h <= upto; ++h) {
      serve(h);
    }
    highest_ = msg.upto % kMaxSyncSpan;
    mirror_ = msg.upto;
  }

 private:
  void serve(std::uint64_t h);

  std::vector<int> lanes_;
  std::uint64_t low_ = 0;
  std::uint64_t highest_ = 0;
  std::uint64_t mirror_ PREDIS_MSG_DERIVED = 0;
};
