// Fixture: D6 must stay quiet — harness code that assembles a backend
// through runtime::SimRuntime and hands actors a runtime::Runtime&
// never names the concrete simulator types.
namespace predis::runtime {
class Runtime;
class SimRuntime;
}  // namespace predis::runtime

// The FaultPlanConfig/FaultScheduler spellings stay legal: the fault
// model is part of the sim namespace's public surface, not a backend.
namespace predis::sim {
struct FaultPlanConfig;
class FaultScheduler;
}  // namespace predis::sim

void assemble(predis::runtime::Runtime& net,
              const predis::sim::FaultPlanConfig& plan);
