// Fixture: the D7 lock-order check must fire once — submit() nests
// b_ inside a_ while drain() nests a_ inside b_, a classic ABBA
// deadlock. The accesses themselves are all properly locked.
#include <deque>
#include <mutex>

#define PREDIS_GUARDED_BY(mu)

class Exchange {
 public:
  void submit(int order) {
    std::lock_guard<std::mutex> la(a_);
    std::lock_guard<std::mutex> lb(b_);  // <- D7 (a_ -> b_ edge)
    inbox_.push_back(order);
    outbox_.push_back(order);
  }

  void drain() {
    std::lock_guard<std::mutex> lb(b_);
    std::lock_guard<std::mutex> la(a_);  // <- D7 (b_ -> a_ edge: cycle)
    inbox_.clear();
    outbox_.clear();
  }

 private:
  std::mutex a_;
  std::mutex b_;
  std::deque<int> inbox_ PREDIS_GUARDED_BY(a_);
  std::deque<int> outbox_ PREDIS_GUARDED_BY(b_);
};
