// Fixture: D2 must fire twice — wall-clock time and the C RNG both
// break bit-for-bit seeded replay.
#include <chrono>
#include <cstdlib>

long jitter() {
  const auto t = std::chrono::steady_clock::now();  // <- D2
  return t.time_since_epoch().count() +
         std::rand() % 7;  // <- D2
}
