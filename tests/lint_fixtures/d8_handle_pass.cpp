// Fixture: D8 must stay quiet — the tick chain is explicitly
// fire-and-forget, the member handle is cancelled on restart before
// being re-armed, and the local handle is actually consumed.
#define PREDIS_FIRE_AND_FORGET(...) static_cast<void>(__VA_ARGS__)

struct TimerHandle {
  void cancel();
  bool scheduled() const;
};

struct Ctx {
  TimerHandle after(int delay, void (*fn)());
};

class Node {
 public:
  void tick() {
    PREDIS_FIRE_AND_FORGET(ctx_.after(5, nullptr));
  }

  void restart() {
    retry_timer_.cancel();
    retry_timer_ = ctx_.after(7, nullptr);
  }

  void probe() {
    auto h = ctx_.after(9, nullptr);
    if (h.scheduled()) h.cancel();
  }

 private:
  Ctx ctx_;
  TimerHandle retry_timer_;
};
