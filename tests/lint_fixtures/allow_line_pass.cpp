// Fixture: the line allowlist pragma must suppress the D2 finding on
// the next line (and only that rule, on that line).
#include <cstdlib>

int noisy() {
  // predis-lint: allow(D2): fixture demonstrates the line pragma.
  return std::rand();
}
