// Fixture: D8 must fire three times — a schedule result discarded as a
// bare statement, a handle assigned to a local that is never used, and
// a TimerHandle member that no code in the file ever cancels.
struct TimerHandle {
  void cancel();
  bool scheduled() const;
};

struct Ctx {
  TimerHandle after(int delay, void (*fn)());
};

class Node {
 public:
  void tick() {
    ctx_.after(5, nullptr);  // <- D8 (result discarded)
  }

  void arm() {
    auto h = ctx_.after(7, nullptr);  // <- D8 (handle never used)
  }

 private:
  Ctx ctx_;
  TimerHandle retry_timer_;  // <- D8 (never cancelled)
};
