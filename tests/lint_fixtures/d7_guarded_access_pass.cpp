// Fixture: D7 must stay quiet — every touch of a guarded field holds
// the named mutex, via lock_guard, scoped_lock, a deferred unique_lock
// taken explicitly, or a manual lock()/unlock() bracket.
#include <mutex>

#define PREDIS_GUARDED_BY(mu)

class Wallet {
 public:
  void deposit(int n) {
    std::lock_guard<std::mutex> lock(m_);
    credits_ += n;
  }

  int peek() const {
    std::unique_lock<std::mutex> lk(m_);
    return credits_;
  }

  void audit() {
    std::unique_lock<std::mutex> lk(m_, std::defer_lock);
    lk.lock();
    credits_ = 0;
    lk.unlock();
  }

  void transfer(Wallet& other, int n) {
    std::scoped_lock lock(m_, other.m_);
    credits_ -= n;
  }

  void manual(int n) {
    m_.lock();
    last_spent_ = n;
    m_.unlock();
  }

 private:
  mutable std::mutex m_;
  int credits_ PREDIS_GUARDED_BY(m_) = 0;
  int last_spent_ PREDIS_GUARDED_BY(m_) = 0;
};
