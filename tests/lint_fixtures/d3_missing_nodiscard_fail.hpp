// Fixture: D3 must fire three times — two declarations missing
// [[nodiscard]] (a non-void try_* and an Expected<T> return) and one
// call site that drops the result on the floor.
#pragma once

#include <string>

template <typename T>
class Expected {
 public:
  explicit Expected(T v) : value_(v) {}
  bool ok() const { return true; }

 private:
  T value_;
};

Expected<int> try_parse(const std::string& s);   // <- D3 (declaration)
Expected<int> parse_or_error(const std::string& s);  // <- D3 (declaration)

inline void drive(const std::string& s) {
  try_parse(s);  // <- D3 (discarded result)
}
