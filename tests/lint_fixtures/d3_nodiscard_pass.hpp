// Fixture: D3 must stay quiet — both declarations carry [[nodiscard]]
// and every call site consumes the result.
#pragma once

#include <string>

template <typename T>
class Expected {
 public:
  explicit Expected(T v) : value_(v) {}
  bool ok() const { return true; }

 private:
  T value_;
};

[[nodiscard]] Expected<int> try_parse(const std::string& s);
[[nodiscard]] Expected<int> parse_or_error(const std::string& s);

inline bool drive(const std::string& s) {
  if (!parse_or_error(s).ok()) return false;
  return try_parse(s).ok();
}
