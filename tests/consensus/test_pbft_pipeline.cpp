// Pipelined (watermarked) PBFT: multiple slots in flight, safety under
// leader crashes mid-pipeline, and throughput/latency benefits.
#include <gtest/gtest.h>

#include "cluster.hpp"
#include "consensus/pbft/pbft_node.hpp"

namespace predis::consensus::pbft {
namespace {

using testing::TestCluster;

struct PipelineCluster : TestCluster {
  explicit PipelineCluster(SeqNum window, std::size_t n = 4)
      : TestCluster(n, (n - 1) / 3) {
    PbftNodeConfig ncfg;
    ncfg.batch_size = 100;
    ncfg.pipeline_window = window;
    for (std::size_t i = 0; i < n; ++i) {
      nodes.push_back(std::make_unique<PbftNode>(context(i), ncfg, ledger));
      net.attach(ids[i], nodes.back().get());
    }
  }
  std::vector<std::unique_ptr<PbftNode>> nodes;
};

TEST(PbftPipeline, WindowOneMatchesSerializedBehaviour) {
  PipelineCluster cluster(1);
  cluster.add_client(cluster.ids, 500, seconds(2));
  cluster.net.start();
  cluster.run_until(seconds(3));
  EXPECT_GT(cluster.metrics.committed_txs(), 800u);
  EXPECT_TRUE(cluster.ledger.consistent());
}

TEST(PbftPipeline, DeepWindowCommitsEverythingExactlyOnce) {
  PipelineCluster cluster(8);
  auto* client = cluster.add_client(cluster.ids, 800, seconds(2));
  cluster.net.start();
  cluster.run_until(seconds(3));
  EXPECT_EQ(cluster.metrics.committed_txs(), client->submitted());
  EXPECT_EQ(cluster.metrics.latencies().count(), client->submitted());
  EXPECT_TRUE(cluster.ledger.consistent());
}

TEST(PbftPipeline, PipeliningReducesLatencyUnderLoad) {
  auto run = [](SeqNum window) {
    PipelineCluster cluster(window);
    cluster.add_client(cluster.ids, 3000, seconds(3));
    cluster.net.start();
    cluster.run_until(seconds(4));
    EXPECT_TRUE(cluster.ledger.consistent());
    return cluster.metrics.latencies().mean();
  };
  const double serialized = run(1);
  const double pipelined = run(4);
  // Overlapping the propose phases cuts queueing delay at this load.
  EXPECT_LT(pipelined, serialized);
}

TEST(PbftPipeline, LeaderCrashMidPipelineStaysSafe) {
  PipelineCluster cluster(4);
  cluster.add_client(cluster.ids, 1500, seconds(4));
  cluster.net.start();
  cluster.run_until(milliseconds(700));
  const auto before = cluster.metrics.committed_txs();
  EXPECT_GT(before, 0u);

  cluster.net.set_node_down(cluster.ids[0], true);
  cluster.run_until(seconds(5));
  EXPECT_GT(cluster.metrics.committed_txs(), before);
  EXPECT_TRUE(cluster.ledger.consistent());
  for (std::size_t i = 1; i < 4; ++i) {
    EXPECT_GE(cluster.nodes[i]->core().view(), 1u);
    // All survivors executed the same prefix.
    EXPECT_EQ(cluster.nodes[i]->core().last_executed(),
              cluster.nodes[1]->core().last_executed());
  }
}

class PipelineSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PipelineSeeds, RandomCrashSafetySweep) {
  PipelineCluster cluster(4);
  const std::uint64_t seed = GetParam();
  cluster.add_client(cluster.ids, 1200, seconds(3), seed);
  cluster.net.start();
  cluster.schedule_at(
      milliseconds(200 + 170 * static_cast<SimTime>(seed % 6)),
      [&cluster, seed] {
        cluster.net.set_node_down(cluster.ids[seed % 4], true);
      });
  cluster.run_until(seconds(4));
  EXPECT_TRUE(cluster.ledger.consistent());
  EXPECT_GT(cluster.metrics.committed_txs(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineSeeds,
                         ::testing::Range<std::uint64_t>(1, 9));

}  // namespace
}  // namespace predis::consensus::pbft
