#include "consensus/narwhal/shared_mempool.hpp"

#include <gtest/gtest.h>

#include "cluster.hpp"

namespace predis::consensus::narwhal {
namespace {

using testing::TestCluster;

struct SmCluster : TestCluster {
  explicit SmCluster(std::size_t ack_quorum, std::size_t n = 4,
                     std::size_t f = 1)
      : TestCluster(n, f) {
    SharedMempoolConfig ncfg;
    ncfg.microblock_size = 20;
    ncfg.pack_interval = milliseconds(20);
    ncfg.ack_quorum = ack_quorum;
    for (std::size_t i = 0; i < n; ++i) {
      nodes.push_back(
          std::make_unique<SharedMempoolNode>(context(i), ncfg, ledger));
      net.attach(ids[i], nodes.back().get());
    }
  }

  void add_clients(double total_tps, SimTime stop) {
    for (std::size_t i = 0; i < ids.size(); ++i) {
      add_client({ids[i]}, total_tps / static_cast<double>(ids.size()),
                 stop, 61 + i);
    }
  }

  std::vector<std::unique_ptr<SharedMempoolNode>> nodes;
};

TEST(Narwhal, CommitsWithRbcQuorum) {
  SmCluster cluster(/*ack_quorum=*/3);  // n - f
  cluster.add_clients(1000, seconds(2));
  cluster.net.start();
  cluster.run_until(seconds(3));
  EXPECT_GT(cluster.metrics.committed_txs(), 1200u);
  EXPECT_TRUE(cluster.ledger.consistent());
}

TEST(Stratus, CommitsWithPabQuorum) {
  SmCluster cluster(/*ack_quorum=*/2);  // f + 1
  cluster.add_clients(1000, seconds(2));
  cluster.net.start();
  cluster.run_until(seconds(3));
  EXPECT_GT(cluster.metrics.committed_txs(), 1200u);
  EXPECT_TRUE(cluster.ledger.consistent());
}

TEST(SharedMempool, NoTransactionCommittedTwice) {
  SmCluster cluster(3);
  auto* client = cluster.add_client(cluster.ids, 300, seconds(2), 5);
  cluster.net.start();
  cluster.run_until(seconds(3));
  // The client broadcast to all nodes; each node packs its own copy of
  // the duplicates into microblocks, but dedup happens at reply time —
  // commits may exceed submissions (microblocks are not deduplicated
  // across producers, exactly the Byzantine-client issue §III-E notes).
  // What must hold: every submitted tx got exactly one reply.
  EXPECT_EQ(cluster.metrics.latencies().count(), client->submitted());
  EXPECT_TRUE(cluster.ledger.consistent());
}

TEST(SharedMempool, ProposalSizeGrowsWithIdCount) {
  const IdListPayload small(
      std::vector<MicroblockRef>(10), /*cert_signers=*/3);
  const IdListPayload large(
      std::vector<MicroblockRef>(1000), /*cert_signers=*/3);
  EXPECT_GT(large.wire_size(), 50 * small.wire_size());
  // 1000 ids with certificates is tens of KB — the paper's ~30 KB
  // versus a <2.5 KB Predis block.
  EXPECT_GT(large.wire_size(), 30'000u);
}

TEST(SharedMempool, StratusCertificatesAreSmaller) {
  const IdListPayload narwhal(std::vector<MicroblockRef>(100), 3);
  const IdListPayload stratus(std::vector<MicroblockRef>(100), 2);
  EXPECT_LT(stratus.wire_size(), narwhal.wire_size());
}

TEST(SharedMempool, SurvivesCrashOfOneNode) {
  SmCluster cluster(3);
  cluster.add_clients(600, seconds(3));
  cluster.net.start();
  cluster.run_until(milliseconds(800));
  const auto before = cluster.metrics.committed_txs();
  cluster.net.set_node_down(cluster.ids[2], true);
  cluster.run_until(seconds(4));
  EXPECT_GT(cluster.metrics.committed_txs(), before);
  EXPECT_TRUE(cluster.ledger.consistent());
}

}  // namespace
}  // namespace predis::consensus::narwhal
