// Partition tests: consensus halts while no quorum-connected component
// exists and resumes (safely) when the partition heals.
#include <gtest/gtest.h>

#include "cluster.hpp"
#include "consensus/pbft/pbft_node.hpp"
#include "consensus/predis/predis_nodes.hpp"

namespace predis::consensus {
namespace {

using testing::TestCluster;

/// Drop every message crossing the {0,1} | {2,3} cut.
runtime::Runtime::DropFilter split_filter(const std::vector<NodeId>& ids) {
  return [ids](NodeId from, NodeId to, const runtime::Message&) {
    auto side = [&ids](NodeId id) {
      return id == ids[0] || id == ids[1];
    };
    const bool from_consensus =
        std::find(ids.begin(), ids.end(), from) != ids.end();
    const bool to_consensus =
        std::find(ids.begin(), ids.end(), to) != ids.end();
    if (!from_consensus || !to_consensus) return false;  // clients pass
    return side(from) != side(to);
  };
}

TEST(Partition, PbftHaltsDuringSplitAndHealsSafely) {
  TestCluster cluster(4, 1);
  pbft::PbftNodeConfig ncfg;
  ncfg.batch_size = 50;
  std::vector<std::unique_ptr<pbft::PbftNode>> nodes;
  for (std::size_t i = 0; i < 4; ++i) {
    nodes.push_back(std::make_unique<pbft::PbftNode>(cluster.context(i),
                                                     ncfg, cluster.ledger));
    cluster.net.attach(cluster.ids[i], nodes.back().get());
  }
  cluster.add_client(cluster.ids, 400, seconds(6));
  cluster.net.start();

  cluster.run_until(seconds(1));
  const auto before = cluster.metrics.committed_txs();
  EXPECT_GT(before, 0u);

  // 2-2 split: neither side has a quorum of 3.
  cluster.net.set_drop_filter(split_filter(cluster.ids));
  cluster.run_until(seconds(3));
  const auto during = cluster.metrics.committed_txs();
  EXPECT_LE(during, before + 100);  // at most in-flight remnants

  // Heal; progress resumes and safety holds.
  cluster.net.set_drop_filter(nullptr);
  cluster.run_until(seconds(7));
  EXPECT_GT(cluster.metrics.committed_txs(), during);
  EXPECT_TRUE(cluster.ledger.consistent());
}

TEST(Partition, PredisPbftHealsAndRecoversBundles) {
  TestCluster cluster(4, 1);
  const auto keys = cluster.producer_keys();
  std::vector<std::unique_ptr<predis::PredisPbftNode>> nodes;
  for (std::size_t i = 0; i < 4; ++i) {
    predis::PredisConfig pcfg;
    pcfg.bundle_size = 20;
    pcfg.bundle_interval = milliseconds(20);
    nodes.push_back(std::make_unique<predis::PredisPbftNode>(
        cluster.context(i), pcfg, keys, KeyPair::from_seed(cluster.ids[i]),
        cluster.ledger));
    cluster.net.attach(cluster.ids[i], nodes.back().get());
  }
  for (std::size_t i = 0; i < 4; ++i) {
    cluster.add_client({cluster.ids[i]}, 200, seconds(6), 80 + i);
  }
  cluster.net.start();

  cluster.run_until(seconds(1));
  cluster.net.set_drop_filter(split_filter(cluster.ids));
  cluster.run_until(seconds(3));
  cluster.net.set_drop_filter(nullptr);
  cluster.run_until(seconds(8));

  EXPECT_TRUE(cluster.ledger.consistent());
  // After healing, bundles produced during the split were exchanged and
  // confirmed: every chain advanced well past its pre-split height.
  const Mempool& pool = nodes[0]->engine().mempool();
  for (std::size_t chain = 0; chain < 4; ++chain) {
    EXPECT_GT(pool.chain(chain).contiguous_height(), 60u) << chain;
  }
  EXPECT_GT(cluster.metrics.committed_txs(), 0u);
}

TEST(Partition, MinorityPartitionCannotCommit) {
  TestCluster cluster(4, 1);
  pbft::PbftNodeConfig ncfg;
  std::vector<std::unique_ptr<pbft::PbftNode>> nodes;
  for (std::size_t i = 0; i < 4; ++i) {
    nodes.push_back(std::make_unique<pbft::PbftNode>(cluster.context(i),
                                                     ncfg, cluster.ledger));
    cluster.net.attach(cluster.ids[i], nodes.back().get());
  }
  // Isolate node 0 (the leader) alone; the other three keep quorum.
  const NodeId isolated = cluster.ids[0];
  cluster.net.set_drop_filter(
      [isolated, ids = cluster.ids](NodeId from, NodeId to,
                                    const runtime::Message&) {
        const bool from_c = std::find(ids.begin(), ids.end(), from) != ids.end();
        const bool to_c = std::find(ids.begin(), ids.end(), to) != ids.end();
        if (!from_c || !to_c) return false;
        return from == isolated || to == isolated;
      });
  cluster.add_client(cluster.ids, 400, seconds(4));
  cluster.net.start();
  cluster.run_until(seconds(5));

  // The majority side view-changed past the isolated leader and kept
  // committing; the isolated node committed nothing new.
  EXPECT_GT(cluster.metrics.committed_txs(), 0u);
  EXPECT_EQ(nodes[0]->core().last_executed(), 0u);
  EXPECT_GT(nodes[1]->core().view(), 0u);
  EXPECT_TRUE(cluster.ledger.consistent());
}

}  // namespace
}  // namespace predis::consensus
