#include "consensus/hotstuff/hotstuff_node.hpp"

#include <gtest/gtest.h>

#include "cluster.hpp"

namespace predis::consensus::hotstuff {
namespace {

using testing::TestCluster;

struct HsCluster : TestCluster {
  explicit HsCluster(std::size_t n = 4, std::size_t f = 1)
      : TestCluster(n, f) {
    HotStuffNodeConfig ncfg;
    ncfg.batch_size = 100;
    for (std::size_t i = 0; i < n; ++i) {
      nodes.push_back(
          std::make_unique<HotStuffNode>(context(i), ncfg, ledger));
      net.attach(ids[i], nodes.back().get());
    }
  }
  std::vector<std::unique_ptr<HotStuffNode>> nodes;
};

TEST(HotStuff, CommitsClientTransactions) {
  HsCluster cluster;
  cluster.add_client(cluster.ids, 500, seconds(2));
  cluster.net.start();
  cluster.run_until(seconds(3));

  EXPECT_GT(cluster.metrics.committed_txs(), 800u);
  EXPECT_TRUE(cluster.ledger.consistent());
}

TEST(HotStuff, RotatesLeadersAcrossRounds) {
  HsCluster cluster;
  cluster.add_client(cluster.ids, 300, seconds(2));
  cluster.net.start();
  cluster.run_until(seconds(3));
  // Many rounds must have passed (pipelined block per round).
  for (auto& node : cluster.nodes) {
    EXPECT_GT(node->core().committed_round(), 8u);
  }
}

TEST(HotStuff, NoTimeoutsWhenHealthy) {
  HsCluster cluster;
  cluster.add_client(cluster.ids, 300, seconds(2));
  cluster.net.start();
  cluster.run_until(seconds(3));
  for (auto& node : cluster.nodes) {
    EXPECT_EQ(node->core().timeouts(), 0u);
  }
}

TEST(HotStuff, CommittedTransactionsAreNotDuplicated) {
  HsCluster cluster;
  auto* client = cluster.add_client(cluster.ids, 400, seconds(2));
  cluster.net.start();
  cluster.run_until(seconds(3));
  // Every submitted tx commits at most once: committed == submitted.
  EXPECT_EQ(cluster.metrics.committed_txs(), client->submitted());
}

TEST(HotStuff, LeaderCrashRecoversThroughPacemaker) {
  HsCluster cluster;
  cluster.add_client(cluster.ids, 300, seconds(4));
  cluster.net.start();
  cluster.run_until(milliseconds(600));
  const auto before = cluster.metrics.committed_txs();
  EXPECT_GT(before, 0u);

  // Crash one node; the rotating pacemaker must keep making progress
  // through its rounds via NewView quorums.
  cluster.net.set_node_down(cluster.ids[1], true);
  cluster.run_until(seconds(4));
  EXPECT_GT(cluster.metrics.committed_txs(), before);
  EXPECT_TRUE(cluster.ledger.consistent());
  std::size_t timeouts = 0;
  for (auto& node : cluster.nodes) timeouts += node->core().timeouts();
  EXPECT_GT(timeouts, 0u);
}

TEST(HotStuff, StallsBeyondFFailures) {
  HsCluster cluster;
  cluster.nodes[2]->core().set_paused(true);
  cluster.nodes[3]->core().set_paused(true);
  cluster.add_client(cluster.ids, 300, seconds(2));
  cluster.net.start();
  cluster.run_until(seconds(2));
  EXPECT_EQ(cluster.metrics.committed_txs(), 0u);
}

class HsSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HsSeeds, SafetyHoldsWithRandomCrash) {
  HsCluster cluster;
  const std::uint64_t seed = GetParam();
  cluster.add_client(cluster.ids, 400, seconds(3), seed);
  cluster.net.start();
  cluster.schedule_at(
      milliseconds(150 + 130 * static_cast<SimTime>(seed % 5)),
      [&cluster, seed] {
        cluster.net.set_node_down(cluster.ids[seed % 4], true);
      });
  cluster.run_until(seconds(4));
  EXPECT_TRUE(cluster.ledger.consistent());
  EXPECT_GT(cluster.metrics.committed_txs(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, HsSeeds,
                         ::testing::Range<std::uint64_t>(1, 9));

TEST(HotStuff, SevenNodeClusterCommits) {
  HsCluster cluster(7, 2);
  cluster.add_client(cluster.ids, 500, seconds(2));
  cluster.net.start();
  cluster.run_until(seconds(3));
  EXPECT_GT(cluster.metrics.committed_txs(), 500u);
  EXPECT_TRUE(cluster.ledger.consistent());
}

}  // namespace
}  // namespace predis::consensus::hotstuff
