// Regression tests for the ban/rejoin timer and for conflict evidence
// surfaced from the retry path:
//
//  * apply_ban must arm exactly one rejoin timer per ban. Every honest
//    node broadcasts a ConflictMsg for the same offence, so duplicates
//    are the common case — each one used to arm another timer, and a
//    stale timer from the first ban could then lift a LATER ban early.
//  * A conflicting bundle that sits in the out-of-order buffer until
//    its parent arrives is detected inside Mempool::retry_pending; the
//    evidence must still reach the engine (ban + ConflictMsg broadcast)
//    even though that path has no caller-supplied evidence out-param.
#include <gtest/gtest.h>

#include <map>

#include "cluster.hpp"
#include "consensus/predis/predis_nodes.hpp"

namespace predis::consensus::predis {
namespace {

using testing::TestCluster;

struct TimerCluster : TestCluster {
  explicit TimerCluster(SimTime ban_duration, bool silence_node3 = false)
      : TestCluster(4, 1) {
    const auto keys = producer_keys();
    for (std::size_t i = 0; i < 4; ++i) {
      PredisConfig pcfg;
      pcfg.bundle_size = 20;
      pcfg.bundle_interval = milliseconds(20);
      pcfg.ban_duration = ban_duration;
      if (i == 3 && silence_node3) pcfg.fault = FaultMode::kSilent;
      nodes.push_back(std::make_unique<PredisPbftNode>(
          context(i), pcfg, keys, KeyPair::from_seed(ids[i]), ledger));
      net.attach(ids[i], nodes.back().get());
    }
    for (std::size_t i = 0; i < 4; ++i) {
      nodes[i]->engine().mempool().on_unban =
          [this, i](NodeId producer) { unbans[i][producer]++; };
    }
  }

  /// Signed, genuinely conflicting header pair from producer 3: two
  /// different bundles at the same height (`tag` varies the content so
  /// successive calls make distinct offences).
  ConflictEvidence forge_evidence(BundleHeight height, std::uint64_t tag) {
    Transaction ta;
    ta.client = 70;
    ta.seq = tag * 10 + 1;
    Transaction tb;
    tb.client = 70;
    tb.seq = tag * 10 + 2;
    const KeyPair key = KeyPair::from_seed(ids[3]);
    ConflictEvidence ev;
    ev.first = make_bundle(3, height, kZeroHash, {0, 0, 0, 0}, {ta}, key)
                   .header;
    ev.second = make_bundle(3, height, kZeroHash, {0, 0, 0, 0}, {tb}, key)
                    .header;
    return ev;
  }

  void send_conflict(const ConflictEvidence& ev) {
    for (NodeId id : ids) {
      auto msg = std::make_shared<ConflictMsg>();
      msg->evidence = ev;
      net.send(ids[3], id, msg);
    }
  }

  bool banned_everywhere() const {
    for (const auto& node : nodes) {
      if (!node->engine().mempool().is_banned(3)) return false;
    }
    return true;
  }

  bool banned_anywhere() const {
    for (const auto& node : nodes) {
      if (node->engine().mempool().is_banned(3)) return true;
    }
    return false;
  }

  std::vector<std::unique_ptr<PredisPbftNode>> nodes;
  std::map<std::size_t, std::map<NodeId, std::size_t>> unbans;
};

TEST(BanRejoinTimer, DuplicateConflictMsgsArmOneTimerPerBan) {
  TimerCluster cluster(/*ban_duration=*/seconds(2));
  for (std::size_t i = 0; i < 4; ++i) {
    cluster.add_client({cluster.ids[i]}, 150, seconds(9), 60 + i);
  }
  cluster.net.start();
  cluster.run_until(milliseconds(600));

  // First offence; every node bans producer 3 and arms a 2 s timer.
  const ConflictEvidence first = cluster.forge_evidence(1, 1);
  cluster.send_conflict(first);
  cluster.run_until(milliseconds(1200));
  EXPECT_TRUE(cluster.banned_everywhere());

  // Duplicate ConflictMsg for the same offence (in the real flow every
  // honest node broadcasts one). Pre-fix this armed a SECOND timer
  // firing ~3.2 s in.
  cluster.send_conflict(first);
  cluster.run_until(milliseconds(2800));
  // Ban expired on schedule: one rejoin, everywhere.
  EXPECT_FALSE(cluster.banned_anywhere());
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(cluster.unbans[i][3], 1u) << "node " << i;
  }

  // Second, fresh offence at ~2.9 s: the new ban must hold for its full
  // 2 s. A stale timer from the duplicate would lift it at ~3.2 s.
  cluster.send_conflict(cluster.forge_evidence(5, 2));
  cluster.run_until(milliseconds(3400));
  EXPECT_TRUE(cluster.banned_everywhere());
  cluster.run_until(milliseconds(4200));
  EXPECT_TRUE(cluster.banned_everywhere())
      << "stale rejoin timer lifted a later ban early";
  cluster.run_until(milliseconds(5400));
  EXPECT_FALSE(cluster.banned_anywhere());
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(cluster.unbans[i][3], 2u) << "node " << i;
  }

  // Post-rejoin the producer's chain grows again from its new genesis
  // and the cluster stays consistent: no stale timer wiped it.
  const BundleHeight at_rejoin =
      cluster.nodes[0]->engine().mempool().chain(3).contiguous_height();
  cluster.run_until(seconds(8));
  EXPECT_GT(
      cluster.nodes[0]->engine().mempool().chain(3).contiguous_height(),
      at_rejoin);
  EXPECT_TRUE(cluster.ledger.consistent());
}

TEST(BanRejoinTimer, RebanAfterRejoinArmsAFreshTimer) {
  TimerCluster cluster(/*ban_duration=*/seconds(1));
  cluster.net.start();
  cluster.run_until(milliseconds(500));
  cluster.send_conflict(cluster.forge_evidence(1, 1));
  cluster.run_until(milliseconds(1800));
  EXPECT_FALSE(cluster.banned_anywhere());

  // The guard set must have been cleared on rejoin, or this second ban
  // would never get a timer and the producer would stay banned forever.
  cluster.send_conflict(cluster.forge_evidence(3, 2));
  cluster.run_until(milliseconds(2200));
  EXPECT_TRUE(cluster.banned_everywhere());
  cluster.run_until(milliseconds(3400));
  EXPECT_FALSE(cluster.banned_anywhere());
}

// A forged child whose parent-hash contradicts the real chain arrives
// BEFORE its parent, parks in the out-of-order buffer, and is only
// detected during retry_pending once the parent lands. The detection
// must still ban the producer locally AND broadcast the evidence so
// the rest of the cluster bans too (pre-fix the evidence died inside
// retry_pending's nullptr out-param).
TEST(BanRejoinTimer, BufferedConflictDetectedOnRetryPropagatesBan) {
  // Producer 3 stays quiet so the forged chain is the only chain-3
  // content anyone sees.
  TimerCluster quiet(/*ban_duration=*/0, /*silence_node3=*/true);
  quiet.net.start();
  quiet.run_until(milliseconds(300));

  const KeyPair key = KeyPair::from_seed(quiet.ids[3]);
  Transaction tx;
  tx.client = 71;
  tx.seq = 1;
  const Bundle g1 =
      make_bundle(3, 1, kZeroHash, {0, 0, 0, 0}, {tx}, key);
  tx.seq = 2;
  const Hash32 bogus_parent = Sha256::hash(as_bytes(std::string("fork")));
  const Bundle g2_evil =
      make_bundle(3, 2, bogus_parent, {0, 0, 0, 0}, {tx}, key);

  // Child first: node 0 buffers it (missing parent).
  auto child = std::make_shared<BundleMsg>();
  child->bundle = g2_evil;
  quiet.net.send(quiet.ids[3], quiet.ids[0], child);
  quiet.run_until(milliseconds(400));
  EXPECT_FALSE(quiet.nodes[0]->engine().mempool().is_banned(3));

  // Parent lands: retry_pending pops the child, sees the parent-hash
  // fork, and the engine must broadcast the evidence.
  auto parent = std::make_shared<BundleMsg>();
  parent->bundle = g1;
  quiet.net.send(quiet.ids[3], quiet.ids[0], parent);
  quiet.run_until(milliseconds(900));

  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_TRUE(quiet.nodes[i]->engine().mempool().is_banned(3))
        << "node " << i
        << " never learned about the buffered-conflict evidence";
  }
}

}  // namespace
}  // namespace predis::consensus::predis
