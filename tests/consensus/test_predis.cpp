#include "consensus/predis/predis_nodes.hpp"

#include <gtest/gtest.h>

#include "cluster.hpp"

namespace predis::consensus::predis {
namespace {

using testing::TestCluster;

template <typename Node>
struct PredisCluster : TestCluster {
  explicit PredisCluster(std::size_t n = 4, std::size_t f = 1,
                         FaultMode fault = FaultMode::kNone,
                         std::size_t n_faulty = 0)
      : TestCluster(n, f) {
    const auto keys = producer_keys();
    for (std::size_t i = 0; i < n; ++i) {
      PredisConfig pcfg;
      pcfg.bundle_size = 20;
      pcfg.bundle_interval = milliseconds(20);
      if (i + n_faulty >= n) pcfg.fault = fault;
      nodes.push_back(std::make_unique<Node>(
          context(i), pcfg, keys, KeyPair::from_seed(ids[i]), ledger));
      net.attach(ids[i], nodes.back().get());
    }
  }

  /// Predis clients send to a single consensus node each.
  void add_predis_clients(double total_tps, SimTime stop) {
    for (std::size_t i = 0; i < ids.size(); ++i) {
      add_client({ids[i]}, total_tps / static_cast<double>(ids.size()),
                 stop, 31 + i);
    }
  }

  std::vector<std::unique_ptr<Node>> nodes;
};

using PPbft = PredisCluster<PredisPbftNode>;
using PHs = PredisCluster<PredisHotStuffNode>;

TEST(PredisPbft, CommitsClientTransactions) {
  PPbft cluster;
  cluster.add_predis_clients(1000, seconds(2));
  cluster.net.start();
  cluster.run_until(seconds(3));
  EXPECT_GT(cluster.metrics.committed_txs(), 1500u);
  EXPECT_TRUE(cluster.ledger.consistent());
}

TEST(PredisHotStuff, CommitsClientTransactions) {
  PHs cluster;
  cluster.add_predis_clients(1000, seconds(2));
  cluster.net.start();
  cluster.run_until(seconds(3));
  EXPECT_GT(cluster.metrics.committed_txs(), 1500u);
  EXPECT_TRUE(cluster.ledger.consistent());
}

TEST(PredisPbft, EveryNodeContributesBundles) {
  PPbft cluster;
  cluster.add_predis_clients(800, seconds(2));
  cluster.net.start();
  cluster.run_until(seconds(3));
  // Each consensus node's chain advanced in everyone's mempool.
  const Mempool& pool = cluster.nodes[0]->engine().mempool();
  for (std::size_t chain = 0; chain < 4; ++chain) {
    EXPECT_GT(pool.chain(chain).contiguous_height(), 10u) << chain;
  }
}

TEST(PredisPbft, MissingBundlesAreFetchedAndBlocksStillCommit) {
  PPbft cluster;
  // Drop ~30% of bundle multicasts from node 3 to node 1: node 1 must
  // fetch the gaps when Predis blocks reference them (§III-D case 2).
  int counter = 0;
  cluster.net.set_drop_filter(
      [&](NodeId from, NodeId to, const runtime::Message& msg) {
        if (from == cluster.ids[3] && to == cluster.ids[1] &&
            std::string(msg.name()) == "Bundle") {
          return ++counter % 3 == 0;
        }
        return false;
      });
  cluster.add_predis_clients(800, seconds(3));
  cluster.net.start();
  cluster.run_until(seconds(4));
  EXPECT_GT(cluster.metrics.committed_txs(), 1000u);
  EXPECT_TRUE(cluster.ledger.consistent());
}

TEST(PredisPbft, LeaderCrashViewChangeRecovers) {
  PPbft cluster;
  cluster.add_predis_clients(800, seconds(4));
  cluster.net.start();
  cluster.run_until(seconds(1));
  const auto before = cluster.metrics.committed_txs();
  EXPECT_GT(before, 0u);

  cluster.net.set_node_down(cluster.ids[0], true);
  cluster.run_until(seconds(5));
  EXPECT_GT(cluster.metrics.committed_txs(), before);
  EXPECT_TRUE(cluster.ledger.consistent());
}

// Fig. 6 case 1: silent Byzantine nodes — the rest keep committing at
// roughly (n - f)/n of the healthy rate.
TEST(PredisPbft, SilentFaultDegradesButDoesNotStop) {
  PPbft healthy;
  healthy.add_predis_clients(1000, seconds(3));
  healthy.net.start();
  healthy.run_until(seconds(4));
  const auto healthy_txs = healthy.metrics.committed_txs();

  PPbft faulty(4, 1, FaultMode::kSilent, 1);
  faulty.add_predis_clients(1000, seconds(3));
  faulty.net.start();
  faulty.run_until(seconds(4));
  const auto faulty_txs = faulty.metrics.committed_txs();

  EXPECT_GT(faulty_txs, 0u);
  EXPECT_LT(faulty_txs, healthy_txs);
  // Case-1 throughput ~ (n - f)/n of normal (the silent node's clients
  // are not served).
  EXPECT_GT(static_cast<double>(faulty_txs),
            0.55 * static_cast<double>(healthy_txs));
  EXPECT_TRUE(faulty.ledger.consistent());
}

// Fig. 6 case 2: the faulty node still produces bundles but sends them
// to only n_c - f - 1 peers and never votes. Missing-bundle fetches
// keep the system live, with throughput between case 1 and healthy.
TEST(PredisPbft, PartialDisseminationFaultStaysLive) {
  PPbft faulty(4, 1, FaultMode::kPartialDissemination, 1);
  faulty.add_predis_clients(1000, seconds(3));
  faulty.net.start();
  faulty.run_until(seconds(4));
  EXPECT_GT(faulty.metrics.committed_txs(), 500u);
  EXPECT_TRUE(faulty.ledger.consistent());
}

TEST(PredisHotStuff, ToleratesSilentFault) {
  PHs faulty(4, 1, FaultMode::kSilent, 1);
  faulty.add_predis_clients(800, seconds(3));
  faulty.net.start();
  faulty.run_until(seconds(4));
  EXPECT_GT(faulty.metrics.committed_txs(), 0u);
  EXPECT_TRUE(faulty.ledger.consistent());
}

class PredisSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PredisSeeds, SafetyAcrossSeeds) {
  PPbft cluster;
  for (std::size_t i = 0; i < cluster.ids.size(); ++i) {
    cluster.add_client({cluster.ids[i]}, 200, seconds(2),
                       GetParam() * 100 + i);
  }
  cluster.net.start();
  cluster.run_until(seconds(3));
  EXPECT_TRUE(cluster.ledger.consistent());
  EXPECT_GT(cluster.metrics.committed_txs(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PredisSeeds,
                         ::testing::Range<std::uint64_t>(1, 7));

// A Byzantine producer that equivocates gets banned everywhere and its
// chain stops being cut, while the system keeps committing.
TEST(PredisPbft, EquivocatingProducerIsBannedEverywhere) {
  PPbft cluster;
  cluster.add_predis_clients(600, seconds(3));
  cluster.net.start();
  cluster.run_until(milliseconds(500));

  // Inject a forged conflicting bundle for chain 3 at height 1 (same
  // parent as the genuine one, different content), as an honest node
  // would learn of it from the network.
  const Mempool& pool0 = cluster.nodes[0]->engine().mempool();
  ASSERT_TRUE(pool0.chain(3).has(1));
  Transaction tx;
  tx.client = 77;
  tx.seq = 1;
  Bundle evil = make_bundle(3, 1, kZeroHash,
                            pool0.chain(3).get(1)->header.tip_list, {tx},
                            KeyPair::from_seed(cluster.ids[3]));
  auto msg = std::make_shared<BundleMsg>();
  msg->bundle = evil;
  // Deliver the equivocation to node 0; it must gossip the evidence.
  cluster.net.send(cluster.ids[3], cluster.ids[0], msg);

  cluster.run_until(seconds(4));
  for (auto& node : cluster.nodes) {
    EXPECT_TRUE(node->engine().mempool().is_banned(3));
  }
  EXPECT_TRUE(cluster.ledger.consistent());
  EXPECT_GT(cluster.metrics.committed_txs(), 0u);
}

}  // namespace
}  // namespace predis::consensus::predis
