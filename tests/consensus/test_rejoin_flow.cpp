// End-to-end §III-E forking-attack lifecycle on a live P-PBFT cluster:
// a producer equivocates, every honest node bans it, the ban expires,
// the producer rejoins with a new genesis bundle and its chain is cut
// into blocks again.
#include <gtest/gtest.h>

#include "cluster.hpp"
#include "consensus/predis/predis_nodes.hpp"

namespace predis::consensus::predis {
namespace {

using testing::TestCluster;

struct RejoinCluster : TestCluster {
  explicit RejoinCluster(SimTime ban_duration) : TestCluster(4, 1) {
    const auto keys = producer_keys();
    for (std::size_t i = 0; i < 4; ++i) {
      PredisConfig pcfg;
      pcfg.bundle_size = 20;
      pcfg.bundle_interval = milliseconds(20);
      pcfg.ban_duration = ban_duration;
      nodes.push_back(std::make_unique<PredisPbftNode>(
          context(i), pcfg, keys, KeyPair::from_seed(ids[i]), ledger));
      net.attach(ids[i], nodes.back().get());
    }
  }

  /// Injects a forged conflicting bundle for chain 3 height 1 so every
  /// honest node learns the equivocation and bans producer 3.
  void inject_equivocation() {
    const Mempool& pool0 = nodes[0]->engine().mempool();
    ASSERT_TRUE(pool0.chain(3).has(1));
    Transaction tx;
    tx.client = 70;
    tx.seq = 9;
    Bundle evil = make_bundle(3, 1, kZeroHash,
                              pool0.chain(3).get(1)->header.tip_list, {tx},
                              KeyPair::from_seed(ids[3]));
    auto msg = std::make_shared<BundleMsg>();
    msg->bundle = evil;
    net.send(ids[3], ids[0], msg);
  }

  std::vector<std::unique_ptr<PredisPbftNode>> nodes;
};

TEST(RejoinFlow, BannedProducerRejoinsAfterExpiry) {
  RejoinCluster cluster(seconds(2));
  for (std::size_t i = 0; i < 4; ++i) {
    cluster.add_client({cluster.ids[i]}, 150, seconds(9), 40 + i);
  }
  cluster.net.start();
  cluster.run_until(milliseconds(600));
  cluster.inject_equivocation();
  cluster.run_until(seconds(2));

  // Banned everywhere while the ban lasts.
  for (auto& node : cluster.nodes) {
    EXPECT_TRUE(node->engine().mempool().is_banned(3));
  }
  const BundleHeight banned_height =
      cluster.nodes[0]->engine().mempool().chain(3).contiguous_height();

  // Ban expires ~2s after detection; give the rejoin time to propagate.
  cluster.run_until(seconds(8));
  for (auto& node : cluster.nodes) {
    EXPECT_FALSE(node->engine().mempool().is_banned(3));
  }
  // Chain 3 produces again after the new genesis.
  EXPECT_GT(cluster.nodes[0]->engine().mempool().chain(3).contiguous_height(),
            banned_height);
  EXPECT_TRUE(cluster.ledger.consistent());
  EXPECT_GT(cluster.metrics.committed_txs(), 0u);
}

TEST(RejoinFlow, PermanentBanWithoutDuration) {
  RejoinCluster cluster(/*ban_duration=*/0);
  for (std::size_t i = 0; i < 4; ++i) {
    cluster.add_client({cluster.ids[i]}, 150, seconds(5), 50 + i);
  }
  cluster.net.start();
  cluster.run_until(milliseconds(600));
  cluster.inject_equivocation();
  cluster.run_until(seconds(6));
  for (auto& node : cluster.nodes) {
    EXPECT_TRUE(node->engine().mempool().is_banned(3));
  }
  EXPECT_TRUE(cluster.ledger.consistent());
}

}  // namespace
}  // namespace predis::consensus::predis
