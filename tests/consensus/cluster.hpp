// Shared fixture pieces for consensus-layer tests: a small simulated
// LAN cluster with direct access to node actors and cores.
#pragma once

#include "common/metrics.hpp"
#include "common/signature.hpp"
#include "consensus/common.hpp"
#include "sim/environments.hpp"
#include "txpool/client.hpp"

namespace predis::consensus::testing {

struct TestCluster {
  explicit TestCluster(std::size_t n, std::size_t f,
                       SimTime latency = milliseconds(10),
                       SimTime view_timeout = milliseconds(400))
      : net(sim, sim::LatencyMatrix::uniform(1, latency)), ledger(metrics) {
    for (std::size_t i = 0; i < n; ++i) {
      ids.push_back(net.add_node(sim::node_100mbps(0)));
    }
    config.nodes = ids;
    config.f = f;
    config.view_timeout = view_timeout;
  }

  NodeContext context(std::size_t i) { return NodeContext(net, ids[i], config); }

  /// Adds an open-loop client targeting the given consensus nodes.
  ClientActor* add_client(std::vector<NodeId> targets, double tps,
                          SimTime stop_at, std::uint64_t seed = 7) {
    sim::NodeConfig ncfg;
    ncfg.up_bw = 10 * sim::kBandwidth100Mbps;
    ncfg.down_bw = 10 * sim::kBandwidth100Mbps;
    const NodeId id = net.add_node(ncfg);
    ClientConfig ccfg;
    ccfg.self = id;
    ccfg.targets = std::move(targets);
    ccfg.tx_per_second = tps;
    ccfg.stop_at = stop_at;
    ccfg.seed = seed;
    clients.push_back(std::make_unique<ClientActor>(net, ccfg, metrics));
    net.attach(id, clients.back().get());
    return clients.back().get();
  }

  std::vector<PublicKey> producer_keys() const {
    std::vector<PublicKey> keys;
    for (NodeId id : ids) keys.push_back(KeyPair::from_seed(id).public_key());
    return keys;
  }

  sim::Simulator sim;
  sim::Network net;
  Metrics metrics;
  CommitLedger ledger;
  ConsensusConfig config;
  std::vector<NodeId> ids;
  std::vector<std::unique_ptr<ClientActor>> clients;
};

}  // namespace predis::consensus::testing
