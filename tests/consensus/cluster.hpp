// Shared fixture pieces for consensus-layer tests: a small simulated
// LAN cluster with direct access to node actors and cores. Built on
// the Runtime seam (deterministic SimRuntime backend) so the fixtures
// exercise exactly the surface production harnesses use.
#pragma once

#include <functional>

#include "common/metrics.hpp"
#include "common/signature.hpp"
#include "consensus/common.hpp"
#include "runtime/environments.hpp"
#include "runtime/sim_runtime.hpp"
#include "txpool/client.hpp"

namespace predis::consensus::testing {

struct TestCluster {
  explicit TestCluster(std::size_t n, std::size_t f,
                       SimTime latency = milliseconds(10),
                       SimTime view_timeout = milliseconds(400))
      : backend(runtime::LatencyMatrix::uniform(1, latency)),
        net(backend.runtime()),
        ledger(metrics) {
    for (std::size_t i = 0; i < n; ++i) {
      ids.push_back(net.add_node(runtime::node_100mbps(0)));
    }
    config.nodes = ids;
    config.f = f;
    config.view_timeout = view_timeout;
  }

  NodeContext context(std::size_t i) { return NodeContext(net, ids[i], config); }

  /// Adds an open-loop client targeting the given consensus nodes.
  ClientActor* add_client(std::vector<NodeId> targets, double tps,
                          SimTime stop_at, std::uint64_t seed = 7) {
    runtime::NodeConfig ncfg;
    ncfg.up_bw = 10 * runtime::kBandwidth100Mbps;
    ncfg.down_bw = 10 * runtime::kBandwidth100Mbps;
    const NodeId id = net.add_node(ncfg);
    ClientConfig ccfg;
    ccfg.self = id;
    ccfg.targets = std::move(targets);
    ccfg.tx_per_second = tps;
    ccfg.stop_at = stop_at;
    ccfg.seed = seed;
    clients.push_back(std::make_unique<ClientActor>(net, ccfg, metrics));
    net.attach(id, clients.back().get());
    return clients.back().get();
  }

  std::vector<PublicKey> producer_keys() const {
    std::vector<PublicKey> keys;
    for (NodeId id : ids) keys.push_back(KeyPair::from_seed(id).public_key());
    return keys;
  }

  void run_until(SimTime limit) { net.run_until(limit); }

  /// Absolute-time convenience for harness-level one-shots.
  runtime::TimerHandle schedule_at(SimTime at, std::function<void()> fn) {
    return net.schedule_after(at - net.now(), std::move(fn));
  }

  runtime::SimRuntime backend;
  runtime::Runtime& net;
  Metrics metrics;
  CommitLedger ledger;
  ConsensusConfig config;
  std::vector<NodeId> ids;
  std::vector<std::unique_ptr<ClientActor>> clients;
};

}  // namespace predis::consensus::testing
