#include "consensus/pbft/pbft_node.hpp"

#include <gtest/gtest.h>

#include "cluster.hpp"

namespace predis::consensus::pbft {
namespace {

using testing::TestCluster;

struct PbftCluster : TestCluster {
  explicit PbftCluster(std::size_t n = 4, std::size_t f = 1)
      : TestCluster(n, f) {
    PbftNodeConfig ncfg;
    ncfg.batch_size = 100;
    for (std::size_t i = 0; i < n; ++i) {
      nodes.push_back(std::make_unique<PbftNode>(context(i), ncfg, ledger));
      net.attach(ids[i], nodes.back().get());
    }
  }
  std::vector<std::unique_ptr<PbftNode>> nodes;
};

TEST(Pbft, CommitsClientTransactions) {
  PbftCluster cluster;
  cluster.add_client(cluster.ids, 500, seconds(2));
  cluster.net.start();
  cluster.run_until(seconds(3));

  EXPECT_GT(cluster.metrics.committed_txs(), 800u);
  EXPECT_TRUE(cluster.ledger.consistent());
  EXPECT_EQ(cluster.metrics.latencies().count(),
            cluster.metrics.committed_txs());
  // All replicas executed the same prefix.
  for (auto& node : cluster.nodes) {
    EXPECT_EQ(node->core().last_executed(),
              cluster.nodes[0]->core().last_executed());
  }
}

TEST(Pbft, NoViewChangesWhenLeaderHealthy) {
  PbftCluster cluster;
  cluster.add_client(cluster.ids, 200, seconds(2));
  cluster.net.start();
  cluster.run_until(seconds(3));
  for (auto& node : cluster.nodes) {
    EXPECT_EQ(node->core().view(), 0u);
    EXPECT_EQ(node->core().view_changes(), 0u);
  }
}

TEST(Pbft, LeaderCrashTriggersViewChangeAndRecovers) {
  PbftCluster cluster;
  cluster.add_client(cluster.ids, 300, seconds(4));
  cluster.net.start();
  cluster.run_until(seconds(1));
  const auto committed_before = cluster.metrics.committed_txs();
  EXPECT_GT(committed_before, 0u);

  // Kill the view-0 leader (node 0).
  cluster.net.set_node_down(cluster.ids[0], true);
  cluster.run_until(seconds(4));

  EXPECT_GT(cluster.metrics.committed_txs(), committed_before);
  EXPECT_TRUE(cluster.ledger.consistent());
  for (std::size_t i = 1; i < cluster.nodes.size(); ++i) {
    EXPECT_GE(cluster.nodes[i]->core().view(), 1u);
  }
}

TEST(Pbft, ToleratesFSilentReplicas) {
  PbftCluster cluster;
  // Pause the last replica (not the leader): quorum 3 of 4 remains.
  cluster.nodes[3]->core().set_paused(true);
  cluster.add_client(cluster.ids, 300, seconds(2));
  cluster.net.start();
  cluster.run_until(seconds(3));
  EXPECT_GT(cluster.metrics.committed_txs(), 400u);
  EXPECT_TRUE(cluster.ledger.consistent());
}

TEST(Pbft, StallsBeyondFFailuresUntilNodeReturns) {
  PbftCluster cluster;
  cluster.nodes[2]->core().set_paused(true);
  cluster.nodes[3]->core().set_paused(true);  // 2 > f = 1
  cluster.add_client(cluster.ids, 300, seconds(2));
  cluster.net.start();
  cluster.run_until(seconds(2));
  EXPECT_EQ(cluster.metrics.committed_txs(), 0u);

  // One paused node resumes; progress returns (possibly in a new view).
  cluster.nodes[2]->core().set_paused(false);
  cluster.add_client(cluster.ids, 300, seconds(4), 11);
  cluster.run_until(seconds(5));
  EXPECT_GT(cluster.metrics.committed_txs(), 0u);
  EXPECT_TRUE(cluster.ledger.consistent());
}

class PbftSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PbftSeeds, SafetyHoldsAcrossSeedsWithLeaderCrash) {
  PbftCluster cluster(4, 1);
  cluster.add_client(cluster.ids, 400, seconds(3), GetParam());
  cluster.net.start();
  const SimTime crash_at =
      milliseconds(200 + 150 * static_cast<SimTime>(GetParam() % 7));
  cluster.schedule_at(crash_at, [&cluster] {
    cluster.net.set_node_down(cluster.ids[0], true);
  });
  cluster.run_until(seconds(4));
  EXPECT_TRUE(cluster.ledger.consistent());
  EXPECT_GT(cluster.metrics.committed_txs(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PbftSeeds,
                         ::testing::Range<std::uint64_t>(1, 9));

TEST(Pbft, SevenNodeClusterCommits) {
  PbftCluster cluster(7, 2);
  cluster.add_client(cluster.ids, 500, seconds(2));
  cluster.net.start();
  cluster.run_until(seconds(3));
  EXPECT_GT(cluster.metrics.committed_txs(), 500u);
  EXPECT_TRUE(cluster.ledger.consistent());
}

}  // namespace
}  // namespace predis::consensus::pbft
