// §III-E censorship attack: a consensus node that swallows the client
// transactions sent to it. The client's resubmission countermeasure
// consigns overdue transactions to other consensus nodes, so they still
// commit.
#include <gtest/gtest.h>

#include "cluster.hpp"
#include "consensus/predis/predis_nodes.hpp"

namespace predis::consensus::predis {
namespace {

using testing::TestCluster;

struct CensorCluster : TestCluster {
  CensorCluster() : TestCluster(4, 1) {
    const auto keys = producer_keys();
    for (std::size_t i = 0; i < 4; ++i) {
      PredisConfig pcfg;
      pcfg.bundle_size = 20;
      pcfg.bundle_interval = milliseconds(20);
      nodes.push_back(std::make_unique<PredisPbftNode>(
          context(i), pcfg, keys, KeyPair::from_seed(ids[i]), ledger));
      net.attach(ids[i], nodes.back().get());
    }
  }
  std::vector<std::unique_ptr<PredisPbftNode>> nodes;
};

ClientActor* add_resubmitting_client(CensorCluster& cluster, NodeId target,
                                     double tps, SimTime resubmit) {
  runtime::NodeConfig ncfg;
  ncfg.up_bw = 10 * runtime::kBandwidth100Mbps;
  ncfg.down_bw = 10 * runtime::kBandwidth100Mbps;
  const NodeId id = cluster.net.add_node(ncfg);
  ClientConfig ccfg;
  ccfg.self = id;
  ccfg.targets = {target};
  ccfg.all_consensus = cluster.ids;
  ccfg.resubmit_timeout = resubmit;
  ccfg.tx_per_second = tps;
  ccfg.stop_at = seconds(2);
  ccfg.seed = 99;
  cluster.clients.push_back(
      std::make_unique<ClientActor>(cluster.net, ccfg, cluster.metrics));
  cluster.net.attach(id, cluster.clients.back().get());
  return cluster.clients.back().get();
}

TEST(Censorship, DroppedTransactionsCommitViaResubmission) {
  CensorCluster cluster;
  // Node 3 censors: every client request addressed to it is dropped.
  const NodeId censor = cluster.ids[3];
  cluster.net.set_drop_filter(
      [censor](NodeId, NodeId to, const runtime::Message& msg) {
        return to == censor &&
               std::string(msg.name()) == "ClientRequest";
      });

  ClientActor* client = add_resubmitting_client(
      cluster, censor, 200, milliseconds(600));
  cluster.net.start();
  cluster.run_until(seconds(6));

  // Every transaction eventually committed through another node.
  EXPECT_GT(client->resubmissions(), 0u);
  EXPECT_EQ(cluster.metrics.latencies().count(), client->submitted());
  EXPECT_TRUE(cluster.ledger.consistent());
}

TEST(Censorship, NoResubmissionsWhenTargetHonest) {
  CensorCluster cluster;
  ClientActor* client = add_resubmitting_client(
      cluster, cluster.ids[0], 200, milliseconds(600));
  cluster.net.start();
  cluster.run_until(seconds(4));
  EXPECT_EQ(client->resubmissions(), 0u);
  EXPECT_EQ(cluster.metrics.latencies().count(), client->submitted());
}

}  // namespace
}  // namespace predis::consensus::predis
