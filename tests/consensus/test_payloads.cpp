// Unit tests for the consensus payload types.
#include "consensus/payloads.hpp"

#include <gtest/gtest.h>

namespace predis::consensus {
namespace {

std::vector<Transaction> txs(std::size_t n) {
  std::vector<Transaction> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i].client = 4;
    out[i].seq = i;
  }
  return out;
}

TEST(Payloads, TxBatchDigestBindsContentAndOrder) {
  auto a = txs(5);
  const TxBatchPayload p1(a);
  const TxBatchPayload p2(a);
  EXPECT_EQ(p1.digest(), p2.digest());

  std::swap(a[0], a[1]);
  const TxBatchPayload reordered(a);
  EXPECT_NE(p1.digest(), reordered.digest());

  a[0].seq = 999;
  const TxBatchPayload mutated(a);
  EXPECT_NE(reordered.digest(), mutated.digest());
}

TEST(Payloads, TxBatchWireSizeScalesWithPayload) {
  const TxBatchPayload small(txs(10));
  const TxBatchPayload large(txs(800));
  EXPECT_GT(large.wire_size(), 79 * small.wire_size() / 10);
  // 800 x 512-byte transactions dominate the wire size.
  EXPECT_GT(large.wire_size(), 800u * 512u);
}

TEST(Payloads, EmptyBatchHasZeroDigest) {
  const TxBatchPayload empty{{}};
  EXPECT_EQ(empty.digest(), kZeroHash);
  EXPECT_LT(empty.wire_size(), 64u);
}

TEST(Payloads, EmptyAndNoopAreDistinct) {
  const EmptyPayload empty;
  const NoopPayload noop;
  EXPECT_NE(empty.digest(), noop.digest());
  EXPECT_STRNE(empty.kind(), noop.kind());

  const PayloadPtr as_noop = std::make_shared<NoopPayload>();
  const PayloadPtr as_empty = std::make_shared<EmptyPayload>();
  EXPECT_TRUE(is_noop(as_noop));
  EXPECT_FALSE(is_noop(as_empty));
}

TEST(Payloads, PredisPayloadDigestIsBlockHash) {
  PredisBlock block;
  block.height = 7;
  block.prev_heights = {0, 0};
  block.cut_heights = {1, 2};
  block.header_hashes = {kZeroHash, kZeroHash};
  const PredisPayload payload(block);
  EXPECT_EQ(payload.digest(), block.hash());
  EXPECT_EQ(payload.wire_size(), block.wire_size());
}

TEST(Payloads, QcBytesGrowWithSigners) {
  EXPECT_LT(qc_bytes(3), qc_bytes(11));
  EXPECT_GE(qc_bytes(1), 32u + 8u + kSigBytes);
}

}  // namespace
}  // namespace predis::consensus
