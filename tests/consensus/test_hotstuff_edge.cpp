// Edge cases of the chained-HotStuff core: out-of-order proposals
// (orphans), duplicate votes, and stale messages.
#include <gtest/gtest.h>

#include "cluster.hpp"
#include "consensus/hotstuff/hotstuff_node.hpp"

namespace predis::consensus::hotstuff {
namespace {

using testing::TestCluster;

struct EdgeCluster : TestCluster {
  EdgeCluster() : TestCluster(4, 1) {
    HotStuffNodeConfig ncfg;
    ncfg.batch_size = 50;
    for (std::size_t i = 0; i < 4; ++i) {
      nodes.push_back(
          std::make_unique<HotStuffNode>(context(i), ncfg, ledger));
      net.attach(ids[i], nodes.back().get());
    }
  }
  std::vector<std::unique_ptr<HotStuffNode>> nodes;
};

TEST(HotStuffEdge, ReorderedProposalsStillCommit) {
  EdgeCluster cluster;
  // Give one link a large jitter so proposals from rotating leaders
  // arrive out of order at node 3 (exercises the orphan buffer).
  Rng rng(5);
  cluster.net.set_extra_delay([&rng, &cluster](NodeId from, NodeId to) {
    if (to == cluster.ids[3] && from != cluster.ids[3]) {
      return static_cast<SimTime>(rng.next_below(30)) * milliseconds(1);
    }
    return SimTime{0};
  });
  cluster.add_client(cluster.ids, 400, seconds(3));
  cluster.net.start();
  cluster.run_until(seconds(4));

  EXPECT_GT(cluster.metrics.committed_txs(), 800u);
  EXPECT_TRUE(cluster.ledger.consistent());
  // Node 3 still executes the same chain despite the jitter.
  EXPECT_GT(cluster.nodes[3]->core().committed_round(), 10u);
}

TEST(HotStuffEdge, DuplicatedMessagesAreHarmless) {
  EdgeCluster cluster;
  // Deliver every consensus message twice by re-sending from a tap.
  // The network has no duplication hook, so emulate with a drop-filter
  // that never drops but a second identical send via extra delay is not
  // possible; instead run with heavy load and rely on duplicate votes
  // from the vote-to-two-leaders rule, then assert exact-once commits.
  auto* client = cluster.add_client(cluster.ids, 500, seconds(2));
  cluster.net.start();
  cluster.run_until(seconds(3));
  EXPECT_EQ(cluster.metrics.committed_txs(), client->submitted());
  EXPECT_EQ(cluster.metrics.latencies().count(), client->submitted());
  EXPECT_TRUE(cluster.ledger.consistent());
}

TEST(HotStuffEdge, LossySingleLinkDegradesButStaysSafe) {
  EdgeCluster cluster;
  int counter = 0;
  cluster.net.set_drop_filter(
      [&counter, &cluster](NodeId from, NodeId to, const runtime::Message&) {
        // Drop every 4th message on the 0 -> 2 link.
        return from == cluster.ids[0] && to == cluster.ids[2] &&
               ++counter % 4 == 0;
      });
  cluster.add_client(cluster.ids, 400, seconds(3));
  cluster.net.start();
  cluster.run_until(seconds(4));
  EXPECT_GT(cluster.metrics.committed_txs(), 400u);
  EXPECT_TRUE(cluster.ledger.consistent());
}

}  // namespace
}  // namespace predis::consensus::hotstuff
