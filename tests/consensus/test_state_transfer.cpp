// PBFT checkpointing and state transfer: a replica that was offline for
// many slots catches back up by adopting a quorum-certified snapshot
// instead of replaying every missed block.
#include <gtest/gtest.h>

#include "cluster.hpp"
#include "consensus/pbft/pbft_node.hpp"
#include "consensus/predis/predis_nodes.hpp"

namespace predis::consensus {
namespace {

using testing::TestCluster;

TEST(StateTransfer, CheckpointsBecomeStableDuringNormalOperation) {
  TestCluster cluster(4, 1);
  pbft::PbftNodeConfig ncfg;
  ncfg.batch_size = 50;
  std::vector<std::unique_ptr<pbft::PbftNode>> nodes;
  for (std::size_t i = 0; i < 4; ++i) {
    nodes.push_back(
        std::make_unique<pbft::PbftNode>(cluster.context(i), ncfg,
                                         cluster.ledger));
    nodes.back()->core().set_checkpoint_interval(8);
    cluster.net.attach(cluster.ids[i], nodes.back().get());
  }
  cluster.add_client(cluster.ids, 800, seconds(2));
  cluster.net.start();
  cluster.run_until(seconds(3));

  for (auto& node : nodes) {
    EXPECT_GT(node->core().stable_checkpoint(), 0u);
    EXPECT_LE(node->core().stable_checkpoint(),
              node->core().last_executed());
  }
  EXPECT_TRUE(cluster.ledger.consistent());
}

TEST(StateTransfer, RevivedPredisReplicaCatchesUpViaSnapshot) {
  TestCluster cluster(4, 1);
  const auto keys = cluster.producer_keys();
  std::vector<std::unique_ptr<predis::PredisPbftNode>> nodes;
  for (std::size_t i = 0; i < 4; ++i) {
    predis::PredisConfig pcfg;
    pcfg.bundle_size = 20;
    pcfg.bundle_interval = milliseconds(20);
    nodes.push_back(std::make_unique<predis::PredisPbftNode>(
        cluster.context(i), pcfg, keys, KeyPair::from_seed(cluster.ids[i]),
        cluster.ledger));
    nodes.back()->core().set_checkpoint_interval(8);
    cluster.net.attach(cluster.ids[i], nodes.back().get());
  }
  for (std::size_t i = 0; i < 4; ++i) {
    cluster.add_client({cluster.ids[i]}, 300, seconds(8), 70 + i);
  }
  cluster.net.start();

  // Node 3 goes dark for two simulated seconds.
  cluster.run_until(seconds(1));
  cluster.net.set_node_down(cluster.ids[3], true);
  cluster.run_until(seconds(3));
  cluster.net.set_node_down(cluster.ids[3], false);

  cluster.run_until(seconds(9));

  // The revived node adopted a snapshot and is close to the others.
  EXPECT_GE(nodes[3]->core().state_transfers(), 1u);
  const SeqNum healthy = nodes[0]->core().last_executed();
  EXPECT_GT(healthy, 20u);
  EXPECT_GE(nodes[3]->core().last_executed() + 20, healthy);
  EXPECT_TRUE(cluster.ledger.consistent());
}

TEST(StateTransfer, SnapshotFromSingleNodeRequiresCertificate) {
  // A snapshot whose (seq, digest) lacks a quorum certificate must be
  // ignored. Drive the core directly with a forged snapshot message.
  TestCluster cluster(4, 1);
  pbft::PbftNodeConfig ncfg;
  std::vector<std::unique_ptr<pbft::PbftNode>> nodes;
  for (std::size_t i = 0; i < 4; ++i) {
    nodes.push_back(std::make_unique<pbft::PbftNode>(cluster.context(i),
                                                     ncfg, cluster.ledger));
    cluster.net.attach(cluster.ids[i], nodes.back().get());
  }
  cluster.net.start();

  auto forged = std::make_shared<pbft::StateSnapshotMsg>();
  forged->seq = 100;
  forged->digest = Sha256::hash(as_bytes(std::string("poison")));
  cluster.net.send(cluster.ids[1], cluster.ids[0], forged);
  cluster.run_until(milliseconds(200));

  EXPECT_EQ(nodes[0]->core().last_executed(), 0u);
  EXPECT_EQ(nodes[0]->core().state_transfers(), 0u);
}

}  // namespace
}  // namespace predis::consensus
