// Sim-as-oracle: the deterministic simulator defines correct behaviour,
// and any other Runtime backend must reproduce it exactly when run in
// logical-clock mode. These tests drive the same scenario binary-level
// configuration through SimRuntime and through ThreadRuntime(kLogical)
// and require byte-identical delivery traces, commit digests and
// metrics — the contract documented in docs/runtime.md.
#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "multizone/experiments.hpp"
#include "runtime/environments.hpp"
#include "runtime/thread_runtime.hpp"
#include "runtime/trace.hpp"

namespace predis {
namespace {

core::ClusterConfig small_cluster(runtime::TraceHasher* trace,
                                  runtime::Runtime* backend) {
  core::ClusterConfig cfg;
  cfg.protocol = core::Protocol::kPredisPbft;
  cfg.wan = false;
  cfg.offered_load_tps = 3000.0;
  cfg.n_clients = 4;
  cfg.duration = seconds(3);
  cfg.warmup = seconds(1);
  cfg.seed = 7;
  cfg.ctx.trace = trace;
  cfg.ctx.backend = backend;
  return cfg;
}

TEST(BackendEquivalence, ClusterRunIsByteIdenticalOnLogicalThreadRuntime) {
  runtime::TraceHasher sim_trace;
  const core::ClusterResult on_sim =
      core::run_cluster(small_cluster(&sim_trace, nullptr));

  runtime::ThreadRuntimeConfig tcfg;
  tcfg.clock = runtime::ClockMode::kLogical;
  tcfg.latency = runtime::lan_latency();
  runtime::ThreadRuntime threads(tcfg);
  runtime::TraceHasher thread_trace;
  const core::ClusterResult on_threads =
      core::run_cluster(small_cluster(&thread_trace, &threads));

  // The trace digest folds (time, from, to, size, name) of every
  // delivery — equality means the entire message schedule matched.
  EXPECT_EQ(sim_trace.digest(), thread_trace.digest());
  EXPECT_EQ(sim_trace.events(), thread_trace.events());
  // Commit digest folds every node ledger's length and head hash.
  EXPECT_EQ(on_sim.commit_digest, on_threads.commit_digest);
  EXPECT_EQ(on_sim.committed_txs, on_threads.committed_txs);
  EXPECT_EQ(on_sim.commit_events, on_threads.commit_events);
  EXPECT_DOUBLE_EQ(on_sim.throughput_tps, on_threads.throughput_tps);
  EXPECT_DOUBLE_EQ(on_sim.p99_latency_ms, on_threads.p99_latency_ms);
  EXPECT_GT(on_sim.committed_txs, 0u);
}

multizone::ThroughputConfig small_zone(runtime::TraceHasher* trace,
                                       runtime::Runtime* backend) {
  multizone::ThroughputConfig cfg;
  cfg.n_full = 6;
  cfg.n_zones = 2;
  cfg.offered_load_tps = 2000.0;
  cfg.n_clients = 4;
  cfg.duration = seconds(3);
  cfg.warmup = seconds(1);
  cfg.seed = 9;
  cfg.ctx.trace = trace;
  cfg.ctx.backend = backend;
  return cfg;
}

TEST(BackendEquivalence, MultiZoneRunIsByteIdenticalOnLogicalThreadRuntime) {
  runtime::TraceHasher sim_trace;
  const multizone::ThroughputResult on_sim =
      multizone::run_distribution_cluster(small_zone(&sim_trace, nullptr));

  runtime::ThreadRuntimeConfig tcfg;
  tcfg.clock = runtime::ClockMode::kLogical;
  tcfg.latency = runtime::lan_latency();
  runtime::ThreadRuntime threads(tcfg);
  runtime::TraceHasher thread_trace;
  const multizone::ThroughputResult on_threads =
      multizone::run_distribution_cluster(small_zone(&thread_trace, &threads));

  EXPECT_EQ(sim_trace.digest(), thread_trace.digest());
  EXPECT_EQ(sim_trace.events(), thread_trace.events());
  EXPECT_DOUBLE_EQ(on_sim.throughput_tps, on_threads.throughput_tps);
  EXPECT_DOUBLE_EQ(on_sim.full_node_coverage, on_threads.full_node_coverage);
  EXPECT_EQ(on_sim.consensus_bytes_sent, on_threads.consensus_bytes_sent);
  EXPECT_GT(on_sim.throughput_tps, 0.0);
}

TEST(BackendEquivalence, LogicalThreadRuntimeIsSelfDeterministic) {
  // Two fresh logical ThreadRuntimes, same scenario: identical digests
  // (guards against hidden state leaking between runs).
  auto run = [] {
    runtime::ThreadRuntimeConfig tcfg;
    tcfg.clock = runtime::ClockMode::kLogical;
    tcfg.latency = runtime::lan_latency();
    runtime::ThreadRuntime threads(tcfg);
    runtime::TraceHasher trace;
    const core::ClusterResult r =
        core::run_cluster(small_cluster(&trace, &threads));
    return std::make_pair(trace.digest(), r.commit_digest);
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace predis
