// ThreadRuntime behaviour: wall-clock mode runs actors on a real
// worker pool (these tests are the TSAN surface for the backend — CI
// runs them under -fsanitize=thread), logical mode is exercised by
// test_backend_equivalence against the sim oracle.
#include "runtime/thread_runtime.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "runtime/runtime.hpp"

namespace predis::runtime {
namespace {

struct PingMsg final : Message {
  std::size_t wire_size() const override { return 64; }
  const char* name() const override { return "Ping"; }
};

/// Replies to every ping until the shared budget is exhausted; counts
/// everything it sees. Exercises cross-mailbox sends from many workers.
struct Ponger final : Actor {
  Ponger(Runtime& net, NodeId self, std::vector<NodeId> peers,
         std::atomic<std::int64_t>& budget)
      : net_(net), self_(self), peers_(std::move(peers)), budget_(budget) {}

  void on_start() override {
    for (NodeId peer : peers_) {
      if (peer != self_) net_.send(self_, peer, std::make_shared<PingMsg>());
    }
  }

  void on_message(NodeId from, const MsgPtr& msg) override {
    received.fetch_add(1, std::memory_order_relaxed);
    (void)msg;
    if (budget_.fetch_sub(1, std::memory_order_relaxed) > 0) {
      net_.send(self_, from, std::make_shared<PingMsg>());
    }
  }

  std::atomic<std::uint64_t> received{0};

 private:
  Runtime& net_;
  NodeId self_;
  std::vector<NodeId> peers_;
  std::atomic<std::int64_t>& budget_;
};

TEST(ThreadRuntimeWall, PingPongStormAcrossWorkersStaysConserved) {
  ThreadRuntimeConfig cfg;
  cfg.clock = ClockMode::kWall;
  cfg.workers = 4;
  ThreadRuntime net(cfg);

  constexpr std::size_t kNodes = 8;
  std::atomic<std::int64_t> budget{20'000};
  std::vector<NodeId> ids;
  for (std::size_t i = 0; i < kNodes; ++i) ids.push_back(net.add_node({}));
  std::vector<std::unique_ptr<Ponger>> actors;
  for (NodeId id : ids) {
    actors.push_back(std::make_unique<Ponger>(net, id, ids, budget));
    net.attach(id, actors.back().get());
  }

  net.start();
  net.run_until(milliseconds(300));

  std::uint64_t received = 0;
  std::uint64_t delivered_stats = 0;
  for (std::size_t i = 0; i < kNodes; ++i) {
    received += actors[i]->received.load();
    delivered_stats += net.stats(ids[i]).messages_received;
  }
  // Every delivery the backend recorded reached on_message exactly once.
  EXPECT_EQ(received, delivered_stats);
  // The storm actually ran hot: initial fan-out plus replies.
  EXPECT_GE(received, kNodes * (kNodes - 1));
  EXPECT_GT(net.total_bytes_sent(), 0u);
  EXPECT_EQ(net.worker_count(), 4u);
}

TEST(ThreadRuntimeWall, TimersFireOnOwnersAndCancelCleanly) {
  ThreadRuntimeConfig cfg;
  cfg.clock = ClockMode::kWall;
  cfg.workers = 2;
  ThreadRuntime net(cfg);

  struct Silent final : Actor {
    void on_message(NodeId, const MsgPtr&) override {}
  } actor;
  const NodeId id = net.add_node({});
  net.attach(id, &actor);

  std::atomic<int> fired{0};
  net.schedule(id, milliseconds(10), [&] { ++fired; });
  net.schedule_after(milliseconds(10), [&] { ++fired; });
  TimerHandle cancelled =
      net.schedule(id, milliseconds(20), [&] { fired += 100; });
  cancelled.cancel();
  EXPECT_FALSE(cancelled.scheduled());

  net.start();
  net.run_until(milliseconds(120));
  EXPECT_EQ(fired.load(), 2);
}

TEST(ThreadRuntimeWall, DownNodesDropTrafficAndRestartOnRecovery) {
  ThreadRuntimeConfig cfg;
  cfg.clock = ClockMode::kWall;
  cfg.workers = 2;
  ThreadRuntime net(cfg);

  struct Counter final : Actor {
    std::atomic<int> messages{0};
    std::atomic<int> restarts{0};
    void on_message(NodeId, const MsgPtr&) override { ++messages; }
    void on_restart() override { ++restarts; }
  } counter;
  struct Silent final : Actor {
    void on_message(NodeId, const MsgPtr&) override {}
  } sender;

  const NodeId a = net.add_node({});
  const NodeId b = net.add_node({});
  net.attach(a, &sender);
  net.attach(b, &counter);

  net.set_node_down(b, true);
  EXPECT_TRUE(net.is_down(b));
  net.start();
  net.send(a, b, std::make_shared<PingMsg>());
  net.run_until(milliseconds(30));
  EXPECT_EQ(counter.messages.load(), 0);

  net.set_node_down(b, false);
  net.send(a, b, std::make_shared<PingMsg>());
  net.run_until(milliseconds(80));
  EXPECT_EQ(counter.messages.load(), 1);
  EXPECT_EQ(counter.restarts.load(), 1);
  EXPECT_FALSE(net.is_down(b));
}

TEST(ThreadRuntimeWall, OutageKeepsQueuedTimerTasksAndDropsQueuedMessages) {
  // Regression: set_node_down(true) used to clear the node's whole
  // mailbox, destroying timer tasks that had already been moved off
  // the wheel. A node whose worker happened to be busy at outage time
  // lost its tick chain forever — fetch/packing timers never re-armed
  // after recovery. Only queued *messages* may be purged.
  ThreadRuntimeConfig cfg;
  cfg.clock = ClockMode::kWall;
  cfg.workers = 2;
  ThreadRuntime net(cfg);

  struct Blocker final : Actor {
    std::atomic<bool> entered{false};
    std::atomic<bool> release{false};
    std::atomic<int> messages{0};
    std::atomic<int> restarts{0};
    void on_message(NodeId, const MsgPtr&) override {
      ++messages;
      entered = true;
      while (!release.load()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }
    void on_restart() override { ++restarts; }
  } blocker;
  struct Silent final : Actor {
    void on_message(NodeId, const MsgPtr&) override {}
  } sender;

  const NodeId a = net.add_node({});
  const NodeId b = net.add_node({});
  net.attach(a, &sender);
  net.attach(b, &blocker);
  net.start();

  // Occupy b's mailbox so everything below queues up behind the
  // blocked handler instead of being dispatched immediately.
  net.send(a, b, std::make_shared<PingMsg>());
  while (!blocker.entered.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  std::atomic<int> ticks{0};
  net.schedule(b, milliseconds(1), [&] { ++ticks; });
  net.send(a, b, std::make_shared<PingMsg>());
  // Give the wheel time to move the now-due timer task into b's queue.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  net.set_node_down(b, true);  // must purge the message, keep the task
  net.set_node_down(b, false);
  blocker.release = true;

  net.run_until(milliseconds(200));
  EXPECT_EQ(ticks.load(), 1);
  EXPECT_EQ(blocker.messages.load(), 1);
  EXPECT_EQ(blocker.restarts.load(), 1);
}

TEST(ThreadRuntimeWall, DropFilterAppliesUnderConcurrency) {
  ThreadRuntimeConfig cfg;
  cfg.clock = ClockMode::kWall;
  cfg.workers = 2;
  ThreadRuntime net(cfg);

  struct Counter final : Actor {
    std::atomic<int> messages{0};
    void on_message(NodeId, const MsgPtr&) override { ++messages; }
  } counter;
  struct Silent final : Actor {
    void on_message(NodeId, const MsgPtr&) override {}
  } sender;
  const NodeId a = net.add_node({});
  const NodeId b = net.add_node({});
  net.attach(a, &sender);
  net.attach(b, &counter);
  net.set_drop_filter([](NodeId, NodeId, const Message&) { return true; });

  net.start();
  for (int i = 0; i < 32; ++i) net.send(a, b, std::make_shared<PingMsg>());
  net.run_until(milliseconds(30));
  EXPECT_EQ(counter.messages.load(), 0);

  net.set_drop_filter(nullptr);
  net.send(a, b, std::make_shared<PingMsg>());
  net.run_until(milliseconds(80));
  EXPECT_EQ(counter.messages.load(), 1);
}

}  // namespace
}  // namespace predis::runtime
