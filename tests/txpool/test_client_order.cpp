// Regression (predis-lint D1): ClientActor::resubmit_overdue() walks
// pending_ and the resulting batches go straight on the wire, so the
// container's iteration order is protocol-visible. pending_ used to be
// an unordered_map — with a few hundred outstanding transactions the
// bucket walk emits seqs out of order, and the emitted byte stream
// (hence the trace digest) depends on the stdlib's hash layout instead
// of the seed. pending_ is now a std::map; resubmitted batches must
// arrive in strictly ascending seq order.
#include "txpool/client.hpp"

#include <gtest/gtest.h>

#include "runtime/environments.hpp"
#include "runtime/sim_runtime.hpp"

namespace predis {
namespace {

/// Swallows everything: the censoring primary target.
struct BlackHole final : runtime::Actor {
  void on_message(NodeId, const runtime::MsgPtr&) override {}
};

/// Records the seq order of every ClientRequest batch it receives.
struct Recorder final : runtime::Actor {
  std::vector<std::vector<TxSeq>> batches;
  void on_message(NodeId, const runtime::MsgPtr& msg) override {
    const auto* m = dynamic_cast<const ClientRequestMsg*>(msg.get());
    if (m == nullptr) return;
    std::vector<TxSeq> seqs;
    seqs.reserve(m->txs.size());
    for (const auto& tx : m->txs) seqs.push_back(tx.seq);
    batches.push_back(std::move(seqs));
  }
};

TEST(ClientResubmitOrder, BatchesEmitSeqsInAscendingOrder) {
  runtime::SimRuntime backend(
      runtime::LatencyMatrix::uniform(1, milliseconds(5)));
  runtime::Runtime& net = backend.runtime();
  Metrics metrics;

  BlackHole hole;
  const NodeId hole_id = net.add_node(runtime::node_100mbps(0));
  net.attach(hole_id, &hole);
  Recorder recorder;
  const NodeId rec_id = net.add_node(runtime::node_100mbps(0));
  net.attach(rec_id, &recorder);

  ClientConfig cfg;
  cfg.self = net.add_node(runtime::node_100mbps(0));
  cfg.targets = {hole_id};               // never replies -> all overdue
  cfg.all_consensus = {hole_id, rec_id};  // rotation reaches the recorder
  cfg.tx_per_second = 2000.0;
  cfg.stop_at = milliseconds(150);
  cfg.resubmit_timeout = milliseconds(200);
  cfg.seed = 11;
  ClientActor client(net, cfg, metrics);
  net.attach(cfg.self, &client);

  net.start();
  net.run_until(milliseconds(900));

  // Enough pending transactions that an unordered walk would provably
  // interleave seqs, and at least one batch actually reached us.
  EXPECT_GT(client.resubmissions(), 100u);
  ASSERT_FALSE(recorder.batches.empty());
  std::size_t largest = 0;
  for (const auto& batch : recorder.batches) {
    largest = std::max(largest, batch.size());
    for (std::size_t i = 1; i < batch.size(); ++i) {
      ASSERT_LT(batch[i - 1], batch[i])
          << "batch seqs out of order at position " << i;
    }
  }
  EXPECT_GE(largest, 50u);
}

}  // namespace
}  // namespace predis
