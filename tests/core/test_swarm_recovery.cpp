// Recovery-focused swarm campaigns: rejoin determinism under churn,
// crashes, and partition faults, the PBFT churn-storm double-count
// regression, and the recovery metrics surfaced by run_swarm_case.
#include "core/swarm.hpp"

#include <gtest/gtest.h>

namespace predis::core {
namespace {

const Protocol kAllProtocols[] = {Protocol::kPredisPbft, Protocol::kPbft,
                                  Protocol::kHotStuff,
                                  Protocol::kPredisHotStuff,
                                  Protocol::kNarwhal};

// A recovery gauntlet: crashes, churn storms, and partition cuts in one
// seed-derived plan, with no attack overlay (attack = kNone keeps the
// baseline plan as shaped here).
SwarmCaseConfig gauntlet(Protocol protocol, std::uint64_t seed) {
  SwarmCaseConfig cfg;
  cfg.protocol = protocol;
  cfg.attack = AttackKind::kNone;
  cfg.seed = seed;
  cfg.duration = seconds(5);
  cfg.offered_load_tps = 1'000.0;
  cfg.faults.pair_partitions = cfg.faults.zone_partitions = false;
  cfg.faults.jitter = cfg.faults.drops = false;
  cfg.faults.crashes = true;
  cfg.faults.churn_storms = true;
  cfg.faults.partitions = true;
  cfg.faults.events = 3;
  cfg.faults.start = milliseconds(500);
  cfg.faults.horizon = seconds(2);
  return cfg;
}

TEST(SwarmRecovery, RejoinIsDeterministicAcrossRuns) {
  // Crash restarts, churn rejoins, and partition heals all route
  // through the recovery layer (jittered backoff, stall escalation,
  // catch-up pulls); every delay draws from the seeded Rng, so two
  // identical configs must replay byte-identically.
  for (Protocol protocol : kAllProtocols) {
    const auto a = run_swarm_case(gauntlet(protocol, 91));
    const auto b = run_swarm_case(gauntlet(protocol, 91));
    EXPECT_TRUE(a.ok) << to_string(protocol) << "\n" << a.report;
    EXPECT_GT(a.faults_injected, 0u) << to_string(protocol);
    EXPECT_GT(a.committed_txs, 0u) << to_string(protocol);
    EXPECT_EQ(a.trace_digest, b.trace_digest) << to_string(protocol);
    EXPECT_EQ(a.metrics_digest, b.metrics_digest) << to_string(protocol);
    EXPECT_EQ(a.committed_txs, b.committed_txs) << to_string(protocol);
    EXPECT_EQ(a.catch_up_batches, b.catch_up_batches) << to_string(protocol);
    EXPECT_EQ(a.gc_bytes, b.gc_bytes) << to_string(protocol);
  }
}

TEST(SwarmRecovery, DifferentSeedsDiverge) {
  // Guard against the digests being vacuous (e.g. hashing nothing).
  const auto a = run_swarm_case(gauntlet(Protocol::kPredisPbft, 91));
  const auto b = run_swarm_case(gauntlet(Protocol::kPredisPbft, 92));
  EXPECT_TRUE(a.ok) << a.report;
  EXPECT_TRUE(b.ok) << b.report;
  EXPECT_NE(a.trace_digest, b.trace_digest);
}

// Regression for the churn-storm double count: a restarted PBFT leader
// re-proposing an already-committed payload at a fresh slot must not
// inflate committed_txs past the clean run (observed 22508 vs 20000
// before the CommitLedger payload dedupe).
TEST(SwarmRecovery, ChurnNeverInflatesCommittedTxs) {
  for (Protocol protocol : {Protocol::kPbft, Protocol::kPredisPbft}) {
    SwarmCaseConfig clean = gauntlet(protocol, 77);
    clean.faults.crashes = clean.faults.churn_storms = false;
    clean.faults.partitions = false;
    clean.faults.events = 0;
    SwarmCaseConfig churn = gauntlet(protocol, 77);
    churn.faults.crashes = churn.faults.partitions = false;
    churn.faults.events = 2;
    const auto c = run_swarm_case(clean);
    const auto s = run_swarm_case(churn);
    EXPECT_TRUE(c.ok) << to_string(protocol) << "\n" << c.report;
    EXPECT_TRUE(s.ok) << to_string(protocol) << "\n" << s.report;
    EXPECT_GT(s.faults_injected, 0u) << to_string(protocol);
    // Churn may slow commits; it must never mint extra ones.
    EXPECT_LE(s.committed_txs, c.committed_txs) << to_string(protocol);
  }
}

TEST(SwarmRecovery, CrashCampaignPopulatesRecoveryMetrics) {
  SwarmCaseConfig cfg = gauntlet(Protocol::kPredisPbft, 55);
  cfg.faults.churn_storms = false;
  cfg.faults.partitions = false;
  const auto r = run_swarm_case(cfg);
  EXPECT_TRUE(r.ok) << r.report;
  EXPECT_GT(r.faults_injected, 0u);
  // Checkpoint GC ran on the consensus cores.
  EXPECT_GT(r.gc_items, 0u);
  EXPECT_GT(r.gc_bytes, 0u);
  // Time-to-catch-up is measured from the heal instant and bounded by
  // the remaining run time.
  EXPECT_GE(r.catch_up_ms, 0.0);
  EXPECT_LT(r.catch_up_ms, to_milliseconds(cfg.duration));
}

TEST(SwarmRecovery, PartitionHealRecoversThroughput) {
  SwarmCaseConfig cfg = gauntlet(Protocol::kPbft, 63);
  cfg.faults.crashes = false;
  cfg.faults.churn_storms = false;
  cfg.faults.events = 2;
  const auto r = run_swarm_case(cfg);
  EXPECT_TRUE(r.ok) << r.report;
  EXPECT_GT(r.faults_injected, 0u);
  EXPECT_GT(r.committed_txs, 0u);
  // The healed tail keeps committing (post-heal throughput measured).
  EXPECT_GT(r.post_heal_tps, 0.0);
}

}  // namespace
}  // namespace predis::core
