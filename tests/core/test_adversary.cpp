// Adversary layer: AttackKind plumbing, configure_attack plan shaping,
// and — per hostile-injector finding — a regression that drives the
// HostileInjector's full arsenal into a live cluster of each protocol
// and asserts the handlers hold the line: no crash, no state poisoning
// (views/rounds stay sane), and the honest majority keeps committing.
//
// Before the boundary checks these pin down, individual hostile
// messages were fatal or worse: a bundle signed at height 2^40 made the
// Predis fetch path iterate the whole claimed gap, a forged HotStuff QC
// with zero signers poisoned high_qc AND burned the replica's
// last_voted_round, a PBFT NewView without a V-set certificate dragged
// the group into an absurd view, and a Narwhal batch response could
// substitute transactions under a certified reference.
#include "core/adversary.hpp"

#include <gtest/gtest.h>

#include "../consensus/cluster.hpp"
#include "consensus/hotstuff/hotstuff_node.hpp"
#include "consensus/narwhal/shared_mempool.hpp"
#include "consensus/pbft/pbft_node.hpp"
#include "consensus/predis/predis_nodes.hpp"

namespace predis::core {
namespace {

using consensus::testing::TestCluster;

TEST(AttackKind, ToStringCoversEveryKind) {
  std::set<std::string> seen;
  for (std::size_t i = 0; i < kAttackKindCount; ++i) {
    const char* name = to_string(static_cast<AttackKind>(i));
    EXPECT_STRNE(name, "?") << "attack " << i;
    EXPECT_TRUE(seen.insert(name).second) << "duplicate name " << name;
  }
}

TEST(AttackKind, FlagParserRoundTripsAndRejectsJunk) {
  for (std::size_t i = 0; i < kAttackKindCount; ++i) {
    const auto kind = static_cast<AttackKind>(i);
    if (kind == AttackKind::kNone) continue;
    const auto parsed = attack_from_flag(to_string(kind));
    ASSERT_TRUE(parsed.has_value()) << to_string(kind);
    EXPECT_EQ(*parsed, kind);
  }
  EXPECT_EQ(attack_from_flag("churn"), AttackKind::kChurnStorm);
  EXPECT_FALSE(attack_from_flag("definitely-not-an-attack").has_value());
  EXPECT_FALSE(attack_from_flag("").has_value());
}

TEST(ConfigureAttack, DisablesBaselineKindsAndPinsLeader) {
  sim::FaultPlanConfig plan;
  configure_attack(plan, AttackKind::kThrottle, 5);
  EXPECT_FALSE(plan.crashes);
  EXPECT_FALSE(plan.pair_partitions);
  EXPECT_FALSE(plan.zone_partitions);
  EXPECT_FALSE(plan.jitter);
  EXPECT_FALSE(plan.drops);
  EXPECT_FALSE(plan.equivocation);
  EXPECT_TRUE(plan.throttle);
  EXPECT_FALSE(plan.withhold);
  EXPECT_EQ(plan.events, 5u);
  EXPECT_EQ(plan.pin_node, 0u);
}

TEST(ConfigureAttack, ChurnKeepsRandomMembership) {
  sim::FaultPlanConfig plan;
  configure_attack(plan, AttackKind::kChurnStorm, 3);
  EXPECT_TRUE(plan.churn_storms);
  // A storm is not leader-specific: membership stays seed-random.
  EXPECT_EQ(plan.pin_node, static_cast<std::size_t>(-1));
}

TEST(ConfigureAttack, NoneYieldsEmptyPlan) {
  sim::FaultPlanConfig plan;
  configure_attack(plan, AttackKind::kNone, 4);
  runtime::SimRuntime backend(
      runtime::LatencyMatrix::uniform(1, milliseconds(10)));
  runtime::Runtime& net = backend.runtime();
  std::vector<NodeId> ids;
  for (int i = 0; i < 4; ++i) {
    ids.push_back(net.add_node(runtime::NodeConfig{}));
  }
  sim::FaultScheduler fs(net, ids, plan);
  EXPECT_TRUE(fs.plan().empty());
}

// --- Live-cluster regressions, one per protocol family -----------------

/// Fire repeated hostile bursts from node 0 while honest traffic flows.
/// Returns the injector's message count.
template <typename Cluster>
std::size_t bombard(Cluster& cluster, Protocol protocol) {
  auto injector = std::make_shared<HostileInjector>(
      cluster.net, protocol, cluster.ids);
  for (int burst = 0; burst < 10; ++burst) {
    cluster.schedule_at(milliseconds(300 * (burst + 1)),
                            [injector, &cluster] {
                              injector->burst(cluster.ids[0]);
                            });
  }
  cluster.add_client(cluster.ids, 400, seconds(4));
  cluster.net.start();
  cluster.run_until(seconds(5));
  return injector->injected();
}

TEST(HostileInjector, PbftClusterSurvivesFullArsenal) {
  TestCluster cluster(4, 1);
  std::vector<std::unique_ptr<consensus::pbft::PbftNode>> nodes;
  consensus::pbft::PbftNodeConfig ncfg;
  ncfg.batch_size = 50;
  for (std::size_t i = 0; i < 4; ++i) {
    nodes.push_back(std::make_unique<consensus::pbft::PbftNode>(
        cluster.context(i), ncfg, cluster.ledger));
    cluster.net.attach(cluster.ids[i], nodes.back().get());
  }
  const std::size_t injected = bombard(cluster, Protocol::kPbft);

  EXPECT_GT(injected, 0u);
  EXPECT_TRUE(cluster.ledger.consistent());
  EXPECT_GT(cluster.metrics.committed_txs(), 400u);
  for (const auto& node : nodes) {
    // Forged NewViews (proof = 0) and absurd-seq votes must not move
    // the view anywhere near the attacker's 2^40 values, and the
    // watermark keeps execution contiguous.
    EXPECT_LT(node->core().view(), 1000u);
    EXPECT_LT(node->core().last_executed(), 1u << 20);
  }
}

TEST(HostileInjector, HotStuffClusterIgnoresForgedQuorumCerts) {
  TestCluster cluster(4, 1);
  std::vector<std::unique_ptr<consensus::hotstuff::HotStuffNode>> nodes;
  consensus::hotstuff::HotStuffNodeConfig ncfg;
  ncfg.batch_size = 50;
  for (std::size_t i = 0; i < 4; ++i) {
    nodes.push_back(std::make_unique<consensus::hotstuff::HotStuffNode>(
        cluster.context(i), ncfg, cluster.ledger));
    cluster.net.attach(cluster.ids[i], nodes.back().get());
  }
  const std::size_t injected = bombard(cluster, Protocol::kHotStuff);

  EXPECT_GT(injected, 0u);
  EXPECT_TRUE(cluster.ledger.consistent());
  EXPECT_GT(cluster.metrics.committed_txs(), 400u);
  for (const auto& node : nodes) {
    // A zero-signer QC at round 2^40 must not become high_qc (it would
    // drag cur_round there and destroy liveness for good).
    EXPECT_LT(node->core().current_round(), 10'000u);
    EXPECT_GT(node->core().committed_round(), 0u);
  }
}

TEST(HostileInjector, NarwhalClusterRejectsImpersonationAndForgedCerts) {
  TestCluster cluster(4, 1);
  std::vector<std::unique_ptr<consensus::narwhal::SharedMempoolNode>> nodes;
  consensus::narwhal::SharedMempoolConfig ncfg;
  ncfg.microblock_size = 50;
  ncfg.ack_quorum = 3;
  for (std::size_t i = 0; i < 4; ++i) {
    nodes.push_back(
        std::make_unique<consensus::narwhal::SharedMempoolNode>(
            cluster.context(i), ncfg, cluster.ledger));
    cluster.net.attach(cluster.ids[i], nodes.back().get());
  }
  const std::size_t injected = bombard(cluster, Protocol::kNarwhal);

  EXPECT_GT(injected, 0u);
  // Impersonated microblocks, out-of-range producers, zero-signer
  // certificates and substituted batch bodies must all bounce; honest
  // microblocks keep certifying and committing on the same ledger.
  EXPECT_TRUE(cluster.ledger.consistent());
  EXPECT_GT(cluster.metrics.committed_txs(), 400u);
  for (const auto& node : nodes) {
    EXPECT_LT(node->core().current_round(), 10'000u);
  }
}

TEST(HostileInjector, PredisClusterCapsAbsurdHeightFetchSpans) {
  TestCluster cluster(4, 1);
  std::vector<std::unique_ptr<consensus::predis::PredisPbftNode>> nodes;
  consensus::predis::PredisConfig pcfg;
  pcfg.bundle_size = 50;
  for (std::size_t i = 0; i < 4; ++i) {
    nodes.push_back(std::make_unique<consensus::predis::PredisPbftNode>(
        cluster.context(i), pcfg, cluster.producer_keys(),
        KeyPair::from_seed(cluster.ids[i]), cluster.ledger));
    cluster.net.attach(cluster.ids[i], nodes.back().get());
  }
  // The arsenal includes a *validly signed* bundle at height ~2^40:
  // without the kMaxFetchSpan cap the missing-parent fetch loop walks
  // the entire claimed gap and this test never finishes.
  const std::size_t injected = bombard(cluster, Protocol::kPredisPbft);

  EXPECT_GT(injected, 0u);
  EXPECT_TRUE(cluster.ledger.consistent());
  EXPECT_GT(cluster.metrics.committed_txs(), 400u);
  for (const auto& node : nodes) {
    EXPECT_LT(node->core().view(), 1000u);
  }
}

TEST(HostileInjector, BurstsAreDeterministic) {
  // Two identical clusters, same burst schedule: identical counts (the
  // injector derives every junk value from its own nonce sequence).
  auto run = [] {
    TestCluster cluster(4, 1);
    std::vector<std::unique_ptr<consensus::pbft::PbftNode>> nodes;
    consensus::pbft::PbftNodeConfig ncfg;
    for (std::size_t i = 0; i < 4; ++i) {
      nodes.push_back(std::make_unique<consensus::pbft::PbftNode>(
          cluster.context(i), ncfg, cluster.ledger));
      cluster.net.attach(cluster.ids[i], nodes.back().get());
    }
    HostileInjector injector(cluster.net, Protocol::kPbft, cluster.ids);
    std::vector<std::size_t> per_burst;
    for (int b = 0; b < 5; ++b) {
      per_burst.push_back(injector.burst(cluster.ids[0]));
    }
    cluster.net.start();
    cluster.run_until(seconds(1));
    return per_burst;
  };
  EXPECT_EQ(run(), run());
}

TEST(HostileGossipBurst, CountsAndTargetsAreDeterministic) {
  auto run = [] {
    runtime::SimRuntime backend(
        runtime::LatencyMatrix::uniform(1, milliseconds(5)));
    runtime::Runtime& net = backend.runtime();
    struct Sink final : runtime::Actor {
      std::size_t received = 0;
      void on_message(NodeId, const runtime::MsgPtr&) override { ++received; }
    };
    std::vector<NodeId> ids;
    std::vector<std::unique_ptr<Sink>> sinks;
    for (int i = 0; i < 5; ++i) {
      ids.push_back(net.add_node(runtime::NodeConfig{}));
      sinks.push_back(std::make_unique<Sink>());
      net.attach(ids.back(), sinks.back().get());
    }
    const std::vector<NodeId> peers(ids.begin() + 1, ids.end());
    std::size_t sent = 0;
    for (std::uint64_t nonce = 0; nonce < 3; ++nonce) {
      sent += hostile_gossip_burst(net, ids[0], peers, 4, nonce);
    }
    net.start();
    net.run_until(seconds(1));
    std::vector<std::size_t> received;
    for (const auto& sink : sinks) received.push_back(sink->received);
    return std::make_pair(sent, received);
  };
  const auto a = run();
  const auto b = run();
  EXPECT_GT(a.first, 0u);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace predis::core
