// Seed determinism regression (satellite of the swarm harness): the
// same SwarmCaseConfig run twice must be byte-identical — same trace
// digest, same delivery count, same committed slots and throughput.
// Any drift here means a hidden source of nondeterminism crept into the
// simulator, the engines, or the fault scheduler, and seeds stop being
// one-line repros.
#include "core/swarm.hpp"

#include <gtest/gtest.h>

namespace predis::core {
namespace {

SwarmCaseConfig short_case(Protocol protocol, std::uint64_t seed) {
  SwarmCaseConfig cfg;
  cfg.protocol = protocol;
  cfg.seed = seed;
  cfg.duration = seconds(2);
  cfg.offered_load_tps = 1'000.0;
  cfg.faults.events = 4;
  // Compress the fault window into the short run (defaults assume an
  // 8 s run); without injected faults every seed behaves identically
  // because the client workload is fixed-rate.
  cfg.faults.start = milliseconds(300);
  cfg.faults.horizon = seconds(1);
  return cfg;
}

void expect_identical(const SwarmCaseResult& a, const SwarmCaseResult& b) {
  EXPECT_EQ(a.trace_digest, b.trace_digest);
  EXPECT_EQ(a.metrics_digest, b.metrics_digest);
  EXPECT_EQ(a.trace_events, b.trace_events);
  EXPECT_EQ(a.committed_slots, b.committed_slots);
  EXPECT_EQ(a.commits_checked, b.commits_checked);
  EXPECT_EQ(a.faults_injected, b.faults_injected);
  EXPECT_EQ(a.fault_plan, b.fault_plan);
  EXPECT_DOUBLE_EQ(a.throughput_tps, b.throughput_tps);
  // Degradation metrics are part of the digest fold; they must replay
  // too, or BENCH_adversarial.json stops being reproducible.
  EXPECT_EQ(a.committed_txs, b.committed_txs);
  EXPECT_DOUBLE_EQ(a.production_p99_ms, b.production_p99_ms);
  EXPECT_EQ(a.hostile_msgs, b.hostile_msgs);
}

TEST(SeedDeterminism, PredisSameSeedIsByteIdentical) {
  const SwarmCaseConfig cfg = short_case(Protocol::kPredisPbft, 5);
  const SwarmCaseResult a = run_swarm_case(cfg);
  const SwarmCaseResult b = run_swarm_case(cfg);
  EXPECT_TRUE(a.ok) << a.report;
  EXPECT_GT(a.trace_events, 0u);
  EXPECT_GT(a.committed_slots, 0u);
  expect_identical(a, b);
}

TEST(SeedDeterminism, PbftSameSeedIsByteIdentical) {
  const SwarmCaseConfig cfg = short_case(Protocol::kPbft, 9);
  const SwarmCaseResult a = run_swarm_case(cfg);
  const SwarmCaseResult b = run_swarm_case(cfg);
  EXPECT_TRUE(a.ok) << a.report;
  EXPECT_GT(a.trace_events, 0u);
  expect_identical(a, b);
}

// --- Adversarial campaigns replay byte-for-byte ------------------------

SwarmCaseConfig attack_case(Protocol protocol, AttackKind attack,
                            std::uint64_t seed) {
  SwarmCaseConfig cfg = short_case(protocol, seed);
  cfg.attack = attack;
  return cfg;
}

TEST(SeedDeterminism, GarbageCampaignIsByteIdentical) {
  const SwarmCaseConfig cfg =
      attack_case(Protocol::kPbft, AttackKind::kGarbage, 21);
  const SwarmCaseResult a = run_swarm_case(cfg);
  const SwarmCaseResult b = run_swarm_case(cfg);
  EXPECT_TRUE(a.ok) << a.report;
  EXPECT_GT(a.hostile_msgs, 0u);
  expect_identical(a, b);
}

TEST(SeedDeterminism, ThrottleCampaignIsByteIdentical) {
  const SwarmCaseConfig cfg =
      attack_case(Protocol::kHotStuff, AttackKind::kThrottle, 22);
  const SwarmCaseResult a = run_swarm_case(cfg);
  const SwarmCaseResult b = run_swarm_case(cfg);
  EXPECT_TRUE(a.ok) << a.report;
  EXPECT_GT(a.faults_injected, 0u);
  expect_identical(a, b);
}

TEST(SeedDeterminism, ChurnCampaignIsByteIdentical) {
  const SwarmCaseConfig cfg =
      attack_case(Protocol::kNarwhal, AttackKind::kChurnStorm, 23);
  const SwarmCaseResult a = run_swarm_case(cfg);
  const SwarmCaseResult b = run_swarm_case(cfg);
  EXPECT_TRUE(a.ok) << a.report;
  expect_identical(a, b);
}

TEST(SeedDeterminism, WithholdCampaignIsByteIdentical) {
  const SwarmCaseConfig cfg =
      attack_case(Protocol::kPredisPbft, AttackKind::kWithhold, 24);
  const SwarmCaseResult a = run_swarm_case(cfg);
  const SwarmCaseResult b = run_swarm_case(cfg);
  EXPECT_TRUE(a.ok) << a.report;
  expect_identical(a, b);
}

TEST(SeedDeterminism, DifferentSeedsDiverge) {
  const SwarmCaseResult a = run_swarm_case(short_case(Protocol::kPredisPbft, 5));
  const SwarmCaseResult b = run_swarm_case(short_case(Protocol::kPredisPbft, 6));
  EXPECT_NE(a.trace_digest, b.trace_digest);
  EXPECT_NE(a.fault_plan, b.fault_plan);
}

}  // namespace
}  // namespace predis::core
