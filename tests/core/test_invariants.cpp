// InvariantChecker: each invariant trips on the exact violation shape
// it documents and stays quiet on conforming histories.
#include "core/invariants.hpp"

#include <gtest/gtest.h>

#include "bundle/mempool.hpp"

namespace predis::core {
namespace {

Hash32 digest(std::uint8_t tag) {
  Hash32 h = kZeroHash;
  h[0] = tag;
  return h;
}

InvariantConfig quiet_config() {
  InvariantConfig cfg;
  cfg.check_reconstruction = false;  // no mempool in these tests
  return cfg;
}

TEST(Invariants, AgreementHoldsOnIdenticalLogs) {
  InvariantChecker inv(quiet_config());
  for (std::size_t node = 0; node < 4; ++node) {
    for (std::uint64_t slot = 1; slot <= 5; ++slot) {
      inv.on_commit(node, slot, digest(static_cast<std::uint8_t>(slot)),
                    seconds(1));
    }
  }
  inv.finalize();
  EXPECT_TRUE(inv.ok()) << inv.report();
  EXPECT_EQ(inv.commits_checked(), 20u);
}

TEST(Invariants, AgreementTripsOnConflictingDigests) {
  InvariantChecker inv(quiet_config());
  inv.on_commit(0, 7, digest(1), seconds(1));
  inv.on_commit(1, 7, digest(2), seconds(1));
  ASSERT_FALSE(inv.ok());
  EXPECT_EQ(inv.violations()[0].invariant, "agreement");
  EXPECT_EQ(inv.violations()[0].slot, 7u);
}

TEST(Invariants, AgreementTripsOnSelfRecommitWithNewDigest) {
  InvariantChecker inv(quiet_config());
  inv.on_commit(2, 3, digest(1), seconds(1));
  inv.on_commit(2, 3, digest(9), seconds(2));
  ASSERT_FALSE(inv.ok());
  EXPECT_EQ(inv.violations()[0].invariant, "agreement");
}

TEST(Invariants, ByzantineNodesAreExcused) {
  InvariantChecker inv(quiet_config());
  inv.set_byzantine(1, true);
  inv.on_commit(0, 7, digest(1), seconds(1));
  inv.on_commit(1, 7, digest(2), seconds(1));  // byzantine: ignored
  inv.finalize();
  EXPECT_TRUE(inv.ok()) << inv.report();
}

TEST(Invariants, PrefixSweepPinsDivergedPair) {
  InvariantChecker inv(quiet_config());
  // Slot 4 agrees; slot 5 diverges between nodes 0 and 2. The
  // streaming check already flags slot 5 once; finalize() attributes
  // the pair.
  inv.on_commit(0, 4, digest(4), seconds(1));
  inv.on_commit(2, 4, digest(4), seconds(1));
  inv.on_commit(0, 5, digest(5), seconds(1));
  inv.on_commit(2, 5, digest(6), seconds(1));
  inv.finalize();
  ASSERT_FALSE(inv.ok());
  bool prefix_found = false;
  for (const Violation& v : inv.violations()) {
    if (v.invariant == std::string("prefix")) {
      prefix_found = true;
      EXPECT_EQ(v.slot, 5u);
    }
  }
  EXPECT_TRUE(prefix_found);
}

// --- Predis block invariants -------------------------------------------

Mempool make_pool() {
  std::vector<PublicKey> keys;
  for (NodeId id = 0; id < 4; ++id) {
    keys.push_back(KeyPair::from_seed(id).public_key());
  }
  return Mempool(4, std::move(keys));
}

PredisBlock make_block(std::uint64_t height,
                       std::vector<BundleHeight> prev,
                       std::vector<BundleHeight> cut) {
  PredisBlock b;
  b.height = height;
  b.view = height;
  b.leader = 0;
  b.prev_heights = std::move(prev);
  b.cut_heights = std::move(cut);
  return b;
}

TEST(Invariants, CutMonotoneTripsOnRegression) {
  InvariantConfig cfg = quiet_config();
  InvariantChecker inv(cfg);
  Mempool pool = make_pool();
  inv.on_predis_executed(0, make_block(1, {0, 0, 0, 0}, {5, 5, 5, 5}),
                         pool, seconds(1));
  EXPECT_TRUE(inv.ok()) << inv.report();
  // Cut for chain 2 regresses below the previously executed cut.
  inv.on_predis_executed(0, make_block(2, {5, 5, 5, 5}, {6, 6, 4, 6}),
                         pool, seconds(2));
  ASSERT_FALSE(inv.ok());
  EXPECT_EQ(inv.violations()[0].invariant, "cut-monotone");
}

TEST(Invariants, BanListTripsOnPostBanProposal) {
  InvariantConfig cfg = quiet_config();
  cfg.ban_grace = seconds(1);
  InvariantChecker inv(cfg);
  Mempool pool = make_pool();

  inv.on_ban(0, 2, seconds(1));
  // Block advancing chain 2, born (first proposed) well past the
  // ban + grace: violation.
  PredisBlock late = make_block(9, {5, 5, 5, 5}, {6, 6, 7, 6});
  inv.on_predis_proposed(1, late, seconds(5));
  inv.on_commit(0, 9, digest(9), seconds(5) + milliseconds(100));
  inv.on_predis_executed(0, late, pool, seconds(5) + milliseconds(200));
  ASSERT_FALSE(inv.ok());
  EXPECT_EQ(inv.violations()[0].invariant, "ban-list");
}

TEST(Invariants, BanListExcusesPreBanProposalsCommittedLate) {
  InvariantConfig cfg = quiet_config();
  cfg.ban_grace = seconds(1);
  InvariantChecker inv(cfg);
  Mempool pool = make_pool();

  // Block born before the ban, stalled by faults, committed long
  // after: legitimate.
  PredisBlock stalled = make_block(9, {5, 5, 5, 5}, {6, 6, 7, 6});
  inv.on_predis_proposed(1, stalled, milliseconds(900));
  inv.on_ban(0, 2, seconds(1));
  inv.on_commit(0, 9, digest(9), seconds(8));
  inv.on_predis_executed(0, stalled, pool, seconds(8));
  EXPECT_TRUE(inv.ok()) << inv.report();
}

TEST(Invariants, BanListClearedByRejoin) {
  InvariantConfig cfg = quiet_config();
  cfg.ban_grace = seconds(1);
  InvariantChecker inv(cfg);
  Mempool pool = make_pool();

  inv.on_ban(0, 2, seconds(1));
  inv.on_unban(0, 2);
  PredisBlock late = make_block(9, {5, 5, 5, 5}, {6, 6, 7, 6});
  inv.on_predis_proposed(1, late, seconds(5));
  inv.on_commit(0, 9, digest(9), seconds(5));
  inv.on_predis_executed(0, late, pool, seconds(5));
  EXPECT_TRUE(inv.ok()) << inv.report();
}

TEST(Invariants, ReportListsEveryViolation) {
  InvariantChecker inv(quiet_config());
  inv.on_commit(0, 1, digest(1), seconds(1));
  inv.on_commit(1, 1, digest(2), seconds(1));
  inv.on_commit(0, 2, digest(3), seconds(1));
  inv.on_commit(1, 2, digest(4), seconds(1));
  const std::string report = inv.report();
  EXPECT_NE(report.find("2 violation(s)"), std::string::npos);
  EXPECT_NE(report.find("agreement"), std::string::npos);
}

}  // namespace
}  // namespace predis::core
