#include "core/ledger.hpp"

#include <gtest/gtest.h>

namespace predis::core {
namespace {

std::vector<Transaction> txs(std::size_t n, std::uint64_t tag) {
  std::vector<Transaction> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i].client = 1;
    out[i].seq = tag * 100 + i;
  }
  return out;
}

Hash32 digest(std::uint64_t tag) {
  return Sha256::hash(as_bytes("payload-" + std::to_string(tag)));
}

TEST(Ledger, AppendsChainAndCounts) {
  Ledger ledger;
  ledger.append_block(digest(1), txs(5, 1), milliseconds(10));
  ledger.append_block(digest(2), txs(3, 2), milliseconds(20));
  EXPECT_EQ(ledger.size(), 2u);
  EXPECT_EQ(ledger.total_txs(), 8u);
  EXPECT_TRUE(ledger.verify_chain());
  EXPECT_EQ(ledger.at(1)->parent, kZeroHash);
  EXPECT_EQ(ledger.at(2)->parent, ledger.at(1)->record_hash());
  EXPECT_EQ(ledger.head()->height, 2u);
}

TEST(Ledger, RejectsNonChainingAppends) {
  Ledger ledger;
  ledger.append_block(digest(1), txs(1, 1), 0);

  LedgerEntry bad;
  bad.height = 3;  // skips height 2
  bad.parent = ledger.head_hash();
  EXPECT_THROW(ledger.append(bad), std::logic_error);

  bad.height = 2;
  bad.parent = kZeroHash;  // wrong parent
  EXPECT_THROW(ledger.append(bad), std::logic_error);
}

TEST(Ledger, VerifyChainDetectsTampering) {
  Ledger a;
  a.append_block(digest(1), txs(2, 1), 0);
  a.append_block(digest(2), txs(2, 2), 0);
  EXPECT_TRUE(a.verify_chain());
  // Ledger's API prevents tampering; simulate divergence via two
  // ledgers built from different histories instead.
  Ledger b;
  b.append_block(digest(9), txs(2, 9), 0);
  EXPECT_FALSE(a.prefix_consistent_with(b));
}

TEST(Ledger, PrefixConsistencyToleratesDifferentLengths) {
  Ledger a, b;
  a.append_block(digest(1), txs(1, 1), 0);
  a.append_block(digest(2), txs(1, 2), 0);
  b.append_block(digest(1), txs(1, 1), 0);
  EXPECT_TRUE(a.prefix_consistent_with(b));
  EXPECT_TRUE(b.prefix_consistent_with(a));
}

TEST(Ledger, ExportImportStateTransfer) {
  Ledger full;
  for (int i = 1; i <= 6; ++i) {
    full.append_block(digest(i), txs(2, i), milliseconds(i));
  }
  Ledger lagging;
  for (int i = 1; i <= 2; ++i) {
    lagging.append_block(digest(i), txs(2, i), milliseconds(i));
  }
  const Bytes range = full.export_range(1, 6);
  EXPECT_EQ(lagging.import_range(range), 4u);
  EXPECT_EQ(lagging.size(), 6u);
  EXPECT_TRUE(lagging.verify_chain());
  EXPECT_TRUE(lagging.prefix_consistent_with(full));
  EXPECT_EQ(lagging.head_hash(), full.head_hash());
}

TEST(Ledger, ImportDetectsDivergentHistory) {
  Ledger a, b;
  a.append_block(digest(1), txs(1, 1), 0);
  b.append_block(digest(99), txs(1, 99), 0);
  const Bytes range = a.export_range(1, 1);
  EXPECT_THROW(b.import_range(range), std::logic_error);
}

TEST(Ledger, ExportRangeValidation) {
  Ledger ledger;
  ledger.append_block(digest(1), txs(1, 1), 0);
  EXPECT_THROW(ledger.export_range(0, 1), std::out_of_range);
  EXPECT_THROW(ledger.export_range(1, 2), std::out_of_range);
  EXPECT_THROW(ledger.export_range(2, 1), std::out_of_range);
}

TEST(Ledger, EmptyLedgerBasics) {
  Ledger ledger;
  EXPECT_TRUE(ledger.empty());
  EXPECT_EQ(ledger.head(), nullptr);
  EXPECT_EQ(ledger.head_hash(), kZeroHash);
  EXPECT_EQ(ledger.at(1), nullptr);
  EXPECT_TRUE(ledger.verify_chain());
}

}  // namespace
}  // namespace predis::core
