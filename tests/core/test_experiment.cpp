#include "core/experiment.hpp"

#include <gtest/gtest.h>

namespace predis::core {
namespace {

ClusterConfig base_config(Protocol p, double load) {
  ClusterConfig cfg;
  cfg.protocol = p;
  cfg.n_consensus = 4;
  cfg.f = 1;
  cfg.wan = false;  // LAN keeps test runtime small
  cfg.offered_load_tps = load;
  cfg.n_clients = 4;
  cfg.duration = seconds(8);
  cfg.warmup = seconds(3);
  return cfg;
}

class AllProtocols : public ::testing::TestWithParam<Protocol> {};

TEST_P(AllProtocols, CommitsOfferedLoadWhenUnderCapacity) {
  const ClusterResult r = run_cluster(base_config(GetParam(), 1500));
  EXPECT_TRUE(r.consistent);
  EXPECT_TRUE(r.ledgers_consistent);
  EXPECT_GT(r.ledger_blocks_min, 0u);
  // At 1.5 k tx/s every protocol keeps up (within 15% after warmup).
  EXPECT_GT(r.throughput_tps, 1275.0) << to_string(GetParam());
  EXPECT_GT(r.avg_latency_ms, 0.0);
  EXPECT_GT(r.commit_events, 10u);
}

INSTANTIATE_TEST_SUITE_P(
    Protocols, AllProtocols,
    ::testing::Values(Protocol::kPbft, Protocol::kHotStuff,
                      Protocol::kPredisPbft, Protocol::kPredisHotStuff,
                      Protocol::kNarwhal, Protocol::kStratus),
    [](const ::testing::TestParamInfo<Protocol>& info) {
      std::string name = to_string(info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

// The paper's core claim (Fig. 4): under load beyond the baselines'
// capacity, Predis variants sustain far higher throughput.
TEST(Experiment, PredisOutperformsBaselinesUnderHighLoad) {
  const double load = 10'000;
  const ClusterResult pbft = run_cluster(base_config(Protocol::kPbft, load));
  const ClusterResult ppbft =
      run_cluster(base_config(Protocol::kPredisPbft, load));
  EXPECT_GT(ppbft.throughput_tps, 1.5 * pbft.throughput_tps);
  EXPECT_TRUE(pbft.consistent);
  EXPECT_TRUE(ppbft.consistent);
}

TEST(Experiment, WanEnvironmentRuns) {
  ClusterConfig cfg = base_config(Protocol::kPredisHotStuff, 1000);
  cfg.wan = true;
  const ClusterResult r = run_cluster(cfg);
  EXPECT_TRUE(r.consistent);
  EXPECT_GT(r.throughput_tps, 800.0);
  // WAN latencies are tens of ms one way; client latency reflects it.
  EXPECT_GT(r.avg_latency_ms, 50.0);
}

TEST(Experiment, FaultInjectionReducesThroughput) {
  ClusterConfig healthy = base_config(Protocol::kPredisPbft, 4000);
  ClusterConfig faulty = healthy;
  faulty.n_faulty = 1;
  faulty.fault_mode = consensus::predis::FaultMode::kSilent;

  const ClusterResult h = run_cluster(healthy);
  const ClusterResult f = run_cluster(faulty);
  EXPECT_TRUE(h.consistent);
  EXPECT_TRUE(f.consistent);
  EXPECT_GT(f.throughput_tps, 0.0);
  EXPECT_LT(f.throughput_tps, h.throughput_tps);
}

TEST(Experiment, ScalesToEightConsensusNodes) {
  ClusterConfig cfg = base_config(Protocol::kPredisPbft, 2000);
  cfg.n_consensus = 8;
  cfg.f = 2;
  cfg.n_clients = 8;
  const ClusterResult r = run_cluster(cfg);
  EXPECT_TRUE(r.consistent);
  EXPECT_GT(r.throughput_tps, 1700.0);
}

}  // namespace
}  // namespace predis::core
