// Adversarial swarm campaign: every AttackKind against every swarm
// protocol, asserting graceful degradation — all safety invariants hold
// with the attacker inside the f-budget, and the honest majority keeps
// committing. This is the ctest-sized version of tools/adversary_report
// (which additionally quantifies the clean-relative degradation).
#include "core/swarm.hpp"

#include <gtest/gtest.h>

namespace predis::core {
namespace {

const Protocol kSwarmProtocols[] = {Protocol::kPredisPbft, Protocol::kPbft,
                                    Protocol::kHotStuff, Protocol::kNarwhal};

SwarmCaseConfig campaign(Protocol protocol, AttackKind attack) {
  SwarmCaseConfig cfg;
  cfg.protocol = protocol;
  cfg.attack = attack;
  cfg.seed = 77;
  cfg.duration = seconds(4);
  cfg.offered_load_tps = 1'000.0;
  cfg.faults.events = 2;
  cfg.faults.start = milliseconds(500);
  cfg.faults.horizon = seconds(2);
  return cfg;
}

TEST(SwarmAdversary, ThrottledLeaderDegradesButCommits) {
  for (Protocol protocol : kSwarmProtocols) {
    const auto r = run_swarm_case(campaign(protocol, AttackKind::kThrottle));
    EXPECT_TRUE(r.ok) << to_string(protocol) << "\n" << r.report;
    EXPECT_GT(r.faults_injected, 0u) << to_string(protocol);
    // A performance adversary slows the pipeline; it must not stop it.
    EXPECT_GT(r.committed_txs, 0u) << to_string(protocol);
  }
}

TEST(SwarmAdversary, WithholdingStaysSafeAndLive) {
  for (Protocol protocol : kSwarmProtocols) {
    const auto r = run_swarm_case(campaign(protocol, AttackKind::kWithhold));
    EXPECT_TRUE(r.ok) << to_string(protocol) << "\n" << r.report;
    EXPECT_GT(r.faults_injected, 0u) << to_string(protocol);
    EXPECT_GT(r.committed_txs, 0u) << to_string(protocol);
  }
}

TEST(SwarmAdversary, GarbageInjectionFiresAndStaysSafe) {
  for (Protocol protocol : kSwarmProtocols) {
    const auto r = run_swarm_case(campaign(protocol, AttackKind::kGarbage));
    EXPECT_TRUE(r.ok) << to_string(protocol) << "\n" << r.report;
    // The injector must actually have spoken this protocol's dialect.
    EXPECT_GT(r.hostile_msgs, 0u) << to_string(protocol);
    EXPECT_GT(r.committed_txs, 0u) << to_string(protocol);
  }
}

TEST(SwarmAdversary, ChurnStormStaysSafe) {
  for (Protocol protocol : kSwarmProtocols) {
    const auto r =
        run_swarm_case(campaign(protocol, AttackKind::kChurnStorm));
    EXPECT_TRUE(r.ok) << to_string(protocol) << "\n" << r.report;
    EXPECT_GT(r.faults_injected, 0u) << to_string(protocol);
    EXPECT_GT(r.committed_txs, 0u) << to_string(protocol);
  }
}

TEST(SwarmAdversary, EquivocationOnlyArmsForPredisFamily) {
  // The equivocation hook needs a bundle producer to corrupt; on
  // non-Predis protocols the harness demotes the campaign to a clean
  // plan instead of silently mislabeling some other fault.
  const auto predis =
      run_swarm_case(campaign(Protocol::kPredisPbft, AttackKind::kEquivocate));
  EXPECT_TRUE(predis.ok) << predis.report;
  EXPECT_GT(predis.faults_injected, 0u);

  const auto pbft =
      run_swarm_case(campaign(Protocol::kPbft, AttackKind::kEquivocate));
  EXPECT_TRUE(pbft.ok) << pbft.report;
  EXPECT_EQ(pbft.faults_injected, 0u);
}

TEST(SwarmAdversary, CleanRunPopulatesDegradationMetrics) {
  SwarmCaseConfig cfg = campaign(Protocol::kPredisPbft, AttackKind::kNone);
  // kNone leaves the baseline fault plan in place; zero events makes it
  // an actually-clean reference run.
  cfg.faults.events = 0;
  const auto r = run_swarm_case(cfg);
  EXPECT_TRUE(r.ok) << r.report;
  EXPECT_GT(r.committed_txs, 0u);
  EXPECT_GT(r.production_p99_ms, 0.0);
  EXPECT_EQ(r.hostile_msgs, 0u);
  EXPECT_EQ(r.faults_injected, 0u);
}

TEST(SwarmAdversary, AttackChangesTheTraceButNotTheWorkload) {
  // Same seed, garbage vs clean: the attack must be visible in the
  // trace digest (it really happened) while the offered workload stays
  // the seed's. Note the *metrics* digest may legitimately match — a
  // handler wall that rejects every hostile message without a single
  // commit slipping is the best possible outcome — so only the trace
  // inequality is asserted.
  SwarmCaseConfig clean = campaign(Protocol::kPbft, AttackKind::kNone);
  clean.faults.events = 0;
  SwarmCaseConfig attacked = campaign(Protocol::kPbft, AttackKind::kGarbage);
  const auto a = run_swarm_case(clean);
  const auto b = run_swarm_case(attacked);
  EXPECT_TRUE(a.ok) << a.report;
  EXPECT_TRUE(b.ok) << b.report;
  EXPECT_NE(a.trace_digest, b.trace_digest);
  EXPECT_EQ(a.hostile_msgs, 0u);
  EXPECT_GT(b.hostile_msgs, 0u);
  // The honest workload was unaffected: same committed volume.
  EXPECT_EQ(a.committed_txs, b.committed_txs);
}

}  // namespace
}  // namespace predis::core
