// Unit tests for the shared crash-recovery primitives (core/recovery.hpp)
// and the CommitLedger payload dedupe that keeps restart re-proposals
// from double-counting committed transactions.
#include "core/recovery.hpp"

#include <gtest/gtest.h>

#include "consensus/common.hpp"

namespace predis::core {
namespace {

TEST(BackoffPolicy, GrowsExponentiallyAndCaps) {
  BackoffPolicy policy;
  policy.base = milliseconds(25);
  policy.cap = milliseconds(400);
  policy.jitter = 0.0;  // deterministic: no randomization
  Rng rng(1);
  EXPECT_EQ(policy.delay(0, rng), milliseconds(25));
  EXPECT_EQ(policy.delay(1, rng), milliseconds(50));
  EXPECT_EQ(policy.delay(2, rng), milliseconds(100));
  EXPECT_EQ(policy.delay(4, rng), milliseconds(400));
  EXPECT_EQ(policy.delay(60, rng), milliseconds(400));  // capped, no UB
}

TEST(BackoffPolicy, JitterStaysWithinBoundsAndReplays) {
  BackoffPolicy jittered;
  jittered.base = milliseconds(100);
  jittered.cap = milliseconds(800);
  jittered.jitter = 0.5;
  BackoffPolicy fixed = jittered;
  fixed.jitter = 0.0;
  Rng a(7);
  Rng unused(7);
  for (std::size_t attempt = 0; attempt < 8; ++attempt) {
    const SimTime nominal = fixed.delay(attempt, unused);
    const SimTime d = jittered.delay(attempt, a);
    EXPECT_GE(d, nominal - nominal / 2);
    EXPECT_LE(d, nominal);
  }
  // Same seed -> byte-identical retry cadence (determinism contract).
  Rng c(7);
  Rng d(7);
  for (std::size_t attempt = 0; attempt < 8; ++attempt) {
    EXPECT_EQ(jittered.delay(attempt, c), jittered.delay(attempt, d));
  }
}

TEST(StallDetector, EscalatesAfterRepeatedTimeoutsSkippingSelf) {
  StallDetector det(4, /*self=*/1, /*stall_after=*/2);
  det.prefer(3);
  EXPECT_EQ(det.peer(), 3u);
  EXPECT_FALSE(det.on_timeout());  // first timeout: stay
  EXPECT_EQ(det.peer(), 3u);
  EXPECT_TRUE(det.on_timeout());  // second: escalate to 0 (wraps, skips 1)
  EXPECT_EQ(det.peer(), 0u);
  EXPECT_EQ(det.stalls(), 1u);
  // Progress resets the timeout streak.
  EXPECT_FALSE(det.on_timeout());
  det.on_progress();
  EXPECT_FALSE(det.on_timeout());
  EXPECT_TRUE(det.on_timeout());
  EXPECT_EQ(det.peer(), 2u);  // 0 -> skip self(1)? next_from(1) -> 2
  EXPECT_EQ(det.stalls(), 2u);
}

TEST(StallDetector, PreferIgnoresSelfAndOutOfRange) {
  StallDetector det(4, /*self=*/2);
  det.prefer(2);   // self: ignored
  det.prefer(9);   // out of range: ignored
  EXPECT_NE(det.peer(), 2u);
  EXPECT_LT(det.peer(), 4u);
}

TEST(CheckpointRecord, DigestCoversAllFields) {
  CheckpointRecord a{10, kZeroHash, kZeroHash};
  CheckpointRecord b = a;
  EXPECT_EQ(a.digest(), b.digest());
  b.height = 11;
  EXPECT_NE(a.digest(), b.digest());
  b = a;
  b.ban_digest = CheckpointRecord::ban_list_digest({1, 2});
  EXPECT_NE(a.digest(), b.digest());
  // Ban-list digest is order-insensitive (std::set) and size-prefixed.
  EXPECT_EQ(CheckpointRecord::ban_list_digest({2, 1}),
            CheckpointRecord::ban_list_digest({1, 2}));
  EXPECT_NE(CheckpointRecord::ban_list_digest({}),
            CheckpointRecord::ban_list_digest({1}));
}

TEST(CheckpointQuorum, StabilizesAtQuorumOnceAndMonotonically) {
  CheckpointQuorum q(3);
  CheckpointRecord rec{5, kZeroHash, kZeroHash};
  EXPECT_FALSE(q.vote(0, rec));
  EXPECT_FALSE(q.vote(0, rec));  // duplicate voter does not advance
  EXPECT_FALSE(q.vote(1, rec));
  EXPECT_FALSE(q.has_stable());
  EXPECT_TRUE(q.vote(2, rec));  // third distinct voter: stable
  EXPECT_TRUE(q.has_stable());
  EXPECT_EQ(q.stable().height, 5u);
  // A late quorum at or below the stable height never regresses it.
  CheckpointRecord old{5, kZeroHash, kZeroHash};
  EXPECT_FALSE(q.vote(3, old));
  // Higher checkpoint supersedes.
  CheckpointRecord next{8, kZeroHash, kZeroHash};
  EXPECT_FALSE(q.vote(0, next));
  EXPECT_FALSE(q.vote(1, next));
  EXPECT_TRUE(q.vote(2, next));
  EXPECT_EQ(q.stable().height, 8u);
}

TEST(GcStats, AddAndMergeAccumulate) {
  GcStats a;
  a.add(100);
  a.add(50);
  EXPECT_EQ(a.bytes, 150u);
  EXPECT_EQ(a.items, 2u);
  GcStats b;
  b.add(7);
  a.merge(b);
  EXPECT_EQ(a.bytes, 157u);
  EXPECT_EQ(a.items, 3u);
}

// Regression for the PBFT churn-storm double count (committed_txs
// 22508 vs 20000 clean): the same payload digest committed at a second
// slot after a restart re-proposal must count its transactions once.
TEST(CommitLedger, DedupesRecommittedPayloadAcrossSlots) {
  Metrics metrics;
  consensus::CommitLedger ledger(metrics);
  const Hash32 payload = Sha256::hash(as_bytes(std::string("block-1")));
  ledger.on_commit(0, 1, payload, 100, milliseconds(10));
  EXPECT_EQ(metrics.committed_txs(), 100u);
  // Other replicas committing the same slot: no extra counting.
  ledger.on_commit(1, 1, payload, 100, milliseconds(11));
  EXPECT_EQ(metrics.committed_txs(), 100u);
  EXPECT_EQ(ledger.duplicate_payloads(), 0u);
  // Restarted leader re-proposes the same payload at a later slot.
  ledger.on_commit(0, 2, payload, 100, milliseconds(40));
  EXPECT_EQ(metrics.committed_txs(), 100u);  // not 200
  EXPECT_EQ(ledger.duplicate_payloads(), 1u);
  EXPECT_TRUE(ledger.consistent());
  // A genuinely new payload still counts.
  const Hash32 fresh = Sha256::hash(as_bytes(std::string("block-2")));
  ledger.on_commit(0, 3, fresh, 25, milliseconds(50));
  EXPECT_EQ(metrics.committed_txs(), 125u);
  EXPECT_EQ(ledger.committed_slots(), 3u);
}

}  // namespace
}  // namespace predis::core
