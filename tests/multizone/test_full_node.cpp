// Multi-Zone topology behaviour: Algorithm 1 joins, Algorithm 2
// trimming, relayer-count maintenance, stripe flow + decoding, block
// reconstruction, leave/crash recovery and the backup digest path.
#include "multizone/full_node.hpp"

#include <gtest/gtest.h>

#include "runtime/environments.hpp"
#include "runtime/sim_runtime.hpp"

namespace predis::multizone {
namespace {

constexpr std::size_t kN = 4;  // consensus nodes / stripes
constexpr std::size_t kF = 1;

/// Minimal stripe source standing in for consensus node `index`.
class TestProducer final : public runtime::Actor {
 public:
  TestProducer(runtime::Runtime& net, NodeId self, StripeIndex index)
      : net_(net), self_(self), index_(index) {}

  void on_message(NodeId from, const runtime::MsgPtr& msg) override {
    if (const auto* m = dynamic_cast<const SubscribeMsg*>(msg.get())) {
      std::vector<StripeIndex> ok;
      for (StripeIndex s : m->stripes) {
        if (s == index_) {
          subscribers.insert(from);
          ok.push_back(s);
        }
      }
      if (!ok.empty()) {
        auto accept = std::make_shared<AcceptSubscribeMsg>();
        accept->stripes = std::move(ok);
        accept->from_consensus = true;
        net_.send(self_, from, std::move(accept));
      }
      return;
    }
    if (const auto* m = dynamic_cast<const UnsubscribeMsg*>(msg.get())) {
      for (StripeIndex s : m->stripes) {
        if (s == index_) subscribers.erase(from);
      }
      return;
    }
    if (const auto* m = dynamic_cast<const HeartbeatMsg*>(msg.get())) {
      if (!m->reply) {
        auto echo = std::make_shared<HeartbeatMsg>();
        echo->reply = true;
        net_.send(self_, from, std::move(echo));
      }
      return;
    }
  }

  void send_stripe(const BundleHeader& header, std::size_t bundle_bytes,
                   std::shared_ptr<const erasure::Stripe> payload = nullptr) {
    auto msg = std::make_shared<StripeMsg>();
    msg->header = header;
    msg->index = index_;
    msg->body_bytes = (bundle_bytes + kN - kF - 1) / (kN - kF);
    msg->proof_bytes = 64;
    msg->payload = std::move(payload);
    for (NodeId sub : subscribers) net_.send(self_, sub, msg);
  }

  void send_block(const PredisBlock& block) {
    auto msg = std::make_shared<PredisBlockMsg>();
    msg->block = block;
    for (NodeId sub : subscribers) net_.send(self_, sub, msg);
  }

  std::set<NodeId> subscribers;

 private:
  runtime::Runtime& net_;
  NodeId self_;
  StripeIndex index_;
};

struct ZoneFixture : ::testing::Test {
  ZoneFixture()
      : backend(runtime::LatencyMatrix::uniform(1, milliseconds(5))),
        net(backend.runtime()),
        dir(n_zones) {
    for (std::size_t i = 0; i < kN; ++i) {
      const NodeId id = net.add_node(runtime::node_100mbps(0));
      producer_ids.push_back(id);
      producers.push_back(std::make_unique<TestProducer>(
          net, id, static_cast<StripeIndex>(i)));
      net.attach(id, producers.back().get());
    }
    dir.set_consensus_nodes(producer_ids);
    cfg.n_consensus = kN;
    cfg.f = kF;
    cfg.n_zones = n_zones;
  }

  MultiZoneFullNode* add_full_node(std::uint32_t zone, SimTime join_time) {
    const NodeId id = net.add_node(runtime::node_100mbps(0));
    dir.register_node(id, zone, join_time);
    full_nodes.push_back(
        std::make_unique<MultiZoneFullNode>(net, id, cfg, dir, 3));
    net.attach(id, full_nodes.back().get());
    full_ids.push_back(id);
    return full_nodes.back().get();
  }

  /// Produce one bundle on `chain` and stripe it from every producer.
  Bundle produce_bundle(std::size_t chain) {
    const BundleHeight h = heights[chain] + 1;
    std::vector<Transaction> txs(3);
    for (std::size_t i = 0; i < txs.size(); ++i) {
      txs[i].client = 9;
      txs[i].seq = chain * 1000 + h * 10 + i;
    }
    Bundle b = make_bundle(static_cast<NodeId>(chain), h, parents[chain],
                           std::vector<BundleHeight>(kN, 0), std::move(txs),
                           KeyPair::from_seed(1000 + chain));
    heights[chain] = h;
    parents[chain] = b.header.hash();
    dir.publish_bundle(b);
    for (auto& p : producers) p->send_stripe(b.header, b.wire_size());
    return b;
  }

  PredisBlock announce_block(std::uint64_t height) {
    PredisBlock block;
    block.height = height;
    block.leader = 0;
    block.prev_heights = last_cut;
    block.cut_heights.assign(heights.begin(), heights.end());
    for (std::size_t i = 0; i < kN; ++i) {
      if (block.cut_heights[i] > block.prev_heights[i]) {
        // Content does not matter for reconstruction bookkeeping.
        block.header_hashes.push_back(
            Sha256::hash(as_bytes("hdr" + std::to_string(i))));
      }
    }
    last_cut = block.cut_heights;
    for (auto& p : producers) p->send_block(block);
    return block;
  }

  runtime::SimRuntime backend;
  runtime::Runtime& net;
  std::size_t n_zones = 2;
  ZoneDirectory dir;
  MultiZoneConfig cfg;
  std::vector<NodeId> producer_ids;
  std::vector<std::unique_ptr<TestProducer>> producers;
  std::vector<std::unique_ptr<MultiZoneFullNode>> full_nodes;
  std::vector<NodeId> full_ids;
  std::array<BundleHeight, kN> heights{};
  std::array<Hash32, kN> parents{kZeroHash, kZeroHash, kZeroHash, kZeroHash};
  std::vector<BundleHeight> last_cut = std::vector<BundleHeight>(kN, 0);
};

TEST_F(ZoneFixture, FirstNodeBecomesFullRelayer) {
  auto* node = add_full_node(0, 0);
  net.start();
  net.run_until(milliseconds(200));
  EXPECT_TRUE(node->is_relayer());
  EXPECT_EQ(node->direct_stripes().size(), kN);
  for (auto& p : producers) EXPECT_EQ(p->subscribers.size(), 1u);
}

TEST_F(ZoneFixture, ZoneConvergesToOneDirectStripePerRelayer) {
  for (std::size_t i = 0; i < kN; ++i) {
    add_full_node(0, static_cast<SimTime>(i) * milliseconds(150));
  }
  net.start();
  net.run_until(seconds(8));

  std::size_t relayers = 0;
  std::set<StripeIndex> covered;
  for (auto& node : full_nodes) {
    if (node->is_relayer()) {
      ++relayers;
      covered.insert(node->direct_stripes().begin(),
                     node->direct_stripes().end());
    }
    // Every node must have a provider for every stripe.
    for (StripeIndex s = 0; s < kN; ++s) {
      EXPECT_NE(node->provider_of(s), kNoNode) << "stripe " << s;
    }
  }
  EXPECT_EQ(relayers, kN);
  EXPECT_EQ(covered.size(), kN);  // all stripes consensus-direct somewhere
  // Consensus load is balanced: one direct subscriber per producer.
  for (auto& p : producers) {
    EXPECT_EQ(p->subscribers.size(), 1u);
  }
}

TEST_F(ZoneFixture, StripesDecodeIntoBundles) {
  auto* node = add_full_node(0, 0);
  std::size_t decoded = 0;
  node->on_bundle_decoded = [&decoded](const BundleHeader&, SimTime) {
    ++decoded;
  };
  net.start();
  net.run_until(milliseconds(200));

  produce_bundle(0);
  produce_bundle(1);
  net.run_until(milliseconds(400));
  EXPECT_EQ(decoded, 2u);
  EXPECT_EQ(node->contiguous_height(0), 1u);
  EXPECT_EQ(node->contiguous_height(1), 1u);
}

TEST_F(ZoneFixture, RealStripePayloadsDecodeThroughCodec) {
  auto* node = add_full_node(0, 0);
  net.start();
  net.run_until(milliseconds(200));

  // Producer workflow: encode, commit the stripe root into the header,
  // then distribute real stripes. The receiver must Merkle-verify each
  // stripe and Reed-Solomon-decode the bundle from the bytes alone.
  const erasure::StripeCodec codec(kN - kF, kN);
  std::vector<Transaction> txs(3);
  for (std::size_t i = 0; i < txs.size(); ++i) txs[i].seq = 500 + i;
  Bundle b = make_bundle(0, 1, parents[0], std::vector<BundleHeight>(kN, 0),
                         std::move(txs), KeyPair::from_seed(1000));
  const auto encoded = codec.encode(b);
  b.header.stripe_root = encoded.stripe_root;
  for (std::size_t i = 0; i < kN; ++i) {
    producers[i]->send_stripe(
        b.header, b.wire_size(),
        std::make_shared<const erasure::Stripe>(encoded.stripes[i]));
  }
  net.run_until(milliseconds(400));

  EXPECT_EQ(node->decoded_bundles(), 1u);
  EXPECT_EQ(node->byte_decoded_bundles(), 1u);
  EXPECT_EQ(node->decode_failures(), 0u);
  EXPECT_EQ(node->stripe_verify_failures(), 0u);
}

TEST_F(ZoneFixture, TamperedRealStripeIsRejectedBeforeCounting) {
  auto* node = add_full_node(0, 0);
  net.start();
  net.run_until(milliseconds(200));

  const erasure::StripeCodec codec(kN - kF, kN);
  std::vector<Transaction> txs(2);
  txs[0].seq = 600;
  txs[1].seq = 601;
  Bundle b = make_bundle(0, 1, parents[0], std::vector<BundleHeight>(kN, 0),
                         std::move(txs), KeyPair::from_seed(1001));
  auto encoded = codec.encode(b);
  b.header.stripe_root = encoded.stripe_root;
  encoded.stripes[1].data[0] ^= 0x01;  // tamper stripe 1 in flight
  for (std::size_t i = 0; i < kN; ++i) {
    producers[i]->send_stripe(
        b.header, b.wire_size(),
        std::make_shared<const erasure::Stripe>(encoded.stripes[i]));
  }
  net.run_until(milliseconds(400));

  // The tampered stripe is dropped at verification; the remaining
  // kN - 1 >= k genuine stripes still decode the bundle.
  EXPECT_EQ(node->stripe_verify_failures(), 1u);
  EXPECT_EQ(node->byte_decoded_bundles(), 1u);
  EXPECT_EQ(node->decoded_bundles(), 1u);
}

TEST_F(ZoneFixture, OrdinaryNodeReconstructsBlocksThroughRelayers) {
  // Fill the zone with kN relayers plus one ordinary node.
  for (std::size_t i = 0; i < kN + 1; ++i) {
    add_full_node(0, static_cast<SimTime>(i) * milliseconds(120));
  }
  std::vector<std::pair<NodeId, std::uint64_t>> completions;
  for (auto& node : full_nodes) {
    node->on_block_complete = [&completions, &node](const PredisBlock& b,
                                                    SimTime) {
      completions.emplace_back(0, b.height);
      (void)node;
    };
  }
  net.start();
  net.run_until(seconds(6));

  for (int i = 0; i < 6; ++i) produce_bundle(i % kN);
  net.run_until(seconds(7));
  announce_block(0);
  net.run_until(seconds(9));

  // Every full node (including the ordinary one) rebuilt block 0.
  EXPECT_EQ(completions.size(), full_nodes.size());
  EXPECT_FALSE(full_nodes.back()->is_relayer());
}

TEST_F(ZoneFixture, RelayerLeaveHandsRoleOver) {
  for (std::size_t i = 0; i < kN + 1; ++i) {
    add_full_node(0, static_cast<SimTime>(i) * milliseconds(120));
  }
  net.start();
  net.run_until(seconds(8));

  // Find a relayer and make it leave gracefully.
  MultiZoneFullNode* leaver = nullptr;
  for (auto& node : full_nodes) {
    if (node->is_relayer()) {
      leaver = node.get();
      break;
    }
  }
  ASSERT_NE(leaver, nullptr);
  leaver->leave();
  net.run_until(seconds(16));

  // The zone still has kN relayers among the remaining nodes.
  std::size_t relayers = 0;
  for (auto& node : full_nodes) {
    if (node.get() == leaver) continue;
    if (node->is_relayer()) ++relayers;
  }
  EXPECT_GE(relayers, kN - 1);

  // And data still flows to everyone.
  produce_bundle(0);
  net.run_until(seconds(17));
  for (auto& node : full_nodes) {
    if (node.get() == leaver) continue;
    EXPECT_EQ(node->contiguous_height(0), 1u);
  }
}

TEST_F(ZoneFixture, RelayerCrashRecoveredByHeartbeat) {
  for (std::size_t i = 0; i < kN + 1; ++i) {
    add_full_node(0, static_cast<SimTime>(i) * milliseconds(120));
  }
  net.start();
  net.run_until(seconds(8));

  // Hard-crash the first relayer (no leave message).
  std::size_t crashed_index = 0;
  for (std::size_t i = 0; i < full_nodes.size(); ++i) {
    if (full_nodes[i]->is_relayer()) {
      crashed_index = i;
      break;
    }
  }
  net.set_node_down(full_ids[crashed_index], true);
  net.run_until(seconds(20));

  // Remaining nodes re-subscribed away from the dead provider and data
  // still reaches everyone.
  produce_bundle(2);
  net.run_until(seconds(21));
  for (std::size_t i = 0; i < full_nodes.size(); ++i) {
    if (i == crashed_index) continue;
    EXPECT_EQ(full_nodes[i]->contiguous_height(2), 1u) << "node " << i;
    for (StripeIndex s = 0; s < kN; ++s) {
      EXPECT_NE(full_nodes[i]->provider_of(s), full_ids[crashed_index]);
    }
  }
}

TEST_F(ZoneFixture, ForwardsClientTransactionsToTargetConsensus) {
  // §IV-D strategy two: a client hands a transaction naming consensus
  // node 2 to an ordinary full node, which forwards it there.
  class TxSink final : public runtime::Actor {
   public:
    void on_message(NodeId, const runtime::MsgPtr& msg) override {
      const auto* m = dynamic_cast<const ClientRequestMsg*>(msg.get());
      if (m != nullptr) received += m->txs.size();
    }
    std::size_t received = 0;
  };
  // Replace producer 2 with a sink that counts forwarded transactions.
  TxSink sink;
  net.attach(producer_ids[2], &sink);

  auto* node = add_full_node(0, 0);
  (void)node;
  net.start();
  net.run_until(milliseconds(300));

  auto msg = std::make_shared<ClientRequestMsg>();
  Transaction tx;
  tx.client = 99;
  tx.seq = 1;
  tx.target_consensus = 2;
  msg->txs.push_back(tx);
  // A client (use producer 3's id as a stand-in sender) submits via the
  // full node.
  net.send(producer_ids[3], full_ids[0], msg);
  net.run_until(milliseconds(600));
  EXPECT_EQ(sink.received, 1u);
}

TEST_F(ZoneFixture, CrossZoneDigestBackfillsMissedBundles) {
  // Zone 0 gets a healthy relayer; zone 1's node joins *after* the
  // bundle was distributed, so it can only catch up via the digest
  // backup path to its neighbour zone.
  auto* early = add_full_node(0, 0);
  net.start();
  net.run_until(milliseconds(300));
  produce_bundle(0);
  net.run_until(milliseconds(600));
  ASSERT_EQ(early->contiguous_height(0), 1u);

  auto* late = add_full_node(1, milliseconds(700));
  late->on_start();
  net.run_until(seconds(6));
  // The late node's digest partner is in zone 0 and pushes the gap.
  EXPECT_EQ(late->contiguous_height(0), 1u);
}

TEST_F(ZoneFixture, RelayerAliveWithOutOfRangeStripesIsSanitized) {
  // Regression (predis-lint D4): on_relayer_alive used to walk
  // providers_[s] for every stripe index the announcement carried,
  // so a hostile peer listing an index outside [0, n_c) caused an
  // out-of-bounds read — and the bogus list was cached in
  // known_relayers_ for later replay by on_leave. Indices are now
  // dropped at the handler boundary.
  auto* node = add_full_node(0, 0);
  net.start();
  net.run_until(milliseconds(200));
  ASSERT_TRUE(node->is_relayer());

  struct Silent final : runtime::Actor {
    void on_message(NodeId, const runtime::MsgPtr&) override {}
  } hostile;
  const NodeId hid = net.add_node(runtime::node_100mbps(0));
  net.attach(hid, &hostile);

  auto alive = std::make_shared<RelayerAliveMsg>();
  alive->relayer = hid;
  alive->relayed = {static_cast<StripeIndex>(kN + 995),
                    static_cast<StripeIndex>(-1)};
  alive->join_time = milliseconds(1);
  net.send(hid, full_ids[0], std::move(alive));
  net.run_until(milliseconds(400));

  // Subscription state is untouched: every real stripe keeps a valid
  // provider and the hostile node gained none.
  for (StripeIndex s = 0; s < kN; ++s) {
    const NodeId provider = node->provider_of(s);
    EXPECT_NE(provider, kNoNode) << "stripe " << s;
    EXPECT_NE(provider, hid) << "stripe " << s;
  }

  // The data plane still decodes bundles produced after the attack.
  std::size_t decoded = 0;
  node->on_bundle_decoded = [&decoded](const BundleHeader&, SimTime) {
    ++decoded;
  };
  produce_bundle(0);
  net.run_until(milliseconds(800));
  EXPECT_EQ(decoded, 1u);
}

TEST_F(ZoneFixture, HostileRejectWithUnknownChildrenIsIgnored) {
  // Regression: on_reject used to follow every referral child id the
  // message carried. A hostile reject naming an arbitrary id made the
  // node subscribe to a node the network has never seen — fatal in
  // Network::send. Referrals must pass the directory first.
  auto* node = add_full_node(0, 0);
  net.start();

  // Race the reject against the genuine accept: the node's subscribe
  // (sent at start) takes one hop to reach consensus, the accept one
  // hop back, so a reject injected at t=0 lands while the stripe is
  // still pending on the real producer — exactly the window where the
  // referral list is walked.
  auto reject = std::make_shared<RejectSubscribeMsg>();
  reject->stripes = {0};
  reject->children = {static_cast<NodeId>(0xbad5eed),
                      static_cast<NodeId>(0xbad5eee)};
  net.send(producer_ids[0], full_ids[0], std::move(reject));
  net.run_until(milliseconds(500));

  // The bogus referral was skipped and the retry path recovered the
  // stripe from a provider the directory knows.
  for (StripeIndex s = 0; s < kN; ++s) {
    EXPECT_NE(node->provider_of(s), kNoNode) << "stripe " << s;
  }
  produce_bundle(0);
  net.run_until(milliseconds(900));
  EXPECT_EQ(node->contiguous_height(0), 1u);
}

TEST_F(ZoneFixture, ForgedBundlePushIsRejectedAndCounted) {
  // Regression: on_push used to store any (producer, height, hash)
  // record the bundle claimed. A fabricated entry froze contiguous_ at
  // the forged height's chain forever — reconstruction of every later
  // block stalls waiting for a bundle that does not exist. Pushed
  // bundles must now match the directory's published record (models
  // verifying the producer signature + body root).
  auto* node = add_full_node(0, 0);
  net.start();
  net.run_until(milliseconds(200));

  std::vector<Transaction> forged_txs(2);
  forged_txs[0].seq = 700;
  forged_txs[1].seq = 701;
  const Bundle forged =
      make_bundle(0, 1, parents[0], std::vector<BundleHeight>(kN, 0),
                  std::move(forged_txs), KeyPair::from_seed(4242));
  auto push = std::make_shared<BundlePushMsg>();
  push->bundles = {forged};
  net.send(producer_ids[1], full_ids[0], std::move(push));
  net.run_until(milliseconds(400));

  EXPECT_EQ(node->push_verify_failures(), 1u);
  EXPECT_EQ(node->decoded_bundles(), 0u);
  EXPECT_EQ(node->contiguous_height(0), 0u);

  // A genuinely published bundle pushed the same way is accepted.
  std::vector<Transaction> txs(2);
  txs[0].seq = 702;
  txs[1].seq = 703;
  Bundle genuine =
      make_bundle(0, 1, parents[0], std::vector<BundleHeight>(kN, 0),
                  std::move(txs), KeyPair::from_seed(1000));
  dir.publish_bundle(genuine);
  auto ok_push = std::make_shared<BundlePushMsg>();
  ok_push->bundles = {genuine};
  net.send(producer_ids[1], full_ids[0], std::move(ok_push));
  net.run_until(milliseconds(600));

  EXPECT_EQ(node->push_verify_failures(), 1u);
  EXPECT_EQ(node->decoded_bundles(), 1u);
  EXPECT_EQ(node->contiguous_height(0), 1u);
}

TEST_F(ZoneFixture, HostileBlockSpanIsRejectedBeforeRepairWalk) {
  // Regression: on_predis_block used to admit any announcement, and
  // send_pull / try_reconstruct_blocks then walked every height in
  // (prev, cut] per chain. One forged block claiming cut_heights near
  // 2^40 pinned the node in a ~trillion-iteration walk (and sized the
  // missing-refs list to match). Spans are now bounded by
  // kMaxBlockSpan at admission, and the walks clamp again locally.
  auto* node = add_full_node(0, 0);
  std::size_t completions = 0;
  node->on_block_complete = [&completions](const PredisBlock&, SimTime) {
    ++completions;
  };
  net.start();
  net.run_until(milliseconds(200));

  PredisBlock hostile;
  hostile.height = 7;
  hostile.leader = 0;
  hostile.prev_heights = std::vector<BundleHeight>(kN, 0);
  hostile.cut_heights = std::vector<BundleHeight>(kN, BundleHeight{1} << 40);
  producers[0]->send_block(hostile);

  // Mismatched/regressing shapes are dropped by the same admission
  // check rather than reaching the repair bookkeeping.
  PredisBlock ragged;
  ragged.height = 8;
  ragged.prev_heights = std::vector<BundleHeight>(kN, 5);
  ragged.cut_heights = std::vector<BundleHeight>(kN, 2);  // cut < prev
  producers[0]->send_block(ragged);

  // If either walk ran unbounded this run_until would never return.
  net.run_until(milliseconds(800));
  EXPECT_EQ(completions, 0u);

  // A genuine announcement after the hostile ones still reconstructs.
  produce_bundle(0);
  net.run_until(milliseconds(1000));
  announce_block(0);
  net.run_until(milliseconds(1600));
  EXPECT_EQ(completions, 1u);
  EXPECT_EQ(node->contiguous_height(0), 1u);
}

TEST_F(ZoneFixture, RelayerAliveAboutUnregisteredNodeIsIgnored) {
  // Regression: on_relayer_alive cached whatever relayer id the message
  // named and — via Algorithm 2 trimming — could unsubscribe a direct
  // stripe in favour of it. An id the network has never seen then made
  // the hand-over subscribe fatal. Announcements about nodes the
  // directory never registered are now dropped at the boundary.
  auto* node = add_full_node(0, 0);
  net.start();
  net.run_until(milliseconds(200));
  ASSERT_TRUE(node->is_relayer());

  auto alive = std::make_shared<RelayerAliveMsg>();
  alive->relayer = static_cast<NodeId>(0xbad5eed);
  alive->relayed = {0};
  alive->join_time = milliseconds(1);  // earlier join: would win trimming
  net.send(producer_ids[1], full_ids[0], std::move(alive));
  net.run_until(milliseconds(600));

  // The node kept its consensus-direct stripes instead of deferring to
  // the phantom relayer, and data still flows.
  EXPECT_TRUE(node->is_relayer());
  for (StripeIndex s = 0; s < kN; ++s) {
    EXPECT_EQ(node->provider_of(s), producer_ids[s]) << "stripe " << s;
  }
  produce_bundle(0);
  net.run_until(seconds(1));
  EXPECT_EQ(node->contiguous_height(0), 1u);
}

TEST_F(ZoneFixture, BlockRepairPullResolvesWithinQuarterTimeout) {
  // Regression for the ~4.4 s distribution stragglers the tracer
  // attributed to repair pulls: pre-fix, a node missing a bundle at
  // block-announcement time slept a full jittered pull_timeout (700 ms
  // base, then per-attempt-doubling rungs) before its first pull, so a
  // block needing the whole target ladder took seconds to rebuild.
  // Post-fix the first probe fires at ~pull_timeout/4 and a
  // BundleMissMsg rotates the ladder at the same pace, so one
  // zone-member round trip closes the gap a few hundred ms after the
  // announcement.
  cfg.digest_interval = seconds(30);  // isolate the block-pull path

  auto* early = add_full_node(0, 0);
  net.start();
  net.run_until(milliseconds(300));
  produce_bundle(0);
  net.run_until(milliseconds(600));
  ASSERT_EQ(early->contiguous_height(0), 1u);

  // Joins after the stripes flowed: the only way to the bundle is the
  // repair pull riding the block announcement.
  auto* late = add_full_node(0, milliseconds(700));
  late->on_start();
  const NodeId late_id = full_ids.back();
  BlockTracer tracer;
  late->set_tracer(&tracer);
  SimTime done = kSimTimeNever;
  late->on_block_complete = [&done](const PredisBlock&, SimTime when) {
    done = when;
  };

  const SimTime announce_at = milliseconds(1500);
  net.run_until(announce_at);
  const PredisBlock block = announce_block(0);
  net.run_until(announce_at + milliseconds(600));

  ASSERT_NE(done, kSimTimeNever) << "late node never rebuilt the block";
  // Quarter timeout (175 ms, jittered down) + one zone round trip.
  // Pre-fix the first pull alone waited 350-700 ms.
  EXPECT_LE(done - announce_at, milliseconds(400))
      << "repair took " << (done - announce_at) << " ticks";
  // The pull path (not a digest backfill) did the repair, and it did
  // not spiral: one or two probes, nowhere near the anomaly threshold.
  const std::size_t pulls = tracer.pull_count(block.hash(), late_id);
  EXPECT_GE(pulls, 1u);
  EXPECT_LE(pulls, 2u);
  EXPECT_TRUE(tracer.anomalies(announce_at + seconds(1)).empty());
}

}  // namespace
}  // namespace predis::multizone
