// Shape tests for the Fig. 7 / Fig. 8 experiment runners (small scales
// so the full suite stays fast; the bench binaries run paper scales).
#include "multizone/experiments.hpp"

#include <gtest/gtest.h>

namespace predis::multizone {
namespace {

TEST(DistributionCluster, MultiZoneCommitsAndDistributes) {
  ThroughputConfig cfg;
  cfg.topology = Topology::kMultiZone;
  cfg.n_consensus = 4;
  cfg.f = 1;
  cfg.n_full = 12;
  cfg.n_zones = 3;
  cfg.offered_load_tps = 3000;
  cfg.duration = seconds(10);
  cfg.warmup = seconds(5);

  const ThroughputResult r = run_distribution_cluster(cfg);
  EXPECT_TRUE(r.consistent);
  EXPECT_GT(r.throughput_tps, 2500.0);
  EXPECT_GT(r.full_node_coverage, 0.9);
  // Every zone converged to n_c relayers.
  EXPECT_EQ(r.relayers_seen, cfg.n_zones * cfg.n_consensus);
}

TEST(DistributionCluster, MultiZoneRealStripePayloadsCommitAndDecode) {
  // Same cluster, but consensus nodes ship real erasure-coded stripe
  // bytes and full nodes Merkle-verify + Reed-Solomon-decode them
  // instead of using the directory's decode oracle.
  ThroughputConfig cfg;
  cfg.topology = Topology::kMultiZone;
  cfg.n_consensus = 4;
  cfg.f = 1;
  cfg.n_full = 9;
  cfg.n_zones = 3;
  cfg.offered_load_tps = 2000;
  cfg.duration = seconds(8);
  cfg.warmup = seconds(4);
  cfg.real_stripe_payloads = true;

  const ThroughputResult r = run_distribution_cluster(cfg);
  EXPECT_TRUE(r.consistent);
  EXPECT_GT(r.throughput_tps, 1500.0);
  EXPECT_GT(r.full_node_coverage, 0.9);
  EXPECT_GT(r.consensus_bytes_sent, 0u);
  EXPECT_GT(r.consensus_bytes_received, 0u);
}

TEST(DistributionCluster, StarCommitsAndDistributes) {
  ThroughputConfig cfg;
  cfg.topology = Topology::kStar;
  cfg.n_consensus = 4;
  cfg.f = 1;
  cfg.n_full = 12;
  cfg.offered_load_tps = 3000;
  cfg.duration = seconds(10);
  cfg.warmup = seconds(5);

  const ThroughputResult r = run_distribution_cluster(cfg);
  EXPECT_TRUE(r.consistent);
  EXPECT_GT(r.throughput_tps, 2000.0);
  EXPECT_GT(r.full_node_coverage, 0.9);
}

// Fig. 7's claim: star throughput degrades as full nodes are added;
// Multi-Zone throughput does not (zone count fixed).
TEST(DistributionCluster, MultiZoneShrugsOffFullNodeGrowth) {
  auto run = [](Topology topo, std::size_t n_full) {
    ThroughputConfig cfg;
    cfg.topology = topo;
    cfg.n_consensus = 4;
    cfg.f = 1;
    cfg.n_full = n_full;
    cfg.n_zones = 3;
    cfg.offered_load_tps = 9000;
    cfg.duration = seconds(10);
    cfg.warmup = seconds(5);
    return run_distribution_cluster(cfg);
  };

  const double star_many = run(Topology::kStar, 48).throughput_tps;
  const double mz_many = run(Topology::kMultiZone, 48).throughput_tps;
  // With 48 full nodes the star consensus layer is crowded out by
  // block pushes while Multi-Zone's stripe cost stays constant.
  EXPECT_GT(mz_many, 1.3 * star_many);
}

TEST(Propagation, AllTopologiesReachEveryNode) {
  for (Topology topo :
       {Topology::kStar, Topology::kRandom, Topology::kMultiZone}) {
    PropagationConfig cfg;
    cfg.topology = topo;
    cfg.n_consensus = 4;
    cfg.f = 1;
    cfg.n_full = 20;
    cfg.n_zones = 2;
    cfg.block_bytes = 512 << 10;
    cfg.n_blocks = 2;
    const PropagationResult r = run_propagation(cfg);
    EXPECT_GT(r.full_coverage_fraction, 0.99) << to_string(topo);
    ASSERT_TRUE(r.latency_ms_at_fraction.count(1.0)) << to_string(topo);
    EXPECT_GT(r.latency_ms_at_fraction.at(1.0), 0.0);
  }
}

// Fig. 8's claim: at large block sizes Multi-Zone's propagation latency
// is far below star and random, because bundles were pre-distributed.
TEST(Propagation, MultiZoneFastestForLargeBlocks) {
  auto run = [](Topology topo) {
    PropagationConfig cfg;
    cfg.topology = topo;
    cfg.n_consensus = 4;
    cfg.f = 1;
    cfg.n_full = 20;
    cfg.n_zones = 2;
    cfg.block_bytes = 8 << 20;  // 8 MB, past the paper's 5 MB crossover
    cfg.bundle_bytes = 256 << 10;
    cfg.n_blocks = 2;
    return run_propagation(cfg).latency_ms_at_fraction.at(1.0);
  };
  const double star = run(Topology::kStar);
  const double random = run(Topology::kRandom);
  const double mz = run(Topology::kMultiZone);
  EXPECT_LT(mz, 0.5 * star);    // paper: ~50% of star
  EXPECT_LT(mz, 0.5 * random);  // paper: even less vs random
}

TEST(Propagation, MoreZonesFlattenLatency) {
  auto run = [](std::size_t zones) {
    PropagationConfig cfg;
    cfg.topology = Topology::kMultiZone;
    cfg.n_consensus = 4;
    cfg.f = 1;
    cfg.n_full = 24;
    cfg.n_zones = zones;
    cfg.block_bytes = 4 << 20;
    cfg.bundle_bytes = 256 << 10;
    cfg.n_blocks = 2;
    return run_propagation(cfg).latency_ms_at_fraction.at(1.0);
  };
  // The paper's 12-zone-wins trend needs its ~100-node scale (the fig8
  // bench reproduces it); at 24 nodes we only require that extra zones
  // cost at most a small constant factor (stripe copies per zone).
  EXPECT_LE(run(6), run(2) * 2.5);
}

}  // namespace
}  // namespace predis::multizone
