// Regression tests for the random-gossip pull path: a digest receiver
// that is still missing the block must keep pulling against rotating
// targets until the block lands. The pre-fix node pulled exactly once,
// aimed only at the original digest sender — if that sender crashed
// (or its reply was lost) the block never arrived anywhere downstream.
#include "multizone/random_gossip.hpp"

#include <gtest/gtest.h>

#include "common/block_tracer.hpp"
#include "runtime/environments.hpp"
#include "runtime/sim_runtime.hpp"

namespace predis::multizone {
namespace {

struct GossipNet {
  GossipNet()
      : backend(runtime::LatencyMatrix::uniform(1, milliseconds(10))),
        net(backend.runtime()) {
    for (int i = 0; i < 3; ++i) {
      ids.push_back(net.add_node(runtime::node_100mbps(0)));
    }
    GossipConfig cfg;
    cfg.fanout = 1;
    // source / backup hold the block natively and relay to no one, so
    // the victim can only get it by pulling.
    source = std::make_unique<RandomGossipNode>(net, ids[0], cfg, 1);
    backup = std::make_unique<RandomGossipNode>(net, ids[1], cfg, 2);
    victim = std::make_unique<RandomGossipNode>(net, ids[2], cfg, 3);
    victim->set_peers({ids[0], ids[1]});
    victim->set_tracer(&tracer);
    net.attach(ids[0], source.get());
    net.attach(ids[1], backup.get());
    net.attach(ids[2], victim.get());
  }

  void seed_block() {
    source->inject(1, 4096);
    backup->inject(1, 4096);
  }

  void digest_to_victim_from_source() {
    auto digest = std::make_shared<BlockDigestMsg>();
    digest->block_id = 1;
    victim->on_message(ids[0], digest);
  }

  runtime::SimRuntime backend;
  runtime::Runtime& net;
  std::vector<NodeId> ids;
  BlockTracer tracer;
  std::unique_ptr<RandomGossipNode> source;
  std::unique_ptr<RandomGossipNode> backup;
  std::unique_ptr<RandomGossipNode> victim;
};

TEST(RandomGossipPull, RetargetsWhenDigestSenderCrashes) {
  GossipNet g;
  g.seed_block();
  g.digest_to_victim_from_source();

  std::uint64_t got = 0;
  g.victim->on_block = [&](std::uint64_t id, SimTime) { got = id; };

  // The only node the victim has heard from about block 1 goes down
  // before the pull grace period elapses.
  g.net.set_node_down(g.ids[0], true);
  g.net.run_until(seconds(2));

  EXPECT_EQ(got, 1u) << "pull stalled on the crashed digest sender";
  // First pull aimed at the dead sender, the retry rotated to the
  // backup peer — and the loop stopped once the block arrived.
  const std::size_t pulls = g.tracer.pull_count(trace_key(1), g.ids[2]);
  EXPECT_GE(pulls, 2u);
  EXPECT_LE(pulls, 3u);
  const std::size_t settled = pulls;
  g.net.run_until(seconds(6));
  EXPECT_EQ(g.tracer.pull_count(trace_key(1), g.ids[2]), settled)
      << "pull loop kept firing after the block arrived";
}

TEST(RandomGossipPull, SinglePullSufficesOnHealthyPath) {
  GossipNet g;
  g.seed_block();
  g.digest_to_victim_from_source();

  std::uint64_t got = 0;
  g.victim->on_block = [&](std::uint64_t id, SimTime) { got = id; };
  g.net.run_until(seconds(2));

  EXPECT_EQ(got, 1u);
  EXPECT_EQ(g.tracer.pull_count(trace_key(1), g.ids[2]), 1u);
}

TEST(RandomGossipPull, DuplicateDigestsStartOneLoop) {
  GossipNet g;
  g.seed_block();
  g.net.set_node_down(g.ids[0], true);
  // Three digests for the same block (one per gossip round is normal);
  // only one pull loop may spin up.
  g.digest_to_victim_from_source();
  g.digest_to_victim_from_source();
  g.digest_to_victim_from_source();
  g.net.run_until(seconds(2));

  // One loop rotated to the healthy backup and delivered the block.
  EXPECT_TRUE(g.tracer.has(TraceStage::kBlockReconstructed, trace_key(1)));
  EXPECT_LE(g.tracer.pull_count(trace_key(1), g.ids[2]), 3u);
}

}  // namespace
}  // namespace predis::multizone
