// §IV-B equations as executable checks.
#include "multizone/robustness.hpp"

#include <gtest/gtest.h>

namespace predis::multizone {
namespace {

TEST(Robustness, Eq3ApproximatesFOverN) {
  // The paper argues p_c ≈ f/N because p_h (~3%) is small.
  const double pc = node_failure_probability(8, 25);
  EXPECT_NEAR(pc, 8.0 / 25.0, 0.03);
  EXPECT_GT(pc, 8.0 / 25.0);  // p_h adds a little on top
}

TEST(Robustness, HonestOnlyNetworkFailsAtServerRate) {
  EXPECT_DOUBLE_EQ(node_failure_probability(0, 100), 0.03);
}

TEST(Robustness, PaperHeadlineAvailability) {
  // "a node receives data from relayers with probability higher than
  // 99.98% when n_c >= 4" — with n_zr = n_c and p_c ≈ f/N.
  // Take the paper's implicit worst case p_c ≈ 1/4 (f = N/4 at the
  // consensus bound): 1 - 0.25^4 = 99.6%; with the network-layer
  // population (N >> n_c) p_c is far smaller. Use N = 3f+1-style
  // network of 100 nodes with f = 8:
  const double availability = relayer_availability(8, 100, 4);
  EXPECT_GT(availability, 0.9998);
}

TEST(Robustness, Eq4MinimumRelayerCount) {
  // p_c = 0.1, p_r = 1e-4 -> need 4 relayers (0.1^4 = 1e-4).
  EXPECT_EQ(min_relayers_per_zone(0.1, 1e-4), 4u);
  // Slightly tighter threshold needs one more.
  EXPECT_EQ(min_relayers_per_zone(0.1, 9e-5), 5u);
  // Very reliable nodes need just one.
  EXPECT_EQ(min_relayers_per_zone(1e-6, 1e-4), 1u);
}

TEST(Robustness, Eq4UnsatisfiableReturnsNullopt) {
  // Relayers that surely fail can never meet any finite bound.
  EXPECT_EQ(min_relayers_per_zone(1.0, 1e-4), std::nullopt);
  // A zero failure target is unreachable with fallible relayers.
  EXPECT_EQ(min_relayers_per_zone(0.1, 0.0), std::nullopt);
  // Infallible relayers and trivial targets need exactly one.
  EXPECT_EQ(min_relayers_per_zone(0.0, 1e-4), 1u);
  EXPECT_EQ(min_relayers_per_zone(0.1, 1.0), 1u);
}

TEST(Robustness, MonotoneInRelayerCount) {
  const double pc = node_failure_probability(10, 100);
  double previous = 1.0;
  for (std::size_t n = 1; n <= 8; ++n) {
    const double fail = all_relayers_fail_probability(pc, n);
    EXPECT_LT(fail, previous);
    previous = fail;
  }
}

TEST(Robustness, ChosenConfigurationSatisfiesEq4) {
  // The paper sets n_zr = n_c; check that this satisfies Eq. 4 for the
  // evaluation configurations (n_c = 4..32, N = 100, f = (n_c-1)/3).
  for (std::size_t n_c : {4u, 8u, 16u, 32u}) {
    const std::size_t f = (n_c - 1) / 3;
    const double pc = node_failure_probability(f, 100);
    EXPECT_LE(all_relayers_fail_probability(pc, n_c), 2e-4) << n_c;
    EXPECT_LE(min_relayers_per_zone(pc, 2e-4), n_c) << n_c;
  }
}

}  // namespace
}  // namespace predis::multizone
