// End-to-end byte-level stripe path: bundle -> serialize -> RS encode
// -> stripe loss/tampering -> verify -> decode -> identical bundle.
#include "erasure/stripe_codec.hpp"

#include <gtest/gtest.h>

namespace predis::erasure {
namespace {

Bundle make_test_bundle(std::size_t tx_count, std::uint64_t tag) {
  std::vector<Transaction> txs;
  for (std::size_t i = 0; i < tx_count; ++i) {
    Transaction tx;
    tx.client = 3;
    tx.seq = tag * 1000 + i;
    tx.payload_seed = tag ^ (i * 0x9e3779b97f4a7c15ULL);
    txs.push_back(tx);
  }
  return make_bundle(1, 7, Sha256::hash(as_bytes(std::string("parent"))),
                     {4, 7, 2, 9}, std::move(txs), KeyPair::from_seed(881));
}

TEST(StripeCodec, SerializeRoundTrip) {
  const Bundle b = make_test_bundle(50, 1);
  const Bytes bytes = StripeCodec::serialize_bundle(b);
  EXPECT_EQ(StripeCodec::deserialize_bundle(bytes), b);
}

TEST(StripeCodec, DeserializeRejectsTrailingGarbage) {
  Bytes bytes = StripeCodec::serialize_bundle(make_test_bundle(3, 2));
  bytes.push_back(0xff);
  EXPECT_THROW(StripeCodec::deserialize_bundle(bytes), CodecError);
}

TEST(StripeCodec, EncodeDecodeAllStripes) {
  const StripeCodec codec(3, 4);  // n_c = 4, f = 1
  const Bundle b = make_test_bundle(50, 3);
  const auto encoded = codec.encode(b);
  ASSERT_EQ(encoded.stripes.size(), 4u);

  std::vector<std::optional<Stripe>> input(encoded.stripes.begin(),
                                           encoded.stripes.end());
  EXPECT_EQ(codec.decode(input), b);
}

TEST(StripeCodec, DecodesFromAnyKSubset) {
  const StripeCodec codec(3, 4);
  const Bundle b = make_test_bundle(20, 4);
  const auto encoded = codec.encode(b);

  for (std::size_t drop = 0; drop < 4; ++drop) {
    std::vector<std::optional<Stripe>> input(encoded.stripes.begin(),
                                             encoded.stripes.end());
    input[drop].reset();
    EXPECT_EQ(codec.decode(input), b) << "dropped stripe " << drop;
  }
}

TEST(StripeCodec, EveryStripeVerifiesAgainstRoot) {
  const StripeCodec codec(6, 8);  // n_c = 8, f = 2
  const auto encoded = codec.encode(make_test_bundle(50, 5));
  for (const Stripe& stripe : encoded.stripes) {
    EXPECT_TRUE(StripeCodec::verify(stripe, encoded.stripe_root))
        << "stripe " << stripe.index;
  }
}

TEST(StripeCodec, TamperedStripeFailsVerification) {
  const StripeCodec codec(3, 4);
  auto encoded = codec.encode(make_test_bundle(10, 6));
  encoded.stripes[2].data[5] ^= 0x01;
  EXPECT_FALSE(StripeCodec::verify(encoded.stripes[2],
                                   encoded.stripe_root));
}

TEST(StripeCodec, MisindexedStripeFailsVerification) {
  const StripeCodec codec(3, 4);
  auto encoded = codec.encode(make_test_bundle(10, 7));
  encoded.stripes[1].index = 2;  // claims to be a different stripe
  EXPECT_FALSE(StripeCodec::verify(encoded.stripes[1],
                                   encoded.stripe_root));
}

TEST(StripeCodec, TooFewStripesThrow) {
  const StripeCodec codec(3, 4);
  const auto encoded = codec.encode(make_test_bundle(10, 8));
  std::vector<std::optional<Stripe>> input(4);
  input[0] = encoded.stripes[0];
  input[3] = encoded.stripes[3];
  EXPECT_THROW(codec.decode(input), std::invalid_argument);
}

TEST(StripeCodec, TryDecodeRoundTrips) {
  const StripeCodec codec(3, 4);
  const Bundle b = make_test_bundle(20, 12);
  const auto encoded = codec.encode(b);
  std::vector<std::optional<Stripe>> input(encoded.stripes.begin(),
                                           encoded.stripes.end());
  input[1].reset();
  auto result = codec.try_decode(input);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), b);
}

TEST(StripeCodec, TryDecodeNeverThrowsOnBadInput) {
  const StripeCodec codec(3, 4);
  const auto encoded = codec.encode(make_test_bundle(10, 13));

  {  // Too few stripes.
    std::vector<std::optional<Stripe>> input(4);
    input[0] = encoded.stripes[0];
    const auto result = codec.try_decode(input);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.error().code, CodecErrorCode::kNotEnoughShards);
  }
  {  // Out-of-range stripe index.
    std::vector<std::optional<Stripe>> input(encoded.stripes.begin(),
                                             encoded.stripes.end());
    input[2]->index = 99;
    const auto result = codec.try_decode(input);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.error().code, CodecErrorCode::kBadStripeIndex);
  }
  {  // Corrupted shard bytes: either the length prefix breaks or the
    // payload no longer deserializes as a bundle — both are reported,
    // not thrown.
    std::vector<std::optional<Stripe>> input(encoded.stripes.begin(),
                                             encoded.stripes.end());
    for (auto& stripe : input) {
      for (auto& byte : stripe->data) byte ^= 0x5a;
    }
    const auto result = codec.try_decode(input);
    ASSERT_FALSE(result.ok());
    EXPECT_TRUE(result.error().code == CodecErrorCode::kCorruptPayload ||
                result.error().code == CodecErrorCode::kMalformedBundle)
        << to_string(result.error().code);
  }
}

TEST(StripeCodec, EncodeIntoReusesArenaAcrossBundles) {
  const StripeCodec codec(3, 4);
  StripeCodec::Encoded arena;
  for (std::uint64_t tag = 20; tag < 24; ++tag) {
    const Bundle b = make_test_bundle(15, tag);
    codec.encode_into(b, arena);
    // The arena result must be indistinguishable from a fresh encode.
    const auto fresh = codec.encode(b);
    EXPECT_EQ(arena.stripe_root, fresh.stripe_root);
    ASSERT_EQ(arena.stripes.size(), fresh.stripes.size());
    for (std::size_t i = 0; i < fresh.stripes.size(); ++i) {
      EXPECT_EQ(arena.stripes[i].index, fresh.stripes[i].index);
      EXPECT_EQ(arena.stripes[i].data, fresh.stripes[i].data);
      EXPECT_EQ(arena.stripes[i].proof.leaf_index,
                fresh.stripes[i].proof.leaf_index);
      EXPECT_EQ(arena.stripes[i].proof.siblings,
                fresh.stripes[i].proof.siblings);
    }
    std::vector<std::optional<Stripe>> input(arena.stripes.begin(),
                                             arena.stripes.end());
    input[tag % 4].reset();
    auto decoded = codec.try_decode(input);
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded.value(), b);
  }
}

TEST(StripeCodec, StripeRootBindsIntoSignedHeader) {
  // The producer workflow: encode first, commit the stripe root in the
  // header, then sign. Receivers verify stripes against the root from
  // the *signed* header, so a tampered stripe is detected before decode.
  const StripeCodec codec(3, 4);
  Bundle b = make_test_bundle(25, 9);
  const auto encoded = codec.encode(b);
  b.header.stripe_root = encoded.stripe_root;
  const KeyPair key = KeyPair::from_seed(882);
  b.header.signature = key.sign(BytesView{b.header.signing_bytes()});
  EXPECT_TRUE(verify_bundle_signature(b.header, key.public_key()));
  for (const Stripe& s : encoded.stripes) {
    EXPECT_TRUE(StripeCodec::verify(s, b.header.stripe_root));
  }
}

class StripeCodecShapes
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {
};

TEST_P(StripeCodecShapes, LossyRoundTripAtEveryShape) {
  const auto [k, n] = GetParam();
  const StripeCodec codec(k, n);
  const Bundle b = make_test_bundle(50, k * 100 + n);
  const auto encoded = codec.encode(b);

  // Drop the maximum tolerable number of stripes (prefix pattern).
  std::vector<std::optional<Stripe>> input(encoded.stripes.begin(),
                                           encoded.stripes.end());
  for (std::size_t i = 0; i < n - k; ++i) input[i].reset();
  EXPECT_EQ(codec.decode(input), b);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, StripeCodecShapes,
    ::testing::Values(std::pair<std::size_t, std::size_t>{3, 4},
                      std::pair<std::size_t, std::size_t>{6, 8},
                      std::pair<std::size_t, std::size_t>{11, 16},
                      std::pair<std::size_t, std::size_t>{22, 32}));

}  // namespace
}  // namespace predis::erasure
