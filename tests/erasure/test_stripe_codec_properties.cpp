// Randomized availability property (§IV-D): for random bundles and
// random erasure patterns, any n_c − f of the n_c stripes reconstruct
// the bundle bit-exactly, while f + 1 losses fail cleanly (an error
// value, never a wrong bundle). Seeded Rng keeps every run
// reproducible. Uses the non-throwing try_decode API throughout; the
// throwing wrapper's contract is covered in test_stripe_codec.cpp.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "erasure/stripe_codec.hpp"

namespace predis::erasure {
namespace {

Bundle random_bundle(Rng& rng) {
  std::vector<Transaction> txs;
  const std::size_t tx_count = rng.next_below(60);
  for (std::size_t i = 0; i < tx_count; ++i) {
    Transaction tx;
    tx.client = static_cast<NodeId>(rng.next_below(16));
    tx.seq = rng.next();
    tx.size = 128 + static_cast<std::uint32_t>(rng.next_below(1024));
    tx.payload_seed = rng.next();
    txs.push_back(tx);
  }
  std::vector<BundleHeight> tips;
  for (std::size_t i = 0; i < 4; ++i) tips.push_back(rng.next_below(100));
  Hash32 parent = kZeroHash;
  parent[0] = static_cast<std::uint8_t>(rng.next_below(256));
  const NodeId producer = static_cast<NodeId>(rng.next_below(4));
  return make_bundle(producer, 1 + rng.next_below(50), parent,
                     std::move(tips), std::move(txs),
                     KeyPair::from_seed(producer));
}

/// Drop exactly `losses` distinct random stripes.
std::vector<std::optional<Stripe>> with_losses(
    const std::vector<Stripe>& stripes, std::size_t losses, Rng& rng) {
  std::vector<std::optional<Stripe>> input(stripes.begin(), stripes.end());
  std::vector<std::size_t> order(stripes.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  rng.shuffle(order);
  for (std::size_t i = 0; i < losses; ++i) input[order[i]].reset();
  return input;
}

TEST(StripeCodecProperties, AnyFLossesDecodeForRandomBundles) {
  Rng rng(20260806);
  for (const auto& [n_c, f] : std::vector<std::pair<std::size_t,
                                                    std::size_t>>{
           {4, 1}, {7, 2}, {10, 3}}) {
    const StripeCodec codec(n_c - f, n_c);
    for (int round = 0; round < 20; ++round) {
      const Bundle b = random_bundle(rng);
      const auto encoded = codec.encode(b);
      ASSERT_EQ(encoded.stripes.size(), n_c);
      for (const Stripe& s : encoded.stripes) {
        EXPECT_TRUE(StripeCodec::verify(s, encoded.stripe_root));
      }
      const std::size_t losses = rng.next_below(f + 1);  // 0..f
      const auto input = with_losses(encoded.stripes, losses, rng);
      const auto decoded = codec.try_decode(input);
      ASSERT_TRUE(decoded.ok())
          << "n_c=" << n_c << " losses=" << losses << " round=" << round
          << ": " << decoded.error().message;
      EXPECT_EQ(decoded.value(), b)
          << "n_c=" << n_c << " losses=" << losses << " round=" << round;
    }
  }
}

TEST(StripeCodecProperties, FPlusOneLossesFailCleanly) {
  Rng rng(997);
  for (const auto& [n_c, f] : std::vector<std::pair<std::size_t,
                                                    std::size_t>>{
           {4, 1}, {7, 2}, {10, 3}}) {
    const StripeCodec codec(n_c - f, n_c);
    for (int round = 0; round < 10; ++round) {
      const Bundle b = random_bundle(rng);
      const auto encoded = codec.encode(b);
      // One loss past the tolerance: decode must report failure, never
      // hand back a wrong bundle — and try_decode must not throw.
      const auto input = with_losses(
          encoded.stripes, f + 1 + rng.next_below(f + 1), rng);
      const auto decoded = codec.try_decode(input);
      ASSERT_FALSE(decoded.ok()) << "n_c=" << n_c << " round=" << round;
      EXPECT_EQ(decoded.error().code, CodecErrorCode::kNotEnoughShards);
    }
  }
}

TEST(StripeCodecProperties, TamperedStripeFailsVerification) {
  Rng rng(31337);
  const StripeCodec codec(3, 4);
  for (int round = 0; round < 10; ++round) {
    const Bundle b = random_bundle(rng);
    auto encoded = codec.encode(b);
    Stripe& victim =
        encoded.stripes[rng.next_below(encoded.stripes.size())];
    ASSERT_FALSE(victim.data.empty());
    victim.data[rng.next_below(victim.data.size())] ^= 0x01;
    EXPECT_FALSE(StripeCodec::verify(victim, encoded.stripe_root));
  }
}

}  // namespace
}  // namespace predis::erasure
