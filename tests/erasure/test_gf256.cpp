#include "erasure/gf256.hpp"

#include <gtest/gtest.h>

namespace predis::erasure {
namespace {

TEST(GF256, AdditionIsXor) {
  EXPECT_EQ(GF256::add(0x57, 0x83), 0x57 ^ 0x83);
  EXPECT_EQ(GF256::sub(0x57, 0x83), 0x57 ^ 0x83);
}

TEST(GF256, MultiplicationIdentityAndZero) {
  for (int a = 0; a < 256; ++a) {
    EXPECT_EQ(GF256::mul(static_cast<GF>(a), 1), a);
    EXPECT_EQ(GF256::mul(static_cast<GF>(a), 0), 0);
    EXPECT_EQ(GF256::mul(0, static_cast<GF>(a)), 0);
  }
}

TEST(GF256, MultiplicationCommutes) {
  for (int a = 1; a < 256; a += 7) {
    for (int b = 1; b < 256; b += 11) {
      EXPECT_EQ(GF256::mul(static_cast<GF>(a), static_cast<GF>(b)),
                GF256::mul(static_cast<GF>(b), static_cast<GF>(a)));
    }
  }
}

TEST(GF256, EveryNonZeroElementHasInverse) {
  for (int a = 1; a < 256; ++a) {
    const GF inv = GF256::inv(static_cast<GF>(a));
    EXPECT_EQ(GF256::mul(static_cast<GF>(a), inv), 1) << "a=" << a;
  }
}

TEST(GF256, DivisionInvertsMultiplication) {
  for (int a = 0; a < 256; a += 5) {
    for (int b = 1; b < 256; b += 9) {
      const GF prod = GF256::mul(static_cast<GF>(a), static_cast<GF>(b));
      EXPECT_EQ(GF256::div(prod, static_cast<GF>(b)), a);
    }
  }
}

TEST(GF256, DistributiveLaw) {
  for (int a = 1; a < 256; a += 13) {
    for (int b = 1; b < 256; b += 17) {
      for (int c = 1; c < 256; c += 29) {
        const GF left = GF256::mul(
            static_cast<GF>(a), GF256::add(static_cast<GF>(b),
                                           static_cast<GF>(c)));
        const GF right =
            GF256::add(GF256::mul(static_cast<GF>(a), static_cast<GF>(b)),
                       GF256::mul(static_cast<GF>(a), static_cast<GF>(c)));
        EXPECT_EQ(left, right);
      }
    }
  }
}

TEST(GF256, ZeroHasNoInverse) {
  EXPECT_THROW(GF256::inv(0), std::domain_error);
  EXPECT_THROW(GF256::div(1, 0), std::domain_error);
  EXPECT_THROW(GF256::log(0), std::domain_error);
}

TEST(GF256, ExpLogRoundTrip) {
  for (int a = 1; a < 256; ++a) {
    EXPECT_EQ(GF256::exp(GF256::log(static_cast<GF>(a))), a);
  }
}

TEST(GF256, ExpHandlesNegativeAndLargePowers) {
  EXPECT_EQ(GF256::exp(0), 1);
  EXPECT_EQ(GF256::exp(255), GF256::exp(0));
  EXPECT_EQ(GF256::exp(-1), GF256::exp(254));
}

TEST(Matrix, IdentityMultiplication) {
  const Matrix id = Matrix::identity(4);
  Matrix m(4, 4);
  for (std::size_t r = 0; r < 4; ++r) {
    for (std::size_t c = 0; c < 4; ++c) {
      m.at(r, c) = static_cast<GF>(r * 4 + c + 1);
    }
  }
  EXPECT_EQ(m.multiply(id), m);
  EXPECT_EQ(id.multiply(m), m);
}

TEST(Matrix, InverseProducesIdentity) {
  const Matrix vm = Matrix::vandermonde(5, 5);
  const Matrix inv = vm.inverted();
  EXPECT_EQ(vm.multiply(inv), Matrix::identity(5));
  EXPECT_EQ(inv.multiply(vm), Matrix::identity(5));
}

TEST(Matrix, SingularMatrixThrows) {
  Matrix m(2, 2);  // all zeros
  EXPECT_THROW(m.inverted(), std::domain_error);
}

TEST(Matrix, VandermondeAnyKRowsInvertible) {
  // The Reed-Solomon property: any k rows of an n x k Vandermonde
  // matrix form an invertible matrix.
  const std::size_t n = 8, k = 4;
  const Matrix vm = Matrix::vandermonde(n, k);
  // Check several row subsets including adversarial ones.
  const std::vector<std::vector<std::size_t>> subsets = {
      {0, 1, 2, 3}, {4, 5, 6, 7}, {0, 2, 4, 6}, {1, 3, 5, 7}, {0, 1, 6, 7}};
  for (const auto& rows : subsets) {
    EXPECT_NO_THROW(vm.select_rows(rows).inverted());
  }
}

TEST(Matrix, SubAndSelectRows) {
  const Matrix vm = Matrix::vandermonde(4, 3);
  const Matrix sub = vm.sub_rows(1, 2);
  EXPECT_EQ(sub.rows(), 2u);
  EXPECT_EQ(sub.at(0, 0), vm.at(1, 0));
  const Matrix sel = vm.select_rows({3, 0});
  EXPECT_EQ(sel.at(0, 1), vm.at(3, 1));
  EXPECT_EQ(sel.at(1, 1), vm.at(0, 1));
  EXPECT_THROW(vm.sub_rows(3, 2), std::out_of_range);
  EXPECT_THROW(vm.select_rows({4}), std::out_of_range);
}

}  // namespace
}  // namespace predis::erasure
