// Property tests pinning the fused row kernels (dispatched and portable
// paths) bit-exact against the element-wise GF256::mul reference, across
// coefficients, lengths (0, 1, non-multiples of the unroll widths), and
// buffer alignments.
#include <cstdio>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "erasure/gf256.hpp"

namespace predis::erasure {
namespace {

/// dst[i] ^= coeff * src[i] the slow, obviously-correct way.
void reference_mul_row_add(std::uint8_t* dst, const std::uint8_t* src,
                           GF coeff, std::size_t len) {
  for (std::size_t i = 0; i < len; ++i) {
    dst[i] ^= GF256::mul(coeff, src[i]);
  }
}

using Kernel = void (*)(std::uint8_t*, const std::uint8_t*, GF, std::size_t);

void expect_matches_reference(Kernel kernel, GF coeff, std::size_t len,
                              std::size_t src_offset, std::size_t dst_offset,
                              Rng& rng) {
  // Over-allocate so the kernel can be pointed at any byte offset —
  // SIMD paths must handle unaligned loads/stores and scalar tails.
  std::vector<std::uint8_t> src(len + src_offset + 16);
  std::vector<std::uint8_t> dst(len + dst_offset + 16);
  for (auto& b : src) b = static_cast<std::uint8_t>(rng.next());
  for (auto& b : dst) b = static_cast<std::uint8_t>(rng.next());

  std::vector<std::uint8_t> expected(dst);
  reference_mul_row_add(expected.data() + dst_offset,
                        src.data() + src_offset, coeff, len);
  kernel(dst.data() + dst_offset, src.data() + src_offset, coeff, len);

  ASSERT_EQ(dst, expected) << "coeff=" << static_cast<int>(coeff)
                           << " len=" << len << " src_off=" << src_offset
                           << " dst_off=" << dst_offset;
}

TEST(GfRowKernels, AllCoefficientsShortRows) {
  Rng rng(2024);
  for (int c = 0; c < 256; ++c) {
    expect_matches_reference(&GF256::mul_row_add, static_cast<GF>(c), 37, 0,
                             0, rng);
    expect_matches_reference(&GF256::mul_row_add_portable,
                             static_cast<GF>(c), 37, 0, 0, rng);
  }
}

TEST(GfRowKernels, EdgeLengths) {
  Rng rng(7);
  // 0 and 1 plus every length around the 8/16/32-byte unroll boundaries.
  const std::size_t lengths[] = {0,  1,  2,  7,  8,  9,  15, 16, 17,
                                 23, 24, 31, 32, 33, 63, 64, 65, 100};
  for (std::size_t len : lengths) {
    for (GF coeff : {GF{0}, GF{1}, GF{2}, GF{0x1d}, GF{0xff}}) {
      expect_matches_reference(&GF256::mul_row_add, coeff, len, 0, 0, rng);
      expect_matches_reference(&GF256::mul_row_add_portable, coeff, len, 0,
                               0, rng);
    }
  }
}

TEST(GfRowKernels, RandomCoefficientsLengthsAndAlignments) {
  Rng rng(0xfeedULL);
  for (int trial = 0; trial < 200; ++trial) {
    const GF coeff = static_cast<GF>(rng.next());
    const std::size_t len = rng.next_below(2048);
    const std::size_t src_off = rng.next_below(16);
    const std::size_t dst_off = rng.next_below(16);
    expect_matches_reference(&GF256::mul_row_add, coeff, len, src_off,
                             dst_off, rng);
    expect_matches_reference(&GF256::mul_row_add_portable, coeff, len,
                             src_off, dst_off, rng);
  }
}

TEST(GfRowKernels, AccumulationIsLinear) {
  // (a + b) * x == a*x + b*x: accumulating two kernels over the same dst
  // equals one kernel with the summed coefficient.
  Rng rng(99);
  const std::size_t len = 777;
  std::vector<std::uint8_t> src(len);
  for (auto& b : src) b = static_cast<std::uint8_t>(rng.next());

  for (int trial = 0; trial < 32; ++trial) {
    const GF a = static_cast<GF>(rng.next());
    const GF b = static_cast<GF>(rng.next());
    std::vector<std::uint8_t> two_pass(len, 0);
    GF256::mul_row_add(two_pass.data(), src.data(), a, len);
    GF256::mul_row_add(two_pass.data(), src.data(), b, len);
    std::vector<std::uint8_t> one_pass(len, 0);
    GF256::mul_row_add(one_pass.data(), src.data(), GF256::add(a, b), len);
    ASSERT_EQ(two_pass, one_pass);
  }
}

TEST(GfRowKernels, PortableAndDispatchedAgree) {
  // Redundant with the reference checks above but pins the exact
  // property the dispatcher relies on, and reports which path ran.
  Rng rng(123);
  const std::size_t len = 4096 + 5;
  std::vector<std::uint8_t> src(len);
  for (auto& b : src) b = static_cast<std::uint8_t>(rng.next());
  for (GF coeff : {GF{3}, GF{0x80}, GF{0xfe}}) {
    std::vector<std::uint8_t> a(len, 0xaa);
    std::vector<std::uint8_t> b(len, 0xaa);
    GF256::mul_row_add(a.data(), src.data(), coeff, len);
    GF256::mul_row_add_portable(b.data(), src.data(), coeff, len);
    ASSERT_EQ(a, b);
  }
  // Not an assertion — just surface the dispatch decision in test logs.
  std::printf("[          ] GF256::simd_enabled() = %s\n",
              GF256::simd_enabled() ? "true" : "false");
}

}  // namespace
}  // namespace predis::erasure
