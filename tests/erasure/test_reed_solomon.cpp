#include "erasure/reed_solomon.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace predis::erasure {
namespace {

Bytes random_payload(std::size_t size, std::uint64_t seed) {
  predis::Rng rng(seed);
  Bytes out(size);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.next());
  return out;
}

TEST(ReedSolomon, RoundTripAllShardsPresent) {
  const ReedSolomon rs(4, 6);
  const Bytes payload = random_payload(1000, 1);
  const auto shards = rs.encode(payload);
  ASSERT_EQ(shards.size(), 6u);

  std::vector<std::optional<Bytes>> input(shards.begin(), shards.end());
  EXPECT_EQ(rs.decode(input), payload);
}

TEST(ReedSolomon, SystematicPrefixIsPayload) {
  const ReedSolomon rs(4, 6);
  const Bytes payload = random_payload(396, 2);  // 4+396 = 400 = 4*100
  const auto shards = rs.encode(payload);
  // Data shards hold the length-prefixed payload verbatim.
  Bytes joined;
  for (std::size_t i = 0; i < 4; ++i) {
    joined.insert(joined.end(), shards[i].begin(), shards[i].end());
  }
  EXPECT_EQ(Bytes(joined.begin() + 4, joined.end()), payload);
}

/// Parameterized over (data shards, total shards).
class RsParamTest
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(RsParamTest, RecoversFromEveryMaximalLossPattern) {
  const auto [k, n] = GetParam();
  const ReedSolomon rs(k, n);
  const Bytes payload = random_payload(777, k * 31 + n);
  const auto shards = rs.encode(payload);

  // Drop every combination of n-k shards (bitmask sweep; n <= 10 here).
  const std::size_t m = n - k;
  std::vector<std::size_t> drop(m);
  std::function<void(std::size_t, std::size_t)> sweep =
      [&](std::size_t start, std::size_t depth) {
        if (depth == m) {
          std::vector<std::optional<Bytes>> input(shards.begin(),
                                                  shards.end());
          for (std::size_t d : drop) input[d].reset();
          EXPECT_EQ(rs.decode(input), payload);
          return;
        }
        for (std::size_t i = start; i < n; ++i) {
          drop[depth] = i;
          sweep(i + 1, depth + 1);
        }
      };
  sweep(0, 0);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, RsParamTest,
    ::testing::Values(std::pair<std::size_t, std::size_t>{1, 2},
                      std::pair<std::size_t, std::size_t>{2, 3},
                      std::pair<std::size_t, std::size_t>{3, 4},   // n_c=4,f=1
                      std::pair<std::size_t, std::size_t>{6, 8},   // n_c=8,f=2
                      std::pair<std::size_t, std::size_t>{4, 7},
                      std::pair<std::size_t, std::size_t>{5, 10}));

TEST(ReedSolomon, PaperConfiguration16Nodes) {
  // n_c = 16, f = 5: any 11 of 16 stripes rebuild the bundle.
  const ReedSolomon rs(11, 16);
  const Bytes payload = random_payload(25'600, 99);  // 50 txs x 512 B
  auto shards = rs.encode(payload);
  std::vector<std::optional<Bytes>> input(shards.begin(), shards.end());
  // Drop five parity + zero data, five data, and a mix.
  for (std::size_t d : {0u, 3u, 7u, 12u, 15u}) input[d].reset();
  EXPECT_EQ(rs.decode(input), payload);
}

TEST(ReedSolomon, TooFewShardsThrows) {
  const ReedSolomon rs(3, 5);
  const auto shards = rs.encode(random_payload(100, 5));
  std::vector<std::optional<Bytes>> input(5);
  input[0] = shards[0];
  input[4] = shards[4];
  EXPECT_THROW(rs.decode(input), std::invalid_argument);
}

TEST(ReedSolomon, MismatchedShardSizesThrow) {
  const ReedSolomon rs(2, 4);
  auto shards = rs.encode(random_payload(100, 6));
  std::vector<std::optional<Bytes>> input(shards.begin(), shards.end());
  input[1]->push_back(0);
  EXPECT_THROW(rs.decode(input), std::invalid_argument);
}

TEST(ReedSolomon, WrongShardCountThrows) {
  const ReedSolomon rs(2, 4);
  std::vector<std::optional<Bytes>> input(3);
  EXPECT_THROW(rs.decode(input), std::invalid_argument);
}

TEST(ReedSolomon, InvalidParametersThrow) {
  EXPECT_THROW(ReedSolomon(0, 4), std::invalid_argument);
  EXPECT_THROW(ReedSolomon(5, 4), std::invalid_argument);
  EXPECT_THROW(ReedSolomon(4, 300), std::invalid_argument);
}

TEST(ReedSolomon, EmptyPayloadRoundTrips) {
  const ReedSolomon rs(3, 5);
  const auto shards = rs.encode(Bytes{});
  std::vector<std::optional<Bytes>> input(shards.begin(), shards.end());
  input[0].reset();
  input[2].reset();
  EXPECT_TRUE(rs.decode(input).empty());
}

TEST(ReedSolomon, ReconstructAllRebuildsMissingStripes) {
  const ReedSolomon rs(3, 5);
  const Bytes payload = random_payload(512, 7);
  const auto shards = rs.encode(payload);

  std::vector<std::optional<Bytes>> input(shards.begin(), shards.end());
  input[1].reset();
  input[4].reset();
  const auto rebuilt = rs.reconstruct_all(input);
  ASSERT_EQ(rebuilt.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(rebuilt[i], shards[i]) << "stripe " << i;
  }
}

TEST(ReedSolomon, LargePayloadRoundTrip) {
  const ReedSolomon rs(6, 8);
  const Bytes payload = random_payload(1 << 20, 11);  // 1 MB
  auto shards = rs.encode(payload);
  std::vector<std::optional<Bytes>> input(shards.begin(), shards.end());
  input[0].reset();
  input[5].reset();
  EXPECT_EQ(rs.decode(input), payload);
}

TEST(ReedSolomon, CodingMatrixIsSystematic) {
  const ReedSolomon rs(4, 7);
  const Matrix& m = rs.coding_matrix();
  for (std::size_t r = 0; r < 4; ++r) {
    for (std::size_t c = 0; c < 4; ++c) {
      EXPECT_EQ(m.at(r, c), r == c ? 1 : 0);
    }
  }
}

TEST(ReedSolomon, RoundTripEveryShapeUpTo16) {
  // Regression across the full (k, n) grid with 1 <= k <= n <= 16:
  // encode, drop n-k shards (worst case), decode, compare.
  for (std::size_t n = 1; n <= 16; ++n) {
    for (std::size_t k = 1; k <= n; ++k) {
      const ReedSolomon rs(k, n);
      const Bytes payload = random_payload(257, n * 100 + k);
      const auto shards = rs.encode(payload);
      ASSERT_EQ(shards.size(), n);
      for (const Bytes& shard : shards) {
        ASSERT_EQ(shard.size(), rs.shard_size(payload.size()));
      }
      std::vector<std::optional<Bytes>> input(shards.begin(), shards.end());
      // Drop the first n-k shards — forces the inverted-matrix path
      // whenever parity exists.
      for (std::size_t d = 0; d < n - k; ++d) input[d].reset();
      ASSERT_EQ(rs.decode(input), payload) << "k=" << k << " n=" << n;
    }
  }
}

TEST(ReedSolomon, EncodeIntoMatchesEncode) {
  const ReedSolomon rs(5, 9);
  const Bytes payload = random_payload(1234, 21);
  const auto expected = rs.encode(payload);

  const std::size_t size = rs.shard_size(payload.size());
  std::vector<Bytes> buffers(9, Bytes(size, 0xcc));  // dirty on purpose
  std::vector<MutBytesView> views(9);
  for (std::size_t i = 0; i < 9; ++i) views[i] = MutBytesView(buffers[i]);
  rs.encode_into(payload, views);
  EXPECT_EQ(buffers, expected);
}

TEST(ReedSolomon, EncodeIntoRejectsWrongBufferShapes) {
  const ReedSolomon rs(2, 4);
  const Bytes payload = random_payload(64, 3);
  const std::size_t size = rs.shard_size(payload.size());

  std::vector<Bytes> buffers(3, Bytes(size));
  std::vector<MutBytesView> views(3);
  for (std::size_t i = 0; i < 3; ++i) views[i] = MutBytesView(buffers[i]);
  EXPECT_THROW(rs.encode_into(payload, views), std::invalid_argument);

  std::vector<Bytes> wrong(4, Bytes(size + 1));
  std::vector<MutBytesView> wrong_views(4);
  for (std::size_t i = 0; i < 4; ++i) wrong_views[i] = MutBytesView(wrong[i]);
  EXPECT_THROW(rs.encode_into(payload, wrong_views), std::invalid_argument);
}

TEST(ReedSolomon, TryDecodeRoundTrips) {
  const ReedSolomon rs(4, 6);
  const Bytes payload = random_payload(500, 31);
  const auto shards = rs.encode(payload);
  std::vector<std::optional<Bytes>> input(shards.begin(), shards.end());
  input[1].reset();
  input[3].reset();
  auto result = rs.try_decode(input);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), payload);
}

TEST(ReedSolomon, TryDecodeReportsErrorsWithoutThrowing) {
  const ReedSolomon rs(3, 5);
  const auto shards = rs.encode(random_payload(100, 41));

  {  // Not enough shards.
    std::vector<std::optional<Bytes>> input(5);
    input[0] = shards[0];
    const auto result = rs.try_decode(input);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.error().code, CodecErrorCode::kNotEnoughShards);
  }
  {  // Wrong slot count.
    std::vector<std::optional<Bytes>> input(4);
    const auto result = rs.try_decode(input);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.error().code, CodecErrorCode::kWrongShardCount);
  }
  {  // Mismatched sizes.
    std::vector<std::optional<Bytes>> input(shards.begin(), shards.end());
    input[2]->push_back(0);
    const auto result = rs.try_decode(input);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.error().code, CodecErrorCode::kShardSizeMismatch);
  }
  {  // Corrupt length prefix (shard 0 carries it).
    std::vector<std::optional<Bytes>> input(shards.begin(), shards.end());
    (*input[0])[0] = 0xff;
    (*input[0])[1] = 0xff;
    (*input[0])[2] = 0xff;
    (*input[0])[3] = 0xff;
    const auto result = rs.try_decode(input);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.error().code, CodecErrorCode::kCorruptPayload);
  }
}

TEST(ReedSolomon, TryDecodeAcceptsViews) {
  const ReedSolomon rs(3, 5);
  const Bytes payload = random_payload(300, 55);
  const auto shards = rs.encode(payload);
  std::vector<std::optional<BytesView>> views(5);
  // Give it exactly k shards, skipping shard 0 (non-systematic path).
  views[1] = BytesView(shards[1]);
  views[2] = BytesView(shards[2]);
  views[4] = BytesView(shards[4]);
  auto result = rs.try_decode(views);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), payload);
}

}  // namespace
}  // namespace predis::erasure
