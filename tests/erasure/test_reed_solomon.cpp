#include "erasure/reed_solomon.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace predis::erasure {
namespace {

Bytes random_payload(std::size_t size, std::uint64_t seed) {
  predis::Rng rng(seed);
  Bytes out(size);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.next());
  return out;
}

TEST(ReedSolomon, RoundTripAllShardsPresent) {
  const ReedSolomon rs(4, 6);
  const Bytes payload = random_payload(1000, 1);
  const auto shards = rs.encode(payload);
  ASSERT_EQ(shards.size(), 6u);

  std::vector<std::optional<Bytes>> input(shards.begin(), shards.end());
  EXPECT_EQ(rs.decode(input), payload);
}

TEST(ReedSolomon, SystematicPrefixIsPayload) {
  const ReedSolomon rs(4, 6);
  const Bytes payload = random_payload(396, 2);  // 4+396 = 400 = 4*100
  const auto shards = rs.encode(payload);
  // Data shards hold the length-prefixed payload verbatim.
  Bytes joined;
  for (std::size_t i = 0; i < 4; ++i) {
    joined.insert(joined.end(), shards[i].begin(), shards[i].end());
  }
  EXPECT_EQ(Bytes(joined.begin() + 4, joined.end()), payload);
}

/// Parameterized over (data shards, total shards).
class RsParamTest
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(RsParamTest, RecoversFromEveryMaximalLossPattern) {
  const auto [k, n] = GetParam();
  const ReedSolomon rs(k, n);
  const Bytes payload = random_payload(777, k * 31 + n);
  const auto shards = rs.encode(payload);

  // Drop every combination of n-k shards (bitmask sweep; n <= 10 here).
  const std::size_t m = n - k;
  std::vector<std::size_t> drop(m);
  std::function<void(std::size_t, std::size_t)> sweep =
      [&](std::size_t start, std::size_t depth) {
        if (depth == m) {
          std::vector<std::optional<Bytes>> input(shards.begin(),
                                                  shards.end());
          for (std::size_t d : drop) input[d].reset();
          EXPECT_EQ(rs.decode(input), payload);
          return;
        }
        for (std::size_t i = start; i < n; ++i) {
          drop[depth] = i;
          sweep(i + 1, depth + 1);
        }
      };
  sweep(0, 0);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, RsParamTest,
    ::testing::Values(std::pair<std::size_t, std::size_t>{1, 2},
                      std::pair<std::size_t, std::size_t>{2, 3},
                      std::pair<std::size_t, std::size_t>{3, 4},   // n_c=4,f=1
                      std::pair<std::size_t, std::size_t>{6, 8},   // n_c=8,f=2
                      std::pair<std::size_t, std::size_t>{4, 7},
                      std::pair<std::size_t, std::size_t>{5, 10}));

TEST(ReedSolomon, PaperConfiguration16Nodes) {
  // n_c = 16, f = 5: any 11 of 16 stripes rebuild the bundle.
  const ReedSolomon rs(11, 16);
  const Bytes payload = random_payload(25'600, 99);  // 50 txs x 512 B
  auto shards = rs.encode(payload);
  std::vector<std::optional<Bytes>> input(shards.begin(), shards.end());
  // Drop five parity + zero data, five data, and a mix.
  for (std::size_t d : {0u, 3u, 7u, 12u, 15u}) input[d].reset();
  EXPECT_EQ(rs.decode(input), payload);
}

TEST(ReedSolomon, TooFewShardsThrows) {
  const ReedSolomon rs(3, 5);
  const auto shards = rs.encode(random_payload(100, 5));
  std::vector<std::optional<Bytes>> input(5);
  input[0] = shards[0];
  input[4] = shards[4];
  EXPECT_THROW(rs.decode(input), std::invalid_argument);
}

TEST(ReedSolomon, MismatchedShardSizesThrow) {
  const ReedSolomon rs(2, 4);
  auto shards = rs.encode(random_payload(100, 6));
  std::vector<std::optional<Bytes>> input(shards.begin(), shards.end());
  input[1]->push_back(0);
  EXPECT_THROW(rs.decode(input), std::invalid_argument);
}

TEST(ReedSolomon, WrongShardCountThrows) {
  const ReedSolomon rs(2, 4);
  std::vector<std::optional<Bytes>> input(3);
  EXPECT_THROW(rs.decode(input), std::invalid_argument);
}

TEST(ReedSolomon, InvalidParametersThrow) {
  EXPECT_THROW(ReedSolomon(0, 4), std::invalid_argument);
  EXPECT_THROW(ReedSolomon(5, 4), std::invalid_argument);
  EXPECT_THROW(ReedSolomon(4, 300), std::invalid_argument);
}

TEST(ReedSolomon, EmptyPayloadRoundTrips) {
  const ReedSolomon rs(3, 5);
  const auto shards = rs.encode(Bytes{});
  std::vector<std::optional<Bytes>> input(shards.begin(), shards.end());
  input[0].reset();
  input[2].reset();
  EXPECT_TRUE(rs.decode(input).empty());
}

TEST(ReedSolomon, ReconstructAllRebuildsMissingStripes) {
  const ReedSolomon rs(3, 5);
  const Bytes payload = random_payload(512, 7);
  const auto shards = rs.encode(payload);

  std::vector<std::optional<Bytes>> input(shards.begin(), shards.end());
  input[1].reset();
  input[4].reset();
  const auto rebuilt = rs.reconstruct_all(input);
  ASSERT_EQ(rebuilt.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(rebuilt[i], shards[i]) << "stripe " << i;
  }
}

TEST(ReedSolomon, LargePayloadRoundTrip) {
  const ReedSolomon rs(6, 8);
  const Bytes payload = random_payload(1 << 20, 11);  // 1 MB
  auto shards = rs.encode(payload);
  std::vector<std::optional<Bytes>> input(shards.begin(), shards.end());
  input[0].reset();
  input[5].reset();
  EXPECT_EQ(rs.decode(input), payload);
}

TEST(ReedSolomon, CodingMatrixIsSystematic) {
  const ReedSolomon rs(4, 7);
  const Matrix& m = rs.coding_matrix();
  for (std::size_t r = 0; r < 4; ++r) {
    for (std::size_t c = 0; c < 4; ++c) {
      EXPECT_EQ(m.at(r, c), r == c ? 1 : 0);
    }
  }
}

}  // namespace
}  // namespace predis::erasure
