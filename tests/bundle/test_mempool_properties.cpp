// Property tests on the mempool: the final state is independent of the
// delivery order of valid bundles, and the cutting rule is monotone in
// the information available.
#include <gtest/gtest.h>

#include "bundle/mempool.hpp"
#include "common/rng.hpp"

namespace predis {
namespace {

constexpr std::size_t kN = 4;

std::vector<PublicKey> keys() {
  std::vector<PublicKey> out;
  for (std::size_t i = 0; i < kN; ++i) {
    out.push_back(KeyPair::from_seed(i).public_key());
  }
  return out;
}

/// Deterministic set of valid bundles: every chain filled to `height`.
std::vector<Bundle> make_bundles(BundleHeight height) {
  std::vector<Bundle> all;
  for (std::size_t producer = 0; producer < kN; ++producer) {
    Hash32 parent = kZeroHash;
    for (BundleHeight h = 1; h <= height; ++h) {
      Transaction tx;
      tx.client = 8;
      tx.seq = producer * 1000 + h;
      Bundle b = make_bundle(static_cast<NodeId>(producer), h, parent,
                             std::vector<BundleHeight>(kN, h), {tx},
                             KeyPair::from_seed(producer));
      parent = b.header.hash();
      all.push_back(std::move(b));
    }
  }
  return all;
}

class MempoolOrderProperty : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(MempoolOrderProperty, FinalStateIndependentOfDeliveryOrder) {
  const BundleHeight height = 6;
  std::vector<Bundle> bundles = make_bundles(height);
  Rng rng(GetParam());
  rng.shuffle(bundles);

  Mempool mp(kN, keys());
  for (const Bundle& b : bundles) {
    const AddBundleResult r = mp.add(b);
    // Any order yields only "added" or "buffered for parent".
    ASSERT_TRUE(r == AddBundleResult::kAdded ||
                r == AddBundleResult::kMissingParent)
        << to_string(r);
  }
  // Regardless of order, everything lands and chains are contiguous.
  for (std::size_t chain = 0; chain < kN; ++chain) {
    EXPECT_EQ(mp.chain(chain).contiguous_height(), height);
    EXPECT_EQ(mp.pending_count(chain), 0u);
  }
  // And the cut equals the in-order reference cut.
  Mempool reference(kN, keys());
  for (const Bundle& b : make_bundles(height)) reference.add(b);
  EXPECT_EQ(compute_cut(mp, 0, 1), compute_cut(reference, 0, 1));
}

INSTANTIATE_TEST_SUITE_P(Seeds, MempoolOrderProperty,
                         ::testing::Range<std::uint64_t>(1, 21));

TEST(MempoolProperty, CutIsMonotoneInReceivedBundles) {
  // Adding more bundles never lowers any component of the cut.
  const auto bundles = make_bundles(8);
  Mempool mp(kN, keys());
  std::vector<BundleHeight> previous(kN, 0);
  for (const Bundle& b : bundles) {
    mp.add(b);
    const auto cut = compute_cut(mp, 0, 1);
    for (std::size_t i = 0; i < kN; ++i) {
      EXPECT_GE(cut[i], previous[i]);
    }
    previous = cut;
  }
}

TEST(MempoolProperty, DuplicateDeliveryIsIdempotent) {
  const auto bundles = make_bundles(4);
  Mempool once(kN, keys());
  Mempool twice(kN, keys());
  for (const Bundle& b : bundles) once.add(b);
  for (const Bundle& b : bundles) twice.add(b);
  for (const Bundle& b : bundles) twice.add(b);  // replay everything

  for (std::size_t chain = 0; chain < kN; ++chain) {
    EXPECT_EQ(once.chain(chain).contiguous_height(),
              twice.chain(chain).contiguous_height());
  }
  EXPECT_EQ(compute_cut(once, 2, 1), compute_cut(twice, 2, 1));
}

}  // namespace
}  // namespace predis
