#include "bundle/bundle.hpp"

#include <gtest/gtest.h>

namespace predis {
namespace {

std::vector<Transaction> make_txs(std::size_t n, NodeId client = 9) {
  std::vector<Transaction> txs;
  for (std::size_t i = 0; i < n; ++i) {
    Transaction tx;
    tx.client = client;
    tx.seq = i;
    tx.size = 512;
    tx.payload_seed = 1000 + i;
    txs.push_back(tx);
  }
  return txs;
}

TEST(Bundle, MakeBundleSignsAndVerifies) {
  const KeyPair key = KeyPair::from_seed(100);
  const Bundle b =
      make_bundle(0, 1, kZeroHash, {1, 0, 0, 0}, make_txs(5), key);
  EXPECT_TRUE(verify_bundle_signature(b.header, key.public_key()));
  EXPECT_EQ(b.header.tx_root, Bundle::tx_root_of(b.txs));
}

TEST(Bundle, WrongKeyFailsVerification) {
  const Bundle b = make_bundle(0, 1, kZeroHash, {1, 0, 0, 0}, make_txs(3),
                               KeyPair::from_seed(101));
  EXPECT_FALSE(verify_bundle_signature(
      b.header, KeyPair::from_seed(102).public_key()));
}

TEST(Bundle, TamperedHeaderFailsVerification) {
  const KeyPair key = KeyPair::from_seed(103);
  Bundle b = make_bundle(0, 1, kZeroHash, {1, 0, 0, 0}, make_txs(3), key);
  b.header.height = 2;
  EXPECT_FALSE(verify_bundle_signature(b.header, key.public_key()));
}

TEST(Bundle, HeaderHashBindsAllFields) {
  const KeyPair key = KeyPair::from_seed(104);
  const Bundle base =
      make_bundle(0, 1, kZeroHash, {1, 0, 0, 0}, make_txs(3), key);

  BundleHeader h = base.header;
  h.height = 2;
  EXPECT_NE(h.hash(), base.header.hash());

  h = base.header;
  h.tip_list[1] = 5;
  EXPECT_NE(h.hash(), base.header.hash());

  h = base.header;
  h.parent_hash = Sha256::hash(as_bytes(std::string("x")));
  EXPECT_NE(h.hash(), base.header.hash());

  // The signature is not part of the identity hash.
  h = base.header;
  h.signature[0] ^= 0xff;
  EXPECT_EQ(h.hash(), base.header.hash());
}

TEST(Bundle, HeaderEncodeDecodeRoundTrip) {
  const KeyPair key = KeyPair::from_seed(105);
  const Bundle b =
      make_bundle(2, 7, Sha256::hash(as_bytes(std::string("parent"))),
                  {3, 4, 7, 1}, make_txs(2), key);
  Writer w;
  b.header.encode(w);
  EXPECT_EQ(w.size(), b.header.wire_size());

  Reader r(w.data());
  const BundleHeader decoded = BundleHeader::decode(r);
  EXPECT_EQ(decoded, b.header);
  EXPECT_TRUE(r.done());
}

TEST(Bundle, TxRootOfEmptyIsZero) {
  EXPECT_EQ(Bundle::tx_root_of({}), kZeroHash);
}

TEST(Bundle, TxRootOrderSensitive) {
  auto txs = make_txs(4);
  const Hash32 root = Bundle::tx_root_of(txs);
  std::swap(txs[0], txs[1]);
  EXPECT_NE(Bundle::tx_root_of(txs), root);
}

TEST(Bundle, WireSizeAccountsForPayload) {
  const KeyPair key = KeyPair::from_seed(106);
  const Bundle small =
      make_bundle(0, 1, kZeroHash, {1, 0, 0, 0}, make_txs(1), key);
  const Bundle large =
      make_bundle(0, 1, kZeroHash, {1, 0, 0, 0}, make_txs(50), key);
  EXPECT_GT(large.wire_size(), small.wire_size() + 49 * 512);
}

TEST(Bundle, EmptyBundleIsSmall) {
  const KeyPair key = KeyPair::from_seed(107);
  const Bundle b = make_bundle(0, 1, kZeroHash, {1, 0, 0, 0}, {}, key);
  EXPECT_LT(b.wire_size(), 300u);  // headers only
}

}  // namespace
}  // namespace predis
