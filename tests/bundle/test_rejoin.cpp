// §III-E forking attack: ban, rejoin with a new genesis bundle.
#include <gtest/gtest.h>

#include "bundle/mempool.hpp"

namespace predis {
namespace {

constexpr std::size_t kN = 4;

std::vector<PublicKey> keys() {
  std::vector<PublicKey> out;
  for (std::size_t i = 0; i < kN; ++i) {
    out.push_back(KeyPair::from_seed(i).public_key());
  }
  return out;
}

Bundle chain_bundle(NodeId producer, BundleHeight h, const Hash32& parent,
                    std::uint64_t tag) {
  Transaction tx;
  tx.client = 5;
  tx.seq = tag;
  return make_bundle(producer, h, parent, std::vector<BundleHeight>(kN, h),
                     {tx}, KeyPair::from_seed(producer));
}

TEST(Rejoin, AllowRejoinDiscardsUnconfirmedSuffixAndUnbans) {
  Mempool mp(kN, keys());
  Hash32 parent = kZeroHash;
  for (BundleHeight h = 1; h <= 5; ++h) {
    const Bundle b = chain_bundle(0, h, parent, h);
    parent = b.header.hash();
    ASSERT_EQ(mp.add(b), AddBundleResult::kAdded);
  }
  mp.confirm({2, 0, 0, 0});
  mp.ban(0);
  ASSERT_TRUE(mp.is_banned(0));

  mp.allow_rejoin(0);
  EXPECT_FALSE(mp.is_banned(0));
  EXPECT_TRUE(mp.rejoin_pending(0));
  // Unconfirmed suffix (heights 3-5) discarded; confirmed prefix kept.
  EXPECT_TRUE(mp.chain(0).has(2));
  EXPECT_FALSE(mp.chain(0).has(3));
  EXPECT_EQ(mp.chain(0).contiguous_height(), 2u);
}

TEST(Rejoin, NewGenesisBundleAcceptedOnceAtConfirmedHeight) {
  Mempool mp(kN, keys());
  Hash32 parent = kZeroHash;
  for (BundleHeight h = 1; h <= 3; ++h) {
    const Bundle b = chain_bundle(1, h, parent, h);
    parent = b.header.hash();
    ASSERT_EQ(mp.add(b), AddBundleResult::kAdded);
  }
  mp.confirm({0, 3, 0, 0});
  mp.ban(1);
  mp.allow_rejoin(1);

  // The rejoin genesis chains from the null parent at confirmed + 1.
  const Bundle genesis = chain_bundle(1, 4, kZeroHash, 100);
  EXPECT_EQ(mp.add(genesis), AddBundleResult::kAdded);
  EXPECT_FALSE(mp.rejoin_pending(1));
  EXPECT_EQ(mp.chain(1).contiguous_height(), 4u);

  // The chain continues normally from the new genesis.
  const Bundle next = chain_bundle(1, 5, genesis.header.hash(), 101);
  EXPECT_EQ(mp.add(next), AddBundleResult::kAdded);
}

TEST(Rejoin, ZeroParentRejectedWithoutArmedSlot) {
  Mempool mp(kN, keys());
  const Bundle b1 = chain_bundle(2, 1, kZeroHash, 1);
  ASSERT_EQ(mp.add(b1), AddBundleResult::kAdded);
  // A mid-chain zero-parent bundle is just an orphan, not a restart.
  const Bundle fake = chain_bundle(2, 3, kZeroHash, 2);
  EXPECT_EQ(mp.add(fake), AddBundleResult::kMissingParent);
}

TEST(Rejoin, RejoinAtWrongHeightNotAccepted) {
  Mempool mp(kN, keys());
  const Bundle b1 = chain_bundle(3, 1, kZeroHash, 1);
  ASSERT_EQ(mp.add(b1), AddBundleResult::kAdded);
  mp.confirm({0, 0, 0, 1});
  mp.ban(3);
  mp.allow_rejoin(3);
  // Slot is armed for height 2; a zero-parent bundle at height 5 does
  // not match it.
  const Bundle wrong = chain_bundle(3, 5, kZeroHash, 2);
  EXPECT_EQ(mp.add(wrong), AddBundleResult::kMissingParent);
  EXPECT_TRUE(mp.rejoin_pending(3));
}

TEST(Rejoin, SecondRestartNeedsANewGrant) {
  Mempool mp(kN, keys());
  mp.ban(0);
  mp.allow_rejoin(0);
  const Bundle genesis = chain_bundle(0, 1, kZeroHash, 1);
  ASSERT_EQ(mp.add(genesis), AddBundleResult::kAdded);
  // Another zero-parent bundle at the same height now conflicts.
  const Bundle again = chain_bundle(0, 1, kZeroHash, 2);
  EXPECT_EQ(mp.add(again), AddBundleResult::kConflict);
  EXPECT_TRUE(mp.is_banned(0));
}

}  // namespace
}  // namespace predis
