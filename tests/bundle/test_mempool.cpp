#include "bundle/mempool.hpp"

#include <gtest/gtest.h>

namespace predis {
namespace {

constexpr std::size_t kN = 4;

struct MempoolFixture : ::testing::Test {
  MempoolFixture() : mempool(kN, make_keys()) {}

  static std::vector<PublicKey> make_keys() {
    std::vector<PublicKey> keys;
    for (std::size_t i = 0; i < kN; ++i) {
      keys.push_back(KeyPair::from_seed(i).public_key());
    }
    return keys;
  }

  std::vector<Transaction> txs(std::size_t n, std::uint64_t tag) {
    std::vector<Transaction> out;
    for (std::size_t i = 0; i < n; ++i) {
      Transaction tx;
      tx.client = 50;
      tx.seq = tag * 1000 + i;
      out.push_back(tx);
    }
    return out;
  }

  /// Append the next bundle to chain `producer` with given tips.
  Bundle next_bundle(NodeId producer, std::vector<BundleHeight> tips,
                     std::size_t tx_count = 2) {
    const BundleHeight h = heights[producer] + 1;
    Bundle b = make_bundle(producer, h, parents[producer], std::move(tips),
                           txs(tx_count, producer * 100 + h),
                           KeyPair::from_seed(producer));
    heights[producer] = h;
    parents[producer] = b.header.hash();
    return b;
  }

  Mempool mempool;
  std::array<BundleHeight, kN> heights{};
  std::array<Hash32, kN> parents{kZeroHash, kZeroHash, kZeroHash, kZeroHash};
};

TEST_F(MempoolFixture, AddValidChain) {
  for (int i = 0; i < 3; ++i) {
    const Bundle b = next_bundle(0, {heights[0] + 1, 0, 0, 0});
    EXPECT_EQ(mempool.add(b), AddBundleResult::kAdded);
  }
  EXPECT_EQ(mempool.chain(0).contiguous_height(), 3u);
  EXPECT_EQ(mempool.tip_list(), (std::vector<BundleHeight>{3, 0, 0, 0}));
}

TEST_F(MempoolFixture, DuplicateDetected) {
  const Bundle b = next_bundle(1, {0, 1, 0, 0});
  EXPECT_EQ(mempool.add(b), AddBundleResult::kAdded);
  EXPECT_EQ(mempool.add(b), AddBundleResult::kDuplicate);
}

TEST_F(MempoolFixture, OutOfOrderBundlesBufferAndRetry) {
  const Bundle b1 = next_bundle(0, {1, 0, 0, 0});
  const Bundle b2 = next_bundle(0, {2, 0, 0, 0});
  const Bundle b3 = next_bundle(0, {3, 0, 0, 0});

  EXPECT_EQ(mempool.add(b3), AddBundleResult::kMissingParent);
  EXPECT_EQ(mempool.add(b2), AddBundleResult::kMissingParent);
  EXPECT_EQ(mempool.pending_count(0), 2u);
  // The parent arrival replays the buffered children in order.
  EXPECT_EQ(mempool.add(b1), AddBundleResult::kAdded);
  EXPECT_EQ(mempool.chain(0).contiguous_height(), 3u);
  EXPECT_EQ(mempool.pending_count(0), 0u);
}

TEST_F(MempoolFixture, ConflictingBundleBansProducer) {
  const Bundle good = next_bundle(2, {0, 0, 1, 0});
  EXPECT_EQ(mempool.add(good), AddBundleResult::kAdded);

  // Same height/parent, different content — equivocation.
  Bundle evil = make_bundle(2, 1, kZeroHash, {0, 0, 1, 0}, txs(3, 777),
                            KeyPair::from_seed(2));
  ConflictEvidence evidence;
  EXPECT_EQ(mempool.add(evil, &evidence), AddBundleResult::kConflict);
  EXPECT_TRUE(mempool.is_banned(2));
  EXPECT_EQ(evidence.first.producer, 2u);
  EXPECT_NE(evidence.first.hash(), evidence.second.hash());

  // Further bundles from the banned producer are rejected outright.
  const Bundle b2 = next_bundle(2, {0, 0, 2, 0});
  EXPECT_EQ(mempool.add(b2), AddBundleResult::kBannedProducer);

  mempool.unban(2);
  EXPECT_FALSE(mempool.is_banned(2));
}

TEST_F(MempoolFixture, StaleTipListRejected) {
  Bundle b1 = next_bundle(0, {1, 5, 0, 0});
  EXPECT_EQ(mempool.add(b1), AddBundleResult::kAdded);
  // Child whose tip list regresses on chain 1 violates rule 3.
  Bundle b2 = make_bundle(0, 2, parents[0], {2, 4, 0, 0}, txs(1, 9),
                          KeyPair::from_seed(0));
  EXPECT_EQ(mempool.add(b2), AddBundleResult::kStaleTips);
}

TEST_F(MempoolFixture, ForgedSignatureRejected) {
  Bundle b = make_bundle(0, 1, kZeroHash, {1, 0, 0, 0}, txs(1, 1),
                         KeyPair::from_seed(99));  // not producer 0's key
  EXPECT_EQ(mempool.add(b), AddBundleResult::kBadSignature);
}

TEST_F(MempoolFixture, TamperedTransactionsRejected) {
  Bundle b = next_bundle(0, {1, 0, 0, 0});
  b.txs.push_back(txs(1, 5)[0]);  // body no longer matches tx_root
  EXPECT_EQ(mempool.add(b), AddBundleResult::kBadTxRoot);
}

TEST_F(MempoolFixture, MalformedBundlesRejected) {
  // Unknown chain id.
  Bundle bad = make_bundle(7, 1, kZeroHash, {0, 0, 0, 0}, txs(1, 1),
                           KeyPair::from_seed(7));
  EXPECT_EQ(mempool.add(bad), AddBundleResult::kInvalid);
  // Wrong tip list arity.
  Bundle short_tips = make_bundle(0, 1, kZeroHash, {1}, txs(1, 2),
                                  KeyPair::from_seed(0));
  EXPECT_EQ(mempool.add(short_tips), AddBundleResult::kInvalid);
  // Height 1 must chain from the zero hash.
  Bundle bad_parent =
      make_bundle(0, 1, Sha256::hash(as_bytes(std::string("x"))),
                  {1, 0, 0, 0}, txs(1, 3), KeyPair::from_seed(0));
  EXPECT_EQ(mempool.add(bad_parent), AddBundleResult::kInvalid);
}

TEST_F(MempoolFixture, TipMatrixReflectsLatestBundles) {
  EXPECT_EQ(mempool.add(next_bundle(0, {1, 0, 0, 0})),
            AddBundleResult::kAdded);
  EXPECT_EQ(mempool.add(next_bundle(1, {1, 1, 0, 0})),
            AddBundleResult::kAdded);
  const auto matrix = mempool.tip_matrix();
  EXPECT_EQ(matrix[0], (std::vector<BundleHeight>{1, 0, 0, 0}));
  EXPECT_EQ(matrix[1], (std::vector<BundleHeight>{1, 1, 0, 0}));
  EXPECT_EQ(matrix[2], (std::vector<BundleHeight>{0, 0, 0, 0}));
}

TEST_F(MempoolFixture, ConfirmAdvancesMonotonicallyAndPrunes) {
  mempool.set_gc_retention(1);
  for (int i = 0; i < 5; ++i) {
    ASSERT_EQ(mempool.add(next_bundle(0, {heights[0] + 1, 0, 0, 0})),
              AddBundleResult::kAdded);
  }
  mempool.confirm({4, 0, 0, 0});
  EXPECT_EQ(mempool.confirmed(), (std::vector<BundleHeight>{4, 0, 0, 0}));
  // Bundles below confirmed - retention are gone; recent ones remain.
  EXPECT_FALSE(mempool.chain(0).has(1));
  EXPECT_FALSE(mempool.chain(0).has(2));
  EXPECT_TRUE(mempool.chain(0).has(3));
  EXPECT_TRUE(mempool.chain(0).has(5));

  // Confirm never regresses.
  mempool.confirm({2, 0, 0, 0});
  EXPECT_EQ(mempool.confirmed()[0], 4u);
}

TEST_F(MempoolFixture, WrongConfirmAritythrows) {
  EXPECT_THROW(mempool.confirm({1, 2}), std::invalid_argument);
}

TEST_F(MempoolFixture, OnConflictHookMirrorsEvidenceOutParam) {
  const Bundle b1 = next_bundle(2, {0, 0, 1, 0});
  ASSERT_EQ(mempool.add(b1), AddBundleResult::kAdded);

  std::size_t calls = 0;
  ConflictEvidence hooked;
  mempool.on_conflict = [&](NodeId producer, const ConflictEvidence& ev) {
    ++calls;
    EXPECT_EQ(producer, 2u);
    hooked = ev;
  };

  Bundle evil = make_bundle(2, 1, kZeroHash, {0, 0, 1, 0}, txs(3, 777),
                            KeyPair::from_seed(2));
  ConflictEvidence evidence;
  EXPECT_EQ(mempool.add(evil, &evidence), AddBundleResult::kConflict);
  EXPECT_EQ(calls, 1u);
  EXPECT_EQ(hooked.first.hash(), evidence.first.hash());
  EXPECT_EQ(hooked.second.hash(), evidence.second.hash());
}

// Regression: a conflicting child can arrive BEFORE its parent, park in
// the out-of-order buffer, and only be detected inside retry_pending —
// a path with no caller-supplied evidence out-param. The hook is the
// only way that evidence escapes; it used to be dropped on the floor.
TEST_F(MempoolFixture, RetryPendingSurfacesBufferedConflictEvidence) {
  std::size_t calls = 0;
  ConflictEvidence hooked;
  mempool.on_conflict = [&](NodeId producer, const ConflictEvidence& ev) {
    ++calls;
    EXPECT_EQ(producer, 2u);
    hooked = ev;
  };

  const Bundle b1 = make_bundle(2, 1, kZeroHash, {0, 0, 1, 0}, txs(1, 1),
                                KeyPair::from_seed(2));
  const Hash32 bogus = Sha256::hash(as_bytes(std::string("fork")));
  const Bundle evil_child = make_bundle(2, 2, bogus, {0, 0, 2, 0},
                                        txs(1, 2), KeyPair::from_seed(2));

  // Child first: buffered, no conflict visible yet.
  EXPECT_EQ(mempool.add(evil_child), AddBundleResult::kMissingParent);
  EXPECT_EQ(calls, 0u);
  EXPECT_FALSE(mempool.is_banned(2));

  // Parent lands; retry_pending pops the child and hits the fork.
  EXPECT_EQ(mempool.add(b1), AddBundleResult::kAdded);
  EXPECT_EQ(calls, 1u);
  EXPECT_TRUE(mempool.is_banned(2));
  EXPECT_EQ(hooked.first.hash(), b1.header.hash());
  EXPECT_EQ(hooked.second.hash(), evil_child.header.hash());
}

}  // namespace
}  // namespace predis
