// The cutting rule (§III-B): the leader cuts every chain at the height
// the fastest n_c − f nodes have reached, clamped to what the leader
// itself holds and floored at the confirmed height.
#include <gtest/gtest.h>

#include "bundle/mempool.hpp"
#include "common/rng.hpp"

namespace predis {
namespace {

/// Build a mempool holding `own[i]` bundles on every chain i, where the
/// latest bundle of chain j carries tip list `tips[j]`.
class CutFixture {
 public:
  explicit CutFixture(std::size_t n) : n_(n), mempool_(n, keys(n)) {}

  static std::vector<PublicKey> keys(std::size_t n) {
    std::vector<PublicKey> out;
    for (std::size_t i = 0; i < n; ++i) {
      out.push_back(KeyPair::from_seed(i).public_key());
    }
    return out;
  }

  /// Fill chain `producer` up to `height`; every bundle carries
  /// `final_tips` as its tip list (only the latest matters for the cut).
  void fill_chain(NodeId producer, BundleHeight height,
                  std::vector<BundleHeight> final_tips) {
    Hash32 parent = kZeroHash;
    for (BundleHeight h = 1; h <= height; ++h) {
      Bundle b = make_bundle(producer, h, parent, final_tips, {},
                             KeyPair::from_seed(producer));
      parent = b.header.hash();
      ASSERT_EQ(mempool_.add(b), AddBundleResult::kAdded);
    }
  }

  Mempool& mempool() { return mempool_; }
  std::size_t n() const { return n_; }

 private:
  std::size_t n_;
  Mempool mempool_;
};

TEST(CuttingRule, PaperFigure1Example) {
  // Fig. 1: leader node 1 holds chains of heights [5, 6, 5, 5] (its own
  // tip list, shown in the figure). With the producers' latest tip
  // lists below, the fastest n_c − f = 3 nodes determine the cut, and
  // the paper's resulting bundle-height list is [5, 5, 4, 4].
  CutFixture fx(4);
  fx.fill_chain(0, 5, {5, 6, 5, 5});  // leader's chain
  fx.fill_chain(1, 6, {5, 6, 4, 4});
  fx.fill_chain(2, 5, {5, 5, 5, 4});
  fx.fill_chain(3, 5, {4, 4, 4, 5});

  const auto cut = compute_cut(fx.mempool(), /*leader=*/0, /*f=*/1);
  EXPECT_EQ(cut, (std::vector<BundleHeight>{5, 5, 4, 4}));
}

TEST(CuttingRule, LeaderCannotCutBeyondItsOwnChainKnowledge) {
  CutFixture fx(4);
  // Peers report chain 3 at height 9, but the leader only holds 2.
  fx.fill_chain(0, 2, {2, 0, 0, 2});
  fx.fill_chain(1, 1, {0, 1, 0, 9});
  fx.fill_chain(2, 1, {0, 0, 1, 9});
  fx.fill_chain(3, 2, {0, 0, 0, 9});

  const auto cut = compute_cut(fx.mempool(), 0, 1);
  EXPECT_EQ(cut[3], 2u);  // clamped to the leader's contiguous height
}

TEST(CuttingRule, BannedChainNeverAdvances) {
  CutFixture fx(4);
  fx.fill_chain(0, 3, {3, 3, 3, 3});
  fx.fill_chain(1, 3, {3, 3, 3, 3});
  fx.fill_chain(2, 3, {3, 3, 3, 3});
  fx.fill_chain(3, 3, {3, 3, 3, 3});
  fx.mempool().ban(2);

  const auto cut = compute_cut(fx.mempool(), 0, 1);
  EXPECT_EQ(cut[2], 0u);
  EXPECT_EQ(cut[0], 3u);
}

TEST(CuttingRule, FloorsAtConfirmedHeights) {
  CutFixture fx(4);
  fx.fill_chain(0, 4, {4, 0, 0, 0});
  fx.mempool().confirm({3, 0, 0, 0});
  const auto cut = compute_cut(fx.mempool(), 0, 1);
  // Nobody else reports chain 0, but the confirmed floor holds.
  EXPECT_GE(cut[0], 3u);
}

TEST(CuttingRule, EmptyMempoolCutsNothing) {
  CutFixture fx(4);
  EXPECT_EQ(compute_cut(fx.mempool(), 0, 1),
            (std::vector<BundleHeight>(4, 0)));
}

/// Property: for every chain, the cut height is reported as received by
/// at least n − f nodes (counting the leader's own knowledge).
class CutQuorumProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CutQuorumProperty, QuorumHoldsUnderRandomTipMatrices) {
  Rng rng(GetParam());
  const std::size_t n = 4;
  const std::size_t f = 1;
  CutFixture fx(n);

  // Random own heights and tip lists (tips <= 12).
  std::vector<std::vector<BundleHeight>> tips(n);
  std::vector<BundleHeight> own(n);
  for (std::size_t j = 0; j < n; ++j) {
    own[j] = 1 + rng.next_below(12);
    tips[j].resize(n);
    for (std::size_t i = 0; i < n; ++i) tips[j][i] = rng.next_below(13);
    tips[j][j] = own[j];  // producers know their own chain
    fx.fill_chain(static_cast<NodeId>(j), own[j], tips[j]);
  }

  const NodeId leader = static_cast<NodeId>(rng.next_below(n));
  const auto cut = compute_cut(fx.mempool(), leader, f);
  const auto own_tips = fx.mempool().tip_list();

  for (std::size_t i = 0; i < n; ++i) {
    if (cut[i] == 0) continue;
    // Count nodes that (by their latest tip list, or the leader's own
    // mempool) have received chain i up to the cut height.
    std::size_t have = 0;
    for (std::size_t j = 0; j < n; ++j) {
      const BundleHeight reported =
          (j == leader) ? own_tips[i] : tips[j][i];
      if (reported >= cut[i]) ++have;
    }
    EXPECT_GE(have, n - f) << "chain " << i << " cut " << cut[i];
    // And the leader must actually hold the cut bundle.
    EXPECT_TRUE(fx.mempool().chain(i).has(cut[i]));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CutQuorumProperty,
                         ::testing::Range<std::uint64_t>(1, 33));

}  // namespace
}  // namespace predis
