// Predis block construction/verification (§III-B) and the paper's
// Theorems 3.1-3.3 (consistency of bundles and Predis blocks), plus the
// headline O(n_c) block-size property.
#include "bundle/predis_block.hpp"

#include <gtest/gtest.h>

namespace predis {
namespace {

constexpr std::size_t kN = 4;
constexpr std::size_t kF = 1;

std::vector<PublicKey> producer_keys() {
  std::vector<PublicKey> keys;
  for (std::size_t i = 0; i < kN; ++i) {
    keys.push_back(KeyPair::from_seed(i).public_key());
  }
  return keys;
}

std::vector<Transaction> make_txs(std::size_t n, std::uint64_t tag) {
  std::vector<Transaction> txs;
  for (std::size_t i = 0; i < n; ++i) {
    Transaction tx;
    tx.client = 42;
    tx.seq = tag * 10'000 + i;
    txs.push_back(tx);
  }
  return txs;
}

/// Mempool where every chain has `height` bundles of `txs_per_bundle`
/// transactions and fully up-to-date tip lists.
Mempool full_mempool(BundleHeight height, std::size_t txs_per_bundle) {
  Mempool mp(kN, producer_keys());
  for (std::size_t producer = 0; producer < kN; ++producer) {
    Hash32 parent = kZeroHash;
    for (BundleHeight h = 1; h <= height; ++h) {
      std::vector<BundleHeight> tips(kN, height);
      Bundle b = make_bundle(static_cast<NodeId>(producer), h, parent,
                             std::move(tips),
                             make_txs(txs_per_bundle, producer * 100 + h),
                             KeyPair::from_seed(producer));
      parent = b.header.hash();
      if (mp.add(b) != AddBundleResult::kAdded) {
        throw std::logic_error("fixture bundle rejected");
      }
    }
  }
  return mp;
}

const KeyPair& leader_key() {
  static const KeyPair key = KeyPair::from_seed(0);
  return key;
}

TEST(PredisBlock, BuildAndVerifyOk) {
  const Mempool mp = full_mempool(3, 5);
  const PredisBlock block = build_predis_block(
      mp, 0, kF, 1, 0, kZeroHash, std::vector<BundleHeight>(kN, 0),
      leader_key());

  EXPECT_EQ(block.cut_heights, std::vector<BundleHeight>(kN, 3));
  EXPECT_EQ(block.header_hashes.size(), kN);
  EXPECT_EQ(verify_predis_block(mp, block, leader_key().public_key()),
            BlockVerifyResult::kOk);
  EXPECT_EQ(block.tx_count(mp), kN * 3 * 5);
}

TEST(PredisBlock, ExtractTransactionsCanonicalOrder) {
  const Mempool mp = full_mempool(2, 3);
  const PredisBlock block = build_predis_block(
      mp, 0, kF, 1, 0, kZeroHash, std::vector<BundleHeight>(kN, 0),
      leader_key());
  const auto txs = extract_transactions(mp, block);
  ASSERT_EQ(txs.size(), kN * 2 * 3);
  // Chain-major, height order: first tx comes from chain 0 height 1.
  EXPECT_EQ(txs[0], mp.chain(0).get(1)->txs[0]);
  EXPECT_EQ(txs.back(), mp.chain(kN - 1).get(2)->txs.back());
}

TEST(PredisBlock, IncrementalBlocksChain) {
  const Mempool mp = full_mempool(4, 2);
  const PredisBlock b1 = build_predis_block(
      mp, 0, kF, 1, 0, kZeroHash, std::vector<BundleHeight>(kN, 0),
      leader_key());
  // Second block on top of the first confirms nothing new (no new
  // bundles arrived), so its header list is empty.
  const PredisBlock b2 = build_predis_block(mp, 0, kF, 2, 0, b1.hash(),
                                            b1.cut_heights, leader_key());
  EXPECT_TRUE(b2.header_hashes.empty());
  EXPECT_EQ(b2.prev_heights, b1.cut_heights);
}

TEST(PredisBlock, VerifyDetectsMissingBundles) {
  const Mempool full = full_mempool(3, 2);
  const PredisBlock block = build_predis_block(
      full, 0, kF, 1, 0, kZeroHash, std::vector<BundleHeight>(kN, 0),
      leader_key());

  // A receiver that lacks chain 2 entirely.
  Mempool sparse(kN, producer_keys());
  for (std::size_t producer = 0; producer < kN; ++producer) {
    if (producer == 2) continue;
    for (BundleHeight h = 1; h <= 3; ++h) {
      sparse.add(*full.chain(producer).get(h));
    }
  }
  std::vector<MissingBundleRef> missing;
  EXPECT_EQ(verify_predis_block(sparse, block, leader_key().public_key(),
                                &missing),
            BlockVerifyResult::kMissingBundles);
  ASSERT_EQ(missing.size(), 3u);
  EXPECT_EQ(missing[0], (MissingBundleRef{2, 1}));
  EXPECT_EQ(missing[2], (MissingBundleRef{2, 3}));
}

TEST(PredisBlock, VerifyRejectsBannedProducer) {
  Mempool mp = full_mempool(2, 2);
  const PredisBlock block = build_predis_block(
      mp, 0, kF, 1, 0, kZeroHash, std::vector<BundleHeight>(kN, 0),
      leader_key());
  mp.ban(1);
  EXPECT_EQ(verify_predis_block(mp, block, leader_key().public_key()),
            BlockVerifyResult::kBannedProducer);
}

TEST(PredisBlock, VerifyRejectsForgedSignature) {
  const Mempool mp = full_mempool(2, 2);
  PredisBlock block = build_predis_block(
      mp, 0, kF, 1, 0, kZeroHash, std::vector<BundleHeight>(kN, 0),
      leader_key());
  block.signature[5] ^= 0x01;
  EXPECT_EQ(verify_predis_block(mp, block, leader_key().public_key()),
            BlockVerifyResult::kBadSignature);
}

TEST(PredisBlock, VerifyRejectsStructuralGarbage) {
  const Mempool mp = full_mempool(2, 2);
  PredisBlock block = build_predis_block(
      mp, 0, kF, 1, 0, kZeroHash, std::vector<BundleHeight>(kN, 0),
      leader_key());

  PredisBlock bad = block;
  bad.cut_heights[0] = 0;  // cut below prev for a chain with a header
  EXPECT_EQ(verify_predis_block(mp, bad, leader_key().public_key()),
            BlockVerifyResult::kBadStructure);

  bad = block;
  bad.header_hashes.pop_back();
  EXPECT_EQ(verify_predis_block(mp, bad, leader_key().public_key()),
            BlockVerifyResult::kBadStructure);

  bad = block;
  bad.prev_heights.pop_back();
  EXPECT_EQ(verify_predis_block(mp, bad, leader_key().public_key()),
            BlockVerifyResult::kBadStructure);
}

TEST(PredisBlock, VerifyDetectsEquivocatingHeader) {
  const Mempool mp = full_mempool(2, 2);
  PredisBlock block = build_predis_block(
      mp, 0, kF, 1, 0, kZeroHash, std::vector<BundleHeight>(kN, 0),
      leader_key());
  // Replace chain 1's cut header hash with a fabricated-but-signed
  // variant's and re-sign the block: the receiver's local bundle differs.
  Bundle forged = make_bundle(1, 2, mp.chain(1).get(1)->header.hash(),
                              std::vector<BundleHeight>(kN, 9),
                              make_txs(1, 999), KeyPair::from_seed(1));
  block.header_hashes[1] = forged.header.hash();
  block.signature = leader_key().sign(BytesView{block.signing_bytes()});
  EXPECT_EQ(verify_predis_block(mp, block, leader_key().public_key()),
            BlockVerifyResult::kConflict);
}

TEST(PredisBlock, VerifyDetectsWrongTxRoot) {
  const Mempool mp = full_mempool(2, 2);
  PredisBlock block = build_predis_block(
      mp, 0, kF, 1, 0, kZeroHash, std::vector<BundleHeight>(kN, 0),
      leader_key());
  block.tx_root = Sha256::hash(as_bytes(std::string("wrong")));
  block.signature = leader_key().sign(BytesView{block.signing_bytes()});
  EXPECT_EQ(verify_predis_block(mp, block, leader_key().public_key()),
            BlockVerifyResult::kBadTxRoot);
}

TEST(PredisBlock, EncodeDecodeRoundTrip) {
  const Mempool mp = full_mempool(2, 3);
  const PredisBlock block = build_predis_block(
      mp, 0, kF, 1, 0, kZeroHash, std::vector<BundleHeight>(kN, 0),
      leader_key());
  Writer w;
  block.encode(w);
  Reader r(w.data());
  EXPECT_EQ(PredisBlock::decode(r), block);
}

// The headline property (§III-F "Block Size"): a Predis block's wire
// size does not grow with the number of transactions it confirms.
TEST(PredisBlock, SizeIndependentOfTransactionVolume) {
  const Mempool small = full_mempool(1, 1);    // 4 txs total
  const Mempool large = full_mempool(10, 50);  // 2000 txs total

  const PredisBlock b_small = build_predis_block(
      small, 0, kF, 1, 0, kZeroHash, std::vector<BundleHeight>(kN, 0),
      leader_key());
  const PredisBlock b_large = build_predis_block(
      large, 0, kF, 1, 0, kZeroHash, std::vector<BundleHeight>(kN, 0),
      leader_key());

  EXPECT_EQ(b_small.wire_size(), b_large.wire_size());
  EXPECT_EQ(b_small.tx_count(small), 4u);
  EXPECT_EQ(b_large.tx_count(large), 2000u);
  // And it is tiny — the paper reports <= 2.5 KB even at n_c = 80.
  EXPECT_LT(b_large.wire_size(), 2048u);
}

// Theorem 3.1 / 3.2: equal headers at height h imply equal bundles and
// equal prefixes (the chained hash pins the whole history).
TEST(PredisBlock, TheoremBundleConsistency) {
  const Mempool a = full_mempool(3, 2);
  const Mempool b = full_mempool(3, 2);  // identical construction
  for (std::size_t chain = 0; chain < kN; ++chain) {
    ASSERT_EQ(a.chain(chain).get(3)->header.hash(),
              b.chain(chain).get(3)->header.hash());
    // Equal header at h=3 implies equal bundles at all h' <= 3.
    for (BundleHeight h = 1; h <= 3; ++h) {
      EXPECT_EQ(*a.chain(chain).get(h), *b.chain(chain).get(h));
    }
  }
}

// Theorem 3.3: two honest nodes that both accept a Predis block
// reconstruct identical candidate blocks.
TEST(PredisBlock, TheoremPredisConsistency) {
  const Mempool leader_mp = full_mempool(3, 4);
  const Mempool replica_mp = full_mempool(3, 4);

  const PredisBlock block = build_predis_block(
      leader_mp, 0, kF, 1, 0, kZeroHash, std::vector<BundleHeight>(kN, 0),
      leader_key());
  ASSERT_EQ(verify_predis_block(replica_mp, block,
                                leader_key().public_key()),
            BlockVerifyResult::kOk);
  EXPECT_EQ(extract_transactions(leader_mp, block),
            extract_transactions(replica_mp, block));
}

}  // namespace
}  // namespace predis
