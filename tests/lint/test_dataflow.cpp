// Unit tests for the predis-lint analysis core, stage 3: the lock-set
// walker (D7) and the taint walker (D9), driven directly against small
// token streams rather than through the rule layer.
#include "dataflow.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

namespace predis::lint {
namespace {

struct Case {
  SourceFile src;
  std::vector<Token> tokens;
  std::vector<Function> fns;
  Symbols sym;
};

Case build(const std::string& text, const std::string& name) {
  const std::string path =
      std::string(::testing::TempDir()) + "predis_dataflow_" + name + ".cpp";
  std::ofstream(path) << text;
  Case c;
  c.src = load_source(path);
  c.tokens = tokenize(c.src);
  c.fns = segment_functions(c.tokens);
  collect_symbols(c.tokens, c.src.path, c.sym);
  std::remove(path.c_str());
  return c;
}

TEST(LockWalker, FlagsAccessOutsideTheLockedScope) {
  const auto c = build(R"(
    class C {
      void locked() {
        std::lock_guard<std::mutex> lk(m_);
        q_ = 1;
      }
      void unlocked() { q_ = 2; }
      std::mutex m_;
      int q_ PREDIS_GUARDED_BY(m_) = 0;
    };
  )",
                       "scope");
  ASSERT_EQ(c.fns.size(), 2u);
  const auto ok = analyze_locks(c.tokens, c.fns[0], c.sym, "p", c.src.path);
  EXPECT_TRUE(ok.violations.empty());
  const auto bad = analyze_locks(c.tokens, c.fns[1], c.sym, "p", c.src.path);
  ASSERT_EQ(bad.violations.size(), 1u);
  EXPECT_EQ(bad.violations[0].field, "q_");
  EXPECT_EQ(bad.violations[0].mutex, "m_");
}

TEST(LockWalker, ScopeExitAndManualUnlockDropTheLock) {
  const auto c = build(R"(
    class C {
      void f() {
        {
          std::lock_guard<std::mutex> lk(m_);
          q_ = 1;
        }
        q_ = 2;
      }
      void g() {
        std::unique_lock<std::mutex> lk(m_);
        lk.unlock();
        q_ = 3;
      }
      std::mutex m_;
      int q_ PREDIS_GUARDED_BY(m_) = 0;
    };
  )",
                       "exit");
  const auto f = analyze_locks(c.tokens, c.fns[0], c.sym, "p", c.src.path);
  ASSERT_EQ(f.violations.size(), 1u);
  const auto g = analyze_locks(c.tokens, c.fns[1], c.sym, "p", c.src.path);
  ASSERT_EQ(g.violations.size(), 1u);
}

TEST(LockWalker, NestedAcquisitionEmitsAnOrderEdge) {
  const auto c = build(R"(
    class C {
      void f() {
        std::lock_guard<std::mutex> la(a_);
        std::lock_guard<std::mutex> lb(b_);
        x_ = 1;
      }
      std::mutex a_;
      std::mutex b_;
      int x_ PREDIS_GUARDED_BY(a_) = 0;
    };
  )",
                       "edge");
  const auto r = analyze_locks(c.tokens, c.fns[0], c.sym, "pair", c.src.path);
  EXPECT_TRUE(r.violations.empty());
  ASSERT_EQ(r.edges.size(), 1u);
  EXPECT_EQ(r.edges[0].from, "pair::a_");
  EXPECT_EQ(r.edges[0].to, "pair::b_");
}

TEST(TaintWalker, PropagatesThroughAssignmentsToSinks) {
  const auto c = build(R"(
    class C {
      void on_req(NodeId from, const ReqMsg& msg) {
        (void)from;
        const std::uint64_t n = msg.count;
        buf_.resize(n);
      }
      std::vector<int> buf_;
    };
  )",
                       "assign");
  const auto r = analyze_taint(c.tokens, c.fns[0], c.sym, "msg", true);
  ASSERT_EQ(r.sinks.size(), 1u);
  EXPECT_EQ(r.sinks[0].kind, TaintSink::kAlloc);
  EXPECT_EQ(r.sinks[0].what, "n");
}

TEST(TaintWalker, TerminalGuardSanitizesButSentinelCompareDoesNot) {
  const auto c = build(R"(
    class C {
      void on_req(NodeId from, const ReqMsg& msg) {
        (void)from;
        const std::uint32_t lane = msg.lane;
        if (lane >= lanes_.size()) return;
        lanes_[lane] = 1;
      }
      void walk() {
        const auto it = pending_.find(0);
        if (it == pending_.end()) return;
        for (std::uint64_t h = 1; h <= it->second; ++h) consume(h);
      }
      std::vector<int> lanes_;
      std::map<std::uint64_t, std::uint64_t> pending_ PREDIS_MSG_DERIVED;
    };
  )",
                       "guard");
  // Handler: the dominating bounds check covers the subscript.
  const auto clean = analyze_taint(c.tokens, c.fns[0], c.sym, "msg", true);
  EXPECT_TRUE(clean.sinks.empty());
  // Non-handler: `it == pending_.end()` is an existence check, not a
  // bound — the loop over it->second must still be flagged.
  const auto dirty = analyze_taint(c.tokens, c.fns[1], c.sym, "", false);
  ASSERT_EQ(dirty.sinks.size(), 1u);
  EXPECT_EQ(dirty.sinks[0].kind, TaintSink::kLoop);
}

TEST(TaintWalker, KMaxClampAndModuloSanitize) {
  const auto c = build(R"(
    class C {
      void on_req(NodeId from, const ReqMsg& msg) {
        (void)from;
        const std::uint64_t upto = std::min(msg.upto, low_ + kMaxSpan);
        for (std::uint64_t h = low_ + 1; h <= upto; ++h) consume(h);
        cursor_ = msg.upto % kMaxSpan;
      }
      std::uint64_t low_ = 0;
      std::uint64_t cursor_ = 0;
    };
  )",
                       "kmax");
  const auto r = analyze_taint(c.tokens, c.fns[0], c.sym, "msg", true);
  EXPECT_TRUE(r.sinks.empty());
}

TEST(TaintWalker, HandlerStoresIntoUnannotatedMember) {
  const auto c = build(R"(
    class C {
      void on_req(NodeId from, const ReqMsg& msg) {
        (void)from;
        seen_.insert(msg.id);
        annotated_.insert(msg.id);
      }
      std::set<std::uint64_t> seen_;
      std::set<std::uint64_t> annotated_ PREDIS_MSG_DERIVED;
    };
  )",
                       "store");
  const auto r = analyze_taint(c.tokens, c.fns[0], c.sym, "msg", true);
  ASSERT_EQ(r.sinks.size(), 1u);
  EXPECT_EQ(r.sinks[0].kind, TaintSink::kStore);
  EXPECT_EQ(r.sinks[0].detail, "seen_");
}

}  // namespace
}  // namespace predis::lint
