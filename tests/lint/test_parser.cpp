// Unit tests for the predis-lint analysis core, stage 2: symbol
// collection, function segmentation, handler signatures, statement
// trees and the local-shadow set. Sources are written to a temp file
// and pushed through the real load/tokenize path so comment blanking
// and line numbering are exercised too.
#include "parser.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

namespace predis::lint {
namespace {

struct Parsed {
  SourceFile src;
  std::vector<Token> tokens;
};

Parsed parse(const std::string& text, const std::string& name) {
  const std::string path =
      std::string(::testing::TempDir()) + "predis_lint_" + name + ".cpp";
  std::ofstream(path) << text;
  Parsed p;
  p.src = load_source(path);
  p.tokens = tokenize(p.src);
  std::remove(path.c_str());
  return p;
}

TEST(LintParser, CollectsGuardedFieldsWithTheirMutex) {
  const auto p = parse(R"(
    class C {
      mutable std::mutex m_;
      std::deque<int> q_ PREDIS_GUARDED_BY(m_);
      bool down_ PREDIS_GUARDED_BY(m_) = false;
      int free_ = 0;
    };
  )",
                       "guarded");
  Symbols sym;
  collect_symbols(p.tokens, p.src.path, sym);
  ASSERT_EQ(sym.guarded.count("q_"), 1u);
  EXPECT_EQ(sym.guarded.at("q_").mutex, "m_");
  ASSERT_EQ(sym.guarded.count("down_"), 1u);
  EXPECT_EQ(sym.guarded.at("down_").mutex, "m_");
  EXPECT_EQ(sym.guarded.count("free_"), 0u);
  EXPECT_EQ(sym.mutex_vars.count("m_"), 1u);
}

TEST(LintParser, CollectsMsgDerivedAndTimerMembers) {
  const auto p = parse(R"(
    class C {
      void stop() { fetch_timer_.cancel(); }
      std::map<int, int> pending_ PREDIS_MSG_DERIVED;
      runtime::TimerHandle fetch_timer_;
      runtime::TimerHandle leak_timer_;
    };
  )",
                       "members");
  Symbols sym;
  collect_symbols(p.tokens, p.src.path, sym);
  EXPECT_EQ(sym.msg_derived.count("pending_"), 1u);
  ASSERT_EQ(sym.timer_members.count("fetch_timer_"), 1u);
  EXPECT_EQ(sym.timer_members.at("fetch_timer_").file, p.src.path);
  EXPECT_EQ(sym.timer_members.count("leak_timer_"), 1u);
  EXPECT_EQ(sym.cancelled.count("fetch_timer_"), 1u);
  EXPECT_EQ(sym.cancelled.count("leak_timer_"), 0u);
}

TEST(LintParser, SegmentsFunctionsAndReadsHandlerSignatures) {
  const auto p = parse(R"(
    void free_fn(int a) { (void)a; }
    class C {
      void on_vote(NodeId from, const VoteMsg& msg) {
        (void)from;
        (void)msg;
      }
    };
  )",
                       "segment");
  const auto fns = segment_functions(p.tokens);
  ASSERT_EQ(fns.size(), 2u);
  EXPECT_EQ(fns[0].name, "free_fn");
  EXPECT_EQ(fns[1].name, "on_vote");
  const HandlerSig sig = handler_signature(p.tokens, fns[1]);
  EXPECT_EQ(sig.sender, "from");
  EXPECT_EQ(sig.msg_param, "msg");
}

TEST(LintParser, BuildsNestedStatementTrees) {
  const auto p = parse(R"(
    void f(int n) {
      int acc = 0;
      if (n > 0) {
        for (int i = 0; i < n; ++i) acc += i;
      } else {
        acc = -1;
      }
      while (acc > 10) --acc;
    }
  )",
                       "tree");
  const auto fns = segment_functions(p.tokens);
  ASSERT_EQ(fns.size(), 1u);
  const Stmt body = parse_body(p.tokens, fns[0]);
  ASSERT_EQ(body.kind, StmtKind::kBlock);
  ASSERT_EQ(body.children.size(), 3u);
  EXPECT_EQ(body.children[0].kind, StmtKind::kSimple);
  const Stmt& branch = body.children[1];
  EXPECT_EQ(branch.kind, StmtKind::kIf);
  EXPECT_TRUE(branch.has_else);
  ASSERT_EQ(branch.children.size(), 2u);
  ASSERT_EQ(branch.children[0].kind, StmtKind::kBlock);
  ASSERT_EQ(branch.children[0].children.size(), 1u);
  EXPECT_EQ(branch.children[0].children[0].kind, StmtKind::kFor);
  EXPECT_EQ(body.children[2].kind, StmtKind::kWhile);
}

TEST(LintParser, TerminalGuardsAreRecognized) {
  const auto p = parse(R"(
    int f(int n) {
      if (n < 0) return -1;
      if (n == 0) ++n;
      return n;
    }
  )",
                       "terminal");
  const auto fns = segment_functions(p.tokens);
  const Stmt body = parse_body(p.tokens, fns[0]);
  ASSERT_GE(body.children.size(), 3u);
  ASSERT_FALSE(body.children[0].children.empty());
  EXPECT_TRUE(stmt_terminal(p.tokens, body.children[0].children[0]));
  ASSERT_FALSE(body.children[1].children.empty());
  EXPECT_FALSE(stmt_terminal(p.tokens, body.children[1].children[0]));
}

TEST(LintParser, RawStringLiteralsAreBlanked) {
  const auto p = parse(R"__(
    const char* kSnippet = R"(
      std::mutex m_;
      int hidden_ PREDIS_GUARDED_BY(m_) = 0;
      runtime::TimerHandle hidden_timer_;
    )";
    int visible = 0;
  )__",
                       "rawstr");
  Symbols sym;
  collect_symbols(p.tokens, p.src.path, sym);
  EXPECT_EQ(sym.guarded.count("hidden_"), 0u);
  EXPECT_EQ(sym.timer_members.count("hidden_timer_"), 0u);
  bool saw_visible = false;
  for (const Token& t : p.tokens) saw_visible |= (t.text == "visible");
  EXPECT_TRUE(saw_visible);
}

TEST(LintParser, LocalNamesShadowMembers) {
  const auto p = parse(R"(
    void f(const Msg& msg, NodeId from) {
      int local = 0;
      auto& alias = table_;
      const auto [a, b] = split(msg);
      use(local, alias, a, b, from);
    }
  )",
                       "locals");
  const auto fns = segment_functions(p.tokens);
  ASSERT_EQ(fns.size(), 1u);
  const auto names = local_names(p.tokens, fns[0]);
  EXPECT_EQ(names.count("msg"), 1u);
  EXPECT_EQ(names.count("from"), 1u);
  EXPECT_EQ(names.count("local"), 1u);
  EXPECT_EQ(names.count("alias"), 1u);
  EXPECT_EQ(names.count("a"), 1u);
  EXPECT_EQ(names.count("b"), 1u);
  EXPECT_EQ(names.count("table_"), 0u);
}

}  // namespace
}  // namespace predis::lint
