// predis-lint self-tests: every rule has a fixture that must fail and
// one that must pass, plus allowlist-pragma and JSON-shape coverage.
// The fixtures live in tests/lint_fixtures (skipped by the default
// tree scan precisely because they violate the rules on purpose).
#include "linter.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

namespace predis::lint {
namespace {

std::string fixture(const std::string& name) {
  return std::string(PREDIS_LINT_FIXTURE_DIR) + "/" + name;
}

std::vector<Diagnostic> lint_fixture(const std::string& name) {
  return lint_files({fixture(name)});
}

std::size_t count_rule(const std::vector<Diagnostic>& diags,
                       const std::string& rule) {
  return static_cast<std::size_t>(
      std::count_if(diags.begin(), diags.end(),
                    [&](const Diagnostic& d) { return d.rule == rule; }));
}

TEST(PredisLint, D1FailsOnUnorderedIterationThatEmits) {
  const auto diags = lint_fixture("d1_unordered_emit_fail.cpp");
  ASSERT_EQ(count_rule(diags, "D1"), 1u);
  EXPECT_EQ(diags[0].line, 13u);
  EXPECT_NE(diags[0].message.find("credits_"), std::string::npos);
}

TEST(PredisLint, D1PassesOnLookupsAndSinkFreeIteration) {
  EXPECT_TRUE(lint_fixture("d1_unordered_lookup_pass.cpp").empty());
}

TEST(PredisLint, D2FailsOnWallClockAndCRng) {
  const auto diags = lint_fixture("d2_wall_clock_fail.cpp");
  EXPECT_EQ(count_rule(diags, "D2"), 2u);
}

TEST(PredisLint, D2PassesOnSeededRngAndSimClock) {
  EXPECT_TRUE(lint_fixture("d2_seeded_rng_pass.cpp").empty());
}

TEST(PredisLint, D3FailsOnMissingNodiscardAndDiscardedResult) {
  const auto diags = lint_fixture("d3_missing_nodiscard_fail.hpp");
  ASSERT_EQ(count_rule(diags, "D3"), 3u);
  // Two declaration findings, one discarded-call finding.
  const auto discarded = std::count_if(
      diags.begin(), diags.end(), [](const Diagnostic& d) {
        return d.message.find("discarded") != std::string::npos;
      });
  EXPECT_EQ(discarded, 1);
}

TEST(PredisLint, D3PassesWhenAnnotatedAndConsumed) {
  EXPECT_TRUE(lint_fixture("d3_nodiscard_pass.hpp").empty());
}

TEST(PredisLint, D4FailsOnUncheckedSenderAndMessageIndex) {
  const auto diags = lint_fixture("d4_unchecked_sender_fail.cpp");
  ASSERT_EQ(count_rule(diags, "D4"), 2u);
  EXPECT_NE(diags[0].message.find("from"), std::string::npos);
  EXPECT_NE(diags[1].message.find("lane"), std::string::npos);
}

TEST(PredisLint, D4PassesWithGuards) {
  EXPECT_TRUE(lint_fixture("d4_checked_sender_pass.cpp").empty());
}

TEST(PredisLint, D4FailsOnUnboundedSpanWalk) {
  const auto diags = lint_fixture("d4_unbounded_span_fail.cpp");
  ASSERT_EQ(count_rule(diags, "D4"), 2u);
  EXPECT_NE(diags[0].message.find("kMax"), std::string::npos);
  EXPECT_NE(diags[1].message.find("span"), std::string::npos);
}

TEST(PredisLint, D4PassesWithSpanClamp) {
  EXPECT_TRUE(lint_fixture("d4_bounded_span_pass.cpp").empty());
}

TEST(PredisLint, D5FailsOutsideApprovedTus) {
  const auto diags = lint_fixture("d5_cast_fail.cpp");
  ASSERT_EQ(count_rule(diags, "D5"), 1u);
}

TEST(PredisLint, D5PassesInApprovedTu) {
  EXPECT_TRUE(lint_fixture("bytes_cast_pass.cpp").empty());
}

TEST(PredisLint, D6FailsOnBackendTypesOutsideSeam) {
  const auto diags = lint_fixture("d6_backend_type_fail.cpp");
  ASSERT_EQ(count_rule(diags, "D6"), 2u);
  EXPECT_NE(diags[0].message.find("Simulator"), std::string::npos);
  EXPECT_NE(diags[1].message.find("sim::Network"), std::string::npos);
}

TEST(PredisLint, D6PassesThroughRuntimeSeam) {
  EXPECT_TRUE(lint_fixture("d6_runtime_seam_pass.cpp").empty());
}

TEST(PredisLint, LinePragmaSuppressesNextLine) {
  EXPECT_TRUE(lint_fixture("allow_line_pass.cpp").empty());
}

TEST(PredisLint, FilePragmaSuppressesWholeFile) {
  EXPECT_TRUE(lint_fixture("allow_file_pass.cpp").empty());
}

TEST(PredisLint, CollectSourcesSkipsFixturesByDefault) {
  // Walking the parent tree must skip lint_fixtures unless opted in;
  // naming the fixture directory explicitly always scans it.
  const std::string parent =
      std::filesystem::path(PREDIS_LINT_FIXTURE_DIR).parent_path().string();
  const auto contains_fixture = [](const std::vector<std::string>& files) {
    return std::any_of(files.begin(), files.end(), [](const std::string& f) {
      return f.find("lint_fixtures") != std::string::npos;
    });
  };
  Options options;
  EXPECT_FALSE(contains_fixture(collect_sources({parent}, options)));
  options.include_fixtures = true;
  EXPECT_TRUE(contains_fixture(collect_sources({parent}, options)));

  const auto direct = collect_sources({PREDIS_LINT_FIXTURE_DIR}, Options{});
  EXPECT_GE(direct.size(), 12u);
  EXPECT_TRUE(std::is_sorted(direct.begin(), direct.end()));
}

TEST(PredisLint, JsonOutputIsWellFormedAndStable) {
  const auto diags = lint_fixture("d5_cast_fail.cpp");
  ASSERT_FALSE(diags.empty());
  const std::string json = to_json(diags);
  EXPECT_NE(json.find("\"rule\": \"D5\""), std::string::npos);
  EXPECT_NE(json.find("\"line\": "), std::string::npos);
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            static_cast<std::ptrdiff_t>(diags.size()));
  EXPECT_EQ(to_json({}), "[\n]\n");
}

TEST(PredisLint, DiagnosticsAreSortedByFileLineRule) {
  const auto diags = lint_files({fixture("d2_wall_clock_fail.cpp"),
                                 fixture("d5_cast_fail.cpp"),
                                 fixture("d1_unordered_emit_fail.cpp")});
  ASSERT_GE(diags.size(), 3u);
  EXPECT_TRUE(std::is_sorted(
      diags.begin(), diags.end(), [](const Diagnostic& a, const Diagnostic& b) {
        return std::tie(a.file, a.line, a.rule) <
               std::tie(b.file, b.line, b.rule);
      }));
}

}  // namespace
}  // namespace predis::lint
