// predis-lint self-tests: every rule has a fixture that must fail and
// one that must pass, plus allowlist-pragma and JSON-shape coverage.
// The fixtures live in tests/lint_fixtures (skipped by the default
// tree scan precisely because they violate the rules on purpose).
#include "linter.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

namespace predis::lint {
namespace {

std::string fixture(const std::string& name) {
  return std::string(PREDIS_LINT_FIXTURE_DIR) + "/" + name;
}

std::vector<Diagnostic> lint_fixture(const std::string& name) {
  return lint_files({fixture(name)});
}

std::size_t count_rule(const std::vector<Diagnostic>& diags,
                       const std::string& rule) {
  return static_cast<std::size_t>(
      std::count_if(diags.begin(), diags.end(),
                    [&](const Diagnostic& d) { return d.rule == rule; }));
}

TEST(PredisLint, D1FailsOnUnorderedIterationThatEmits) {
  const auto diags = lint_fixture("d1_unordered_emit_fail.cpp");
  ASSERT_EQ(count_rule(diags, "D1"), 1u);
  EXPECT_EQ(diags[0].line, 13u);
  EXPECT_NE(diags[0].message.find("credits_"), std::string::npos);
}

TEST(PredisLint, D1PassesOnLookupsAndSinkFreeIteration) {
  EXPECT_TRUE(lint_fixture("d1_unordered_lookup_pass.cpp").empty());
}

TEST(PredisLint, D2FailsOnWallClockAndCRng) {
  const auto diags = lint_fixture("d2_wall_clock_fail.cpp");
  EXPECT_EQ(count_rule(diags, "D2"), 2u);
}

TEST(PredisLint, D2PassesOnSeededRngAndSimClock) {
  EXPECT_TRUE(lint_fixture("d2_seeded_rng_pass.cpp").empty());
}

TEST(PredisLint, D3FailsOnMissingNodiscardAndDiscardedResult) {
  const auto diags = lint_fixture("d3_missing_nodiscard_fail.hpp");
  ASSERT_EQ(count_rule(diags, "D3"), 3u);
  // Two declaration findings, one discarded-call finding.
  const auto discarded = std::count_if(
      diags.begin(), diags.end(), [](const Diagnostic& d) {
        return d.message.find("discarded") != std::string::npos;
      });
  EXPECT_EQ(discarded, 1);
}

TEST(PredisLint, D3PassesWhenAnnotatedAndConsumed) {
  EXPECT_TRUE(lint_fixture("d3_nodiscard_pass.hpp").empty());
}

TEST(PredisLint, D4FailsOnUncheckedSenderAndMessageIndex) {
  // The raw sender subscript is D4's; the laundered lane index is
  // caught by the D9 taint walker.
  const auto diags = lint_fixture("d4_unchecked_sender_fail.cpp");
  ASSERT_EQ(diags.size(), 2u);
  EXPECT_EQ(count_rule(diags, "D4"), 1u);
  EXPECT_EQ(count_rule(diags, "D9"), 1u);
  EXPECT_NE(diags[0].message.find("from"), std::string::npos);
  EXPECT_NE(diags[1].message.find("lane"), std::string::npos);
}

TEST(PredisLint, D4PassesWithGuards) {
  EXPECT_TRUE(lint_fixture("d4_checked_sender_pass.cpp").empty());
}

TEST(PredisLint, D9FailsOnUnboundedSpanWalk) {
  const auto diags = lint_fixture("d9_unbounded_span_fail.cpp");
  ASSERT_EQ(count_rule(diags, "D9"), 2u);
  EXPECT_NE(diags[0].message.find("kMax"), std::string::npos);
  EXPECT_NE(diags[1].message.find("span"), std::string::npos);
}

TEST(PredisLint, D9PassesWithSpanClamp) {
  EXPECT_TRUE(lint_fixture("d9_bounded_span_pass.cpp").empty());
}

TEST(PredisLint, D7FailsOnUnlockedGuardedAccess) {
  const auto diags = lint_fixture("d7_guarded_access_fail.cpp");
  ASSERT_EQ(count_rule(diags, "D7"), 2u);
  EXPECT_EQ(diags[0].line, 16u);
  EXPECT_NE(diags[0].message.find("credits_"), std::string::npos);
  EXPECT_EQ(diags[1].line, 23u);
  EXPECT_NE(diags[1].message.find("last_spent_"), std::string::npos);
}

TEST(PredisLint, D7PassesUnderEveryGuardShape) {
  EXPECT_TRUE(lint_fixture("d7_guarded_access_pass.cpp").empty());
}

TEST(PredisLint, D7FailsOnLockOrderCycle) {
  const auto diags = lint_fixture("d7_lock_order_fail.cpp");
  ASSERT_EQ(count_rule(diags, "D7"), 1u);
  EXPECT_NE(diags[0].message.find("lock-order cycle"), std::string::npos);
  EXPECT_NE(diags[0].message.find("a_"), std::string::npos);
  EXPECT_NE(diags[0].message.find("b_"), std::string::npos);
}

TEST(PredisLint, D8FailsOnLeakedHandles) {
  const auto diags = lint_fixture("d8_leaked_handle_fail.cpp");
  ASSERT_EQ(count_rule(diags, "D8"), 3u);
  EXPECT_NE(diags[0].message.find("discarded"), std::string::npos);
  EXPECT_NE(diags[1].message.find("never used"), std::string::npos);
  EXPECT_NE(diags[2].message.find("never cancelled"), std::string::npos);
  EXPECT_NE(diags[2].message.find("retry_timer_"), std::string::npos);
}

TEST(PredisLint, D8PassesWithCancelAndFireAndForget) {
  EXPECT_TRUE(lint_fixture("d8_handle_pass.cpp").empty());
}

TEST(PredisLint, D9FailsOnLaunderedTaint) {
  const auto diags = lint_fixture("d9_laundered_taint_fail.cpp");
  ASSERT_EQ(count_rule(diags, "D9"), 4u);
  EXPECT_NE(diags[0].message.find("resize"), std::string::npos);
  EXPECT_NE(diags[1].message.find("lanes_"), std::string::npos);
  EXPECT_NE(diags[2].message.find("span"), std::string::npos);
  EXPECT_NE(diags[3].message.find("highest_"), std::string::npos);
}

TEST(PredisLint, D9PassesWhenEverySinkIsSanitized) {
  EXPECT_TRUE(lint_fixture("d9_clamped_taint_pass.cpp").empty());
}

TEST(PredisLint, S1ReportsStaleSuppressions) {
  const auto report =
      lint_tree({fixture("s1_stale_suppression_fail.cpp")}, Options{});
  EXPECT_TRUE(report.diagnostics.empty());
  ASSERT_EQ(report.stale_suppressions.size(), 2u);
  EXPECT_EQ(report.stale_suppressions[0].rule, "S1");
  EXPECT_NE(report.stale_suppressions[0].message.find("allow-file(D5)"),
            std::string::npos);
  EXPECT_NE(report.stale_suppressions[1].message.find("allow(D2)"),
            std::string::npos);
  EXPECT_EQ(report.rule_counts.at("S1"), 2u);
}

TEST(PredisLint, LivePragmasAreNotStale) {
  const auto report = lint_tree(
      {fixture("allow_line_pass.cpp"), fixture("allow_file_pass.cpp")},
      Options{});
  EXPECT_TRUE(report.diagnostics.empty());
  EXPECT_TRUE(report.stale_suppressions.empty());
}

TEST(PredisLint, ReportCountsEveryRuleFamily) {
  const auto report = lint_tree({fixture("d7_guarded_access_fail.cpp"),
                                 fixture("d9_laundered_taint_fail.cpp")},
                                Options{});
  EXPECT_EQ(report.files_scanned, 2u);
  EXPECT_EQ(report.rule_counts.at("D7"), 2u);
  EXPECT_EQ(report.rule_counts.at("D9"), 4u);
  // Zero entries exist for untriggered rules so the schema is stable.
  EXPECT_EQ(report.rule_counts.at("D1"), 0u);
  EXPECT_EQ(report.rule_counts.at("S1"), 0u);
}

TEST(PredisLint, ParallelScanMatchesSerialScan) {
  const auto files = collect_sources({PREDIS_LINT_FIXTURE_DIR}, Options{});
  Options serial;
  serial.jobs = 1;
  Options wide;
  wide.jobs = 8;
  const auto a = lint_tree(files, serial);
  const auto b = lint_tree(files, wide);
  ASSERT_EQ(a.diagnostics.size(), b.diagnostics.size());
  for (std::size_t i = 0; i < a.diagnostics.size(); ++i) {
    EXPECT_EQ(a.diagnostics[i].file, b.diagnostics[i].file);
    EXPECT_EQ(a.diagnostics[i].line, b.diagnostics[i].line);
    EXPECT_EQ(a.diagnostics[i].rule, b.diagnostics[i].rule);
    EXPECT_EQ(a.diagnostics[i].message, b.diagnostics[i].message);
  }
  EXPECT_EQ(a.stale_suppressions.size(), b.stale_suppressions.size());
}

TEST(PredisLint, ReportJsonIsVersioned) {
  const auto report =
      lint_tree({fixture("d5_cast_fail.cpp")}, Options{});
  const std::string json = to_json(report);
  EXPECT_NE(json.find("\"schema\": \"predis-lint/2\""), std::string::npos);
  EXPECT_NE(json.find("\"rule_counts\""), std::string::npos);
  EXPECT_NE(json.find("\"D5\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"findings\""), std::string::npos);
  EXPECT_NE(json.find("\"stale_suppressions\""), std::string::npos);
}

TEST(PredisLint, D5FailsOutsideApprovedTus) {
  const auto diags = lint_fixture("d5_cast_fail.cpp");
  ASSERT_EQ(count_rule(diags, "D5"), 1u);
}

TEST(PredisLint, D5PassesInApprovedTu) {
  EXPECT_TRUE(lint_fixture("bytes_cast_pass.cpp").empty());
}

TEST(PredisLint, D6FailsOnBackendTypesOutsideSeam) {
  const auto diags = lint_fixture("d6_backend_type_fail.cpp");
  ASSERT_EQ(count_rule(diags, "D6"), 2u);
  EXPECT_NE(diags[0].message.find("Simulator"), std::string::npos);
  EXPECT_NE(diags[1].message.find("sim::Network"), std::string::npos);
}

TEST(PredisLint, D6PassesThroughRuntimeSeam) {
  EXPECT_TRUE(lint_fixture("d6_runtime_seam_pass.cpp").empty());
}

TEST(PredisLint, LinePragmaSuppressesNextLine) {
  EXPECT_TRUE(lint_fixture("allow_line_pass.cpp").empty());
}

TEST(PredisLint, FilePragmaSuppressesWholeFile) {
  EXPECT_TRUE(lint_fixture("allow_file_pass.cpp").empty());
}

TEST(PredisLint, CollectSourcesSkipsFixturesByDefault) {
  // Walking the parent tree must skip lint_fixtures unless opted in;
  // naming the fixture directory explicitly always scans it.
  const std::string parent =
      std::filesystem::path(PREDIS_LINT_FIXTURE_DIR).parent_path().string();
  const auto contains_fixture = [](const std::vector<std::string>& files) {
    return std::any_of(files.begin(), files.end(), [](const std::string& f) {
      return f.find("lint_fixtures") != std::string::npos;
    });
  };
  Options options;
  EXPECT_FALSE(contains_fixture(collect_sources({parent}, options)));
  options.include_fixtures = true;
  EXPECT_TRUE(contains_fixture(collect_sources({parent}, options)));

  const auto direct = collect_sources({PREDIS_LINT_FIXTURE_DIR}, Options{});
  EXPECT_GE(direct.size(), 12u);
  EXPECT_TRUE(std::is_sorted(direct.begin(), direct.end()));
}

TEST(PredisLint, JsonOutputIsWellFormedAndStable) {
  const auto diags = lint_fixture("d5_cast_fail.cpp");
  ASSERT_FALSE(diags.empty());
  const std::string json = to_json(diags);
  EXPECT_NE(json.find("\"rule\": \"D5\""), std::string::npos);
  EXPECT_NE(json.find("\"line\": "), std::string::npos);
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            static_cast<std::ptrdiff_t>(diags.size()));
  EXPECT_EQ(to_json(std::vector<Diagnostic>{}), "[\n]\n");
}

TEST(PredisLint, DiagnosticsAreSortedByFileLineRule) {
  const auto diags = lint_files({fixture("d2_wall_clock_fail.cpp"),
                                 fixture("d5_cast_fail.cpp"),
                                 fixture("d1_unordered_emit_fail.cpp")});
  ASSERT_GE(diags.size(), 3u);
  EXPECT_TRUE(std::is_sorted(
      diags.begin(), diags.end(), [](const Diagnostic& a, const Diagnostic& b) {
        return std::tie(a.file, a.line, a.rule) <
               std::tie(b.file, b.line, b.rule);
      }));
}

}  // namespace
}  // namespace predis::lint
