#include "sim/network.hpp"

#include <gtest/gtest.h>

#include "sim/environments.hpp"

namespace predis::sim {
namespace {

/// Message with an exact wire size (excluding transport overhead).
struct TestMsg final : Message {
  std::size_t size;
  explicit TestMsg(std::size_t s) : size(s) {}
  std::size_t wire_size() const override { return size; }
  const char* name() const override { return "Test"; }
};

/// Records every delivery with its timestamp.
class Recorder final : public Actor {
 public:
  explicit Recorder(Simulator& sim) : sim_(sim) {}
  void on_message(NodeId from, const MsgPtr&) override {
    deliveries.emplace_back(from, sim_.now());
  }
  std::vector<std::pair<NodeId, SimTime>> deliveries;

 private:
  Simulator& sim_;
};

// 1 MB/s links so a 1000-byte message (936 + 64 overhead) takes 1 ms.
NodeConfig slow_node() {
  NodeConfig cfg;
  cfg.up_bw = 1e6;
  cfg.down_bw = 1e6;
  return cfg;
}

constexpr std::size_t kBody = 1000 - Network::kTransportOverhead;

struct NetFixture {
  Simulator sim;
  Network net{sim, LatencyMatrix::uniform(1, milliseconds(100))};
};

TEST(Network, SingleTransferTiming) {
  NetFixture f;
  const NodeId a = f.net.add_node(slow_node());
  const NodeId b = f.net.add_node(slow_node());
  Recorder rec(f.sim);
  f.net.attach(b, &rec);

  f.net.send(a, b, std::make_shared<TestMsg>(kBody));
  f.sim.run();
  // Idle symmetric links: serialization (1 ms) + propagation (100 ms).
  ASSERT_EQ(rec.deliveries.size(), 1u);
  EXPECT_EQ(rec.deliveries[0].second, milliseconds(101));
}

TEST(Network, UplinkSerializesConsecutiveSends) {
  NetFixture f;
  const NodeId a = f.net.add_node(slow_node());
  const NodeId b = f.net.add_node(slow_node());
  Recorder rec(f.sim);
  f.net.attach(b, &rec);

  f.net.send(a, b, std::make_shared<TestMsg>(kBody));
  f.net.send(a, b, std::make_shared<TestMsg>(kBody));
  f.sim.run();
  ASSERT_EQ(rec.deliveries.size(), 2u);
  EXPECT_EQ(rec.deliveries[0].second, milliseconds(101));
  EXPECT_EQ(rec.deliveries[1].second, milliseconds(102));
}

TEST(Network, DownlinkContentionQueuesInboundFlows) {
  NetFixture f;
  const NodeId a = f.net.add_node(slow_node());
  const NodeId b = f.net.add_node(slow_node());
  const NodeId c = f.net.add_node(slow_node());
  Recorder rec(f.sim);
  f.net.attach(c, &rec);

  f.net.send(a, c, std::make_shared<TestMsg>(kBody));
  f.net.send(b, c, std::make_shared<TestMsg>(kBody));
  f.sim.run();
  ASSERT_EQ(rec.deliveries.size(), 2u);
  EXPECT_EQ(rec.deliveries[0].second, milliseconds(101));
  // The second flow queues behind the first on c's downlink.
  EXPECT_EQ(rec.deliveries[1].second, milliseconds(102));
}

TEST(Network, MulticastCostsOneTransmissionPerReceiver) {
  NetFixture f;
  const NodeId a = f.net.add_node(slow_node());
  const NodeId b = f.net.add_node(slow_node());
  const NodeId c = f.net.add_node(slow_node());
  Recorder rb(f.sim), rc(f.sim);
  f.net.attach(b, &rb);
  f.net.attach(c, &rc);

  f.net.multicast(a, {a, b, c}, std::make_shared<TestMsg>(kBody));
  f.sim.run();
  ASSERT_EQ(rb.deliveries.size(), 1u);
  ASSERT_EQ(rc.deliveries.size(), 1u);
  // Self is skipped; two copies serialize on a's uplink.
  EXPECT_EQ(rb.deliveries[0].second, milliseconds(101));
  EXPECT_EQ(rc.deliveries[0].second, milliseconds(102));
  EXPECT_EQ(f.net.stats(a).messages_sent, 2u);
  EXPECT_EQ(f.net.stats(a).bytes_sent, 2000u);
}

TEST(Network, DownNodeSendsAndReceivesNothing) {
  NetFixture f;
  const NodeId a = f.net.add_node(slow_node());
  const NodeId b = f.net.add_node(slow_node());
  Recorder rec(f.sim);
  f.net.attach(b, &rec);

  f.net.set_node_down(b, true);
  f.net.send(a, b, std::make_shared<TestMsg>(kBody));
  f.sim.run();
  EXPECT_TRUE(rec.deliveries.empty());
  EXPECT_EQ(f.net.stats(a).messages_dropped, 1u);

  f.net.set_node_down(a, true);
  f.net.set_node_down(b, false);
  f.net.send(a, b, std::make_shared<TestMsg>(kBody));
  f.sim.run();
  EXPECT_TRUE(rec.deliveries.empty());
}

TEST(Network, DropFilterDropsSelectedMessages) {
  NetFixture f;
  const NodeId a = f.net.add_node(slow_node());
  const NodeId b = f.net.add_node(slow_node());
  Recorder rec(f.sim);
  f.net.attach(b, &rec);

  int drops = 0;
  f.net.set_drop_filter([&](NodeId, NodeId, const Message&) {
    return ++drops <= 1;  // drop the first message only
  });
  f.net.send(a, b, std::make_shared<TestMsg>(kBody));
  f.net.send(a, b, std::make_shared<TestMsg>(kBody));
  f.sim.run();
  ASSERT_EQ(rec.deliveries.size(), 1u);
}

TEST(Network, ExtraDelayApplies) {
  NetFixture f;
  const NodeId a = f.net.add_node(slow_node());
  const NodeId b = f.net.add_node(slow_node());
  Recorder rec(f.sim);
  f.net.attach(b, &rec);

  f.net.set_extra_delay([](NodeId, NodeId) { return milliseconds(50); });
  f.net.send(a, b, std::make_shared<TestMsg>(kBody));
  f.sim.run();
  ASSERT_EQ(rec.deliveries.size(), 1u);
  EXPECT_EQ(rec.deliveries[0].second, milliseconds(151));
}

TEST(Network, RegionLatencyMatrixRespected) {
  Simulator sim;
  Network net(sim, wan_latency());
  NodeConfig fast = node_100mbps(0);
  const NodeId a = net.add_node(fast);              // Ulanqab
  const NodeId b = net.add_node(node_100mbps(1));   // Shanghai
  Recorder rec(sim);
  net.attach(b, &rec);

  net.send(a, b, std::make_shared<TestMsg>(0));
  sim.run();
  ASSERT_EQ(rec.deliveries.size(), 1u);
  // 64-byte overhead at 12.5 MB/s is ~5.1 us; latency dominates.
  EXPECT_GT(rec.deliveries[0].second, milliseconds(15));
  EXPECT_LT(rec.deliveries[0].second, milliseconds(16));
}

TEST(Network, StatsTrackBothDirections) {
  NetFixture f;
  const NodeId a = f.net.add_node(slow_node());
  const NodeId b = f.net.add_node(slow_node());
  Recorder rec(f.sim);
  f.net.attach(b, &rec);

  f.net.send(a, b, std::make_shared<TestMsg>(kBody));
  f.sim.run();
  EXPECT_EQ(f.net.stats(a).bytes_sent, 1000u);
  EXPECT_EQ(f.net.stats(b).bytes_received, 1000u);
  EXPECT_EQ(f.net.stats(b).messages_received, 1u);
  EXPECT_EQ(f.net.total_bytes_sent(), 1000u);
}

TEST(Network, InvalidConfigRejected) {
  Simulator sim;
  Network net(sim, LatencyMatrix::uniform(1, 0));
  NodeConfig bad;
  bad.region = 5;
  EXPECT_THROW(net.add_node(bad), std::invalid_argument);
  bad.region = 0;
  bad.up_bw = 0;
  EXPECT_THROW(net.add_node(bad), std::invalid_argument);
}

}  // namespace
}  // namespace predis::sim
