#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace predis::sim {
namespace {

TEST(Simulator, ExecutesInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(milliseconds(30), [&] { order.push_back(3); });
  sim.schedule_at(milliseconds(10), [&] { order.push_back(1); });
  sim.schedule_at(milliseconds(20), [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, TieBreaksByInsertionOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(milliseconds(5), [&] { order.push_back(1); });
  sim.schedule_at(milliseconds(5), [&] { order.push_back(2); });
  sim.schedule_at(milliseconds(5), [&] { order.push_back(3); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, NowAdvancesToEventTime) {
  Simulator sim;
  SimTime seen = -1;
  sim.schedule_after(milliseconds(7), [&] { seen = sim.now(); });
  sim.run();
  EXPECT_EQ(seen, milliseconds(7));
}

TEST(Simulator, RunUntilStopsAtLimit) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(milliseconds(10), [&] { ++fired; });
  sim.schedule_at(milliseconds(20), [&] { ++fired; });
  const std::size_t n = sim.run_until(milliseconds(15));
  EXPECT_EQ(n, 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), milliseconds(15));
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, CancelledTimerDoesNotFire) {
  Simulator sim;
  bool fired = false;
  TimerHandle h = sim.schedule_after(milliseconds(5), [&] { fired = true; });
  EXPECT_TRUE(h.scheduled());
  h.cancel();
  EXPECT_FALSE(h.scheduled());
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(Simulator, EventsMayScheduleMoreEvents) {
  Simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) sim.schedule_after(milliseconds(1), recurse);
  };
  sim.schedule_after(milliseconds(1), recurse);
  sim.run();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(sim.now(), milliseconds(5));
}

TEST(Simulator, SchedulingInPastThrows) {
  Simulator sim;
  sim.schedule_at(milliseconds(10), [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(milliseconds(5), [] {}),
               std::invalid_argument);
  EXPECT_THROW(sim.schedule_after(-1, [] {}), std::invalid_argument);
}

TEST(Simulator, CountsExecutedEvents) {
  Simulator sim;
  for (int i = 0; i < 4; ++i) sim.schedule_after(i, [] {});
  sim.run();
  EXPECT_EQ(sim.events_executed(), 4u);
}

}  // namespace
}  // namespace predis::sim
