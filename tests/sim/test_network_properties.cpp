// Conservation and ordering properties of the network model.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "sim/network.hpp"

namespace predis::sim {
namespace {

struct SizedMsg final : Message {
  std::size_t size;
  explicit SizedMsg(std::size_t s) : size(s) {}
  std::size_t wire_size() const override { return size; }
  const char* name() const override { return "Sized"; }
};

class Counter final : public Actor {
 public:
  explicit Counter(Simulator& sim) : sim_(sim) {}
  void on_message(NodeId, const MsgPtr&) override {
    ++received;
    last_at = sim_.now();
  }
  std::size_t received = 0;
  SimTime last_at = 0;

 private:
  Simulator& sim_;
};

class NetworkProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(NetworkProperty, BytesAreConserved) {
  Simulator sim;
  Network net(sim, LatencyMatrix::uniform(1, milliseconds(3)));
  Rng rng(GetParam());

  const std::size_t n = 5;
  std::vector<NodeId> ids;
  std::vector<std::unique_ptr<Counter>> actors;
  for (std::size_t i = 0; i < n; ++i) {
    ids.push_back(net.add_node(NodeConfig{}));
    actors.push_back(std::make_unique<Counter>(sim));
    net.attach(ids[i], actors.back().get());
  }

  std::size_t sent = 0;
  for (int k = 0; k < 200; ++k) {
    const NodeId from = ids[rng.next_below(n)];
    NodeId to = from;
    while (to == from) to = ids[rng.next_below(n)];
    net.send(from, to, std::make_shared<SizedMsg>(rng.next_below(5000)));
    ++sent;
  }
  sim.run();

  std::uint64_t bytes_out = 0, bytes_in = 0;
  std::size_t msgs_in = 0;
  for (NodeId id : ids) {
    bytes_out += net.stats(id).bytes_sent;
    bytes_in += net.stats(id).bytes_received;
    msgs_in += net.stats(id).messages_received;
  }
  // No loss configured: everything sent is delivered, byte for byte.
  EXPECT_EQ(bytes_out, bytes_in);
  EXPECT_EQ(msgs_in, sent);
}

INSTANTIATE_TEST_SUITE_P(Seeds, NetworkProperty,
                         ::testing::Range<std::uint64_t>(1, 11));

TEST(NetworkProperty, PerPairDeliveryIsFifo) {
  // Messages between one (sender, receiver) pair arrive in send order
  // even with mixed sizes (cut-through still serializes the uplink).
  Simulator sim;
  Network net(sim, LatencyMatrix::uniform(1, milliseconds(5)));
  const NodeId a = net.add_node(NodeConfig{});
  const NodeId b = net.add_node(NodeConfig{});

  struct SeqMsg final : Message {
    int seq;
    std::size_t size;
    SeqMsg(int s, std::size_t sz) : seq(s), size(sz) {}
    std::size_t wire_size() const override { return size; }
    const char* name() const override { return "Seq"; }
  };
  class OrderCheck final : public Actor {
   public:
    void on_message(NodeId, const MsgPtr& msg) override {
      const auto& m = dynamic_cast<const SeqMsg&>(*msg);
      order.push_back(m.seq);
    }
    std::vector<int> order;
  };
  OrderCheck check;
  net.attach(b, &check);

  Rng rng(7);
  for (int i = 0; i < 50; ++i) {
    net.send(a, b, std::make_shared<SeqMsg>(i, 100 + rng.next_below(90000)));
  }
  sim.run();
  ASSERT_EQ(check.order.size(), 50u);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(check.order[i], i);
}

TEST(NetworkProperty, BacklogReflectsQueuedBytes) {
  Simulator sim;
  Network net(sim, LatencyMatrix::uniform(1, 0));
  NodeConfig slow;
  slow.up_bw = 1e6;  // 1 MB/s
  const NodeId a = net.add_node(slow);
  const NodeId b = net.add_node(NodeConfig{});
  Counter counter(sim);
  net.attach(b, &counter);

  EXPECT_EQ(net.uplink_backlog(a), 0);
  // ~2 MB queued on a 1 MB/s uplink = ~2 s of backlog.
  net.send(a, b, std::make_shared<SizedMsg>(2'000'000));
  const SimTime backlog = net.uplink_backlog(a);
  EXPECT_GT(backlog, milliseconds(1900));
  EXPECT_LT(backlog, milliseconds(2100));
  sim.run();
  EXPECT_EQ(net.uplink_backlog(a), 0);
}

}  // namespace
}  // namespace predis::sim
