// Sanity checks for the canned WAN/LAN environments of §V.
#include "sim/environments.hpp"

#include <gtest/gtest.h>

namespace predis::sim {
namespace {

TEST(Environments, WanMatrixShapeAndSymmetry) {
  const LatencyMatrix wan = wan_latency();
  ASSERT_EQ(wan.regions(), kWanRegions);
  for (std::uint32_t a = 0; a < kWanRegions; ++a) {
    for (std::uint32_t b = 0; b < kWanRegions; ++b) {
      EXPECT_EQ(wan.at(a, b), wan.at(b, a)) << a << "," << b;
      EXPECT_GT(wan.at(a, b), 0);
      if (a != b) {
        // Inter-region latency always exceeds intra-region.
        EXPECT_GT(wan.at(a, b), wan.at(a, a));
      }
    }
  }
}

TEST(Environments, LanIsUniform25ms) {
  const LatencyMatrix lan = lan_latency();
  ASSERT_EQ(lan.regions(), 1u);
  EXPECT_EQ(lan.at(0, 0), milliseconds(25));
}

TEST(Environments, HundredMbpsNode) {
  const NodeConfig cfg = node_100mbps(2);
  EXPECT_EQ(cfg.region, 2u);
  EXPECT_DOUBLE_EQ(cfg.up_bw, 12.5e6);
  EXPECT_DOUBLE_EQ(cfg.down_bw, 12.5e6);
  // 100 Mbps moves 12.5 MB per second.
  EXPECT_DOUBLE_EQ(kBandwidth100Mbps * 8.0, 100e6);
}

TEST(Environments, WanLatenciesMatchPaperScale) {
  // One-way latencies between Chinese regions are tens of ms.
  const LatencyMatrix wan = wan_latency();
  for (std::uint32_t a = 0; a < kWanRegions; ++a) {
    for (std::uint32_t b = 0; b < kWanRegions; ++b) {
      if (a == b) continue;
      EXPECT_GE(wan.at(a, b), milliseconds(10));
      EXPECT_LE(wan.at(a, b), milliseconds(40));
    }
  }
}

}  // namespace
}  // namespace predis::sim
