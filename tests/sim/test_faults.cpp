// FaultScheduler: seed determinism, plan shape, and network effects.
#include "sim/faults.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "sim/environments.hpp"

namespace predis::sim {
namespace {

struct Fixture {
  Simulator sim;
  Network net{sim, LatencyMatrix::uniform(1, milliseconds(10))};
  std::vector<NodeId> targets;

  explicit Fixture(std::size_t n = 4) {
    for (std::size_t i = 0; i < n; ++i) {
      targets.push_back(net.add_node(NodeConfig{}));
    }
  }
};

TEST(FaultScheduler, SameSeedSamePlan) {
  FaultPlanConfig cfg;
  cfg.seed = 42;
  cfg.events = 8;
  cfg.equivocation = true;
  Fixture a, b;
  FaultScheduler fa(a.net, a.targets, cfg);
  FaultScheduler fb(b.net, b.targets, cfg);
  EXPECT_EQ(fa.describe(), fb.describe());
  EXPECT_EQ(fa.healed_by(), fb.healed_by());
  ASSERT_EQ(fa.plan().size(), fb.plan().size());
  for (std::size_t i = 0; i < fa.plan().size(); ++i) {
    EXPECT_EQ(fa.plan()[i].at, fb.plan()[i].at) << i;
    EXPECT_EQ(fa.plan()[i].kind, fb.plan()[i].kind) << i;
  }
}

TEST(FaultScheduler, DifferentSeedsDifferentPlans) {
  FaultPlanConfig cfg;
  cfg.events = 8;
  Fixture a, b;
  cfg.seed = 1;
  FaultScheduler fa(a.net, a.targets, cfg);
  cfg.seed = 2;
  FaultScheduler fb(b.net, b.targets, cfg);
  EXPECT_NE(fa.describe(), fb.describe());
}

TEST(FaultScheduler, PlanRespectsConfig) {
  FaultPlanConfig cfg;
  cfg.seed = 7;
  cfg.events = 12;
  cfg.equivocation = false;
  Fixture f;
  FaultScheduler fs(f.net, f.targets, cfg);

  EXPECT_EQ(fs.plan().size(), cfg.events);
  SimTime latest_heal = 0;
  for (const FaultEvent& e : fs.plan()) {
    EXPECT_GE(e.at, cfg.start);
    EXPECT_LT(e.at, cfg.horizon);
    EXPECT_NE(e.kind, FaultKind::kEquivocate);
    latest_heal = std::max(latest_heal, e.at + e.window);
  }
  EXPECT_GE(fs.healed_by(), latest_heal);
}

TEST(FaultScheduler, InjectsEveryEventAndHealsByDeadline) {
  FaultPlanConfig cfg;
  cfg.seed = 11;
  cfg.events = 6;
  Fixture f;
  FaultScheduler fs(f.net, f.targets, cfg);
  fs.arm();
  f.sim.run_until(fs.healed_by() + seconds(1));

  EXPECT_EQ(fs.faults_injected(), cfg.events);
  // Every crash healed: no target still down.
  for (NodeId id : f.targets) {
    EXPECT_FALSE(f.net.is_down(id)) << id;
  }
}

TEST(FaultScheduler, EquivocatorPopulationStaysWithinCap) {
  FaultPlanConfig cfg;
  cfg.seed = 3;
  cfg.events = 10;
  cfg.equivocation = true;
  cfg.max_equivocators = 1;
  // Only equivocation enabled -> every drawn event targets the
  // Byzantine population, which must stay within max_equivocators
  // distinct nodes (excess draws are demoted to benign drops).
  cfg.crashes = cfg.pair_partitions = cfg.zone_partitions = false;
  cfg.jitter = cfg.drops = false;
  Fixture f;
  FaultScheduler fs(f.net, f.targets, cfg);
  std::vector<NodeId> hits;
  fs.on_equivocate = [&](NodeId id) { hits.push_back(id); };
  fs.arm();
  f.sim.run_until(cfg.horizon + seconds(1));

  ASSERT_GE(hits.size(), 1u);
  const std::set<NodeId> distinct(hits.begin(), hits.end());
  EXPECT_LE(distinct.size(), cfg.max_equivocators);
  for (NodeId id : distinct) {
    EXPECT_EQ(std::count(f.targets.begin(), f.targets.end(), id), 1);
  }
}

}  // namespace
}  // namespace predis::sim
