// FaultScheduler: seed determinism, plan shape, and network effects.
#include "sim/faults.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "sim/environments.hpp"

namespace predis::sim {
namespace {

struct Fixture {
  Simulator sim;
  Network net{sim, LatencyMatrix::uniform(1, milliseconds(10))};
  std::vector<NodeId> targets;

  explicit Fixture(std::size_t n = 4) {
    for (std::size_t i = 0; i < n; ++i) {
      targets.push_back(net.add_node(NodeConfig{}));
    }
  }
};

TEST(FaultScheduler, SameSeedSamePlan) {
  FaultPlanConfig cfg;
  cfg.seed = 42;
  cfg.events = 8;
  cfg.equivocation = true;
  Fixture a, b;
  FaultScheduler fa(a.net, a.targets, cfg);
  FaultScheduler fb(b.net, b.targets, cfg);
  EXPECT_EQ(fa.describe(), fb.describe());
  EXPECT_EQ(fa.healed_by(), fb.healed_by());
  ASSERT_EQ(fa.plan().size(), fb.plan().size());
  for (std::size_t i = 0; i < fa.plan().size(); ++i) {
    EXPECT_EQ(fa.plan()[i].at, fb.plan()[i].at) << i;
    EXPECT_EQ(fa.plan()[i].kind, fb.plan()[i].kind) << i;
  }
}

TEST(FaultScheduler, DifferentSeedsDifferentPlans) {
  FaultPlanConfig cfg;
  cfg.events = 8;
  Fixture a, b;
  cfg.seed = 1;
  FaultScheduler fa(a.net, a.targets, cfg);
  cfg.seed = 2;
  FaultScheduler fb(b.net, b.targets, cfg);
  EXPECT_NE(fa.describe(), fb.describe());
}

TEST(FaultScheduler, PlanRespectsConfig) {
  FaultPlanConfig cfg;
  cfg.seed = 7;
  cfg.events = 12;
  cfg.equivocation = false;
  Fixture f;
  FaultScheduler fs(f.net, f.targets, cfg);

  EXPECT_EQ(fs.plan().size(), cfg.events);
  SimTime latest_heal = 0;
  for (const FaultEvent& e : fs.plan()) {
    EXPECT_GE(e.at, cfg.start);
    EXPECT_LT(e.at, cfg.horizon);
    EXPECT_NE(e.kind, FaultKind::kEquivocate);
    latest_heal = std::max(latest_heal, e.at + e.window);
  }
  EXPECT_GE(fs.healed_by(), latest_heal);
}

TEST(FaultScheduler, InjectsEveryEventAndHealsByDeadline) {
  FaultPlanConfig cfg;
  cfg.seed = 11;
  cfg.events = 6;
  Fixture f;
  FaultScheduler fs(f.net, f.targets, cfg);
  fs.arm();
  f.sim.run_until(fs.healed_by() + seconds(1));

  EXPECT_EQ(fs.faults_injected(), cfg.events);
  // Every crash healed: no target still down.
  for (NodeId id : f.targets) {
    EXPECT_FALSE(f.net.is_down(id)) << id;
  }
}

TEST(FaultScheduler, EquivocatorPopulationStaysWithinCap) {
  FaultPlanConfig cfg;
  cfg.seed = 3;
  cfg.events = 10;
  cfg.equivocation = true;
  cfg.max_equivocators = 1;
  // Only equivocation enabled -> every drawn event targets the
  // Byzantine population, which must stay within max_equivocators
  // distinct nodes (excess draws are demoted to benign drops).
  cfg.crashes = cfg.pair_partitions = cfg.zone_partitions = false;
  cfg.jitter = cfg.drops = false;
  Fixture f;
  FaultScheduler fs(f.net, f.targets, cfg);
  std::vector<NodeId> hits;
  fs.on_equivocate = [&](NodeId id) { hits.push_back(id); };
  fs.arm();
  f.sim.run_until(cfg.horizon + seconds(1));

  ASSERT_GE(hits.size(), 1u);
  const std::set<NodeId> distinct(hits.begin(), hits.end());
  EXPECT_LE(distinct.size(), cfg.max_equivocators);
  for (NodeId id : distinct) {
    EXPECT_EQ(std::count(f.targets.begin(), f.targets.end(), id), 1);
  }
}

TEST(FaultKindNames, ToStringCoversEveryKind) {
  std::set<std::string> seen;
  for (std::size_t i = 0; i < kFaultKindCount; ++i) {
    const char* name = to_string(static_cast<FaultKind>(i));
    EXPECT_STRNE(name, "?") << "kind " << i << " has no printable name";
    EXPECT_TRUE(seen.insert(name).second)
        << "duplicate name for kind " << i;
  }
}

TEST(FaultScheduler, AdversarialKindsDefaultOff) {
  // New attack kinds must not change existing seed-derived plans.
  FaultPlanConfig cfg;
  cfg.seed = 9;
  cfg.events = 20;
  Fixture f;
  FaultScheduler fs(f.net, f.targets, cfg);
  for (const FaultEvent& e : fs.plan()) {
    EXPECT_NE(e.kind, FaultKind::kThrottle);
    EXPECT_NE(e.kind, FaultKind::kWithhold);
    EXPECT_NE(e.kind, FaultKind::kGarbage);
    EXPECT_NE(e.kind, FaultKind::kChurnStorm);
  }
}

FaultPlanConfig adversarial_only(FaultKind kind) {
  FaultPlanConfig cfg;
  cfg.crashes = cfg.pair_partitions = cfg.zone_partitions = false;
  cfg.jitter = cfg.drops = false;
  cfg.throttle = kind == FaultKind::kThrottle;
  cfg.withhold = kind == FaultKind::kWithhold;
  cfg.garbage = kind == FaultKind::kGarbage;
  cfg.churn_storms = kind == FaultKind::kChurnStorm;
  return cfg;
}

TEST(FaultScheduler, DescribeNamesAdversarialEvents) {
  for (FaultKind kind :
       {FaultKind::kThrottle, FaultKind::kWithhold, FaultKind::kGarbage,
        FaultKind::kChurnStorm}) {
    FaultPlanConfig cfg = adversarial_only(kind);
    cfg.seed = 5;
    cfg.events = 3;
    Fixture f;
    FaultScheduler fs(f.net, f.targets, cfg);
    ASSERT_FALSE(fs.plan().empty()) << to_string(kind);
    EXPECT_NE(fs.describe().find(to_string(kind)), std::string::npos)
        << fs.describe();
  }
}

TEST(FaultScheduler, PinNodeAimsAdversarialEventsAtOneTarget) {
  FaultPlanConfig cfg = adversarial_only(FaultKind::kThrottle);
  cfg.seed = 13;
  cfg.events = 6;
  cfg.pin_node = 2;
  Fixture f;
  FaultScheduler fs(f.net, f.targets, cfg);
  ASSERT_FALSE(fs.plan().empty());
  for (const FaultEvent& e : fs.plan()) {
    EXPECT_EQ(e.a, f.targets[2]);
  }
}

TEST(FaultScheduler, GarbageHookFiresOnPinnedNodeOnly) {
  FaultPlanConfig cfg = adversarial_only(FaultKind::kGarbage);
  cfg.seed = 17;
  cfg.events = 4;
  cfg.pin_node = 1;
  Fixture f;
  FaultScheduler fs(f.net, f.targets, cfg);
  std::vector<NodeId> hits;
  fs.on_garbage = [&](NodeId id, SimTime window) {
    EXPECT_GT(window, 0u);
    hits.push_back(id);
  };
  fs.arm();
  f.sim.run_until(fs.healed_by() + seconds(1));
  ASSERT_GE(hits.size(), 1u);
  for (NodeId id : hits) EXPECT_EQ(id, f.targets[1]);
}

// Named test messages for the data-plane withholding filter.
struct BundleLikeMsg final : Message {
  std::size_t wire_size() const override { return 64; }
  const char* name() const override { return "Bundle"; }
};
struct VoteLikeMsg final : Message {
  std::size_t wire_size() const override { return 64; }
  const char* name() const override { return "Prepare"; }
};

struct CountingActor final : Actor {
  std::size_t bundles = 0;
  std::size_t votes = 0;
  void on_message(NodeId, const MsgPtr& msg) override {
    if (std::string(msg->name()) == "Bundle") ++bundles;
    if (std::string(msg->name()) == "Prepare") ++votes;
  }
};

TEST(FaultScheduler, WithholderSwallowsDataPlaneButNotVotes) {
  FaultPlanConfig cfg = adversarial_only(FaultKind::kWithhold);
  cfg.seed = 23;
  cfg.events = 1;
  cfg.pin_node = 0;
  Fixture f;
  CountingActor rx;
  f.net.attach(f.targets[1], &rx);
  FaultScheduler fs(f.net, f.targets, cfg);
  std::vector<NodeId> withholders;
  fs.on_withhold = [&](NodeId id) { withholders.push_back(id); };
  fs.arm();
  ASSERT_EQ(fs.plan().size(), 1u);
  const FaultEvent ev = fs.plan()[0];
  // Mid-window: data-plane names dropped, votes pass.
  f.sim.schedule_at(ev.at + ev.window / 2, [&] {
    f.net.send(f.targets[0], f.targets[1],
               std::make_shared<BundleLikeMsg>());
    f.net.send(f.targets[0], f.targets[1], std::make_shared<VoteLikeMsg>());
  });
  // Post-heal: everything flows again.
  f.sim.schedule_at(ev.at + ev.window + seconds(1), [&] {
    f.net.send(f.targets[0], f.targets[1],
               std::make_shared<BundleLikeMsg>());
  });
  f.net.start();
  f.sim.run_until(ev.at + ev.window + seconds(2));
  EXPECT_EQ(rx.votes, 1u);
  EXPECT_EQ(rx.bundles, 1u);  // only the post-heal one
  ASSERT_EQ(withholders.size(), 1u);
  EXPECT_EQ(withholders[0], f.targets[0]);
}

struct StampActor final : Actor {
  Simulator* sim = nullptr;
  std::vector<SimTime> arrivals;
  void on_message(NodeId, const MsgPtr&) override {
    arrivals.push_back(sim->now());
  }
};

TEST(FaultScheduler, ThrottleDelaysOutboundUnderTimeout) {
  FaultPlanConfig cfg = adversarial_only(FaultKind::kThrottle);
  cfg.seed = 29;
  cfg.events = 1;
  cfg.pin_node = 0;
  cfg.throttle_delay = milliseconds(400);
  Fixture f;
  StampActor rx;
  rx.sim = &f.sim;
  f.net.attach(f.targets[1], &rx);
  FaultScheduler fs(f.net, f.targets, cfg);
  fs.arm();
  ASSERT_EQ(fs.plan().size(), 1u);
  const FaultEvent ev = fs.plan()[0];
  const SimTime sent_at = ev.at + ev.window / 2;
  f.sim.schedule_at(sent_at, [&] {
    f.net.send(f.targets[0], f.targets[1],
               std::make_shared<VoteLikeMsg>());
  });
  f.net.start();
  f.sim.run_until(ev.at + ev.window + seconds(2));
  ASSERT_EQ(rx.arrivals.size(), 1u);
  // The base fixture latency is 10 ms; anything near throttle_delay
  // proves the slow-leader path engaged.
  EXPECT_GE(rx.arrivals[0] - sent_at, cfg.throttle_delay);
}

TEST(FaultScheduler, ChurnStormKeepsAtMostOneNodeDown) {
  FaultPlanConfig cfg = adversarial_only(FaultKind::kChurnStorm);
  cfg.seed = 31;
  cfg.events = 1;
  cfg.churn_cycles = 3;
  cfg.max_churn_nodes = 2;
  Fixture f;
  FaultScheduler fs(f.net, f.targets, cfg);
  fs.arm();
  std::size_t max_down = 0;
  bool saw_down = false;
  // Sample the down-set densely across the whole storm.
  for (SimTime t = cfg.start; t < fs.healed_by(); t += milliseconds(5)) {
    f.sim.schedule_at(t, [&] {
      std::size_t down = 0;
      for (NodeId id : f.targets) {
        if (f.net.is_down(id)) ++down;
      }
      max_down = std::max(max_down, down);
      saw_down = saw_down || down > 0;
    });
  }
  f.sim.run_until(fs.healed_by() + seconds(1));
  EXPECT_TRUE(saw_down);
  EXPECT_LE(max_down, 1u);
  for (NodeId id : f.targets) EXPECT_FALSE(f.net.is_down(id));
}

FaultPlanConfig partitions_only() {
  FaultPlanConfig cfg;
  cfg.crashes = cfg.pair_partitions = cfg.zone_partitions = false;
  cfg.jitter = cfg.drops = false;
  cfg.partitions = true;
  return cfg;
}

TEST(FaultScheduler, PartitionPlanCutsDeterministicMinority) {
  FaultPlanConfig cfg = partitions_only();
  cfg.seed = 37;
  cfg.events = 5;
  cfg.max_partition_nodes = 2;
  Fixture a, b;
  FaultScheduler fa(a.net, a.targets, cfg);
  FaultScheduler fb(b.net, b.targets, cfg);
  EXPECT_EQ(fa.describe(), fb.describe());
  ASSERT_EQ(fa.plan().size(), cfg.events);
  for (const FaultEvent& e : fa.plan()) {
    EXPECT_EQ(e.kind, FaultKind::kPartition);
    ASSERT_FALSE(e.side.empty());
    // Minority cut: never the whole group, capped by config.
    EXPECT_LE(e.side.size(), cfg.max_partition_nodes);
    EXPECT_LT(e.side.size(), a.targets.size());
    EXPECT_TRUE(std::is_sorted(e.side.begin(), e.side.end()));
  }
}

struct ReconnectActor final : Actor {
  std::size_t messages = 0;
  std::size_t restarts = 0;
  void on_message(NodeId, const MsgPtr&) override { ++messages; }
  void on_restart() override { ++restarts; }
};

TEST(FaultScheduler, PartitionCutsLinksBidirectionallyAndHeals) {
  FaultPlanConfig cfg = partitions_only();
  cfg.seed = 41;
  cfg.events = 1;
  cfg.max_partition_nodes = 1;
  Fixture f;
  FaultScheduler fs(f.net, f.targets, cfg);
  ASSERT_EQ(fs.plan().size(), 1u);
  const FaultEvent ev = fs.plan()[0];
  ASSERT_EQ(ev.side.size(), 1u);
  const NodeId cut = ev.side[0];
  const NodeId other =
      cut == f.targets[0] ? f.targets[1] : f.targets[0];
  ReconnectActor on_cut, on_other;
  f.net.attach(cut, &on_cut);
  f.net.attach(other, &on_other);
  fs.arm();
  // Mid-window: both directions across the cut are severed.
  f.sim.schedule_at(ev.at + ev.window / 2, [&] {
    f.net.send(other, cut, std::make_shared<VoteLikeMsg>());
    f.net.send(cut, other, std::make_shared<VoteLikeMsg>());
  });
  // Post-heal: traffic flows again.
  f.sim.schedule_at(ev.at + ev.window + seconds(1), [&] {
    f.net.send(other, cut, std::make_shared<VoteLikeMsg>());
    f.net.send(cut, other, std::make_shared<VoteLikeMsg>());
  });
  f.net.start();
  f.sim.run_until(ev.at + ev.window + seconds(2));
  EXPECT_EQ(on_cut.messages, 1u);
  EXPECT_EQ(on_other.messages, 1u);
  // Heal pokes the cut side's recovery hook exactly once; the node
  // never crashed, so no other on_restart source exists.
  EXPECT_EQ(on_cut.restarts, 1u);
  EXPECT_EQ(on_other.restarts, 0u);
}

}  // namespace
}  // namespace predis::sim
