// Fault accounting: dropped-message counters and uplink backpressure.
#include <gtest/gtest.h>

#include "consensus/predis/predis_engine.hpp"
#include "sim/network.hpp"

namespace predis::sim {
namespace {

struct TestMsg final : Message {
  std::size_t size;
  explicit TestMsg(std::size_t s) : size(s) {}
  std::size_t wire_size() const override { return size; }
  const char* name() const override { return "Test"; }
};

class Recorder final : public Actor {
 public:
  void on_message(NodeId, const MsgPtr&) override { ++received; }
  std::size_t received = 0;
};

// 1 MB/s links so a 1000-byte message (936 + 64 overhead) takes 1 ms.
NodeConfig slow_node() {
  NodeConfig cfg;
  cfg.up_bw = 1e6;
  cfg.down_bw = 1e6;
  return cfg;
}

constexpr std::size_t kBody = 1000 - Network::kTransportOverhead;

struct NetFixture {
  Simulator sim;
  Network net{sim, LatencyMatrix::uniform(1, milliseconds(10))};
};

TEST(NetworkFaults, DropFilterCountsDroppedMessages) {
  NetFixture f;
  const NodeId a = f.net.add_node(slow_node());
  const NodeId b = f.net.add_node(slow_node());
  Recorder rec;
  f.net.attach(b, &rec);
  f.net.set_drop_filter(
      [](NodeId, NodeId to, const Message&) { return to == 1; });

  for (int i = 0; i < 5; ++i) {
    f.net.send(a, b, std::make_shared<TestMsg>(kBody));
  }
  f.sim.run();
  EXPECT_EQ(rec.received, 0u);
  EXPECT_EQ(f.net.stats(a).messages_dropped, 5u);
  // Dropped messages never made it onto the wire.
  EXPECT_EQ(f.net.stats(a).messages_sent, 0u);
  EXPECT_EQ(f.net.stats(a).bytes_sent, 0u);
}

TEST(NetworkFaults, SelectiveDropFilterOnlyCountsMatches) {
  NetFixture f;
  const NodeId a = f.net.add_node(slow_node());
  const NodeId b = f.net.add_node(slow_node());
  const NodeId c = f.net.add_node(slow_node());
  Recorder rb, rc;
  f.net.attach(b, &rb);
  f.net.attach(c, &rc);
  f.net.set_drop_filter(
      [&](NodeId, NodeId to, const Message&) { return to == b; });

  f.net.send(a, b, std::make_shared<TestMsg>(kBody));
  f.net.send(a, c, std::make_shared<TestMsg>(kBody));
  f.sim.run();
  EXPECT_EQ(rb.received, 0u);
  EXPECT_EQ(rc.received, 1u);
  EXPECT_EQ(f.net.stats(a).messages_dropped, 1u);
  EXPECT_EQ(f.net.stats(a).messages_sent, 1u);
}

TEST(NetworkFaults, DownDestinationCountsDropAtSender) {
  NetFixture f;
  const NodeId a = f.net.add_node(slow_node());
  const NodeId b = f.net.add_node(slow_node());
  Recorder rec;
  f.net.attach(b, &rec);

  f.net.set_node_down(b, true);
  f.net.send(a, b, std::make_shared<TestMsg>(kBody));
  f.sim.run();
  EXPECT_EQ(rec.received, 0u);
  EXPECT_EQ(f.net.stats(a).messages_dropped, 1u);

  // Back up: traffic flows and the drop counter stays put.
  f.net.set_node_down(b, false);
  f.net.send(a, b, std::make_shared<TestMsg>(kBody));
  f.sim.run();
  EXPECT_EQ(rec.received, 1u);
  EXPECT_EQ(f.net.stats(a).messages_dropped, 1u);
}

TEST(NetworkFaults, DownSourceCountsOwnSendsAsDropped) {
  NetFixture f;
  const NodeId a = f.net.add_node(slow_node());
  const NodeId b = f.net.add_node(slow_node());
  Recorder rec;
  f.net.attach(b, &rec);

  f.net.set_node_down(a, true);
  f.net.send(a, b, std::make_shared<TestMsg>(kBody));
  f.sim.run();
  EXPECT_EQ(rec.received, 0u);
  EXPECT_EQ(f.net.stats(a).messages_dropped, 1u);
  EXPECT_EQ(f.net.stats(a).messages_sent, 0u);
}

TEST(NetworkFaults, UplinkBacklogGrowsWithQueuedSendsAndDrains) {
  NetFixture f;
  const NodeId a = f.net.add_node(slow_node());
  const NodeId b = f.net.add_node(slow_node());
  Recorder rec;
  f.net.attach(b, &rec);

  EXPECT_EQ(f.net.uplink_backlog(a), 0);
  // Five 1 ms transmissions queue FIFO on the uplink.
  for (int i = 0; i < 5; ++i) {
    f.net.send(a, b, std::make_shared<TestMsg>(kBody));
  }
  EXPECT_EQ(f.net.uplink_backlog(a), milliseconds(5));
  f.sim.run();
  EXPECT_EQ(rec.received, 5u);
  EXPECT_EQ(f.net.uplink_backlog(a), 0);
}

TEST(NetworkFaults, EngineBackpressureShedsClientLoad) {
  using namespace predis::consensus;
  NetFixture f;
  std::vector<NodeId> ids;
  for (int i = 0; i < 4; ++i) ids.push_back(f.net.add_node(slow_node()));

  ConsensusConfig ccfg;
  ccfg.nodes = ids;
  ccfg.f = 1;
  std::vector<PublicKey> keys;
  for (NodeId id : ids) keys.push_back(KeyPair::from_seed(id).public_key());

  consensus::predis::PredisConfig pcfg;
  pcfg.bundle_size = 8;
  NodeContext ctx(f.net, ids[0], ccfg);
  consensus::predis::PredisEngine engine(ctx, pcfg, keys,
                                         KeyPair::from_seed(ids[0]));
  std::size_t produced = 0;
  engine.on_bundle_produced = [&](const Bundle&) { ++produced; };

  std::uint64_t next_seq = 0;
  auto batch = [&] {
    std::vector<Transaction> txs;
    for (std::size_t i = 0; i < pcfg.bundle_size; ++i) {
      Transaction tx;
      tx.client = 99;
      tx.seq = next_seq;
      tx.payload_seed = next_seq++;
      txs.push_back(tx);
    }
    return txs;
  };

  // Idle uplink: a full bundle's worth of transactions packs eagerly.
  engine.enqueue(batch());
  EXPECT_EQ(produced, 1u);

  // Saturate the uplink far past the backpressure threshold; the
  // engine must shed the new batch instead of queueing it.
  f.net.send(ids[0], ids[1],
             std::make_shared<TestMsg>(static_cast<std::size_t>(
                 to_seconds(pcfg.backpressure + seconds(1)) * 1e6)));
  ASSERT_GT(f.net.uplink_backlog(ids[0]), pcfg.backpressure);
  engine.enqueue(batch());
  EXPECT_EQ(produced, 1u);

  // Once the backlog drains, load is accepted again.
  f.sim.run();
  EXPECT_EQ(f.net.uplink_backlog(ids[0]), 0);
  engine.enqueue(batch());
  EXPECT_EQ(produced, 2u);
}

}  // namespace
}  // namespace predis::sim
