// Randomized round-trip and robustness checks for the codec and the
// wire structures built on it.
#include <gtest/gtest.h>

#include "bundle/predis_block.hpp"
#include "common/codec.hpp"
#include "common/rng.hpp"

namespace predis {
namespace {

class CodecFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CodecFuzz, RandomScalarSequencesRoundTrip) {
  Rng rng(GetParam());
  Writer w;
  std::vector<std::uint64_t> expected;
  std::vector<int> kinds;
  for (int i = 0; i < 200; ++i) {
    const int kind = static_cast<int>(rng.next_below(4));
    kinds.push_back(kind);
    const std::uint64_t v = rng.next();
    expected.push_back(v);
    switch (kind) {
      case 0: w.u8(static_cast<std::uint8_t>(v)); break;
      case 1: w.u16(static_cast<std::uint16_t>(v)); break;
      case 2: w.u32(static_cast<std::uint32_t>(v)); break;
      case 3: w.u64(v); break;
    }
  }
  Reader r(w.data());
  for (int i = 0; i < 200; ++i) {
    switch (kinds[i]) {
      case 0: EXPECT_EQ(r.u8(), static_cast<std::uint8_t>(expected[i])); break;
      case 1: EXPECT_EQ(r.u16(), static_cast<std::uint16_t>(expected[i])); break;
      case 2: EXPECT_EQ(r.u32(), static_cast<std::uint32_t>(expected[i])); break;
      case 3: EXPECT_EQ(r.u64(), expected[i]); break;
    }
  }
  EXPECT_TRUE(r.done());
}

TEST_P(CodecFuzz, TruncationAlwaysThrowsNeverCrashes) {
  Rng rng(GetParam() * 31);
  // Build a valid encoded bundle header, then decode every prefix.
  BundleHeader h;
  h.producer = 2;
  h.height = rng.next();
  h.tip_list = {rng.next(), rng.next(), rng.next()};
  Writer w;
  h.encode(w);
  const Bytes& full = w.data();
  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    Reader r(BytesView(full.data(), cut));
    EXPECT_THROW(BundleHeader::decode(r), CodecError) << "prefix " << cut;
  }
  // The full encoding decodes cleanly.
  Reader ok(full);
  EXPECT_EQ(BundleHeader::decode(ok), h);
}

TEST_P(CodecFuzz, PredisBlockRandomizedRoundTrip) {
  Rng rng(GetParam() * 77);
  PredisBlock b;
  b.height = rng.next();
  b.leader = static_cast<NodeId>(rng.next_below(64));
  b.view = rng.next_below(1000);
  const std::size_t n = 1 + rng.next_below(16);
  for (std::size_t i = 0; i < n; ++i) {
    const BundleHeight prev = rng.next_below(1000);
    b.prev_heights.push_back(prev);
    b.cut_heights.push_back(prev + rng.next_below(20));
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (b.cut_heights[i] != b.prev_heights[i]) {
      Hash32 hh;
      for (auto& byte : hh) byte = static_cast<std::uint8_t>(rng.next());
      b.header_hashes.push_back(hh);
    }
  }
  for (auto& byte : b.signature) byte = static_cast<std::uint8_t>(rng.next());

  Writer w;
  b.encode(w);
  EXPECT_EQ(w.size(), b.wire_size());
  Reader r(w.data());
  EXPECT_EQ(PredisBlock::decode(r), b);
  EXPECT_TRUE(r.done());
}

INSTANTIATE_TEST_SUITE_P(Seeds, CodecFuzz,
                         ::testing::Range<std::uint64_t>(1, 13));

}  // namespace
}  // namespace predis
