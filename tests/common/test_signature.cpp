#include "common/signature.hpp"

#include <gtest/gtest.h>

namespace predis {
namespace {

TEST(Signature, SignVerifyRoundTrip) {
  const KeyPair kp = KeyPair::from_seed(1);
  const std::string msg = "authorize bundle 42";
  const Signature sig = kp.sign(as_bytes(msg));
  EXPECT_TRUE(verify(kp.public_key(), as_bytes(msg), sig));
}

TEST(Signature, WrongMessageFails) {
  const KeyPair kp = KeyPair::from_seed(2);
  const Signature sig = kp.sign(as_bytes(std::string("original")));
  EXPECT_FALSE(verify(kp.public_key(), as_bytes(std::string("tampered")), sig));
}

TEST(Signature, WrongKeyFails) {
  const KeyPair alice = KeyPair::from_seed(3);
  const KeyPair bob = KeyPair::from_seed(4);
  const std::string msg = "hello";
  const Signature sig = alice.sign(as_bytes(msg));
  EXPECT_FALSE(verify(bob.public_key(), as_bytes(msg), sig));
}

TEST(Signature, DeterministicAcrossInstances) {
  const KeyPair a = KeyPair::from_seed(5);
  const KeyPair b = KeyPair::from_seed(5);
  EXPECT_EQ(a.public_key(), b.public_key());
  EXPECT_EQ(a.sign(as_bytes(std::string("m"))),
            b.sign(as_bytes(std::string("m"))));
}

TEST(Signature, DistinctSeedsDistinctKeys) {
  EXPECT_NE(KeyPair::from_seed(6).public_key(),
            KeyPair::from_seed(7).public_key());
}

TEST(Signature, UnknownKeyNeverVerifies) {
  PublicKey unknown{};
  unknown[0] = 0x5a;
  Signature sig{};
  EXPECT_FALSE(verify(unknown, as_bytes(std::string("m")), sig));
}

TEST(Signature, ForgedSignatureFails) {
  const KeyPair kp = KeyPair::from_seed(8);
  Signature forged = kp.sign(as_bytes(std::string("m")));
  forged[10] ^= 0xff;
  EXPECT_FALSE(verify(kp.public_key(), as_bytes(std::string("m")), forged));
}

}  // namespace
}  // namespace predis
