#include "common/metrics_registry.hpp"

#include <gtest/gtest.h>

#include "common/stats.hpp"

namespace predis {
namespace {

TEST(Counter, StartsAtZeroAndAccumulates) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(Gauge, HoldsLastValue) {
  Gauge g;
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  g.set(3.5);
  g.set(-1.25);
  EXPECT_DOUBLE_EQ(g.value(), -1.25);
}

TEST(LatencyHistogram, EmptyReportsZeros) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.percentile(50), 0.0);
  EXPECT_DOUBLE_EQ(h.percentile(99), 0.0);
}

TEST(LatencyHistogram, SingleValueClampsAllPercentiles) {
  LatencyHistogram h;
  h.record(37.25);
  for (double p : {0.0, 50.0, 95.0, 99.0, 100.0}) {
    EXPECT_DOUBLE_EQ(h.percentile(p), 37.25);
  }
}

// The HDR bucket layout promises <= ~1.6 % relative error; nearest-rank
// vs interpolation adds a little more on sparse tails. Validate the
// bucketed percentiles against the exact Percentiles machinery across
// four orders of magnitude.
TEST(LatencyHistogram, PercentilesTrackExactWithinBucketError) {
  LatencyHistogram h;
  Percentiles exact;
  double v = 0.05;  // 50 us, above the exact-bucket floor.
  for (int i = 0; i < 300; ++i) {
    h.record(v);
    exact.add(v);
    v *= 1.04;  // up to ~6.4 s
  }
  for (double p : {50.0, 90.0, 95.0, 99.0}) {
    const double want = exact.percentile(p);
    EXPECT_NEAR(h.percentile(p), want, want * 0.04)
        << "p" << p << " diverged";
  }
  EXPECT_EQ(h.count(), 300u);
  EXPECT_NEAR(h.mean(), exact.mean(), exact.mean() * 1e-9);
}

TEST(LatencyHistogram, SubMillisecondValuesStayExact) {
  LatencyHistogram h;
  // Below 32 us the buckets are 1 us wide: recording 1 us and 20 us
  // must not smear together.
  h.record(0.001);
  h.record(0.020);
  EXPECT_LE(h.percentile(0), 0.002);
  EXPECT_GE(h.percentile(100), 0.019);
}

TEST(MetricsRegistry, LookupCreatesOnFirstUse) {
  MetricsRegistry r;
  r.counter("a.count").inc(3);
  r.gauge("b.gauge").set(2.5);
  r.histogram("c.lat").record(10.0);
  EXPECT_EQ(r.counters().at("a.count").value(), 3u);
  EXPECT_DOUBLE_EQ(r.gauges().at("b.gauge").value(), 2.5);
  EXPECT_EQ(r.histograms().at("c.lat").count(), 1u);
  // Second lookup returns the same metric, not a fresh one.
  r.counter("a.count").inc();
  EXPECT_EQ(r.counters().at("a.count").value(), 4u);
}

TEST(MetricsRegistry, JsonExportIsDeterministicAndNamed) {
  const auto fill = [](MetricsRegistry& r) {
    r.counter("z.count").inc(7);
    r.counter("a.count").inc(1);
    r.gauge("mid.gauge").set(0.5);
    r.histogram("lat.commit").record(12.0);
    r.histogram("lat.commit").record(48.0);
  };
  MetricsRegistry r1, r2;
  fill(r1);
  fill(r2);
  const std::string json = r1.to_json();
  EXPECT_EQ(json, r2.to_json());
  EXPECT_NE(json.find("\"a.count\""), std::string::npos);
  EXPECT_NE(json.find("\"lat.commit\""), std::string::npos);
  EXPECT_NE(json.find("\"p95_ms\""), std::string::npos);
}

TEST(MetricsRegistry, DigestIsContentSensitive) {
  const auto fill = [](MetricsRegistry& r) {
    r.counter("x").inc(2);
    r.histogram("h").record(5.0);
  };
  MetricsRegistry a, b;
  fill(a);
  fill(b);
  EXPECT_EQ(a.digest(), b.digest());
  b.histogram("h").record(5.0);  // one extra sample
  EXPECT_NE(a.digest(), b.digest());
  MetricsRegistry c;
  fill(c);
  c.counter("y");  // a new name alone must change the digest
  EXPECT_NE(a.digest(), c.digest());
}

TEST(LatencyHistogram, HeavyTailStragglersReportedExactly) {
  // Regression for the distribution-tail hunt: multi-second stragglers
  // (the tracer saw ~4.4 s pull retries) must surface exactly — in
  // max(), in the retained top-k, and in the extreme percentiles —
  // instead of saturating the old bucket range or hiding behind a
  // healthy bucketed p99. Synthetic series shaped on the pre-fix
  // trace: a tight 20-30 ms body plus five outliers.
  LatencyHistogram h;
  for (int i = 0; i < 2000; ++i) h.record(20.0 + (i % 10));
  const double stragglers[] = {980.0, 1500.0, 2200.0, 3600.0, 4364.5};
  for (double s : stragglers) h.record(s);

  EXPECT_EQ(h.max(), 4364.5);  // exact sample, not a bucket midpoint
  ASSERT_GE(h.top().size(), 5u);
  EXPECT_EQ(h.top()[0], 4364.5);
  EXPECT_EQ(h.top()[1], 3600.0);
  EXPECT_EQ(h.top()[2], 2200.0);
  EXPECT_EQ(h.top()[3], 1500.0);
  EXPECT_EQ(h.top()[4], 980.0);
  // Ranks inside the retained top-k answer exactly: p100 == max.
  EXPECT_EQ(h.percentile(100.0), 4364.5);
  EXPECT_GE(h.percentile(99.9), 980.0);
  // The body stays sane (bucket error <= ~1.6 %).
  EXPECT_NEAR(h.percentile(50.0), 24.5, 2.0);
  EXPECT_LT(h.percentile(95.0), 100.0);
}

TEST(LatencyHistogram, ExtremeValuesLandInTerminalBucketWithoutWrapping) {
  // Values past the explicit bucket-index cap collapse into the
  // terminal overflow bucket; the exact top-k still reports them.
  LatencyHistogram h;
  h.record(5.0);
  h.record(1e15);  // far beyond the ~2^44 us bucket range
  EXPECT_EQ(h.max(), 1e15);
  EXPECT_EQ(h.top().front(), 1e15);
  EXPECT_EQ(h.percentile(100.0), 1e15);
  EXPECT_LE(h.percentile(50.0), 1e15);
  EXPECT_EQ(h.count(), 2u);
}

}  // namespace
}  // namespace predis
