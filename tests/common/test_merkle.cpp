#include "common/merkle.hpp"

#include <gtest/gtest.h>

#include "common/bytes.hpp"

namespace predis {
namespace {

std::vector<Hash32> make_leaves(std::size_t n) {
  std::vector<Hash32> leaves;
  for (std::size_t i = 0; i < n; ++i) {
    leaves.push_back(Sha256::hash(as_bytes("leaf-" + std::to_string(i))));
  }
  return leaves;
}

TEST(Merkle, SingleLeafRootIsLeaf) {
  const auto leaves = make_leaves(1);
  EXPECT_EQ(MerkleTree::root_of(leaves), leaves[0]);
}

TEST(Merkle, TwoLeavesRootIsPairHash) {
  const auto leaves = make_leaves(2);
  EXPECT_EQ(MerkleTree::root_of(leaves), hash_pair(leaves[0], leaves[1]));
}

TEST(Merkle, OddLeafCountDuplicatesLast) {
  const auto leaves = make_leaves(3);
  const Hash32 expected = hash_pair(hash_pair(leaves[0], leaves[1]),
                                    hash_pair(leaves[2], leaves[2]));
  EXPECT_EQ(MerkleTree::root_of(leaves), expected);
}

TEST(Merkle, EmptyLeavesThrow) {
  EXPECT_THROW(MerkleTree tree({}), std::invalid_argument);
}

TEST(Merkle, RootChangesWithAnyLeaf) {
  auto leaves = make_leaves(8);
  const Hash32 root = MerkleTree::root_of(leaves);
  leaves[3] = Sha256::hash(as_bytes(std::string("tampered")));
  EXPECT_NE(MerkleTree::root_of(leaves), root);
}

class MerkleProofTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MerkleProofTest, EveryLeafProves) {
  const std::size_t n = GetParam();
  const auto leaves = make_leaves(n);
  const MerkleTree tree(leaves);
  for (std::size_t i = 0; i < n; ++i) {
    const MerkleProof proof = tree.prove(i);
    EXPECT_TRUE(MerkleTree::verify(tree.root(), leaves[i], proof))
        << "leaf " << i << " of " << n;
  }
}

TEST_P(MerkleProofTest, WrongLeafFailsProof) {
  const std::size_t n = GetParam();
  const auto leaves = make_leaves(n);
  const MerkleTree tree(leaves);
  const Hash32 bogus = Sha256::hash(as_bytes(std::string("bogus")));
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_FALSE(MerkleTree::verify(tree.root(), bogus, tree.prove(i)));
  }
}

INSTANTIATE_TEST_SUITE_P(LeafCounts, MerkleProofTest,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 9, 16, 17,
                                           31, 32, 33, 64, 100));

TEST(Merkle, ProofAgainstWrongRootFails) {
  const auto leaves = make_leaves(6);
  const MerkleTree tree(leaves);
  const auto other = make_leaves(7);
  const Hash32 other_root = MerkleTree::root_of(other);
  EXPECT_FALSE(MerkleTree::verify(other_root, leaves[2], tree.prove(2)));
}

TEST(Merkle, ProveOutOfRangeThrows) {
  const MerkleTree tree(make_leaves(4));
  EXPECT_THROW(tree.prove(4), std::out_of_range);
}

}  // namespace
}  // namespace predis
