#include "common/bytes.hpp"

#include <gtest/gtest.h>

namespace predis {
namespace {

TEST(Bytes, HexRoundTrip) {
  const Bytes data = {0x00, 0x01, 0xab, 0xff, 0x7f};
  EXPECT_EQ(to_hex(data), "0001abff7f");
  EXPECT_EQ(from_hex("0001abff7f"), data);
}

TEST(Bytes, FromHexAcceptsUppercase) {
  EXPECT_EQ(from_hex("ABCDEF"), (Bytes{0xab, 0xcd, 0xef}));
}

TEST(Bytes, FromHexRejectsOddLength) {
  EXPECT_THROW(from_hex("abc"), std::invalid_argument);
}

TEST(Bytes, FromHexRejectsNonHex) {
  EXPECT_THROW(from_hex("zz"), std::invalid_argument);
}

TEST(Bytes, EmptyRoundTrip) {
  EXPECT_EQ(to_hex(Bytes{}), "");
  EXPECT_TRUE(from_hex("").empty());
}

TEST(Bytes, AsBytesViewsString) {
  const std::string s = "hi";
  const BytesView view = as_bytes(s);
  ASSERT_EQ(view.size(), 2u);
  EXPECT_EQ(view[0], 'h');
  EXPECT_EQ(view[1], 'i');
}

}  // namespace
}  // namespace predis
