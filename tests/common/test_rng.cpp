#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace predis {
namespace {

TEST(Rng, DeterministicFromSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_LT(rng.next_below(13), 13u);
  }
}

TEST(Rng, NextBelowZeroThrows) {
  Rng rng(7);
  EXPECT_THROW(rng.next_below(0), std::invalid_argument);
}

TEST(Rng, NextBelowCoversAllValues) {
  Rng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.next_below(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, NextRangeInclusive) {
  Rng rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = rng.next_range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(13);
  for (int i = 0; i < 10'000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, ChanceExtremes) {
  Rng rng(15);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ExponentialMeanApproximatelyCorrect) {
  Rng rng(17);
  double sum = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) sum += rng.next_exponential(50.0);
  EXPECT_NEAR(sum / n, 50.0, 2.0);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(19);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, SampleIndicesDistinctAndInRange) {
  Rng rng(21);
  const auto sample = rng.sample_indices(100, 10);
  ASSERT_EQ(sample.size(), 10u);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 10u);
  for (std::size_t idx : sample) EXPECT_LT(idx, 100u);
}

TEST(Rng, SampleMoreThanPopulationThrows) {
  Rng rng(23);
  EXPECT_THROW(rng.sample_indices(3, 4), std::invalid_argument);
}

}  // namespace
}  // namespace predis
