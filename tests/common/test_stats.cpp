#include "common/stats.hpp"

#include <gtest/gtest.h>

#include "common/metrics.hpp"

namespace predis {
namespace {

TEST(Summary, TracksMinMaxMeanCount) {
  Summary s;
  s.add(2.0);
  s.add(4.0);
  s.add(9.0);
  EXPECT_EQ(s.count(), 3u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(Summary, EmptyIsZero) {
  Summary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST(Percentiles, MedianOfOddSet) {
  Percentiles p;
  for (double v : {5.0, 1.0, 3.0}) p.add(v);
  EXPECT_DOUBLE_EQ(p.median(), 3.0);
}

TEST(Percentiles, InterpolatesBetweenRanks) {
  Percentiles p;
  p.add(0.0);
  p.add(10.0);
  EXPECT_DOUBLE_EQ(p.percentile(50), 5.0);
  EXPECT_DOUBLE_EQ(p.percentile(0), 0.0);
  EXPECT_DOUBLE_EQ(p.percentile(100), 10.0);
}

TEST(Percentiles, EmptyIsZero) {
  Percentiles p;
  EXPECT_DOUBLE_EQ(p.percentile(99), 0.0);
  EXPECT_DOUBLE_EQ(p.mean(), 0.0);
}

TEST(Metrics, ThroughputCountsWindowOnly) {
  Metrics m;
  m.record_commit(seconds(1), 100);
  m.record_commit(seconds(5), 200);
  m.record_commit(seconds(9), 300);
  // Window [4s, 10s]: 500 txs over 6 seconds.
  EXPECT_NEAR(m.throughput_tps(seconds(4), seconds(10)), 500.0 / 6.0, 1e-9);
  EXPECT_EQ(m.committed_txs(), 600u);
  EXPECT_EQ(m.commit_events(), 3u);
}

TEST(Metrics, LatenciesInMilliseconds) {
  Metrics m;
  m.record_latency(milliseconds(250));
  EXPECT_DOUBLE_EQ(m.latencies().mean(), 250.0);
}

TEST(Metrics, LatenciesReturnsAnIndependentSnapshot) {
  // Regression: latencies() used to hand out a reference to the
  // internal Percentiles — the lock was released at return, so callers
  // read the vector while recorder threads grew it. It now returns a
  // locked value copy that later records cannot mutate.
  Metrics m;
  m.record_latency(milliseconds(100));
  const Percentiles snap = m.latencies();
  m.record_latency(milliseconds(900));
  EXPECT_DOUBLE_EQ(snap.mean(), 100.0);
  EXPECT_DOUBLE_EQ(m.latencies().mean(), 500.0);
}

TEST(Metrics, EmptyWindowIsZero) {
  Metrics m;
  EXPECT_DOUBLE_EQ(m.throughput_tps(seconds(1), seconds(1)), 0.0);
}

TEST(Metrics, ByteCountersAccumulate) {
  Metrics m;
  EXPECT_EQ(m.bytes_sent(), 0u);
  EXPECT_EQ(m.bytes_received(), 0u);
  m.record_bytes_sent(1000);
  m.record_bytes_sent(24);
  m.record_bytes_received(512);
  EXPECT_EQ(m.bytes_sent(), 1024u);
  EXPECT_EQ(m.bytes_received(), 512u);
}

}  // namespace
}  // namespace predis
