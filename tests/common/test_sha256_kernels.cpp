// Cross-kernel bit-exactness for the dispatched SHA-256 kernels,
// mirroring tests/erasure/test_gf256_kernels.cpp: every compiled-in
// kernel must agree with the portable FIPS 180-4 rounds on arbitrary
// block streams, alignments and batch sizes; the Merkle batched levels
// must equal a sequential hash_pair fold; and the signature batch
// verifier must agree with per-item verify(). CMake additionally runs
// this binary once per forced kernel (ctest -L crypto_kernels) via
// PREDIS_SHA256_FORCE_KERNEL, so the default-dispatch paths are also
// exercised under every kernel.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/merkle.hpp"
#include "common/rng.hpp"
#include "common/sha256.hpp"
#include "common/sha256_kernels.hpp"
#include "common/signature.hpp"

namespace predis {
namespace {

namespace sk = sha256_kernels;

constexpr sk::Kernel kAll[] = {sk::Kernel::kPortable, sk::Kernel::kShaNi,
                               sk::Kernel::kAvx2};

constexpr std::uint32_t kIv[8] = {0x6a09e667, 0xbb67ae85, 0x3c6ef372,
                                  0xa54ff53a, 0x510e527f, 0x9b05688c,
                                  0x1f83d9ab, 0x5be0cd19};

TEST(Sha256Kernels, ActiveKernelIsAvailable) {
  EXPECT_TRUE(sk::available(sk::active()));
  EXPECT_TRUE(sk::available(sk::Kernel::kPortable));
  // Not an assertion — surface the dispatch decision in test logs.
  std::printf("[          ] sha256 active kernel = %s (sha_ni=%d avx2=%d)\n",
              sk::name(sk::active()),
              sk::available(sk::Kernel::kShaNi) ? 1 : 0,
              sk::available(sk::Kernel::kAvx2) ? 1 : 0);
}

TEST(Sha256Kernels, UnavailableKernelsResolveToPortable) {
  for (sk::Kernel k : kAll) {
    if (sk::available(k)) continue;
    EXPECT_EQ(sk::compress(k), sk::compress(sk::Kernel::kPortable));
    EXPECT_EQ(sk::hash_pairs(k), sk::hash_pairs(sk::Kernel::kPortable));
    EXPECT_FALSE(sk::force(k));
  }
}

TEST(Sha256Kernels, CompressMatchesPortableAcrossBlockCountsAndAlignments) {
  Rng rng(0x5eedULL);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t blocks = 1 + rng.next_below(8);
    const std::size_t offset = rng.next_below(16);
    std::vector<std::uint8_t> buf(offset + blocks * 64);
    for (auto& b : buf) b = static_cast<std::uint8_t>(rng.next());

    std::uint32_t want[8];
    std::memcpy(want, kIv, sizeof(want));
    sk::detail::compress_portable(want, buf.data() + offset, blocks);

    for (sk::Kernel k : kAll) {
      if (!sk::available(k)) continue;
      std::uint32_t got[8];
      std::memcpy(got, kIv, sizeof(got));
      sk::compress(k)(got, buf.data() + offset, blocks);
      for (int i = 0; i < 8; ++i) {
        ASSERT_EQ(got[i], want[i])
            << sk::name(k) << " word " << i << " blocks=" << blocks
            << " offset=" << offset << " trial=" << trial;
      }
    }
  }
}

TEST(Sha256Kernels, HashPairsMatchesPortableAcrossBatchSizes) {
  Rng rng(0xabcdULL);
  // Cover the AVX2 8-lane boundary and its scalar remainder path.
  for (std::size_t count : {std::size_t{0}, std::size_t{1}, std::size_t{2},
                            std::size_t{7}, std::size_t{8}, std::size_t{9},
                            std::size_t{16}, std::size_t{33}}) {
    std::vector<std::uint8_t> msgs(count * 64 + 1);
    for (auto& b : msgs) b = static_cast<std::uint8_t>(rng.next());
    std::vector<Hash32> want(count + 1);
    sk::detail::hash_pairs_portable(msgs.data(), count, want.data());
    for (sk::Kernel k : kAll) {
      if (!sk::available(k)) continue;
      std::vector<Hash32> got(count + 1);
      sk::hash_pairs(k)(msgs.data(), count, got.data());
      for (std::size_t i = 0; i < count; ++i) {
        ASSERT_EQ(got[i], want[i])
            << sk::name(k) << " pair " << i << " of " << count;
      }
    }
  }
}

TEST(Sha256Kernels, HashPairsMatchesIncrementalHasher) {
  // End-to-end: the batch entry point equals Sha256::hash of the same
  // 64 bytes, for every kernel (pins padding-block construction).
  Rng rng(0x1234ULL);
  std::uint8_t msg[64];
  for (auto& b : msg) b = static_cast<std::uint8_t>(rng.next());
  const Hash32 want = Sha256::hash(BytesView{msg, sizeof(msg)});
  for (sk::Kernel k : kAll) {
    if (!sk::available(k)) continue;
    Hash32 got;
    sk::hash_pairs(k)(msg, 1, &got);
    EXPECT_EQ(got, want) << sk::name(k);
  }
}

TEST(Sha256Kernels, HashPairsSupportsAliasedOutput) {
  // The Merkle level-halving loop writes out[i] into the front of the
  // msgs buffer; the contract says that is safe for every kernel.
  Rng rng(0x77ULL);
  const std::size_t count = 19;
  std::vector<std::uint8_t> msgs(count * 64);
  for (auto& b : msgs) b = static_cast<std::uint8_t>(rng.next());
  std::vector<Hash32> want(count);
  sk::detail::hash_pairs_portable(msgs.data(), count, want.data());
  for (sk::Kernel k : kAll) {
    if (!sk::available(k)) continue;
    std::vector<std::uint8_t> aliased(msgs);
    // predis-lint: allow(D5): the aliasing contract under test IS "out overlays msgs".
    Hash32* const out_alias = reinterpret_cast<Hash32*>(aliased.data());
    sk::hash_pairs(k)(aliased.data(), count, out_alias);
    for (std::size_t i = 0; i < count; ++i) {
      ASSERT_EQ(0, std::memcmp(aliased.data() + i * 32, want[i].data(), 32))
          << sk::name(k) << " pair " << i;
    }
  }
}

TEST(Sha256Kernels, NistVectorsUnderEveryKernel) {
  const sk::Kernel before = sk::active();
  for (sk::Kernel k : kAll) {
    if (!sk::force(k)) continue;
    EXPECT_EQ(to_hex(Sha256::hash(as_bytes(std::string()))),
              "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855")
        << sk::name(k);
    EXPECT_EQ(to_hex(Sha256::hash(as_bytes(std::string("abc")))),
              "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad")
        << sk::name(k);
    EXPECT_EQ(
        to_hex(Sha256::hash(as_bytes(std::string(
            "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")))),
        "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1")
        << sk::name(k);
  }
  ASSERT_TRUE(sk::force(before));
}

// --- Merkle: batched levels vs sequential fold -------------------------

/// The pre-batching reference: hash_pair level by level, duplicating
/// the last node of odd levels.
Hash32 sequential_merkle_root(std::vector<Hash32> level) {
  while (level.size() > 1) {
    if (level.size() % 2 != 0) level.push_back(level.back());
    std::vector<Hash32> next(level.size() / 2);
    for (std::size_t i = 0; i < next.size(); ++i) {
      next[i] = hash_pair(level[2 * i], level[2 * i + 1]);
    }
    level = std::move(next);
  }
  return level.front();
}

TEST(Sha256Kernels, MerkleBatchedRootMatchesSequential) {
  Rng rng(0x31337ULL);
  for (std::size_t n : {std::size_t{1}, std::size_t{2}, std::size_t{3},
                        std::size_t{7}, std::size_t{8}, std::size_t{9},
                        std::size_t{16}, std::size_t{17}, std::size_t{50},
                        std::size_t{333}}) {
    std::vector<Hash32> leaves(n);
    for (auto& leaf : leaves) {
      for (auto& b : leaf) b = static_cast<std::uint8_t>(rng.next());
    }
    const Hash32 want = sequential_merkle_root(leaves);
    EXPECT_EQ(MerkleTree(leaves).root(), want) << "tree, n=" << n;
    EXPECT_EQ(MerkleTree::root_of(leaves), want) << "root_of, n=" << n;
  }
}

// --- Signature batch verification parity -------------------------------

TEST(Sha256Kernels, BatchVerifyMatchesSingleVerify) {
  const KeyPair alice = KeyPair::from_seed(1);
  const KeyPair bob = KeyPair::from_seed(2);
  const std::string t1 = "transfer 10 to bob";
  const std::string t2 = "transfer 99 to eve";
  const BytesView m1 = as_bytes(t1);
  const BytesView m2 = as_bytes(t2);

  const Signature s1 = alice.sign(m1);
  const Signature s2 = bob.sign(m2);
  Signature forged = s1;
  forged[0] ^= 0x01;
  PublicKey unknown{};
  unknown[0] = 0xee;

  const PublicKey& ka = alice.public_key();
  const PublicKey& kb = bob.public_key();
  const std::vector<SigCheck> items = {
      {&ka, m1, &s1},       // good
      {&kb, m2, &s2},       // good
      {&ka, m2, &s1},       // wrong message
      {&kb, m1, &s1},       // wrong key
      {&ka, m1, &forged},   // bit-flipped signature
      {&unknown, m1, &s1},  // unregistered key
  };

  std::vector<bool> want(items.size());
  std::size_t want_passed = 0;
  for (std::size_t i = 0; i < items.size(); ++i) {
    want[i] = verify(*items[i].key, items[i].message, *items[i].signature);
    want_passed += want[i] ? 1 : 0;
  }
  ASSERT_EQ(want_passed, 2u);  // exactly the two honest items

  bool ok[6] = {true, true, true, true, true, true};
  const std::size_t passed = verify_batch(items.data(), items.size(), ok);
  EXPECT_EQ(passed, want_passed);
  for (std::size_t i = 0; i < items.size(); ++i) {
    EXPECT_EQ(ok[i], want[i]) << "item " << i;
  }
}

TEST(Sha256Kernels, BatchVerifyEmptyBatch) {
  EXPECT_EQ(verify_batch(nullptr, 0, nullptr), 0u);
}

}  // namespace
}  // namespace predis
