#include "common/block_tracer.hpp"

#include <gtest/gtest.h>

#include "common/metrics_registry.hpp"

namespace predis {
namespace {

const Hash32 kKeyA = trace_key(1);
const Hash32 kKeyB = trace_key(2);

TEST(BlockTracer, KeepsEarliestObservationPerStage) {
  BlockTracer t;
  t.record(TraceStage::kBlockCommitted, kKeyA, milliseconds(50));
  t.record(TraceStage::kBlockCommitted, kKeyA, milliseconds(30));
  t.record(TraceStage::kBlockCommitted, kKeyA, milliseconds(80));
  EXPECT_EQ(t.first(TraceStage::kBlockCommitted, kKeyA), milliseconds(30));
  EXPECT_FALSE(t.has(TraceStage::kCutProposed, kKeyA));
  EXPECT_EQ(t.first(TraceStage::kCutProposed, kKeyB), kSimTimeNever);
}

TEST(BlockTracer, StoreQuorumFlipsOnDistinctNodes) {
  BlockTracer t(/*store_quorum=*/3);
  t.record_store(kKeyA, milliseconds(10), 0);
  t.record_store(kKeyA, milliseconds(20), 1);
  t.record_store(kKeyA, milliseconds(25), 1);  // duplicate node: no-op
  EXPECT_FALSE(t.has(TraceStage::kBundleStoredQuorum, kKeyA));
  t.record_store(kKeyA, milliseconds(40), 2);
  EXPECT_EQ(t.first(TraceStage::kBundleStoredQuorum, kKeyA),
            milliseconds(40));
}

TEST(BlockTracer, CausalOrderingChecksObservedStagesOnly) {
  BlockTracer t;
  t.record(TraceStage::kCutProposed, kKeyA, milliseconds(10));
  t.record(TraceStage::kBlockCommitted, kKeyA, milliseconds(60));
  EXPECT_TRUE(t.causally_ordered(kKeyA));
  // Unobserved key: vacuously ordered.
  EXPECT_TRUE(t.causally_ordered(kKeyB));

  BlockTracer bad;
  bad.record(TraceStage::kBlockCommitted, kKeyA, milliseconds(10));
  bad.record(TraceStage::kCutProposed, kKeyA, milliseconds(60));
  EXPECT_FALSE(bad.causally_ordered(kKeyA));
}

TEST(BlockTracer, StageSamplesDeriveNamedIntervals) {
  BlockTracer t;
  t.record(TraceStage::kTxEnqueued, kKeyA, milliseconds(0));
  t.record(TraceStage::kBundleProduced, kKeyA, milliseconds(5));
  t.record(TraceStage::kCutProposed, kKeyA, milliseconds(20));
  t.record(TraceStage::kBlockCommitted, kKeyA, milliseconds(95));
  // Two full nodes reconstruct: distribution is a per-node distribution.
  t.record(TraceStage::kBlockReconstructed, kKeyA, milliseconds(120), 7);
  t.record(TraceStage::kBlockReconstructed, kKeyA, milliseconds(150), 8);

  const auto samples = t.stage_samples();
  ASSERT_EQ(samples.count("tx_wait"), 1u);
  EXPECT_DOUBLE_EQ(samples.at("tx_wait").percentile(50), 5.0);
  ASSERT_EQ(samples.count("production"), 1u);
  EXPECT_DOUBLE_EQ(samples.at("production").percentile(50), 75.0);
  ASSERT_EQ(samples.count("distribution"), 1u);
  EXPECT_EQ(samples.at("distribution").count(), 2u);
  EXPECT_DOUBLE_EQ(samples.at("distribution").percentile(100), 55.0);
  ASSERT_EQ(samples.count("end_to_end"), 1u);
  EXPECT_DOUBLE_EQ(samples.at("end_to_end").percentile(100), 130.0);

  bool saw_production = false;
  for (const TraceStageStats& row : t.stage_breakdown()) {
    if (row.name != "production") continue;
    saw_production = true;
    EXPECT_EQ(row.count, 1u);
    EXPECT_DOUBLE_EQ(row.p50_ms, 75.0);
  }
  EXPECT_TRUE(saw_production);
}

TEST(BlockTracer, FoldIntoRegistersStageHistogramsAndCounters) {
  BlockTracer t;
  t.record(TraceStage::kCutProposed, kKeyA, milliseconds(10));
  t.record(TraceStage::kBlockCommitted, kKeyA, milliseconds(60));
  t.record_ban(0, 3, milliseconds(5));
  t.record_pull(kKeyB, 2, milliseconds(7));

  MetricsRegistry r;
  t.fold_into(r);
  ASSERT_EQ(r.histograms().count("stage.production"), 1u);
  EXPECT_EQ(r.histograms().at("stage.production").count(), 1u);
  // Pulls are tracked per (block, node), not as trace entries: only
  // kKeyA's stage records created an entry.
  EXPECT_EQ(r.counters().at("trace.entries").value(), 1u);
  EXPECT_EQ(r.counters().at("trace.bans").value(), 1u);
  EXPECT_EQ(r.counters().at("trace.pulls").value(), 1u);
}

// --- Anomaly detectors --------------------------------------------------

TEST(BlockTracerAnomalies, RebanStormFiresAtThreshold) {
  BlockTracer t;
  t.record_ban(1, 3, seconds(1));
  t.record_ban(1, 3, seconds(2));
  EXPECT_TRUE(t.anomalies(seconds(10)).empty());
  t.record_ban(1, 3, seconds(3));
  const auto as = t.anomalies(seconds(10));
  ASSERT_EQ(as.size(), 1u);
  EXPECT_EQ(as[0].kind, TraceAnomaly::Kind::kRebanStorm);
  EXPECT_EQ(as[0].node, 1u);
  EXPECT_EQ(as[0].producer, 3u);
  EXPECT_EQ(as[0].count, 3u);
  EXPECT_NE(as[0].describe().find("re-ban storm"), std::string::npos);
}

TEST(BlockTracerAnomalies, DistinctObserversAreNotAStorm) {
  BlockTracer t;
  // Every honest node banning the producer once is the CORRECT
  // response to one equivocation, not a storm.
  for (NodeId observer = 0; observer < 4; ++observer) {
    t.record_ban(observer, 3, seconds(1));
  }
  EXPECT_TRUE(t.anomalies(seconds(10)).empty());
}

TEST(BlockTracerAnomalies, PullSpiralFiresAtThreshold) {
  BlockTracer t;
  for (int i = 0; i < 11; ++i) t.record_pull(kKeyA, 5, seconds(i));
  EXPECT_TRUE(t.anomalies(seconds(20)).empty());
  t.record_pull(kKeyA, 5, seconds(12));
  const auto as = t.anomalies(seconds(20));
  ASSERT_EQ(as.size(), 1u);
  EXPECT_EQ(as[0].kind, TraceAnomaly::Kind::kPullSpiral);
  EXPECT_EQ(as[0].node, 5u);
  EXPECT_EQ(as[0].count, 12u);
}

TEST(BlockTracerAnomalies, StalledBlockNeedsAgeAndDistributionLayer) {
  BlockTracer t;
  t.record(TraceStage::kBlockCommitted, kKeyA, seconds(1));
  // No reconstruction anywhere in the trace: consensus-only run, the
  // stall detector stays quiet.
  EXPECT_TRUE(t.anomalies(seconds(30)).empty());

  // Another block reconstructing proves a distribution layer exists.
  t.record(TraceStage::kBlockCommitted, kKeyB, seconds(1));
  t.record(TraceStage::kBlockReconstructed, kKeyB, seconds(2), 9);
  const auto as = t.anomalies(seconds(30));
  ASSERT_EQ(as.size(), 1u);
  EXPECT_EQ(as[0].kind, TraceAnomaly::Kind::kStalledBlock);
  EXPECT_EQ(as[0].key, kKeyA);

  // A recent commit is not stalled yet.
  EXPECT_TRUE(t.anomalies(seconds(3)).empty());
}

TEST(BlockTracerAnomalies, ExpectReconstructionForcesStallDetection) {
  BlockTracer t;
  t.record(TraceStage::kBlockCommitted, kKeyA, seconds(1));
  t.expect_reconstruction(true);
  const auto as = t.anomalies(seconds(30));
  ASSERT_EQ(as.size(), 1u);
  EXPECT_EQ(as[0].kind, TraceAnomaly::Kind::kStalledBlock);
}

// --- Attack-shaped traces (adversary campaign) --------------------------
//
// Each case replays the observable signature one attacker archetype
// leaves in a trace and asserts the matching detector fires: the
// anomaly scan is the degradation campaign's tripwire.

TEST(BlockTracerAnomalies, StripeWithholdingShapeTripsPullSpiral) {
  // A relayer that accepts stripes but never re-shares starves its
  // subtree: the downstream node keeps re-pulling the same block from
  // the only peer it knows, exactly the pull-spiral signature.
  BlockTracer t;
  t.record(TraceStage::kBlockCommitted, kKeyA, seconds(1));
  for (int i = 0; i < 13; ++i) {
    t.record_pull(kKeyA, 4, seconds(1) + milliseconds(300 * i));
  }
  const auto as = t.anomalies(seconds(8));
  bool spiral = false;
  for (const TraceAnomaly& a : as) {
    spiral = spiral || (a.kind == TraceAnomaly::Kind::kPullSpiral &&
                        a.node == 4u);
  }
  EXPECT_TRUE(spiral);
}

TEST(BlockTracerAnomalies, ThrottledLeaderShapeTripsStalledBlock) {
  // A throttled stripe source delays distribution past the stall
  // horizon: the block commits but no full node ever reconstructs it
  // within stall_after.
  BlockTracer t;
  t.expect_reconstruction(true);
  t.record(TraceStage::kCutProposed, kKeyA, seconds(1));
  t.record(TraceStage::kBlockCommitted, kKeyA, seconds(1) +
           milliseconds(200));
  const auto as = t.anomalies(seconds(10));
  ASSERT_EQ(as.size(), 1u);
  EXPECT_EQ(as[0].kind, TraceAnomaly::Kind::kStalledBlock);
  EXPECT_EQ(as[0].key, kKeyA);
}

TEST(BlockTracerAnomalies, ChurnRejoinShapeTripsRebanStorm) {
  // An equivocator riding the churn storm: every rejoin is followed by
  // a fresh conflict and a fresh ban at the same observer. Distinct
  // from the legitimate one-ban-per-observer response.
  BlockTracer t;
  for (int cycle = 0; cycle < 3; ++cycle) {
    t.record_ban(2, 0, seconds(1 + 2 * cycle));
    t.record_unban(2, 0, seconds(2 + 2 * cycle));
  }
  const auto as = t.anomalies(seconds(12));
  ASSERT_EQ(as.size(), 1u);
  EXPECT_EQ(as[0].kind, TraceAnomaly::Kind::kRebanStorm);
  EXPECT_EQ(as[0].node, 2u);
  EXPECT_EQ(as[0].producer, 0u);
}

TEST(BlockTracer, DigestIsContentSensitive) {
  const auto fill = [](BlockTracer& t) {
    t.record(TraceStage::kBundleProduced, kKeyA, milliseconds(3));
    t.record(TraceStage::kBlockReconstructed, kKeyA, milliseconds(9), 4);
    t.record_ban(0, 2, milliseconds(5));
    t.record_pull(kKeyB, 1, milliseconds(6));
  };
  BlockTracer a, b;
  fill(a);
  fill(b);
  EXPECT_EQ(a.digest(), b.digest());
  b.record_pull(kKeyB, 1, milliseconds(7));
  EXPECT_NE(a.digest(), b.digest());
  BlockTracer c;
  fill(c);
  c.record(TraceStage::kBlockReconstructed, kKeyA, milliseconds(11), 5);
  EXPECT_NE(a.digest(), c.digest());
}

TEST(BlockTracer, TraceKeyIsInjectiveOnSmallIds) {
  EXPECT_NE(trace_key(1), trace_key(2));
  EXPECT_EQ(trace_key(7), trace_key(7));
}

TEST(BlockTracerAnomalies, UnclosedProposalFiresForProposedNeverCommitted) {
  // Regression for the baseline entries/production mismatch: a load
  // window ending mid-round left the final cut proposed but never
  // committed, so the trace held one more entry than production rows
  // and nothing flagged the dangling proposal. Closed rounds stay
  // silent; the one unclosed proposal must be flagged once it ages
  // past stall_after, and keys_missing must attribute it.
  BlockTracer t;
  for (std::uint64_t i = 0; i < 65; ++i) {
    t.record(TraceStage::kCutProposed, trace_key(i),
             milliseconds(100 * i));
    t.record(TraceStage::kBlockCommitted, trace_key(i),
             milliseconds(100 * i + 30));
  }
  EXPECT_TRUE(t.anomalies(seconds(60)).empty());

  t.record(TraceStage::kCutProposed, trace_key(65), milliseconds(6500));
  // Too fresh to flag: consensus may still be deciding it.
  EXPECT_TRUE(t.anomalies(milliseconds(6500) + seconds(1)).empty());

  const auto as = t.anomalies(milliseconds(6500) + seconds(10));
  ASSERT_EQ(as.size(), 1u);
  EXPECT_EQ(as[0].kind, TraceAnomaly::Kind::kUnclosedProposal);
  EXPECT_EQ(as[0].key, trace_key(65));

  const auto dangling = t.keys_missing(TraceStage::kCutProposed,
                                       TraceStage::kBlockCommitted);
  ASSERT_EQ(dangling.size(), 1u);
  EXPECT_EQ(dangling[0], trace_key(65));

  // Closing the proposal clears the anomaly.
  t.record(TraceStage::kBlockCommitted, trace_key(65), milliseconds(6600));
  EXPECT_TRUE(t.anomalies(milliseconds(6500) + seconds(10)).empty());
}

}  // namespace
}  // namespace predis
