#include "common/sha256.hpp"

#include <gtest/gtest.h>

#include <string>

namespace predis {
namespace {

std::string hex_of(const std::string& input) {
  return to_hex(Sha256::hash(as_bytes(input)));
}

TEST(Sha256, EmptyInput) {
  EXPECT_EQ(hex_of(""),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(hex_of("abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, NistTwoBlockMessage) {
  EXPECT_EQ(hex_of("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, ExactBlockBoundary) {
  // 64 bytes: exactly one block before padding.
  const std::string input(64, 'a');
  EXPECT_EQ(hex_of(input),
            "ffe054fe7ae0cb6dc65c3af9b61d5209f439851db43d0ba5997337df154668eb");
}

TEST(Sha256, MillionAs) {
  Sha256 ctx;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) ctx.update(as_bytes(chunk));
  EXPECT_EQ(to_hex(ctx.digest()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  const std::string input = "the quick brown fox jumps over the lazy dog";
  for (std::size_t split = 0; split <= input.size(); ++split) {
    Sha256 ctx;
    ctx.update(as_bytes(input.substr(0, split)));
    ctx.update(as_bytes(input.substr(split)));
    EXPECT_EQ(ctx.digest(), Sha256::hash(as_bytes(input)))
        << "split at " << split;
  }
}

TEST(Sha256, HashPairDiffersFromConcatenatedReverse) {
  const Hash32 a = Sha256::hash(as_bytes(std::string("a")));
  const Hash32 b = Sha256::hash(as_bytes(std::string("b")));
  EXPECT_NE(hash_pair(a, b), hash_pair(b, a));
}

TEST(Sha256, ShortHexIsPrefix) {
  const Hash32 h = Sha256::hash(as_bytes(std::string("x")));
  EXPECT_EQ(short_hex(h), to_hex(h).substr(0, 8));
}

}  // namespace
}  // namespace predis
