#include "common/codec.hpp"

#include <gtest/gtest.h>

namespace predis {
namespace {

TEST(Codec, ScalarRoundTrip) {
  Writer w;
  w.u8(0xab);
  w.u16(0x1234);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefULL);
  w.i64(-42);
  w.boolean(true);
  w.boolean(false);

  Reader r(w.data());
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u16(), 0x1234);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.i64(), -42);
  EXPECT_TRUE(r.boolean());
  EXPECT_FALSE(r.boolean());
  EXPECT_TRUE(r.done());
}

TEST(Codec, BytesAndStrings) {
  Writer w;
  w.bytes(Bytes{1, 2, 3});
  w.str("hello");
  w.bytes(Bytes{});

  Reader r(w.data());
  EXPECT_EQ(r.bytes(), (Bytes{1, 2, 3}));
  EXPECT_EQ(r.str(), "hello");
  EXPECT_TRUE(r.bytes().empty());
  EXPECT_TRUE(r.done());
}

TEST(Codec, HashRoundTrip) {
  const Hash32 h = Sha256::hash(as_bytes(std::string("payload")));
  Writer w;
  w.hash(h);
  Reader r(w.data());
  EXPECT_EQ(r.hash(), h);
}

TEST(Codec, VectorHelpers) {
  Writer w;
  w.vec_u64({1, 2, 3});
  w.vec_hash({kZeroHash, Sha256::hash(as_bytes(std::string("x")))});

  Reader r(w.data());
  EXPECT_EQ(r.vec_u64(), (std::vector<std::uint64_t>{1, 2, 3}));
  const auto hashes = r.vec_hash();
  ASSERT_EQ(hashes.size(), 2u);
  EXPECT_EQ(hashes[0], kZeroHash);
}

TEST(Codec, TruncatedInputThrows) {
  Writer w;
  w.u64(7);
  Reader r(BytesView(w.data().data(), 4));
  EXPECT_THROW(r.u64(), CodecError);
}

TEST(Codec, TruncatedBytesThrows) {
  Writer w;
  w.u32(100);  // claims 100 bytes follow, but none do
  Reader r(w.data());
  EXPECT_THROW(r.bytes(), CodecError);
}

TEST(Codec, LittleEndianLayout) {
  Writer w;
  w.u32(0x01020304);
  ASSERT_EQ(w.size(), 4u);
  EXPECT_EQ(w.data()[0], 0x04);
  EXPECT_EQ(w.data()[3], 0x01);
}

struct Point {
  std::uint32_t x = 0, y = 0;
  void encode(Writer& w) const {
    w.u32(x);
    w.u32(y);
  }
  static Point decode(Reader& r) {
    Point p;
    p.x = r.u32();
    p.y = r.u32();
    return p;
  }
  bool operator==(const Point&) const = default;
};

TEST(Codec, StructuredVectorRoundTrip) {
  const std::vector<Point> points = {{1, 2}, {3, 4}};
  Writer w;
  w.vec(points);
  Reader r(w.data());
  EXPECT_EQ(r.vec<Point>(), points);
}

TEST(Codec, HashOfIsDeterministicAndSensitive) {
  const Point a{1, 2};
  const Point b{1, 3};
  EXPECT_EQ(hash_of(a), hash_of(a));
  EXPECT_NE(hash_of(a), hash_of(b));
}

}  // namespace
}  // namespace predis
